// Sliding-window streaming on top of DynamicCC.
//
// Models the streaming regime the ROADMAP's decremental item calls for: the
// engine serves connectivity over "the last W batches" of an endless edge
// stream.  The stream owner pushes one batch per tick; WindowedStream keeps
// a ring of the W resident batches, and the batch that falls off the back
// is replayed as a deletion batch — expiry IS deletion, so all the
// classification and rebuild machinery of DynamicCC applies unchanged.
// Every push publishes a fresh snapshot, so readers always see a complete
// window transition, never a half-expired one.
//
// The ring keeps each batch verbatim (duplicates, self loops and all):
// an edge inserted by two resident batches has multiplicity 2, and expiring
// one of them is a certified-free deletion of a duplicate copy.  That makes
// window semantics exact: the graph at any epoch is precisely the multiset
// union of the resident batches.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>
#include <utility>

#include "graph/edge_list.hpp"
#include "serve/dynamic_cc.hpp"

namespace afforest::serve {

template <typename NodeID_ = std::int32_t>
class WindowedStream {
 public:
  /// `window_batches` is the number of resident batches W (>= 1).
  WindowedStream(DynamicCC<NodeID_>& engine, std::size_t window_batches)
      : engine_(engine), window_(window_batches) {
    if (window_batches == 0)
      throw std::invalid_argument(
          "WindowedStream: window must hold at least one batch");
  }

  [[nodiscard]] std::size_t window() const { return window_; }
  [[nodiscard]] std::size_t resident_batches() const { return ring_.size(); }

  /// Read access to the resident batches, oldest first.  Checkpoint
  /// serialization (src/serve/durable_engine.hpp) walks this; the exact
  /// ring contents are recoverable state, since expiry order depends on
  /// them.
  [[nodiscard]] const std::deque<EdgeList<NodeID_>>& resident() const {
    return ring_;
  }

  /// Reinstates the expiry ring from a checkpoint.  The engine must
  /// already hold the matching multiset state (DynamicCC::restore_state);
  /// this only restores the window accounting.  Throws std::invalid_argument
  /// if the checkpointed ring exceeds this stream's window.
  // lint: single-writer(recovery-only: called from DurableEngine::recover
  // before the stream is reachable by any reader; the paired
  // DynamicCC::restore_state takes the writer lock for the engine state)
  void restore_ring(std::deque<EdgeList<NodeID_>> ring) {
    if (ring.size() > window_)
      throw std::invalid_argument(
          "WindowedStream::restore_ring: more resident batches than the "
          "window holds");
    ring_ = std::move(ring);
  }

  /// One stream tick: inserts `batch`, expires the oldest resident batches
  /// while the window is over capacity, and publishes the resulting
  /// snapshot.  Returns the DeleteStats of the expiries (all-zero when
  /// nothing expired).  A `while`, not an `if`: steady-state overflow is a
  /// single batch, but a ring restored at full capacity must not creep past
  /// the window when accounting restarts (the push-after-full-expiry
  /// regression in tests/serve/windowed_stream_test.cpp pins both paths).
  DeleteStats push(EdgeList<NodeID_> batch) {
    engine_.apply_inserts(batch);
    ring_.push_back(std::move(batch));
    DeleteStats expired;
    // lint: bounded(each iteration pops one resident batch; the ring is finite)
    while (ring_.size() > window_) expired += expire_oldest_unpublished();
    engine_.publish();
    return expired;
  }

  /// Expires the oldest resident batch (no-op stats when the ring is empty)
  /// and publishes.
  DeleteStats expire_oldest() {
    DeleteStats expired;
    if (!ring_.empty()) expired = expire_oldest_unpublished();
    engine_.publish();
    return expired;
  }

  /// Expires every resident batch, publishing after each step so readers
  /// watch the window shrink batch-by-batch.  After drain() the engine's
  /// graph holds no edge this stream inserted.
  DeleteStats drain() {
    DeleteStats total;
    while (!ring_.empty()) {
      total += expire_oldest_unpublished();
      engine_.publish();
    }
    return total;
  }

 private:
  DeleteStats expire_oldest_unpublished() {
    const DeleteStats stats = engine_.apply_deletes(ring_.front());
    ring_.pop_front();
    return stats;
  }

  DynamicCC<NodeID_>& engine_;
  std::deque<EdgeList<NodeID_>> ring_;
  std::size_t window_;
};

}  // namespace afforest::serve
