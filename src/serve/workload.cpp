#include "serve/workload.hpp"

#include <cmath>
#include <stdexcept>

namespace afforest::serve {

Skew parse_skew(const std::string& name) {
  if (name == "uniform") return Skew::kUniform;
  if (name == "zipfian") return Skew::kZipfian;
  throw std::invalid_argument("unknown skew '" + name +
                              "' (expected uniform or zipfian)");
}

const char* skew_name(Skew skew) {
  switch (skew) {
    case Skew::kUniform: return "uniform";
    case Skew::kZipfian: return "zipfian";
  }
  return "?";
}

namespace {

// Generalized harmonic number zeta(n, theta) = sum_{i=1..n} 1 / i^theta.
// O(n) but runs once per generator; scale-20 setup is a few milliseconds.
double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i)
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  if (!(theta > 0.0 && theta < 1.0))
    throw std::invalid_argument("zipfian theta must be in (0, 1)");
  // Degenerate domains still construct so callers can treat n uniformly;
  // next() short-circuits for them.
  const std::uint64_t effective = n_ == 0 ? 1 : n_;
  zetan_ = zeta(effective, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(effective), 1.0 - theta_)) /
         (1.0 - zeta(2, theta_) / zetan_);
  half_pow_theta_ = std::pow(0.5, theta_);
}

std::uint64_t ZipfianGenerator::next(Xoshiro256& rng) const {
  if (n_ <= 1) return 0;
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + half_pow_theta_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  // Floating-point edge: u -> 1 can land exactly on n_.
  return rank >= n_ ? n_ - 1 : rank;
}

KeySampler::KeySampler(Skew skew, std::uint64_t n, double theta)
    : skew_(skew), n_(n), zipf_(n, theta) {}

std::uint64_t KeySampler::next(Xoshiro256& rng) const {
  if (n_ == 0) return 0;
  if (skew_ == Skew::kUniform) return rng.next_bounded(n_);
  return zipf_.next(rng);
}

}  // namespace afforest::serve
