// Epoch-stamped RCU snapshot machinery, shared by every serving engine.
//
// Extracted from QueryEngine (PR 5) so the decremental engine
// (src/serve/dynamic_cc.hpp) reuses the exact same read-plane protocol
// instead of forking it: two label buffers (double buffering) behind one
// atomic published pointer.  publish() waits for the grace period of the
// buffer it is about to overwrite (reader refcount drains to zero), fills
// it from the writer's label array, and release-stores the pointer.
// Readers acquire-load the pointer, increment the buffer's refcount, and
// RE-CHECK the pointer: a reader that lost a race with two intervening
// publishes backs off instead of pinning a buffer the writer already
// reclaimed.  The release/acquire pair on `published_` is the
// happens-before edge that makes the buffer contents plain-readable; the
// refcount protocol is what keeps the writer from overwriting a buffer
// mid-read.
//
// Contract with writers: the source label array handed to publish() must be
// fully compressed (depth <= 1, labels = the minimum vertex id per
// component — the convention every kernel here shares).  The store computes
// component sizes itself so all engines agree on size semantics.
//
// Failure discipline: the swap path carries the serve.swap failpoint and
// the grace-period wait runs under a convergence guard, so a reader that
// never releases a View surfaces as a typed ConvergenceError instead of a
// silent writer livelock (ceiling: AFFOREST_SERVE_SPIN_CEILING, see
// serve_spin_ceiling()).
//
// lint-scope: cc
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "analysis/telemetry.hpp"
#include "cc/common.hpp"
#include "cc/guards.hpp"
#include "serve/query_batch.hpp"
#include "util/env.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/pvector.hpp"

namespace afforest::serve {

/// Spin ceiling for the publish grace period and the reader re-check loop.
/// A reader parks a snapshot for the duration of one batch answer; the
/// default of 2^30 yields is orders of magnitude beyond any legitimate
/// batch, so hitting the ceiling means a leaked View (reader bug),
/// reported as a typed ConvergenceError rather than a hung writer.
/// AFFOREST_SERVE_SPIN_CEILING overrides the default (tests use a tiny
/// value to exercise the guard without minutes of spinning).
inline std::int64_t serve_spin_ceiling() {
  if (const auto v = env::as_int64("AFFOREST_SERVE_SPIN_CEILING");
      v && *v > 0)
    return *v;
  return std::int64_t{1} << 30;
}

template <typename NodeID_ = std::int32_t>
class SnapshotStore {
  struct Snapshot {
    ComponentLabels<NodeID_> labels;   ///< depth-0: labels[v] is v's root
    pvector<std::int64_t> sizes;       ///< sizes[r] = |component r|, valid at roots
    std::uint64_t epoch = 0;
    // mutable: Views hold const Snapshot* (labels are immutable through a
    // View) but must still drop their pin in release().
    mutable std::atomic<std::int64_t> readers{0};
  };

 public:
  /// A pinned snapshot: holds the buffer's refcount for its lifetime, so
  /// keep Views short-lived (one query or one batch).  Movable, not
  /// copyable.
  class View {
   public:
    View(View&& other) noexcept : snap_(other.snap_) { other.snap_ = nullptr; }
    View& operator=(View&& other) noexcept {
      if (this != &other) {
        release();
        snap_ = other.snap_;
        other.snap_ = nullptr;
      }
      return *this;
    }
    View(const View&) = delete;
    View& operator=(const View&) = delete;
    ~View() { release(); }

    [[nodiscard]] std::uint64_t epoch() const { return snap_->epoch; }

    /// The snapshot's immutable label array (depth 0, min-id labels).
    [[nodiscard]] const ComponentLabels<NodeID_>& labels() const {
      return snap_->labels;
    }

    /// Component sizes indexed by root label.
    [[nodiscard]] const pvector<std::int64_t>& sizes() const {
      return snap_->sizes;
    }

    /// True iff u and v were connected as of this snapshot.  O(1): the
    /// snapshot is fully compressed, so labels are component ids.
    // lint: parallel-context
    [[nodiscard]] bool connected(NodeID_ u, NodeID_ v) const {
      const auto& labels = snap_->labels;
      return atomic_load(labels[u]) == atomic_load(labels[v]);
    }

    /// Component id (minimum vertex id in the component) of u.
    // lint: parallel-context
    [[nodiscard]] NodeID_ component_of(NodeID_ u) const {
      const auto& labels = snap_->labels;
      return atomic_load(labels[u]);
    }

    /// Number of vertices in u's component.
    // lint: parallel-context
    [[nodiscard]] std::int64_t component_size(NodeID_ u) const {
      const auto& labels = snap_->labels;
      return snap_->sizes[atomic_load(labels[u])];
    }

    /// Number of components in this snapshot (O(|V|) scan).
    [[nodiscard]] std::int64_t component_count() const {
      const auto& labels = snap_->labels;
      const std::int64_t n = static_cast<std::int64_t>(labels.size());
      std::int64_t roots = 0;
#pragma omp parallel for reduction(+ : roots) schedule(static)
      for (std::int64_t x = 0; x < n; ++x)
        if (atomic_load(labels[x]) == static_cast<NodeID_>(x)) ++roots;
      return roots;
    }

   private:
    friend class SnapshotStore;
    explicit View(const Snapshot* snap) : snap_(snap) {}
    void release() {
      if (snap_ != nullptr)
        snap_->readers.fetch_sub(1, std::memory_order_acq_rel);
      snap_ = nullptr;
    }

    const Snapshot* snap_;
  };

  explicit SnapshotStore(std::int64_t num_nodes) {
    for (Snapshot& s : buffers_) {
      s.labels = identity_labels<NodeID_>(num_nodes);
      s.sizes = pvector<std::int64_t>(static_cast<std::size_t>(num_nodes),
                                      std::int64_t{1});
    }
    buffers_[0].epoch = 1;
    published_.store(&buffers_[0], std::memory_order_release);
  }

  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(buffers_[0].labels.size());
  }

  /// Epoch of the currently published snapshot (starts at 1; each
  /// publish() increments it).  Monotone non-decreasing across calls.
  [[nodiscard]] std::uint64_t epoch() const { return acquire().epoch(); }

  /// Pins the current snapshot.  Concurrency-safe; any number of readers.
  [[nodiscard]] View acquire() const {
    std::int64_t spins = 0;
    for (;;) {
      Snapshot* snap = published_.load(std::memory_order_acquire);
      snap->readers.fetch_add(1, std::memory_order_acq_rel);
      // Re-check: if a publish landed between the load and the increment,
      // the writer may already have reclaimed `snap` for the next epoch —
      // back off and pin the fresh pointer instead.
      if (published_.load(std::memory_order_acquire) == snap)
        return View(snap);
      snap->readers.fetch_sub(1, std::memory_order_acq_rel);
      check_convergence_guard("serve.acquire", ++spins, serve_spin_ceiling());
      std::this_thread::yield();
    }
  }

  /// Raises the epoch counter so the NEXT publish stamps an epoch strictly
  /// greater than `floor`.  Writer-only, like publish().  Recovery
  /// (src/serve/durable_engine.hpp) uses this so a restarted engine never
  /// re-issues an epoch that pre-crash readers may have observed — epochs
  /// stay monotone across the crash, not just within one process life.
  void set_epoch_floor(std::uint64_t floor) {
    if (floor > epoch_counter_) epoch_counter_ = floor;
  }

  /// Publishes `source` (a fully compressed label array owned by the single
  /// writer) as a new snapshot with epoch +1.  Waits for the grace period
  /// of the buffer it overwrites; fires the serve.swap failpoint before the
  /// pointer swap — a failure there leaves the store fully serviceable on
  /// the previous epoch.  Single-writer only.
  void publish(const ComponentLabels<NodeID_>& source) {
    Snapshot& next =
        buffers_[1 - published_index_];  // the buffer published 2 epochs ago
    // Grace period: readers that pinned `next` before the previous swap
    // must drain before we overwrite it.
    std::int64_t spins = 0;
    const std::int64_t ceiling = serve_spin_ceiling();
    while (next.readers.load(std::memory_order_acquire) != 0) {
      check_convergence_guard("serve.publish.drain", ++spins, ceiling);
      std::this_thread::yield();
    }

    const std::int64_t n = num_nodes();
    {
      auto& labels = next.labels;
      auto& sizes = next.sizes;
#pragma omp parallel for schedule(static)
      for (std::int64_t x = 0; x < n; ++x) {
        atomic_store(labels[x],
                     atomic_load(source[static_cast<std::size_t>(x)]));
        sizes[x] = 0;  // owner-exclusive init write; accumulated below
      }
#pragma omp parallel for schedule(static)
      for (std::int64_t x = 0; x < n; ++x)
        fetch_and_add(sizes[atomic_load(labels[x])], std::int64_t{1});
    }

    failpoint_maybe_fail("serve.swap");
    next.epoch = ++epoch_counter_;
    published_index_ = 1 - published_index_;
    published_.store(&next, std::memory_order_release);
    telemetry::on_snapshot_swap();
  }

  /// Answers every query in `batch` against ONE pinned snapshot (stamped
  /// into batch.epoch) with an OpenMP-parallel sweep over the SoA columns.
  /// Callers are responsible for bounds-checking the batch first.
  void answer(QueryBatch<NodeID_>& batch) const {
    const std::int64_t count = static_cast<std::int64_t>(batch.count());
    batch.connected.resize(batch.count());
    batch.component.resize(batch.count());
    batch.component_size.resize(batch.count());

    const View view = acquire();
    batch.epoch = view.epoch();
    const auto& labels = view.labels();
    const auto& sizes = view.sizes();
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < count; ++i) {
      const NodeID_ lu = atomic_load(labels[batch.u[i]]);
      const NodeID_ lv = atomic_load(labels[batch.v[i]]);
      batch.connected[i] = static_cast<std::uint8_t>(lu == lv);
      batch.component[i] = lu;
      batch.component_size[i] = sizes[lu];
    }
    telemetry::on_queries_served(static_cast<std::uint64_t>(count));
  }

 private:
  Snapshot buffers_[2];
  std::atomic<Snapshot*> published_{nullptr};
  std::int32_t published_index_ = 0;   ///< writer-only
  std::uint64_t epoch_counter_ = 1;    ///< writer-only
};

/// Generic epoch-stamped RCU double buffer over an arbitrary payload —
/// SnapshotStore's pointer-flip/refcount protocol factored out so composite
/// engines (the sharded coordinator, src/shard/sharded_engine.hpp) can
/// publish one atom holding MANY pinned shard snapshots plus derived state,
/// giving readers a single consistent cross-shard epoch.
///
/// Writer protocol (single writer, two steps):
///
///   1. begin_publish()  — waits for the stale buffer's readers to drain,
///      then DESTROYS its payload and returns a pointer to the emptied
///      slot.  The destruction order is the point: a composite payload
///      pins resources (e.g. shard Views from epoch e−1), and those pins
///      must drop BEFORE the caller asks the underlying stores to publish
///      again, or the inner grace period would wait on a pin the outer
///      buffer still holds — a self-deadlock.
///   2. commit_publish() — stamps the next epoch and release-stores the
///      pointer.  A writer failure between the two steps (exception from
///      building the new payload) leaves the previous epoch published and
///      the publisher fully serviceable — identical to SnapshotStore's
///      failpoint discipline.
///
/// Readers acquire() a Ref with the same pin/re-check/back-off loop as
/// SnapshotStore::acquire, under the same spin ceiling.
template <typename PayloadT>
class EpochPublisher {
  struct Cell {
    PayloadT payload{};
    std::uint64_t epoch = 0;
    mutable std::atomic<std::int64_t> readers{0};
  };

 public:
  /// A pinned payload + its epoch.  Movable, not copyable; keep it
  /// short-lived (one query or one batch), like SnapshotStore::View.
  class Ref {
   public:
    Ref(Ref&& other) noexcept : cell_(other.cell_) { other.cell_ = nullptr; }
    Ref& operator=(Ref&& other) noexcept {
      if (this != &other) {
        release();
        cell_ = other.cell_;
        other.cell_ = nullptr;
      }
      return *this;
    }
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref() { release(); }

    [[nodiscard]] std::uint64_t epoch() const { return cell_->epoch; }
    [[nodiscard]] const PayloadT& operator*() const { return cell_->payload; }
    [[nodiscard]] const PayloadT* operator->() const {
      return &cell_->payload;
    }

   private:
    friend class EpochPublisher;
    explicit Ref(const Cell* cell) : cell_(cell) {}
    void release() {
      if (cell_ != nullptr)
        cell_->readers.fetch_sub(1, std::memory_order_acq_rel);
      cell_ = nullptr;
    }

    const Cell* cell_;
  };

  EpochPublisher() { published_.store(&cells_[0], std::memory_order_release); }

  /// Epoch of the currently published payload (0 until the first commit).
  [[nodiscard]] std::uint64_t epoch() const { return acquire().epoch(); }

  /// Pins the current payload.  Concurrency-safe; any number of readers.
  [[nodiscard]] Ref acquire() const {
    std::int64_t spins = 0;
    for (;;) {
      Cell* cell = published_.load(std::memory_order_acquire);
      cell->readers.fetch_add(1, std::memory_order_acq_rel);
      if (published_.load(std::memory_order_acquire) == cell)
        return Ref(cell);
      cell->readers.fetch_sub(1, std::memory_order_acq_rel);
      check_convergence_guard("serve.epoch.acquire", ++spins,
                              serve_spin_ceiling());
      std::this_thread::yield();
    }
  }

  /// Step 1 of a publish: drains the stale buffer's grace period, destroys
  /// its payload (releasing everything epoch e−1 pinned), and returns the
  /// emptied slot for the caller to fill.  Single-writer only.
  PayloadT* begin_publish() {
    Cell& next = cells_[1 - published_index_];
    std::int64_t spins = 0;
    const std::int64_t ceiling = serve_spin_ceiling();
    while (next.readers.load(std::memory_order_acquire) != 0) {
      check_convergence_guard("serve.epoch.drain", ++spins, ceiling);
      std::this_thread::yield();
    }
    next.payload = PayloadT{};
    return &next.payload;
  }

  /// Step 2: stamps epoch +1 on the slot begin_publish() returned and
  /// atomically publishes it.  Single-writer only.
  void commit_publish() {
    Cell& next = cells_[1 - published_index_];
    next.epoch = ++epoch_counter_;
    published_index_ = 1 - published_index_;
    published_.store(&next, std::memory_order_release);
  }

 private:
  Cell cells_[2];
  std::atomic<Cell*> published_{nullptr};
  std::int32_t published_index_ = 0;  ///< writer-only
  std::uint64_t epoch_counter_ = 0;   ///< writer-only
};

}  // namespace afforest::serve
