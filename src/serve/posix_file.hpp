// Thin POSIX file helpers shared by the durability layer (wal.hpp,
// checkpoint.hpp): an fd RAII wrapper, full-write/full-read loops, and the
// fsync/rename dance that makes "atomically install this file" actually
// durable.
//
// The rest of the repository does I/O through iostreams, which is fine for
// graph loading but unusable here: durability needs fsync (no portable
// iostream spelling), ftruncate (discarding a torn WAL tail in place), and
// rename-into-place with a directory fsync so the new name itself survives
// a power cut.  This header is the single place those syscalls live;
// everything above it speaks IoError.
#pragma once

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "graph/io_error.hpp"

namespace afforest::serve {

/// RAII file descriptor.  Move-only; closes on destruction (best-effort —
/// callers that need the close error checked call close_checked()).
class FdFile {
 public:
  FdFile() = default;
  explicit FdFile(int fd) : fd_(fd) {}
  ~FdFile() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdFile(FdFile&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdFile& operator=(FdFile&& other) noexcept {
    if (this != &other) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FdFile(const FdFile&) = delete;
  FdFile& operator=(const FdFile&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  void close_checked(const std::string& path) {
    if (fd_ < 0) return;
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0)
      throw IoError(IoErrorKind::kWriteFailed, path,
                    std::string("close failed: ") + std::strerror(errno));
  }

 private:
  int fd_ = -1;
};

/// Opens with open(2); throws IoError(kOpenFailed) on failure.
inline FdFile fd_open(const std::string& path, int flags, mode_t mode = 0644) {
  const int fd = ::open(path.c_str(), flags, mode);
  if (fd < 0)
    throw IoError(IoErrorKind::kOpenFailed, path,
                  std::string("open failed: ") + std::strerror(errno));
  return FdFile(fd);
}

/// Writes all `size` bytes (looping over short writes); throws
/// IoError(kWriteFailed) on error.
inline void fd_write_all(const FdFile& file, const std::string& path,
                         const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::write(file.get(), p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(IoErrorKind::kWriteFailed, path,
                    std::string("write failed: ") + std::strerror(errno));
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
}

/// fdatasync; throws IoError(kWriteFailed) on error.
inline void fd_sync(const FdFile& file, const std::string& path) {
  if (::fdatasync(file.get()) != 0)
    throw IoError(IoErrorKind::kWriteFailed, path,
                  std::string("fdatasync failed: ") + std::strerror(errno));
}

/// ftruncate to `size` bytes; throws IoError(kWriteFailed) on error.
inline void fd_truncate(const FdFile& file, const std::string& path,
                        std::uint64_t size) {
  if (::ftruncate(file.get(), static_cast<off_t>(size)) != 0)
    throw IoError(IoErrorKind::kWriteFailed, path,
                  std::string("ftruncate failed: ") + std::strerror(errno));
}

/// The directory component of `path` ("." when there is none).
inline std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsyncs the directory containing `path`, making a just-created or
/// just-renamed name in it durable.  Throws IoError(kWriteFailed).
inline void fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_dir(path);
  FdFile d = fd_open(dir, O_RDONLY | O_DIRECTORY);
  if (::fsync(d.get()) != 0)
    throw IoError(IoErrorKind::kWriteFailed, dir,
                  std::string("directory fsync failed: ") +
                      std::strerror(errno));
}

/// Reads the whole file into memory; throws IoError(kOpenFailed) when it
/// cannot be opened.  Durability files are bounded by the checkpoint
/// interval, so whole-file reads are the simple and sufficient choice.
inline std::vector<unsigned char> read_entire_file(const std::string& path) {
  FdFile file = fd_open(path, O_RDONLY);
  std::vector<unsigned char> bytes;
  unsigned char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(file.get(), buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(IoErrorKind::kOpenFailed, path,
                    std::string("read failed: ") + std::strerror(errno));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  return bytes;
}

/// Creates `path` as a directory if it does not exist; throws
/// IoError(kOpenFailed) on any other failure.
inline void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
    throw IoError(IoErrorKind::kOpenFailed, path,
                  std::string("mkdir failed: ") + std::strerror(errno));
}

/// True iff `path` exists (any file type).
inline bool path_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// Names of the regular entries in `dir` (no "."/".."); throws
/// IoError(kOpenFailed) when the directory cannot be read.
inline std::vector<std::string> list_dir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr)
    throw IoError(IoErrorKind::kOpenFailed, dir,
                  std::string("opendir failed: ") + std::strerror(errno));
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  return names;
}

/// Removes `path` (file), ignoring a missing file; throws on other errors.
inline void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    throw IoError(IoErrorKind::kWriteFailed, path,
                  std::string("unlink failed: ") + std::strerror(errno));
}

/// rename(2) with the error path checked.  The new name is not itself
/// durable until the caller fsyncs the parent directory — pair every call
/// with fsync_parent_dir(path) (the S3 lint enforces the ordering).
inline void rename_into_place(const std::string& tmp_path,
                              const std::string& path) {
  if (::rename(tmp_path.c_str(), path.c_str()) != 0)
    throw IoError(IoErrorKind::kWriteFailed, path,
                  std::string("rename failed: ") + std::strerror(errno));
}

/// lseek(2) to an absolute offset; throws IoError(kOpenFailed) on error.
inline void fd_seek(const FdFile& file, const std::string& path,
                    std::uint64_t offset) {
  if (::lseek(file.get(), static_cast<off_t>(offset), SEEK_SET) < 0)
    throw IoError(IoErrorKind::kOpenFailed, path,
                  std::string("lseek failed: ") + std::strerror(errno));
}

/// Writes `bytes` to `path` atomically: tmp file → fsync → rename →
/// directory fsync.  A crash at any point leaves either the old file or
/// the new one, never a partial.  `tmp_path` must be on the same
/// filesystem (conventionally `path + ".tmp"`).
inline void atomic_write_file(const std::string& path,
                              const std::string& tmp_path,
                              const void* data, std::size_t size) {
  {
    FdFile tmp = fd_open(tmp_path, O_WRONLY | O_CREAT | O_TRUNC);
    fd_write_all(tmp, tmp_path, data, size);
    fd_sync(tmp, tmp_path);
    tmp.close_checked(tmp_path);
  }
  rename_into_place(tmp_path, path);
  fsync_parent_dir(path);
}

}  // namespace afforest::serve
