// Write-ahead log for the durable serving engine (durable_engine.hpp):
// every insert/delete/tick batch is journaled here before it is applied,
// so a crashed writer can replay its suffix on restart.
//
// File layout (all integers little-endian; full spec in
// docs/ROBUSTNESS.md):
//
//   header   "AFWL" | u32 version=1 | u64 num_nodes | u64 window
//            | u64 start_seq | u32 crc32c(header bytes so far)
//   record*  u32 payload_len | u32 crc32c(payload) | payload
//   payload  u8 type (1=insert, 2=delete, 3=tick) | u64 seq | u64 epoch
//            | u64 edge_count | edge_count × (i64 u, i64 v)
//
// Torn-tail tolerance: a crash mid-append leaves a partial record at the
// end of the file.  wal_scan() accepts the longest valid prefix and
// reports the rest as `torn_bytes`; WalWriter::open_for_append truncates
// that tail in place so the next append starts at a record boundary.  A
// record is valid only if its length field is self-consistent and within
// the file, its CRC32C matches, its type is known, and its sequence number
// is exactly the predecessor's + 1 — the seq rule is what catches a
// duplicated tail (same bytes appended twice pass CRC but repeat a seq).
// Everything after the first invalid record is discarded; that is
// indistinguishable from the crash having happened one record earlier,
// which is exactly the contract recovery tests pin (never a silently
// wrong label, possibly a slightly earlier durable point).
//
// Header corruption is NOT tolerated — a WAL whose identity (num_nodes,
// start_seq) cannot be trusted must not be replayed, so header problems
// throw typed IoErrors (kBadMagic / kCorruptHeader / kChecksumMismatch /
// kTruncated) instead.
//
// Failpoint sites (docs/ROBUSTNESS.md):
//   wal.append — fires before a record hits the file; writes a
//                deterministic partial prefix of the record first, so the
//                recovered file exercises the torn-tail path.
//   wal.fsync  — fires after the record is fully written but before
//                fdatasync; the record may or may not survive a real
//                crash, and recovery must accept either outcome.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/telemetry.hpp"
#include "graph/io_error.hpp"
#include "serve/posix_file.hpp"
#include "serve/wire.hpp"
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"

namespace afforest::serve {

enum class WalSync {
  kNone,   ///< write(2) only: survives process death, not power loss
  kFsync,  ///< fdatasync after every append: survives power loss
};

enum class WalRecordType : std::uint8_t {
  kInsert = 1,
  kDelete = 2,
  kTick = 3,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
};

struct WalHeader {
  std::uint64_t num_nodes = 0;
  std::uint64_t window = 0;  ///< 0 = unwindowed engine
  std::uint64_t start_seq = 1;  ///< seq the first record must carry
};

struct WalScan {
  WalHeader header;
  std::vector<WalRecord> records;  ///< longest valid prefix
  std::uint64_t valid_bytes = 0;   ///< offset just past the last valid record
  std::uint64_t torn_bytes = 0;    ///< trailing bytes rejected by the scan
  std::uint64_t last_seq = 0;      ///< seq of last valid record (start_seq-1 if none)
};

namespace wal_detail {

inline constexpr char kMagic[4] = {'A', 'F', 'W', 'L'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 36;
inline constexpr std::size_t kMinPayloadBytes = 1 + 8 + 8 + 8;
inline constexpr std::size_t kEdgeBytes = 16;

inline std::vector<unsigned char> encode_header(const WalHeader& header) {
  std::vector<unsigned char> bytes;
  bytes.reserve(kHeaderBytes);
  bytes.insert(bytes.end(), kMagic, kMagic + 4);
  wire::put_u32(bytes, kVersion);
  wire::put_u64(bytes, header.num_nodes);
  wire::put_u64(bytes, header.window);
  wire::put_u64(bytes, header.start_seq);
  wire::put_u32(bytes, crc32c(bytes.data(), bytes.size()));
  return bytes;
}

/// Parses and validates the fixed header; throws typed IoErrors.
inline WalHeader decode_header(const std::string& path,
                               const std::vector<unsigned char>& bytes) {
  if (bytes.size() < kHeaderBytes)
    throw IoError(IoErrorKind::kTruncated, path,
                  "file shorter than the WAL header", IoError::kNoPosition,
                  static_cast<std::int64_t>(bytes.size()));
  for (std::size_t i = 0; i < 4; ++i)
    if (bytes[i] != static_cast<unsigned char>(kMagic[i]))
      throw IoError(IoErrorKind::kBadMagic, path,
                    "WAL magic mismatch (want \"AFWL\")",
                    IoError::kNoPosition, static_cast<std::int64_t>(i));
  const std::uint32_t stored_crc = static_cast<std::uint32_t>(bytes[32]) |
                                   static_cast<std::uint32_t>(bytes[33]) << 8 |
                                   static_cast<std::uint32_t>(bytes[34]) << 16 |
                                   static_cast<std::uint32_t>(bytes[35]) << 24;
  if (stored_crc != crc32c(bytes.data(), 32))
    throw IoError(IoErrorKind::kChecksumMismatch, path,
                  "WAL header checksum mismatch", IoError::kNoPosition, 32);
  wire::Reader r(bytes.data() + 4, 28);
  std::uint32_t version = 0;
  WalHeader header;
  r.get_u32(version);
  r.get_u64(header.num_nodes);
  r.get_u64(header.window);
  r.get_u64(header.start_seq);
  if (version != kVersion)
    throw IoError(IoErrorKind::kCorruptHeader, path,
                  "unsupported WAL version " + std::to_string(version),
                  IoError::kNoPosition, 4);
  if (header.num_nodes == 0 || header.start_seq == 0)
    throw IoError(IoErrorKind::kCorruptHeader, path,
                  "WAL header has zero num_nodes or start_seq");
  return header;
}

inline std::vector<unsigned char> encode_record(const WalRecord& record) {
  // Single-buffer framing: serialize the payload straight after an 8-byte
  // placeholder, then patch length + CRC in place — the payload is never
  // copied a second time (this is on the gated durable-ingest hot path).
  std::vector<unsigned char> bytes;
  bytes.reserve(8 + kMinPayloadBytes + record.edges.size() * kEdgeBytes);
  wire::put_u32(bytes, 0);  // payload_len, patched below
  wire::put_u32(bytes, 0);  // crc32c(payload), patched below
  wire::put_u8(bytes, static_cast<std::uint8_t>(record.type));
  wire::put_u64(bytes, record.seq);
  wire::put_u64(bytes, record.epoch);
  wire::put_u64(bytes, static_cast<std::uint64_t>(record.edges.size()));
  for (const auto& [u, v] : record.edges) {
    wire::put_i64(bytes, u);
    wire::put_i64(bytes, v);
  }
  const std::size_t payload_len = bytes.size() - 8;
  const std::uint32_t crc = crc32c(bytes.data() + 8, payload_len);
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(payload_len >> (8 * i));
    bytes[static_cast<std::size_t>(4 + i)] =
        static_cast<unsigned char>(crc >> (8 * i));
  }
  return bytes;
}

}  // namespace wal_detail

/// Reads `path`, validating the header strictly (typed IoErrors) and the
/// record stream leniently: scanning stops at the first invalid record and
/// the remainder is reported as `torn_bytes`.  Allocation is bounded by
/// the file size — a corrupt length field can never ask for more bytes
/// than remain in the file.
inline WalScan wal_scan(const std::string& path) {
  const std::vector<unsigned char> bytes = read_entire_file(path);
  WalScan scan;
  scan.header = wal_detail::decode_header(path, bytes);
  scan.valid_bytes = wal_detail::kHeaderBytes;
  scan.last_seq = scan.header.start_seq - 1;
  std::size_t pos = wal_detail::kHeaderBytes;
  while (true) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < 8) break;  // torn/absent length+crc prefix
    wire::Reader frame(bytes.data() + pos, remaining);
    std::uint32_t payload_len = 0;
    std::uint32_t stored_crc = 0;
    frame.get_u32(payload_len);
    frame.get_u32(stored_crc);
    if (payload_len < wal_detail::kMinPayloadBytes) break;
    if ((payload_len - wal_detail::kMinPayloadBytes) %
            wal_detail::kEdgeBytes != 0)
      break;
    if (payload_len > remaining - 8) break;  // record extends past EOF
    const unsigned char* payload = bytes.data() + pos + 8;
    if (crc32c(payload, payload_len) != stored_crc) break;
    wire::Reader body(payload, payload_len);
    WalRecord record;
    std::uint8_t type = 0;
    std::uint64_t count = 0;
    body.get_u8(type);
    body.get_u64(record.seq);
    body.get_u64(record.epoch);
    body.get_u64(count);
    if (type < 1 || type > 3) break;
    record.type = static_cast<WalRecordType>(type);
    if (count != (payload_len - wal_detail::kMinPayloadBytes) /
                     wal_detail::kEdgeBytes)
      break;
    // The seq chain is the duplicate/reorder detector: a replayed tail
    // passes CRC but repeats a seq, a dropped record skips one.
    if (record.seq != scan.last_seq + 1) break;
    record.edges.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::int64_t u = 0;
      std::int64_t v = 0;
      body.get_i64(u);
      body.get_i64(v);
      record.edges.emplace_back(u, v);
    }
    scan.last_seq = record.seq;
    scan.records.push_back(std::move(record));
    pos += 8 + payload_len;
    scan.valid_bytes = pos;
  }
  scan.torn_bytes = bytes.size() - scan.valid_bytes;
  return scan;
}

/// Single-writer append handle.  Not thread-safe by design — the serving
/// tier already funnels all mutation through one writer (WriterLock), and
/// the WAL inherits that discipline.
class WalWriter {
 public:
  /// Creates a fresh segment at `path` (which must not exist), writes the
  /// header durably, and returns a writer positioned for `header.start_seq`.
  // lint: failpoint(crashing before the header is durable leaves a file the
  // manifest never references — recovery GCs it; the ckpt.rename and
  // manifest.replace sweep cells cover exactly that orphan-segment state)
  static WalWriter create(const std::string& path, const WalHeader& header,
                          WalSync sync) {
    if (header.num_nodes == 0 || header.start_seq == 0)
      throw std::logic_error("WalWriter::create: invalid header");
    FdFile fd = fd_open(path, O_WRONLY | O_CREAT | O_EXCL);
    const std::vector<unsigned char> bytes =
        wal_detail::encode_header(header);
    fd_write_all(fd, path, bytes.data(), bytes.size());
    fd_sync(fd, path);
    fsync_parent_dir(path);
    return WalWriter(std::move(fd), path, header, header.start_seq - 1, sync);
  }

  /// Opens an existing segment for appending: scans it, truncates any torn
  /// tail in place, and positions after the last valid record.  The scan
  /// (with the surviving records) is returned through `out_scan` so the
  /// caller can replay without reading the file twice.
  // lint: failpoint(truncating a torn tail is idempotent — dying between
  // truncate and sync re-enters this path on the next recovery with the
  // same scan result; recover.replay sweep cells exercise the reopen)
  static WalWriter open_for_append(const std::string& path, WalSync sync,
                                   WalScan* out_scan = nullptr) {
    WalScan scan = wal_scan(path);
    FdFile fd = fd_open(path, O_WRONLY);
    if (scan.torn_bytes > 0) {
      fd_truncate(fd, path, scan.valid_bytes);
      fd_sync(fd, path);
      telemetry::on_wal_torn_tail();
    }
    fd_seek(fd, path, scan.valid_bytes);
    WalWriter writer(std::move(fd), path, scan.header, scan.last_seq, sync);
    if (out_scan != nullptr) *out_scan = std::move(scan);
    return writer;
  }

  /// Appends one record.  `record.seq` must be exactly last_seq()+1 — the
  /// engine owns seq assignment and a gap here is a logic bug, not I/O.
  void append(const WalRecord& record) {
    if (poisoned_)
      throw std::logic_error(
          "WalWriter::append: a previous append did not complete; the file "
          "position is untrustworthy — reopen via open_for_append");
    if (record.seq != last_seq_ + 1)
      throw std::logic_error("WalWriter::append: non-contiguous seq " +
                             std::to_string(record.seq) + " after " +
                             std::to_string(last_seq_));
    poisoned_ = true;
    const std::vector<unsigned char> bytes =
        wal_detail::encode_record(record);
    if (failpoint_triggered("wal.append")) {
      // Simulate a torn write: a deterministic strict prefix of the record
      // reaches the file, then the writer dies.  Recovery must discard it.
      const std::size_t partial =
          detail::failpoint_mix(record.seq) % bytes.size();
      fd_write_all(fd_, path_, bytes.data(), partial);
      if (failpoints_lethal()) std::_Exit(kFailpointLethalExit);
      throw FailpointError("wal.append");
    }
    fd_write_all(fd_, path_, bytes.data(), bytes.size());
    // Record bytes are in the file (and would survive a process crash);
    // wal.fsync models dying before they are known power-loss durable.
    failpoint_maybe_fail("wal.fsync");
    if (sync_ == WalSync::kFsync) fd_sync(fd_, path_);
    last_seq_ = record.seq;
    poisoned_ = false;
    telemetry::on_wal_append(bytes.size());
  }

  /// Explicit fdatasync (used before a checkpoint cuts over regardless of
  /// the per-append sync mode).
  // lint: failpoint(dying in the pre-checkpoint sync is indistinguishable
  // from the wal.fsync cell — the records are in the file, durability of
  // the tail is what recovery replays; ckpt.write covers the next step)
  void sync() { fd_sync(fd_, path_); }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const WalHeader& header() const noexcept { return header_; }
  [[nodiscard]] std::uint64_t last_seq() const noexcept { return last_seq_; }

 private:
  WalWriter(FdFile fd, std::string path, WalHeader header,
            std::uint64_t last_seq, WalSync sync)
      : fd_(std::move(fd)),
        path_(std::move(path)),
        header_(header),
        last_seq_(last_seq),
        sync_(sync) {}

  FdFile fd_;
  std::string path_;
  WalHeader header_;
  std::uint64_t last_seq_;
  WalSync sync_;
  /// True while an append is in flight; stays true if it threw, so a
  /// caller cannot write a fresh record after a torn one (the tear would
  /// silently truncate everything appended after it at recovery).
  bool poisoned_ = false;
};

}  // namespace afforest::serve
