// Concurrent connectivity query engine: snapshot reads over a live
// Afforest forest.
//
// The ROADMAP north-star is a serving system, not an offline kernel.  This
// layer turns the paper's primitives into one:
//
//   * a single WRITER applies batched add_edge updates with link() (§III-B:
//     each edge is applied once, in any order — exactly the property that
//     lets updates stream in) and periodically compacts the forest with
//     compress() and publishes a new snapshot;
//   * many READERS answer connected / component_of / component_size against
//     an immutable, epoch-versioned snapshot label array.
//
// The snapshot machinery (RCU double buffering, reader refcount grace
// periods, epoch stamping) lives in serve/snapshot_store.hpp — it is shared
// with the decremental engine (serve/dynamic_cc.hpp), so the protocol has
// exactly one implementation.  This class owns the add-only write plane:
// the live parent forest written via link() and compacted on publish.
//
// Consistency guarantees (tested in tests/serve/linearizability_test.cpp,
// documented in docs/SERVING.md):
//   * snapshot isolation — every query in a batch is answered against one
//     snapshot, stamped with its epoch;
//   * monotone connectivity — edges are only added, snapshots only advance,
//     so once a reader observes connected(u, v) no later query may observe
//     them disconnected (Lemma 4's grow-only forest, lifted to epochs);
//   * freshness lag only — a query may miss edges applied after the last
//     publish, never edges published before its snapshot.
//
// Failure discipline: the compaction and swap paths carry failpoints
// (serve.compact / serve.swap — see docs/ROBUSTNESS.md) and the
// grace-period wait runs under a convergence guard, so a reader that never
// releases a snapshot surfaces as a typed ConvergenceError instead of a
// silent writer livelock.
//
// lint-scope: cc
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "analysis/telemetry.hpp"
#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "graph/edge_list.hpp"
#include "serve/query_batch.hpp"
#include "serve/snapshot_store.hpp"
#include "serve/writer_lock.hpp"
#include "util/failpoint.hpp"
#include "util/pvector.hpp"

namespace afforest::serve {

template <typename NodeID_ = std::int32_t>
class QueryEngine {
 public:
  using View = typename SnapshotStore<NodeID_>::View;

  explicit QueryEngine(std::int64_t num_nodes)
      : live_(identity_labels<NodeID_>(num_nodes)), store_(num_nodes) {}

  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(live_.size());
  }

  /// Epoch of the currently published snapshot (starts at 1; each
  /// publish() increments it).  Monotone non-decreasing across calls.
  [[nodiscard]] std::uint64_t epoch() const { return store_.epoch(); }

  // ---- read plane ---------------------------------------------------------

  /// Pins the current snapshot.  Concurrency-safe; any number of readers.
  [[nodiscard]] View acquire() const { return store_.acquire(); }

  /// Single-query conveniences; each pins the snapshot for one call.
  /// All of them throw VertexRangeError on an id outside [0, num_nodes()).
  [[nodiscard]] bool connected(NodeID_ u, NodeID_ v) const {
    check_vertex(u);
    check_vertex(v);
    const View view = store_.acquire();
    telemetry::on_queries_served(1);
    return view.connected(u, v);
  }

  [[nodiscard]] NodeID_ component_of(NodeID_ u) const {
    check_vertex(u);
    const View view = store_.acquire();
    telemetry::on_queries_served(1);
    return view.component_of(u);
  }

  [[nodiscard]] std::int64_t component_size(NodeID_ u) const {
    check_vertex(u);
    const View view = store_.acquire();
    telemetry::on_queries_served(1);
    return view.component_size(u);
  }

  [[nodiscard]] std::int64_t component_count() const {
    return store_.acquire().component_count();
  }

  /// Answers every query in the batch against ONE snapshot (stamped into
  /// batch.epoch) with an OpenMP-parallel sweep over the SoA columns.
  /// Throws VertexRangeError (before touching outputs) on any bad id.
  void answer(QueryBatch<NodeID_>& batch) const {
    const std::int64_t count = static_cast<std::int64_t>(batch.count());
    for (std::int64_t i = 0; i < count; ++i) {
      check_vertex(batch.u[i]);
      check_vertex(batch.v[i]);
    }
    store_.answer(batch);
  }

  // ---- write plane (single writer) ---------------------------------------

  /// Applies a batch of edges to the live forest via link() (parallel over
  /// the batch; link is lock-free).  The published snapshot is NOT
  /// affected — queries keep reading the previous epoch until publish().
  /// Throws VertexRangeError on any bad endpoint (before applying
  /// anything) and std::logic_error on concurrent writer calls.
  void apply_batch(const EdgeList<NodeID_>& batch) {
    apply_batch(batch.data(), batch.size());
  }

  /// Span-style overload so drivers can slice one big edge list into
  /// batches without copying.
  void apply_batch(const EdgePair<NodeID_>* edges, std::size_t count) {
    const WriterLock lock(writer_active_, "QueryEngine");
    const std::int64_t m = static_cast<std::int64_t>(count);
    for (std::int64_t i = 0; i < m; ++i) {
      check_vertex(edges[i].u);
      check_vertex(edges[i].v);
    }
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < m; ++i)
      link(edges[i].u, edges[i].v, live_);
    telemetry::on_edges_ingested(static_cast<std::uint64_t>(m));
  }

  /// Compacts the live forest and publishes it as a new snapshot (epoch +1).
  /// Failpoints serve.compact / serve.swap fire before the respective step;
  /// either leaves the engine fully serviceable on the previous epoch.
  void publish() {
    const WriterLock lock(writer_active_, "QueryEngine");
    {
      const telemetry::ScopedPhase phase("serve.compact");
      failpoint_maybe_fail("serve.compact");
      // Quiescent for the live array: the single writer is here, readers
      // only touch snapshots.  compress keeps every access atomic anyway
      // (it is shared with the concurrent offline kernels).
      compress_all(live_);
    }
    store_.publish(live_);
  }

  /// Convenience: apply a batch and immediately publish the result.
  void apply_and_publish(const EdgeList<NodeID_>& batch) {
    apply_batch(batch);
    publish();
  }

  /// Snapshot of the published labels (deep copy; for verification).
  [[nodiscard]] ComponentLabels<NodeID_> labels() const {
    const View view = store_.acquire();
    return view.labels().clone();
  }

 private:
  void check_vertex(NodeID_ v) const {
    check_vertex_range("QueryEngine", v, num_nodes());
  }

  ComponentLabels<NodeID_> live_;  ///< parent forest, written via link()
  SnapshotStore<NodeID_> store_;
  mutable std::atomic<bool> writer_active_{false};
};

}  // namespace afforest::serve
