// Concurrent connectivity query engine: snapshot reads over a live
// Afforest forest.
//
// The ROADMAP north-star is a serving system, not an offline kernel.  This
// layer turns the paper's primitives into one:
//
//   * a single WRITER applies batched add_edge updates with link() (§III-B:
//     each edge is applied once, in any order — exactly the property that
//     lets updates stream in) and periodically compacts the forest with
//     compress() and publishes a new snapshot;
//   * many READERS answer connected / component_of / component_size against
//     an immutable, epoch-versioned snapshot label array.
//
// Snapshot machinery: two label buffers (double buffering) behind one
// atomic published pointer — an RCU-style swap.  publish() compresses the
// live forest (depth <= 1, labels = min vertex id per component, the
// convention every offline kernel here shares), waits for the grace period
// of the buffer it is about to overwrite (reader refcount drains to zero),
// fills it, and release-stores the pointer.  Readers acquire-load the
// pointer, increment the buffer's refcount, and RE-CHECK the pointer: a
// reader that lost a race with two intervening publishes backs off instead
// of pinning a buffer the writer already reclaimed.  The release/acquire
// pair on `published_` is the happens-before edge that makes the buffer
// contents plain-readable; the refcount protocol is what keeps the writer
// from overwriting a buffer mid-read.
//
// Consistency guarantees (tested in tests/serve/linearizability_test.cpp,
// documented in docs/SERVING.md):
//   * snapshot isolation — every query in a batch is answered against one
//     snapshot, stamped with its epoch;
//   * monotone connectivity — edges are only added, snapshots only advance,
//     so once a reader observes connected(u, v) no later query may observe
//     them disconnected (Lemma 4's grow-only forest, lifted to epochs);
//   * freshness lag only — a query may miss edges applied after the last
//     publish, never edges published before its snapshot.
//
// Failure discipline: the compaction and swap paths carry failpoints
// (serve.compact / serve.swap — see docs/ROBUSTNESS.md) and the
// grace-period wait runs under a convergence guard, so a reader that never
// releases a snapshot surfaces as a typed ConvergenceError instead of a
// silent writer livelock.
//
// lint-scope: cc
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "analysis/telemetry.hpp"
#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "cc/guards.hpp"
#include "graph/edge_list.hpp"
#include "serve/query_batch.hpp"
#include "util/env.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/pvector.hpp"

namespace afforest::serve {

/// Spin ceiling for the publish grace period and the reader re-check loop.
/// A reader parks a snapshot for the duration of one batch answer; the
/// default of 2^30 yields is orders of magnitude beyond any legitimate
/// batch, so hitting the ceiling means a leaked View (reader bug),
/// reported as a typed ConvergenceError rather than a hung writer.
/// AFFOREST_SERVE_SPIN_CEILING overrides the default (tests use a tiny
/// value to exercise the guard without minutes of spinning).
inline std::int64_t serve_spin_ceiling() {
  if (const auto v = env::as_int64("AFFOREST_SERVE_SPIN_CEILING");
      v && *v > 0)
    return *v;
  return std::int64_t{1} << 30;
}

template <typename NodeID_ = std::int32_t>
class QueryEngine {
  struct Snapshot {
    ComponentLabels<NodeID_> labels;   ///< depth-0: labels[v] is v's root
    pvector<std::int64_t> sizes;       ///< sizes[r] = |component r|, valid at roots
    std::uint64_t epoch = 0;
    // mutable: Views hold const Snapshot* (labels are immutable through a
    // View) but must still drop their pin in release().
    mutable std::atomic<std::int64_t> readers{0};
  };

 public:
  /// A pinned snapshot: holds the buffer's refcount for its lifetime, so
  /// keep Views short-lived (one query or one batch).  Movable, not
  /// copyable.
  class View {
   public:
    View(View&& other) noexcept : snap_(other.snap_) { other.snap_ = nullptr; }
    View& operator=(View&& other) noexcept {
      if (this != &other) {
        release();
        snap_ = other.snap_;
        other.snap_ = nullptr;
      }
      return *this;
    }
    View(const View&) = delete;
    View& operator=(const View&) = delete;
    ~View() { release(); }

    [[nodiscard]] std::uint64_t epoch() const { return snap_->epoch; }

    /// True iff u and v were connected as of this snapshot.  O(1): the
    /// snapshot is fully compressed, so labels are component ids.
    // lint: parallel-context
    [[nodiscard]] bool connected(NodeID_ u, NodeID_ v) const {
      const auto& labels = snap_->labels;
      return atomic_load(labels[u]) == atomic_load(labels[v]);
    }

    /// Component id (minimum vertex id in the component) of u.
    // lint: parallel-context
    [[nodiscard]] NodeID_ component_of(NodeID_ u) const {
      const auto& labels = snap_->labels;
      return atomic_load(labels[u]);
    }

    /// Number of vertices in u's component.
    // lint: parallel-context
    [[nodiscard]] std::int64_t component_size(NodeID_ u) const {
      const auto& labels = snap_->labels;
      return snap_->sizes[atomic_load(labels[u])];
    }

    /// Number of components in this snapshot (O(|V|) scan).
    [[nodiscard]] std::int64_t component_count() const {
      const auto& labels = snap_->labels;
      const std::int64_t n = static_cast<std::int64_t>(labels.size());
      std::int64_t roots = 0;
#pragma omp parallel for reduction(+ : roots) schedule(static)
      for (std::int64_t x = 0; x < n; ++x)
        if (atomic_load(labels[x]) == static_cast<NodeID_>(x)) ++roots;
      return roots;
    }

   private:
    friend class QueryEngine;
    explicit View(const Snapshot* snap) : snap_(snap) {}
    void release() {
      if (snap_ != nullptr)
        snap_->readers.fetch_sub(1, std::memory_order_acq_rel);
      snap_ = nullptr;
    }

    const Snapshot* snap_;
  };

  explicit QueryEngine(std::int64_t num_nodes)
      : live_(identity_labels<NodeID_>(num_nodes)) {
    for (Snapshot& s : buffers_) {
      s.labels = identity_labels<NodeID_>(num_nodes);
      s.sizes = pvector<std::int64_t>(static_cast<std::size_t>(num_nodes),
                                      std::int64_t{1});
    }
    buffers_[0].epoch = 1;
    published_.store(&buffers_[0], std::memory_order_release);
  }

  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(live_.size());
  }

  /// Epoch of the currently published snapshot (starts at 1; each
  /// publish() increments it).  Monotone non-decreasing across calls.
  [[nodiscard]] std::uint64_t epoch() const { return acquire().epoch(); }

  // ---- read plane ---------------------------------------------------------

  /// Pins the current snapshot.  Concurrency-safe; any number of readers.
  [[nodiscard]] View acquire() const {
    std::int64_t spins = 0;
    for (;;) {
      Snapshot* snap = published_.load(std::memory_order_acquire);
      snap->readers.fetch_add(1, std::memory_order_acq_rel);
      // Re-check: if a publish landed between the load and the increment,
      // the writer may already have reclaimed `snap` for the next epoch —
      // back off and pin the fresh pointer instead.
      if (published_.load(std::memory_order_acquire) == snap)
        return View(snap);
      snap->readers.fetch_sub(1, std::memory_order_acq_rel);
      check_convergence_guard("serve.acquire", ++spins, serve_spin_ceiling());
      std::this_thread::yield();
    }
  }

  /// Single-query conveniences; each pins the snapshot for one call.
  [[nodiscard]] bool connected(NodeID_ u, NodeID_ v) const {
    check_vertex(u);
    check_vertex(v);
    const View view = acquire();
    telemetry::on_queries_served(1);
    return view.connected(u, v);
  }

  [[nodiscard]] NodeID_ component_of(NodeID_ u) const {
    check_vertex(u);
    const View view = acquire();
    telemetry::on_queries_served(1);
    return view.component_of(u);
  }

  [[nodiscard]] std::int64_t component_size(NodeID_ u) const {
    check_vertex(u);
    const View view = acquire();
    telemetry::on_queries_served(1);
    return view.component_size(u);
  }

  [[nodiscard]] std::int64_t component_count() const {
    return acquire().component_count();
  }

  /// Answers every query in the batch against ONE snapshot (stamped into
  /// batch.epoch) with an OpenMP-parallel sweep over the SoA columns.
  /// Throws std::out_of_range (before touching outputs) on any bad id.
  void answer(QueryBatch<NodeID_>& batch) const {
    const std::int64_t count = static_cast<std::int64_t>(batch.count());
    for (std::int64_t i = 0; i < count; ++i) {
      check_vertex(batch.u[i]);
      check_vertex(batch.v[i]);
    }
    batch.connected.resize(batch.count());
    batch.component.resize(batch.count());
    batch.component_size.resize(batch.count());

    const View view = acquire();
    batch.epoch = view.epoch();
    const auto& labels = view.snap_->labels;
    const auto& sizes = view.snap_->sizes;
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < count; ++i) {
      const NodeID_ lu = atomic_load(labels[batch.u[i]]);
      const NodeID_ lv = atomic_load(labels[batch.v[i]]);
      batch.connected[i] = static_cast<std::uint8_t>(lu == lv);
      batch.component[i] = lu;
      batch.component_size[i] = sizes[lu];
    }
    telemetry::on_queries_served(static_cast<std::uint64_t>(count));
  }

  // ---- write plane (single writer) ---------------------------------------

  /// Applies a batch of edges to the live forest via link() (parallel over
  /// the batch; link is lock-free).  The published snapshot is NOT
  /// affected — queries keep reading the previous epoch until publish().
  /// Throws std::out_of_range on any bad endpoint (before applying
  /// anything) and std::logic_error on concurrent writer calls.
  void apply_batch(const EdgeList<NodeID_>& batch) {
    apply_batch(batch.data(), batch.size());
  }

  /// Span-style overload so drivers can slice one big edge list into
  /// batches without copying.
  void apply_batch(const EdgePair<NodeID_>* edges, std::size_t count) {
    const WriterLock lock(*this);
    const std::int64_t m = static_cast<std::int64_t>(count);
    for (std::int64_t i = 0; i < m; ++i) {
      check_vertex(edges[i].u);
      check_vertex(edges[i].v);
    }
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < m; ++i)
      link(edges[i].u, edges[i].v, live_);
    telemetry::on_edges_ingested(static_cast<std::uint64_t>(m));
  }

  /// Compacts the live forest and publishes it as a new snapshot (epoch +1).
  /// Failpoints serve.compact / serve.swap fire before the respective step;
  /// either leaves the engine fully serviceable on the previous epoch.
  void publish() {
    const WriterLock lock(*this);
    {
      const telemetry::ScopedPhase phase("serve.compact");
      failpoint_maybe_fail("serve.compact");
      // Quiescent for the live array: the single writer is here, readers
      // only touch snapshots.  compress keeps every access atomic anyway
      // (it is shared with the concurrent offline kernels).
      compress_all(live_);
    }

    Snapshot& next =
        buffers_[1 - published_index_];  // the buffer published 2 epochs ago
    // Grace period: readers that pinned `next` before the previous swap
    // must drain before we overwrite it.
    std::int64_t spins = 0;
    const std::int64_t ceiling = serve_spin_ceiling();
    while (next.readers.load(std::memory_order_acquire) != 0) {
      check_convergence_guard("serve.publish.drain", ++spins, ceiling);
      std::this_thread::yield();
    }

    const std::int64_t n = num_nodes();
    {
      auto& labels = next.labels;
      auto& sizes = next.sizes;
#pragma omp parallel for schedule(static)
      for (std::int64_t x = 0; x < n; ++x) {
        atomic_store(labels[x],
                     atomic_load(live_[static_cast<std::size_t>(x)]));
        sizes[x] = 0;  // owner-exclusive init write; accumulated below
      }
#pragma omp parallel for schedule(static)
      for (std::int64_t x = 0; x < n; ++x)
        fetch_and_add(sizes[atomic_load(labels[x])], std::int64_t{1});
    }

    failpoint_maybe_fail("serve.swap");
    next.epoch = ++epoch_counter_;
    published_index_ = 1 - published_index_;
    published_.store(&next, std::memory_order_release);
    telemetry::on_snapshot_swap();
  }

  /// Convenience: apply a batch and immediately publish the result.
  void apply_and_publish(const EdgeList<NodeID_>& batch) {
    apply_batch(batch);
    publish();
  }

  /// Snapshot of the published labels (deep copy; for verification).
  [[nodiscard]] ComponentLabels<NodeID_> labels() const {
    const View view = acquire();
    return view.snap_->labels.clone();
  }

 private:
  /// Single-writer discipline: apply_batch/publish are mutually exclusive.
  /// Overlapping writer calls are a caller bug, reported loudly.
  struct WriterLock {
    explicit WriterLock(const QueryEngine& engine) : engine_(engine) {
      if (engine_.writer_active_.exchange(true, std::memory_order_acq_rel))
        throw std::logic_error(
            "QueryEngine: concurrent writer calls (apply_batch/publish "
            "require a single writer)");
    }
    ~WriterLock() {
      engine_.writer_active_.store(false, std::memory_order_release);
    }
    WriterLock(const WriterLock&) = delete;
    WriterLock& operator=(const WriterLock&) = delete;
    const QueryEngine& engine_;
  };

  void check_vertex(NodeID_ v) const {
    if (v < 0 || static_cast<std::int64_t>(v) >= num_nodes())
      throw std::out_of_range("QueryEngine: vertex id " + std::to_string(v) +
                              " outside [0, " + std::to_string(num_nodes()) +
                              ")");
  }

  ComponentLabels<NodeID_> live_;  ///< parent forest, written via link()
  Snapshot buffers_[2];
  std::atomic<Snapshot*> published_{nullptr};
  std::int32_t published_index_ = 0;   ///< writer-only
  std::uint64_t epoch_counter_ = 1;    ///< writer-only
  mutable std::atomic<bool> writer_active_{false};
};

}  // namespace afforest::serve
