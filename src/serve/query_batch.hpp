// SoA query batch for the serving layer.
//
// Readers amortize snapshot acquisition and the telemetry hook over a whole
// batch: QueryEngine::answer() pins one snapshot, fills every output column
// in parallel, and stamps the batch with the snapshot's epoch so callers can
// reason about which prefix of the update stream their answers reflect.
//
// Structure-of-arrays on purpose: the answer loop streams through four dense
// arrays instead of hopping across an array of structs, the same locality
// argument the paper makes for label arrays (§IV-A) applied to the query
// plane.
#pragma once

#include <cstdint>

#include "util/pvector.hpp"

namespace afforest::serve {

/// A batch of connectivity queries.  Each entry i asks about the pair
/// (u[i], v[i]); point queries (component_of / component_size) read the
/// per-u outputs and may pass v == u.  Outputs are (re)sized by
/// QueryEngine::answer(); input columns are untouched, so a batch can be
/// re-answered against later snapshots to observe epoch progress.
template <typename NodeID_ = std::int32_t>
struct QueryBatch {
  // inputs
  pvector<NodeID_> u;
  pvector<NodeID_> v;

  // outputs, all indexed like u/v
  pvector<std::uint8_t> connected;      ///< 1 iff u[i] and v[i] share a component
  pvector<NodeID_> component;           ///< component_of(u[i]) (min vertex id)
  pvector<std::int64_t> component_size; ///< |component of u[i]|

  /// Epoch of the snapshot that answered this batch; every entry of one
  /// batch is answered against the same snapshot.
  std::uint64_t epoch = 0;

  [[nodiscard]] std::size_t count() const { return u.size(); }
  [[nodiscard]] bool empty() const { return u.empty(); }

  void add(NodeID_ uu, NodeID_ vv) {
    u.push_back(uu);
    v.push_back(vv);
  }

  void clear() {
    u.clear();
    v.clear();
    connected.clear();
    component.clear();
    component_size.clear();
    epoch = 0;
  }
};

}  // namespace afforest::serve
