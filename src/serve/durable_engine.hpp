// Crash-safe serving engine: DynamicCC (optionally windowed) behind a
// write-ahead log and periodic checkpoints, with recovery on open.
//
// Every mutating operation follows the WAL discipline:
//
//   validate → journal (wal.hpp) → apply → publish → maybe checkpoint
//
// so at any instant the durable directory determines the state exactly:
// the newest checkpoint the manifest names, plus the WAL records after its
// seq.  Opening a DurableEngine on an existing directory performs recovery
// (phases "recover.load" / "recover.replay" in telemetry, counters
// wal_records_replayed / wal_torn_tail_truncations): load the checkpoint
// via DynamicCC::restore_state, replay the WAL suffix through the same
// apply paths the live ops use, truncate any torn tail, and raise the
// snapshot epoch floor so post-recovery epochs stay monotone with what
// pre-crash readers observed.  Recovery equivalence — recovered labels ==
// a from-scratch oracle over the durable prefix — is pinned by
// tests/serve/crash_sweep_test.cpp (in-process kills at every durability
// failpoint), tests/integration/durable_crash_test.cpp (real process
// kills via AFFOREST_FAILPOINT_LETHAL), and tests/fuzz/durable_fuzz_test.cpp
// (byte-level corruption).
//
// Failure discipline: if an operation throws mid-flight (injected fault or
// real I/O error), the in-memory state and the log may disagree, so the
// engine poisons itself — every later mutation throws std::logic_error,
// and the one recovery path is to construct a fresh DurableEngine on the
// directory.  That mirrors the WAL's own torn-append poisoning and keeps
// "crashed process" and "caught exception" on the identical recovery road.
//
// Checkpoints rotate the WAL: a checkpoint at seq S writes ckpt-S.afck
// (atomic rename), starts wal-(S+1).log, atomically repoints the manifest,
// and only then garbage-collects the previous segment — a crash between
// any two steps leaves the previous manifest naming a complete pair.
// Orphan files from such crashes are swept at the next successful open or
// checkpoint; the manifest is the root of trust and unreferenced
// wal-*/ckpt-*/*.tmp files are dead by definition.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/telemetry.hpp"
#include "cc/common.hpp"
#include "graph/edge_list.hpp"
#include "graph/io_error.hpp"
#include "serve/checkpoint.hpp"
#include "serve/dynamic_cc.hpp"
#include "serve/posix_file.hpp"
#include "serve/wal.hpp"
#include "serve/windowed_stream.hpp"
#include "util/failpoint.hpp"

namespace afforest::serve {

struct DurableOptions {
  std::string dir;  ///< durable directory (created if absent)
  std::uint64_t window = 0;  ///< resident batches W; 0 = unwindowed engine
  /// Checkpoint automatically after this many WAL records (0 = only when
  /// checkpoint() is called explicitly).
  std::uint64_t checkpoint_every = 0;
  WalSync sync = WalSync::kFsync;
};

/// What recovery found when the engine opened its directory.
struct RecoveryStats {
  bool recovered = false;  ///< false = fresh directory bootstrap
  std::uint64_t checkpoint_seq = 0;    ///< 0 = no checkpoint, WAL-only
  std::uint64_t checkpoint_epoch = 0;
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t wal_torn_bytes = 0;    ///< torn tail discarded on open
  std::uint64_t last_seq = 0;          ///< durable seq after recovery
};

template <typename NodeID_ = std::int32_t>
class DurableEngine {
 public:
  using View = typename DynamicCC<NodeID_>::View;

  DurableEngine(std::int64_t num_nodes, DurableOptions opts)
      : opts_(std::move(opts)), engine_(num_nodes) {
    if (opts_.dir.empty())
      throw std::invalid_argument("DurableEngine: empty durable directory");
    if (opts_.window > 0)
      stream_.emplace(engine_, static_cast<std::size_t>(opts_.window));
    ensure_dir(opts_.dir);
    if (path_exists(manifest_path(opts_.dir)))
      recover();
    else
      bootstrap();
  }

  // ---- read plane (delegates to DynamicCC's wait-free protocol) ----------

  [[nodiscard]] std::int64_t num_nodes() const { return engine_.num_nodes(); }
  [[nodiscard]] View acquire() const { return engine_.acquire(); }
  [[nodiscard]] std::uint64_t epoch() const { return engine_.epoch(); }
  [[nodiscard]] bool connected(NodeID_ u, NodeID_ v) const {
    return engine_.connected(u, v);
  }
  [[nodiscard]] NodeID_ component_of(NodeID_ u) const {
    return engine_.component_of(u);
  }
  [[nodiscard]] std::int64_t component_size(NodeID_ u) const {
    return engine_.component_size(u);
  }
  [[nodiscard]] std::int64_t component_count() const {
    return engine_.component_count();
  }
  void answer(QueryBatch<NodeID_>& batch) const { engine_.answer(batch); }
  [[nodiscard]] ComponentLabels<NodeID_> live_labels() const {
    return engine_.live_labels();
  }
  [[nodiscard]] ComponentLabels<NodeID_> published_labels() const {
    return engine_.published_labels();
  }

  // ---- durability introspection ------------------------------------------

  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return recovery_;
  }
  /// Seq of the last operation journaled (and applied) by this engine.
  [[nodiscard]] std::uint64_t last_seq() const { return wal_->last_seq(); }
  [[nodiscard]] bool windowed() const { return stream_.has_value(); }
  [[nodiscard]] const std::string& dir() const { return opts_.dir; }

  // ---- write plane (single writer; journal-then-apply) -------------------

  /// Inserts a batch.  In windowed mode this is a stream tick: the batch
  /// becomes resident and the oldest batch expires once the window is
  /// over capacity.
  void insert(const EdgeList<NodeID_>& batch) {
    mutate(WalRecordType::kInsert, batch);
  }

  /// Deletes a batch (each entry removes one surviving copy).
  void erase(const EdgeList<NodeID_>& batch) {
    mutate(WalRecordType::kDelete, batch);
  }

  /// Windowed mode only: expires the oldest resident batch without
  /// inserting a new one.
  void tick() {
    if (!stream_.has_value())
      throw std::logic_error("DurableEngine::tick: engine is not windowed");
    mutate(WalRecordType::kTick, EdgeList<NodeID_>{});
  }

  /// Serializes the full engine state at the current seq, rotates the WAL,
  /// repoints the manifest, and garbage-collects the superseded files.
  // lint: single-writer(checkpoint() only const-reads engine state and
  // rotates files; it inherits the caller's single-writer contract — a
  // racing mutate() would trip require_healthy on poisoned_, and the
  // crash sweep pins every interleaving of the rotation steps)
  void checkpoint() {
    require_healthy();
    poisoned_ = true;
    const std::uint64_t seq = wal_->last_seq();
    CheckpointData data;
    data.seq = seq;
    data.epoch = engine_.epoch();
    data.num_nodes = static_cast<std::uint64_t>(engine_.num_nodes());
    data.window = opts_.window;
    const ComponentLabels<NodeID_> labels = engine_.live_labels();
    data.labels.reserve(labels.size());
    for (std::size_t v = 0; v < labels.size(); ++v)
      data.labels.push_back(static_cast<std::int64_t>(labels[v]));
    for (const auto& [u, v] : engine_.forest_snapshot())
      data.forest_edges.emplace_back(u, v);
    for (const auto& entry : engine_.adjacency_snapshot())
      data.adjacency.push_back({entry.u, entry.v, entry.copies});
    if (stream_.has_value()) {
      for (const EdgeList<NodeID_>& batch : stream_->resident()) {
        std::vector<std::pair<std::int64_t, std::int64_t>> out;
        out.reserve(batch.size());
        for (const auto& [u, v] : batch) out.emplace_back(u, v);
        data.ring.push_back(std::move(out));
      }
    }

    const std::string ckpt_name = "ckpt-" + std::to_string(seq) + ".afck";
    write_checkpoint(opts_.dir + "/" + ckpt_name, data);

    const std::string wal_name = "wal-" + std::to_string(seq + 1) + ".log";
    const std::string wal_path = opts_.dir + "/" + wal_name;
    // A crash after a previous checkpoint's rename but before its manifest
    // update can leave this exact name behind; it is unreferenced garbage.
    remove_file(wal_path);
    WalHeader header;
    header.num_nodes = data.num_nodes;
    header.window = opts_.window;
    header.start_seq = seq + 1;
    WalWriter next_wal = WalWriter::create(wal_path, header, opts_.sync);

    Manifest manifest;
    manifest.num_nodes = data.num_nodes;
    manifest.window = opts_.window;
    manifest.checkpoint_file = ckpt_name;
    manifest.wal_file = wal_name;
    manifest.seq = seq;
    write_manifest(opts_.dir, manifest);

    // The new pair is durable and named; everything else is now dead.
    wal_.emplace(std::move(next_wal));
    manifest_ = manifest;
    records_since_checkpoint_ = 0;
    gc_unreferenced();
    telemetry::on_wal_checkpoint();
    poisoned_ = false;
  }

 private:
  void require_healthy() const {
    if (poisoned_)
      throw std::logic_error(
          "DurableEngine: a previous operation failed mid-flight; reopen "
          "the durable directory to recover");
  }

  /// Journal-then-apply for every mutation type.  Poisons the engine if
  /// any step throws: the log and memory may disagree, and recovery (a
  /// fresh open) is the only sound way back.
  void mutate(WalRecordType type, const EdgeList<NodeID_>& batch) {
    require_healthy();
    for (const auto& [u, v] : batch) {
      check_vertex_range("DurableEngine", u, engine_.num_nodes());
      check_vertex_range("DurableEngine", v, engine_.num_nodes());
    }
    poisoned_ = true;
    WalRecord record;
    record.type = type;
    record.seq = wal_->last_seq() + 1;
    record.epoch = engine_.epoch();
    record.edges.reserve(batch.size());
    for (const auto& [u, v] : batch)
      record.edges.emplace_back(static_cast<std::int64_t>(u),
                                static_cast<std::int64_t>(v));
    wal_->append(record);
    apply(type, batch);
    ++records_since_checkpoint_;
    poisoned_ = false;
    if (opts_.checkpoint_every > 0 &&
        records_since_checkpoint_ >= opts_.checkpoint_every)
      checkpoint();
  }

  /// The one apply path, shared verbatim by live mutations and replay —
  /// recovery equivalence depends on there being no second interpretation
  /// of a record.
  void apply(WalRecordType type, const EdgeList<NodeID_>& batch) {
    switch (type) {
      case WalRecordType::kInsert:
        if (stream_.has_value()) {
          stream_->push(batch.clone());  // the ring keeps its own copy
        } else {
          engine_.apply_inserts(batch);
          engine_.publish();
        }
        return;
      case WalRecordType::kDelete:
        engine_.apply_deletes(batch);
        engine_.publish();
        return;
      case WalRecordType::kTick:
        stream_->expire_oldest();
        return;
    }
  }

  /// Fresh directory: no manifest yet, so nothing is durable.  Any
  /// leftover wal-1.log from a bootstrap that crashed before its manifest
  /// write is dead and replaced.
  void bootstrap() {
    const std::string wal_name = "wal-1.log";
    const std::string wal_path = opts_.dir + "/" + wal_name;
    remove_file(wal_path);
    WalHeader header;
    header.num_nodes = static_cast<std::uint64_t>(engine_.num_nodes());
    header.window = opts_.window;
    header.start_seq = 1;
    wal_.emplace(WalWriter::create(wal_path, header, opts_.sync));
    Manifest manifest;
    manifest.num_nodes = header.num_nodes;
    manifest.window = opts_.window;
    manifest.wal_file = wal_name;
    manifest.seq = 0;
    write_manifest(opts_.dir, manifest);
    manifest_ = manifest;
    engine_.publish();
  }

  void recover() {
    manifest_ = read_manifest(opts_.dir);
    const std::string manifest_file = manifest_path(opts_.dir);
    if (manifest_.num_nodes !=
        static_cast<std::uint64_t>(engine_.num_nodes()))
      throw IoError(IoErrorKind::kCorruptHeader, manifest_file,
                    "manifest num_nodes " +
                        std::to_string(manifest_.num_nodes) +
                        " != engine num_nodes " +
                        std::to_string(engine_.num_nodes()));
    if (manifest_.window != opts_.window)
      throw IoError(IoErrorKind::kCorruptHeader, manifest_file,
                    "manifest window " + std::to_string(manifest_.window) +
                        " != configured window " +
                        std::to_string(opts_.window));
    recovery_.recovered = true;

    {
      const telemetry::ScopedPhase phase("recover.load");
      if (!manifest_.checkpoint_file.empty())
        load_checkpoint(opts_.dir + "/" + manifest_.checkpoint_file);
    }
    {
      const telemetry::ScopedPhase phase("recover.replay");
      replay_wal(opts_.dir + "/" + manifest_.wal_file);
    }
    engine_.publish();
    recovery_.last_seq = wal_->last_seq();
    records_since_checkpoint_ = wal_->last_seq() - manifest_.seq;
    gc_unreferenced();
  }

  void load_checkpoint(const std::string& path) {
    const CheckpointData data = read_checkpoint(path);
    if (data.num_nodes != static_cast<std::uint64_t>(engine_.num_nodes()) ||
        data.window != opts_.window || data.seq != manifest_.seq)
      throw IoError(IoErrorKind::kCorruptHeader, path,
                    "checkpoint identity (num_nodes/window/seq) disagrees "
                    "with the manifest");
    std::vector<NodeID_> labels;
    labels.reserve(data.labels.size());
    for (const std::int64_t label : data.labels)
      labels.push_back(static_cast<NodeID_>(label));
    std::vector<std::pair<NodeID_, NodeID_>> forest;
    forest.reserve(data.forest_edges.size());
    for (const auto& [u, v] : data.forest_edges)
      forest.emplace_back(static_cast<NodeID_>(u), static_cast<NodeID_>(v));
    std::vector<typename DynamicCC<NodeID_>::EdgeMultiplicity> adjacency;
    adjacency.reserve(data.adjacency.size());
    for (const auto& entry : data.adjacency)
      adjacency.push_back({static_cast<NodeID_>(entry.u),
                           static_cast<NodeID_>(entry.v),
                           entry.multiplicity});
    try {
      engine_.restore_state(labels, forest, adjacency);
    } catch (const std::invalid_argument& e) {
      // CRC-valid but semantically inconsistent state: typed rejection,
      // never a silently wrong engine.
      throw IoError(IoErrorKind::kCorruptHeader, path, e.what());
    }
    if (stream_.has_value()) {
      std::deque<EdgeList<NodeID_>> ring;
      for (const auto& batch : data.ring) {
        EdgeList<NodeID_> restored;
        restored.reserve(batch.size());
        for (const auto& [u, v] : batch)
          restored.push_back(
              {static_cast<NodeID_>(u), static_cast<NodeID_>(v)});
        ring.push_back(std::move(restored));
      }
      try {
        stream_->restore_ring(std::move(ring));
      } catch (const std::invalid_argument& e) {
        throw IoError(IoErrorKind::kCorruptHeader, path, e.what());
      }
    } else if (!data.ring.empty()) {
      throw IoError(IoErrorKind::kCorruptHeader, path,
                    "checkpoint carries a window ring but the engine is "
                    "unwindowed");
    }
    recovery_.checkpoint_seq = data.seq;
    recovery_.checkpoint_epoch = data.epoch;
    engine_.set_epoch_floor(data.epoch);
  }

  void replay_wal(const std::string& path) {
    WalScan scan;
    wal_.emplace(WalWriter::open_for_append(path, opts_.sync, &scan));
    if (scan.header.num_nodes !=
            static_cast<std::uint64_t>(engine_.num_nodes()) ||
        scan.header.window != opts_.window ||
        scan.header.start_seq != manifest_.seq + 1)
      throw IoError(IoErrorKind::kCorruptHeader, path,
                    "WAL header identity (num_nodes/window/start_seq) "
                    "disagrees with the manifest");
    recovery_.wal_torn_bytes = scan.torn_bytes;
    // Epoch floor: nothing published after recovery may reuse an epoch a
    // pre-crash reader could have seen.  Records journal the epoch as of
    // their append, so the last record's epoch bounds what was observable.
    std::uint64_t epoch_floor = recovery_.checkpoint_epoch;
    for (const WalRecord& record : scan.records)
      if (record.epoch > epoch_floor) epoch_floor = record.epoch;
    engine_.set_epoch_floor(epoch_floor);
    for (const WalRecord& record : scan.records) {
      failpoint_maybe_fail("recover.replay");
      EdgeList<NodeID_> batch;
      batch.reserve(record.edges.size());
      for (const auto& [u, v] : record.edges) {
        if (u < 0 || u >= engine_.num_nodes() || v < 0 ||
            v >= engine_.num_nodes())
          throw IoError(IoErrorKind::kOutOfRangeNeighbor, path,
                        "WAL record " + std::to_string(record.seq) +
                            " endpoint outside [0, " +
                            std::to_string(engine_.num_nodes()) + ")");
        batch.push_back({static_cast<NodeID_>(u), static_cast<NodeID_>(v)});
      }
      if (record.type == WalRecordType::kTick && !stream_.has_value())
        throw IoError(IoErrorKind::kCorruptHeader, path,
                      "tick record in an unwindowed WAL");
      apply(record.type, batch);
      ++recovery_.wal_records_replayed;
    }
    telemetry::on_wal_replay(recovery_.wal_records_replayed);
  }

  /// Removes every durability file the manifest does not reference.  Only
  /// our own naming patterns are touched (wal-*, ckpt-*, *.tmp, and the
  /// legacy-free MANIFEST name is always kept).
  void gc_unreferenced() {
    for (const std::string& name : list_dir(opts_.dir)) {
      if (name == "MANIFEST" || name == manifest_.wal_file ||
          name == manifest_.checkpoint_file)
        continue;
      const bool ours = name.rfind("wal-", 0) == 0 ||
                        name.rfind("ckpt-", 0) == 0 ||
                        (name.size() > 4 &&
                         name.compare(name.size() - 4, 4, ".tmp") == 0);
      if (ours) remove_file(opts_.dir + "/" + name);
    }
  }

  DurableOptions opts_;
  DynamicCC<NodeID_> engine_;
  std::optional<WindowedStream<NodeID_>> stream_;
  std::optional<WalWriter> wal_;
  Manifest manifest_;
  RecoveryStats recovery_;
  std::uint64_t records_since_checkpoint_ = 0;
  bool poisoned_ = false;
};

}  // namespace afforest::serve
