#include "serve/dynamic_cc.hpp"

#include <sstream>

namespace afforest::serve {

std::string delete_stats_summary(const DeleteStats& stats) {
  std::ostringstream out;
  out << "requested=" << stats.requested << " absent=" << stats.absent
      << " freed=" << stats.freed << " cut_tree=" << stats.cut_tree_edges
      << " rebuild_components=" << stats.rebuild_components
      << " rebuild_vertices=" << stats.rebuild_vertices;
  return out.str();
}

}  // namespace afforest::serve
