// Little-endian byte codec for the durability file formats (wal.hpp,
// checkpoint.hpp).
//
// Fields are packed byte-at-a-time rather than memcpy'd structs so the
// on-disk layout is identical on every host (no padding, no endianness
// surprises) and fully specified by the docs/ROBUSTNESS.md format tables.
// The reader is bounds-checked: every get_* reports whether the buffer had
// enough bytes left, and callers translate an exhausted reader into a
// typed IoError (or a tolerated torn tail) — it never reads past the end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace afforest::serve::wire {

inline void put_u8(std::vector<unsigned char>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  out.push_back(static_cast<unsigned char>(v));
  out.push_back(static_cast<unsigned char>(v >> 8));
  out.push_back(static_cast<unsigned char>(v >> 16));
  out.push_back(static_cast<unsigned char>(v >> 24));
}

inline void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<unsigned char>(v >> shift));
}

inline void put_i64(std::vector<unsigned char>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Bounds-checked sequential reader over a byte span.  get_* return false
/// (leaving the output untouched) once the span is exhausted.
class Reader {
 public:
  Reader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

  bool get_u8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = data_[pos_++];
    return true;
  }

  bool get_u32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8)
      v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
    out = v;
    return true;
  }

  bool get_u64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8)
      v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
    out = v;
    return true;
  }

  bool get_i64(std::int64_t& out) {
    std::uint64_t v = 0;
    if (!get_u64(v)) return false;
    out = static_cast<std::int64_t>(v);
    return true;
  }

  bool skip(std::size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace afforest::serve::wire
