// Single-writer discipline for the serving engines.
//
// apply/publish entry points of QueryEngine and DynamicCC are mutually
// exclusive by contract: overlapping writer calls are a caller bug, and the
// engines report them loudly (std::logic_error) instead of corrupting the
// forest.  The lock is a plain atomic flag — no blocking, no fairness —
// because legitimate callers never contend.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace afforest::serve {

class WriterLock {
 public:
  WriterLock(std::atomic<bool>& flag, const char* who) : flag_(flag) {
    if (flag_.exchange(true, std::memory_order_acq_rel))
      throw std::logic_error(
          std::string(who) +
          ": concurrent writer calls (apply/publish require a single "
          "writer)");
  }
  ~WriterLock() { flag_.store(false, std::memory_order_release); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  std::atomic<bool>& flag_;
};

}  // namespace afforest::serve
