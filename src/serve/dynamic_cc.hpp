// Decremental connectivity serving engine: batched edge deletions over the
// single-writer / snapshot-reader model (ROADMAP "Edge deletions and
// windowed streams").
//
// The add-only stack (IncrementalCC, QueryEngine) leans on Lemma 4's
// grow-only forest: components only merge, so the live parent array plus
// link() is enough.  Deletions break that — a removed edge can split a
// component — so this engine maintains two exact structures under the
// single writer:
//
//   * the surviving edge multiset, as symmetric per-vertex adjacency with
//     multiplicities (the ground truth a rebuild recomputes from), and
//   * a spanning forest of the current graph (cc/spanning_forest.hpp's
//     ForestAdjacency), the certificate that classifies every deletion:
//
//       - NON-TREE edge: on no forest path, so removing it cannot split
//         any component — certified FREE, dropped in O(1).  Duplicate
//         copies and self loops are free for the same reason.
//       - TREE edge: the component MAY split (a surviving non-tree edge can
//         reconnect the two fragments).  The batch collects every cut, then
//         rebuilds ONLY the touched components: affected vertices are
//         gathered by walking the surviving tree adjacency from the cut
//         endpoints (each fragment contains one), the induced surviving
//         subgraph is remapped to compact ids, and the registry's Afforest
//         (afforest_cc) recomputes labels + a fresh spanning forest for
//         exactly that region — rebuild-from-quotient, everything else
//         untouched.
//
// Labels stay exact (fully compressed, minimum vertex id per component)
// after every batch, so publish() is a straight SnapshotStore::publish —
// readers keep the identical wait-free RCU protocol QueryEngine uses, and
// a reader never observes a half-applied batch.  Unlike QueryEngine,
// connectivity is NOT monotone across epochs (that is the point); the
// guarantee is per-epoch snapshot exactness: a batch stamped with epoch e
// answers exactly as a from-scratch recompute over the edge multiset that
// was live at publish e (tested differentially in
// tests/serve/dynamic_differential_test.cpp).
//
// Telemetry: dynamic_deletes_free counts certified-free deletions,
// dynamic_rebuilds / dynamic_rebuild_vertices count touched components and
// relabeled vertices — the streaming perf gate (bench/streaming) pins
// dynamic_rebuilds == 0 on delete-only non-tree passes.
//
// lint-scope: cc
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/telemetry.hpp"
#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "cc/spanning_forest.hpp"
#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "serve/query_batch.hpp"
#include "serve/snapshot_store.hpp"
#include "serve/writer_lock.hpp"
#include "util/pvector.hpp"

namespace afforest::serve {

/// Outcome tally of one apply_inserts batch.
struct InsertStats {
  std::uint64_t requested = 0;   ///< edges in the batch
  std::uint64_t self_loops = 0;  ///< stored but never structural
  std::uint64_t duplicates = 0;  ///< extra copies of an existing edge
  std::uint64_t tree_edges = 0;  ///< insertions that merged two components
};

/// Outcome tally of one apply_deletes batch.  `freed` counts certified-free
/// deletions (non-tree edges, duplicate copies, self loops); a nonzero
/// `rebuild_components` means tree edges were cut and that many components
/// were recomputed.
struct DeleteStats {
  std::uint64_t requested = 0;
  std::uint64_t absent = 0;  ///< no surviving copy existed; a no-op
  std::uint64_t freed = 0;
  std::uint64_t cut_tree_edges = 0;
  std::uint64_t rebuild_components = 0;
  std::uint64_t rebuild_vertices = 0;

  DeleteStats& operator+=(const DeleteStats& o) {
    requested += o.requested;
    absent += o.absent;
    freed += o.freed;
    cut_tree_edges += o.cut_tree_edges;
    rebuild_components += o.rebuild_components;
    rebuild_vertices += o.rebuild_vertices;
    return *this;
  }
};

/// One-line human-readable summary ("requested=.. freed=.. ..") for demos
/// and bench banners.
std::string delete_stats_summary(const DeleteStats& stats);

template <typename NodeID_ = std::int32_t>
class DynamicCC {
 public:
  using View = typename SnapshotStore<NodeID_>::View;

  explicit DynamicCC(std::int64_t num_nodes)
      : adj_(static_cast<std::size_t>(num_nodes)),
        forest_(num_nodes),
        labels_(identity_labels<NodeID_>(num_nodes)),
        store_(num_nodes) {}

  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(adj_.size());
  }

  /// Distinct surviving edges (self loops included, multiplicity ignored).
  [[nodiscard]] std::int64_t num_edges() const { return distinct_edges_; }

  /// Tree edges in the maintained spanning forest.
  [[nodiscard]] std::int64_t num_tree_edges() const {
    return forest_.num_tree_edges();
  }

  // ---- read plane (wait-free, identical protocol to QueryEngine) ---------

  [[nodiscard]] View acquire() const { return store_.acquire(); }

  [[nodiscard]] std::uint64_t epoch() const { return store_.epoch(); }

  [[nodiscard]] bool connected(NodeID_ u, NodeID_ v) const {
    check_vertex(u);
    check_vertex(v);
    const View view = store_.acquire();
    telemetry::on_queries_served(1);
    return view.connected(u, v);
  }

  [[nodiscard]] NodeID_ component_of(NodeID_ u) const {
    check_vertex(u);
    const View view = store_.acquire();
    telemetry::on_queries_served(1);
    return view.component_of(u);
  }

  [[nodiscard]] std::int64_t component_size(NodeID_ u) const {
    check_vertex(u);
    const View view = store_.acquire();
    telemetry::on_queries_served(1);
    return view.component_size(u);
  }

  [[nodiscard]] std::int64_t component_count() const {
    return store_.acquire().component_count();
  }

  /// Answers every query against ONE snapshot (stamped into batch.epoch).
  /// Throws VertexRangeError (before touching outputs) on any bad id.
  void answer(QueryBatch<NodeID_>& batch) const {
    const std::int64_t count = static_cast<std::int64_t>(batch.count());
    for (std::int64_t i = 0; i < count; ++i) {
      check_vertex(batch.u[i]);
      check_vertex(batch.v[i]);
    }
    store_.answer(batch);
  }

  /// Snapshot of the published labels (deep copy; for verification).
  [[nodiscard]] ComponentLabels<NodeID_> published_labels() const {
    const View view = store_.acquire();
    return view.labels().clone();
  }

  /// The writer's current (unpublished) labels — exact after every applied
  /// batch.  Deep copy; the differential oracle compares against this.
  [[nodiscard]] ComponentLabels<NodeID_> live_labels() const {
    return labels_.clone();
  }

  // ---- write plane (single writer) ---------------------------------------

  /// Applies a batch of insertions.  Each first-copy edge is classified
  /// against the maintained forest: merging insertions become tree edges,
  /// the rest are non-tree from birth.  Labels are exact on return; the
  /// published snapshot is unaffected until publish().  Throws
  /// VertexRangeError on any bad endpoint (before applying anything) and
  /// std::logic_error on concurrent writer calls.
  InsertStats apply_inserts(const EdgeList<NodeID_>& batch) {
    return apply_inserts(batch.data(), batch.size());
  }

  InsertStats apply_inserts(const EdgePair<NodeID_>* edges,
                            std::size_t count) {
    const WriterLock lock(writer_active_, "DynamicCC");
    for (std::size_t i = 0; i < count; ++i) {
      check_vertex(edges[i].u);
      check_vertex(edges[i].v);
    }
    InsertStats stats;
    stats.requested = count;
    // Batch-local union-find over component LABELS (not vertices): an
    // insertion is a tree edge iff it merges two components of the graph
    // as of the previous edges.  Union-by-min keeps the min-id label
    // convention, so the relabel pass below lands directly on final labels.
    std::unordered_map<NodeID_, NodeID_> parent;
    bool merged_any = false;
    for (std::size_t i = 0; i < count; ++i) {
      const NodeID_ u = edges[i].u;
      const NodeID_ v = edges[i].v;
      if (u == v) {
        ++stats.self_loops;
        if (++adj_[static_cast<std::size_t>(u)][u] == 1) ++distinct_edges_;
        continue;
      }
      const std::uint32_t copies =
          ++adj_[static_cast<std::size_t>(u)][v];
      ++adj_[static_cast<std::size_t>(v)][u];
      if (copies > 1) {
        ++stats.duplicates;
        continue;  // structural edge already present; forest unaffected
      }
      ++distinct_edges_;
      const NodeID_ ru = uf_find(parent, labels_[static_cast<std::size_t>(u)]);
      const NodeID_ rv = uf_find(parent, labels_[static_cast<std::size_t>(v)]);
      if (ru == rv) continue;  // non-tree from birth
      parent[ru < rv ? rv : ru] = ru < rv ? ru : rv;
      forest_.add_tree_edge(u, v);
      ++stats.tree_edges;
      merged_any = true;
    }
    if (merged_any) {
      const std::int64_t n = num_nodes();
      for (std::int64_t v = 0; v < n; ++v)
        labels_[static_cast<std::size_t>(v)] =
            uf_find(parent, labels_[static_cast<std::size_t>(v)]);
    }
    telemetry::on_edges_ingested(static_cast<std::uint64_t>(count));
    return stats;
  }

  /// Applies a batch of deletions.  Every deletion is classified against
  /// the maintained forest: non-tree edges (and duplicate copies and self
  /// loops) are certified free and dropped in O(1); deleting an edge with
  /// no surviving copy is a counted no-op.  Cut tree edges are collected
  /// and the touched components rebuilt once, at the end of the batch.
  /// Labels are exact on return.  Throws VertexRangeError on any bad
  /// endpoint (before applying anything).
  DeleteStats apply_deletes(const EdgeList<NodeID_>& batch) {
    return apply_deletes(batch.data(), batch.size());
  }

  DeleteStats apply_deletes(const EdgePair<NodeID_>* edges,
                            std::size_t count) {
    const WriterLock lock(writer_active_, "DynamicCC");
    for (std::size_t i = 0; i < count; ++i) {
      check_vertex(edges[i].u);
      check_vertex(edges[i].v);
    }
    DeleteStats stats;
    stats.requested = count;
    std::vector<NodeID_> cut_endpoints;
    for (std::size_t i = 0; i < count; ++i) {
      const NodeID_ u = edges[i].u;
      const NodeID_ v = edges[i].v;
      auto& row_u = adj_[static_cast<std::size_t>(u)];
      const auto it_u = row_u.find(v);
      if (it_u == row_u.end()) {
        ++stats.absent;  // no surviving copy: graceful no-op
        continue;
      }
      if (u == v) {
        if (--(it_u->second) == 0) {
          row_u.erase(it_u);
          --distinct_edges_;
        }
        ++stats.freed;  // self loops are never structural
        continue;
      }
      const std::uint32_t remaining = --(it_u->second);
      auto& row_v = adj_[static_cast<std::size_t>(v)];
      if (remaining == 0) {
        row_u.erase(it_u);
        row_v.erase(row_v.find(u));
        --distinct_edges_;
      } else {
        --(row_v.find(u)->second);
        ++stats.freed;  // a duplicate copy survives; structure unchanged
        continue;
      }
      // Last copy gone: the forest certifies the classification.  The
      // testing knob below deliberately mis-certifies tree edges as free —
      // the teeth check for the differential suite.
      if (!testing_certify_all_free_ && forest_.remove_tree_edge(u, v)) {
        ++stats.cut_tree_edges;
        cut_endpoints.push_back(u);
        cut_endpoints.push_back(v);
      } else {
        ++stats.freed;  // non-tree: on no forest path, certified free
      }
    }
    telemetry::on_dynamic_deletes_free(stats.freed);
    if (!cut_endpoints.empty()) rebuild(cut_endpoints, stats);
    return stats;
  }

  /// Publishes the writer's exact labels as a new epoch-stamped snapshot.
  /// Readers stay wait-free throughout (SnapshotStore's grace-period
  /// protocol); the serve.swap failpoint leaves the previous epoch
  /// serviceable on failure.
  void publish() {
    const WriterLock lock(writer_active_, "DynamicCC");
    const telemetry::ScopedPhase phase("dynamic.publish");
    store_.publish(labels_);
  }

  // ---- introspection (writer-plane; used by benches and tests) -----------

  /// Surviving copies of (u, v); 0 when absent.
  [[nodiscard]] std::uint32_t multiplicity(NodeID_ u, NodeID_ v) const {
    check_vertex(u);
    check_vertex(v);
    const auto& row = adj_[static_cast<std::size_t>(u)];
    const auto it = row.find(v);
    return it == row.end() ? 0 : it->second;
  }

  /// True iff (u, v) is currently a tree edge of the maintained forest.
  [[nodiscard]] bool is_tree_edge(NodeID_ u, NodeID_ v) const {
    check_vertex(u);
    check_vertex(v);
    return forest_.is_tree_edge(u, v);
  }

  /// All distinct surviving non-tree edges (u < v), self loops excluded —
  /// by construction every one of them deletes free.
  [[nodiscard]] EdgeList<NodeID_> non_tree_edges() const {
    EdgeList<NodeID_> out;
    const std::int64_t n = num_nodes();
    for (std::int64_t u = 0; u < n; ++u) {
      for (const auto& [w, copies] : adj_[static_cast<std::size_t>(u)]) {
        if (w <= static_cast<NodeID_>(u)) continue;
        if (forest_.is_tree_edge(static_cast<NodeID_>(u), w)) continue;
        out.push_back({static_cast<NodeID_>(u), w});
      }
    }
    return out;
  }

  // ---- durability plane (src/serve/durable_engine.hpp) -------------------

  /// One distinct undirected edge key and its surviving copy count.
  /// Self loops appear once with u == v.
  struct EdgeMultiplicity {
    NodeID_ u;
    NodeID_ v;
    std::uint32_t copies;
  };

  /// The surviving edge multiset as (u <= v, copies) entries in
  /// ascending-u scan order.  Checkpoint serialization reads this.
  [[nodiscard]] std::vector<EdgeMultiplicity> adjacency_snapshot() const {
    std::vector<EdgeMultiplicity> out;
    const std::int64_t n = num_nodes();
    for (std::int64_t u = 0; u < n; ++u)
      for (const auto& [w, copies] : adj_[static_cast<std::size_t>(u)])
        if (static_cast<NodeID_>(u) <= w)
          out.push_back({static_cast<NodeID_>(u), w, copies});
    return out;
  }

  /// Current tree edges (u < v).  Checkpoint serialization reads this.
  [[nodiscard]] std::vector<std::pair<NodeID_, NodeID_>> forest_snapshot()
      const {
    std::vector<std::pair<NodeID_, NodeID_>> out;
    out.reserve(static_cast<std::size_t>(forest_.num_tree_edges()));
    forest_.for_each_tree_edge(
        [&](NodeID_ u, NodeID_ v) { out.emplace_back(u, v); });
    return out;
  }

  /// Raises the snapshot epoch floor (see SnapshotStore::set_epoch_floor):
  /// the next publish() stamps an epoch strictly greater than `floor`.
  // lint: single-writer(recovery-only: one forwarded store_ call made by
  // the recovering writer before any reader can hold a snapshot; the
  // epoch floor is writer-plane state inside SnapshotStore)
  void set_epoch_floor(std::uint64_t floor) { store_.set_epoch_floor(floor); }

  /// Replaces the writer state wholesale from checkpointed pieces.  The
  /// published snapshot is untouched until the caller publish()es.
  ///
  /// The forest is not trusted blindly: every tree edge must be a
  /// surviving non-loop edge and must merge two components (acyclicity) —
  /// a cyclic "forest" would hang collect_reachable later.  Labels must
  /// equal the labels the forest itself induces (min id per tree), which
  /// pins the two structures to each other.  Violations throw
  /// std::invalid_argument; the recovery path wraps that into a typed
  /// IoError against the checkpoint file.  Endpoints are range-checked
  /// like every other write-plane entry point.
  void restore_state(
      const std::vector<NodeID_>& labels,
      const std::vector<std::pair<NodeID_, NodeID_>>& forest_edges,
      const std::vector<EdgeMultiplicity>& adjacency) {
    const WriterLock lock(writer_active_, "DynamicCC");
    const std::int64_t n = num_nodes();
    if (static_cast<std::int64_t>(labels.size()) != n)
      throw std::invalid_argument(
          "DynamicCC::restore_state: label count != num_nodes");
    for (const auto& entry : adjacency) {
      check_vertex(entry.u);
      check_vertex(entry.v);
      if (entry.copies == 0)
        throw std::invalid_argument(
            "DynamicCC::restore_state: zero-multiplicity adjacency entry");
    }
    for (const auto& [u, v] : forest_edges) {
      check_vertex(u);
      check_vertex(v);
    }

    std::vector<std::unordered_map<NodeID_, std::uint32_t>> adj(
        static_cast<std::size_t>(n));
    std::int64_t distinct = 0;
    for (const auto& entry : adjacency) {
      if (!adj[static_cast<std::size_t>(entry.u)]
               .emplace(entry.v, entry.copies)
               .second)
        throw std::invalid_argument(
            "DynamicCC::restore_state: duplicate adjacency entry");
      if (entry.u != entry.v)
        adj[static_cast<std::size_t>(entry.v)].emplace(entry.u, entry.copies);
      ++distinct;
    }

    ForestAdjacency<NodeID_> forest(n);
    UnionFind<NodeID_> uf(n);
    for (const auto& [u, v] : forest_edges) {
      const auto& row = adj[static_cast<std::size_t>(u)];
      if (u == v || row.find(v) == row.end())
        throw std::invalid_argument(
            "DynamicCC::restore_state: tree edge not a surviving edge");
      if (!uf.unite(u, v))
        throw std::invalid_argument(
            "DynamicCC::restore_state: forest edges contain a cycle");
      forest.add_tree_edge(u, v);
    }
    for (std::int64_t v = 0; v < n; ++v)
      if (labels[static_cast<std::size_t>(v)] !=
          uf.find(static_cast<NodeID_>(v)))
        throw std::invalid_argument(
            "DynamicCC::restore_state: labels disagree with the forest");

    adj_ = std::move(adj);
    forest_ = std::move(forest);
    distinct_edges_ = distinct;
    for (std::int64_t v = 0; v < n; ++v)
      labels_[static_cast<std::size_t>(v)] =
          labels[static_cast<std::size_t>(v)];
  }

  /// TEST-ONLY seam: when on, every last-copy deletion is certified free —
  /// tree edges included, so splits are silently missed.  This deliberately
  /// breaks the non-tree-edge certification; the differential suite must
  /// catch it (its "teeth" check).  Never set outside tests.
  // lint: single-writer(test-only toggle flipped before any batch is
  // applied; the differential teeth suite owns the engine exclusively)
  void testing_certify_all_deletes_free(bool on) {
    testing_certify_all_free_ = on;
  }

 private:
  void check_vertex(NodeID_ v) const {
    check_vertex_range("DynamicCC", v, num_nodes());
  }

  /// Find with path compression over the batch-local label forest; labels
  /// absent from the map are their own root.
  static NodeID_ uf_find(std::unordered_map<NodeID_, NodeID_>& parent,
                         NodeID_ x) {
    NodeID_ root = x;
    // lint: bounded(walks a finite acyclic parent chain; union-by-min makes every hop strictly decreasing)
    for (;;) {
      const auto it = parent.find(root);
      if (it == parent.end() || it->second == root) break;
      root = it->second;
    }
    // lint: bounded(rewrites the same finite chain, each step moves one hop toward the root)
    for (NodeID_ v = x; v != root;) {
      auto it = parent.find(v);
      const NodeID_ next = it->second;
      it->second = root;
      v = next;
    }
    return root;
  }

  /// Rebuild-from-quotient after tree-edge cuts: gather the touched
  /// components by walking the surviving forest from the cut endpoints,
  /// rerun the registry's Afforest on the induced surviving subgraph
  /// (remapped to compact ids), and splice labels + a fresh spanning
  /// forest back.  Only the touched region is recomputed.
  void rebuild(const std::vector<NodeID_>& cut_endpoints, DeleteStats& stats) {
    const std::vector<NodeID_> affected =
        forest_.collect_reachable(cut_endpoints);  // sorted ascending

    // Old-component census (for telemetry: one rebuild per touched
    // component, with its vertex count).
    std::unordered_map<NodeID_, std::uint64_t> old_components;
    for (const NodeID_ v : affected)
      ++old_components[labels_[static_cast<std::size_t>(v)]];
    for (const auto& [label, vertices] : old_components)
      telemetry::on_dynamic_rebuild(vertices);
    stats.rebuild_components += old_components.size();
    stats.rebuild_vertices += affected.size();

    // Induced surviving subgraph over compact ids.  `affected` is closed
    // under surviving edges (components are), so every neighbor remaps.
    std::unordered_map<NodeID_, NodeID_> sub_id;
    sub_id.reserve(affected.size());
    for (std::size_t i = 0; i < affected.size(); ++i)
      sub_id.emplace(affected[i], static_cast<NodeID_>(i));
    EdgeList<NodeID_> sub_edges;
    for (std::size_t i = 0; i < affected.size(); ++i) {
      const NodeID_ u = affected[i];
      for (const auto& [w, copies] : adj_[static_cast<std::size_t>(u)]) {
        if (w <= u) continue;  // one copy per distinct pair; loops excluded
        sub_edges.push_back({static_cast<NodeID_>(i), sub_id.at(w)});
      }
    }
    const CSRGraph<NodeID_> sub = build_undirected(
        sub_edges, static_cast<std::int64_t>(affected.size()));
    const ComponentLabels<NodeID_> sub_labels = afforest_cc(sub);
    const EdgeList<NodeID_> sub_forest = spanning_forest(sub);

    // Splice: `affected` is ascending, so compact ids preserve order and a
    // min-sub-id label maps straight back to the min original id.
    for (const NodeID_ v : affected) forest_.clear_vertex(v);
    for (const auto& [a, b] : sub_forest)
      forest_.add_tree_edge(affected[static_cast<std::size_t>(a)],
                            affected[static_cast<std::size_t>(b)]);
    for (std::size_t i = 0; i < affected.size(); ++i)
      labels_[static_cast<std::size_t>(affected[i])] =
          affected[static_cast<std::size_t>(
              sub_labels[static_cast<std::size_t>(i)])];
  }

  /// Symmetric adjacency with multiplicities: adj_[u][v] = surviving copies
  /// of (u, v); self loops stored once at adj_[u][u].  Ground truth for
  /// rebuilds.
  std::vector<std::unordered_map<NodeID_, std::uint32_t>> adj_;
  ForestAdjacency<NodeID_> forest_;
  ComponentLabels<NodeID_> labels_;  ///< exact, fully compressed, writer-owned
  SnapshotStore<NodeID_> store_;
  std::int64_t distinct_edges_ = 0;
  bool testing_certify_all_free_ = false;
  mutable std::atomic<bool> writer_active_{false};
};

}  // namespace afforest::serve
