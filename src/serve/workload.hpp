// Key-skew models for the serving workload driver.
//
// The mixed read/write benchmark (bench/serving.cpp) needs to pick which
// vertices its queries touch.  Real query traffic is rarely uniform — a few
// entities are looked up far more often than the rest — so alongside a
// uniform sampler we provide a Zipfian one, using the classic Gray et al.
// "Quickly Generating Billion-Record Synthetic Databases" rejection-free
// method (the same construction YCSB uses).  theta = 0.99 matches the YCSB
// default and produces the familiar heavy skew.
//
// Everything is driven by the repository's deterministic Xoshiro256 RNG so
// workloads replay bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace afforest::serve {

/// Which popularity distribution the workload draws keys from.
enum class Skew {
  kUniform,  ///< every vertex equally likely
  kZipfian,  ///< rank-frequency power law (Gray's method, YCSB-style)
};

/// Parses "uniform" / "zipfian" (case-sensitive, as typed on the CLI).
/// Throws std::invalid_argument on anything else so benchmark drivers fail
/// fast instead of silently benchmarking the wrong distribution.
Skew parse_skew(const std::string& name);

/// Inverse of parse_skew, for banners and JSON params.
const char* skew_name(Skew skew);

/// Zipfian rank sampler over [0, n): rank 0 is the hottest key, with
/// P(rank = k) proportional to 1 / (k+1)^theta.  Construction is O(n) (one
/// pass to compute the generalized harmonic number zeta(n, theta)); each
/// draw is O(1) with no rejection loop.
class ZipfianGenerator {
 public:
  /// theta must be in (0, 1); 0.99 is the YCSB default.  n == 0 is allowed
  /// (draws return 0) so empty-graph edge cases don't need special casing
  /// in callers.
  explicit ZipfianGenerator(std::uint64_t n, double theta = 0.99);

  /// Draws a rank in [0, n) (0 when n == 0).
  std::uint64_t next(Xoshiro256& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;   // zeta(n, theta)
  double alpha_;   // 1 / (1 - theta)
  double eta_;     // Gray's eta term
  double half_pow_theta_;  // pow(0.5, theta), hoisted out of next()
};

/// Unified draw interface for the benchmark driver: uniform or Zipfian over
/// the vertex id space [0, n).
class KeySampler {
 public:
  KeySampler(Skew skew, std::uint64_t n, double theta = 0.99);

  /// Next key in [0, n) (0 when n == 0).
  std::uint64_t next(Xoshiro256& rng) const;

  [[nodiscard]] Skew skew() const { return skew_; }

 private:
  Skew skew_;
  std::uint64_t n_;
  ZipfianGenerator zipf_;
};

}  // namespace afforest::serve
