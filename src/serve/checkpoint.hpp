// Checkpoints + the durable-directory manifest for the serving engine.
//
// A checkpoint is a full serialization of the engine's recoverable state
// at one published (seq, epoch): component labels, the maintained spanning
// forest, the edge multiset, and — for windowed engines — the ring of
// resident batches.  Recovery loads the newest checkpoint and replays the
// WAL suffix after its seq (durable_engine.hpp), so checkpoint frequency
// trades write amplification against replay time, never correctness.
//
// Checkpoint file (all integers little-endian; spec in docs/ROBUSTNESS.md):
//
//   "AFCK" | u32 version=1 | u64 payload_len | payload
//         | u32 crc32c(payload)
//   payload:
//     u64 seq | u64 epoch | u64 num_nodes | u64 window
//     | num_nodes × i64 label
//     | u64 forest_count  | forest_count × (i64 u, i64 v)
//     | u64 adj_count     | adj_count × (i64 u, i64 v, u32 multiplicity)
//     | u64 ring_batches  | per batch: u64 count | count × (i64 u, i64 v)
//
// Unlike the WAL there is no torn-tail leniency: a checkpoint is either
// entirely valid or rejected with a typed IoError — it is written to a
// temporary name and renamed into place (after fsync) precisely so a torn
// checkpoint can never carry the final name.  The reader validates
// structure before allocating: every count is bounds-checked against the
// bytes actually present, so a corrupt count field can never drive a huge
// allocation or an out-of-bounds read.
//
// The manifest (file `MANIFEST` in the durable directory) is the root of
// trust: a small CRC-tailed text file naming the current checkpoint (or
// none) and the live WAL segment.  It is also atomically replaced, and it
// is updated strictly AFTER the checkpoint it names is durable — a crash
// between those steps leaves the previous manifest naming the previous
// (still valid) pair.
//
// Failpoint sites: ckpt.write fires mid-tmp-file write (torn tmp, final
// name untouched), ckpt.rename fires after the tmp is durable but before
// the rename (orphan tmp, final name untouched).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "graph/io_error.hpp"
#include "serve/posix_file.hpp"
#include "serve/wire.hpp"
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"

namespace afforest::serve {

struct CheckpointData {
  std::uint64_t seq = 0;    ///< last WAL seq folded into this state
  std::uint64_t epoch = 0;  ///< published snapshot epoch at that point
  std::uint64_t num_nodes = 0;
  std::uint64_t window = 0;  ///< 0 = unwindowed
  std::vector<std::int64_t> labels;  ///< num_nodes entries
  std::vector<std::pair<std::int64_t, std::int64_t>> forest_edges;
  struct AdjacencyEntry {
    std::int64_t u = 0;
    std::int64_t v = 0;
    std::uint32_t multiplicity = 0;
  };
  std::vector<AdjacencyEntry> adjacency;  ///< one entry per u<v edge key
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> ring;
};

namespace ckpt_detail {

inline constexpr char kMagic[4] = {'A', 'F', 'C', 'K'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kPreambleBytes = 4 + 4 + 8;

inline std::vector<unsigned char> encode_payload(const CheckpointData& data) {
  std::vector<unsigned char> p;
  p.reserve(32 + data.labels.size() * 8 + data.forest_edges.size() * 16 +
            data.adjacency.size() * 20);
  wire::put_u64(p, data.seq);
  wire::put_u64(p, data.epoch);
  wire::put_u64(p, data.num_nodes);
  wire::put_u64(p, data.window);
  for (const std::int64_t label : data.labels) wire::put_i64(p, label);
  wire::put_u64(p, static_cast<std::uint64_t>(data.forest_edges.size()));
  for (const auto& [u, v] : data.forest_edges) {
    wire::put_i64(p, u);
    wire::put_i64(p, v);
  }
  wire::put_u64(p, static_cast<std::uint64_t>(data.adjacency.size()));
  for (const auto& entry : data.adjacency) {
    wire::put_i64(p, entry.u);
    wire::put_i64(p, entry.v);
    wire::put_u32(p, entry.multiplicity);
  }
  wire::put_u64(p, static_cast<std::uint64_t>(data.ring.size()));
  for (const auto& batch : data.ring) {
    wire::put_u64(p, static_cast<std::uint64_t>(batch.size()));
    for (const auto& [u, v] : batch) {
      wire::put_i64(p, u);
      wire::put_i64(p, v);
    }
  }
  return p;
}

[[noreturn]] inline void corrupt(const std::string& path,
                                 const std::string& detail,
                                 std::int64_t byte_offset) {
  throw IoError(IoErrorKind::kCorruptHeader, path, detail,
                IoError::kNoPosition, byte_offset);
}

/// Reads a count field and verifies the remaining bytes can hold `count`
/// items of `item_bytes` each BEFORE the caller allocates for them.
inline std::uint64_t checked_count(wire::Reader& r, const std::string& path,
                                   std::size_t item_bytes,
                                   const char* what) {
  const std::size_t at = r.offset();
  std::uint64_t count = 0;
  if (!r.get_u64(count))
    throw IoError(IoErrorKind::kTruncated, path,
                  std::string("checkpoint payload ends inside ") + what,
                  IoError::kNoPosition, static_cast<std::int64_t>(at));
  if (count > r.remaining() / item_bytes)
    corrupt(path,
            std::string(what) + " count " + std::to_string(count) +
                " exceeds remaining payload",
            static_cast<std::int64_t>(at));
  return count;
}

inline void check_vertex(const std::string& path, std::int64_t v,
                         std::uint64_t num_nodes, const char* what) {
  if (v < 0 || static_cast<std::uint64_t>(v) >= num_nodes)
    throw IoError(IoErrorKind::kOutOfRangeNeighbor, path,
                  std::string(what) + " vertex " + std::to_string(v) +
                      " outside [0, " + std::to_string(num_nodes) + ")");
}

}  // namespace ckpt_detail

/// Serializes `data` and installs it at `path` atomically (tmp → fsync →
/// rename → dir fsync).  A crash anywhere leaves `path` either absent or
/// previous-valid — never torn.
inline void write_checkpoint(const std::string& path,
                             const CheckpointData& data) {
  const std::vector<unsigned char> payload =
      ckpt_detail::encode_payload(data);
  std::vector<unsigned char> bytes;
  bytes.reserve(ckpt_detail::kPreambleBytes + payload.size() + 4);
  bytes.insert(bytes.end(), ckpt_detail::kMagic, ckpt_detail::kMagic + 4);
  wire::put_u32(bytes, ckpt_detail::kVersion);
  wire::put_u64(bytes, static_cast<std::uint64_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  wire::put_u32(bytes, crc32c(payload.data(), payload.size()));

  const std::string tmp_path = path + ".tmp";
  {
    FdFile tmp = fd_open(tmp_path, O_WRONLY | O_CREAT | O_TRUNC);
    if (failpoint_triggered("ckpt.write")) {
      // Torn tmp file: half the bytes land, the final name never appears.
      fd_write_all(tmp, tmp_path, bytes.data(), bytes.size() / 2);
      if (failpoints_lethal()) std::_Exit(kFailpointLethalExit);
      throw FailpointError("ckpt.write");
    }
    fd_write_all(tmp, tmp_path, bytes.data(), bytes.size());
    fd_sync(tmp, tmp_path);
    tmp.close_checked(tmp_path);
  }
  // Tmp is durable but the final name does not exist yet; a crash here
  // leaves an orphan .tmp that recovery ignores (manifest never names it).
  failpoint_maybe_fail("ckpt.rename");
  rename_into_place(tmp_path, path);
  fsync_parent_dir(path);
}

/// Loads and fully validates a checkpoint; throws typed IoErrors for every
/// corruption class (never returns partial state).
inline CheckpointData read_checkpoint(const std::string& path) {
  const std::vector<unsigned char> bytes = read_entire_file(path);
  if (bytes.size() < ckpt_detail::kPreambleBytes + 4)
    throw IoError(IoErrorKind::kTruncated, path,
                  "file shorter than the checkpoint preamble",
                  IoError::kNoPosition,
                  static_cast<std::int64_t>(bytes.size()));
  for (std::size_t i = 0; i < 4; ++i)
    if (bytes[i] != static_cast<unsigned char>(ckpt_detail::kMagic[i]))
      throw IoError(IoErrorKind::kBadMagic, path,
                    "checkpoint magic mismatch (want \"AFCK\")",
                    IoError::kNoPosition, static_cast<std::int64_t>(i));
  wire::Reader preamble(bytes.data() + 4, ckpt_detail::kPreambleBytes - 4);
  std::uint32_t version = 0;
  std::uint64_t payload_len = 0;
  preamble.get_u32(version);
  preamble.get_u64(payload_len);
  if (version != ckpt_detail::kVersion)
    throw IoError(IoErrorKind::kCorruptHeader, path,
                  "unsupported checkpoint version " + std::to_string(version),
                  IoError::kNoPosition, 4);
  const std::uint64_t body = bytes.size() - ckpt_detail::kPreambleBytes;
  if (payload_len > body || body - payload_len < 4)
    throw IoError(IoErrorKind::kTruncated, path,
                  "checkpoint payload extends past end of file",
                  IoError::kNoPosition,
                  static_cast<std::int64_t>(ckpt_detail::kPreambleBytes));
  if (body - payload_len > 4)
    throw IoError(IoErrorKind::kTrailingGarbage, path,
                  std::to_string(body - payload_len - 4) +
                      " bytes after the checkpoint CRC");
  const unsigned char* payload = bytes.data() + ckpt_detail::kPreambleBytes;
  wire::Reader crc_reader(payload + payload_len, 4);
  std::uint32_t stored_crc = 0;
  crc_reader.get_u32(stored_crc);
  if (crc32c(payload, payload_len) != stored_crc)
    throw IoError(IoErrorKind::kChecksumMismatch, path,
                  "checkpoint payload checksum mismatch");

  wire::Reader r(payload, payload_len);
  CheckpointData data;
  if (!r.get_u64(data.seq) || !r.get_u64(data.epoch) ||
      !r.get_u64(data.num_nodes) || !r.get_u64(data.window))
    throw IoError(IoErrorKind::kTruncated, path,
                  "checkpoint payload ends inside the fixed fields");
  if (data.num_nodes == 0)
    ckpt_detail::corrupt(path, "checkpoint has zero num_nodes", 16);
  if (data.num_nodes > r.remaining() / 8)
    ckpt_detail::corrupt(path,
                         "label array exceeds remaining payload",
                         static_cast<std::int64_t>(r.offset()));
  data.labels.reserve(data.num_nodes);
  for (std::uint64_t i = 0; i < data.num_nodes; ++i) {
    std::int64_t label = 0;
    r.get_i64(label);
    ckpt_detail::check_vertex(path, label, data.num_nodes, "label");
    data.labels.push_back(label);
  }
  const std::uint64_t forest_count =
      ckpt_detail::checked_count(r, path, 16, "forest");
  data.forest_edges.reserve(forest_count);
  for (std::uint64_t i = 0; i < forest_count; ++i) {
    std::int64_t u = 0;
    std::int64_t v = 0;
    r.get_i64(u);
    r.get_i64(v);
    ckpt_detail::check_vertex(path, u, data.num_nodes, "forest");
    ckpt_detail::check_vertex(path, v, data.num_nodes, "forest");
    data.forest_edges.emplace_back(u, v);
  }
  const std::uint64_t adj_count =
      ckpt_detail::checked_count(r, path, 20, "adjacency");
  data.adjacency.reserve(adj_count);
  for (std::uint64_t i = 0; i < adj_count; ++i) {
    CheckpointData::AdjacencyEntry entry;
    r.get_i64(entry.u);
    r.get_i64(entry.v);
    r.get_u32(entry.multiplicity);
    ckpt_detail::check_vertex(path, entry.u, data.num_nodes, "adjacency");
    ckpt_detail::check_vertex(path, entry.v, data.num_nodes, "adjacency");
    if (entry.multiplicity == 0)
      ckpt_detail::corrupt(path, "adjacency entry with zero multiplicity",
                           static_cast<std::int64_t>(r.offset()));
    data.adjacency.push_back(entry);
  }
  const std::uint64_t ring_batches =
      ckpt_detail::checked_count(r, path, 8, "ring");
  data.ring.reserve(ring_batches);
  for (std::uint64_t b = 0; b < ring_batches; ++b) {
    const std::uint64_t count =
        ckpt_detail::checked_count(r, path, 16, "ring batch");
    std::vector<std::pair<std::int64_t, std::int64_t>> batch;
    batch.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::int64_t u = 0;
      std::int64_t v = 0;
      r.get_i64(u);
      r.get_i64(v);
      ckpt_detail::check_vertex(path, u, data.num_nodes, "ring");
      ckpt_detail::check_vertex(path, v, data.num_nodes, "ring");
      batch.emplace_back(u, v);
    }
    data.ring.push_back(std::move(batch));
  }
  if (r.remaining() != 0)
    throw IoError(IoErrorKind::kTrailingGarbage, path,
                  std::to_string(r.remaining()) +
                      " bytes after the last ring batch",
                  IoError::kNoPosition,
                  static_cast<std::int64_t>(r.offset()));
  return data;
}

// ---- manifest -------------------------------------------------------------

/// Root of trust for a durable directory: names the current checkpoint
/// (empty = bootstrap, replay the WAL from scratch) and the live WAL
/// segment.  `seq` records the checkpoint's seq (0 at bootstrap).
struct Manifest {
  std::uint64_t num_nodes = 0;
  std::uint64_t window = 0;
  std::string checkpoint_file;  ///< relative name, empty = none
  std::string wal_file;         ///< relative name of the live segment
  std::uint64_t seq = 0;
};

inline std::string manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}

/// Atomically replaces the manifest.  Format (text, LF only):
///   afforest-manifest-1
///   num_nodes N / window W / checkpoint <name|-> / wal <name> / seq S
///   crc <8 hex digits over every preceding byte>
inline void write_manifest(const std::string& dir, const Manifest& manifest) {
  std::string body = "afforest-manifest-1\n";
  body += "num_nodes " + std::to_string(manifest.num_nodes) + "\n";
  body += "window " + std::to_string(manifest.window) + "\n";
  body += "checkpoint " +
          (manifest.checkpoint_file.empty() ? std::string("-")
                                            : manifest.checkpoint_file) +
          "\n";
  body += "wal " + manifest.wal_file + "\n";
  body += "seq " + std::to_string(manifest.seq) + "\n";
  const std::uint32_t crc = crc32c(body.data(), body.size());
  char hex[9];
  std::snprintf(hex, sizeof hex, "%08x", crc);
  body += "crc " + std::string(hex) + "\n";
  const std::string path = manifest_path(dir);
  // The manifest is the root of trust: dying here must leave the old
  // manifest naming the old checkpoint/WAL pair, with the new pair as
  // unreferenced orphans that recovery GCs.  The crash sweep pins that
  // (tests/serve/crash_sweep_test.cpp, ManifestReplaceSweep).
  failpoint_maybe_fail("manifest.replace");
  atomic_write_file(path, path + ".tmp", body.data(), body.size());
}

/// Loads and validates the manifest; typed IoErrors on every malformation.
inline Manifest read_manifest(const std::string& dir) {
  const std::string path = manifest_path(dir);
  const std::vector<unsigned char> bytes = read_entire_file(path);
  const std::string text(bytes.begin(), bytes.end());
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos)
      throw IoError(IoErrorKind::kTruncated, path,
                    "manifest does not end with a newline",
                    static_cast<std::int64_t>(lines.size() + 1));
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty() || lines[0] != "afforest-manifest-1")
    throw IoError(IoErrorKind::kBadMagic, path,
                  "manifest does not start with afforest-manifest-1", 1);
  if (lines.size() != 7)
    throw IoError(IoErrorKind::kCorruptHeader, path,
                  "manifest has " + std::to_string(lines.size()) +
                      " lines, want 7");
  const auto field = [&](std::size_t idx,
                         const std::string& key) -> std::string {
    const std::string& line = lines[idx];
    if (line.rfind(key + " ", 0) != 0)
      throw IoError(IoErrorKind::kParseError, path,
                    "manifest line does not start with '" + key + "'",
                    static_cast<std::int64_t>(idx + 1));
    return line.substr(key.size() + 1);
  };
  const auto number = [&](std::size_t idx,
                          const std::string& key) -> std::uint64_t {
    const std::string value = field(idx, key);
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
      throw IoError(IoErrorKind::kParseError, path,
                    "manifest field '" + key + "' is not a number",
                    static_cast<std::int64_t>(idx + 1));
    return std::stoull(value);
  };
  // CRC covers every byte before the crc line itself.
  const std::string crc_hex = field(6, "crc");
  if (crc_hex.size() != 8 ||
      crc_hex.find_first_not_of("0123456789abcdef") != std::string::npos)
    throw IoError(IoErrorKind::kParseError, path,
                  "manifest crc is not 8 lowercase hex digits", 7);
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(std::stoul(crc_hex, nullptr, 16));
  const std::size_t covered = text.size() - (lines[6].size() + 1);
  if (crc32c(text.data(), covered) != stored_crc)
    throw IoError(IoErrorKind::kChecksumMismatch, path,
                  "manifest checksum mismatch", 7);
  Manifest manifest;
  manifest.num_nodes = number(1, "num_nodes");
  manifest.window = number(2, "window");
  const std::string ckpt = field(3, "checkpoint");
  manifest.checkpoint_file = ckpt == "-" ? std::string() : ckpt;
  manifest.wal_file = field(4, "wal");
  manifest.seq = number(5, "seq");
  if (manifest.num_nodes == 0)
    throw IoError(IoErrorKind::kCorruptHeader, path,
                  "manifest has zero num_nodes", 2);
  if (manifest.wal_file.empty() ||
      manifest.wal_file.find('/') != std::string::npos ||
      (!manifest.checkpoint_file.empty() &&
       manifest.checkpoint_file.find('/') != std::string::npos))
    throw IoError(IoErrorKind::kParseError, path,
                  "manifest file names must be non-empty and relative");
  return manifest;
}

}  // namespace afforest::serve
