// Multistep CC (Slota, Rajamanickam, Madduri — the lineage of the paper's
// DOBFS-CC citation [7]): a hybrid that exploits the giant-component
// structure of real-world graphs directly:
//
//   step 1: parallel BFS from the highest-degree vertex labels (almost
//           surely) the giant component in one traversal;
//   step 2: the remainder — typically a sprinkle of small components — is
//           finished with min-label propagation restricted to unvisited
//           vertices.
//
// Afforest's large-component skipping is the tree-hooking analogue of this
// idea; Multistep makes an instructive baseline because it shares the
// skip-the-giant intuition but inherits BFS's serialization if step 1's
// guess misses (no giant component).
#pragma once

#include <cstdint>

#include "cc/bfs_cc.hpp"
#include "cc/common.hpp"
#include "cc/guards.hpp"
#include "graph/csr_graph.hpp"
#include "util/parallel.hpp"

namespace afforest {

template <typename NodeID_>
ComponentLabels<NodeID_> multistep_cc(const CSRGraph<NodeID_>& g) {
  const std::int64_t n = g.num_nodes();
  constexpr NodeID_ kUnvisited = -1;
  ComponentLabels<NodeID_> comp(static_cast<std::size_t>(n));
  comp.fill(kUnvisited);
  if (n == 0) return comp;

  // Step 1: BFS from the max-degree vertex (the giant-component heuristic).
  NodeID_ pivot = 0;
  {
    std::int64_t best_deg = -1;
    for (std::int64_t v = 0; v < n; ++v) {
      const std::int64_t d = g.out_degree(static_cast<NodeID_>(v));
      if (d > best_deg) {
        best_deg = d;
        pivot = static_cast<NodeID_>(v);
      }
    }
  }
  SlidingQueue<NodeID_> queue(static_cast<std::size_t>(n));
  bfs_label_component(g, pivot, pivot, kUnvisited, comp, queue);

  // Step 2: min-label propagation over the remainder.  Unvisited vertices
  // start with their own id; visited ones keep the pivot label (which
  // never changes: BFS already closed that component, and kUnvisited
  // never wins a min against real ids).
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < n; ++v)
    if (comp[v] == kUnvisited) comp[v] = static_cast<NodeID_>(v);  // NOLINT(afforest-plain-shared-access): owner-exclusive, BFS is quiescent and only the thread owning v touches slot v

  const std::int64_t ceiling = iteration_ceiling(n);
  std::int64_t num_iter = 0;
  bool change = true;
  while (change) {
    change = false;
    ++num_iter;
    check_convergence_guard("multistep", num_iter, ceiling);
#pragma omp parallel for reduction(|| : change) schedule(dynamic, 16384)
    for (std::int64_t u = 0; u < n; ++u) {
      // Atomic read: sibling threads may atomic_fetch_min comp[u] below.
      if (atomic_load(comp[u]) == pivot && static_cast<NodeID_>(u) != pivot)
        continue;
      NodeID_ lowest = atomic_load(comp[u]);
      for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
        lowest = std::min(lowest, atomic_load(comp[v]));
      if (lowest < atomic_load(comp[u])) {
        if (atomic_fetch_min(comp[u], lowest)) change = true;
      }
    }
  }
  return comp;
}

}  // namespace afforest
