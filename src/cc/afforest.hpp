// Afforest — the paper's primary contribution (Sutton, Ben-Nun, Barak,
// IPDPS 2018): a restructured Shiloach–Vishkin with subgraph sampling.
//
// Building blocks:
//   link(u, v, comp)      — lock-free tree hooking (paper Fig 3).  Walks up
//                           both parent chains; at each step hooks the
//                           higher-indexed root onto the lower via CAS.
//                           Maintains Invariant 1 (π(x) ≤ x), so π stays
//                           acyclic (Lemma 1–2) and converges (Lemma 5).
//   compress(v, comp)     — full path compression to the root (Fig 2b);
//                           safe to run on all vertices in parallel
//                           (Theorem 2).
//   sample_frequent_element — probabilistic search for the giant
//                           intermediate component (Fig 5, line 10):
//                           samples comp[] uniformly and returns the mode.
//
// The driver (Fig 5):
//   1. `neighbor_rounds` sampling rounds: round r links edge
//      (v, r-th neighbor of v) for every vertex, then compresses.  This
//      processes O(|V|) edges per round and, per §V-B, links >80 % of trees
//      within two rounds on real-world topologies.
//   2. Identify the largest intermediate component c.
//   3. Final phase: every vertex NOT in c links its remaining neighbors
//      (from index neighbor_rounds onward).  Vertices inside c are skipped
//      entirely — correct by Theorem 3 because each unordered edge is
//      stored in both endpoint rows.
//   4. Final compress.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "analysis/telemetry.hpp"
#include "cc/common.hpp"
#include "graph/csr_graph.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace afforest {

/// Tuning knobs for Afforest.  Defaults follow the paper (§VI-A:
/// neighbor_rounds = 2; "constant number" of samples = 1024).
struct AfforestOptions {
  std::int32_t neighbor_rounds = 2;
  bool skip_largest = true;  ///< large-component skipping (paper §IV-D)
  std::int32_t sample_count = 1024;
  std::uint64_t sample_seed = 0xAFF0;
};

/// Hooks the trees containing u and v (paper Fig 3).  Lock-free; safe to
/// call concurrently on arbitrary edges.
// lint: parallel-context
template <typename NodeID_>
void link(NodeID_ u, NodeID_ v, pvector<NodeID_>& comp) {
  NodeID_ p1 = atomic_load(comp[u]);
  NodeID_ p2 = atomic_load(comp[v]);
  // Telemetry tallies live in registers and are published once per call
  // (telemetry.hpp's zero-overhead contract keeps the dormant cost to one
  // relaxed flag load).
  std::uint64_t retries = 0, cas_attempts = 0, cas_failures = 0;
  // lint: bounded(each retry strictly descends a finite acyclic parent chain; Lemma 5)
  while (p1 != p2) {
    const NodeID_ high = std::max(p1, p2);
    const NodeID_ low = std::min(p1, p2);
    const NodeID_ p_high = atomic_load(comp[high]);
    // Already linked by another thread, or we win the CAS on the root.
    if (p_high == low) break;
    if (p_high == high) {
      ++cas_attempts;
      if (compare_and_swap(comp[high], high, low)) break;
      ++cas_failures;
    }
    // Lost the race or high was not a root: climb one level and retry.
    ++retries;
    p1 = atomic_load(comp[atomic_load(comp[high])]);
    p2 = atomic_load(comp[low]);
  }
  telemetry::on_link(retries, cas_attempts, cas_failures);
}

/// Compresses v's path so comp[v] points directly at its root (Fig 2b).
/// All accesses are atomic: during compress_all, sibling threads compress
/// overlapping parent chains, so the plain-read formulation of Fig 2b is a
/// data race (flagged by TSan via the std::thread stress tests in
/// tests/fuzz/schedule_stress_test.cpp).  On x86 these lower to the same
/// mov instructions as plain accesses.
// lint: parallel-context
template <typename NodeID_>
void compress(NodeID_ v, pvector<NodeID_>& comp) {
  NodeID_ p = atomic_load(comp[v]);
  NodeID_ gp = atomic_load(comp[p]);
  std::uint64_t hops = 0;
  // lint: bounded(pointer jumping strictly shortens the path to the root; Theorem 2)
  while (p != gp) {
    atomic_store(comp[v], gp);
    p = gp;
    gp = atomic_load(comp[p]);
    ++hops;
  }
  telemetry::on_compress(hops);
}

/// Runs compress on every vertex in parallel (Theorem 2).
template <typename NodeID_>
void compress_all(pvector<NodeID_>& comp) {
  const std::int64_t n = static_cast<std::int64_t>(comp.size());
#pragma omp parallel for schedule(dynamic, 16384)
  for (std::int64_t v = 0; v < n; ++v)
    compress(static_cast<NodeID_>(v), comp);
}

/// Probabilistic mode of comp[]: samples `count` entries uniformly at
/// random and returns the most frequent value — the likely label of the
/// giant intermediate component.  Requires depth-1 trees for the returned
/// label to be a root (guaranteed after compress_all).
template <typename NodeID_>
NodeID_ sample_frequent_element(const pvector<NodeID_>& comp,
                                std::int32_t count = 1024,
                                std::uint64_t seed = 0xAFF0) {
  std::unordered_map<NodeID_, std::int32_t> counts;
  counts.reserve(static_cast<std::size_t>(count));
  Xoshiro256 rng(seed);
  for (std::int32_t i = 0; i < count; ++i) {
    const auto idx = rng.next_bounded(comp.size());
    ++counts[comp[idx]];
  }
  NodeID_ best = comp.empty() ? NodeID_{0} : comp[0];
  std::int32_t best_count = -1;
  for (const auto& [label, c] : counts) {
    if (c > best_count) {
      best = label;
      best_count = c;
    }
  }
  return best;
}

/// True iff phase 3 may skip vertex v entirely: component skipping is on
/// and v's current label equals the sampled giant component c (paper
/// §IV-D, correct by Theorem 3).  The single certified site for the skip
/// predicate — the load is atomic because sibling threads are concurrently
/// linking, and a plain read racing their CAS is UB even though any
/// snapshot is acceptable.
// lint: parallel-context
template <typename NodeID_>
bool should_skip(NodeID_ v, const pvector<NodeID_>& comp,
                 const AfforestOptions& opts, NodeID_ c) {
  return opts.skip_largest && atomic_load(comp[v]) == c;
}

/// Phase 3 of Fig 5 (lines 11–15): every vertex not skipped links its
/// remaining out-neighbors (from index `rounds` onward) and, on directed
/// graphs, its full in-neighborhood — an arc u->v whose tail u was skipped
/// is still reached from v's in-edges, preserving Theorem 3's
/// both-directions argument.  Shared by afforest_cc and afforest_timed so
/// the two cannot drift.
template <typename NodeID_>
void link_remaining(const CSRGraph<NodeID_>& g, pvector<NodeID_>& comp,
                    std::int32_t rounds, const AfforestOptions& opts,
                    NodeID_ c) {
  using OffsetT = typename CSRGraph<NodeID_>::OffsetT;
  const std::int64_t n = g.num_nodes();
  const bool directed = g.directed();
#pragma omp parallel for schedule(dynamic, 1024)
  for (std::int64_t v = 0; v < n; ++v) {
    if (should_skip(static_cast<NodeID_>(v), comp, opts, c)) {
      // Telemetry quantifies §IV-D directly: edges the skip avoided are
      // the vertex's remaining out-neighborhood (the in-neighborhood is
      // handled from the other endpoint, as in Theorem 3's argument).
      // The degree load lives behind enabled() so dormant runs keep the
      // skip branch free of offset-array reads — this is the hottest
      // path on giant-component graphs and the zero-overhead-when-off
      // contract must hold here.
      if (telemetry::enabled()) {
        const OffsetT deg = g.out_degree(static_cast<NodeID_>(v));
        telemetry::on_phase3_skip(
            deg > rounds ? static_cast<std::uint64_t>(deg - rounds) : 0);
      }
      continue;
    }
    const OffsetT deg = g.out_degree(static_cast<NodeID_>(v));
    for (OffsetT k = rounds; k < deg; ++k)
      link(static_cast<NodeID_>(v),
           g.neighbor(static_cast<NodeID_>(v), k), comp);
    if (directed) {
      for (NodeID_ u : g.in_neigh(static_cast<NodeID_>(v)))
        link(static_cast<NodeID_>(v), u, comp);
    }
  }
}

/// Full Afforest (paper Fig 5).  Returns component labels; labels are the
/// minimum vertex id in each component (a property of Invariant 1 +
/// convergence, relied on by tests).
template <typename NodeID_>
ComponentLabels<NodeID_> afforest_cc(const CSRGraph<NodeID_>& g,
                                  AfforestOptions opts = {}) {
  const std::int64_t n = g.num_nodes();
  ComponentLabels<NodeID_> comp;
  {
    const telemetry::ScopedPhase phase("afforest.init");
    comp = identity_labels<NodeID_>(n);
  }

  // Phase 1: neighbor-round subgraph sampling (Fig 5 lines 2–9).
  const std::int32_t rounds =
      std::max(std::int32_t{0}, opts.neighbor_rounds);
  for (std::int32_t r = 0; r < rounds; ++r) {
    {
      const telemetry::ScopedPhase phase("afforest.sampling");
#pragma omp parallel for schedule(dynamic, 16384)
      for (std::int64_t v = 0; v < n; ++v) {
        if (r < g.out_degree(static_cast<NodeID_>(v))) {
          link(static_cast<NodeID_>(v),
               g.neighbor(static_cast<NodeID_>(v), r), comp);
        }
      }
    }
    const telemetry::ScopedPhase phase("afforest.compress");
    compress_all(comp);
  }

  // Phase 2: identify the giant intermediate component (Fig 5 line 10).
  NodeID_ c = 0;
  if (opts.skip_largest && n > 0) {
    const telemetry::ScopedPhase phase("afforest.find_largest");
    c = sample_frequent_element(comp, opts.sample_count, opts.sample_seed);
  }

  // Phase 3: link remaining edges, skipping vertices inside c.
  {
    const telemetry::ScopedPhase phase("afforest.final_link");
    link_remaining(g, comp, rounds, opts, c);
  }

  {
    const telemetry::ScopedPhase phase("afforest.compress");
    compress_all(comp);
  }
  return comp;
}

/// Acceptance threshold for uniform edge sampling: an edge whose 64-bit
/// hash is <= the threshold is linked during the sampling phase.  The
/// mapping saturates at both ends: sample_p >= 1.0 yields max() (every
/// edge links — the old unsaturated cast computed sample_p * 2^64, which
/// does not fit in uint64 and is UB per [conv.fpint]), sample_p <= 0.0
/// yields 0.
inline std::uint64_t uniform_sample_threshold(double sample_p) {
  const double max_u64 =
      static_cast<double>(std::numeric_limits<std::uint64_t>::max());
  const double scaled = sample_p * max_u64;
  if (scaled >= max_u64) return std::numeric_limits<std::uint64_t>::max();
  if (scaled <= 0.0) return 0;
  return static_cast<std::uint64_t>(scaled);
}

/// Afforest with UNIFORM edge sampling instead of neighbor rounds — the
/// §IV-B strategy made runnable as an ablation.  Each stored edge is
/// linked during the sampling phase with probability p (decided by a
/// deterministic hash, so runs are reproducible).  Because a uniform
/// sample is not a prefix of each neighborhood, the final phase cannot
/// resume from an offset and must reprocess sampled edges — exactly the
/// tracking disadvantage §VI-A cites when motivating the first-k-neighbors
/// choice.  Component skipping still applies.
template <typename NodeID_>
ComponentLabels<NodeID_> afforest_uniform_sampling(const CSRGraph<NodeID_>& g,
                                                   double sample_p,
                                                   AfforestOptions opts = {}) {
  const std::int64_t n = g.num_nodes();
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(n);

  // Phase 1: link a uniform random subset of edges (saturating threshold;
  // see uniform_sample_threshold for the p >= 1.0 UB this avoids).
  const std::uint64_t threshold = uniform_sample_threshold(sample_p);
#pragma omp parallel for schedule(dynamic, 4096)
  for (std::int64_t v = 0; v < n; ++v) {
    for (NodeID_ w : g.out_neigh(static_cast<NodeID_>(v))) {
      SplitMix64 hash((static_cast<std::uint64_t>(v) << 32) ^
                      static_cast<std::uint64_t>(w) ^ opts.sample_seed);
      if (hash.next() <= threshold)
        link(static_cast<NodeID_>(v), w, comp);
    }
  }
  compress_all(comp);

  // Phase 2 + 3: identify and skip the giant component, then finish with
  // ALL edges (sampled ones are revisited — they cost one validation
  // iteration each).
  NodeID_ c = 0;
  if (opts.skip_largest && n > 0)
    c = sample_frequent_element(comp, opts.sample_count, opts.sample_seed);
#pragma omp parallel for schedule(dynamic, 1024)
  for (std::int64_t v = 0; v < n; ++v) {
    if (should_skip(static_cast<NodeID_>(v), comp, opts, c)) continue;
    for (NodeID_ w : g.out_neigh(static_cast<NodeID_>(v)))
      link(static_cast<NodeID_>(v), w, comp);
  }
  compress_all(comp);
  return comp;
}

/// Afforest without large-component skipping — the "Afforest (no skip)"
/// series of Fig 7b / Fig 8b / Fig 8c.
template <typename NodeID_>
ComponentLabels<NodeID_> afforest_no_skip(const CSRGraph<NodeID_>& g,
                                          std::int32_t neighbor_rounds = 2) {
  AfforestOptions opts;
  opts.neighbor_rounds = neighbor_rounds;
  opts.skip_largest = false;
  return afforest_cc(g, opts);
}

}  // namespace afforest
