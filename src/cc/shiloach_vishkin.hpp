// Shiloach–Vishkin (SV) baseline — the tree-hooking algorithm Afforest
// extends (paper Fig 1, as implemented by the GAP Benchmark Suite).
//
// Each iteration performs a hook pass over ALL edges (only root-level hooks
// succeed) followed by a shortcut (pointer-jumping) pass, repeating until
// no hook fires.  Work is O(iterations × |E|) — the redundancy Afforest
// eliminates.
//
// Two variants:
//   shiloach_vishkin          — CSR traversal (vertex-centric), the GAP code
//   shiloach_vishkin_edgelist — explicit edge array (Soman et al.'s GPU
//                               formulation, ported to the CPU substrate;
//                               see DESIGN.md §3)
#pragma once

#include <algorithm>
#include <cstdint>

#include "analysis/telemetry.hpp"
#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "cc/guards.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "util/parallel.hpp"

namespace afforest {

/// One SV hook attempt over the edge (u, v): if the endpoints' current
/// labels differ and the higher label is (still) a root, hook it onto the
/// lower.  Returns true iff the hook fired.  All label reads are atomic —
/// they race with concurrent hooks' atomic_stores, and a mixed plain/atomic
/// access is UB even when any observed value would do.  A lost update
/// remains benign, as in the original PRAM formulation: it only delays
/// convergence by an iteration.  Shared by all SV variants and driven
/// directly from std::threads in tests/fuzz/schedule_stress_test.cpp so
/// TSan can observe its access history (libgomp is not instrumented).
// lint: parallel-context
template <typename NodeID_>
bool sv_hook_edge(NodeID_ u, NodeID_ v, pvector<NodeID_>& comp) {
  const NodeID_ comp_u = atomic_load(comp[u]);
  const NodeID_ comp_v = atomic_load(comp[v]);
  if (comp_u == comp_v) return false;
  const NodeID_ high_comp = std::max(comp_u, comp_v);
  const NodeID_ low_comp = std::min(comp_u, comp_v);
  if (high_comp != atomic_load(comp[high_comp])) return false;
  atomic_store(comp[high_comp], low_comp);
  return true;
}

/// CSR-based SV.  If `out_iterations` is non-null it receives the number of
/// hook+shortcut iterations executed (reported in Table II).
template <typename NodeID_>
ComponentLabels<NodeID_> shiloach_vishkin(
    const CSRGraph<NodeID_>& g, std::int64_t* out_iterations = nullptr) {
  const std::int64_t n = g.num_nodes();
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(n);
  const std::int64_t ceiling = iteration_ceiling(n);
  bool change = true;
  std::int64_t num_iter = 0;
  while (change) {
    change = false;
    ++num_iter;
    check_convergence_guard("shiloach_vishkin", num_iter, ceiling);
    std::int64_t hooks = 0;
    {
      const telemetry::ScopedPhase phase("sv.hook");
      // reduction(||) rather than a shared flag: unsynchronized stores to a
      // shared `change` from inside the region are a write-write race.
#pragma omp parallel for reduction(|| : change) reduction(+ : hooks) \
    schedule(dynamic, 16384)
      for (std::int64_t u = 0; u < n; ++u) {
        for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u))) {
          if (sv_hook_edge(static_cast<NodeID_>(u), v, comp)) {
            change = true;
            ++hooks;
          }
        }
      }
    }
    {
      const telemetry::ScopedPhase phase("sv.shortcut");
      // Shortcut = full path compression; compress() is the atomic-access
      // formulation shared with Afforest.
      compress_all(comp);
    }
    telemetry::add_iterations(1);
    telemetry::add_sv_hooks_fired(static_cast<std::uint64_t>(hooks));
  }
  if (out_iterations != nullptr) *out_iterations = num_iter;
  return comp;
}

/// SV with the original 1982 stagnation step (paper §V-A: "an additional
/// step was added at each iteration to avoid such scenarios", which modern
/// implementations omit).  After the conditional hook, any root whose tree
/// was NOT modified this iteration ("stagnant") hooks unconditionally onto
/// any neighbor tree — this is what bounds the original algorithm's
/// iteration count by O(log |V|) even on adversarial inputs.
template <typename NodeID_>
ComponentLabels<NodeID_> shiloach_vishkin_original(
    const CSRGraph<NodeID_>& g, std::int64_t* out_iterations = nullptr) {
  const std::int64_t n = g.num_nodes();
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(n);
  pvector<std::uint8_t> changed(static_cast<std::size_t>(n), 0);
  const std::int64_t ceiling = iteration_ceiling(n);
  bool change = true;
  std::int64_t num_iter = 0;
  while (change) {
    change = false;
    ++num_iter;
    check_convergence_guard("shiloach_vishkin_original", num_iter, ceiling);
    changed.fill(0);
    std::int64_t hooks = 0;
    {
      const telemetry::ScopedPhase phase("sv.hook");
      // Conditional hook (higher root onto lower), marking modified roots.
      // Label reads are atomic (they race with sibling hooks) and the
      // iteration flag folds through reduction(||) — see sv_hook_edge.
#pragma omp parallel for reduction(|| : change) reduction(+ : hooks) \
    schedule(dynamic, 16384)
      for (std::int64_t u = 0; u < n; ++u) {
        for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u))) {
          const NodeID_ comp_u = atomic_load(comp[u]);
          const NodeID_ comp_v = atomic_load(comp[v]);
          if (comp_u == comp_v) continue;
          const NodeID_ high_comp = std::max(comp_u, comp_v);
          const NodeID_ low_comp = std::min(comp_u, comp_v);
          if (high_comp == atomic_load(comp[high_comp])) {
            change = true;
            ++hooks;
            atomic_store(comp[high_comp], low_comp);
            atomic_store(changed[high_comp], std::uint8_t{1});
            atomic_store(changed[low_comp], std::uint8_t{1});
          }
        }
      }
    }
    {
      const telemetry::ScopedPhase phase("sv.stagnant");
      // Stagnant-root hook: a root untouched above may hook onto ANY
      // neighboring tree (even a higher-labeled one would break Invariant 1,
      // so we keep the lower-only rule but drop the direction condition on
      // which endpoint initiates — sufficient to merge stalled stars).
#pragma omp parallel for reduction(|| : change) reduction(+ : hooks) \
    schedule(dynamic, 16384)
      for (std::int64_t u = 0; u < n; ++u) {
        const NodeID_ comp_u = atomic_load(comp[u]);
        if (atomic_load(changed[comp_u]) != 0) continue;
        for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u))) {
          const NodeID_ comp_v = atomic_load(comp[v]);
          if (comp_v < comp_u && comp_u == atomic_load(comp[comp_u])) {
            change = true;
            ++hooks;
            atomic_store(comp[comp_u], comp_v);
            break;
          }
        }
      }
    }
    {
      const telemetry::ScopedPhase phase("sv.shortcut");
      compress_all(comp);
    }
    telemetry::add_iterations(1);
    telemetry::add_sv_hooks_fired(static_cast<std::uint64_t>(hooks));
  }
  if (out_iterations != nullptr) *out_iterations = num_iter;
  return comp;
}

/// Edge-list SV: identical hooking rule, but iterates a flat edge array.
/// Loads more data per pass (u is explicit per edge) yet every iteration is
/// perfectly regular — the trade-off Soman et al. exploit on GPUs.
template <typename NodeID_>
ComponentLabels<NodeID_> shiloach_vishkin_edgelist(
    const EdgeList<NodeID_>& edges, std::int64_t num_nodes,
    std::int64_t* out_iterations = nullptr) {
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(num_nodes);
  const std::int64_t ne = static_cast<std::int64_t>(edges.size());
  const std::int64_t ceiling = iteration_ceiling(num_nodes);
  bool change = true;
  std::int64_t num_iter = 0;
  while (change) {
    change = false;
    ++num_iter;
    check_convergence_guard("shiloach_vishkin_edgelist", num_iter, ceiling);
    std::int64_t hooks = 0;
    {
      const telemetry::ScopedPhase phase("sv.hook");
#pragma omp parallel for reduction(|| : change) reduction(+ : hooks) \
    schedule(static)
      for (std::int64_t i = 0; i < ne; ++i) {
        if (sv_hook_edge(edges[i].u, edges[i].v, comp)) {
          change = true;
          ++hooks;
        }
      }
    }
    {
      const telemetry::ScopedPhase phase("sv.shortcut");
      compress_all(comp);
    }
    telemetry::add_iterations(1);
    telemetry::add_sv_hooks_fired(static_cast<std::uint64_t>(hooks));
  }
  if (out_iterations != nullptr) *out_iterations = num_iter;
  return comp;
}

}  // namespace afforest
