// Direction-Optimizing BFS CC (DOBFS-CC) — the strongest traversal-based
// baseline in the paper (Beamer's direction-optimizing BFS [1][7] applied
// per component).
//
// A BFS step runs either top-down (scan the frontier queue, claim unvisited
// neighbors) or bottom-up (scan all unvisited vertices, look for ANY parent
// in the frontier bitmap and stop at the first hit).  When the frontier
// covers a large fraction of the graph — the common case one level into a
// giant low-diameter component — bottom-up skips most edges, which is why
// DOBFS-CC is the one algorithm that beats Afforest on single-component
// urand graphs (paper Fig 8a) and why its runtime drops as average degree
// grows (Fig 6c).
//
// Switching heuristics and default constants follow GAPBS:
// go bottom-up when scout_count > remaining_edges / alpha, return top-down
// when the awake count falls below |V| / beta.
#pragma once

#include <cstdint>

#include "cc/common.hpp"
#include "graph/csr_graph.hpp"
#include "util/bitmap.hpp"
#include "util/parallel.hpp"
#include "util/sliding_queue.hpp"

namespace afforest {

struct DOBFSOptions {
  std::int64_t alpha = 15;  ///< top-down → bottom-up switch factor
  std::int64_t beta = 18;   ///< bottom-up → top-down switch factor
};

namespace detail {

/// Scratch buffers reused across per-component searches.
template <typename NodeID_>
struct DOBFSState {
  explicit DOBFSState(std::int64_t n)
      : queue(static_cast<std::size_t>(n)),
        front(static_cast<std::size_t>(n)),
        next(static_cast<std::size_t>(n)) {}
  SlidingQueue<NodeID_> queue;
  Bitmap front;
  Bitmap next;
};

/// One top-down step; returns the number of edges incident to newly
/// discovered vertices (the "scout count" driving the direction switch).
template <typename NodeID_>
std::int64_t td_step(const CSRGraph<NodeID_>& g, NodeID_ label,
                     NodeID_ unvisited, pvector<NodeID_>& comp,
                     SlidingQueue<NodeID_>& queue) {
  std::int64_t scout_count = 0;
#pragma omp parallel
  {
    QueueBuffer<NodeID_> lqueue(queue);
#pragma omp for reduction(+ : scout_count) schedule(dynamic, 1024) nowait
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(queue.size());
         ++i) {
      const NodeID_ u = *(queue.begin() + i);
      for (NodeID_ v : g.out_neigh(u)) {
        NodeID_ expected = unvisited;
        if (atomic_load(comp[v]) == unvisited &&
            compare_and_swap(comp[v], expected, label)) {
          lqueue.push_back(v);
          scout_count += g.out_degree(v);
        }
      }
    }
    lqueue.flush();
  }
  queue.slide_window();
  return scout_count;
}

/// One bottom-up step; returns the number of newly awakened vertices.
template <typename NodeID_>
std::int64_t bu_step(const CSRGraph<NodeID_>& g, NodeID_ label,
                     NodeID_ unvisited, pvector<NodeID_>& comp,
                     const Bitmap& front, Bitmap& next) {
  const std::int64_t n = g.num_nodes();
  std::int64_t awake_count = 0;
  next.reset();
#pragma omp parallel for reduction(+ : awake_count) schedule(dynamic, 2048)
  for (std::int64_t v = 0; v < n; ++v) {
    if (comp[v] != unvisited) continue;  // NOLINT(afforest-plain-shared-access): bottom-up pass only touches comp[v] from the thread owning v
    for (NodeID_ w : g.out_neigh(static_cast<NodeID_>(v))) {
      if (front.get_bit(static_cast<std::size_t>(w))) {
        comp[v] = label;  // NOLINT(afforest-plain-shared-access): owner-exclusive write, only this thread owns v
        next.set_bit(static_cast<std::size_t>(v));
        ++awake_count;
        break;  // first parent suffices — the bottom-up edge saving
      }
    }
  }
  return awake_count;
}

template <typename NodeID_>
void queue_to_bitmap(const SlidingQueue<NodeID_>& queue, Bitmap& bm) {
  bm.reset();
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(queue.size()); ++i)
    bm.set_bit_atomic(static_cast<std::size_t>(*(queue.begin() + i)));
}

template <typename NodeID_>
void bitmap_to_queue(const CSRGraph<NodeID_>& g, const Bitmap& bm,
                     SlidingQueue<NodeID_>& queue) {
  const std::int64_t n = g.num_nodes();
  queue.reset();
#pragma omp parallel
  {
    QueueBuffer<NodeID_> lqueue(queue);
#pragma omp for schedule(static) nowait
    for (std::int64_t v = 0; v < n; ++v)
      if (bm.get_bit(static_cast<std::size_t>(v)))
        lqueue.push_back(static_cast<NodeID_>(v));
    lqueue.flush();
  }
  queue.slide_window();
}

/// Direction-optimizing BFS labeling one component.  `remaining_edges` is
/// the caller's estimate of unexplored stored edges, used by the alpha
/// heuristic.
template <typename NodeID_>
void dobfs_label_component(const CSRGraph<NodeID_>& g, NodeID_ source,
                           NodeID_ label, NodeID_ unvisited,
                           pvector<NodeID_>& comp, DOBFSState<NodeID_>& state,
                           std::int64_t remaining_edges,
                           const DOBFSOptions& opts) {
  const std::int64_t n = g.num_nodes();
  auto& queue = state.queue;
  queue.reset();
  comp[source] = label;
  queue.push_back(source);
  queue.slide_window();
  std::int64_t scout_count = g.out_degree(source);
  std::int64_t edges_to_check = remaining_edges;
  // lint: bounded(every vertex is claimed at most once, so at most |V| non-empty frontiers)
  while (!queue.empty()) {
    if (scout_count > edges_to_check / opts.alpha) {
      queue_to_bitmap(queue, state.front);
      std::int64_t awake_count = static_cast<std::int64_t>(queue.size());
      std::int64_t old_awake;
      // lint: bounded(loops only while the awake count grows or stays above n/beta; both are capped by |V| claims)
      do {
        old_awake = awake_count;
        awake_count =
            bu_step(g, label, unvisited, comp, state.front, state.next);
        state.front.swap(state.next);
      } while (awake_count >= old_awake || awake_count > n / opts.beta);
      bitmap_to_queue(g, state.front, queue);
      scout_count = 1;
    } else {
      edges_to_check -= scout_count;
      scout_count = td_step(g, label, unvisited, comp, queue);
    }
  }
}

}  // namespace detail

/// DOBFS-CC driver: sequential loop over components, direction-optimized
/// search within each.
template <typename NodeID_>
ComponentLabels<NodeID_> dobfs_cc(const CSRGraph<NodeID_>& g,
                                  DOBFSOptions opts = {},
                                  std::int64_t* out_num_components = nullptr) {
  const std::int64_t n = g.num_nodes();
  constexpr NodeID_ kUnvisited = -1;
  ComponentLabels<NodeID_> comp(static_cast<std::size_t>(n));
  comp.fill(kUnvisited);
  detail::DOBFSState<NodeID_> state(n);
  std::int64_t remaining_edges = g.num_stored_edges();
  std::int64_t num_components = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    if (comp[v] != kUnvisited) continue;
    ++num_components;
    detail::dobfs_label_component(g, static_cast<NodeID_>(v),
                                  static_cast<NodeID_>(v), kUnvisited, comp,
                                  state, remaining_edges, opts);
  }
  if (out_num_components != nullptr) *out_num_components = num_components;
  return comp;
}

}  // namespace afforest
