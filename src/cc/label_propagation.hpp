// Min-Label Propagation (LP) baseline (paper §II-B).
//
// Every vertex starts with a unique label; each iteration every vertex
// adopts the minimum label in its closed neighborhood, until a fixpoint.
// Work is O(D·|E|) — strongly diameter-dependent, which Fig 6c and Fig 8
// expose on road-like graphs.
//
// Two variants:
//   label_propagation           — topology-driven: scans every edge each
//                                 iteration (the classic formulation)
//   label_propagation_frontier  — data-driven: only vertices whose label
//                                 changed propagate in the next iteration
//                                 (paper's [6]; trades a frontier structure
//                                 for less redundant work)
#pragma once

#include <cstdint>

#include "analysis/telemetry.hpp"
#include "cc/common.hpp"
#include "cc/guards.hpp"
#include "graph/csr_graph.hpp"
#include "util/parallel.hpp"

namespace afforest {

template <typename NodeID_>
ComponentLabels<NodeID_> label_propagation(
    const CSRGraph<NodeID_>& g, std::int64_t* out_iterations = nullptr) {
  const std::int64_t n = g.num_nodes();
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(n);
  // Two buffers keep iterations properly synchronous (Jacobi-style):
  // labels travel exactly one hop per iteration, giving the O(D·|E|)
  // behaviour the paper analyzes.  An in-place update would be
  // Gauss-Seidel and converge artificially fast in scan order.
  ComponentLabels<NodeID_> next = comp.clone();
  const std::int64_t ceiling = iteration_ceiling(n);
  bool change = true;
  std::int64_t num_iter = 0;
  while (change) {
    change = false;
    ++num_iter;
    check_convergence_guard("label_propagation", num_iter, ceiling);
    std::int64_t updates = 0;
    {
      const telemetry::ScopedPhase phase("lp.iterate");
      // Jacobi iterations are race-free with plain accesses: comp is
      // read-only until the swap below, and next[u] is written only by the
      // thread that owns u.  Each access carries its own waiver so a future
      // edit that breaks the double-buffer pattern re-triggers the lint.
#pragma omp parallel for reduction(|| : change) reduction(+ : updates) \
    schedule(dynamic, 16384)
      for (std::int64_t u = 0; u < n; ++u) {
        NodeID_ lowest = comp[u];  // NOLINT(afforest-plain-shared-access): comp is read-only during a Jacobi iteration
        for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
          lowest = std::min(lowest, comp[v]);  // NOLINT(afforest-plain-shared-access): comp is read-only during a Jacobi iteration
        next[u] = lowest;  // NOLINT(afforest-plain-shared-access): owner-exclusive write, only thread owning u writes next[u]
        if (lowest != comp[u]) {  // NOLINT(afforest-plain-shared-access): comp is read-only during a Jacobi iteration
          change = true;
          ++updates;
        }
      }
      comp.swap(next);
    }
    telemetry::add_iterations(1);
    telemetry::add_lp_label_updates(static_cast<std::uint64_t>(updates));
  }
  if (out_iterations != nullptr) *out_iterations = num_iter;
  return comp;
}

template <typename NodeID_>
ComponentLabels<NodeID_> label_propagation_frontier(
    const CSRGraph<NodeID_>& g, std::int64_t* out_iterations = nullptr) {
  const std::int64_t n = g.num_nodes();
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(n);

  // Double-buffered frontier.  Each round every vertex enters the next
  // frontier at most once (the `queued` marks), so both buffers are
  // bounded by |V| even though a vertex may re-activate across rounds.
  pvector<NodeID_> current(static_cast<std::size_t>(n));
  pvector<NodeID_> next(static_cast<std::size_t>(n));
  std::int64_t current_size = n;
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < n; ++v) current[v] = static_cast<NodeID_>(v);

  pvector<std::uint8_t> queued(static_cast<std::size_t>(n), 0);
  const std::int64_t ceiling = iteration_ceiling(n);
  std::int64_t num_iter = 0;
  while (current_size > 0) {
    ++num_iter;
    check_convergence_guard("label_propagation_frontier", num_iter, ceiling);
    std::int64_t next_size = 0;
    std::int64_t updates = 0;
    {
      const telemetry::ScopedPhase phase("lp.frontier");
#pragma omp parallel for reduction(+ : updates) schedule(dynamic, 4096)
      for (std::int64_t i = 0; i < current_size; ++i) {
        const NodeID_ u = current[i];
        const NodeID_ my = atomic_load(comp[u]);
        for (NodeID_ v : g.out_neigh(u)) {
          if (my < atomic_load(comp[v]) && atomic_fetch_min(comp[v], my)) {
            ++updates;
            std::uint8_t expected = 0;
            if (compare_and_swap(queued[v], expected, std::uint8_t{1}))
              next[fetch_and_add(next_size, std::int64_t{1})] = v;
          }
        }
      }
    }
    telemetry::add_iterations(1);
    telemetry::add_lp_label_updates(static_cast<std::uint64_t>(updates));
    current.swap(next);
    current_size = next_size;
    if (current_size > 0) queued.fill(0);
  }
  if (out_iterations != nullptr) *out_iterations = num_iter;
  return comp;
}

}  // namespace afforest
