// Per-phase timing breakdown of Afforest — where does the time actually
// go?  The paper's narrative (sampling rounds are O(|V|) and cheap; the
// skipped final phase is nearly free on giant-component graphs; compress
// is a small constant overhead) becomes directly measurable.
#pragma once

#include <cstdint>

#include "analysis/telemetry.hpp"
#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "graph/csr_graph.hpp"
#include "util/timer.hpp"

namespace afforest {

struct AfforestPhaseTimes {
  double init_s = 0;
  double sampling_s = 0;       ///< neighbor-round links
  double compress_s = 0;       ///< all compress passes
  double find_component_s = 0; ///< sample_frequent_element
  double final_link_s = 0;

  [[nodiscard]] double total_s() const {
    return init_s + sampling_s + compress_s + find_component_s +
           final_link_s;
  }
};

/// afforest_cc with a stopwatch around every phase.  Returns the same
/// labels; timing is wall-clock per phase.
template <typename NodeID_>
ComponentLabels<NodeID_> afforest_timed(const CSRGraph<NodeID_>& g,
                                        AfforestPhaseTimes& times,
                                        AfforestOptions opts = {}) {
  const std::int64_t n = g.num_nodes();
  times = AfforestPhaseTimes{};
  Timer t;

  t.start();
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(n);
  t.stop();
  times.init_s = t.seconds();
  telemetry::record_phase("afforest.init", t.seconds());

  const std::int32_t rounds = std::max(std::int32_t{0}, opts.neighbor_rounds);
  for (std::int32_t r = 0; r < rounds; ++r) {
    t.start();
#pragma omp parallel for schedule(dynamic, 16384)
    for (std::int64_t v = 0; v < n; ++v) {
      if (r < g.out_degree(static_cast<NodeID_>(v)))
        link(static_cast<NodeID_>(v), g.neighbor(static_cast<NodeID_>(v), r),
             comp);
    }
    t.stop();
    times.sampling_s += t.seconds();
    telemetry::record_phase("afforest.sampling", t.seconds());
    t.start();
    compress_all(comp);
    t.stop();
    times.compress_s += t.seconds();
    telemetry::record_phase("afforest.compress", t.seconds());
  }

  NodeID_ c = 0;
  if (opts.skip_largest && n > 0) {
    t.start();
    c = sample_frequent_element(comp, opts.sample_count, opts.sample_seed);
    t.stop();
    times.find_component_s = t.seconds();
    telemetry::record_phase("afforest.find_largest", t.seconds());
  }

  // Phase 3 is the exact production loop (link_remaining), so the timed
  // variant cannot drift from afforest_cc's semantics.
  t.start();
  link_remaining(g, comp, rounds, opts, c);
  t.stop();
  times.final_link_s = t.seconds();
  telemetry::record_phase("afforest.final_link", t.seconds());

  t.start();
  compress_all(comp);
  t.stop();
  times.compress_s += t.seconds();
  telemetry::record_phase("afforest.compress", t.seconds());
  return comp;
}

}  // namespace afforest
