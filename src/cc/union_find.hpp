// Serial union-find (disjoint-set forest) with union-by-lower-id and full
// path compression.  Serves as the trusted reference implementation: the
// verifier checks every parallel algorithm's partition against it, and the
// benchmarks report it as the sequential comparator.
//
// Union-by-lower-id (rather than by rank) makes the final labels the
// minimum vertex id of each component, matching Afforest's label
// convention exactly — so tests can compare label arrays directly.
#pragma once

#include <cstdint>

#include "cc/common.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "util/pvector.hpp"

namespace afforest {

template <typename NodeID_>
class UnionFind {
 public:
  explicit UnionFind(std::int64_t n) : parent_(static_cast<std::size_t>(n)) {
    for (std::int64_t v = 0; v < n; ++v)
      parent_[v] = static_cast<NodeID_>(v);
  }

  /// Root of v's set, with path compression.
  NodeID_ find(NodeID_ v) {
    NodeID_ root = v;
    // lint: bounded(walks a finite acyclic parent chain to its root)
    while (parent_[root] != root) root = parent_[root];
    // lint: bounded(rewrites the same finite chain, each step moves one hop toward the root)
    while (parent_[v] != root) {
      const NodeID_ next = parent_[v];
      parent_[v] = root;
      v = next;
    }
    return root;
  }

  /// Merges the sets of u and v; the lower root becomes the parent.
  /// Returns true if a merge happened (u, v were in different sets).
  bool unite(NodeID_ u, NodeID_ v) {
    const NodeID_ ru = find(u);
    const NodeID_ rv = find(v);
    if (ru == rv) return false;
    if (ru < rv)
      parent_[rv] = ru;
    else
      parent_[ru] = rv;
    return true;
  }

  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(parent_.size());
  }

  /// Fully compressed label array (labels = min vertex id per component).
  [[nodiscard]] ComponentLabels<NodeID_> labels() {
    ComponentLabels<NodeID_> out(parent_.size());
    for (std::int64_t v = 0; v < size(); ++v)
      out[v] = find(static_cast<NodeID_>(v));
    return out;
  }

 private:
  pvector<NodeID_> parent_;
};

/// Reference serial CC over a CSR graph.
template <typename NodeID_>
ComponentLabels<NodeID_> union_find_cc(const CSRGraph<NodeID_>& g) {
  UnionFind<NodeID_> uf(g.num_nodes());
  for (std::int64_t u = 0; u < g.num_nodes(); ++u)
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
      uf.unite(static_cast<NodeID_>(u), v);
  return uf.labels();
}

/// Reference serial CC over a raw edge list.
template <typename NodeID_>
ComponentLabels<NodeID_> union_find_cc(const EdgeList<NodeID_>& edges,
                                       std::int64_t num_nodes) {
  UnionFind<NodeID_> uf(num_nodes);
  for (const auto& [u, v] : edges) uf.unite(u, v);
  return uf.labels();
}

}  // namespace afforest
