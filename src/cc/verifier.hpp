// Connected-components verifier.
//
// Two layers of checking:
//   labels_equivalent(a, b)  — are two label arrays the same partition?
//                              (algorithms may choose different
//                              representatives; this checks the bijection)
//   verify_cc(g, comp)       — is `comp` a correct CC labeling of g?
//                              Checks (1) every edge joins equal labels and
//                              (2) equal labels imply connectivity, via the
//                              serial union-find reference.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cc/common.hpp"
#include "cc/union_find.hpp"
#include "graph/csr_graph.hpp"

namespace afforest {

/// True iff label arrays `a` and `b` induce the same partition of
/// [0, a.size()).
template <typename NodeID_>
bool labels_equivalent(const ComponentLabels<NodeID_>& a,
                       const ComponentLabels<NodeID_>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<NodeID_, NodeID_> a_to_b;
  std::unordered_map<NodeID_, NodeID_> b_to_a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto [ita, inserted_a] = a_to_b.emplace(a[v], b[v]);
    if (!inserted_a && ita->second != b[v]) return false;
    const auto [itb, inserted_b] = b_to_a.emplace(b[v], a[v]);
    if (!inserted_b && itb->second != a[v]) return false;
  }
  return true;
}

/// Full correctness check of `comp` against graph `g`.
template <typename NodeID_>
bool verify_cc(const CSRGraph<NodeID_>& g,
               const ComponentLabels<NodeID_>& comp) {
  if (static_cast<std::int64_t>(comp.size()) != g.num_nodes()) return false;
  // (1) endpoints of every edge share a label (labels not too fine).
  const std::int64_t n = g.num_nodes();
  bool edges_ok = true;
#pragma omp parallel for reduction(&& : edges_ok) schedule(dynamic, 4096)
  for (std::int64_t u = 0; u < n; ++u)
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
      edges_ok = edges_ok && (comp[u] == comp[v]);
  if (!edges_ok) return false;
  // (2) partition matches the reference (labels not too coarse).
  return labels_equivalent(comp, union_find_cc(g));
}

}  // namespace afforest
