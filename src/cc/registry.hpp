// Name → algorithm registry over the default Graph instantiation.
// Benchmarks, examples, and the CLI tool all dispatch through this table so
// every binary exposes the identical algorithm set.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cc/common.hpp"
#include "graph/csr_graph.hpp"

namespace afforest {

using CCFunction =
    std::function<ComponentLabels<std::int32_t>(const Graph&)>;

struct AlgorithmEntry {
  std::string name;
  std::string description;
  CCFunction run;
};

/// All registered algorithms, in the order the paper's figures list them.
const std::vector<AlgorithmEntry>& cc_algorithms();

/// Lookup by name; throws std::invalid_argument for unknown names.
const AlgorithmEntry& cc_algorithm(const std::string& name);

/// True if `name` is registered.
bool is_cc_algorithm(const std::string& name);

}  // namespace afforest
