// Name → algorithm registry over the default Graph instantiation.
// Benchmarks, examples, and the CLI tool all dispatch through this table so
// every binary exposes the identical algorithm set.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/telemetry.hpp"
#include "cc/common.hpp"
#include "graph/csr_graph.hpp"

namespace afforest {

using CCFunction =
    std::function<ComponentLabels<std::int32_t>(const Graph&)>;

struct AlgorithmEntry {
  std::string name;
  std::string description;
  CCFunction run;
};

/// Receives a per-run telemetry report after each registry dispatch.  Wire
/// one in with set_telemetry_sink to collect kernel counters (CAS traffic,
/// compress hops, phase-3 skips, phase timings) without touching the
/// algorithm call sites — bench/harness.hpp uses this to attach counters to
/// its JSON records.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void consume(const std::string& algorithm,
                       const telemetry::Report& report) = 0;
};

/// Install `sink` (may be null to detach); returns the previous sink so
/// callers can restore it.  When a sink is installed and telemetry is
/// enabled, every AlgorithmEntry::run dispatched through the registry
/// resets the counters, runs the algorithm, and hands the captured report
/// to the sink.  Not thread-safe against concurrent dispatches: install
/// the sink before timing loops start.
TelemetrySink* set_telemetry_sink(TelemetrySink* sink);

/// Currently installed sink (null if none).
TelemetrySink* telemetry_sink();

/// All registered algorithms, in the order the paper's figures list them.
const std::vector<AlgorithmEntry>& cc_algorithms();

/// Lookup by name; throws std::invalid_argument for unknown names.
const AlgorithmEntry& cc_algorithm(const std::string& name);

/// True if `name` is registered.
bool is_cc_algorithm(const std::string& name);

}  // namespace afforest
