// BFS-CC baseline (paper §II-B): identify components by running a parallel
// level-synchronous BFS from one root per component, sequentially looping
// over components.  Linear work in |E| but parallelism is limited to within
// a component — the serialization Fig 8c exposes as the component count
// grows.
#pragma once

#include <cstdint>

#include "cc/common.hpp"
#include "graph/csr_graph.hpp"
#include "util/parallel.hpp"
#include "util/sliding_queue.hpp"

namespace afforest {

/// Runs a top-down parallel BFS from `source`, writing `label` into comp
/// for every reached vertex.  comp entries equal to `unvisited` mark
/// unexplored vertices.  The caller provides the frontier queue (reset
/// here) so repeated per-component searches do not reallocate.  Returns the
/// number of vertices visited.
template <typename NodeID_>
std::int64_t bfs_label_component(const CSRGraph<NodeID_>& g, NodeID_ source,
                                 NodeID_ label, NodeID_ unvisited,
                                 pvector<NodeID_>& comp,
                                 SlidingQueue<NodeID_>& queue) {
  queue.reset();
  comp[source] = label;
  queue.push_back(source);
  queue.slide_window();
  std::int64_t visited = 1;
  // lint: bounded(every vertex is CAS-claimed and enqueued at most once, so at most |V| non-empty frontiers)
  while (!queue.empty()) {
#pragma omp parallel
    {
      QueueBuffer<NodeID_> lqueue(queue);
#pragma omp for reduction(+ : visited) schedule(dynamic, 1024) nowait
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(queue.size());
           ++i) {
        const NodeID_ u = *(queue.begin() + i);
        for (NodeID_ v : g.out_neigh(u)) {
          // CAS claims the vertex so exactly one parent enqueues it.
          NodeID_ expected = unvisited;
          if (atomic_load(comp[v]) == unvisited &&
              compare_and_swap(comp[v], expected, label)) {
            lqueue.push_back(v);
            ++visited;
          }
        }
      }
      lqueue.flush();
    }
    queue.slide_window();
  }
  return visited;
}

/// BFS-CC driver.  Labels are each component's discovery root (its lowest
/// vertex id, because roots are scanned in ascending order).
template <typename NodeID_>
ComponentLabels<NodeID_> bfs_cc(const CSRGraph<NodeID_>& g,
                                std::int64_t* out_num_components = nullptr) {
  const std::int64_t n = g.num_nodes();
  constexpr NodeID_ kUnvisited = -1;
  ComponentLabels<NodeID_> comp(static_cast<std::size_t>(n));
  comp.fill(kUnvisited);
  SlidingQueue<NodeID_> queue(static_cast<std::size_t>(n));
  std::int64_t num_components = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    if (comp[v] != kUnvisited) continue;
    ++num_components;
    bfs_label_component(g, static_cast<NodeID_>(v), static_cast<NodeID_>(v),
                        kUnvisited, comp, queue);
  }
  if (out_num_components != nullptr) *out_num_components = num_components;
  return comp;
}

}  // namespace afforest
