#include "cc/registry.hpp"

#include <stdexcept>
#include <utility>

#include "cc/afforest.hpp"
#include "cc/bfs_cc.hpp"
#include "cc/dobfs_cc.hpp"
#include "cc/label_propagation.hpp"
#include "cc/shiloach_vishkin.hpp"
#include "cc/contraction.hpp"
#include "cc/multistep.hpp"
#include "cc/rem.hpp"
#include "cc/union_find.hpp"
#include "graph/edge_list.hpp"

namespace afforest {

namespace {

TelemetrySink*& sink_slot() {
  static TelemetrySink* sink = nullptr;
  return sink;
}

/// Wrap a registry lambda so a dispatch feeds the installed sink.  The
/// telemetry reset/capture pair only runs when a sink is attached AND
/// telemetry is armed, so plain dispatches keep their exact former cost.
CCFunction with_sink(std::string name, CCFunction fn) {
  return [name = std::move(name),
          fn = std::move(fn)](const Graph& g) -> ComponentLabels<std::int32_t> {
    TelemetrySink* sink = sink_slot();
    if (sink == nullptr || !telemetry::enabled()) return fn(g);
    telemetry::reset();
    ComponentLabels<std::int32_t> labels = fn(g);
    sink->consume(name, telemetry::capture());
    return labels;
  };
}

std::vector<AlgorithmEntry> wrap_all(std::vector<AlgorithmEntry> raw) {
  for (auto& e : raw) e.run = with_sink(e.name, std::move(e.run));
  return raw;
}

}  // namespace

TelemetrySink* set_telemetry_sink(TelemetrySink* sink) {
  TelemetrySink* previous = sink_slot();
  sink_slot() = sink;
  return previous;
}

TelemetrySink* telemetry_sink() { return sink_slot(); }

const std::vector<AlgorithmEntry>& cc_algorithms() {
  static const std::vector<AlgorithmEntry> algorithms = wrap_all({
      {"afforest", "Afforest with neighbor sampling + component skipping",
       [](const Graph& g) { return afforest_cc(g); }},
      {"afforest-noskip", "Afforest without large-component skipping",
       [](const Graph& g) { return afforest_no_skip(g); }},
      {"sv", "Shiloach-Vishkin (CSR, GAPBS formulation)",
       [](const Graph& g) { return shiloach_vishkin(g); }},
      {"sv-original", "Shiloach-Vishkin with the 1982 stagnant-root hook",
       [](const Graph& g) { return shiloach_vishkin_original(g); }},
      {"sv-edgelist", "Shiloach-Vishkin over an explicit edge list "
                      "(Soman et al.'s GPU formulation on CPU)",
       [](const Graph& g) {
         EdgeList<std::int32_t> edges;
         edges.reserve(static_cast<std::size_t>(g.num_stored_edges() / 2));
         for (std::int64_t u = 0; u < g.num_nodes(); ++u)
           for (std::int32_t v : g.out_neigh(static_cast<std::int32_t>(u)))
             if (static_cast<std::int32_t>(u) < v)
               edges.push_back({static_cast<std::int32_t>(u), v});
         return shiloach_vishkin_edgelist(edges, g.num_nodes());
       }},
      {"lp", "synchronous min-label propagation",
       [](const Graph& g) { return label_propagation(g); }},
      {"lp-frontier", "data-driven min-label propagation",
       [](const Graph& g) { return label_propagation_frontier(g); }},
      {"bfs", "BFS-CC (parallel BFS per component)",
       [](const Graph& g) { return bfs_cc(g); }},
      {"dobfs", "direction-optimizing BFS-CC",
       [](const Graph& g) { return dobfs_cc(g); }},
      {"multistep", "giant-component BFS + label propagation remainder "
                    "(Slota et al. hybrid)",
       [](const Graph& g) { return multistep_cc(g); }},
      {"contraction", "hook-and-contract quotient rounds "
                      "(Hirschberg/Blelloch family)",
       [](const Graph& g) { return contraction_cc(g); }},
      {"rem", "Rem's union-find with path splicing (serial)",
       [](const Graph& g) { return rem_cc(g); }},
      {"rem-parallel", "lock-free Rem with CAS splicing",
       [](const Graph& g) { return rem_cc_parallel(g); }},
      {"serial-uf", "serial union-find reference",
       [](const Graph& g) { return union_find_cc(g); }},
  });
  return algorithms;
}

const AlgorithmEntry& cc_algorithm(const std::string& name) {
  for (const auto& a : cc_algorithms())
    if (a.name == name) return a;
  throw std::invalid_argument("unknown CC algorithm: " + name);
}

bool is_cc_algorithm(const std::string& name) {
  for (const auto& a : cc_algorithms())
    if (a.name == name) return true;
  return false;
}

}  // namespace afforest
