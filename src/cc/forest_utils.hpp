// Structural utilities over parent arrays (π forests): validation of the
// paper's Invariant 1, depth statistics, and tree-size distributions.
// Shared by the analysis module, tests, and the worst-case benches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/pvector.hpp"

namespace afforest {

/// True iff π(x) ≤ x for every x (paper Invariant 1).  A forest satisfying
/// this is automatically acyclic (Lemma 1).
template <typename NodeID_>
bool satisfies_parent_invariant(const pvector<NodeID_>& pi) {
  for (std::size_t v = 0; v < pi.size(); ++v)
    if (pi[v] > static_cast<NodeID_>(v) || pi[v] < 0) return false;
  return true;
}

/// Depth of vertex v (0 for roots).  Precondition: π is acyclic.
template <typename NodeID_>
std::int64_t depth_of(const pvector<NodeID_>& pi, NodeID_ v) {
  std::int64_t d = 0;
  // lint: bounded(precondition: pi is acyclic, so the walk reaches a root)
  while (pi[v] != v) {
    v = pi[v];
    ++d;
  }
  return d;
}

/// Histogram of tree depths: bucket d counts vertices at depth d.
template <typename NodeID_>
std::vector<std::int64_t> depth_histogram(const pvector<NodeID_>& pi) {
  std::vector<std::int64_t> hist;
  for (std::size_t v = 0; v < pi.size(); ++v) {
    const auto d =
        static_cast<std::size_t>(depth_of(pi, static_cast<NodeID_>(v)));
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

/// Number of roots (trees) in the forest.
template <typename NodeID_>
std::int64_t count_trees(const pvector<NodeID_>& pi) {
  std::int64_t roots = 0;
  for (std::size_t v = 0; v < pi.size(); ++v)
    if (pi[v] == static_cast<NodeID_>(v)) ++roots;
  return roots;
}

/// Sizes of all trees keyed by root.  Precondition: π is acyclic.
template <typename NodeID_>
std::unordered_map<NodeID_, std::int64_t> tree_sizes(
    const pvector<NodeID_>& pi) {
  std::unordered_map<NodeID_, std::int64_t> sizes;
  for (std::size_t v = 0; v < pi.size(); ++v) {
    NodeID_ root = static_cast<NodeID_>(v);
    // lint: bounded(precondition: pi is acyclic, so the walk reaches a root)
    while (pi[root] != root) root = pi[root];
    ++sizes[root];
  }
  return sizes;
}

/// True iff every tree has depth ≤ 1 (the compress postcondition).
template <typename NodeID_>
bool is_depth_one(const pvector<NodeID_>& pi) {
  for (std::size_t v = 0; v < pi.size(); ++v)
    if (pi[pi[v]] != pi[v]) return false;
  return true;
}

}  // namespace afforest
