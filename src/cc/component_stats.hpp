// Component-level statistics derived from a label array: component count,
// size distribution, and the giant-component fraction — the quantities in
// the paper's Table III and the inputs to its Coverage measure.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cc/common.hpp"

namespace afforest {

struct ComponentSummary {
  std::int64_t num_components = 0;
  std::int64_t largest_size = 0;
  double largest_fraction = 0;  ///< |c_max| / |V|
  std::int64_t num_singletons = 0;
};

/// Sizes of all components, descending.
template <typename NodeID_>
std::vector<std::int64_t> component_sizes(
    const ComponentLabels<NodeID_>& comp) {
  std::unordered_map<NodeID_, std::int64_t> counts;
  for (NodeID_ label : comp) ++counts[label];
  std::vector<std::int64_t> sizes;
  sizes.reserve(counts.size());
  for (const auto& [_, c] : counts) sizes.push_back(c);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return sizes;
}

template <typename NodeID_>
ComponentSummary summarize_components(const ComponentLabels<NodeID_>& comp) {
  ComponentSummary s;
  const auto sizes = component_sizes(comp);
  s.num_components = static_cast<std::int64_t>(sizes.size());
  s.largest_size = sizes.empty() ? 0 : sizes.front();
  s.largest_fraction =
      comp.empty() ? 0.0
                   : static_cast<double>(s.largest_size) /
                         static_cast<double>(comp.size());
  s.num_singletons = static_cast<std::int64_t>(
      std::count(sizes.begin(), sizes.end(), std::int64_t{1}));
  return s;
}

/// The label of the largest component (exact, unlike
/// sample_frequent_element).  Undefined for empty input.
template <typename NodeID_>
NodeID_ largest_component_label(const ComponentLabels<NodeID_>& comp) {
  std::unordered_map<NodeID_, std::int64_t> counts;
  for (NodeID_ label : comp) ++counts[label];
  NodeID_ best{};
  std::int64_t best_count = -1;
  for (const auto& [label, c] : counts) {
    if (c > best_count || (c == best_count && label < best)) {
      best = label;
      best_count = c;
    }
  }
  return best;
}

}  // namespace afforest
