// Convergence guards for the fixpoint-iteration algorithms.
//
// Shiloach–Vishkin, label propagation, and Multistep's cleanup loop all
// iterate "until nothing changes".  On correct code and sane inputs that
// terminates (every productive SV iteration retires at least one root;
// a label travels at most one hop per LP iteration), but a bug — or a
// data race reintroduced by a future edit — can spin them forever with no
// diagnostic.  Each loop therefore runs under an iteration ceiling; when
// it is exceeded the algorithm throws ConvergenceError carrying enough
// context to file a useful report, and the app driver's --fallback mode
// (apps/driver.hpp) can catch it and degrade to serial union-find.
//
// The default ceiling is structural: 2·|V| + 64, which no terminating run
// can reach (SV performs at most |V| productive iterations + 1, LP at most
// diameter + 1 ≤ |V|).  AFFOREST_MAX_ITER overrides it for tests and for
// operators who want a tighter leash; 0 disables the guard entirely.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/env.hpp"

namespace afforest {

/// Thrown when an iterative CC kernel exceeds its iteration ceiling.
class ConvergenceError : public std::runtime_error {
 public:
  ConvergenceError(const std::string& algorithm, std::int64_t iterations,
                   std::int64_t ceiling)
      : std::runtime_error(algorithm + ": no convergence after " +
                           std::to_string(iterations) +
                           " iterations (ceiling " +
                           std::to_string(ceiling) +
                           "; raise AFFOREST_MAX_ITER or suspect a "
                           "livelock)"),
        algorithm_(algorithm),
        iterations_(iterations),
        ceiling_(ceiling) {}

  [[nodiscard]] const std::string& algorithm() const noexcept {
    return algorithm_;
  }
  [[nodiscard]] std::int64_t iterations() const noexcept {
    return iterations_;
  }
  [[nodiscard]] std::int64_t ceiling() const noexcept { return ceiling_; }

 private:
  std::string algorithm_;
  std::int64_t iterations_;
  std::int64_t ceiling_;
};

/// Iteration ceiling for a graph of `num_nodes` vertices: the
/// AFFOREST_MAX_ITER override when set (0 disables the guard), else the
/// structural bound 2·|V| + 64.  Read once per algorithm invocation.
inline std::int64_t iteration_ceiling(std::int64_t num_nodes) {
  if (const auto v = env::as_int64("AFFOREST_MAX_ITER"); v && *v >= 0)
    return *v == 0 ? std::numeric_limits<std::int64_t>::max() : *v;
  return 2 * num_nodes + 64;
}

/// Call at the top of each fixpoint iteration, after incrementing the
/// iteration counter: throws once the loop runs past its ceiling.
inline void check_convergence_guard(const char* algorithm,
                                    std::int64_t iterations,
                                    std::int64_t ceiling) {
  if (iterations > ceiling)
    throw ConvergenceError(algorithm, iterations, ceiling);
}

}  // namespace afforest
