// Contraction-based CC ("hook and contract", in the lineage of
// Hirschberg et al. and Blelloch's work-efficient formulations) — the
// third classic parallel CC family alongside tree-hooking (SV/Afforest)
// and traversal (BFS/LP), included for baseline completeness.
//
// Each round: (1) every vertex hooks onto its minimum neighbor if that
// neighbor is smaller (star formation), (2) hooks are compressed to
// roots, (3) the graph is contracted to the quotient over roots —
// dropping intra-component edges — and the next round runs on the
// (geometrically smaller) quotient.  O(log V) rounds; each round costs
// O(V + E) including the rebuild, so total work is O((V + E) log V) —
// more than Afforest but with strong theoretical guarantees and no
// reliance on topology.
#pragma once

#include <cstdint>

#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "cc/guards.hpp"
#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "util/parallel.hpp"

namespace afforest {

template <typename NodeID_>
ComponentLabels<NodeID_> contraction_cc(const CSRGraph<NodeID_>& g,
                                        std::int64_t* out_rounds = nullptr) {
  const std::int64_t n = g.num_nodes();
  // Global labels: comp[v] is v's current representative in the ORIGINAL
  // id space; quotient rounds refine it.
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(n);

  // Current quotient edge set, in original-id space, deduplicated lazily.
  EdgeList<NodeID_> edges;
  for (std::int64_t u = 0; u < n; ++u)
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
      if (static_cast<NodeID_>(u) < v)
        edges.push_back({static_cast<NodeID_>(u), v});

  // Every round merges at least one pair while edges remain (a surviving
  // edge has distinct representatives, and the next hook pass points one
  // at the other), so rounds ≤ |V|; the guard turns a stall — e.g. a race
  // reintroduced into the hook pass — into a diagnosable error instead of
  // a livelock.  This fixpoint loop predates the guard discipline and was
  // the one PR 2 missed; afforest-lint's L2 rule flagged it.
  const std::int64_t ceiling = iteration_ceiling(n);
  std::int64_t rounds = 0;
  while (!edges.empty()) {
    ++rounds;
    check_convergence_guard("contraction", rounds, ceiling);
    // (1) Hook: every endpoint pair tries to point the larger label at the
    // smaller one.  atomic_fetch_min keeps this a proper min over all
    // incident edges under parallelism.
    const std::int64_t m = static_cast<std::int64_t>(edges.size());
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < m; ++i) {
      const auto [u, v] = edges[i];
      if (u < v)
        atomic_fetch_min(comp[v], u);
      else
        atomic_fetch_min(comp[u], v);
    }
    // (2) Compress hook chains to roots.
    compress_all(comp);
    // (3) Contract: keep only edges whose endpoints still differ, mapped
    // to their representatives.
    EdgeList<NodeID_> next;
#pragma omp parallel
    {
      EdgeList<NodeID_> local;
#pragma omp for schedule(static) nowait
      for (std::int64_t i = 0; i < m; ++i) {
        const NodeID_ cu = comp[edges[i].u];  // NOLINT(afforest-plain-shared-access): comp is quiescent here, hooks and compress finished before this region
        const NodeID_ cv = comp[edges[i].v];  // NOLINT(afforest-plain-shared-access): comp is quiescent here, hooks and compress finished before this region
        if (cu != cv) local.push_back({cu, cv});
      }
#pragma omp critical(contraction_merge)
      for (const auto& e : local) next.push_back(e);
    }
    edges = std::move(next);
  }
  if (out_rounds != nullptr) *out_rounds = rounds;
  return comp;
}

}  // namespace afforest
