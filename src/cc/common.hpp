// Shared types and helpers for connected-components kernels.
//
// Every algorithm in cc/ has the same contract: it takes an undirected
// CSRGraph and returns a label array `comp` of size |V| such that
// comp[u] == comp[v]  iff  u and v are in the same connected component.
// Different algorithms may pick different representative labels; use
// labels_equivalent() (verifier.hpp) to compare partitions.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "graph/csr_graph.hpp"
#include "util/pvector.hpp"

namespace afforest {

template <typename NodeID_>
using ComponentLabels = pvector<NodeID_>;

/// Number of distinct labels (i.e. components, counting isolated vertices).
template <typename NodeID_>
std::int64_t count_components(const ComponentLabels<NodeID_>& comp) {
  std::unordered_map<NodeID_, bool> seen;
  seen.reserve(1024);
  for (NodeID_ label : comp) seen.emplace(label, true);
  return static_cast<std::int64_t>(seen.size());
}

/// Initializes comp to the identity (every vertex its own component),
/// in parallel — the first line of every tree-hooking algorithm.
template <typename NodeID_>
ComponentLabels<NodeID_> identity_labels(std::int64_t num_nodes) {
  ComponentLabels<NodeID_> comp(static_cast<std::size_t>(num_nodes));
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < num_nodes; ++v)
    comp[v] = static_cast<NodeID_>(v);  // NOLINT(afforest-plain-shared-access): owner-exclusive init write, no other thread touches slot v
  return comp;
}

}  // namespace afforest
