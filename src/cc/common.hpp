// Shared types and helpers for connected-components kernels.
//
// Every algorithm in cc/ has the same contract: it takes an undirected
// CSRGraph and returns a label array `comp` of size |V| such that
// comp[u] == comp[v]  iff  u and v are in the same connected component.
// Different algorithms may pick different representative labels; use
// labels_equivalent() (verifier.hpp) to compare partitions.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "graph/csr_graph.hpp"
#include "util/pvector.hpp"

namespace afforest {

/// Typed rejection of a vertex id outside [0, num_nodes).  Derives from
/// std::out_of_range so pre-existing catch sites keep working; carries the
/// offending id and the bound so callers (and tests) can assert on the
/// structured fields instead of parsing the message.  Thrown by every
/// ingestion-facing entry point (IncrementalCC, QueryEngine, DynamicCC) —
/// deletions made this class of bug easy to hit via stale window replay,
/// where a recorded batch can reference ids from a larger graph.
class VertexRangeError : public std::out_of_range {
 public:
  VertexRangeError(const std::string& context, std::int64_t vertex,
                   std::int64_t num_nodes)
      : std::out_of_range(context + ": vertex id " + std::to_string(vertex) +
                          " outside [0, " + std::to_string(num_nodes) + ")"),
        vertex_(vertex),
        num_nodes_(num_nodes) {}

  [[nodiscard]] std::int64_t vertex() const { return vertex_; }
  [[nodiscard]] std::int64_t num_nodes() const { return num_nodes_; }

 private:
  std::int64_t vertex_;
  std::int64_t num_nodes_;
};

/// Validates one vertex id against [0, num_nodes); throws VertexRangeError
/// tagged with `context` (the rejecting subsystem) otherwise.
template <typename NodeID_>
void check_vertex_range(const char* context, NodeID_ v,
                        std::int64_t num_nodes) {
  if (v < 0 || static_cast<std::int64_t>(v) >= num_nodes)
    throw VertexRangeError(context, static_cast<std::int64_t>(v), num_nodes);
}

/// Typed rejection of a vertex count that does not fit the label type:
/// a kernel asked to label n vertices with a NodeID_ whose max is below
/// n - 1 would silently truncate ids (the int32 ceiling bug this class
/// was introduced to fix in dist/partitioned_cc).  Derives from
/// std::overflow_error; carries the structured fields so callers pick a
/// wider label type instead of parsing the message.
class LabelWidthError : public std::overflow_error {
 public:
  LabelWidthError(const std::string& context, std::int64_t num_nodes,
                  std::int64_t max_label)
      : std::overflow_error(context + ": " + std::to_string(num_nodes) +
                            " vertices do not fit the label type (max id " +
                            std::to_string(max_label) +
                            "); instantiate with a wider NodeID_"),
        num_nodes_(num_nodes),
        max_label_(max_label) {}

  [[nodiscard]] std::int64_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::int64_t max_label() const { return max_label_; }

 private:
  std::int64_t num_nodes_;
  std::int64_t max_label_;
};

/// Validates that every id in [0, num_nodes) is representable as NodeID_;
/// throws LabelWidthError tagged with `context` otherwise.  Call before
/// allocating labels so the failure is a typed error, not a truncated id.
template <typename NodeID_>
void check_label_width(const char* context, std::int64_t num_nodes) {
  constexpr std::int64_t max_label =
      static_cast<std::int64_t>(std::numeric_limits<NodeID_>::max());
  if (num_nodes - 1 > max_label)
    throw LabelWidthError(context, num_nodes, max_label);
}

template <typename NodeID_>
using ComponentLabels = pvector<NodeID_>;

/// Number of distinct labels (i.e. components, counting isolated vertices).
template <typename NodeID_>
std::int64_t count_components(const ComponentLabels<NodeID_>& comp) {
  // A set, not a map: only membership matters, and the bool payload the
  // old unordered_map carried doubled every node's footprint for nothing.
  std::unordered_set<NodeID_> seen;
  seen.reserve(1024);
  for (NodeID_ label : comp) seen.insert(label);
  return static_cast<std::int64_t>(seen.size());
}

/// Initializes comp to the identity (every vertex its own component),
/// in parallel — the first line of every tree-hooking algorithm.
template <typename NodeID_>
ComponentLabels<NodeID_> identity_labels(std::int64_t num_nodes) {
  ComponentLabels<NodeID_> comp(static_cast<std::size_t>(num_nodes));
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < num_nodes; ++v)
    comp[v] = static_cast<NodeID_>(v);  // NOLINT(afforest-plain-shared-access): owner-exclusive init write, no other thread touches slot v
  return comp;
}

}  // namespace afforest
