// Shared types and helpers for connected-components kernels.
//
// Every algorithm in cc/ has the same contract: it takes an undirected
// CSRGraph and returns a label array `comp` of size |V| such that
// comp[u] == comp[v]  iff  u and v are in the same connected component.
// Different algorithms may pick different representative labels; use
// labels_equivalent() (verifier.hpp) to compare partitions.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "graph/csr_graph.hpp"
#include "util/pvector.hpp"

namespace afforest {

/// Typed rejection of a vertex id outside [0, num_nodes).  Derives from
/// std::out_of_range so pre-existing catch sites keep working; carries the
/// offending id and the bound so callers (and tests) can assert on the
/// structured fields instead of parsing the message.  Thrown by every
/// ingestion-facing entry point (IncrementalCC, QueryEngine, DynamicCC) —
/// deletions made this class of bug easy to hit via stale window replay,
/// where a recorded batch can reference ids from a larger graph.
class VertexRangeError : public std::out_of_range {
 public:
  VertexRangeError(const std::string& context, std::int64_t vertex,
                   std::int64_t num_nodes)
      : std::out_of_range(context + ": vertex id " + std::to_string(vertex) +
                          " outside [0, " + std::to_string(num_nodes) + ")"),
        vertex_(vertex),
        num_nodes_(num_nodes) {}

  [[nodiscard]] std::int64_t vertex() const { return vertex_; }
  [[nodiscard]] std::int64_t num_nodes() const { return num_nodes_; }

 private:
  std::int64_t vertex_;
  std::int64_t num_nodes_;
};

/// Validates one vertex id against [0, num_nodes); throws VertexRangeError
/// tagged with `context` (the rejecting subsystem) otherwise.
template <typename NodeID_>
void check_vertex_range(const char* context, NodeID_ v,
                        std::int64_t num_nodes) {
  if (v < 0 || static_cast<std::int64_t>(v) >= num_nodes)
    throw VertexRangeError(context, static_cast<std::int64_t>(v), num_nodes);
}

template <typename NodeID_>
using ComponentLabels = pvector<NodeID_>;

/// Number of distinct labels (i.e. components, counting isolated vertices).
template <typename NodeID_>
std::int64_t count_components(const ComponentLabels<NodeID_>& comp) {
  std::unordered_map<NodeID_, bool> seen;
  seen.reserve(1024);
  for (NodeID_ label : comp) seen.emplace(label, true);
  return static_cast<std::int64_t>(seen.size());
}

/// Initializes comp to the identity (every vertex its own component),
/// in parallel — the first line of every tree-hooking algorithm.
template <typename NodeID_>
ComponentLabels<NodeID_> identity_labels(std::int64_t num_nodes) {
  ComponentLabels<NodeID_> comp(static_cast<std::size_t>(num_nodes));
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < num_nodes; ++v)
    comp[v] = static_cast<NodeID_>(v);  // NOLINT(afforest-plain-shared-access): owner-exclusive init write, no other thread touches slot v
  return comp;
}

}  // namespace afforest
