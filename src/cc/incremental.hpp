// Incremental connectivity built on Afforest's primitives.
//
// Because link() processes edges in any order without revisiting them
// (§III-B — the property that enables subgraph processing), the same
// primitives support an ONLINE setting: edges stream in, connectivity
// queries interleave.  add_edge is lock-free and safe to call from
// multiple threads; queries traverse the current forest without writes, so
// they never race with concurrent insertions (Lemma 4: paths to existing
// common ancestors are never broken).
//
// This is a demonstration of the primitives' generality (an avenue the
// paper's conclusions gesture at), not a replacement for specialized
// dynamic-connectivity structures.
#pragma once

#include <cstdint>

#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "cc/guards.hpp"
#include "util/parallel.hpp"
#include "util/pvector.hpp"

namespace afforest {

template <typename NodeID_ = std::int32_t>
class IncrementalCC {
 public:
  explicit IncrementalCC(std::int64_t num_nodes)
      : comp_(identity_labels<NodeID_>(num_nodes)) {}

  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(comp_.size());
  }

  /// Inserts an edge; lock-free, callable concurrently.  Throws
  /// VertexRangeError on an endpoint outside [0, num_nodes()) — the old
  /// behavior silently corrupted (or overran) the forest, a bug class that
  /// windowed replay of stale edge batches makes easy to hit.
  void add_edge(NodeID_ u, NodeID_ v) {
    check_vertex_range("IncrementalCC", u, num_nodes());
    check_vertex_range("IncrementalCC", v, num_nodes());
    link(u, v, comp_);
  }

  /// True iff u and v are currently connected.  Read-only traversal.
  ///
  /// Linearizable under concurrent add_edge via validated retry (the
  /// Jayanti–Tarjan sameSet protocol): the naive `root(u) == root(v)`
  /// comparison can report FALSE for a connected pair when a concurrent
  /// link hooks u's root after the first walk but before the second — a
  /// transient that breaks connectivity monotonicity (observed connected,
  /// then "disconnected").  Here unequal roots only count once ru is
  /// re-validated as still a root; otherwise a merge raced the walks and
  /// we retry.  Retries terminate: a failed validation means ru gained a
  /// parent p < ru (Invariant 1), so successive ru values strictly
  /// decrease — at most num_nodes() retries, enforced by the guard.
  [[nodiscard]] bool connected(NodeID_ u, NodeID_ v) const {
    check_vertex_range("IncrementalCC", u, num_nodes());
    check_vertex_range("IncrementalCC", v, num_nodes());
    std::int64_t retries = 0;
    for (;;) {
      const NodeID_ ru = root(u);
      const NodeID_ rv = root(v);
      if (ru == rv) return true;
      if (atomic_load(comp_[ru]) == ru) return false;
      check_convergence_guard("incremental.connected", ++retries,
                              num_nodes() + 1);
    }
  }

  /// Representative (current root) of v's component.  NOTE: roots are
  /// stable per component only between insertions; after convergence they
  /// equal the component's minimum vertex id.
  [[nodiscard]] NodeID_ find(NodeID_ v) const {
    check_vertex_range("IncrementalCC", v, num_nodes());
    return root(v);
  }

  /// Compresses all trees to depth one (amortizes future queries);
  /// safe to interleave with queries, not with concurrent add_edge.
  void compact() { compress_all(comp_); }

  /// Number of current components (O(|V|) scan; call compact() first for
  /// an exact snapshot under quiescence).
  [[nodiscard]] std::int64_t component_count() const {
    std::int64_t roots = 0;
    const std::int64_t n = num_nodes();
#pragma omp parallel for reduction(+ : roots) schedule(static)
    for (std::int64_t v = 0; v < n; ++v)
      if (atomic_load(comp_[v]) == static_cast<NodeID_>(v)) ++roots;
    return roots;
  }

  /// Snapshot of the current labels (compacted).
  [[nodiscard]] ComponentLabels<NodeID_> labels() {
    compact();
    return comp_.clone();
  }

 private:
  [[nodiscard]] NodeID_ root(NodeID_ v) const {
    NodeID_ x = atomic_load(comp_[v]);
    // lint: bounded(Lemma 4: concurrent links never break paths to existing ancestors, so the walk descends a finite chain)
    while (atomic_load(comp_[x]) != x) x = atomic_load(comp_[x]);
    return x;
  }

  ComponentLabels<NodeID_> comp_;
};

}  // namespace afforest
