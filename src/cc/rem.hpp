// Rem's union-find algorithm — a classic high-performance disjoint-set
// variant, included as an additional comparator in the spirit of the
// paper's related work ([4]: a survey of CC algorithm families; [10]:
// CAS-based hooking, which Afforest's link adopts).
//
// Rem's insight: walk BOTH parent chains simultaneously, always advancing
// from the higher root, splicing the lower-parent pointer as you go
// ("interleaved find with path splicing").  The serial version is among
// the fastest sequential CC codes; the parallel version (Patwary,
// Blair, Manne) replaces the splice with a CAS and retries on failure —
// the same lock-free discipline as Afforest's link, against which it is an
// interesting near-peer baseline.
//
// Like link, both maintain π(x) ≤ x, so final labels (after full
// compression) are component minima.
#pragma once

#include <cstdint>

#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "graph/csr_graph.hpp"
#include "util/parallel.hpp"

namespace afforest {

/// Serial Rem union: returns true if the edge merged two sets.
template <typename NodeID_>
bool rem_unite(NodeID_ u, NodeID_ v, pvector<NodeID_>& parent) {
  NodeID_ r_u = u;
  NodeID_ r_v = v;
  // lint: bounded(each splice strictly descends one of two finite acyclic parent chains)
  while (parent[r_u] != parent[r_v]) {
    if (parent[r_u] > parent[r_v]) {
      if (r_u == parent[r_u]) {  // r_u is a root: hook it
        parent[r_u] = parent[r_v];
        return true;
      }
      const NodeID_ next = parent[r_u];
      parent[r_u] = parent[r_v];  // splice
      r_u = next;
    } else {
      if (r_v == parent[r_v]) {
        parent[r_v] = parent[r_u];
        return true;
      }
      const NodeID_ next = parent[r_v];
      parent[r_v] = parent[r_u];  // splice
      r_v = next;
    }
  }
  return false;
}

/// Serial Rem CC over a CSR graph.
template <typename NodeID_>
ComponentLabels<NodeID_> rem_cc(const CSRGraph<NodeID_>& g) {
  const std::int64_t n = g.num_nodes();
  auto parent = identity_labels<NodeID_>(n);
  for (std::int64_t u = 0; u < n; ++u)
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
      if (static_cast<NodeID_>(u) < v)
        rem_unite(static_cast<NodeID_>(u), v, parent);
  compress_all(parent);
  return parent;
}

/// Lock-free Rem union: splices via CAS, retrying from the current node on
/// contention (Patwary et al.'s shared-memory variant).
// lint: parallel-context
template <typename NodeID_>
void rem_unite_atomic(NodeID_ u, NodeID_ v, pvector<NodeID_>& parent) {
  NodeID_ r_u = u;
  NodeID_ r_v = v;
  // lint: bounded(every retry either terminates, advances down a finite chain, or loses a CAS to a thread that made progress)
  while (true) {
    NodeID_ p_u = atomic_load(parent[r_u]);
    NodeID_ p_v = atomic_load(parent[r_v]);
    if (p_u == p_v) return;
    // Ensure r_u holds the side with the larger parent.
    if (p_u < p_v) {
      std::swap(r_u, r_v);
      std::swap(p_u, p_v);
    }
    if (r_u == p_u) {  // r_u is (currently) a root: try to hook it
      if (compare_and_swap(parent[r_u], p_u, p_v)) return;
      continue;  // lost the race; re-read parents
    }
    // Try to splice r_u's parent down to p_v, then advance.
    compare_and_swap(parent[r_u], p_u, p_v);  // failure is harmless
    r_u = p_u;
  }
}

/// Parallel Rem CC (lock-free splicing).
template <typename NodeID_>
ComponentLabels<NodeID_> rem_cc_parallel(const CSRGraph<NodeID_>& g) {
  const std::int64_t n = g.num_nodes();
  auto parent = identity_labels<NodeID_>(n);
#pragma omp parallel for schedule(dynamic, 4096)
  for (std::int64_t u = 0; u < n; ++u)
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
      if (static_cast<NodeID_>(u) < v)
        rem_unite_atomic(static_cast<NodeID_>(u), v, parent);
  compress_all(parent);
  return parent;
}

}  // namespace afforest
