// Parallel spanning-forest extraction via Afforest (paper §IV-A).
//
// The paper observes that tree-hooking CC algorithms double as
// spanning-forest algorithms by "tracking the edges contributing to a tree
// merge during the execution".  This file implements that: link_witness is
// link() that additionally reports whether THIS call's CAS performed the
// merge.  Every successful CAS hooks the root of one tree under a vertex
// of a different tree (if l were in h's own tree, Invariant 1 would force
// l ≥ root(h) = h's minimum — contradiction with l < h), so each success
// reduces the tree count by exactly one and the collected witnesses form a
// spanning forest: |V| − C edges, acyclic, connectivity-preserving.
#pragma once

#include <cstdint>
#include <vector>

#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "util/parallel.hpp"
#include "util/platform.hpp"

namespace afforest {

/// link() that returns true iff this call's CAS merged two trees.
// lint: parallel-context
template <typename NodeID_>
bool link_witness(NodeID_ u, NodeID_ v, pvector<NodeID_>& comp) {
  NodeID_ p1 = atomic_load(comp[u]);
  NodeID_ p2 = atomic_load(comp[v]);
  // lint: bounded(each retry strictly descends a finite acyclic parent chain; Lemma 5)
  while (p1 != p2) {
    const NodeID_ high = std::max(p1, p2);
    const NodeID_ low = std::min(p1, p2);
    const NodeID_ p_high = atomic_load(comp[high]);
    if (p_high == low) break;
    if (p_high == high && compare_and_swap(comp[high], high, low))
      return true;
    p1 = atomic_load(comp[atomic_load(comp[high])]);
    p2 = atomic_load(comp[low]);
  }
  return false;
}

template <typename NodeID_>
struct ForestResult {
  ComponentLabels<NodeID_> labels;
  EdgeList<NodeID_> forest;  ///< |V| - C witness edges
};

/// Runs the Afforest schedule (neighbor rounds + interleaved compress +
/// full remainder; no component skipping, since skipped edges could be the
/// only witnesses for their vertices) and collects the merge witnesses.
template <typename NodeID_>
ForestResult<NodeID_> afforest_spanning_forest(const CSRGraph<NodeID_>& g,
                                               std::int32_t neighbor_rounds = 2) {
  using OffsetT = typename CSRGraph<NodeID_>::OffsetT;
  const std::int64_t n = g.num_nodes();
  ForestResult<NodeID_> result;
  result.labels = identity_labels<NodeID_>(n);
  auto& comp = result.labels;

  std::vector<EdgeList<NodeID_>> per_thread(
      static_cast<std::size_t>(num_threads()));

  const std::int32_t rounds = std::max(std::int32_t{0}, neighbor_rounds);
  for (std::int32_t r = 0; r < rounds; ++r) {
#pragma omp parallel
    {
      auto& local = per_thread[static_cast<std::size_t>(thread_id())];
#pragma omp for schedule(dynamic, 16384)
      for (std::int64_t v = 0; v < n; ++v) {
        if (r < g.out_degree(static_cast<NodeID_>(v))) {
          const NodeID_ w = g.neighbor(static_cast<NodeID_>(v), r);
          if (link_witness(static_cast<NodeID_>(v), w, comp))
            local.push_back({static_cast<NodeID_>(v), w});
        }
      }
    }
    compress_all(comp);
  }

#pragma omp parallel
  {
    auto& local = per_thread[static_cast<std::size_t>(thread_id())];
#pragma omp for schedule(dynamic, 1024)
    for (std::int64_t v = 0; v < n; ++v) {
      const OffsetT deg = g.out_degree(static_cast<NodeID_>(v));
      for (OffsetT k = rounds; k < deg; ++k) {
        const NodeID_ w = g.neighbor(static_cast<NodeID_>(v), k);
        if (link_witness(static_cast<NodeID_>(v), w, comp))
          local.push_back({static_cast<NodeID_>(v), w});
      }
    }
  }
  compress_all(comp);

  std::size_t total = 0;
  for (const auto& t : per_thread) total += t.size();
  result.forest.reserve(total);
  for (const auto& t : per_thread)
    for (const auto& e : t) result.forest.push_back(e);
  return result;
}

}  // namespace afforest
