// Spanning-forest extraction (paper §IV-A).
//
// CC and spanning forests are dual: a tree-hooking CC algorithm yields a
// spanning forest by recording every edge that contributed a tree merge,
// and conversely processing only a spanning forest's edges produces a
// correct CC labeling.  The convergence analysis (Fig 6) uses SF edges as
// the "optimal subgraph" strategy — the theoretical best-case ordering any
// sampling scheme can approach.
//
// This implementation runs serial union-find over the CSR edges, keeping
// each merge edge.  The result has exactly |V| - C edges.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace afforest {

/// Edges of a spanning forest of g (|V| - C of them, where C is the number
/// of components).  Edges are emitted with u < v in vertex-scan order.
template <typename NodeID_>
EdgeList<NodeID_> spanning_forest(const CSRGraph<NodeID_>& g) {
  UnionFind<NodeID_> uf(g.num_nodes());
  EdgeList<NodeID_> forest;
  for (std::int64_t u = 0; u < g.num_nodes(); ++u) {
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u))) {
      if (static_cast<NodeID_>(u) < v &&
          uf.unite(static_cast<NodeID_>(u), v)) {
        forest.push_back({static_cast<NodeID_>(u), v});
      }
    }
  }
  return forest;
}

/// Maintained spanning-forest adjacency: the mutable counterpart of
/// spanning_forest() for the decremental serving tier (src/serve/dynamic_cc).
///
/// Where spanning_forest() extracts a forest from a frozen CSR once, this
/// structure keeps the forest's tree edges as per-vertex neighbor lists so
/// a single writer can
///   * record a tree edge the moment an insertion merges two components,
///   * answer "is (u, v) a tree edge?" in O(deg_F) — the certification that
///     lets non-tree deletions drop in O(1) (no rebuild: a non-tree edge is
///     by definition on no forest path, so removing it cannot split
///     anything), and
///   * enumerate, after tree edges are cut, every vertex of the touched
///     components by walking the surviving tree adjacency (each resulting
///     fragment contains an endpoint of some cut edge, so seeding a
///     traversal with all cut endpoints covers the whole old component).
///
/// Forest degrees are tiny (average < 2, worst case the tree's max degree),
/// so vectors beat hash sets on both memory and scan cost.  NOT thread-safe:
/// the single-writer discipline of the serving tier is assumed.
template <typename NodeID_>
class ForestAdjacency {
 public:
  explicit ForestAdjacency(std::int64_t num_nodes)
      : tree_neighbors_(static_cast<std::size_t>(num_nodes)),
        visit_mark_(static_cast<std::size_t>(num_nodes), 0) {}

  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(tree_neighbors_.size());
  }

  /// Total tree edges currently held (each edge counted once).
  [[nodiscard]] std::int64_t num_tree_edges() const { return edges_; }

  /// Records (u, v) as a tree edge.  The caller certifies it merged two
  /// components; no cycle check happens here.
  void add_tree_edge(NodeID_ u, NodeID_ v) {
    tree_neighbors_[static_cast<std::size_t>(u)].push_back(v);
    tree_neighbors_[static_cast<std::size_t>(v)].push_back(u);
    ++edges_;
  }

  /// True iff (u, v) is currently a tree edge.
  [[nodiscard]] bool is_tree_edge(NodeID_ u, NodeID_ v) const {
    const auto& row = tree_neighbors_[static_cast<std::size_t>(u)];
    return std::find(row.begin(), row.end(), v) != row.end();
  }

  /// Removes tree edge (u, v); returns false (and changes nothing) if it
  /// was not a tree edge.
  bool remove_tree_edge(NodeID_ u, NodeID_ v) {
    auto& row_u = tree_neighbors_[static_cast<std::size_t>(u)];
    const auto it_u = std::find(row_u.begin(), row_u.end(), v);
    if (it_u == row_u.end()) return false;
    row_u.erase(it_u);
    auto& row_v = tree_neighbors_[static_cast<std::size_t>(v)];
    row_v.erase(std::find(row_v.begin(), row_v.end(), u));
    --edges_;
    return true;
  }

  /// Drops every tree edge incident to v (both directions).  Used when a
  /// rebuild replaces the forest of an affected region wholesale.
  void clear_vertex(NodeID_ v) {
    auto& row = tree_neighbors_[static_cast<std::size_t>(v)];
    for (const NodeID_ w : row) {
      auto& other = tree_neighbors_[static_cast<std::size_t>(w)];
      const auto it = std::find(other.begin(), other.end(), v);
      if (it != other.end()) other.erase(it);
      --edges_;
    }
    row.clear();
  }

  /// Invokes `fn(u, v)` once per current tree edge, with u < v, in
  /// ascending-u scan order.  Checkpointing (src/serve/checkpoint.hpp)
  /// serializes the forest through this.
  template <typename Fn>
  void for_each_tree_edge(Fn&& fn) const {
    const std::int64_t n = num_nodes();
    for (std::int64_t u = 0; u < n; ++u)
      for (const NodeID_ w : tree_neighbors_[static_cast<std::size_t>(u)])
        if (static_cast<NodeID_>(u) < w) fn(static_cast<NodeID_>(u), w);
  }

  /// Every vertex reachable from `seeds` over the current tree adjacency,
  /// in ascending order.  With the cut edges already removed, seeding with
  /// all cut-edge endpoints yields exactly the vertex set of the old
  /// components those edges belonged to — the rebuild scope.  O(|result|)
  /// via an epoch-stamped visited array (no O(n) clearing per call).
  [[nodiscard]] std::vector<NodeID_> collect_reachable(
      const std::vector<NodeID_>& seeds) {
    ++visit_epoch_;
    std::vector<NodeID_> out;
    std::vector<NodeID_> frontier;
    for (const NodeID_ s : seeds) {
      if (visit_mark_[static_cast<std::size_t>(s)] == visit_epoch_) continue;
      visit_mark_[static_cast<std::size_t>(s)] = visit_epoch_;
      out.push_back(s);
      frontier.push_back(s);
    }
    // lint: bounded(each vertex enters the frontier at most once per call — the visit mark admits it exactly once)
    while (!frontier.empty()) {
      const NodeID_ v = frontier.back();
      frontier.pop_back();
      for (const NodeID_ w : tree_neighbors_[static_cast<std::size_t>(v)]) {
        if (visit_mark_[static_cast<std::size_t>(w)] == visit_epoch_) continue;
        visit_mark_[static_cast<std::size_t>(w)] = visit_epoch_;
        out.push_back(w);
        frontier.push_back(w);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::vector<std::vector<NodeID_>> tree_neighbors_;
  std::vector<std::uint64_t> visit_mark_;  ///< epoch-stamped visited flags
  std::uint64_t visit_epoch_ = 0;
  std::int64_t edges_ = 0;
};

/// True iff `forest` is a spanning forest of g: acyclic (every edge merges
/// two sets) and connectivity-preserving (same partition as g).
template <typename NodeID_>
bool is_spanning_forest(const CSRGraph<NodeID_>& g,
                        const EdgeList<NodeID_>& forest) {
  UnionFind<NodeID_> uf(g.num_nodes());
  for (const auto& [u, v] : forest) {
    if (!uf.unite(u, v)) return false;  // cycle edge
  }
  auto forest_labels = uf.labels();
  return labels_equivalent(forest_labels, union_find_cc(g));
}

}  // namespace afforest
