// Spanning-forest extraction (paper §IV-A).
//
// CC and spanning forests are dual: a tree-hooking CC algorithm yields a
// spanning forest by recording every edge that contributed a tree merge,
// and conversely processing only a spanning forest's edges produces a
// correct CC labeling.  The convergence analysis (Fig 6) uses SF edges as
// the "optimal subgraph" strategy — the theoretical best-case ordering any
// sampling scheme can approach.
//
// This implementation runs serial union-find over the CSR edges, keeping
// each merge edge.  The result has exactly |V| - C edges.
#pragma once

#include <cstdint>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace afforest {

/// Edges of a spanning forest of g (|V| - C of them, where C is the number
/// of components).  Edges are emitted with u < v in vertex-scan order.
template <typename NodeID_>
EdgeList<NodeID_> spanning_forest(const CSRGraph<NodeID_>& g) {
  UnionFind<NodeID_> uf(g.num_nodes());
  EdgeList<NodeID_> forest;
  for (std::int64_t u = 0; u < g.num_nodes(); ++u) {
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u))) {
      if (static_cast<NodeID_>(u) < v &&
          uf.unite(static_cast<NodeID_>(u), v)) {
        forest.push_back({static_cast<NodeID_>(u), v});
      }
    }
  }
  return forest;
}

/// True iff `forest` is a spanning forest of g: acyclic (every edge merges
/// two sets) and connectivity-preserving (same partition as g).
template <typename NodeID_>
bool is_spanning_forest(const CSRGraph<NodeID_>& g,
                        const EdgeList<NodeID_>& forest) {
  UnionFind<NodeID_> uf(g.num_nodes());
  for (const auto& [u, v] : forest) {
    if (!uf.unite(u, v)) return false;  // cycle edge
  }
  auto forest_labels = uf.labels();
  return labels_equivalent(forest_labels, union_find_cc(g));
}

}  // namespace afforest
