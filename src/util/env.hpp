// Typed environment-variable access — the single place the process reads
// configuration from the environment.
//
// Every AFFOREST_* knob used to call std::getenv and hand-roll its own
// strtol/strtod parsing, which made the set of environment inputs (and
// their failure modes: partial parses, negative values, empty strings)
// impossible to audit in one place.  afforest-lint's `afforest-raw-getenv`
// rule (docs/STATIC_ANALYSIS.md) now flags any getenv call outside this
// header, so the parsing conventions below are the only ones in the tree:
//
//   * empty values are treated as unset;
//   * numeric parses must consume at least one character or the default
//     is returned — "12abc" parses as 12 (matching the historical strtol
//     behaviour the knobs shipped with), "abc" does not parse;
//   * out-of-domain values (negative where a count is expected) are
//     rejected by the caller via the returned optional.
//
// Kept dependency-free (std headers only): util/failpoint.hpp includes
// this, and pvector.hpp includes failpoint.hpp, so anything heavier would
// land in every translation unit's critical include path.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace afforest::env {

/// Raw value of `name`, or nullptr when unset.  The one sanctioned getenv
/// call site (see afforest-raw-getenv in docs/STATIC_ANALYSIS.md); prefer
/// the typed accessors below.
inline const char* raw(const char* name) {
  return std::getenv(name);  // NOLINT(afforest-raw-getenv): the single sanctioned call site all typed accessors funnel through
}

/// True iff `name` is set to a non-empty value.
inline bool is_set(const char* name) {
  const char* v = raw(name);
  return v != nullptr && *v != '\0';
}

/// String value of `name`; `fallback` when unset or empty.
inline std::string as_string(const char* name, const std::string& fallback = {}) {
  const char* v = raw(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

/// Signed integer value of `name`; nullopt when unset, empty, or not
/// starting with a number.
inline std::optional<std::int64_t> as_int64(const char* name) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return std::nullopt;
  return static_cast<std::int64_t>(parsed);
}

/// Unsigned integer value of `name`; nullopt when unset, empty, not
/// starting with a number, or negative.
inline std::optional<std::uint64_t> as_uint64(const char* name) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  // strtoull silently wraps negatives; reject them explicitly.
  const char* p = v;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p == '-') return std::nullopt;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return std::nullopt;
  return static_cast<std::uint64_t>(parsed);
}

/// Floating-point value of `name`; nullopt when unset, empty, or not
/// starting with a number.
inline std::optional<double> as_double(const char* name) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return std::nullopt;
  return parsed;
}

}  // namespace afforest::env
