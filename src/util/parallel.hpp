// Parallel primitives built on OpenMP: parallel prefix sum, reductions, and
// atomic helpers used by the CC kernels.
//
// The atomic helpers operate on plain arrays via std::atomic_ref (C++20),
// which lets kernels keep dense pvector<NodeID> storage while performing
// lock-free CAS updates — exactly the access pattern Afforest's `link`
// requires (paper Fig 3, line 6).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "util/pvector.hpp"

namespace afforest {

/// Atomically performs `if (*loc == expected) *loc = desired` and reports
/// success.  On failure `expected` is left unmodified (unlike the std API,
/// which writes back the observed value) so callers can retry with fresh
/// reads, matching the paper's link loop.
template <typename T>
bool compare_and_swap(T& loc, T expected, T desired) {
  return std::atomic_ref<T>(loc).compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel, std::memory_order_acquire);
}

/// Atomic load with acquire ordering.
template <typename T>
T atomic_load(const T& loc) {
  return std::atomic_ref<const T>(loc).load(std::memory_order_acquire);
}

/// Atomic store with release ordering.
template <typename T>
void atomic_store(T& loc, T val) {
  std::atomic_ref<T>(loc).store(val, std::memory_order_release);
}

/// Atomically sets *loc = min(*loc, val); returns true if the value shrank.
/// Used by min-label propagation.
template <typename T>
bool atomic_fetch_min(T& loc, T val) {
  std::atomic_ref<T> ref(loc);
  T cur = ref.load(std::memory_order_acquire);
  while (val < cur) {
    if (ref.compare_exchange_weak(cur, val, std::memory_order_acq_rel,
                                  std::memory_order_acquire))
      return true;
  }
  return false;
}

/// Atomic post-increment; returns the previous value.
template <typename T>
T fetch_and_add(T& loc, T delta) {
  return std::atomic_ref<T>(loc).fetch_add(delta, std::memory_order_acq_rel);
}

/// Exclusive parallel prefix sum over `degrees`, returning an array one
/// element longer whose last entry is the total.  This is the core of the
/// edge-list → CSR conversion.
template <typename InT, typename OutT = InT>
pvector<OutT> parallel_prefix_sum(const pvector<InT>& degrees) {
  const std::int64_t n = static_cast<std::int64_t>(degrees.size());
  const int max_blocks = 128;
  const std::int64_t block_size = (n + max_blocks - 1) / max_blocks;
  const std::int64_t num_blocks =
      block_size == 0 ? 0 : (n + block_size - 1) / block_size;

  pvector<OutT> block_sums(static_cast<std::size_t>(num_blocks));
#pragma omp parallel for schedule(static)
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    OutT sum = 0;
    const std::int64_t end = std::min(n, (b + 1) * block_size);
    for (std::int64_t i = b * block_size; i < end; ++i)
      sum += static_cast<OutT>(degrees[i]);
    block_sums[b] = sum;
  }

  pvector<OutT> block_offsets(static_cast<std::size_t>(num_blocks));
  OutT running = 0;
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    block_offsets[b] = running;
    running += block_sums[b];
  }

  pvector<OutT> prefix(static_cast<std::size_t>(n) + 1);
#pragma omp parallel for schedule(static)
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    OutT acc = block_offsets[b];
    const std::int64_t end = std::min(n, (b + 1) * block_size);
    for (std::int64_t i = b * block_size; i < end; ++i) {
      prefix[i] = acc;
      acc += static_cast<OutT>(degrees[i]);
    }
  }
  prefix[n] = running;
  return prefix;
}

/// Parallel sum reduction over a pvector.
template <typename T, typename AccT = std::int64_t>
AccT parallel_sum(const pvector<T>& v) {
  AccT total = 0;
  const std::int64_t n = static_cast<std::int64_t>(v.size());
#pragma omp parallel for reduction(+ : total) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) total += static_cast<AccT>(v[i]);
  return total;
}

/// Parallel max reduction; returns `lowest` for an empty vector.
template <typename T>
T parallel_max(const pvector<T>& v,
               T lowest = std::numeric_limits<T>::lowest()) {
  T best = lowest;
  const std::int64_t n = static_cast<std::int64_t>(v.size());
#pragma omp parallel for reduction(max : best) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) best = std::max(best, v[i]);
  return best;
}

/// Parallel count of elements satisfying a predicate.
template <typename T, typename Pred>
std::int64_t parallel_count_if(const pvector<T>& v, Pred pred) {
  std::int64_t count = 0;
  const std::int64_t n = static_cast<std::int64_t>(v.size());
#pragma omp parallel for reduction(+ : count) schedule(static)
  for (std::int64_t i = 0; i < n; ++i)
    if (pred(v[i])) ++count;
  return count;
}

}  // namespace afforest
