#include "util/platform.hpp"

#include <omp.h>

#include <sstream>
#include <thread>

namespace afforest {

int num_threads() { return omp_get_max_threads(); }

void set_num_threads(int n) { omp_set_num_threads(n < 1 ? 1 : n); }

int thread_id() { return omp_get_thread_num(); }

int hardware_threads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::string platform_summary() {
  std::ostringstream os;
  os << "hardware_threads=" << hardware_threads()
     << " omp_max_threads=" << num_threads();
  return os.str();
}

}  // namespace afforest
