// Minimal command-line flag parser shared by benchmark binaries and
// examples.  Flags take the form  --name value  or  --name=value ;
// unknown flags raise an error so typos do not silently fall back to
// defaults mid-experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace afforest {

class CommandLine {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  CommandLine(int argc, const char* const* argv);

  /// Declares a flag with help text so --help output is complete.  Must be
  /// called before the corresponding get_*.
  void describe(const std::string& name, const std::string& help);

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& default_value) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t default_value) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double default_value) const;
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool default_value) const;

  /// True when --help was passed; callers should print_help() and exit.
  [[nodiscard]] bool help_requested() const { return help_; }
  void print_help(const std::string& program_description) const;

  /// Flags that were present on the command line but never queried or
  /// described; used by tests to assert full coverage.
  [[nodiscard]] std::vector<std::string> unknown_flags() const;

 private:
  std::optional<std::string> lookup(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> descriptions_;
  mutable std::map<std::string, bool> queried_;
  std::string program_;
  bool help_ = false;
};

}  // namespace afforest
