// Platform utilities: thread count control, cache-line constants, and
// miscellaneous queries used across the library.
//
// The library is OpenMP-based; every parallel region respects
// omp_get_max_threads(), which callers can lower via set_num_threads() (used
// by the strong-scaling benchmark, Fig 8b).
#pragma once

#include <cstdint>
#include <string>

namespace afforest {

/// Size (bytes) assumed for a cache line when padding shared counters.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Number of threads OpenMP parallel regions will use.
int num_threads();

/// Caps the number of threads used by subsequent parallel regions.
/// Values < 1 are clamped to 1.
void set_num_threads(int n);

/// Index of the calling thread inside a parallel region (0 outside of one).
int thread_id();

/// Number of hardware threads reported by the OS.
int hardware_threads();

/// Human-readable one-line description of the host (cores, OpenMP threads).
std::string platform_summary();

}  // namespace afforest
