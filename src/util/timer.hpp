// Wall-clock timer used by the benchmark harness and examples.
#pragma once

#include <chrono>

namespace afforest {

/// Simple start/stop wall-clock timer (monotonic clock).
class Timer {
 public:
  void start() { start_ = Clock::now(); }
  void stop() { stop_ = Clock::now(); }

  /// Elapsed time between the last start()/stop() pair, in seconds.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(stop_ - start_).count();
  }

  [[nodiscard]] double millisecs() const { return seconds() * 1e3; }
  [[nodiscard]] double microsecs() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  Clock::time_point stop_{};
};

/// RAII helper: times a scope and adds the elapsed seconds to a sink.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink) : sink_(sink) { timer_.start(); }
  ~ScopedTimer() {
    timer_.stop();
    sink_ += timer_.seconds();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer timer_;
  double& sink_;
};

}  // namespace afforest
