// Small statistics helpers used by the benchmark harness: medians,
// percentiles, and geometric means — matching the paper's reporting
// methodology (median over 16 trials, 25th/75th percentile error bars).
#pragma once

#include <cstddef>
#include <vector>

namespace afforest {

/// Median of a sample (copies and sorts; average of middle two when even).
double median(std::vector<double> samples);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> samples, double p);

/// Geometric mean; all samples must be > 0.  Returns 0 for empty input.
double geometric_mean(const std::vector<double>& samples);

/// Arithmetic mean; returns 0 for empty input.
double mean(const std::vector<double>& samples);

/// Sample standard deviation (n-1 denominator); 0 if fewer than 2 samples.
double stddev(const std::vector<double>& samples);

/// Summary of repeated trial timings, as the paper reports them.
struct TrialSummary {
  double median_s = 0;
  double p25_s = 0;
  double p75_s = 0;
  double min_s = 0;
  double max_s = 0;
  std::size_t trials = 0;
};

TrialSummary summarize_trials(const std::vector<double>& seconds);

}  // namespace afforest
