#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace afforest {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("expected --flag, got: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag => boolean
    }
  }
}

void CommandLine::describe(const std::string& name, const std::string& help) {
  descriptions_[name] = help;
}

std::optional<std::string> CommandLine::lookup(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CommandLine::get_string(const std::string& name,
                                    const std::string& default_value) const {
  return lookup(name).value_or(default_value);
}

std::int64_t CommandLine::get_int(const std::string& name,
                                  std::int64_t default_value) const {
  const auto v = lookup(name);
  if (!v) return default_value;
  return std::stoll(*v);
}

double CommandLine::get_double(const std::string& name,
                               double default_value) const {
  const auto v = lookup(name);
  if (!v) return default_value;
  return std::stod(*v);
}

bool CommandLine::get_bool(const std::string& name, bool default_value) const {
  const auto v = lookup(name);
  if (!v) return default_value;
  return *v == "true" || *v == "1" || *v == "yes";
}

void CommandLine::print_help(const std::string& program_description) const {
  std::cout << program_ << ": " << program_description << "\n\nFlags:\n";
  for (const auto& [name, help] : descriptions_)
    std::cout << "  --" << name << "  " << help << '\n';
}

std::vector<std::string> CommandLine::unknown_flags() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name) && !descriptions_.count(name))
      out.push_back(name);
  }
  return out;
}

}  // namespace afforest
