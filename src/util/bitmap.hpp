// Thread-safe fixed-size bitmap, used by the direction-optimizing BFS
// (bottom-up frontier representation) and by graph builders for dedup marks.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/parallel.hpp"
#include "util/pvector.hpp"

namespace afforest {

class Bitmap {
 public:
  Bitmap() = default;

  explicit Bitmap(std::size_t num_bits)
      : num_bits_(num_bits), words_(word_count(num_bits)) {
    reset();
  }

  /// Clears all bits (parallel).
  void reset() { words_.fill(0); }

  /// Sets all bits (parallel); trailing padding bits are also set, callers
  /// must not read past size().
  void set_all() { words_.fill(~std::uint64_t{0}); }

  /// Non-atomic set; safe only when each bit is owned by one thread.
  void set_bit(std::size_t pos) { words_[word_of(pos)] |= mask_of(pos); }

  /// Atomic set; safe under concurrent writers.
  void set_bit_atomic(std::size_t pos) {
    // NOLINTNEXTLINE(afforest-atomic-ref-local): words_ is member storage that outlives the ref; fetch_or has no helper in util/parallel.hpp
    std::atomic_ref<std::uint64_t>(words_[word_of(pos)])
        .fetch_or(mask_of(pos), std::memory_order_acq_rel);
  }

  [[nodiscard]] bool get_bit(std::size_t pos) const {
    return (atomic_load(words_[word_of(pos)]) & mask_of(pos)) != 0;
  }

  /// Number of set bits within [0, size()).
  [[nodiscard]] std::int64_t count() const {
    std::int64_t total = 0;
    const std::int64_t nwords = static_cast<std::int64_t>(words_.size());
#pragma omp parallel for reduction(+ : total) schedule(static)
    for (std::int64_t w = 0; w < nwords; ++w) {
      std::uint64_t word = words_[w];
      if (static_cast<std::size_t>(w) == words_.size() - 1) {
        const std::size_t tail = num_bits_ % 64;
        if (tail != 0) word &= (std::uint64_t{1} << tail) - 1;
      }
      total += __builtin_popcountll(word);
    }
    return total;
  }

  [[nodiscard]] std::size_t size() const { return num_bits_; }

  void swap(Bitmap& other) noexcept {
    std::swap(num_bits_, other.num_bits_);
    words_.swap(other.words_);
  }

 private:
  static std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }
  static std::size_t word_of(std::size_t pos) { return pos >> 6; }
  static std::uint64_t mask_of(std::size_t pos) {
    return std::uint64_t{1} << (pos & 63);
  }

  std::size_t num_bits_ = 0;
  pvector<std::uint64_t> words_;
};

}  // namespace afforest
