// Failpoint injection: named fault sites that tests can arm from the
// environment to deterministically exercise error paths that are otherwise
// unreachable (allocation failure, mid-read truncation, write errors).
//
// Syntax (AFFOREST_FAILPOINTS):
//     name=prob[,name=prob...]
// where `prob` is a hit probability in [0, 1]; 1 fires on every hit, 0.01
// fires on ~1% of hits.  Example:
//     AFFOREST_FAILPOINTS="io.read.truncate=1,alloc.pvector=0.01"
//
// Sub-unit probabilities are resolved by a counter-hashed SplitMix64 step
// seeded from AFFOREST_FAILPOINT_SEED (default 0), so a given
// (seed, site, hit-index) triple always decides the same way — failing
// runs replay exactly, in keeping with the repository's seeded-everything
// convention.
//
// This header is include-light on purpose: pvector.hpp pulls it in, so it
// must not depend on any repository header beyond the std-only
// util/env.hpp.  The disarmed fast path is a single branch on a cached
// bool.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/env.hpp"

namespace afforest {

/// Thrown by failpoint_maybe_fail when the named site fires.  Distinct
/// from IoError/ConvergenceError so tests can tell an injected fault from
/// an organic one.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint '" + site + "' fired"),
        site_(site) {}

  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

namespace detail {

struct FailpointEntry {
  std::string name;
  double probability = 0.0;
  std::atomic<std::uint64_t> hits{0};

  FailpointEntry(std::string n, double p)
      : name(std::move(n)), probability(p) {}
  FailpointEntry(const FailpointEntry& other)
      : name(other.name),
        probability(other.probability),
        hits(other.hits.load(std::memory_order_relaxed)) {}
};

struct FailpointRegistry {
  std::vector<FailpointEntry> entries;
  std::uint64_t seed = 0;
  bool armed = false;

  void parse_env() {
    entries.clear();
    armed = false;
    seed = 0;
    seed = env::as_uint64("AFFOREST_FAILPOINT_SEED").value_or(0);
    const std::string spec = env::as_string("AFFOREST_FAILPOINTS");
    if (spec.empty()) return;
    std::string_view rest(spec);
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      std::string_view item = rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : rest.substr(comma + 1);
      const auto eq = item.find('=');
      if (item.empty()) continue;
      std::string name(item.substr(0, eq));
      double prob = 1.0;  // bare "name" means always fire
      if (eq != std::string_view::npos) {
        const std::string value(item.substr(eq + 1));
        char* end = nullptr;
        prob = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || prob < 0.0) prob = 0.0;
        if (prob > 1.0) prob = 1.0;
      }
      if (!name.empty() && prob > 0.0) entries.emplace_back(name, prob);
    }
    armed = !entries.empty();
  }
};

inline FailpointRegistry& failpoint_registry() {
  static FailpointRegistry registry = [] {
    FailpointRegistry r;
    r.parse_env();
    return r;
  }();
  return registry;
}

/// One SplitMix64 step (duplicated from util/rng.hpp to keep this header
/// dependency-free for pvector.hpp).
inline std::uint64_t failpoint_mix(std::uint64_t x) {
  std::uint64_t z = x + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t failpoint_name_hash(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace detail

/// Re-reads AFFOREST_FAILPOINTS / AFFOREST_FAILPOINT_SEED.  Call after
/// setenv in tests; must not race with concurrent failpoint_triggered
/// calls (arm before spawning parallel work).
inline void failpoints_reload() { detail::failpoint_registry().parse_env(); }

/// True iff the named site is armed and this hit fires.  Each call counts
/// as one hit; sub-unit probabilities decide deterministically from
/// (seed, name, hit index).  Disarmed builds cost one branch.
inline bool failpoint_triggered(std::string_view name) {
  auto& registry = detail::failpoint_registry();
  if (!registry.armed) return false;
  for (auto& entry : registry.entries) {
    if (entry.name != name) continue;
    const std::uint64_t hit =
        entry.hits.fetch_add(1, std::memory_order_relaxed);
    if (entry.probability >= 1.0) return true;
    const std::uint64_t draw = detail::failpoint_mix(
        registry.seed ^ detail::failpoint_name_hash(name) ^ hit);
    // Top 53 bits → uniform double in [0, 1).
    const double u =
        static_cast<double>(draw >> 11) * 0x1.0p-53;
    return u < entry.probability;
  }
  return false;
}

/// Throws FailpointError when the named site fires; no-op otherwise.
inline void failpoint_maybe_fail(std::string_view name) {
  if (failpoint_triggered(name)) throw FailpointError(std::string(name));
}

}  // namespace afforest
