// Failpoint injection: named fault sites that tests can arm from the
// environment to deterministically exercise error paths that are otherwise
// unreachable (allocation failure, mid-read truncation, write errors).
//
// Syntax (AFFOREST_FAILPOINTS):
//     name=prob[,name=prob...]
// where `prob` is a hit probability in [0, 1]; 1 fires on every hit, 0.01
// fires on ~1% of hits.  Example:
//     AFFOREST_FAILPOINTS="io.read.truncate=1,alloc.pvector=0.01"
//
// A value of the form "@N" arms a deterministic one-shot instead: the site
// fires on exactly its Nth evaluation (1-based) and never again.  The
// crash-sweep harness (tests/serve/crash_sweep_test.cpp) uses this to place
// a fault at every depth of a workload without probability juggling:
//     AFFOREST_FAILPOINTS="wal.append=@3"
//
// Every site keeps two counters, readable via failpoint_hit_count /
// failpoint_fire_count: how often it was evaluated and how often it
// actually fired.  The sweep asserts fire counts > 0 before claiming it
// covered a site — an armed failpoint whose code path was never reached
// would otherwise pass vacuously.  Arming a site with probability 0
// ("name=0") makes it a count-only probe: hits tally, it never fires.
//
// AFFOREST_FAILPOINT_LETHAL=1 turns every firing into an immediate
// std::_Exit(kFailpointLethalExit) instead of a thrown FailpointError: no
// destructors, no stream flushes, no atexit — the closest in-process
// approximation of kill -9 for crash-recovery testing (see
// docs/ROBUSTNESS.md and tests/integration/durable_crash_test.cpp).
//
// Sub-unit probabilities are resolved by a counter-hashed SplitMix64 step
// seeded from AFFOREST_FAILPOINT_SEED (default 0), so a given
// (seed, site, hit-index) triple always decides the same way — failing
// runs replay exactly, in keeping with the repository's seeded-everything
// convention.
//
// This header is include-light on purpose: pvector.hpp pulls it in, so it
// must not depend on any repository header beyond the std-only
// util/env.hpp.  The disarmed fast path is a single branch on a cached
// bool.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/env.hpp"

namespace afforest {

/// Thrown by failpoint_maybe_fail when the named site fires.  Distinct
/// from IoError/ConvergenceError so tests can tell an injected fault from
/// an organic one.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint '" + site + "' fired"),
        site_(site) {}

  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

/// Process exit code used by lethal-mode failpoints.  Chosen to be
/// distinguishable from both a clean exit (0) and the common abort/signal
/// codes so the crash harness can assert the kill came from the armed site.
inline constexpr int kFailpointLethalExit = 86;

namespace detail {

struct FailpointEntry {
  std::string name;
  double probability = 0.0;
  // 1-based evaluation index at which an "@N" one-shot fires; 0 = plain
  // probabilistic site.
  std::uint64_t one_shot = 0;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};

  FailpointEntry(std::string n, double p, std::uint64_t shot)
      : name(std::move(n)), probability(p), one_shot(shot) {}
  FailpointEntry(const FailpointEntry& other)
      : name(other.name),
        probability(other.probability),
        one_shot(other.one_shot),
        hits(other.hits.load(std::memory_order_relaxed)),
        fires(other.fires.load(std::memory_order_relaxed)) {}
};

struct FailpointRegistry {
  std::vector<FailpointEntry> entries;
  std::uint64_t seed = 0;
  bool armed = false;
  bool lethal = false;

  void parse_env() {
    entries.clear();
    armed = false;
    seed = 0;
    seed = env::as_uint64("AFFOREST_FAILPOINT_SEED").value_or(0);
    lethal = env::as_uint64("AFFOREST_FAILPOINT_LETHAL").value_or(0) != 0;
    const std::string spec = env::as_string("AFFOREST_FAILPOINTS");
    if (spec.empty()) return;
    std::string_view rest(spec);
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      std::string_view item = rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : rest.substr(comma + 1);
      const auto eq = item.find('=');
      if (item.empty()) continue;
      std::string name(item.substr(0, eq));
      double prob = 1.0;  // bare "name" means always fire
      std::uint64_t one_shot = 0;
      if (eq != std::string_view::npos) {
        const std::string value(item.substr(eq + 1));
        if (!value.empty() && value[0] == '@') {
          char* end = nullptr;
          const unsigned long long n = std::strtoull(value.c_str() + 1,
                                                     &end, 10);
          if (end != value.c_str() + 1 && n > 0) {
            one_shot = n;
            prob = 1.0;
          } else {
            prob = 0.0;  // malformed "@" spec: never fires (counts only)
          }
        } else {
          char* end = nullptr;
          prob = std::strtod(value.c_str(), &end);
          if (end == value.c_str() || prob < 0.0) prob = 0.0;
          if (prob > 1.0) prob = 1.0;
        }
      }
      // prob == 0 sites stay registered as count-only probes: they tally
      // hits but never fire, so a test can assert a code path was reached
      // without injecting the fault.
      if (!name.empty()) entries.emplace_back(name, prob, one_shot);
    }
    armed = !entries.empty();
  }
};

inline FailpointRegistry& failpoint_registry() {
  static FailpointRegistry registry = [] {
    FailpointRegistry r;
    r.parse_env();
    return r;
  }();
  return registry;
}

/// One SplitMix64 step (duplicated from util/rng.hpp to keep this header
/// dependency-free for pvector.hpp).
inline std::uint64_t failpoint_mix(std::uint64_t x) {
  std::uint64_t z = x + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t failpoint_name_hash(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace detail

/// Re-reads AFFOREST_FAILPOINTS / AFFOREST_FAILPOINT_SEED.  Call after
/// setenv in tests; must not race with concurrent failpoint_triggered
/// calls (arm before spawning parallel work).
inline void failpoints_reload() { detail::failpoint_registry().parse_env(); }

/// True iff the named site is armed and this hit fires.  Each call counts
/// as one hit; sub-unit probabilities decide deterministically from
/// (seed, name, hit index), and "@N" one-shots fire only on the Nth hit.
/// Disarmed builds cost one branch.
inline bool failpoint_triggered(std::string_view name) {
  auto& registry = detail::failpoint_registry();
  if (!registry.armed) return false;
  for (auto& entry : registry.entries) {
    if (entry.name != name) continue;
    const std::uint64_t hit =
        entry.hits.fetch_add(1, std::memory_order_relaxed);
    bool fired;
    if (entry.one_shot != 0) {
      fired = (hit + 1 == entry.one_shot);
    } else if (entry.probability >= 1.0) {
      fired = true;
    } else {
      const std::uint64_t draw = detail::failpoint_mix(
          registry.seed ^ detail::failpoint_name_hash(name) ^ hit);
      // Top 53 bits → uniform double in [0, 1).
      const double u =
          static_cast<double>(draw >> 11) * 0x1.0p-53;
      fired = u < entry.probability;
    }
    if (fired) entry.fires.fetch_add(1, std::memory_order_relaxed);
    return fired;
  }
  return false;
}

/// Throws FailpointError when the named site fires; no-op otherwise.  Under
/// AFFOREST_FAILPOINT_LETHAL=1 a firing site terminates the process
/// immediately instead (std::_Exit — no unwinding, no flushes), simulating
/// a hard crash for recovery tests.
inline void failpoint_maybe_fail(std::string_view name) {
  if (failpoint_triggered(name)) {
    if (detail::failpoint_registry().lethal) std::_Exit(kFailpointLethalExit);
    throw FailpointError(std::string(name));
  }
}

/// True iff AFFOREST_FAILPOINT_LETHAL was set at the last reload.  Sites
/// with custom fire behaviour (e.g. the WAL's torn-write injection) check
/// this to decide between throwing and exiting.
inline bool failpoints_lethal() {
  return detail::failpoint_registry().lethal;
}

/// How many times the named site was evaluated since the last reload/reset;
/// 0 when the site is not armed.
inline std::uint64_t failpoint_hit_count(std::string_view name) {
  for (const auto& entry : detail::failpoint_registry().entries)
    if (entry.name == name)
      return entry.hits.load(std::memory_order_relaxed);
  return 0;
}

/// How many times the named site actually fired; 0 when not armed.  The
/// crash-sweep asserts this is > 0 before claiming it covered a site.
inline std::uint64_t failpoint_fire_count(std::string_view name) {
  for (const auto& entry : detail::failpoint_registry().entries)
    if (entry.name == name)
      return entry.fires.load(std::memory_order_relaxed);
  return 0;
}

/// Sum of fire counts across every armed site (exported as the
/// `failpoints_fired` telemetry counter).
inline std::uint64_t failpoints_total_fires() {
  std::uint64_t total = 0;
  for (const auto& entry : detail::failpoint_registry().entries)
    total += entry.fires.load(std::memory_order_relaxed);
  return total;
}

/// Zeroes every site's hit/fire counters without re-reading the
/// environment (one-shot "@N" sites re-arm: the hit index restarts).
inline void failpoints_reset_counts() {
  for (auto& entry : detail::failpoint_registry().entries) {
    entry.hits.store(0, std::memory_order_relaxed);
    entry.fires.store(0, std::memory_order_relaxed);
  }
}

}  // namespace afforest
