#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace afforest {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TextTable row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::fmt_int(long long value) {
  return std::to_string(value);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace afforest
