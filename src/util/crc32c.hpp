// CRC32C (Castagnoli, polynomial 0x1EDC6F41) over byte spans.
//
// The durability layer (src/serve/wal.hpp, src/serve/checkpoint.hpp) stamps
// every WAL record and checkpoint payload with this checksum so that any
// torn write or bit rot surfaces as a typed error instead of a silently
// wrong label array.  Castagnoli rather than the zlib polynomial because
// its error-detection properties at short message lengths are better and
// it is the conventional choice for storage framing (iSCSI, ext4, RocksDB,
// LevelDB logs).
//
// Table-driven software implementation using slicing-by-8 (the technique
// from zlib/LevelDB/Kudu): eight 256-entry tables built at static-init
// time let the hot loop fold 8 input bytes per step instead of 1, roughly
// 4-6× the byte-at-a-time throughput.  The WAL checksums every record
// payload on append AND on recovery scan, and the durable-ingest perf
// gate (scripts/perf_smoke.sh) bounds the whole journaling tax, so
// checksum throughput is squarely on the measured path; hardware CRC32
// intrinsics would be faster still but are not worth the portability
// surface.  The table assembly reads input bytes individually, so the
// result is identical on any endianness.
//
// This header is include-light on purpose (std-only), mirroring
// util/failpoint.hpp's discipline: the serving headers pull it in and must
// not drag repository dependencies behind it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace afforest {

namespace detail {

/// tables[0] is the classic byte-at-a-time table; tables[k] gives the
/// effect of byte k positions deeper in an 8-byte block, so one table
/// lookup per byte still advances the CRC by the whole block.
inline const std::array<std::array<std::uint32_t, 256>, 8>& crc32c_tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k)
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (std::size_t k = 1; k < 8; ++k)
        t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    return t;
  }();
  return tables;
}

}  // namespace detail

/// Incremental update: feeds `size` bytes at `data` into a running CRC32C.
/// Start with crc32c_init(), finish with crc32c_finish() — or use the
/// one-shot crc32c() below.
inline std::uint32_t crc32c_update(std::uint32_t state, const void* data,
                                   std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& t = detail::crc32c_tables();
  while (size >= 8) {
    // Assemble the two 32-bit halves byte-wise (little-endian value
    // semantics independent of host endianness), fold the running state
    // into the low half, then advance 8 bytes with 8 table lookups.
    const std::uint32_t lo =
        state ^ (static_cast<std::uint32_t>(bytes[0]) |
                 static_cast<std::uint32_t>(bytes[1]) << 8 |
                 static_cast<std::uint32_t>(bytes[2]) << 16 |
                 static_cast<std::uint32_t>(bytes[3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(bytes[4]) |
                             static_cast<std::uint32_t>(bytes[5]) << 8 |
                             static_cast<std::uint32_t>(bytes[6]) << 16 |
                             static_cast<std::uint32_t>(bytes[7]) << 24;
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
            t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^
            t[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i)
    state = t[0][(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

inline constexpr std::uint32_t crc32c_init() { return 0xFFFFFFFFu; }
inline constexpr std::uint32_t crc32c_finish(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC32C of a byte span.  crc32c("123456789") == 0xE3069283, the
/// standard check value (asserted in tests/util/crc32c_test.cpp).
inline std::uint32_t crc32c(const void* data, std::size_t size) {
  return crc32c_finish(crc32c_update(crc32c_init(), data, size));
}

}  // namespace afforest
