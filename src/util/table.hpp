// Plain-text table printer used by the benchmark binaries to emit the
// paper's tables and figure series in a uniform, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace afforest {

/// Accumulates rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for cell building).
  static std::string fmt(double value, int precision = 3);
  static std::string fmt_int(long long value);

  /// Renders the table (header, separator, rows) to the stream.
  void print(std::ostream& os) const;

  /// Renders as CSV (header row + data rows).  Cells containing commas,
  /// quotes, or newlines are quoted per RFC 4180.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace afforest
