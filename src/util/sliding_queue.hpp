// SlidingQueue: a double-buffered work queue for level-synchronous BFS
// (GAPBS-style).  Producers append through per-thread QueueBuffers to avoid
// contention on the shared tail; slide_window() promotes the newly appended
// region to become the next frontier.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/parallel.hpp"
#include "util/pvector.hpp"

namespace afforest {

template <typename T>
class QueueBuffer;

template <typename T>
class SlidingQueue {
  friend class QueueBuffer<T>;

 public:
  explicit SlidingQueue(std::size_t shared_size) : shared_(shared_size) {
    reset();
  }

  /// Single-producer append (used for seeding the queue before the loop).
  void push_back(T val) { shared_[shared_in_++] = val; }

  [[nodiscard]] bool empty() const { return shared_out_start_ == shared_out_end_; }

  /// Number of elements in the current window (the active frontier).
  [[nodiscard]] std::size_t size() const {
    return shared_out_end_ - shared_out_start_;
  }

  /// Promotes everything appended since the last slide to be the new window.
  void slide_window() {
    shared_out_start_ = shared_out_end_;
    shared_out_end_ = shared_in_;
  }

  void reset() {
    shared_out_start_ = 0;
    shared_out_end_ = 0;
    shared_in_ = 0;
  }

  const T* begin() const { return shared_.data() + shared_out_start_; }
  const T* end() const { return shared_.data() + shared_out_end_; }

 private:
  pvector<T> shared_;
  std::size_t shared_in_ = 0;
  std::size_t shared_out_start_ = 0;
  std::size_t shared_out_end_ = 0;
};

/// Per-thread staging buffer; flushes into the shared queue with one
/// fetch_add per kBufferSize elements.
template <typename T>
class QueueBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;

  explicit QueueBuffer(SlidingQueue<T>& master,
                       std::size_t capacity = kDefaultCapacity)
      : master_(master), local_(capacity), capacity_(capacity) {}

  void push_back(T val) {
    if (in_ == capacity_) flush();
    local_[in_++] = val;
  }

  void flush() {
    if (in_ == 0) return;
    const std::size_t copy_start =
        fetch_and_add(master_.shared_in_, in_);
    for (std::size_t i = 0; i < in_; ++i)
      master_.shared_[copy_start + i] = local_[i];
    in_ = 0;
  }

 private:
  SlidingQueue<T>& master_;
  pvector<T> local_;
  std::size_t capacity_;
  std::size_t in_ = 0;
};

}  // namespace afforest
