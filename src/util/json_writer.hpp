// Minimal streaming JSON emitter for the benchmark harness's
// machine-readable output (docs/BENCHMARKING.md documents the schema).
//
// Deliberately tiny: objects/arrays are opened and closed explicitly,
// commas are inserted automatically, strings are escaped per RFC 8259,
// and doubles round-trip (max_digits10).  There is no parser — the
// consumer is scripts/bench_compare.py, which uses Python's json module.
#pragma once

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace afforest::json {

/// RFC 8259 string escaping (quotes, backslash, control characters).
inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip formatting for a double.  NaN/inf (not valid JSON)
/// are emitted as null.
inline std::string format_double(double v) {
  if (v != v || v > std::numeric_limits<double>::max() ||
      v < std::numeric_limits<double>::lowest())
    return "null";
  char buf[64];
  // %.17g always round-trips; try the shorter %.15g first.
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  double back = 0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Streaming writer.  Usage:
///   Writer w;
///   w.begin_object();
///   w.key("name").value("kron");
///   w.key("trials").begin_array();
///   w.value(1.5).value(2.5);
///   w.end_array();
///   w.end_object();
///   std::string text = w.str();
/// Misuse (a key outside an object, mismatched end_*) is a logic error the
/// writer surfaces by producing obviously malformed output in debug use —
/// it never throws, so benchmark teardown paths cannot fail through it.
class Writer {
 public:
  Writer& begin_object() {
    element();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }
  Writer& end_object() {
    pop();
    out_ += '}';
    return *this;
  }
  Writer& begin_array() {
    element();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }
  Writer& end_array() {
    pop();
    out_ += ']';
    return *this;
  }

  Writer& key(std::string_view name) {
    element();
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    pending_key_ = true;
    return *this;
  }

  Writer& value(std::string_view v) {
    element();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
  }
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(const std::string& v) { return value(std::string_view(v)); }
  Writer& value(double v) {
    element();
    out_ += format_double(v);
    return *this;
  }
  Writer& value(std::uint64_t v) {
    element();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& value(std::int64_t v) {
    element();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool v) {
    element();
    out_ += v ? "true" : "false";
    return *this;
  }
  Writer& null() {
    element();
    out_ += "null";
    return *this;
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  /// Emits the separating comma unless this is the first element of the
  /// current container or the immediate continuation of a key.
  void element() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }
  void pop() {
    pending_key_ = false;
    if (!first_.empty()) first_.pop_back();
  }

  std::string out_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

}  // namespace afforest::json
