// pvector: a vector whose default construction/resize leaves elements
// uninitialized and whose fill operations run in parallel.
//
// Rationale (inherited from GAPBS): graph kernels allocate arrays of |V| or
// |E| elements that are immediately overwritten by a parallel loop.
// std::vector would serially zero-initialize them first, which dominates
// setup time for large graphs and, on NUMA machines, first-touches every
// page from one thread.  pvector leaves memory uninitialized so the first
// touch happens inside the user's parallel loop.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/failpoint.hpp"

namespace afforest {

template <typename T>
class pvector {
  static_assert(std::is_trivially_copyable_v<T>,
                "pvector only supports trivially copyable element types");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = std::size_t;

  pvector() = default;

  /// Allocates n elements, leaving them uninitialized.
  explicit pvector(size_type n) { allocate(n); }

  /// Allocates n elements and fills them (in parallel) with init_val.
  pvector(size_type n, T init_val) : pvector(n) { fill(init_val); }

  pvector(std::initializer_list<T> init) : pvector(init.size()) {
    std::copy(init.begin(), init.end(), begin());
  }

  pvector(pvector&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  pvector& operator=(pvector&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  // Copies are expensive for graph-sized arrays; require explicit clone().
  pvector(const pvector&) = delete;
  pvector& operator=(const pvector&) = delete;

  ~pvector() { release(); }

  /// Deep copy; parallel element copy.
  [[nodiscard]] pvector clone() const {
    pvector out(size_);
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(size_); ++i)
      out.data_[i] = data_[i];
    return out;
  }

  /// Parallel fill of every element.
  void fill(T val) {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(size_); ++i)
      data_[i] = val;
  }

  /// Resize without preserving contents beyond min(old, new) elements.
  void resize(size_type n) {
    if (n <= capacity_) {
      size_ = n;
      return;
    }
    pvector bigger(n);
    std::copy(begin(), end(), bigger.begin());
    *this = std::move(bigger);
  }

  void reserve(size_type n) {
    if (n <= capacity_) return;
    size_type old_size = size_;
    resize(n);
    size_ = old_size;
  }

  void push_back(T val) {
    if (size_ == capacity_) reserve(capacity_ == 0 ? 16 : capacity_ * 2);
    data_[size_++] = val;
  }

  void clear() { size_ = 0; }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] size_type size() const { return size_; }
  [[nodiscard]] size_type capacity() const { return capacity_; }

  T& operator[](size_type i) { return data_[i]; }
  const T& operator[](size_type i) const { return data_[i]; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& front() { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  void swap(pvector& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(capacity_, other.capacity_);
  }

 private:
  void allocate(size_type n) {
    if (n > std::numeric_limits<size_type>::max() / sizeof(T) ||
        failpoint_triggered("alloc.pvector"))
      throw std::bad_alloc();
    data_ = static_cast<T*>(::operator new[](n * sizeof(T)));
    size_ = capacity_ = n;
  }

  void release() {
    ::operator delete[](data_);
    data_ = nullptr;
    size_ = capacity_ = 0;
  }

  T* data_ = nullptr;
  size_type size_ = 0;
  size_type capacity_ = 0;
};

}  // namespace afforest
