// Deterministic pseudo-random number generation.
//
// Every experiment in this repository is seeded, so runs are reproducible
// bit-for-bit.  SplitMix64 seeds Xoshiro256**; both are tiny, fast, and
// well-distributed — adequate for graph generation and for Afforest's
// `most_frequent_element` sampling (paper Fig 5, line 10).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace afforest {

/// SplitMix64: used to expand a single 64-bit seed into a full RNG state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the repository's workhorse RNG.  Satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Restores a generator from a previously captured state() — stream
  /// checkpointing, and the handle the split-regression tests use to build
  /// parents that differ in exactly one state word.
  explicit Xoshiro256(const std::array<std::uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state[i];
  }

  /// Full generator state, in word order.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Jump-equivalent stream split: derives an independent generator for a
  /// worker indexed by `stream`, so parallel generation stays deterministic
  /// regardless of thread scheduling.  The SplitMix seed chain folds in all
  /// four state words — seeding from state_[0] alone made two parents that
  /// differ only in state_[1..3] (e.g. generators that had advanced by a
  /// different number of steps) emit identical child streams.
  [[nodiscard]] Xoshiro256 split(std::uint64_t stream) const {
    SplitMix64 sm(state_[0] ^ (stream * 0xA24BAED4963EE407ULL));
    std::uint64_t folded = sm.next();
    for (int i = 1; i < 4; ++i) {
      SplitMix64 fold(folded ^ state_[i]);
      folded = fold.next();
    }
    Xoshiro256 out(folded);
    return out;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace afforest
