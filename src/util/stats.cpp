#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace afforest {

double median(std::vector<double> samples) { return percentile(std::move(samples), 50.0); }

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double geometric_mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double s : samples) log_sum += std::log(s);
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double stddev(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double sq = 0.0;
  for (double s : samples) sq += (s - m) * (s - m);
  return std::sqrt(sq / static_cast<double>(samples.size() - 1));
}

TrialSummary summarize_trials(const std::vector<double>& seconds) {
  TrialSummary out;
  if (seconds.empty()) return out;
  out.median_s = median(seconds);
  out.p25_s = percentile(seconds, 25.0);
  out.p75_s = percentile(seconds, 75.0);
  out.min_s = *std::min_element(seconds.begin(), seconds.end());
  out.max_s = *std::max_element(seconds.begin(), seconds.end());
  out.trials = seconds.size();
  return out;
}

}  // namespace afforest
