// Software memory-access tracer for the parent array π (paper Fig 7).
//
// The paper visualizes which π addresses each algorithm phase touches
// (heat-map) and which thread touches them (scatter).  That is an
// algorithmic property — which indices are read/written when — so a
// software shim reproduces it exactly: TracedPi wraps the label array and
// logs every load/store with (phase, thread, index, is_write).
//
// run_traced_sv / run_traced_afforest execute faithful mirrors of the
// kernels through the shim and return the trace plus the resulting labels
// (tests verify the traced runs still compute correct components).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "graph/csr_graph.hpp"
#include "util/pvector.hpp"

namespace afforest {

struct MemEvent {
  std::int64_t index;    ///< π index accessed
  std::uint16_t phase;   ///< id from MemTrace::begin_phase
  std::uint16_t thread;  ///< OpenMP thread id
  bool is_write;
};

class MemTrace {
 public:
  MemTrace();

  /// Starts a new algorithm phase (e.g. "I", "L1", "C1", "F", "H");
  /// subsequent records are attributed to it.  Returns the phase id.
  int begin_phase(const std::string& name);

  /// Thread-safe (per-thread buffers); called by TracedPi.
  void record(std::int64_t index, bool is_write);

  [[nodiscard]] const std::vector<std::string>& phase_names() const {
    return phase_names_;
  }

  /// All events, merged (ordering within a thread is preserved).
  [[nodiscard]] std::vector<MemEvent> events() const;

  [[nodiscard]] std::int64_t total_accesses() const;
  [[nodiscard]] std::int64_t accesses_in_phase(int phase) const;

  /// Histogram of accesses in `phase` over `buckets` equal index ranges of
  /// [0, domain).  The Fig 7 heat-map rows.
  [[nodiscard]] std::vector<std::int64_t> access_histogram(
      int phase, int buckets, std::int64_t domain) const;

  /// Renders one text heat-map row per phase ('.' = cold … '#' = hot).
  void render_heatmap(std::ostream& os, int buckets,
                      std::int64_t domain) const;

 private:
  std::vector<std::string> phase_names_;
  int current_phase_ = -1;
  std::vector<std::vector<MemEvent>> per_thread_;
};

/// Label array shim that records every access.
class TracedPi {
 public:
  TracedPi(std::int64_t n, MemTrace& trace);

  std::int32_t load(std::int64_t i) const {
    trace_.record(i, false);
    return data_[i];
  }
  void store(std::int64_t i, std::int32_t v) {
    trace_.record(i, true);
    data_[i] = v;
  }
  /// Untraced view for result extraction.
  [[nodiscard]] const pvector<std::int32_t>& raw() const { return data_; }
  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(data_.size());
  }

 private:
  mutable pvector<std::int32_t> data_;
  MemTrace& trace_;
};

struct TraceResult {
  MemTrace trace;
  ComponentLabels<std::int32_t> labels;
};

/// Shiloach–Vishkin through the tracer.  Phases: I, then per iteration
/// H<i> (hook) and S<i> (shortcut).
TraceResult run_traced_sv(const Graph& g);

/// Afforest through the tracer.  Phases: I, per round L<i> / C<i>, then F
/// (find largest component, if skipping), L* (final link), C* (final
/// compress).
TraceResult run_traced_afforest(const Graph& g, AfforestOptions opts = {});

}  // namespace afforest
