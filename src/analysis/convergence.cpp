#include "analysis/convergence.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "cc/afforest.hpp"
#include "cc/component_stats.hpp"
#include "cc/spanning_forest.hpp"
#include "cc/union_find.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace afforest {

std::string to_string(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kRowPartition:
      return "row";
    case PartitionStrategy::kRandomEdges:
      return "random";
    case PartitionStrategy::kNeighborRounds:
      return "neighbor";
    case PartitionStrategy::kOptimalSF:
      return "optimal-sf";
  }
  throw std::invalid_argument("bad PartitionStrategy");
}

namespace {

using NodeID = Graph::NodeID;
using Batch = EdgeList<NodeID>;

/// All unordered edges (u < v), in row order.
Batch all_edges(const Graph& g) {
  Batch edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t u = 0; u < g.num_nodes(); ++u)
    for (NodeID v : g.out_neigh(static_cast<NodeID>(u)))
      if (static_cast<NodeID>(u) < v)
        edges.push_back({static_cast<NodeID>(u), v});
  return edges;
}

std::vector<Batch> split_batches(Batch edges, int num_batches) {
  std::vector<Batch> out;
  const std::size_t total = edges.size();
  const std::size_t per =
      (total + static_cast<std::size_t>(num_batches) - 1) /
      static_cast<std::size_t>(num_batches);
  for (std::size_t start = 0; start < total; start += per) {
    Batch b;
    const std::size_t end = std::min(total, start + per);
    b.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) b.push_back(edges[i]);
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<Batch> make_batches(const Graph& g, const ConvergenceOptions& o) {
  switch (o.strategy) {
    case PartitionStrategy::kRowPartition: {
      // Contiguous vertex blocks; a batch holds all edges whose source row
      // falls in the block (each unordered edge assigned to its lower row).
      Batch edges = all_edges(g);  // already sorted by source row
      return split_batches(std::move(edges), o.num_batches);
    }
    case PartitionStrategy::kRandomEdges: {
      Batch edges = all_edges(g);
      Xoshiro256 rng(o.shuffle_seed);
      for (std::size_t i = edges.size(); i > 1; --i)
        std::swap(edges[i - 1], edges[rng.next_bounded(i)]);
      return split_batches(std::move(edges), o.num_batches);
    }
    case PartitionStrategy::kNeighborRounds: {
      // Round r: the r-th neighbor of every vertex.  To keep each unordered
      // edge counted once (as the paper's X axis does), a round emits
      // (v, N(v)[r]) for all v; duplicates across directions are inherent
      // to neighbor sampling and counted as processed work.
      std::vector<Batch> rounds;
      std::int64_t max_deg = 0;
      for (std::int64_t v = 0; v < g.num_nodes(); ++v)
        max_deg = std::max(max_deg, g.out_degree(static_cast<NodeID>(v)));
      for (std::int64_t r = 0; r < max_deg; ++r) {
        Batch b;
        for (std::int64_t v = 0; v < g.num_nodes(); ++v)
          if (r < g.out_degree(static_cast<NodeID>(v)))
            b.push_back({static_cast<NodeID>(v),
                         g.neighbor(static_cast<NodeID>(v), r)});
        if (!b.empty()) rounds.push_back(std::move(b));
      }
      return rounds;
    }
    case PartitionStrategy::kOptimalSF: {
      std::vector<Batch> out;
      out.push_back(spanning_forest(g));
      // Remainder in row order so the tail is comparable to row sampling.
      Batch rest = all_edges(g);
      auto rest_batches = split_batches(std::move(rest), o.num_batches);
      for (auto& b : rest_batches) out.push_back(std::move(b));
      return out;
    }
  }
  throw std::invalid_argument("bad PartitionStrategy");
}

}  // namespace

std::vector<ConvergencePoint> measure_convergence(const Graph& g,
                                                  ConvergenceOptions opts) {
  const std::int64_t n = g.num_nodes();
  if (n == 0) return {};

  // Ground truth for the measures.
  const auto truth = union_find_cc(g);
  const std::int64_t true_components = count_components(truth);
  const NodeID cmax_label = largest_component_label(truth);
  std::int64_t cmax_size = 0;
  for (NodeID l : truth)
    if (l == cmax_label) ++cmax_size;

  auto comp = identity_labels<NodeID>(n);
  const auto batches = make_batches(g, opts);
  std::int64_t total_edges = 0;
  for (const auto& b : batches)
    total_edges += static_cast<std::int64_t>(b.size());

  std::vector<ConvergencePoint> points;
  points.reserve(batches.size());
  std::int64_t processed = 0;
  for (const auto& batch : batches) {
    const std::int64_t bn = static_cast<std::int64_t>(batch.size());
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < bn; ++i)
      link(batch[i].u, batch[i].v, comp);
    compress_all(comp);
    processed += bn;

    // T_t: remaining trees; with compressed depth-1 trees a root is any v
    // with comp[v] == v.
    std::int64_t trees = 0;
    std::int64_t best_tree_in_cmax = 0;
    {
      std::unordered_map<NodeID, std::int64_t> cmax_tree_sizes;
      for (std::int64_t v = 0; v < n; ++v) {
        if (comp[v] == static_cast<NodeID>(v)) ++trees;
        if (truth[v] == cmax_label) ++cmax_tree_sizes[comp[v]];
      }
      for (const auto& [_, size] : cmax_tree_sizes)
        best_tree_in_cmax = std::max(best_tree_in_cmax, size);
    }

    ConvergencePoint p;
    p.pct_edges_processed = 100.0 * static_cast<double>(processed) /
                            static_cast<double>(std::max<std::int64_t>(
                                1, total_edges));
    p.linkage = n == true_components
                    ? 1.0
                    : static_cast<double>(n - trees) /
                          static_cast<double>(n - true_components);
    p.coverage = cmax_size == 0 ? 1.0
                                : static_cast<double>(best_tree_in_cmax) /
                                      static_cast<double>(cmax_size);
    points.push_back(p);
  }
  return points;
}

}  // namespace afforest
