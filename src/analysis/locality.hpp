// Quantitative locality metrics over a MemTrace (complements Fig 7's
// visual heat-maps with numbers the paper's §V-C narrative makes
// qualitatively: Afforest's accesses are more sequential and more
// concentrated than SV's).
//
//   sequential_fraction — share of consecutive same-thread accesses whose
//                         index delta is 0 or ±1 (stride-1 friendliness)
//   footprint           — number of distinct indices touched
//   gini_concentration  — 0 = accesses spread evenly over touched
//                         addresses, ->1 = concentrated on a few hot roots
#pragma once

#include <cstdint>

#include "analysis/memtrace.hpp"

namespace afforest {

struct LocalityMetrics {
  double sequential_fraction = 0;
  std::int64_t footprint = 0;
  double gini_concentration = 0;
  std::int64_t total_accesses = 0;
};

/// Metrics for one phase (phase = -1 aggregates all phases).
LocalityMetrics compute_locality(const MemTrace& trace, int phase,
                                 std::int64_t domain);

}  // namespace afforest
