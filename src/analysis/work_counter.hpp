// Work accounting for Afforest: how many edges each phase actually
// processed and how many the large-component skip avoided — quantifying
// the §IV-D claim that skipping the giant intermediate component omits the
// bulk of edge traffic.
#pragma once

#include <cstdint>

#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "graph/csr_graph.hpp"
#include "util/parallel.hpp"

namespace afforest {

struct AfforestWorkStats {
  std::int64_t sampled_edges = 0;   ///< links performed in neighbor rounds
  std::int64_t final_edges = 0;     ///< links performed in the final phase
  std::int64_t skipped_edges = 0;   ///< edges omitted by component skipping
  std::int64_t skipped_vertices = 0;

  [[nodiscard]] std::int64_t total_linked() const {
    return sampled_edges + final_edges;
  }
  /// Fraction of stored edges never touched by link.
  [[nodiscard]] double skip_fraction(std::int64_t stored_edges) const {
    return stored_edges == 0 ? 0.0
                             : static_cast<double>(skipped_edges) /
                                   static_cast<double>(stored_edges);
  }
};

/// Runs Afforest while counting per-phase edge work.  Semantically
/// identical to afforest_cc (the labels are returned via out_labels).
template <typename NodeID_>
AfforestWorkStats afforest_with_work_stats(
    const CSRGraph<NodeID_>& g, AfforestOptions opts = {},
    ComponentLabels<NodeID_>* out_labels = nullptr) {
  using OffsetT = typename CSRGraph<NodeID_>::OffsetT;
  const std::int64_t n = g.num_nodes();
  auto comp = identity_labels<NodeID_>(n);
  AfforestWorkStats stats;

  const std::int32_t rounds = std::max(std::int32_t{0}, opts.neighbor_rounds);
  for (std::int32_t r = 0; r < rounds; ++r) {
    std::int64_t linked = 0;
#pragma omp parallel for reduction(+ : linked) schedule(dynamic, 16384)
    for (std::int64_t v = 0; v < n; ++v) {
      if (r < g.out_degree(static_cast<NodeID_>(v))) {
        link(static_cast<NodeID_>(v), g.neighbor(static_cast<NodeID_>(v), r),
             comp);
        ++linked;
      }
    }
    stats.sampled_edges += linked;
    compress_all(comp);
  }

  NodeID_ c = 0;
  if (opts.skip_largest && n > 0)
    c = sample_frequent_element(comp, opts.sample_count, opts.sample_seed);

  std::int64_t final_linked = 0, skipped_e = 0, skipped_v = 0;
#pragma omp parallel for reduction(+ : final_linked, skipped_e, skipped_v) \
    schedule(dynamic, 1024)
  for (std::int64_t v = 0; v < n; ++v) {
    const OffsetT deg = g.out_degree(static_cast<NodeID_>(v));
    const OffsetT remaining = std::max<OffsetT>(0, deg - rounds);
    // should_skip reads the label atomically — the plain read this
    // replaces raced the concurrent link CAS (the PR 1 bug class, still
    // present here until afforest-lint flagged it).
    if (should_skip(static_cast<NodeID_>(v), comp, opts, c)) {
      skipped_e += remaining;
      ++skipped_v;
      continue;
    }
    for (OffsetT k = rounds; k < deg; ++k)
      link(static_cast<NodeID_>(v), g.neighbor(static_cast<NodeID_>(v), k),
           comp);
    final_linked += remaining;
  }
  stats.final_edges = final_linked;
  stats.skipped_edges = skipped_e;
  stats.skipped_vertices = skipped_v;

  compress_all(comp);
  if (out_labels != nullptr) *out_labels = std::move(comp);
  return stats;
}

}  // namespace afforest
