#include "analysis/memtrace.hpp"

#include <omp.h>

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace afforest {

MemTrace::MemTrace() : per_thread_(static_cast<std::size_t>(
                           std::max(1, omp_get_max_threads()))) {}

int MemTrace::begin_phase(const std::string& name) {
  phase_names_.push_back(name);
  current_phase_ = static_cast<int>(phase_names_.size()) - 1;
  return current_phase_;
}

void MemTrace::record(std::int64_t index, bool is_write) {
  if (current_phase_ < 0)
    throw std::logic_error("MemTrace::record before begin_phase");
  const auto tid = static_cast<std::size_t>(omp_get_thread_num());
  per_thread_[tid].push_back(MemEvent{
      index, static_cast<std::uint16_t>(current_phase_),
      static_cast<std::uint16_t>(tid), is_write});
}

std::vector<MemEvent> MemTrace::events() const {
  std::vector<MemEvent> out;
  std::size_t total = 0;
  for (const auto& t : per_thread_) total += t.size();
  out.reserve(total);
  for (const auto& t : per_thread_) out.insert(out.end(), t.begin(), t.end());
  return out;
}

std::int64_t MemTrace::total_accesses() const {
  std::int64_t total = 0;
  for (const auto& t : per_thread_)
    total += static_cast<std::int64_t>(t.size());
  return total;
}

std::int64_t MemTrace::accesses_in_phase(int phase) const {
  std::int64_t total = 0;
  for (const auto& t : per_thread_)
    for (const auto& e : t)
      if (e.phase == phase) ++total;
  return total;
}

std::vector<std::int64_t> MemTrace::access_histogram(
    int phase, int buckets, std::int64_t domain) const {
  std::vector<std::int64_t> hist(static_cast<std::size_t>(buckets), 0);
  if (domain <= 0) return hist;
  for (const auto& t : per_thread_) {
    for (const auto& e : t) {
      if (e.phase != phase) continue;
      auto b = static_cast<std::size_t>(e.index * buckets / domain);
      if (b >= hist.size()) b = hist.size() - 1;
      ++hist[b];
    }
  }
  return hist;
}

void MemTrace::render_heatmap(std::ostream& os, int buckets,
                              std::int64_t domain) const {
  static constexpr char kShades[] = " .:-=+*#%@";
  for (std::size_t p = 0; p < phase_names_.size(); ++p) {
    const auto hist = access_histogram(static_cast<int>(p), buckets, domain);
    const std::int64_t peak =
        *std::max_element(hist.begin(), hist.end());
    os << phase_names_[p];
    for (std::size_t pad = phase_names_[p].size(); pad < 5; ++pad) os << ' ';
    os << '|';
    for (const auto count : hist) {
      const std::size_t shade =
          peak == 0 ? 0
                    : static_cast<std::size_t>(
                          count * (sizeof(kShades) - 2) / peak);
      os << kShades[shade];
    }
    os << "|  accesses=" << accesses_in_phase(static_cast<int>(p)) << '\n';
  }
}

TracedPi::TracedPi(std::int64_t n, MemTrace& trace)
    : data_(static_cast<std::size_t>(n)), trace_(trace) {}

namespace {

using NodeID = std::int32_t;

void traced_init(TracedPi& pi, MemTrace& trace) {
  trace.begin_phase("I");
  for (std::int64_t v = 0; v < pi.size(); ++v)
    pi.store(v, static_cast<NodeID>(v));
}

void traced_link(NodeID u, NodeID v, TracedPi& pi) {
  NodeID p1 = pi.load(u);
  NodeID p2 = pi.load(v);
  while (p1 != p2) {
    const NodeID high = std::max(p1, p2);
    const NodeID low = std::min(p1, p2);
    const NodeID p_high = pi.load(high);
    if (p_high == low) break;
    if (p_high == high) {
      pi.store(high, low);  // serial mirror of the CAS
      break;
    }
    p1 = pi.load(pi.load(high));
    p2 = pi.load(low);
  }
}

void traced_compress_all(TracedPi& pi) {
  for (std::int64_t v = 0; v < pi.size(); ++v) {
    while (true) {
      const NodeID parent = pi.load(v);
      const NodeID grand = pi.load(parent);
      if (grand == parent) break;
      pi.store(v, grand);
    }
  }
}

ComponentLabels<NodeID> extract_labels(const TracedPi& pi) {
  ComponentLabels<NodeID> out(static_cast<std::size_t>(pi.size()));
  for (std::int64_t v = 0; v < pi.size(); ++v) out[v] = pi.raw()[v];
  return out;
}

}  // namespace

TraceResult run_traced_sv(const Graph& g) {
  TraceResult result;
  TracedPi pi(g.num_nodes(), result.trace);
  traced_init(pi, result.trace);
  bool change = true;
  int iter = 0;
  while (change) {
    change = false;
    ++iter;
    result.trace.begin_phase("H" + std::to_string(iter));
    for (std::int64_t u = 0; u < g.num_nodes(); ++u) {
      for (NodeID v : g.out_neigh(static_cast<NodeID>(u))) {
        const NodeID comp_u = pi.load(u);
        const NodeID comp_v = pi.load(v);
        if (comp_u == comp_v) continue;
        const NodeID high = std::max(comp_u, comp_v);
        const NodeID low = std::min(comp_u, comp_v);
        if (pi.load(high) == high) {
          change = true;
          pi.store(high, low);
        }
      }
    }
    result.trace.begin_phase("S" + std::to_string(iter));
    for (std::int64_t v = 0; v < g.num_nodes(); ++v) {
      while (pi.load(v) != pi.load(pi.load(v))) pi.store(v, pi.load(pi.load(v)));
    }
  }
  result.labels = extract_labels(pi);
  return result;
}

TraceResult run_traced_afforest(const Graph& g, AfforestOptions opts) {
  TraceResult result;
  TracedPi pi(g.num_nodes(), result.trace);
  traced_init(pi, result.trace);
  const std::int64_t n = g.num_nodes();

  for (std::int32_t r = 0; r < opts.neighbor_rounds; ++r) {
    result.trace.begin_phase("L" + std::to_string(r + 1));
    for (std::int64_t v = 0; v < n; ++v)
      if (r < g.out_degree(static_cast<NodeID>(v)))
        traced_link(static_cast<NodeID>(v),
                    g.neighbor(static_cast<NodeID>(v), r), pi);
    result.trace.begin_phase("C" + std::to_string(r + 1));
    traced_compress_all(pi);
  }

  NodeID c = 0;
  if (opts.skip_largest && n > 0) {
    result.trace.begin_phase("F");
    // Serial mirror of sample_frequent_element, through the tracer.
    std::unordered_map<NodeID, std::int32_t> counts;
    Xoshiro256 rng(opts.sample_seed);
    for (std::int32_t i = 0; i < opts.sample_count; ++i) {
      const auto idx = static_cast<std::int64_t>(
          rng.next_bounded(static_cast<std::uint64_t>(n)));
      ++counts[pi.load(idx)];
    }
    std::int32_t best = -1;
    for (const auto& [label, count] : counts) {
      if (count > best) {
        best = count;
        c = label;
      }
    }
  }

  result.trace.begin_phase("L*");
  for (std::int64_t v = 0; v < n; ++v) {
    if (opts.skip_largest && pi.load(v) == c) continue;
    const std::int64_t deg = g.out_degree(static_cast<NodeID>(v));
    for (std::int64_t k = opts.neighbor_rounds; k < deg; ++k)
      traced_link(static_cast<NodeID>(v),
                  g.neighbor(static_cast<NodeID>(v), k), pi);
  }
  result.trace.begin_phase("C*");
  traced_compress_all(pi);
  result.labels = extract_labels(pi);
  return result;
}

}  // namespace afforest
