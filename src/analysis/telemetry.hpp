// Performance telemetry: cheap, thread-local-aggregated counters for the
// CC kernels' hot paths, plus per-phase wall times and a peak-RSS probe.
//
// The paper's evaluation (§V–§VI) is built on per-phase observations —
// Table II's iteration counts, Fig 6's linkage/coverage, Fig 7's access
// patterns, Fig 8's phase budgets — and ConnectIt-style frameworks show
// that a sampling-based CC implementation lives or dies by systematic
// measurement.  This header is the single collection point: kernels call
// the `on_*` hooks, orchestration code opens `ScopedPhase` scopes, and the
// bench harness snapshots a `Report` into its machine-readable output
// (docs/BENCHMARKING.md has the counter glossary).
//
// Cost discipline (the "zero-overhead-when-off" contract):
//   * compile switch — building with -DAFFOREST_TELEMETRY=OFF (CMake
//     option; defines AFFOREST_TELEMETRY_DISABLED) turns enabled() into a
//     compile-time `false`, so every hook and its feeding arithmetic is
//     dead code the optimizer deletes.
//   * runtime switch — in telemetry-compiled builds (the default) the
//     counters stay dormant behind one relaxed atomic-bool load per hook;
//     set_enabled(true) or the AFFOREST_TELEMETRY environment variable
//     arms them.
//   * when armed, every increment lands in a cache-line-aligned
//     thread-local block (no cross-thread contention); the fields are
//     relaxed atomics so snapshot()/reset() from another thread is
//     race-free under TSan without any barrier assumptions about the
//     OpenMP runtime.
//
// Thread-local blocks are heap-allocated once per thread and intentionally
// never freed: they must outlive the thread so a snapshot taken after a
// worker exits reads valid memory.  The "leak" is bounded by the number of
// distinct threads the process ever creates.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/env.hpp"
#include "util/failpoint.hpp"
#include "util/platform.hpp"
#include "util/timer.hpp"

namespace afforest::telemetry {

/// True when the counters are compiled into this build (the CMake
/// AFFOREST_TELEMETRY option, default ON).
inline constexpr bool compiled_in() {
#ifdef AFFOREST_TELEMETRY_DISABLED
  return false;
#else
  return true;
#endif
}

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  // Armed at first query from the environment so `AFFOREST_TELEMETRY=1
  // ./bench_...` works without touching the binary's flags.
  static std::atomic<bool> flag{env::is_set("AFFOREST_TELEMETRY")};
  return flag;
}
}  // namespace detail

/// Runtime switch: true iff counters are compiled in AND armed.
inline bool enabled() {
  if constexpr (!compiled_in()) return false;
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) {
  if constexpr (compiled_in())
    detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Aggregated view of every counter, summed over all thread blocks.
/// Field semantics are documented in docs/BENCHMARKING.md's glossary.
struct Counters {
  std::uint64_t link_calls = 0;        ///< link() invocations
  std::uint64_t link_retries = 0;      ///< extra climbing passes in link()
  std::uint64_t link_retry_peak = 0;   ///< deepest single-call retry chain
  std::uint64_t cas_attempts = 0;      ///< root-hook CAS attempts in link()
  std::uint64_t cas_failures = 0;      ///< lost CAS races in link()
  std::uint64_t compress_calls = 0;    ///< compress() invocations
  std::uint64_t compress_hops = 0;     ///< total pointer-jump hops
  std::uint64_t phase3_vertices_skipped = 0;  ///< §IV-D skip: vertices
  std::uint64_t phase3_edges_skipped = 0;     ///< §IV-D skip: edges
  std::uint64_t iterations = 0;        ///< outer fixpoint iterations (SV/LP)
  std::uint64_t sv_hooks_fired = 0;    ///< successful SV hook stores
  std::uint64_t lp_label_updates = 0;  ///< LP label improvements
  std::uint64_t serve_queries_served = 0;  ///< serving-layer queries answered
  std::uint64_t serve_snapshot_swaps = 0;  ///< serving-layer snapshot publishes
  std::uint64_t serve_edges_ingested = 0;  ///< serving-layer edges applied
  std::uint64_t dynamic_deletes_free = 0;  ///< deletions certified free (O(1))
  std::uint64_t dynamic_rebuilds = 0;      ///< components rebuilt after cuts
  std::uint64_t dynamic_rebuild_vertices = 0;  ///< vertices relabeled by rebuilds
  std::uint64_t wal_records_appended = 0;  ///< WAL records journaled
  std::uint64_t wal_bytes_appended = 0;    ///< WAL bytes written (incl. framing)
  std::uint64_t wal_records_replayed = 0;  ///< WAL records re-applied in recovery
  std::uint64_t wal_checkpoints_written = 0;  ///< checkpoints durably installed
  std::uint64_t wal_torn_tail_truncations = 0;  ///< torn WAL tails discarded
  std::uint64_t shard_boundary_msgs = 0;   ///< cross-shard boundary edges routed
  std::uint64_t shard_quotient_edges = 0;  ///< deduped root-pair messages merged
  std::uint64_t shard_epoch_publishes = 0;  ///< cross-shard epochs published
  std::uint64_t failpoints_fired = 0;      ///< injected faults fired (live total,
                                           ///< not reset by telemetry::reset)
};

namespace detail {

struct alignas(kCacheLineBytes) ThreadCounters {
  std::atomic<std::uint64_t> link_calls{0};
  std::atomic<std::uint64_t> link_retries{0};
  std::atomic<std::uint64_t> link_retry_peak{0};
  std::atomic<std::uint64_t> cas_attempts{0};
  std::atomic<std::uint64_t> cas_failures{0};
  std::atomic<std::uint64_t> compress_calls{0};
  std::atomic<std::uint64_t> compress_hops{0};
  std::atomic<std::uint64_t> phase3_vertices_skipped{0};
  std::atomic<std::uint64_t> phase3_edges_skipped{0};
  std::atomic<std::uint64_t> iterations{0};
  std::atomic<std::uint64_t> sv_hooks_fired{0};
  std::atomic<std::uint64_t> lp_label_updates{0};
  std::atomic<std::uint64_t> serve_queries_served{0};
  std::atomic<std::uint64_t> serve_snapshot_swaps{0};
  std::atomic<std::uint64_t> serve_edges_ingested{0};
  std::atomic<std::uint64_t> dynamic_deletes_free{0};
  std::atomic<std::uint64_t> dynamic_rebuilds{0};
  std::atomic<std::uint64_t> dynamic_rebuild_vertices{0};
  std::atomic<std::uint64_t> wal_records_appended{0};
  std::atomic<std::uint64_t> wal_bytes_appended{0};
  std::atomic<std::uint64_t> wal_records_replayed{0};
  std::atomic<std::uint64_t> wal_checkpoints_written{0};
  std::atomic<std::uint64_t> wal_torn_tail_truncations{0};
  std::atomic<std::uint64_t> shard_boundary_msgs{0};
  std::atomic<std::uint64_t> shard_quotient_edges{0};
  std::atomic<std::uint64_t> shard_epoch_publishes{0};
};

struct BlockRegistry {
  std::mutex mu;
  std::vector<ThreadCounters*> blocks;
};

inline BlockRegistry& registry() {
  static BlockRegistry r;
  return r;
}

/// The calling thread's counter block (registered on first use, leaked by
/// design — see the header comment).
inline ThreadCounters& local() {
  thread_local ThreadCounters* block = [] {
    auto* b = new ThreadCounters();
    BlockRegistry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.blocks.push_back(b);
    return b;
  }();
  return *block;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

inline void add(std::atomic<std::uint64_t>& field, std::uint64_t delta) {
  if (delta != 0) field.fetch_add(delta, kRelaxed);
}

}  // namespace detail

// ---- hot-path hooks -------------------------------------------------------
// Kernels accumulate into stack locals and call these once per primitive
// invocation; each hook is a relaxed-load branch when dormant and a handful
// of uncontended relaxed adds when armed.

inline void on_link(std::uint64_t retries, std::uint64_t cas_attempts,
                    std::uint64_t cas_failures) {
  if (!enabled()) return;
  detail::ThreadCounters& b = detail::local();
  b.link_calls.fetch_add(1, detail::kRelaxed);
  detail::add(b.link_retries, retries);
  detail::add(b.cas_attempts, cas_attempts);
  detail::add(b.cas_failures, cas_failures);
  // Owner-exclusive peak update: only this thread writes its block, so a
  // plain compare-then-store on the relaxed atomic is sufficient.
  if (retries > b.link_retry_peak.load(detail::kRelaxed))
    b.link_retry_peak.store(retries, detail::kRelaxed);
}

inline void on_compress(std::uint64_t hops) {
  if (!enabled()) return;
  detail::ThreadCounters& b = detail::local();
  b.compress_calls.fetch_add(1, detail::kRelaxed);
  detail::add(b.compress_hops, hops);
}

inline void on_phase3_skip(std::uint64_t edges_skipped) {
  if (!enabled()) return;
  detail::ThreadCounters& b = detail::local();
  b.phase3_vertices_skipped.fetch_add(1, detail::kRelaxed);
  detail::add(b.phase3_edges_skipped, edges_skipped);
}

/// One outer fixpoint iteration (SV hook+shortcut round, LP sweep, ...).
inline void add_iterations(std::uint64_t n) {
  if (!enabled()) return;
  detail::add(detail::local().iterations, n);
}

inline void add_sv_hooks_fired(std::uint64_t n) {
  if (!enabled()) return;
  detail::add(detail::local().sv_hooks_fired, n);
}

inline void add_lp_label_updates(std::uint64_t n) {
  if (!enabled()) return;
  detail::add(detail::local().lp_label_updates, n);
}

// Serving-layer hooks (src/serve/query_engine.hpp).  Queries are tallied
// once per answered batch (single-query helpers count 1), so the hot read
// path pays one relaxed-bool load per batch, not per query.

inline void on_queries_served(std::uint64_t n) {
  if (!enabled()) return;
  detail::add(detail::local().serve_queries_served, n);
}

inline void on_snapshot_swap() {
  if (!enabled()) return;
  detail::local().serve_snapshot_swaps.fetch_add(1, detail::kRelaxed);
}

inline void on_edges_ingested(std::uint64_t n) {
  if (!enabled()) return;
  detail::add(detail::local().serve_edges_ingested, n);
}

// Decremental-path hooks (src/serve/dynamic_cc.hpp).  Free deletions are
// tallied once per applied batch; rebuilds once per touched component, so
// a delete-only pass over non-tree edges shows dynamic_rebuilds == 0 —
// the invariant the streaming perf gate pins.

inline void on_dynamic_deletes_free(std::uint64_t n) {
  if (!enabled()) return;
  detail::add(detail::local().dynamic_deletes_free, n);
}

inline void on_dynamic_rebuild(std::uint64_t vertices) {
  if (!enabled()) return;
  detail::ThreadCounters& b = detail::local();
  b.dynamic_rebuilds.fetch_add(1, detail::kRelaxed);
  detail::add(b.dynamic_rebuild_vertices, vertices);
}

// Durability hooks (src/serve/wal.hpp, src/serve/durable_engine.hpp).  All
// fire from the single-writer thread, so they land in one block; tallied
// once per record/checkpoint, never per edge.

inline void on_wal_append(std::uint64_t bytes) {
  if (!enabled()) return;
  detail::ThreadCounters& b = detail::local();
  b.wal_records_appended.fetch_add(1, detail::kRelaxed);
  detail::add(b.wal_bytes_appended, bytes);
}

inline void on_wal_replay(std::uint64_t records) {
  if (!enabled()) return;
  detail::add(detail::local().wal_records_replayed, records);
}

inline void on_wal_checkpoint() {
  if (!enabled()) return;
  detail::local().wal_checkpoints_written.fetch_add(1, detail::kRelaxed);
}

inline void on_wal_torn_tail() {
  if (!enabled()) return;
  detail::local().wal_torn_tail_truncations.fetch_add(1, detail::kRelaxed);
}

// Sharded-tier hooks (src/shard/sharded_engine.hpp).  All fire from the
// coordinator's single writer thread, tallied once per batch or publish —
// these are the PartitionedCCStats communication-volume quantities promoted
// to live counters (boundary message volume, deduped quotient size, epochs).

inline void on_shard_boundary_msgs(std::uint64_t n) {
  if (!enabled()) return;
  detail::add(detail::local().shard_boundary_msgs, n);
}

inline void on_shard_quotient_edges(std::uint64_t n) {
  if (!enabled()) return;
  detail::add(detail::local().shard_quotient_edges, n);
}

inline void on_shard_epoch_publish() {
  if (!enabled()) return;
  detail::local().shard_epoch_publishes.fetch_add(1, detail::kRelaxed);
}

// ---- aggregation ----------------------------------------------------------

/// Sums every thread block.  Safe to call concurrently with running
/// kernels (relaxed reads) — values are then a momentary lower bound.
inline Counters snapshot() {
  Counters total;
  if constexpr (!compiled_in()) return total;
  detail::BlockRegistry& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const detail::ThreadCounters* b : r.blocks) {
    total.link_calls += b->link_calls.load(detail::kRelaxed);
    total.link_retries += b->link_retries.load(detail::kRelaxed);
    total.link_retry_peak =
        std::max(total.link_retry_peak, b->link_retry_peak.load(detail::kRelaxed));
    total.cas_attempts += b->cas_attempts.load(detail::kRelaxed);
    total.cas_failures += b->cas_failures.load(detail::kRelaxed);
    total.compress_calls += b->compress_calls.load(detail::kRelaxed);
    total.compress_hops += b->compress_hops.load(detail::kRelaxed);
    total.phase3_vertices_skipped +=
        b->phase3_vertices_skipped.load(detail::kRelaxed);
    total.phase3_edges_skipped += b->phase3_edges_skipped.load(detail::kRelaxed);
    total.iterations += b->iterations.load(detail::kRelaxed);
    total.sv_hooks_fired += b->sv_hooks_fired.load(detail::kRelaxed);
    total.lp_label_updates += b->lp_label_updates.load(detail::kRelaxed);
    total.serve_queries_served +=
        b->serve_queries_served.load(detail::kRelaxed);
    total.serve_snapshot_swaps +=
        b->serve_snapshot_swaps.load(detail::kRelaxed);
    total.serve_edges_ingested +=
        b->serve_edges_ingested.load(detail::kRelaxed);
    total.dynamic_deletes_free += b->dynamic_deletes_free.load(detail::kRelaxed);
    total.dynamic_rebuilds += b->dynamic_rebuilds.load(detail::kRelaxed);
    total.dynamic_rebuild_vertices +=
        b->dynamic_rebuild_vertices.load(detail::kRelaxed);
    total.wal_records_appended += b->wal_records_appended.load(detail::kRelaxed);
    total.wal_bytes_appended += b->wal_bytes_appended.load(detail::kRelaxed);
    total.wal_records_replayed +=
        b->wal_records_replayed.load(detail::kRelaxed);
    total.wal_checkpoints_written +=
        b->wal_checkpoints_written.load(detail::kRelaxed);
    total.wal_torn_tail_truncations +=
        b->wal_torn_tail_truncations.load(detail::kRelaxed);
    total.shard_boundary_msgs += b->shard_boundary_msgs.load(detail::kRelaxed);
    total.shard_quotient_edges +=
        b->shard_quotient_edges.load(detail::kRelaxed);
    total.shard_epoch_publishes +=
        b->shard_epoch_publishes.load(detail::kRelaxed);
  }
  // Failpoint fire counts live in the failpoint registry (util/failpoint.hpp
  // must stay include-light, so the dependency points this way).  They are
  // deliberately NOT zeroed by telemetry::reset(): resetting would re-arm
  // "@N" one-shot sites mid-test.  Disarmed runs report 0.
  total.failpoints_fired = failpoints_total_fires();
  return total;
}

// ---- per-phase wall time --------------------------------------------------

/// Accumulated wall time for one named phase: seconds summed over `count`
/// scope entries (insertion-ordered, so reports read in execution order).
struct PhaseSample {
  std::string name;
  double seconds = 0;
  std::uint64_t count = 0;
};

namespace detail {
struct PhaseTable {
  std::mutex mu;
  std::vector<PhaseSample> rows;
};
inline PhaseTable& phase_table() {
  static PhaseTable t;
  return t;
}
}  // namespace detail

/// Accumulates `seconds` under `name`.  Phases are recorded from the
/// serial orchestration code between parallel regions, so the mutex is
/// uncontended in practice.
inline void record_phase(std::string_view name, double seconds) {
  if (!enabled()) return;
  detail::PhaseTable& t = detail::phase_table();
  const std::lock_guard<std::mutex> lock(t.mu);
  for (PhaseSample& row : t.rows) {
    if (row.name == name) {
      row.seconds += seconds;
      ++row.count;
      return;
    }
  }
  t.rows.push_back({std::string(name), seconds, 1});
}

inline std::vector<PhaseSample> phases() {
  if constexpr (!compiled_in()) return {};
  detail::PhaseTable& t = detail::phase_table();
  const std::lock_guard<std::mutex> lock(t.mu);
  return t.rows;
}

/// RAII phase stopwatch; no-op when telemetry is dormant.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view name)
      : active_(enabled()), name_(name) {
    if (active_) timer_.start();
  }
  ~ScopedPhase() {
    if (active_) {
      timer_.stop();
      record_phase(name_, timer_.seconds());
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  bool active_;
  std::string_view name_;
  Timer timer_;
};

// ---- process probes -------------------------------------------------------

/// Peak resident set size (VmHWM) in bytes; 0 when /proc is unavailable.
inline std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::uint64_t kb = 0;
      for (const char c : line)
        if (c >= '0' && c <= '9') kb = kb * 10 + static_cast<std::uint64_t>(c - '0');
      return kb * 1024;
    }
  }
  return 0;
}

// ---- lifecycle ------------------------------------------------------------

/// Zeroes every counter block and clears the phase table.  Call between
/// measured runs; concurrent kernel updates during a reset are lost, not
/// racy (all fields are atomics).
inline void reset() {
  if constexpr (!compiled_in()) return;
  {
    detail::BlockRegistry& r = detail::registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    for (detail::ThreadCounters* b : r.blocks) {
      b->link_calls.store(0, detail::kRelaxed);
      b->link_retries.store(0, detail::kRelaxed);
      b->link_retry_peak.store(0, detail::kRelaxed);
      b->cas_attempts.store(0, detail::kRelaxed);
      b->cas_failures.store(0, detail::kRelaxed);
      b->compress_calls.store(0, detail::kRelaxed);
      b->compress_hops.store(0, detail::kRelaxed);
      b->phase3_vertices_skipped.store(0, detail::kRelaxed);
      b->phase3_edges_skipped.store(0, detail::kRelaxed);
      b->iterations.store(0, detail::kRelaxed);
      b->sv_hooks_fired.store(0, detail::kRelaxed);
      b->lp_label_updates.store(0, detail::kRelaxed);
      b->serve_queries_served.store(0, detail::kRelaxed);
      b->serve_snapshot_swaps.store(0, detail::kRelaxed);
      b->serve_edges_ingested.store(0, detail::kRelaxed);
      b->dynamic_deletes_free.store(0, detail::kRelaxed);
      b->dynamic_rebuilds.store(0, detail::kRelaxed);
      b->dynamic_rebuild_vertices.store(0, detail::kRelaxed);
      b->wal_records_appended.store(0, detail::kRelaxed);
      b->wal_bytes_appended.store(0, detail::kRelaxed);
      b->wal_records_replayed.store(0, detail::kRelaxed);
      b->wal_checkpoints_written.store(0, detail::kRelaxed);
      b->wal_torn_tail_truncations.store(0, detail::kRelaxed);
      b->shard_boundary_msgs.store(0, detail::kRelaxed);
      b->shard_quotient_edges.store(0, detail::kRelaxed);
      b->shard_epoch_publishes.store(0, detail::kRelaxed);
    }
  }
  detail::PhaseTable& t = detail::phase_table();
  const std::lock_guard<std::mutex> lock(t.mu);
  t.rows.clear();
}

/// Everything a reporting layer needs from one measured run.
struct Report {
  Counters counters;
  std::vector<PhaseSample> phases;
  std::uint64_t peak_rss_bytes = 0;
};

inline Report capture() {
  return Report{snapshot(), phases(), peak_rss_bytes()};
}

/// RAII arm/disarm: enables telemetry for one scope, restoring the prior
/// state on exit (tests and the bench counter pass use this).
class ScopedEnable {
 public:
  explicit ScopedEnable(bool fresh = true) : previous_(enabled()) {
    set_enabled(true);
    if (fresh) reset();
  }
  ~ScopedEnable() { set_enabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

}  // namespace afforest::telemetry
