#include "analysis/locality.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace afforest {

LocalityMetrics compute_locality(const MemTrace& trace, int phase,
                                 std::int64_t domain) {
  (void)domain;
  LocalityMetrics m;
  const auto events = trace.events();

  // Per-thread previous index for sequentiality; global per-index counts.
  std::unordered_map<std::uint16_t, std::int64_t> prev_index;
  std::unordered_map<std::int64_t, std::int64_t> counts;
  std::int64_t sequential = 0, pairs = 0;
  for (const auto& e : events) {
    if (phase >= 0 && e.phase != phase) continue;
    ++m.total_accesses;
    ++counts[e.index];
    const auto it = prev_index.find(e.thread);
    if (it != prev_index.end()) {
      const std::int64_t delta = e.index - it->second;
      if (delta >= -1 && delta <= 1) ++sequential;
      ++pairs;
      it->second = e.index;
    } else {
      prev_index.emplace(e.thread, e.index);
    }
  }
  m.footprint = static_cast<std::int64_t>(counts.size());
  m.sequential_fraction =
      pairs == 0 ? 0.0
                 : static_cast<double>(sequential) / static_cast<double>(pairs);

  // Gini coefficient over per-index access counts.
  if (!counts.empty() && m.total_accesses > 0) {
    std::vector<std::int64_t> sorted;
    sorted.reserve(counts.size());
    for (const auto& [_, c] : counts) sorted.push_back(c);
    std::sort(sorted.begin(), sorted.end());
    const double n = static_cast<double>(sorted.size());
    double weighted = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i)
      weighted += (2.0 * (static_cast<double>(i) + 1) - n - 1) *
                  static_cast<double>(sorted[i]);
    m.gini_concentration =
        weighted / (n * static_cast<double>(m.total_accesses));
  }
  return m;
}

}  // namespace afforest
