// Instrumented variants of the CC kernels for the paper's Table II:
// per-edge local iteration counts of Afforest's link loop, outer iteration
// counts of SV, and the maximal component-tree depth each algorithm builds.
//
// The instrumented kernels mirror the production ones exactly, adding
// counters; they are kept separate so the hot paths carry no bookkeeping.
#pragma once

#include <cstdint>

#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "cc/guards.hpp"
#include "cc/shiloach_vishkin.hpp"
#include "graph/csr_graph.hpp"
#include "util/parallel.hpp"

namespace afforest {

/// Maximum depth of any parent chain in comp (0 = all self-pointing).
/// Well-defined because Invariant 1 keeps π acyclic.
template <typename NodeID_>
std::int64_t max_tree_depth(const pvector<NodeID_>& comp) {
  const std::int64_t n = static_cast<std::int64_t>(comp.size());
  std::int64_t max_depth = 0;
  // comp is quiescent here (probes run between phases, never concurrently
  // with hooks), so the plain reads cannot race.
#pragma omp parallel for reduction(max : max_depth) schedule(dynamic, 16384)
  for (std::int64_t v = 0; v < n; ++v) {
    std::int64_t depth = 0;
    NodeID_ x = static_cast<NodeID_>(v);
    // lint: bounded(Invariant 1 keeps the parent forest acyclic, so the walk reaches a root)
    while (comp[x] != x) {
      x = comp[x];
      ++depth;
    }
    max_depth = std::max(max_depth, depth);
  }
  return max_depth;
}

/// Counters accumulated over one algorithm run.
struct LinkStats {
  std::int64_t link_calls = 0;        ///< number of link() invocations
  std::int64_t local_iterations = 0;  ///< total iterations of link's loop
  std::int64_t max_tree_depth = 0;    ///< deepest π tree seen at any probe

  [[nodiscard]] double avg_local_iterations() const {
    return link_calls == 0 ? 0.0
                           : static_cast<double>(local_iterations) /
                                 static_cast<double>(link_calls);
  }
};

/// link() with an iteration counter (adds to `iters` the number of times
/// the while-loop body would run, counting a trivially-linked edge as 1 —
/// the "validation" iteration §V-A describes).
// lint: parallel-context
template <typename NodeID_>
void link_counted(NodeID_ u, NodeID_ v, pvector<NodeID_>& comp,
                  std::int64_t& iters) {
  NodeID_ p1 = atomic_load(comp[u]);
  NodeID_ p2 = atomic_load(comp[v]);
  ++iters;  // the initial comparison pass
  // lint: bounded(each retry strictly descends a finite acyclic parent chain; Lemma 5)
  while (p1 != p2) {
    const NodeID_ high = std::max(p1, p2);
    const NodeID_ low = std::min(p1, p2);
    const NodeID_ p_high = atomic_load(comp[high]);
    if (p_high == low) break;
    if (p_high == high && compare_and_swap(comp[high], high, low)) break;
    p1 = atomic_load(comp[atomic_load(comp[high])]);
    p2 = atomic_load(comp[low]);
    ++iters;
  }
}

/// Afforest (no component skipping, per Table II's setup) with counters.
template <typename NodeID_>
LinkStats afforest_instrumented(const CSRGraph<NodeID_>& g,
                                ComponentLabels<NodeID_>* out_labels = nullptr,
                                std::int32_t neighbor_rounds = 2) {
  using OffsetT = typename CSRGraph<NodeID_>::OffsetT;
  const std::int64_t n = g.num_nodes();
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(n);
  LinkStats stats;

  auto probe_depth = [&] {
    stats.max_tree_depth =
        std::max(stats.max_tree_depth, max_tree_depth(comp));
  };

  for (std::int32_t r = 0; r < neighbor_rounds; ++r) {
    std::int64_t iters = 0;
    std::int64_t calls = 0;
#pragma omp parallel for reduction(+ : iters, calls) schedule(dynamic, 16384)
    for (std::int64_t v = 0; v < n; ++v) {
      if (r < g.out_degree(static_cast<NodeID_>(v))) {
        link_counted(static_cast<NodeID_>(v),
                     g.neighbor(static_cast<NodeID_>(v), r), comp, iters);
        ++calls;
      }
    }
    stats.local_iterations += iters;
    stats.link_calls += calls;
    probe_depth();
    compress_all(comp);
  }

  {
    std::int64_t iters = 0;
    std::int64_t calls = 0;
#pragma omp parallel for reduction(+ : iters, calls) schedule(dynamic, 1024)
    for (std::int64_t v = 0; v < n; ++v) {
      const OffsetT deg = g.out_degree(static_cast<NodeID_>(v));
      for (OffsetT k = neighbor_rounds; k < deg; ++k) {
        link_counted(static_cast<NodeID_>(v),
                     g.neighbor(static_cast<NodeID_>(v), k), comp, iters);
        ++calls;
      }
    }
    stats.local_iterations += iters;
    stats.link_calls += calls;
  }
  probe_depth();
  compress_all(comp);
  if (out_labels != nullptr) *out_labels = std::move(comp);
  return stats;
}

/// SV counters for the same table: outer iterations and max tree depth
/// probed after every hook phase.
struct SVStats {
  std::int64_t iterations = 0;
  std::int64_t max_tree_depth = 0;
};

template <typename NodeID_>
SVStats shiloach_vishkin_instrumented(
    const CSRGraph<NodeID_>& g,
    ComponentLabels<NodeID_>* out_labels = nullptr) {
  const std::int64_t n = g.num_nodes();
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(n);
  SVStats stats;
  const std::int64_t ceiling = iteration_ceiling(n);
  bool change = true;
  while (change) {
    change = false;
    ++stats.iterations;
    check_convergence_guard("shiloach_vishkin_instrumented",
                            stats.iterations, ceiling);
    // The hook pass mirrors sv_hook_edge's discipline exactly: label reads
    // are atomic (they race with sibling hooks' atomic_stores) and the
    // iteration flag folds through reduction(||).  The plain-read,
    // shared-flag formulation this replaces was the same race class PR 1
    // fixed in the production kernels — the instrumented mirror had kept
    // it until afforest-lint flagged the file.
#pragma omp parallel for reduction(|| : change) schedule(dynamic, 16384)
    for (std::int64_t u = 0; u < n; ++u) {
      for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u))) {
        const NodeID_ comp_u = atomic_load(comp[u]);
        const NodeID_ comp_v = atomic_load(comp[v]);
        if (comp_u == comp_v) continue;
        const NodeID_ high_comp = std::max(comp_u, comp_v);
        const NodeID_ low_comp = std::min(comp_u, comp_v);
        if (high_comp == atomic_load(comp[high_comp])) {
          change = true;
          atomic_store(comp[high_comp], low_comp);
        }
      }
    }
    stats.max_tree_depth =
        std::max(stats.max_tree_depth, max_tree_depth(comp));
    // Shortcut via the shared atomic-access compress (sibling threads
    // compress overlapping chains, so plain accesses would race).
    compress_all(comp);
  }
  if (out_labels != nullptr) *out_labels = std::move(comp);
  return stats;
}

}  // namespace afforest
