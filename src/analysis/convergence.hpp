// Convergence measures and subgraph partitioning strategies (paper §V-B).
//
// Linkage(t) = (|V| - T_t) / (|V| - C): fraction of all tree connections
//              already made after processing batch t.
// Coverage(t) = τ_max(t) / |c_max|: largest fraction of the true giant
//              component already gathered in a single tree.
//
// measure_convergence() replays Afforest's link/compress over an edge
// ordering produced by one of four partitioning strategies and records
// both measures after every batch — the data behind Fig 6a/6b.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace afforest {

/// Edge-partitioning strategies compared in Fig 6.
enum class PartitionStrategy {
  kRowPartition,    ///< adjacency-matrix rows in contiguous blocks
  kRandomEdges,     ///< uniformly shuffled edges, equal batches
  kNeighborRounds,  ///< round r = r-th neighbor of every vertex (§IV-C)
  kOptimalSF,       ///< spanning-forest edges first (theoretical optimum)
};

std::string to_string(PartitionStrategy s);

struct ConvergencePoint {
  double pct_edges_processed = 0;  ///< 0–100, X axis of Fig 6
  double linkage = 0;              ///< 0–1
  double coverage = 0;             ///< 0–1
};

struct ConvergenceOptions {
  PartitionStrategy strategy = PartitionStrategy::kNeighborRounds;
  int num_batches = 20;        ///< for row/random/SF-remainder batching
  std::uint64_t shuffle_seed = 7;
};

/// Replays link over g's edges in the strategy's order, compressing and
/// measuring after every batch.  The final point always has linkage = 1
/// and coverage = 1 (all edges processed ⇒ converged, Theorem 1).
std::vector<ConvergencePoint> measure_convergence(const Graph& g,
                                                  ConvergenceOptions opts);

}  // namespace afforest
