// Sharded serving tier: N single-writer QueryEngines behind one
// coordinator, one cross-shard epoch.
//
// This is the ROADMAP's composition step — src/dist/partitioned_cc's
// BSP quotient exchange promoted from a simulation into a live serving
// architecture.  Vertices are 1D-block partitioned with the SAME
// partition_of map the simulation uses (the simulated ranks and the real
// shards agree on ownership by construction); each shard owns a
// QueryEngine over its block, relabeled to local ids.  The paper's
// sampling insight is what makes the coordinator cheap: local link work
// collapses each block to a handful of roots, so the cross-shard state is
// a tiny quotient union-find over root ids, not a second copy of the
// graph.
//
// Write plane (single coordinator writer):
//   * apply_batch routes each edge — internal edges go to the owning
//     shard's engine (local ids), cross-shard edges land in a boundary
//     log as the (u, v) messages a real deployment would ship
//     (telemetry: shard_boundary_msgs).
//   * publish() runs the BSP merge superstep: every shard compacts and
//     publishes, the boundary log is translated against the FRESH shard
//     snapshots into deduplicated (root_u, root_v) quotient messages
//     (shard_quotient_edges), a union-by-min quotient union-find resolves
//     them, and the whole thing — pinned shard views + resolved quotient
//     maps — is published as ONE epoch atom (shard_epoch_publishes).
//     The log is then compacted to the deduped root pairs: a stored root
//     is a real vertex id, so its root under any FUTURE snapshot is
//     recoverable — compaction is lossless and keeps the log
//     proportional to the quotient, not the edge stream.
//
// Read plane: a global query pins one GlobalSnapshot and composes
//   global_label(v) = quotient_root(shard_start + local_label(v))
// entirely within that atom.  Readers can never observe shard A at epoch
// e and shard B at e−1: the only path to shard snapshots is through the
// atom, and the atom is swapped with the same RCU pointer-flip protocol
// the per-shard stores use (EpochPublisher, serve/snapshot_store.hpp).
// Labels stay exact min vertex ids: shard-local labels are local minima,
// blocks are contiguous and order-preserving, and the quotient unions by
// min — so a sharded answer is bit-identical to a single-shard
// QueryEngine over the same edges (the differential suite pins this).
//
// Epoch lockstep: every shard publishes exactly once per coordinator
// publish and nobody else may call the shard engines' writer methods, so
// shard epochs always equal the global epoch (asserted at publish).
//
// Grace-period ordering (the subtle part): the stale global buffer pins
// shard views from epoch e−1 — exactly the shard buffers the shard
// stores want to overwrite next.  publish() therefore FIRST drains and
// destroys the stale global payload (EpochPublisher::begin_publish),
// releasing those pins, and only then runs the per-shard publishes.  The
// reverse order would self-deadlock in the shard stores' drain loops.
//
// lint-scope: cc
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "analysis/telemetry.hpp"
#include "cc/common.hpp"
#include "dist/partitioned_cc.hpp"
#include "dist/quotient.hpp"
#include "graph/edge_list.hpp"
#include "serve/query_batch.hpp"
#include "serve/query_engine.hpp"
#include "serve/snapshot_store.hpp"
#include "serve/writer_lock.hpp"
#include "util/failpoint.hpp"
#include "util/pvector.hpp"

namespace afforest::shard {

template <typename NodeID_ = std::int32_t>
class ShardedEngine {
 public:
  using Engine = serve::QueryEngine<NodeID_>;
  using ShardView = typename serve::SnapshotStore<NodeID_>::View;

  /// One consistent cross-shard state: the pinned per-shard snapshots all
  /// queries of this epoch read, plus the resolved quotient.  Owned and
  /// swapped atomically by the EpochPublisher; readers hold it only
  /// through a GlobalRef.
  struct GlobalSnapshot {
    std::vector<ShardView> views;  ///< one pinned snapshot per shard
    /// pre-quotient global root -> final (min) global root, fully resolved
    std::unordered_map<NodeID_, NodeID_> quotient_root;
    /// final global root -> component size, for cross-shard components only
    std::unordered_map<NodeID_, std::int64_t> quotient_size;
    std::int64_t component_count = 0;
  };

  using GlobalRef = typename serve::EpochPublisher<GlobalSnapshot>::Ref;

  /// num_shards >= 1.  Throws LabelWidthError when num_nodes exceeds what
  /// NodeID_ can label — same typed guard as partitioned_cc.
  ShardedEngine(std::int64_t num_nodes, int num_shards)
      : num_nodes_(num_nodes), num_shards_(num_shards) {
    if (num_shards < 1)
      throw std::invalid_argument("ShardedEngine: num_shards must be >= 1");
    check_label_width<NodeID_>("ShardedEngine", num_nodes);
    shard_start_.resize(static_cast<std::size_t>(num_shards) + 1);
    for (int p = 0; p <= num_shards; ++p)
      shard_start_[p] = partition_first(p, num_nodes, num_shards);
    shards_.reserve(static_cast<std::size_t>(num_shards));
    for (int p = 0; p < num_shards; ++p)
      shards_.push_back(
          std::make_unique<Engine>(shard_start_[p + 1] - shard_start_[p]));
    // Install epoch 1 (all-singletons) so reads and shard epochs are in
    // lockstep from birth, exactly like a fresh QueryEngine.
    rebuild_global();
  }

  [[nodiscard]] std::int64_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] int num_shards() const { return num_shards_; }

  /// Which shard owns vertex v — the dist layer's 1D block map verbatim.
  [[nodiscard]] int shard_of(NodeID_ v) const {
    return partition_of(static_cast<std::int64_t>(v), num_nodes_,
                        num_shards_);
  }

  /// First global vertex id of shard p (== num_nodes() at p == num_shards).
  [[nodiscard]] std::int64_t shard_start(int p) const {
    return shard_start_[p];
  }

  // ---- read plane ---------------------------------------------------------

  /// Cross-shard epoch of the published atom (starts at 1, +1 per
  /// publish; always equals every shard's snapshot epoch inside the atom).
  [[nodiscard]] std::uint64_t epoch() const { return publisher_.epoch(); }

  /// Pins the current cross-shard atom.  Concurrency-safe; any number of
  /// readers.  Exposed so tests can assert on the atom's internals (shard
  /// epochs, quotient shape); ordinary callers use the query methods.
  [[nodiscard]] GlobalRef acquire() const { return publisher_.acquire(); }

  /// Shard-snapshot epochs inside one atom — the linearizability tests'
  /// probe that a reader can never see mixed epochs.
  [[nodiscard]] static std::vector<std::uint64_t> shard_epochs(
      const GlobalRef& ref) {
    std::vector<std::uint64_t> epochs;
    epochs.reserve(ref->views.size());
    for (const ShardView& view : ref->views) epochs.push_back(view.epoch());
    return epochs;
  }

  /// Single-query conveniences; each pins the atom for one call and
  /// throws VertexRangeError on ids outside [0, num_nodes()).
  [[nodiscard]] bool connected(NodeID_ u, NodeID_ v) const {
    check_vertex(u);
    check_vertex(v);
    const GlobalRef ref = publisher_.acquire();
    telemetry::on_queries_served(1);
    return global_root(*ref, u) == global_root(*ref, v);
  }

  /// Component id of u — the minimum global vertex id in u's component,
  /// identical to the single-engine label convention.
  [[nodiscard]] NodeID_ component_of(NodeID_ u) const {
    check_vertex(u);
    const GlobalRef ref = publisher_.acquire();
    telemetry::on_queries_served(1);
    return global_root(*ref, u);
  }

  [[nodiscard]] std::int64_t component_size(NodeID_ u) const {
    check_vertex(u);
    const GlobalRef ref = publisher_.acquire();
    telemetry::on_queries_served(1);
    return size_of_root(*ref, global_root(*ref, u), u);
  }

  [[nodiscard]] std::int64_t component_count() const {
    return publisher_.acquire()->component_count;
  }

  /// Answers every query against ONE atom (stamped into batch.epoch) with
  /// an OpenMP-parallel sweep.  Throws VertexRangeError before touching
  /// outputs on any bad id.
  void answer(serve::QueryBatch<NodeID_>& batch) const {
    const std::int64_t count = static_cast<std::int64_t>(batch.count());
    for (std::int64_t i = 0; i < count; ++i) {
      check_vertex(batch.u[i]);
      check_vertex(batch.v[i]);
    }
    batch.connected.resize(batch.count());
    batch.component.resize(batch.count());
    batch.component_size.resize(batch.count());

    const GlobalRef ref = publisher_.acquire();
    batch.epoch = ref.epoch();
    const GlobalSnapshot& snap = *ref;
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < count; ++i) {
      const NodeID_ ru = global_root(snap, batch.u[i]);
      const NodeID_ rv = global_root(snap, batch.v[i]);
      batch.connected[i] = static_cast<std::uint8_t>(ru == rv);
      batch.component[i] = ru;
      batch.component_size[i] = size_of_root(snap, ru, batch.u[i]);
    }
    telemetry::on_queries_served(static_cast<std::uint64_t>(count));
  }

  /// Published global labels (deep copy; for verification).  Exactly the
  /// array a single-shard QueryEngine over the same edges would publish.
  [[nodiscard]] ComponentLabels<NodeID_> labels() const {
    const GlobalRef ref = publisher_.acquire();
    const GlobalSnapshot& snap = *ref;
    ComponentLabels<NodeID_> out(static_cast<std::size_t>(num_nodes_));
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < num_nodes_; ++v)
      out[v] = global_root(snap, static_cast<NodeID_>(v));  // NOLINT(afforest-plain-shared-access): owner-exclusive init write
    return out;
  }

  // ---- write plane (single coordinator writer) ----------------------------

  /// Routes a batch: internal edges to their owning shard's engine,
  /// cross-shard edges into the boundary log.  Published answers are NOT
  /// affected until publish().  Throws VertexRangeError on any bad
  /// endpoint (before applying anything) and std::logic_error on
  /// concurrent writer calls.
  void apply_batch(const EdgeList<NodeID_>& batch) {
    apply_batch(batch.data(), batch.size());
  }

  void apply_batch(const EdgePair<NodeID_>* edges, std::size_t count) {
    const serve::WriterLock lock(writer_active_, "ShardedEngine");
    const std::int64_t m = static_cast<std::int64_t>(count);
    for (std::int64_t i = 0; i < m; ++i) {
      check_vertex(edges[i].u);
      check_vertex(edges[i].v);
    }
    // Route.  Staging buffers persist across batches to amortize their
    // allocations; the boundary log persists by design (merged at publish).
    for (auto& staged : staging_) staged.clear();
    std::uint64_t boundary = 0;
    for (std::int64_t i = 0; i < m; ++i) {
      const NodeID_ u = edges[i].u;
      const NodeID_ v = edges[i].v;
      const int pu = shard_of(u);
      const int pv = shard_of(v);
      if (pu == pv) {
        staging_[pu].push_back(
            {static_cast<NodeID_>(u - shard_start_[pu]),
             static_cast<NodeID_>(v - shard_start_[pu])});
      } else {
        boundary_log_.push_back({u, v});
        ++boundary;
      }
    }
    for (int p = 0; p < num_shards_; ++p)
      if (staging_[p].size() != 0)
        shards_[p]->apply_batch(staging_[p].data(), staging_[p].size());
    telemetry::on_shard_boundary_msgs(boundary);
    // Internal edges were already tallied by the shard engines' own
    // apply_batch; count only the boundary edges here so the total across
    // the tier is exactly m per batch.
    telemetry::on_edges_ingested(boundary);
  }

  /// The BSP merge superstep: compacts + publishes every shard, resolves
  /// the boundary log into the cross-shard quotient against the fresh
  /// shard snapshots, and atomically publishes one new global epoch.
  /// The shard.swap failpoint fires after the shard publishes, before the
  /// global flip: a failure there leaves readers on the previous global
  /// epoch (shard snapshots may have advanced underneath, but no reader
  /// can see them until the next successful publish — the atom is the
  /// only read path).
  void publish() {
    const serve::WriterLock lock(writer_active_, "ShardedEngine");
    rebuild_global();
  }

  /// Convenience: route a batch and immediately publish the result.
  void apply_and_publish(const EdgeList<NodeID_>& batch) {
    apply_batch(batch);
    publish();
  }

 private:
  void check_vertex(NodeID_ v) const {
    check_vertex_range("ShardedEngine", v, num_nodes_);
  }

  /// Global root of v under one atom: owning shard's local label shifted
  /// back to global ids, then the quotient's final say.
  [[nodiscard]] NodeID_ global_root(const GlobalSnapshot& snap,
                                    NodeID_ v) const {
    const int p = shard_of(v);
    const NodeID_ local = static_cast<NodeID_>(v - shard_start_[p]);
    const NodeID_ root = static_cast<NodeID_>(
        shard_start_[p] + snap.views[p].component_of(local));
    const auto it = snap.quotient_root.find(root);
    return it == snap.quotient_root.end() ? root : it->second;
  }

  /// Size of the component rooted at `root` (v: any member, used to reach
  /// the owning shard when the component never crossed a boundary).
  [[nodiscard]] std::int64_t size_of_root(const GlobalSnapshot& snap,
                                          NodeID_ root, NodeID_ v) const {
    const auto it = snap.quotient_size.find(root);
    if (it != snap.quotient_size.end()) return it->second;
    const int p = shard_of(v);
    return snap.views[p].component_size(
        static_cast<NodeID_>(v - shard_start_[p]));
  }

  /// Shared tail of the constructor and publish(): shard publishes, then
  /// quotient rebuild, then the atomic global flip.  Caller holds the
  /// writer lock (constructor runs pre-publication, so it needs none).
  void rebuild_global() {
    const bool first = publisher_.epoch() == 0;
    // A previous publish may have died between the shard publishes and the
    // global flip (the shard.swap failpoint's position).  The shards are
    // then one epoch ahead of the atom: re-driving their publishes would
    // deadlock on the pins the still-published atom holds — and is
    // unnecessary, because the interrupted superstep's shard state is
    // already published.  Skip step 1 and re-drive only the quotient
    // rebuild + flip; this realigns the lockstep, and any edges applied
    // after the failure ride the next publish as usual.
    const bool shards_ahead =
        !first && shards_.front()->epoch() == publisher_.epoch() + 1;
    // Step 0 — release epoch e−1's pins BEFORE shard publishes (see the
    // grace-period ordering note in the header comment).
    GlobalSnapshot* next = publisher_.begin_publish();

    if (staging_.empty())
      staging_.resize(static_cast<std::size_t>(num_shards_));

    // Step 1 — per-shard compact + publish (skipped on the constructor
    // pass: a fresh QueryEngine is born already published at epoch 1).
    if (!first && !shards_ahead) {
      const telemetry::ScopedPhase phase("shard.publish.shards");
      for (auto& shard : shards_) shard->publish();
    }

    // Step 2 — pin the fresh shard snapshots and verify epoch lockstep.
    next->views.reserve(shards_.size());
    std::int64_t components = 0;
    for (auto& shard : shards_) {
      next->views.push_back(shard->acquire());
      components += next->views.back().component_count();
      if (next->views.back().epoch() != next->views.front().epoch())
        throw std::logic_error(
            "ShardedEngine: shard epochs diverged (external writer?)");
    }

    // Step 3 — the exchange + merge supersteps: translate the boundary
    // log against the fresh snapshots, dedupe, union by min.
    RootPairSet<NodeID_> pairs;
    QuotientUF<NodeID_> quotient;
    std::int64_t merges = 0;
    {
      const telemetry::ScopedPhase phase("shard.publish.quotient");
      for (const EdgePair<NodeID_>& e : boundary_log_) {
        const NodeID_ ru = raw_root(*next, e.u);
        const NodeID_ rv = raw_root(*next, e.v);
        if (ru != rv) pairs.insert(ru, rv);
      }
      pairs.for_each([&quotient, &merges](NodeID_ lo, NodeID_ hi) {
        if (quotient.unite(lo, hi)) ++merges;
      });
    }

    // Step 4 — resolve and derive: final root map, cross-shard component
    // sizes (sum of member-root shard sizes), global component count.
    next->quotient_root = quotient.resolve();
    next->quotient_size.reserve(next->quotient_root.size());
    for (const auto& [root, final_root] : next->quotient_root) {
      const int p = shard_of(root);
      next->quotient_size[final_root] += next->views[p].component_size(
          static_cast<NodeID_>(root - shard_start_[p]));
    }
    next->component_count = components - merges;

    // Step 5 — compact the boundary log to the deduped root pairs.
    boundary_log_.clear();
    pairs.for_each([this](NodeID_ lo, NodeID_ hi) {
      boundary_log_.push_back({lo, hi});
    });

    // Step 6 — the atomic flip: one release-store publishes shard views,
    // quotient, and epoch together.
    failpoint_maybe_fail("shard.swap");
    publisher_.commit_publish();
    telemetry::on_shard_quotient_edges(
        static_cast<std::uint64_t>(pairs.size()));
    telemetry::on_shard_epoch_publish();
  }

  /// Pre-quotient global root (shard-local label, globalized).
  [[nodiscard]] NodeID_ raw_root(const GlobalSnapshot& snap,
                                 NodeID_ v) const {
    const int p = shard_of(v);
    return static_cast<NodeID_>(
        shard_start_[p] +
        snap.views[p].component_of(static_cast<NodeID_>(v - shard_start_[p])));
  }

  std::int64_t num_nodes_;
  int num_shards_;
  std::vector<std::int64_t> shard_start_;  ///< P+1 block boundaries
  std::vector<std::unique_ptr<Engine>> shards_;
  /// Cross-shard edges awaiting the next merge, as GLOBAL vertex pairs;
  /// compacted to deduped root pairs at each publish.  Writer-only.
  std::vector<EdgePair<NodeID_>> boundary_log_;
  /// Per-shard routing buffers (local ids), reused across batches.
  std::vector<EdgeList<NodeID_>> staging_;
  serve::EpochPublisher<GlobalSnapshot> publisher_;
  mutable std::atomic<bool> writer_active_{false};
};

extern template class ShardedEngine<std::int32_t>;
extern template class ShardedEngine<std::int64_t>;

}  // namespace afforest::shard
