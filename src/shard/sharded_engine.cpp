#include "shard/sharded_engine.hpp"

namespace afforest::shard {

// The widths the rest of the library ships (Graph defaults to int32; the
// int64 instantiation is what the label-width fix buys).  Keeps every
// consumer of the coordinator out of template-instantiation cost.
template class ShardedEngine<std::int32_t>;
template class ShardedEngine<std::int64_t>;

}  // namespace afforest::shard
