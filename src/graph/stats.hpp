// Structural graph statistics (degree-based).  Component statistics live in
// cc/component_stats.hpp since they require a CC computation; the Table III
// benchmark combines both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace afforest {

struct DegreeStats {
  std::int64_t num_nodes = 0;
  std::int64_t num_edges = 0;  ///< unordered edges for undirected graphs
  double average_degree = 0;   ///< stored (directed) degree average
  std::int64_t max_degree = 0;
  std::int64_t num_isolated = 0;  ///< degree-0 vertices
  std::int64_t num_degree_one = 0;
};

DegreeStats compute_degree_stats(const Graph& g);

/// Histogram of degrees in log2 buckets: bucket i counts vertices with
/// degree in [2^i, 2^{i+1}); bucket 0 additionally holds degree 0 and 1
/// split out by DegreeStats.  Used by generator shape tests.
std::vector<std::int64_t> degree_histogram_log2(const Graph& g);

/// Approximates the graph's (pseudo-)diameter by double-sweep BFS from
/// `source`: BFS to the farthest vertex, then BFS again from there.  Lower
/// bound on the true diameter; good enough for classifying topology.
std::int64_t approximate_diameter(const Graph& g, std::int32_t source = 0);

std::string format_degree_stats(const DegreeStats& s);

}  // namespace afforest
