// Graph file I/O.
//
// Three formats:
//  - ".el"  — whitespace-separated text edge list ("u v" per line, '#' or
//             '%' comment lines allowed), the lingua franca of graph
//             datasets (SNAP, GAP).
//  - ".mtx" — MatrixMarket coordinate format (SuiteSparse collection);
//             1-indexed, `pattern`/`real`/`integer` fields accepted (values
//             ignored), `symmetric` and `general` symmetries supported.
//  - ".sg"  — this library's binary serialized CSR: magic, header, offset
//             array, neighbor array.  Loading is O(|E|) with no rebuild.
//
// Every loader is hardened against corrupt and adversarial inputs: all
// failures throw IoError (io_error.hpp) with a machine-checkable kind and
// the line/byte position, header-sized allocations are validated against
// the actual file size first, and 64-bit ids that do not fit the 32-bit
// NodeID are rejected rather than silently narrowed.  See
// docs/ROBUSTNESS.md for the full taxonomy.
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "graph/io_error.hpp"

namespace afforest {

/// Reads a text edge list.  Throws IoError (kParseError / kNegativeId /
/// kIdOverflow / kOpenFailed) on malformed input.
EdgeList<std::int32_t> read_edge_list(const std::string& path);

/// Writes a text edge list.
void write_edge_list(const std::string& path,
                     const EdgeList<std::int32_t>& edges);

/// Result of parsing a MatrixMarket file: edges are converted to
/// 0-indexing; num_nodes is max(rows, cols) from the size line.
struct MatrixMarketData {
  EdgeList<std::int32_t> edges;
  std::int64_t num_nodes = 0;
};

/// Reads a MatrixMarket coordinate file.  Throws IoError on malformed
/// headers, unsupported variants (complex field, array format),
/// out-of-range indices, or entry counts disagreeing with the size line.
MatrixMarketData read_matrix_market(const std::string& path);

/// Serializes a CSR graph to the binary .sg format.
void write_serialized_graph(const std::string& path, const Graph& g);

/// Loads a binary .sg graph.  The header's n/m are reconciled against the
/// file's size before anything is allocated; neighbor ids are validated
/// against [0, n).  Throws IoError (kBadMagic / kCorruptHeader /
/// kTruncated / kTrailingGarbage / kMalformedOffsets /
/// kOutOfRangeNeighbor / kIdOverflow).
Graph read_serialized_graph(const std::string& path);

/// Dispatches on extension: ".el" and ".mtx" are read + built
/// (undirected), ".sg" is loaded directly.
Graph load_graph(const std::string& path);

/// Persists component labels as a binary .cl file (magic + count +
/// int32 labels), so expensive CC runs can be checkpointed and reused.
void write_labels(const std::string& path,
                  const pvector<std::int32_t>& labels);

/// Loads a .cl label file.  The header's count is reconciled against the
/// file size before allocating.  Throws IoError on bad magic, truncation,
/// or trailing garbage.
pvector<std::int32_t> read_labels(const std::string& path);

}  // namespace afforest
