// Graph file I/O.
//
// Three formats:
//  - ".el"  — whitespace-separated text edge list ("u v" per line, '#' or
//             '%' comment lines allowed), the lingua franca of graph
//             datasets (SNAP, GAP).
//  - ".mtx" — MatrixMarket coordinate format (SuiteSparse collection);
//             1-indexed, `pattern`/`real`/`integer` fields accepted (values
//             ignored), `symmetric` and `general` symmetries supported.
//  - ".sg"  — this library's binary serialized CSR: magic, header, offset
//             array, neighbor array.  Loading is O(|E|) with no rebuild.
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace afforest {

/// Reads a text edge list.  Throws std::runtime_error on parse errors or
/// unreadable files.
EdgeList<std::int32_t> read_edge_list(const std::string& path);

/// Writes a text edge list.
void write_edge_list(const std::string& path,
                     const EdgeList<std::int32_t>& edges);

/// Result of parsing a MatrixMarket file: edges are converted to
/// 0-indexing; num_nodes is max(rows, cols) from the size line.
struct MatrixMarketData {
  EdgeList<std::int32_t> edges;
  std::int64_t num_nodes = 0;
};

/// Reads a MatrixMarket coordinate file.  Throws std::runtime_error on
/// malformed headers, unsupported variants (complex field, array format),
/// or out-of-range indices.
MatrixMarketData read_matrix_market(const std::string& path);

/// Serializes a CSR graph to the binary .sg format.
void write_serialized_graph(const std::string& path, const Graph& g);

/// Loads a binary .sg graph.  Throws std::runtime_error on bad magic,
/// truncation, or malformed offsets.
Graph read_serialized_graph(const std::string& path);

/// Dispatches on extension: ".el" and ".mtx" are read + built
/// (undirected), ".sg" is loaded directly.
Graph load_graph(const std::string& path);

/// Persists component labels as a binary .cl file (magic + count +
/// int32 labels), so expensive CC runs can be checkpointed and reused.
void write_labels(const std::string& path,
                  const pvector<std::int32_t>& labels);

/// Loads a .cl label file.  Throws std::runtime_error on bad magic or
/// truncation.
pvector<std::int32_t> read_labels(const std::string& path);

}  // namespace afforest
