// Structured I/O error taxonomy for the graph loaders.
//
// Every failure in graph/io.cpp throws an IoError carrying a machine-
// checkable kind, the offending path, and — where meaningful — the text
// line (1-based, for .el/.mtx) or byte offset (for .sg/.cl) at which the
// problem was detected.  Deriving from std::runtime_error keeps every
// pre-existing catch site working; new code should dispatch on kind().
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>

namespace afforest {

enum class IoErrorKind {
  kOpenFailed,        ///< file could not be opened for reading/writing
  kWriteFailed,       ///< stream error while writing
  kBadMagic,          ///< .sg/.cl magic bytes do not match
  kCorruptHeader,     ///< header fields are nonsensical (negative counts)
  kIdOverflow,        ///< vertex id does not fit the 32-bit NodeID
  kNegativeId,        ///< negative vertex id in a text format
  kParseError,        ///< unparseable text where a number was expected
  kTruncated,         ///< file ends before the header-promised payload
  kTrailingGarbage,   ///< bytes remain after the header-promised payload
  kOutOfRangeNeighbor,///< .sg neighbor id outside [0, n)
  kMalformedOffsets,  ///< .sg offset array broken (non-monotone, bad ends)
  kCountMismatch,     ///< .mtx entry count disagrees with the size line
  kUnsupportedFormat, ///< unknown extension or unsupported .mtx variant
  kChecksumMismatch,  ///< stored CRC32C disagrees with payload (WAL/ckpt)
};

/// Short stable identifier, used in what() and asserted on by tests.
inline const char* to_string(IoErrorKind kind) {
  switch (kind) {
    case IoErrorKind::kOpenFailed: return "open-failed";
    case IoErrorKind::kWriteFailed: return "write-failed";
    case IoErrorKind::kBadMagic: return "bad-magic";
    case IoErrorKind::kCorruptHeader: return "corrupt-header";
    case IoErrorKind::kIdOverflow: return "id-overflow";
    case IoErrorKind::kNegativeId: return "negative-id";
    case IoErrorKind::kParseError: return "parse-error";
    case IoErrorKind::kTruncated: return "truncated";
    case IoErrorKind::kTrailingGarbage: return "trailing-garbage";
    case IoErrorKind::kOutOfRangeNeighbor: return "out-of-range-neighbor";
    case IoErrorKind::kMalformedOffsets: return "malformed-offsets";
    case IoErrorKind::kCountMismatch: return "count-mismatch";
    case IoErrorKind::kUnsupportedFormat: return "unsupported-format";
    case IoErrorKind::kChecksumMismatch: return "checksum-mismatch";
  }
  return "unknown";
}

inline std::ostream& operator<<(std::ostream& os, IoErrorKind kind) {
  return os << to_string(kind);
}

class IoError : public std::runtime_error {
 public:
  /// kNoPosition marks an absent line/byte position.
  static constexpr std::int64_t kNoPosition = -1;

  IoError(IoErrorKind kind, const std::string& path,
          const std::string& detail, std::int64_t line = kNoPosition,
          std::int64_t byte_offset = kNoPosition)
      : std::runtime_error(format(kind, path, detail, line, byte_offset)),
        kind_(kind),
        path_(path),
        line_(line),
        byte_offset_(byte_offset) {}

  [[nodiscard]] IoErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// 1-based text line, or kNoPosition for binary formats.
  [[nodiscard]] std::int64_t line() const noexcept { return line_; }
  /// Byte offset from the start of the file, or kNoPosition.
  [[nodiscard]] std::int64_t byte_offset() const noexcept {
    return byte_offset_;
  }

 private:
  static std::string format(IoErrorKind kind, const std::string& path,
                            const std::string& detail, std::int64_t line,
                            std::int64_t byte_offset) {
    std::string msg = path + ": " + detail + " [" + to_string(kind);
    if (line != kNoPosition) msg += ", line " + std::to_string(line);
    if (byte_offset != kNoPosition)
      msg += ", byte " + std::to_string(byte_offset);
    msg += "]";
    return msg;
  }

  IoErrorKind kind_;
  std::string path_;
  std::int64_t line_;
  std::int64_t byte_offset_;
};

}  // namespace afforest
