// Kronecker (R-MAT) graph generator with the Graph500 / GAP benchmark
// parameters A=0.57, B=0.19, C=0.19 (D=0.05) — the paper's "kron" dataset
// and the generator behind its Fig 6c degree sweep.
//
// Each edge picks one quadrant of the adjacency matrix per scale level,
// recursively, yielding a skewed power-law-like degree distribution with a
// giant component — the topology class of large social networks.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace afforest {

struct KroneckerParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d is implied: 1 - a - b - c
};

template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> generate_kronecker_edges(
    int scale, std::int64_t edges_per_node, std::uint64_t seed,
    KroneckerParams p = {}) {
  const std::int64_t num_nodes = std::int64_t{1} << scale;
  const std::int64_t num_edges = num_nodes * edges_per_node;
  EdgeList<NodeID_> edges(static_cast<std::size_t>(num_edges));
  const Xoshiro256 root(seed);
  constexpr std::int64_t kBlock = 1 << 14;
  const std::int64_t num_blocks = (num_edges + kBlock - 1) / kBlock;
#pragma omp parallel for schedule(static)
  for (std::int64_t blk = 0; blk < num_blocks; ++blk) {
    Xoshiro256 rng = root.split(static_cast<std::uint64_t>(blk));
    const std::int64_t end = std::min(num_edges, (blk + 1) * kBlock);
    for (std::int64_t i = blk * kBlock; i < end; ++i) {
      std::int64_t u = 0, v = 0;
      for (int level = 0; level < scale; ++level) {
        const double r = rng.next_double();
        if (r < p.a) {
          // top-left quadrant: no bits set
        } else if (r < p.a + p.b) {
          v |= std::int64_t{1} << level;
        } else if (r < p.a + p.b + p.c) {
          u |= std::int64_t{1} << level;
        } else {
          u |= std::int64_t{1} << level;
          v |= std::int64_t{1} << level;
        }
      }
      edges[i].u = static_cast<NodeID_>(u);
      edges[i].v = static_cast<NodeID_>(v);
    }
  }
  return edges;
}

}  // namespace afforest
