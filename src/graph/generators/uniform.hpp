// Uniform random graph generator ("urand" in the paper, GAP-style):
// m edges drawn uniformly at random over n vertices (Erdős–Rényi G(n,m)
// flavor).  Generation is parallel and deterministic: each thread draws
// from an independently split RNG stream keyed by block index, so the edge
// list does not depend on the thread schedule.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace afforest {

template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> generate_uniform_edges(
    std::int64_t num_nodes, std::int64_t num_edges, std::uint64_t seed) {
  EdgeList<NodeID_> edges(static_cast<std::size_t>(num_edges));
  const Xoshiro256 root(seed);
  constexpr std::int64_t kBlock = 1 << 14;
  const std::int64_t num_blocks = (num_edges + kBlock - 1) / kBlock;
#pragma omp parallel for schedule(static)
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    Xoshiro256 rng = root.split(static_cast<std::uint64_t>(b));
    const std::int64_t end = std::min(num_edges, (b + 1) * kBlock);
    for (std::int64_t i = b * kBlock; i < end; ++i) {
      edges[i].u = static_cast<NodeID_>(
          rng.next_bounded(static_cast<std::uint64_t>(num_nodes)));
      edges[i].v = static_cast<NodeID_>(
          rng.next_bounded(static_cast<std::uint64_t>(num_nodes)));
    }
  }
  return edges;
}

}  // namespace afforest
