// Web-graph model: stands in for the paper's "web" (sk-2005 host graph)
// dataset.
//
// Hyperlink graphs combine (a) a heavy-tailed in-degree distribution and
// (b) strong locality: pages mostly link within their site, so consecutive
// crawl ids are densely interconnected.  We reproduce both with a
// copying-model variant: vertex i draws `out_degree` targets; each target
// is, with probability `copy_prob`, copied from the link list of a nearby
// earlier vertex (producing power-law hubs), and otherwise a uniformly
// random vertex inside a sliding locality window (producing the
// locally-connected structure the paper highlights — the web graph is its
// slowest-converging input, Fig 6).  A small teleport probability creates
// long-range links and small disconnected clusters.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace afforest {

struct WebGraphParams {
  std::int64_t out_degree = 8;   ///< links emitted per page
  std::int64_t window = 1024;    ///< locality window (a "site")
  double copy_prob = 0.5;        ///< preferential copying (hub formation)
  double teleport_prob = 0.02;   ///< long-range random link
  double orphan_prob = 0.01;     ///< page emits no links (isolated cluster seed)
};

template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> generate_web_edges(std::int64_t num_nodes,
                                                   std::uint64_t seed,
                                                   WebGraphParams p = {}) {
  EdgeList<NodeID_> edges;
  edges.reserve(static_cast<std::size_t>(num_nodes * p.out_degree));
  Xoshiro256 rng(seed);
  for (std::int64_t i = 1; i < num_nodes; ++i) {
    if (rng.next_double() < p.orphan_prob) continue;
    for (std::int64_t k = 0; k < p.out_degree; ++k) {
      std::int64_t target;
      const double r = rng.next_double();
      if (r < p.teleport_prob) {
        target = static_cast<std::int64_t>(
            rng.next_bounded(static_cast<std::uint64_t>(i)));
      } else if (r < p.teleport_prob + p.copy_prob && !edges.empty()) {
        // Copy the endpoint of a random recent edge: a new page linking to
        // whatever popular pages its neighbors link to.  This is the
        // classic copying-model mechanism behind power-law in-degrees.
        const std::size_t lo =
            edges.size() > static_cast<std::size_t>(p.window * p.out_degree)
                ? edges.size() -
                      static_cast<std::size_t>(p.window * p.out_degree)
                : 0;
        const std::size_t pick =
            lo + static_cast<std::size_t>(
                     rng.next_bounded(edges.size() - lo));
        target = edges[pick].v;
      } else {
        const std::int64_t lo = i > p.window ? i - p.window : 0;
        target = lo + static_cast<std::int64_t>(rng.next_bounded(
                          static_cast<std::uint64_t>(i - lo)));
      }
      if (target != i)
        edges.push_back(
            {static_cast<NodeID_>(i), static_cast<NodeID_>(target)});
    }
  }
  return edges;
}

}  // namespace afforest
