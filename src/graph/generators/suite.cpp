#include "graph/generators/suite.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators/component_mix.hpp"
#include "graph/generators/geometric.hpp"
#include "graph/generators/kronecker.hpp"
#include "graph/generators/regular.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/smallworld.hpp"
#include "graph/generators/uniform.hpp"
#include "graph/generators/webgraph.hpp"

namespace afforest {

const std::vector<SuiteEntry>& graph_suite_entries() {
  static const std::vector<SuiteEntry> entries = {
      {"road", "USA road map stand-in: lattice, avg degree ~2, high diameter"},
      {"osm-eur",
       "OSM Europe stand-in: sparser lattice, many medium components"},
      {"twitter",
       "Twitter follower graph stand-in: Kronecker social network"},
      {"web", "sk-2005 web host graph stand-in: locally-connected copying "
              "model"},
      {"urand", "uniform random graph (GAP spec), single giant component"},
      {"kron", "Kronecker graph, GAP parameters A=.57 B=.19 C=.19"},
  };
  return entries;
}

bool is_suite_graph(const std::string& name) {
  for (const auto& e : graph_suite_entries())
    if (e.name == name) return true;
  return false;
}

Graph make_suite_graph(const std::string& name, int scale,
                       std::uint64_t seed) {
  using NodeID = Graph::NodeID;
  const std::int64_t n = std::int64_t{1} << scale;
  if (name == "road") {
    const auto side = static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)));
    return build_undirected<NodeID>(
        generate_road_edges<NodeID>(side, side, seed, {.keep_prob = 0.97,
                                                       .shortcut_per_node = 0.005}));
  }
  if (name == "osm-eur") {
    const auto side = static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)));
    return build_undirected<NodeID>(
        generate_road_edges<NodeID>(side, side, seed, {.keep_prob = 0.60,
                                                       .shortcut_per_node = 0.0}));
  }
  if (name == "twitter") {
    return build_undirected<NodeID>(
        generate_kronecker_edges<NodeID>(scale, 24, seed,
                                         {.a = 0.50, .b = 0.22, .c = 0.22}),
        n);
  }
  if (name == "web") {
    return build_undirected<NodeID>(
        generate_web_edges<NodeID>(n, seed), n);
  }
  if (name == "urand") {
    return build_undirected<NodeID>(
        generate_uniform_edges<NodeID>(n, 8 * n, seed), n);
  }
  if (name == "kron") {
    return build_undirected<NodeID>(
        generate_kronecker_edges<NodeID>(scale, 16, seed), n);
  }
  // Extended families (not part of the paper's Table III).
  if (name == "smallworld") {
    return build_undirected<NodeID>(
        generate_small_world_edges<NodeID>(n, 4, 0.1, seed), n);
  }
  if (name == "rgg") {
    // Radius slightly above the connectivity threshold.
    const double r = 1.5 * std::sqrt(std::log(static_cast<double>(n)) /
                                     (3.14159265 * static_cast<double>(n)));
    return build_undirected<NodeID>(
        generate_geometric_edges<NodeID>(n, r, seed), n);
  }
  if (name == "regular") {
    return build_undirected<NodeID>(
        generate_regular_edges<NodeID>(n, 8, seed), n);
  }
  throw std::invalid_argument("unknown suite graph: " + name);
}

}  // namespace afforest
