// Component-fraction generator for the paper's Fig 8c experiment.
//
// Given an average component fraction f ∈ (0, 1], produces a uniformly
// random graph with ⌊1/f⌋ components of ⌊|V|·f⌋ vertices each (plus one
// component holding the remainder).  Each component is wired internally as
// a connected urand graph with the requested average degree, so the total
// work is held constant while the number/size of components varies — the
// sweep that exposes BFS-CC's per-component serialization.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace afforest {

template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> generate_component_mix_edges(
    std::int64_t num_nodes, double avg_degree, double component_fraction,
    std::uint64_t seed) {
  if (component_fraction <= 0.0 || component_fraction > 1.0)
    throw std::invalid_argument("component_fraction must be in (0, 1]");
  const auto comp_size = static_cast<std::int64_t>(
      static_cast<double>(num_nodes) * component_fraction);
  if (comp_size < 1)
    throw std::invalid_argument("component_fraction yields empty components");

  EdgeList<NodeID_> edges;
  edges.reserve(static_cast<std::size_t>(
      static_cast<double>(num_nodes) * avg_degree / 2.0 + num_nodes));
  Xoshiro256 rng(seed);

  std::int64_t start = 0;
  while (start < num_nodes) {
    const std::int64_t size = std::min(comp_size, num_nodes - start);
    // Spanning path guarantees the block is one connected component.
    for (std::int64_t i = 1; i < size; ++i)
      edges.push_back({static_cast<NodeID_>(start + i - 1),
                       static_cast<NodeID_>(start + i)});
    // Random intra-block edges up to the requested average degree
    // (avg_degree counts both directions; path edges contribute too).
    const auto extra = static_cast<std::int64_t>(
        std::max(0.0, static_cast<double>(size) * avg_degree / 2.0 -
                          static_cast<double>(size - 1)));
    for (std::int64_t i = 0; i < extra; ++i) {
      const auto u = start + static_cast<std::int64_t>(rng.next_bounded(
                                 static_cast<std::uint64_t>(size)));
      const auto v = start + static_cast<std::int64_t>(rng.next_bounded(
                                 static_cast<std::uint64_t>(size)));
      edges.push_back({static_cast<NodeID_>(u), static_cast<NodeID_>(v)});
    }
    start += size;
  }
  return edges;
}

}  // namespace afforest
