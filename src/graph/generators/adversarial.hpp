// Adversarial constructions from the paper's worst-case analysis (§V-A).
//
// These inputs are deliberately pathological: the paper notes that link's
// worst case is O(|V|) work for a single edge under an adversarial edge
// order, and compress's first invocation can cost O(|V|^2) on linear-depth
// trees.  The repository uses them to (a) verify correctness is unaffected
// and (b) measure how far real costs sit from the bounds.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "util/pvector.hpp"

namespace afforest {

/// Star graph whose hub is the HIGHEST index (n-1), with leaf edges listed
/// in descending leaf order.  Processing sequentially, each leaf i hooks
/// the hub's current root downward, so late edges walk progressively
/// longer parent chains — the §V-A link worst case.
template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> adversarial_star_edges(std::int64_t n) {
  EdgeList<NodeID_> edges;
  edges.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (std::int64_t leaf = n - 2; leaf >= 0; --leaf)
    edges.push_back(
        {static_cast<NodeID_>(n - 1), static_cast<NodeID_>(leaf)});
  return edges;
}

/// Path graph with edges ordered from the high end: (n-2,n-1), (n-3,n-2)…
/// Sequential linking builds deep trees between compress rounds.
template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> adversarial_path_edges(std::int64_t n) {
  EdgeList<NodeID_> edges;
  edges.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (std::int64_t v = n - 1; v >= 1; --v)
    edges.push_back({static_cast<NodeID_>(v - 1), static_cast<NodeID_>(v)});
  return edges;
}

/// A parent array that is a single linear-depth chain: π(v) = v-1.
/// Feeding this to compress exhibits the §V-A worst case directly
/// (every vertex walks the full remaining chain on first compression).
template <typename NodeID_>
[[nodiscard]] pvector<NodeID_> linear_depth_forest(std::int64_t n) {
  pvector<NodeID_> pi(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v)
    pi[v] = static_cast<NodeID_>(v == 0 ? 0 : v - 1);
  return pi;
}

}  // namespace afforest
