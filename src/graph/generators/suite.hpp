// Named graph suite mirroring the paper's Table III datasets, scaled to
// laptop memory.  Every family is deterministic given (name, scale, seed),
// so Table II / Fig 6–8 reproductions run on identical inputs.
//
// Substitutions (documented in DESIGN.md §3): the real-world datasets are
// replaced by synthetic models of the same topology class —
//   road     → lattice road model             (avg deg ≈ 2, diameter Θ(√V))
//   osm-eur  → larger, sparser lattice model  (avg deg ≈ 2, many components)
//   twitter  → Kronecker social network       (power-law, one giant comp.)
//   web      → copying-model hyperlink graph  (local + power-law)
//   urand    → uniform random                 (single giant component)
//   kron     → Kronecker, GAP parameters      (power-law + isolated nodes)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace afforest {

struct SuiteEntry {
  std::string name;         ///< paper's dataset name
  std::string description;  ///< what it models / what it replaces
};

/// Names of all suite families, in the paper's Table III order.
const std::vector<SuiteEntry>& graph_suite_entries();

/// Builds the named suite graph.  `scale` is log2 of the vertex count
/// (families adjust edge counts to keep their characteristic average
/// degree).  Besides the Table III families, the extended names
/// "smallworld" (Watts–Strogatz), "rgg" (random geometric), and "regular"
/// (random 8-regular) are accepted for tooling.  Throws
/// std::invalid_argument for unknown names.
Graph make_suite_graph(const std::string& name, int scale,
                       std::uint64_t seed = 42);

/// True if `name` is a valid suite family (Table III set only).
bool is_suite_graph(const std::string& name);

}  // namespace afforest
