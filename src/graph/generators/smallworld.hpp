// Watts–Strogatz small-world generator: a ring lattice where each vertex
// connects to its k nearest neighbors, with each edge rewired to a random
// endpoint with probability beta.  Interpolates between the high-diameter
// lattice regime (beta=0, road-like) and near-random graphs (beta=1) —
// useful for studying how Afforest's convergence depends on locality
// without changing the degree distribution.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace afforest {

template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> generate_small_world_edges(
    std::int64_t num_nodes, std::int64_t k, double beta, std::uint64_t seed) {
  if (k < 1 || k >= num_nodes)
    throw std::invalid_argument("k must be in [1, num_nodes)");
  if (beta < 0.0 || beta > 1.0)
    throw std::invalid_argument("beta must be in [0, 1]");
  EdgeList<NodeID_> edges;
  edges.reserve(static_cast<std::size_t>(num_nodes * k));
  Xoshiro256 rng(seed);
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    for (std::int64_t j = 1; j <= k; ++j) {
      std::int64_t target = (v + j) % num_nodes;
      if (rng.next_double() < beta) {
        target = static_cast<std::int64_t>(
            rng.next_bounded(static_cast<std::uint64_t>(num_nodes)));
        if (target == v) target = (v + j) % num_nodes;  // avoid self loop
      }
      edges.push_back(
          {static_cast<NodeID_>(v), static_cast<NodeID_>(target)});
    }
  }
  return edges;
}

}  // namespace afforest
