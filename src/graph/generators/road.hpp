// Road-network model: stands in for the paper's "road" (USA road map) and
// "osm-eur" (OpenStreetMap Europe) datasets.
//
// Real road networks are near-planar with average degree ≈ 2–3 and diameter
// Θ(√|V|).  We model this with a width×height lattice where each
// horizontal/vertical link exists with probability keep_prob (creating
// dead ends and multiple medium-size components, as real road graphs have),
// plus a sparse set of random "highway" shortcuts that slightly lower the
// diameter without changing the degree profile.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace afforest {

struct RoadParams {
  double keep_prob = 0.95;       ///< probability each lattice link exists
  double shortcut_per_node = 0.01;  ///< expected highways per vertex
};

template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> generate_road_edges(std::int64_t width,
                                                    std::int64_t height,
                                                    std::uint64_t seed,
                                                    RoadParams p = {}) {
  const std::int64_t n = width * height;
  EdgeList<NodeID_> edges;
  edges.reserve(static_cast<std::size_t>(2 * n));
  Xoshiro256 rng(seed);
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      const std::int64_t v = y * width + x;
      if (x + 1 < width && rng.next_double() < p.keep_prob)
        edges.push_back({static_cast<NodeID_>(v), static_cast<NodeID_>(v + 1)});
      if (y + 1 < height && rng.next_double() < p.keep_prob)
        edges.push_back(
            {static_cast<NodeID_>(v), static_cast<NodeID_>(v + width)});
    }
  }
  const auto num_shortcuts =
      static_cast<std::int64_t>(p.shortcut_per_node * static_cast<double>(n));
  for (std::int64_t i = 0; i < num_shortcuts; ++i) {
    const auto u = static_cast<NodeID_>(
        rng.next_bounded(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<NodeID_>(
        rng.next_bounded(static_cast<std::uint64_t>(n)));
    edges.push_back({u, v});
  }
  return edges;
}

}  // namespace afforest
