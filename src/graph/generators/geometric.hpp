// Random geometric graph (RGG): vertices are uniform points in the unit
// square; edges connect pairs within distance r.  The standard model for
// wireless/sensor networks and a close cousin of road networks (planar-ish,
// high diameter, degree concentrated around n·pi·r^2).  Grid-bucketed
// construction keeps generation O(n) expected.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace afforest {

template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> generate_geometric_edges(
    std::int64_t num_nodes, double radius, std::uint64_t seed) {
  if (radius <= 0.0 || radius > 1.0)
    throw std::invalid_argument("radius must be in (0, 1]");
  Xoshiro256 rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(num_nodes));
  std::vector<double> ys(static_cast<std::size_t>(num_nodes));
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    xs[v] = rng.next_double();
    ys[v] = rng.next_double();
  }

  // Bucket points into a radius-sized grid; only neighboring cells can
  // hold points within range.
  const auto cells = static_cast<std::int64_t>(1.0 / radius);
  const std::int64_t side = std::max<std::int64_t>(1, cells);
  std::vector<std::vector<NodeID_>> grid(
      static_cast<std::size_t>(side * side));
  auto cell_of = [&](double x, double y) {
    auto cx = static_cast<std::int64_t>(x * static_cast<double>(side));
    auto cy = static_cast<std::int64_t>(y * static_cast<double>(side));
    if (cx == side) --cx;
    if (cy == side) --cy;
    return cy * side + cx;
  };
  for (std::int64_t v = 0; v < num_nodes; ++v)
    grid[static_cast<std::size_t>(cell_of(xs[v], ys[v]))].push_back(
        static_cast<NodeID_>(v));

  EdgeList<NodeID_> edges;
  const double r2 = radius * radius;
  for (std::int64_t cy = 0; cy < side; ++cy) {
    for (std::int64_t cx = 0; cx < side; ++cx) {
      const auto& bucket = grid[static_cast<std::size_t>(cy * side + cx)];
      for (std::int64_t dy = 0; dy <= 1; ++dy) {
        for (std::int64_t dx = (dy == 0 ? 0 : -1); dx <= 1; ++dx) {
          const std::int64_t ny = cy + dy;
          const std::int64_t nx = cx + dx;
          if (ny < 0 || ny >= side || nx < 0 || nx >= side) continue;
          const auto& other = grid[static_cast<std::size_t>(ny * side + nx)];
          const bool same_cell = dx == 0 && dy == 0;
          for (std::size_t i = 0; i < bucket.size(); ++i) {
            const std::size_t j_start = same_cell ? i + 1 : 0;
            for (std::size_t j = j_start; j < other.size(); ++j) {
              const NodeID_ a = bucket[i];
              const NodeID_ b = other[j];
              const double ddx = xs[a] - xs[b];
              const double ddy = ys[a] - ys[b];
              if (ddx * ddx + ddy * ddy <= r2) edges.push_back({a, b});
            }
          }
        }
      }
    }
  }
  return edges;
}

}  // namespace afforest
