// Random d-regular multigraph generator (configuration model): each vertex
// gets d stubs; a random perfect matching of the d·n stubs defines the
// edges.  Self-loops and multi-edges (an O(1) expected fraction) are left
// to the builder's cleanup, so the result is d-regular up to a vanishing
// defect — exactly the graph family of the paper's §IV-B, where Frieze et
// al.'s theorem says sampling each edge with p = (1+ε)/d keeps a Θ(n)
// connected component.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "util/pvector.hpp"
#include "util/rng.hpp"

namespace afforest {

template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> generate_regular_edges(std::int64_t num_nodes,
                                                       std::int64_t degree,
                                                       std::uint64_t seed) {
  if ((num_nodes * degree) % 2 != 0)
    throw std::invalid_argument("n*d must be even for a d-regular graph");
  const std::int64_t stubs = num_nodes * degree;
  pvector<NodeID_> endpoints(static_cast<std::size_t>(stubs));
  for (std::int64_t i = 0; i < stubs; ++i)
    endpoints[i] = static_cast<NodeID_>(i / degree);
  // Fisher–Yates shuffle, then pair consecutive stubs.
  Xoshiro256 rng(seed);
  for (std::int64_t i = stubs - 1; i > 0; --i) {
    const auto j = static_cast<std::int64_t>(
        rng.next_bounded(static_cast<std::uint64_t>(i + 1)));
    std::swap(endpoints[i], endpoints[j]);
  }
  EdgeList<NodeID_> edges(static_cast<std::size_t>(stubs / 2));
  for (std::int64_t i = 0; i < stubs / 2; ++i)
    edges[i] = {endpoints[2 * i], endpoints[2 * i + 1]};
  return edges;
}

}  // namespace afforest
