// Compressed Sparse Row (CSR) graph — the representation every kernel in
// this library operates on, mirroring the GAP Benchmark Suite layout the
// paper's reference implementation uses (§VI-A).
//
// Storage: an (|V|+1)-entry offset array into a flat neighbor array.  For
// undirected graphs each unordered edge {u,v} is stored twice (u's and v's
// rows) — exactly the redundancy Afforest's large-component skipping
// exploits (paper Theorem 3: if one direction is skipped, the reverse
// direction still gets processed unless both endpoints are in the skipped
// component).
//
// Neighborhoods are exposed as iterator ranges with an optional start
// offset: `g.out_neigh(v, r)` yields neighbors from index r onward, which is
// how the final link phase resumes after `neighbor_rounds` sampled edges
// (paper Fig 5, line 12).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "util/pvector.hpp"

namespace afforest {

template <typename NodeID_ = std::int32_t>
class CSRGraph {
 public:
  using NodeID = NodeID_;
  using OffsetT = std::int64_t;

  /// Iterator range over one vertex's neighbors.
  class Neighborhood {
   public:
    Neighborhood(const NodeID_* begin, const NodeID_* end)
        : begin_(begin), end_(end) {}
    [[nodiscard]] const NodeID_* begin() const { return begin_; }
    [[nodiscard]] const NodeID_* end() const { return end_; }
    [[nodiscard]] OffsetT size() const { return end_ - begin_; }
    [[nodiscard]] bool empty() const { return begin_ == end_; }
    NodeID_ operator[](OffsetT i) const { return begin_[i]; }

   private:
    const NodeID_* begin_;
    const NodeID_* end_;
  };

  CSRGraph() = default;

  /// Takes ownership of prebuilt CSR arrays (offsets has num_nodes+1
  /// entries).  `directed` records whether the neighbor array represents a
  /// symmetrized undirected graph (false) or out-edges only (true).
  CSRGraph(OffsetT num_nodes, pvector<OffsetT> offsets,
           pvector<NodeID_> neighbors, bool directed = false)
      : num_nodes_(num_nodes),
        directed_(directed),
        out_index_(std::move(offsets)),
        out_neighbors_(std::move(neighbors)) {
    assert(static_cast<OffsetT>(out_index_.size()) == num_nodes_ + 1);
  }

  /// Directed graph with both adjacency directions (in-edges enable
  /// weakly-connected-components and reverse traversal).
  CSRGraph(OffsetT num_nodes, pvector<OffsetT> out_offsets,
           pvector<NodeID_> out_neighbors, pvector<OffsetT> in_offsets,
           pvector<NodeID_> in_neighbors)
      : num_nodes_(num_nodes),
        directed_(true),
        out_index_(std::move(out_offsets)),
        out_neighbors_(std::move(out_neighbors)),
        in_index_(std::move(in_offsets)),
        in_neighbors_(std::move(in_neighbors)) {
    assert(static_cast<OffsetT>(out_index_.size()) == num_nodes_ + 1);
    assert(static_cast<OffsetT>(in_index_.size()) == num_nodes_ + 1);
  }

  CSRGraph(CSRGraph&&) noexcept = default;
  CSRGraph& operator=(CSRGraph&&) noexcept = default;
  CSRGraph(const CSRGraph&) = delete;
  CSRGraph& operator=(const CSRGraph&) = delete;

  [[nodiscard]] OffsetT num_nodes() const { return num_nodes_; }

  /// Number of stored directed edges (for undirected graphs this counts
  /// both directions of every unordered edge).
  [[nodiscard]] OffsetT num_stored_edges() const {
    return static_cast<OffsetT>(out_neighbors_.size());
  }

  /// Number of logical edges: unordered pairs for undirected graphs.
  [[nodiscard]] OffsetT num_edges() const {
    return directed_ ? num_stored_edges() : num_stored_edges() / 2;
  }

  [[nodiscard]] bool directed() const { return directed_; }

  [[nodiscard]] OffsetT out_degree(NodeID_ v) const {
    return out_index_[v + 1] - out_index_[v];
  }

  /// Neighbors of v starting from the `start_offset`-th neighbor.
  [[nodiscard]] Neighborhood out_neigh(NodeID_ v,
                                       OffsetT start_offset = 0) const {
    const OffsetT begin = out_index_[v] + start_offset;
    const OffsetT end = out_index_[v + 1];
    assert(begin <= end);
    return Neighborhood(out_neighbors_.data() + begin,
                        out_neighbors_.data() + end);
  }

  /// The k-th neighbor of v (bounds-checked by assert).
  [[nodiscard]] NodeID_ neighbor(NodeID_ v, OffsetT k) const {
    assert(k < out_degree(v));
    return out_neighbors_[out_index_[v] + k];
  }

  /// True when in-edge arrays are present (directed graphs built with
  /// inverse adjacency).  Undirected graphs answer in_* queries from the
  /// symmetric out-arrays.
  [[nodiscard]] bool has_in_edges() const {
    return !directed_ || !in_index_.empty();
  }

  [[nodiscard]] OffsetT in_degree(NodeID_ v) const {
    if (!directed_) return out_degree(v);
    assert(!in_index_.empty());
    return in_index_[v + 1] - in_index_[v];
  }

  /// In-neighbors of v (== out-neighbors for undirected graphs).
  [[nodiscard]] Neighborhood in_neigh(NodeID_ v,
                                      OffsetT start_offset = 0) const {
    if (!directed_) return out_neigh(v, start_offset);
    assert(!in_index_.empty());
    const OffsetT begin = in_index_[v] + start_offset;
    const OffsetT end = in_index_[v + 1];
    assert(begin <= end);
    return Neighborhood(in_neighbors_.data() + begin,
                        in_neighbors_.data() + end);
  }

  [[nodiscard]] const pvector<OffsetT>& offsets() const { return out_index_; }
  [[nodiscard]] const pvector<NodeID_>& neighbors() const {
    return out_neighbors_;
  }

  [[nodiscard]] double average_degree() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(num_stored_edges()) /
                     static_cast<double>(num_nodes_);
  }

 private:
  OffsetT num_nodes_ = 0;
  bool directed_ = false;
  pvector<OffsetT> out_index_;
  pvector<NodeID_> out_neighbors_;
  // Present only for directed graphs built with inverse adjacency.
  pvector<OffsetT> in_index_;
  pvector<NodeID_> in_neighbors_;
};

/// The library-wide default instantiation (int32 vertex ids, as in GAPBS).
using Graph = CSRGraph<std::int32_t>;

}  // namespace afforest
