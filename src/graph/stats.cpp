#include "graph/stats.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/parallel.hpp"

namespace afforest {

DegreeStats compute_degree_stats(const Graph& g) {
  DegreeStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.average_degree = g.average_degree();
  std::int64_t max_deg = 0, isolated = 0, deg_one = 0;
  const std::int64_t n = g.num_nodes();
#pragma omp parallel for reduction(max : max_deg) \
    reduction(+ : isolated, deg_one) schedule(static)
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t d = g.out_degree(static_cast<std::int32_t>(v));
    max_deg = std::max(max_deg, d);
    if (d == 0) ++isolated;
    if (d == 1) ++deg_one;
  }
  s.max_degree = max_deg;
  s.num_isolated = isolated;
  s.num_degree_one = deg_one;
  return s;
}

std::vector<std::int64_t> degree_histogram_log2(const Graph& g) {
  std::vector<std::int64_t> hist(64, 0);
  const std::int64_t n = g.num_nodes();
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t d = g.out_degree(static_cast<std::int32_t>(v));
    int bucket = 0;
    while ((std::int64_t{1} << (bucket + 1)) <= d) ++bucket;
    ++hist[static_cast<std::size_t>(bucket)];
  }
  while (hist.size() > 1 && hist.back() == 0) hist.pop_back();
  return hist;
}

namespace {

/// Serial BFS returning (farthest vertex, its distance).
std::pair<std::int32_t, std::int64_t> bfs_farthest(const Graph& g,
                                                   std::int32_t source) {
  pvector<std::int64_t> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<std::int32_t> q;
  dist[source] = 0;
  q.push(source);
  std::int32_t far = source;
  while (!q.empty()) {
    const std::int32_t u = q.front();
    q.pop();
    for (std::int32_t w : g.out_neigh(u)) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        if (dist[w] > dist[far]) far = w;
        q.push(w);
      }
    }
  }
  return {far, dist[far]};
}

}  // namespace

std::int64_t approximate_diameter(const Graph& g, std::int32_t source) {
  if (g.num_nodes() == 0) return 0;
  const auto [far, _] = bfs_farthest(g, source);
  return bfs_farthest(g, far).second;
}

std::string format_degree_stats(const DegreeStats& s) {
  std::ostringstream os;
  os << "V=" << s.num_nodes << " E=" << s.num_edges
     << " avg_deg=" << s.average_degree << " max_deg=" << s.max_degree
     << " isolated=" << s.num_isolated << " deg1=" << s.num_degree_one;
  return os.str();
}

}  // namespace afforest
