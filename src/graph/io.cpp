#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "graph/builder.hpp"
#include "util/failpoint.hpp"

namespace afforest {
namespace {

constexpr char kMagic[8] = {'A', 'F', 'F', 'S', 'G', '0', '0', '1'};
constexpr char kLabelMagic[8] = {'A', 'F', 'F', 'C', 'L', '0', '0', '1'};

constexpr std::int64_t kMaxNodeID =
    std::numeric_limits<std::int32_t>::max();

[[noreturn]] void fail(IoErrorKind kind, const std::string& path,
                       const std::string& detail,
                       std::int64_t line = IoError::kNoPosition,
                       std::int64_t byte_offset = IoError::kNoPosition) {
  throw IoError(kind, path, detail, line, byte_offset);
}

/// Size of `path` in bytes, surfaced as kOpenFailed when it cannot be
/// stat'ed.  Every binary reader consults this BEFORE allocating anything
/// sized by a header field, so a corrupt header cannot request more memory
/// than the file could possibly back.
std::uint64_t checked_file_size(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) fail(IoErrorKind::kOpenFailed, path, "cannot stat: " + ec.message());
  return static_cast<std::uint64_t>(size);
}

void open_for_reading(std::ifstream& in, const std::string& path,
                      std::ios::openmode mode = std::ios::in) {
  if (failpoint_triggered("io.read.open"))
    fail(IoErrorKind::kOpenFailed, path, "cannot open for reading (failpoint)");
  in.open(path, mode);
  if (!in) fail(IoErrorKind::kOpenFailed, path, "cannot open for reading");
}

}  // namespace

EdgeList<std::int32_t> read_edge_list(const std::string& path) {
  std::ifstream in;
  open_for_reading(in, path);
  EdgeList<std::int32_t> edges;
  std::string line;
  std::int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::int64_t u, v;
    if (!(ls >> u >> v))
      fail(IoErrorKind::kParseError, path, "expected 'u v' edge", lineno);
    if (u < 0 || v < 0)
      fail(IoErrorKind::kNegativeId, path, "negative vertex id", lineno);
    if (u > kMaxNodeID || v > kMaxNodeID)
      fail(IoErrorKind::kIdOverflow, path,
           "vertex id " + std::to_string(std::max(u, v)) +
               " exceeds the 32-bit NodeID range",
           lineno);
    edges.push_back({static_cast<std::int32_t>(u),
                     static_cast<std::int32_t>(v)});
  }
  return edges;
}

void write_edge_list(const std::string& path,
                     const EdgeList<std::int32_t>& edges) {
  std::ofstream out(path);
  if (!out) fail(IoErrorKind::kOpenFailed, path, "cannot open for writing");
  for (const auto& [u, v] : edges) out << u << ' ' << v << '\n';
  if (!out || failpoint_triggered("io.write"))
    fail(IoErrorKind::kWriteFailed, path, "write error");
}

MatrixMarketData read_matrix_market(const std::string& path) {
  std::ifstream in;
  open_for_reading(in, path);
  std::string header;
  if (!std::getline(in, header))
    fail(IoErrorKind::kTruncated, path, "empty file");
  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    fail(IoErrorKind::kBadMagic, path, "missing %%MatrixMarket banner", 1);
  if (object != "matrix" || format != "coordinate")
    fail(IoErrorKind::kUnsupportedFormat, path,
         "only 'matrix coordinate' files are supported", 1);
  const bool has_value = field == "real" || field == "integer";
  if (!has_value && field != "pattern")
    fail(IoErrorKind::kUnsupportedFormat, path,
         "unsupported field type: " + field, 1);
  if (symmetry != "symmetric" && symmetry != "general")
    fail(IoErrorKind::kUnsupportedFormat, path,
         "unsupported symmetry: " + symmetry, 1);

  std::string line;
  std::int64_t lineno = 1;
  // Skip comment lines to the size line.
  std::int64_t rows = 0, cols = 0, entries = 0;
  bool have_size = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    if (!(ls >> rows >> cols >> entries))
      fail(IoErrorKind::kParseError, path, "malformed size line", lineno);
    have_size = true;
    break;
  }
  if (!have_size)
    fail(IoErrorKind::kTruncated, path, "missing size line");
  if (rows <= 0 || cols <= 0 || entries < 0)
    fail(IoErrorKind::kCorruptHeader, path, "invalid size line", lineno);
  if (rows > kMaxNodeID || cols > kMaxNodeID)
    fail(IoErrorKind::kIdOverflow, path,
         "matrix dimension exceeds the 32-bit NodeID range", lineno);

  MatrixMarketData data;
  data.num_nodes = std::max(rows, cols);
  // reserve, not resize: a lying `entries` cannot force an allocation
  // larger than one edge per remaining input line anyway (push_back grows
  // geometrically from whatever reserve granted).
  data.edges.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(entries, 1 << 20)));
  std::int64_t seen = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    std::int64_t r, c;
    if (!(ls >> r >> c))
      fail(IoErrorKind::kParseError, path, "malformed entry", lineno);
    if (r < 1 || r > rows || c < 1 || c > cols)
      fail(IoErrorKind::kOutOfRangeNeighbor, path,
           "index out of declared range", lineno);
    data.edges.push_back({static_cast<std::int32_t>(r - 1),
                          static_cast<std::int32_t>(c - 1)});
    ++seen;
  }
  if (seen < entries)
    fail(IoErrorKind::kTruncated, path,
         "size line promises " + std::to_string(entries) +
             " entries, found only " + std::to_string(seen));
  if (seen > entries)
    fail(IoErrorKind::kTrailingGarbage, path,
         "size line promises " + std::to_string(entries) +
             " entries, found " + std::to_string(seen));
  return data;
}

void write_serialized_graph(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(IoErrorKind::kOpenFailed, path, "cannot open for writing");
  out.write(kMagic, sizeof(kMagic));
  const std::int64_t n = g.num_nodes();
  const std::int64_t m = g.num_stored_edges();
  const std::int64_t directed = g.directed() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&directed), sizeof(directed));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(std::int64_t)));
  out.write(reinterpret_cast<const char*>(g.neighbors().data()),
            static_cast<std::streamsize>(m * sizeof(std::int32_t)));
  if (!out || failpoint_triggered("io.write"))
    fail(IoErrorKind::kWriteFailed, path, "write error");
}

Graph read_serialized_graph(const std::string& path) {
  constexpr std::uint64_t kHeaderBytes = sizeof(kMagic) + 3 * 8;
  const std::uint64_t file_size = checked_file_size(path);
  std::ifstream in;
  open_for_reading(in, path, std::ios::in | std::ios::binary);
  if (file_size < sizeof(kMagic))
    fail(IoErrorKind::kTruncated, path, "file smaller than the magic bytes",
         IoError::kNoPosition, static_cast<std::int64_t>(file_size));
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    fail(IoErrorKind::kBadMagic, path, "bad magic (not an .sg file)",
         IoError::kNoPosition, 0);
  if (file_size < kHeaderBytes)
    fail(IoErrorKind::kTruncated, path, "file ends inside the header",
         IoError::kNoPosition, static_cast<std::int64_t>(file_size));
  std::int64_t n = 0, m = 0, directed = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  in.read(reinterpret_cast<char*>(&directed), sizeof(directed));
  if (!in || n < 0 || m < 0 || (directed != 0 && directed != 1))
    fail(IoErrorKind::kCorruptHeader, path,
         "header counts are negative or the flag byte is invalid",
         IoError::kNoPosition, sizeof(kMagic));
  if (n > kMaxNodeID)
    fail(IoErrorKind::kIdOverflow, path,
         "header claims " + std::to_string(n) +
             " vertices, beyond the 32-bit NodeID range",
         IoError::kNoPosition, sizeof(kMagic));

  // Reconcile the header against the actual file size BEFORE allocating:
  // a 16-byte file claiming n = 2^60 must die here, not in the allocator.
  // All arithmetic stays within range because n <= kMaxNodeID and m is
  // re-bounded by the payload size first.
  const std::uint64_t payload = file_size - kHeaderBytes;
  const std::uint64_t offsets_bytes =
      (static_cast<std::uint64_t>(n) + 1) * sizeof(std::int64_t);
  if (offsets_bytes > payload)
    fail(IoErrorKind::kTruncated, path,
         "header promises " + std::to_string(n + 1) +
             " offsets but the file holds only " + std::to_string(payload) +
             " payload bytes",
         IoError::kNoPosition, static_cast<std::int64_t>(file_size));
  const std::uint64_t neighbor_bytes = payload - offsets_bytes;
  const std::uint64_t promised_neighbor_bytes =
      static_cast<std::uint64_t>(m) * sizeof(std::int32_t);
  if (promised_neighbor_bytes > neighbor_bytes)
    fail(IoErrorKind::kTruncated, path,
         "header promises " + std::to_string(m) +
             " neighbors but the file ends early",
         IoError::kNoPosition, static_cast<std::int64_t>(file_size));
  if (promised_neighbor_bytes < neighbor_bytes)
    fail(IoErrorKind::kTrailingGarbage, path,
         std::to_string(neighbor_bytes - promised_neighbor_bytes) +
             " bytes beyond the header-promised payload",
         IoError::kNoPosition,
         static_cast<std::int64_t>(kHeaderBytes + offsets_bytes +
                                   promised_neighbor_bytes));
  if (failpoint_triggered("io.read.truncate"))
    fail(IoErrorKind::kTruncated, path, "truncated read (failpoint)");

  pvector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets_bytes));
  pvector<std::int32_t> neighbors(static_cast<std::size_t>(m));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(promised_neighbor_bytes));
  if (!in) fail(IoErrorKind::kTruncated, path, "truncated read");

  if (offsets[0] != 0 || offsets[n] != m)
    fail(IoErrorKind::kMalformedOffsets, path,
         "offset array does not span [0, m]", IoError::kNoPosition,
         kHeaderBytes);
  std::int64_t bad_offset = std::numeric_limits<std::int64_t>::max();
#pragma omp parallel for reduction(min : bad_offset) schedule(static)
  for (std::int64_t v = 0; v < n; ++v)
    if (offsets[v] > offsets[v + 1]) bad_offset = std::min(bad_offset, v);
  if (bad_offset != std::numeric_limits<std::int64_t>::max())
    fail(IoErrorKind::kMalformedOffsets, path,
         "non-monotone offsets at vertex " + std::to_string(bad_offset),
         IoError::kNoPosition,
         static_cast<std::int64_t>(kHeaderBytes) + bad_offset * 8);

  std::int64_t bad_neighbor = std::numeric_limits<std::int64_t>::max();
#pragma omp parallel for reduction(min : bad_neighbor) schedule(static)
  for (std::int64_t i = 0; i < m; ++i)
    if (neighbors[i] < 0 || neighbors[i] >= n)
      bad_neighbor = std::min(bad_neighbor, i);
  if (bad_neighbor != std::numeric_limits<std::int64_t>::max())
    fail(IoErrorKind::kOutOfRangeNeighbor, path,
         "neighbor id " + std::to_string(neighbors[bad_neighbor]) +
             " outside [0, " + std::to_string(n) + ")",
         IoError::kNoPosition,
         static_cast<std::int64_t>(kHeaderBytes + offsets_bytes) +
             bad_neighbor * 4);

  return Graph(n, std::move(offsets), std::move(neighbors), directed != 0);
}

void write_labels(const std::string& path,
                  const pvector<std::int32_t>& labels) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(IoErrorKind::kOpenFailed, path, "cannot open for writing");
  out.write(kLabelMagic, sizeof(kLabelMagic));
  const std::int64_t n = static_cast<std::int64_t>(labels.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(labels.data()),
            static_cast<std::streamsize>(n * sizeof(std::int32_t)));
  if (!out || failpoint_triggered("io.write"))
    fail(IoErrorKind::kWriteFailed, path, "write error");
}

pvector<std::int32_t> read_labels(const std::string& path) {
  constexpr std::uint64_t kHeaderBytes = sizeof(kLabelMagic) + 8;
  const std::uint64_t file_size = checked_file_size(path);
  std::ifstream in;
  open_for_reading(in, path, std::ios::in | std::ios::binary);
  if (file_size < sizeof(kLabelMagic))
    fail(IoErrorKind::kTruncated, path, "file smaller than the magic bytes",
         IoError::kNoPosition, static_cast<std::int64_t>(file_size));
  char magic[sizeof(kLabelMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kLabelMagic, sizeof(kLabelMagic)) != 0)
    fail(IoErrorKind::kBadMagic, path, "bad magic (not a .cl file)",
         IoError::kNoPosition, 0);
  if (file_size < kHeaderBytes)
    fail(IoErrorKind::kTruncated, path, "file ends inside the header",
         IoError::kNoPosition, static_cast<std::int64_t>(file_size));
  std::int64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in || n < 0)
    fail(IoErrorKind::kCorruptHeader, path, "negative label count",
         IoError::kNoPosition, sizeof(kLabelMagic));
  const std::uint64_t payload = file_size - kHeaderBytes;
  if (static_cast<std::uint64_t>(n) > payload / sizeof(std::int32_t))
    fail(IoErrorKind::kTruncated, path,
         "header promises " + std::to_string(n) +
             " labels but the file holds only " + std::to_string(payload) +
             " payload bytes",
         IoError::kNoPosition, static_cast<std::int64_t>(file_size));
  if (static_cast<std::uint64_t>(n) * sizeof(std::int32_t) < payload)
    fail(IoErrorKind::kTrailingGarbage, path,
         "bytes beyond the header-promised payload", IoError::kNoPosition,
         static_cast<std::int64_t>(kHeaderBytes +
                                   static_cast<std::uint64_t>(n) * 4));
  if (failpoint_triggered("io.read.truncate"))
    fail(IoErrorKind::kTruncated, path, "truncated read (failpoint)");
  pvector<std::int32_t> labels(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(n * sizeof(std::int32_t)));
  if (!in) fail(IoErrorKind::kTruncated, path, "truncated read");
  return labels;
}

Graph load_graph(const std::string& path) {
  const auto dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".el") return build_undirected(read_edge_list(path));
  if (ext == ".mtx") {
    auto data = read_matrix_market(path);
    return build_undirected(data.edges, data.num_nodes);
  }
  if (ext == ".sg") return read_serialized_graph(path);
  fail(IoErrorKind::kUnsupportedFormat, path,
       "unsupported extension (expected .el, .mtx, or .sg)");
}

}  // namespace afforest
