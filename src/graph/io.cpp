#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace afforest {
namespace {

constexpr char kMagic[8] = {'A', 'F', 'F', 'S', 'G', '0', '0', '1'};

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::runtime_error(path + ": " + why);
}

}  // namespace

EdgeList<std::int32_t> read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  EdgeList<std::int32_t> edges;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::int64_t u, v;
    if (!(ls >> u >> v))
      fail(path, "parse error at line " + std::to_string(lineno));
    if (u < 0 || v < 0)
      fail(path, "negative vertex id at line " + std::to_string(lineno));
    edges.push_back({static_cast<std::int32_t>(u),
                     static_cast<std::int32_t>(v)});
  }
  return edges;
}

void write_edge_list(const std::string& path,
                     const EdgeList<std::int32_t>& edges) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  for (const auto& [u, v] : edges) out << u << ' ' << v << '\n';
  if (!out) fail(path, "write error");
}

MatrixMarketData read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  std::string header;
  if (!std::getline(in, header)) fail(path, "empty file");
  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail(path, "missing %%MatrixMarket banner");
  if (object != "matrix" || format != "coordinate")
    fail(path, "only 'matrix coordinate' files are supported");
  const bool has_value = field == "real" || field == "integer";
  if (!has_value && field != "pattern")
    fail(path, "unsupported field type: " + field);
  if (symmetry != "symmetric" && symmetry != "general")
    fail(path, "unsupported symmetry: " + symmetry);

  std::string line;
  std::size_t lineno = 1;
  // Skip comment lines to the size line.
  std::int64_t rows = 0, cols = 0, entries = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    if (!(ls >> rows >> cols >> entries))
      fail(path, "malformed size line at line " + std::to_string(lineno));
    break;
  }
  if (rows <= 0 || cols <= 0) fail(path, "missing or invalid size line");

  MatrixMarketData data;
  data.num_nodes = std::max(rows, cols);
  data.edges.reserve(static_cast<std::size_t>(entries));
  std::int64_t seen = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    std::int64_t r, c;
    if (!(ls >> r >> c))
      fail(path, "malformed entry at line " + std::to_string(lineno));
    if (r < 1 || r > rows || c < 1 || c > cols)
      fail(path, "index out of range at line " + std::to_string(lineno));
    data.edges.push_back({static_cast<std::int32_t>(r - 1),
                          static_cast<std::int32_t>(c - 1)});
    ++seen;
  }
  if (seen != entries)
    fail(path, "entry count mismatch: header says " +
                   std::to_string(entries) + ", found " +
                   std::to_string(seen));
  return data;
}

void write_serialized_graph(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  out.write(kMagic, sizeof(kMagic));
  const std::int64_t n = g.num_nodes();
  const std::int64_t m = g.num_stored_edges();
  const std::int64_t directed = g.directed() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&directed), sizeof(directed));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(std::int64_t)));
  out.write(reinterpret_cast<const char*>(g.neighbors().data()),
            static_cast<std::streamsize>(m * sizeof(std::int32_t)));
  if (!out) fail(path, "write error");
}

Graph read_serialized_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    fail(path, "bad magic (not an .sg file)");
  std::int64_t n = 0, m = 0, directed = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  in.read(reinterpret_cast<char*>(&directed), sizeof(directed));
  if (!in || n < 0 || m < 0) fail(path, "corrupt header");
  pvector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(std::int64_t)));
  pvector<std::int32_t> neighbors(static_cast<std::size_t>(m));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(m * sizeof(std::int32_t)));
  if (!in) fail(path, "truncated file");
  if (offsets[0] != 0 || offsets[n] != m) fail(path, "malformed offsets");
  for (std::int64_t v = 0; v < n; ++v)
    if (offsets[v] > offsets[v + 1]) fail(path, "non-monotone offsets");
  return Graph(n, std::move(offsets), std::move(neighbors), directed != 0);
}

namespace {
constexpr char kLabelMagic[8] = {'A', 'F', 'F', 'C', 'L', '0', '0', '1'};
}  // namespace

void write_labels(const std::string& path,
                  const pvector<std::int32_t>& labels) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  out.write(kLabelMagic, sizeof(kLabelMagic));
  const std::int64_t n = static_cast<std::int64_t>(labels.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(labels.data()),
            static_cast<std::streamsize>(n * sizeof(std::int32_t)));
  if (!out) fail(path, "write error");
}

pvector<std::int32_t> read_labels(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  char magic[sizeof(kLabelMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kLabelMagic, sizeof(kLabelMagic)) != 0)
    fail(path, "bad magic (not a .cl file)");
  std::int64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in || n < 0) fail(path, "corrupt header");
  pvector<std::int32_t> labels(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(n * sizeof(std::int32_t)));
  if (!in) fail(path, "truncated file");
  return labels;
}

Graph load_graph(const std::string& path) {
  const auto dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".el") return build_undirected(read_edge_list(path));
  if (ext == ".mtx") {
    auto data = read_matrix_market(path);
    return build_undirected(data.edges, data.num_nodes);
  }
  if (ext == ".sg") return read_serialized_graph(path);
  fail(path, "unsupported extension (expected .el, .mtx, or .sg)");
}

}  // namespace afforest
