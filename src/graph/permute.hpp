// Vertex reordering utilities.
//
// Afforest's Invariant 1 (π(x) ≤ x) ties tree roots to vertex INDICES, so
// the numbering of vertices is not performance-neutral: hub indices decide
// how long link's root walks are, and the giant component's root is its
// minimum id.  These helpers relabel a graph under a permutation so the
// ordering ablation (bench_ordering) can quantify that sensitivity, and so
// users can normalize datasets with pathological orderings.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "util/pvector.hpp"
#include "util/rng.hpp"

namespace afforest {

/// A bijection old-id -> new-id over [0, n).
template <typename NodeID_>
using Permutation = pvector<NodeID_>;

/// Uniformly random permutation (Fisher–Yates, seeded).
template <typename NodeID_>
[[nodiscard]] Permutation<NodeID_> random_permutation(std::int64_t n,
                                                      std::uint64_t seed) {
  Permutation<NodeID_> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), NodeID_{0});
  Xoshiro256 rng(seed);
  for (std::int64_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::int64_t>(
        rng.next_bounded(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

/// Permutation assigning the LOWEST new ids to the highest-degree vertices
/// ("hubs-first").  Under Invariant 1 hubs then win every hook, which is
/// the friendly ordering for link's root walks.
template <typename NodeID_>
[[nodiscard]] Permutation<NodeID_> degree_descending_permutation(
    const CSRGraph<NodeID_>& g) {
  const std::int64_t n = g.num_nodes();
  pvector<NodeID_> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), NodeID_{0});
  std::sort(order.begin(), order.end(), [&](NodeID_ a, NodeID_ b) {
    const auto da = g.out_degree(a), db = g.out_degree(b);
    return da != db ? da > db : a < b;
  });
  Permutation<NodeID_> perm(static_cast<std::size_t>(n));
  for (std::int64_t rank = 0; rank < n; ++rank)
    perm[order[rank]] = static_cast<NodeID_>(rank);
  return perm;
}

/// The reverse: hubs get the HIGHEST ids (the §V-A adversarial flavor).
template <typename NodeID_>
[[nodiscard]] Permutation<NodeID_> degree_ascending_permutation(
    const CSRGraph<NodeID_>& g) {
  auto perm = degree_descending_permutation(g);
  const auto n = static_cast<NodeID_>(g.num_nodes());
  for (auto& p : perm) p = static_cast<NodeID_>(n - 1 - p);
  return perm;
}

/// True iff perm is a bijection over [0, n).
template <typename NodeID_>
[[nodiscard]] bool is_permutation(const Permutation<NodeID_>& perm) {
  const std::int64_t n = static_cast<std::int64_t>(perm.size());
  pvector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  for (NodeID_ p : perm) {
    if (p < 0 || static_cast<std::int64_t>(p) >= n || seen[p]) return false;
    seen[p] = 1;
  }
  return true;
}

/// Rebuilds g with every vertex v renamed to perm[v].
template <typename NodeID_>
[[nodiscard]] CSRGraph<NodeID_> relabel(const CSRGraph<NodeID_>& g,
                                        const Permutation<NodeID_>& perm) {
  if (static_cast<std::int64_t>(perm.size()) != g.num_nodes())
    throw std::invalid_argument("permutation size != num_nodes");
  EdgeList<NodeID_> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t u = 0; u < g.num_nodes(); ++u)
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
      if (static_cast<NodeID_>(u) < v)
        edges.push_back({perm[u], perm[v]});
  BuilderOptions opts;
  opts.symmetrize = !g.directed();
  if (g.directed()) {
    // Directed graphs: emit every arc, not just u<v.
    edges.clear();
    for (std::int64_t u = 0; u < g.num_nodes(); ++u)
      for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
        edges.push_back({perm[u], perm[v]});
  }
  return Builder<NodeID_>(opts).build(edges, g.num_nodes());
}

}  // namespace afforest
