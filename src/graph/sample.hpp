// Subgraph sampling utilities (paper §IV).
//
// uniform_edge_sample   — keep each unordered edge independently with
//                         probability p (§IV-B's random subgraph G'_p)
// neighbor_sample       — the first k neighbors of every vertex (§IV-C's
//                         vertex-neighbor sampling, as an explicit edge set)
//
// These produce EdgeLists so the sampled subgraph can be inspected, built,
// or fed to any CC algorithm; the Afforest driver itself applies neighbor
// sampling implicitly via CSR offsets without materializing edges.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace afforest {

/// Each unordered edge {u,v} (u<v) of g is kept with probability p.
template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> uniform_edge_sample(const CSRGraph<NodeID_>& g,
                                                    double p,
                                                    std::uint64_t seed) {
  EdgeList<NodeID_> out;
  Xoshiro256 rng(seed);
  for (std::int64_t u = 0; u < g.num_nodes(); ++u)
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
      if (static_cast<NodeID_>(u) < v && rng.next_double() < p)
        out.push_back({static_cast<NodeID_>(u), v});
  return out;
}

/// The (v, k-th neighbor of v) edges for k < rounds — the exact subgraph
/// Afforest's sampling phase processes.
template <typename NodeID_>
[[nodiscard]] EdgeList<NodeID_> neighbor_sample(const CSRGraph<NodeID_>& g,
                                                std::int32_t rounds) {
  EdgeList<NodeID_> out;
  for (std::int64_t v = 0; v < g.num_nodes(); ++v) {
    const auto deg = g.out_degree(static_cast<NodeID_>(v));
    for (std::int64_t k = 0; k < std::min<std::int64_t>(rounds, deg); ++k)
      out.push_back({static_cast<NodeID_>(v),
                     g.neighbor(static_cast<NodeID_>(v), k)});
  }
  return out;
}

}  // namespace afforest
