// Edge list → CSR builder.
//
// Pipeline (all stages parallel):
//   1. (undirected) symmetrize: emit both directions of each edge
//   2. count per-vertex degrees with atomic increments
//   3. exclusive prefix sum over degrees → row offsets
//   4. scatter neighbors into their rows with per-row atomic cursors
//   5. sort each row (optional, on by default: sorted rows make the
//      "first appearing neighbors" used for neighbor sampling deterministic
//      and improve locality)
//   6. remove self loops / duplicate edges (optional)
//
// The paper's neighbor sampling "uses the graph file structure by choosing
// the first appearing neighbors of each vertex" (§VI-A); with sorted rows
// that means the lowest-indexed neighbors, which is what our Afforest
// implementation samples.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/pvector.hpp"

namespace afforest {

struct BuilderOptions {
  bool symmetrize = true;      ///< false builds a directed graph as-given
  bool sort_neighbors = true;  ///< sort each CSR row ascending
  bool remove_self_loops = true;
  bool remove_duplicates = true;  ///< requires sort_neighbors
  bool build_in_edges = true;     ///< directed only: also build inverse CSR
};

template <typename NodeID_>
class Builder {
 public:
  using OffsetT = std::int64_t;

  explicit Builder(BuilderOptions opts = {}) : opts_(opts) {
    if (opts_.remove_duplicates && !opts_.sort_neighbors)
      throw std::invalid_argument(
          "remove_duplicates requires sort_neighbors");
  }

  /// Builds a CSR graph over vertex ids [0, num_nodes).  Edges referencing
  /// ids outside that range throw.  When num_nodes < 0 it is inferred as
  /// max id + 1.
  [[nodiscard]] CSRGraph<NodeID_> build(const EdgeList<NodeID_>& edges,
                                        OffsetT num_nodes = -1) const {
    failpoint_maybe_fail("builder.build");
    if (num_nodes < 0) num_nodes = infer_num_nodes(edges);
    validate(edges, num_nodes);

    // Degree counting.  Self loops are dropped up front when requested.
    pvector<OffsetT> degrees(static_cast<std::size_t>(num_nodes), 0);
    const std::int64_t ne = static_cast<std::int64_t>(edges.size());
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < ne; ++i) {
      const auto [u, v] = edges[i];
      if (opts_.remove_self_loops && u == v) continue;
      fetch_and_add(degrees[u], OffsetT{1});
      if (opts_.symmetrize) fetch_and_add(degrees[v], OffsetT{1});
    }

    pvector<OffsetT> offsets = parallel_prefix_sum(degrees);
    const OffsetT total = offsets[num_nodes];

    pvector<NodeID_> neighbors(static_cast<std::size_t>(total));
    pvector<OffsetT> cursors = offsets.clone();
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < ne; ++i) {
      const auto [u, v] = edges[i];
      if (opts_.remove_self_loops && u == v) continue;
      neighbors[fetch_and_add(cursors[u], OffsetT{1})] = v;
      if (opts_.symmetrize)
        neighbors[fetch_and_add(cursors[v], OffsetT{1})] = u;
    }

    if (opts_.sort_neighbors) {
#pragma omp parallel for schedule(dynamic, 64)
      for (std::int64_t v = 0; v < num_nodes; ++v)
        std::sort(neighbors.data() + offsets[v],
                  neighbors.data() + offsets[v + 1]);
    }

    CSRGraph<NodeID_> g(num_nodes, std::move(offsets), std::move(neighbors),
                        /*directed=*/!opts_.symmetrize);
    if (opts_.remove_duplicates) g = dedup(std::move(g));
    if (!opts_.symmetrize && opts_.build_in_edges) g = add_inverse(std::move(g));
    return g;
  }

 private:
  [[nodiscard]] static OffsetT infer_num_nodes(
      const EdgeList<NodeID_>& edges) {
    NodeID_ max_id = -1;
    const std::int64_t ne = static_cast<std::int64_t>(edges.size());
#pragma omp parallel for reduction(max : max_id) schedule(static)
    for (std::int64_t i = 0; i < ne; ++i)
      max_id = std::max({max_id, edges[i].u, edges[i].v});
    return static_cast<OffsetT>(max_id) + 1;
  }

  static void validate(const EdgeList<NodeID_>& edges, OffsetT num_nodes) {
    bool ok = true;
    const std::int64_t ne = static_cast<std::int64_t>(edges.size());
#pragma omp parallel for reduction(&& : ok) schedule(static)
    for (std::int64_t i = 0; i < ne; ++i) {
      const auto [u, v] = edges[i];
      ok = ok && u >= 0 && v >= 0 && static_cast<OffsetT>(u) < num_nodes &&
           static_cast<OffsetT>(v) < num_nodes;
    }
    if (!ok) throw std::out_of_range("edge references vertex out of range");
  }

  /// Rebuilds the graph with duplicate entries removed from each (sorted)
  /// row.  Keeps the graph symmetric: duplicates appear in both rows.
  [[nodiscard]] CSRGraph<NodeID_> dedup(CSRGraph<NodeID_> g) const {
    const OffsetT n = g.num_nodes();
    pvector<OffsetT> degrees(static_cast<std::size_t>(n));
#pragma omp parallel for schedule(dynamic, 64)
    for (std::int64_t v = 0; v < n; ++v) {
      OffsetT count = 0;
      NodeID_ prev = -1;
      for (NodeID_ w : g.out_neigh(static_cast<NodeID_>(v))) {
        if (count == 0 || w != prev) ++count;
        prev = w;
      }
      degrees[v] = count;
    }
    pvector<OffsetT> offsets = parallel_prefix_sum(degrees);
    pvector<NodeID_> neighbors(static_cast<std::size_t>(offsets[n]));
#pragma omp parallel for schedule(dynamic, 64)
    for (std::int64_t v = 0; v < n; ++v) {
      OffsetT pos = offsets[v];
      NodeID_ prev = -1;
      bool first = true;
      for (NodeID_ w : g.out_neigh(static_cast<NodeID_>(v))) {
        if (first || w != prev) neighbors[pos++] = w;
        prev = w;
        first = false;
      }
    }
    return CSRGraph<NodeID_>(n, std::move(offsets), std::move(neighbors),
                             g.directed());
  }

  /// Derives the inverse (in-edge) adjacency from a directed graph's final
  /// out-CSR, so both directions agree after dedup/self-loop removal.
  [[nodiscard]] static CSRGraph<NodeID_> add_inverse(CSRGraph<NodeID_> g) {
    const OffsetT n = g.num_nodes();
    pvector<OffsetT> in_degrees(static_cast<std::size_t>(n), 0);
#pragma omp parallel for schedule(dynamic, 64)
    for (std::int64_t u = 0; u < n; ++u)
      for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
        fetch_and_add(in_degrees[v], OffsetT{1});
    pvector<OffsetT> in_offsets = parallel_prefix_sum(in_degrees);
    pvector<NodeID_> in_neighbors(
        static_cast<std::size_t>(in_offsets[n]));
    pvector<OffsetT> cursors = in_offsets.clone();
#pragma omp parallel for schedule(dynamic, 64)
    for (std::int64_t u = 0; u < n; ++u)
      for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u)))
        in_neighbors[fetch_and_add(cursors[v], OffsetT{1})] =
            static_cast<NodeID_>(u);
#pragma omp parallel for schedule(dynamic, 64)
    for (std::int64_t v = 0; v < n; ++v)
      std::sort(in_neighbors.data() + in_offsets[v],
                in_neighbors.data() + in_offsets[v + 1]);
    pvector<OffsetT> out_offsets = g.offsets().clone();
    pvector<NodeID_> out_neighbors = g.neighbors().clone();
    return CSRGraph<NodeID_>(n, std::move(out_offsets),
                             std::move(out_neighbors), std::move(in_offsets),
                             std::move(in_neighbors));
  }

  BuilderOptions opts_;
};

/// Convenience wrapper with default options (undirected, sorted, deduped).
template <typename NodeID_>
[[nodiscard]] CSRGraph<NodeID_> build_undirected(
    const EdgeList<NodeID_>& edges, std::int64_t num_nodes = -1) {
  return Builder<NodeID_>{}.build(edges, num_nodes);
}

/// Directed build with inverse adjacency (in-edges), for weakly-connected
/// components and reverse traversal.
template <typename NodeID_>
[[nodiscard]] CSRGraph<NodeID_> build_directed(
    const EdgeList<NodeID_>& edges, std::int64_t num_nodes = -1) {
  BuilderOptions opts;
  opts.symmetrize = false;
  return Builder<NodeID_>(opts).build(edges, num_nodes);
}

}  // namespace afforest
