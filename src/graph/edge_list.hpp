// Edge-list representation: the exchange format between generators, file
// I/O, and the CSR builder.
#pragma once

#include <cstdint>

#include "util/pvector.hpp"

namespace afforest {

/// A directed edge (u -> v).  For undirected graphs the builder symmetrizes,
/// so generators only need to emit each unordered edge once.
template <typename NodeID_>
struct EdgePair {
  NodeID_ u;
  NodeID_ v;

  friend bool operator==(const EdgePair& a, const EdgePair& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const EdgePair& a, const EdgePair& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
};

template <typename NodeID_>
using EdgeList = pvector<EdgePair<NodeID_>>;

}  // namespace afforest
