// Load-balanced edge iteration — the CPU substitute for the paper's GPU
// execution substrate (§VI-A: the CUDA variant uses Groute for "intra
// thread-block load-balancing", which matters in the final link phase
// where degree skew is extreme).
//
// A vertex-parallel loop assigns whole neighborhoods to threads, so one
// 10^5-degree hub serializes a thread while others idle.  Chunking splits
// every neighborhood into fixed-size spans and schedules the spans — the
// same work-regularization GPUs get from virtual warps.  This module
// provides the chunk planner, a chunked for-each, and a chunk-scheduled
// Afforest final phase (afforest_balanced) so the representation trade-off
// the paper discusses (edge-list SV's regularity vs CSR's compactness) can
// be measured on the CPU substrate too.
#pragma once

#include <cstdint>

#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "graph/csr_graph.hpp"
#include "util/parallel.hpp"
#include "util/pvector.hpp"

namespace afforest {

/// A span of one vertex's neighborhood: neighbors [begin, end).
template <typename NodeID_>
struct EdgeChunk {
  NodeID_ vertex;
  std::int64_t begin;
  std::int64_t end;
};

/// Splits every neighborhood (starting at `start_offset` neighbors in)
/// into chunks of at most chunk_size edges.
template <typename NodeID_>
pvector<EdgeChunk<NodeID_>> plan_chunks(const CSRGraph<NodeID_>& g,
                                        std::int64_t chunk_size,
                                        std::int64_t start_offset = 0) {
  const std::int64_t n = g.num_nodes();
  pvector<std::int64_t> counts(static_cast<std::size_t>(n));
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t deg =
        std::max<std::int64_t>(0, g.out_degree(static_cast<NodeID_>(v)) -
                                      start_offset);
    counts[v] = (deg + chunk_size - 1) / chunk_size;
  }
  const auto offsets = parallel_prefix_sum(counts);
  pvector<EdgeChunk<NodeID_>> chunks(
      static_cast<std::size_t>(offsets[n]));
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t deg = g.out_degree(static_cast<NodeID_>(v));
    std::int64_t pos = offsets[v];
    for (std::int64_t b = start_offset; b < deg; b += chunk_size) {
      chunks[pos++] = EdgeChunk<NodeID_>{
          static_cast<NodeID_>(v), b, std::min(deg, b + chunk_size)};
    }
  }
  return chunks;
}

/// Applies f(u, v) to every edge, scheduling chunks rather than vertices.
template <typename NodeID_, typename EdgeFn>
void for_each_edge_chunked(const CSRGraph<NodeID_>& g,
                           std::int64_t chunk_size, EdgeFn f,
                           std::int64_t start_offset = 0) {
  const auto chunks = plan_chunks(g, chunk_size, start_offset);
  const std::int64_t nc = static_cast<std::int64_t>(chunks.size());
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t i = 0; i < nc; ++i) {
    const auto& c = chunks[i];
    for (std::int64_t k = c.begin; k < c.end; ++k)
      f(c.vertex, g.neighbor(c.vertex, k));
  }
}

/// Afforest whose final phase is chunk-scheduled: identical semantics to
/// afforest_cc, different load-balancing.  Skipped vertices contribute no
/// chunks (the skip test runs per chunk against the sampled component).
template <typename NodeID_>
ComponentLabels<NodeID_> afforest_balanced(const CSRGraph<NodeID_>& g,
                                           AfforestOptions opts = {},
                                           std::int64_t chunk_size = 64) {
  const std::int64_t n = g.num_nodes();
  ComponentLabels<NodeID_> comp = identity_labels<NodeID_>(n);

  const std::int32_t rounds = std::max(std::int32_t{0}, opts.neighbor_rounds);
  for (std::int32_t r = 0; r < rounds; ++r) {
#pragma omp parallel for schedule(dynamic, 16384)
    for (std::int64_t v = 0; v < n; ++v) {
      if (r < g.out_degree(static_cast<NodeID_>(v)))
        link(static_cast<NodeID_>(v), g.neighbor(static_cast<NodeID_>(v), r),
             comp);
    }
    compress_all(comp);
  }

  NodeID_ c = 0;
  if (opts.skip_largest && n > 0)
    c = sample_frequent_element(comp, opts.sample_count, opts.sample_seed);

  const auto chunks = plan_chunks(g, chunk_size, rounds);
  const std::int64_t nc = static_cast<std::int64_t>(chunks.size());
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t i = 0; i < nc; ++i) {
    const auto& chunk = chunks[i];
    if (should_skip(chunk.vertex, comp, opts, c)) continue;
    for (std::int64_t k = chunk.begin; k < chunk.end; ++k)
      link(chunk.vertex, g.neighbor(chunk.vertex, k), comp);
  }

  compress_all(comp);
  return comp;
}

}  // namespace afforest
