// Quotient-graph helpers shared by the BSP simulation (dist/partitioned_cc)
// and the sharded serving coordinator (shard/sharded_engine.hpp).
//
// After local work collapses each block to a handful of roots (the paper's
// subgraph-sampling insight carried to the distributed setting, and the
// FastSV/ConnectIt observation in PAPERS.md), cross-block connectivity is a
// tiny graph over those roots.  Two pieces implement that exchange:
//
//   RootPairSet<NodeID_>  — deduplicates (root_u, root_v) messages.  For
//                           labels up to 32 bits the pair packs into one
//                           64-bit key (half the memory, one hash); wider
//                           labels take the width-safe two-word path — the
//                           packed fast path previously forced the whole
//                           simulation down to int32 labels.
//   QuotientUF<NodeID_>   — union-find over a sparse set of root ids with
//                           union-by-min, so the quotient preserves the
//                           min-vertex-id label convention every kernel in
//                           this repo shares (labels compose exactly).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cc/guards.hpp"

namespace afforest {

/// Deduplicated set of unordered root pairs.  insert() normalizes (lo, hi);
/// for_each replays each distinct pair once.
template <typename NodeID_>
class RootPairSet {
  static constexpr bool kPacked = sizeof(NodeID_) <= 4;

  struct WideHash {
    std::size_t operator()(
        const std::pair<std::int64_t, std::int64_t>& p) const noexcept {
      // splitmix-style mix of both words; the packed path's single-word
      // hash cannot cover 64-bit ids without collapsing high bits.
      auto mix = [](std::uint64_t x) {
        x += 0x9E3779B97F4A7C15ull;
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
        return x ^ (x >> 31);
      };
      return static_cast<std::size_t>(
          mix(static_cast<std::uint64_t>(p.first)) ^
          (mix(static_cast<std::uint64_t>(p.second)) << 1));
    }
  };

 public:
  /// Records the unordered pair {a, b} (a != b expected but not required);
  /// returns true when the pair was not present yet.
  bool insert(NodeID_ a, NodeID_ b) {
    const NodeID_ lo = a < b ? a : b;
    const NodeID_ hi = a < b ? b : a;
    if constexpr (kPacked) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi)) << 32) |
          static_cast<std::uint32_t>(lo);
      return packed_.insert(key).second;
    } else {
      return wide_
          .insert({static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)})
          .second;
    }
  }

  [[nodiscard]] std::size_t size() const {
    if constexpr (kPacked) return packed_.size();
    else return wide_.size();
  }

  /// Invokes fn(lo, hi) for every distinct pair (iteration order is
  /// unspecified — callers must not depend on it).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if constexpr (kPacked) {
      for (const std::uint64_t key : packed_)
        fn(static_cast<NodeID_>(key & 0xFFFFFFFFull),
           static_cast<NodeID_>(key >> 32));
    } else {
      for (const auto& [lo, hi] : wide_)
        fn(static_cast<NodeID_>(lo), static_cast<NodeID_>(hi));
    }
  }

  void clear() {
    if constexpr (kPacked) packed_.clear();
    else wide_.clear();
  }

 private:
  std::unordered_set<std::uint64_t> packed_;
  std::unordered_set<std::pair<std::int64_t, std::int64_t>, WideHash> wide_;
};

/// Union-find over a sparse id universe (only roots that appear in quotient
/// messages are materialized).  union-by-min: the representative of a set is
/// always its minimum id, so composing quotient roots over shard-local
/// min-id labels yields exactly the global min-id labels.
template <typename NodeID_>
class QuotientUF {
 public:
  /// Representative (minimum id) of x's set; x itself when untracked.
  /// Compresses the visited path.
  NodeID_ find(NodeID_ x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) return x;
    // Chase to the root, then point every visited node straight at it.
    NodeID_ root = x;
    std::int64_t hops = 0;
    // lint: bounded(parent chains strictly decrease toward the set minimum and the map is finite)
    while (true) {
      const auto pit = parent_.find(root);
      if (pit == parent_.end() || pit->second == root) break;
      root = pit->second;
      check_convergence_guard("quotient.find", ++hops,
                              static_cast<std::int64_t>(parent_.size()) + 1);
    }
    NodeID_ cur = x;
    // lint: bounded(re-walks the chain just chased; same strictly-decreasing bound)
    while (cur != root) {
      auto cit = parent_.find(cur);
      const NodeID_ next = cit->second;
      cit->second = root;
      cur = next;
    }
    return root;
  }

  /// Merges the sets of a and b (inserting either if untracked); returns
  /// true when they were previously disjoint.
  bool unite(NodeID_ a, NodeID_ b) {
    const NodeID_ ra = find_or_insert(a);
    const NodeID_ rb = find_or_insert(b);
    if (ra == rb) return false;
    const NodeID_ lo = ra < rb ? ra : rb;
    const NodeID_ hi = ra < rb ? rb : ra;
    parent_[hi] = lo;
    return true;
  }

  /// Number of ids ever touched by unite().
  [[nodiscard]] std::size_t tracked() const { return parent_.size(); }

  /// Fully-resolved view: every tracked id mapped to its set minimum.
  [[nodiscard]] std::unordered_map<NodeID_, NodeID_> resolve() {
    std::unordered_map<NodeID_, NodeID_> out;
    out.reserve(parent_.size());
    for (const auto& [id, unused] : parent_) out.emplace(id, NodeID_{});
    for (auto& [id, root] : out) root = find(id);
    return out;
  }

 private:
  NodeID_ find_or_insert(NodeID_ x) {
    parent_.emplace(x, x);
    return find(x);
  }

  std::unordered_map<NodeID_, NodeID_> parent_;
};

}  // namespace afforest
