// Distributed-memory CC simulation (the paper's §VII future-work
// direction: "generalize the algorithm to distributed memory
// environments").
//
// Model: a 1D block partition over P simulated ranks, Bulk-Synchronous
// Parallel schedule:
//
//   superstep 1 (local):   each rank runs Afforest's link/compress over
//                          edges with BOTH endpoints in its block — no
//                          communication, ranks simulated concurrently.
//   superstep 2 (exchange): boundary edges (endpoints in different blocks)
//                          are translated to (root_u, root_v) pairs — the
//                          messages a real implementation would ship.
//   superstep 3 (merge):   the quotient graph over local roots is solved
//                          with link, and labels are re-compressed.
//
// The returned statistics expose the distributed-feasibility quantities:
// internal vs boundary edge counts (communication volume) and the quotient
// size (how small the exchanged problem is after local work — the subgraph
// sampling insight carries over: local sampling collapses each block to a
// handful of roots before any communication).
#pragma once

#include <cstdint>

#include "cc/common.hpp"
#include "graph/csr_graph.hpp"

namespace afforest {

struct PartitionedCCStats {
  int num_parts = 0;
  std::int64_t internal_edges = 0;   ///< processed with zero communication
  std::int64_t boundary_edges = 0;   ///< messages in the exchange superstep
  std::int64_t quotient_vertices = 0;  ///< distinct local roots touched
  std::int64_t quotient_edges = 0;   ///< deduplicated root-pair messages

  /// Fraction of edges requiring communication.
  [[nodiscard]] double communication_fraction() const {
    const auto total = internal_edges + boundary_edges;
    return total == 0 ? 0.0
                      : static_cast<double>(boundary_edges) /
                            static_cast<double>(total);
  }
};

/// Which rank owns vertex v under the 1D block partition.
int partition_of(std::int64_t v, std::int64_t num_nodes, int num_parts);

/// BSP-partitioned CC.  Exact: labels always equal the single-machine
/// result (component minima).  num_parts >= 1; num_parts == 1 degenerates
/// to plain Afforest-style local processing.
ComponentLabels<std::int32_t> partitioned_cc(
    const Graph& g, int num_parts, PartitionedCCStats* stats = nullptr);

}  // namespace afforest
