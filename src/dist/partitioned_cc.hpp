// Distributed-memory CC simulation (the paper's §VII future-work
// direction: "generalize the algorithm to distributed memory
// environments").
//
// Model: a 1D block partition over P simulated ranks, Bulk-Synchronous
// Parallel schedule:
//
//   superstep 1 (local):   each rank runs Afforest's link/compress over
//                          edges with BOTH endpoints in its block — no
//                          communication, ranks simulated concurrently.
//   superstep 2 (exchange): boundary edges (endpoints in different blocks)
//                          are translated to (root_u, root_v) pairs — the
//                          messages a real implementation would ship.
//   superstep 3 (merge):   the quotient graph over local roots is solved
//                          with link, and labels are re-compressed.
//
// The returned statistics expose the distributed-feasibility quantities:
// internal vs boundary edge counts (communication volume) and the quotient
// size (how small the exchanged problem is after local work — the subgraph
// sampling insight carries over: local sampling collapses each block to a
// handful of roots before any communication).
//
// The label type is a template parameter, same as the serving engines:
// instantiate with a NodeID_ wide enough for g.num_nodes() or get a typed
// LabelWidthError (never a silently truncated label).  The sharded serving
// coordinator (src/shard/) reuses both partition_of and the quotient
// helpers, so the simulated ranks here and the real shards there agree on
// vertex ownership by construction.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "cc/afforest.hpp"
#include "cc/common.hpp"
#include "dist/quotient.hpp"
#include "graph/csr_graph.hpp"

namespace afforest {

struct PartitionedCCStats {
  int num_parts = 0;
  std::int64_t internal_edges = 0;   ///< processed with zero communication
  std::int64_t boundary_edges = 0;   ///< messages in the exchange superstep
  std::int64_t quotient_vertices = 0;  ///< distinct local roots touched
  std::int64_t quotient_edges = 0;   ///< deduplicated root-pair messages

  /// Fraction of edges requiring communication.
  [[nodiscard]] double communication_fraction() const {
    const auto total = internal_edges + boundary_edges;
    return total == 0 ? 0.0
                      : static_cast<double>(boundary_edges) /
                            static_cast<double>(total);
  }
};

/// Which rank owns vertex v under the 1D block partition: floor(v·P / n).
/// Block p is the contiguous range [ceil(p·n/P), ceil((p+1)·n/P)).
int partition_of(std::int64_t v, std::int64_t num_nodes, int num_parts);

/// First vertex of block p under the same partition (== n when p == P),
/// i.e. the inverse boundary map of partition_of: partition_of(v) == p
/// iff partition_first(p) <= v < partition_first(p + 1).
std::int64_t partition_first(int p, std::int64_t num_nodes, int num_parts);

/// BSP-partitioned CC.  Exact: labels always equal the single-machine
/// result (component minima).  num_parts >= 1; num_parts == 1 degenerates
/// to plain Afforest-style local processing.  Throws LabelWidthError when
/// g.num_nodes() exceeds what NodeID_ can label.
template <typename NodeID_>
ComponentLabels<NodeID_> partitioned_cc(const CSRGraph<NodeID_>& g,
                                        int num_parts,
                                        PartitionedCCStats* stats = nullptr) {
  if (num_parts < 1) throw std::invalid_argument("num_parts must be >= 1");
  const std::int64_t n = g.num_nodes();
  check_label_width<NodeID_>("partitioned_cc", n);
  auto comp = identity_labels<NodeID_>(n);

  // Superstep 1: link internal edges.  Each rank touches only its own
  // block of comp, so ranks can be simulated by one parallel loop; the
  // lock-free link keeps the simulation faithful to per-rank concurrency.
  std::int64_t internal = 0, boundary = 0;
#pragma omp parallel for reduction(+ : internal, boundary) \
    schedule(dynamic, 2048)
  for (std::int64_t u = 0; u < n; ++u) {
    const int pu = partition_of(u, n, num_parts);
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u))) {
      if (static_cast<NodeID_>(u) >= v) continue;  // each unordered edge once
      if (partition_of(v, n, num_parts) == pu) {
        link(static_cast<NodeID_>(u), v, comp);
        ++internal;
      } else {
        ++boundary;
      }
    }
  }
  compress_all(comp);

  // Superstep 2: translate boundary edges into root-pair messages and
  // deduplicate (a real implementation aggregates messages per rank pair).
  RootPairSet<NodeID_> quotient;
  std::unordered_set<NodeID_> roots;
  for (std::int64_t u = 0; u < n; ++u) {
    const int pu = partition_of(u, n, num_parts);
    for (NodeID_ v : g.out_neigh(static_cast<NodeID_>(u))) {
      if (static_cast<NodeID_>(u) >= v) continue;
      if (partition_of(v, n, num_parts) == pu) continue;
      const NodeID_ ru = comp[u];
      const NodeID_ rv = comp[v];
      if (ru == rv) continue;
      quotient.insert(ru, rv);
      roots.insert(ru);
      roots.insert(rv);
    }
  }

  // Superstep 3: merge the quotient and finalize.
  quotient.for_each([&comp](NodeID_ lo, NodeID_ hi) { link(hi, lo, comp); });
  compress_all(comp);

  if (stats != nullptr) {
    stats->num_parts = num_parts;
    stats->internal_edges = internal;
    stats->boundary_edges = boundary;
    stats->quotient_vertices = static_cast<std::int64_t>(roots.size());
    stats->quotient_edges = static_cast<std::int64_t>(quotient.size());
  }
  return comp;
}

extern template ComponentLabels<std::int32_t> partitioned_cc<std::int32_t>(
    const CSRGraph<std::int32_t>&, int, PartitionedCCStats*);
extern template ComponentLabels<std::int64_t> partitioned_cc<std::int64_t>(
    const CSRGraph<std::int64_t>&, int, PartitionedCCStats*);

}  // namespace afforest
