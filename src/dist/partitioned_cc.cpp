#include "dist/partitioned_cc.hpp"

namespace afforest {

int partition_of(std::int64_t v, std::int64_t num_nodes, int num_parts) {
  if (num_nodes == 0) return 0;
  // 128-bit intermediate: v * num_parts overflows int64 once n crosses
  // ~2^63 / P, and the whole point of the templatized kernel is that n is
  // no longer capped at int32.
  const auto p = static_cast<int>(
      (static_cast<__int128>(v) * num_parts) / num_nodes);
  return p >= num_parts ? num_parts - 1 : p;
}

std::int64_t partition_first(int p, std::int64_t num_nodes, int num_parts) {
  // ceil(p * n / P) — the least v with floor(v * P / n) == p.
  const auto num = static_cast<__int128>(p) * num_nodes;
  return static_cast<std::int64_t>((num + num_parts - 1) / num_parts);
}

template ComponentLabels<std::int32_t> partitioned_cc<std::int32_t>(
    const CSRGraph<std::int32_t>&, int, PartitionedCCStats*);
template ComponentLabels<std::int64_t> partitioned_cc<std::int64_t>(
    const CSRGraph<std::int64_t>&, int, PartitionedCCStats*);

}  // namespace afforest
