#include "dist/partitioned_cc.hpp"

#include <stdexcept>
#include <unordered_set>

#include "cc/afforest.hpp"
#include "util/parallel.hpp"

namespace afforest {

int partition_of(std::int64_t v, std::int64_t num_nodes, int num_parts) {
  if (num_nodes == 0) return 0;
  const auto p = static_cast<int>((v * num_parts) / num_nodes);
  return p >= num_parts ? num_parts - 1 : p;
}

ComponentLabels<std::int32_t> partitioned_cc(const Graph& g, int num_parts,
                                             PartitionedCCStats* stats) {
  using NodeID = std::int32_t;
  if (num_parts < 1) throw std::invalid_argument("num_parts must be >= 1");
  const std::int64_t n = g.num_nodes();
  auto comp = identity_labels<NodeID>(n);

  // Superstep 1: link internal edges.  Each rank touches only its own
  // block of comp, so ranks can be simulated by one parallel loop; the
  // lock-free link keeps the simulation faithful to per-rank concurrency.
  std::int64_t internal = 0, boundary = 0;
#pragma omp parallel for reduction(+ : internal, boundary) \
    schedule(dynamic, 2048)
  for (std::int64_t u = 0; u < n; ++u) {
    const int pu = partition_of(u, n, num_parts);
    for (NodeID v : g.out_neigh(static_cast<NodeID>(u))) {
      if (static_cast<NodeID>(u) >= v) continue;  // each unordered edge once
      if (partition_of(v, n, num_parts) == pu) {
        link(static_cast<NodeID>(u), v, comp);
        ++internal;
      } else {
        ++boundary;
      }
    }
  }
  compress_all(comp);

  // Superstep 2: translate boundary edges into root-pair messages and
  // deduplicate (a real implementation aggregates messages per rank pair).
  struct PairHash {
    std::size_t operator()(const std::uint64_t& k) const noexcept {
      return std::hash<std::uint64_t>{}(k);
    }
  };
  std::unordered_set<std::uint64_t, PairHash> quotient;
  std::unordered_set<NodeID> roots;
  for (std::int64_t u = 0; u < n; ++u) {
    const int pu = partition_of(u, n, num_parts);
    for (NodeID v : g.out_neigh(static_cast<NodeID>(u))) {
      if (static_cast<NodeID>(u) >= v) continue;
      if (partition_of(v, n, num_parts) == pu) continue;
      const NodeID ru = comp[u];
      const NodeID rv = comp[v];
      if (ru == rv) continue;
      const NodeID lo = std::min(ru, rv);
      const NodeID hi = std::max(ru, rv);
      quotient.insert((static_cast<std::uint64_t>(hi) << 32) |
                      static_cast<std::uint32_t>(lo));
      roots.insert(ru);
      roots.insert(rv);
    }
  }

  // Superstep 3: merge the quotient and finalize.
  for (const auto key : quotient) {
    const auto hi = static_cast<NodeID>(key >> 32);
    const auto lo = static_cast<NodeID>(key & 0xFFFFFFFFu);
    link(hi, lo, comp);
  }
  compress_all(comp);

  if (stats != nullptr) {
    stats->num_parts = num_parts;
    stats->internal_edges = internal;
    stats->boundary_edges = boundary;
    stats->quotient_vertices = static_cast<std::int64_t>(roots.size());
    stats->quotient_edges = static_cast<std::int64_t>(quotient.size());
  }
  return comp;
}

}  // namespace afforest
