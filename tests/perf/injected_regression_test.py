#!/usr/bin/env python3
"""ctest driver: bench_compare must flag a doctored 2x slowdown.

Takes the checked-in baseline, doubles every 'afforest' timing quantile in
a temp copy, and asserts scripts/bench_compare.py exits 1 (regression) in
ratio mode — the exact configuration the perf-smoke CI job runs with.
Also asserts the doctored comparison names afforest, not some other
algorithm, so the match keys stay honest.
"""

import json
import subprocess
import sys
import tempfile


def main():
    if len(sys.argv) != 3:
        print("usage: injected_regression_test.py <bench_compare.py> "
              "<baseline.json>", file=sys.stderr)
        return 2
    compare, baseline = sys.argv[1], sys.argv[2]

    with open(baseline, "r", encoding="utf-8") as f:
        doc = json.load(f)
    doctored = 0
    for rec in doc["records"]:
        if rec.get("algorithm") == "afforest":
            for k in ("median_s", "p25_s", "p75_s", "min_s", "max_s"):
                rec["trials"][k] *= 2.0
            doctored += 1
    if doctored == 0:
        print("FAIL: baseline has no afforest records to doctor")
        return 1

    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tmp:
        json.dump(doc, tmp)
        candidate = tmp.name

    proc = subprocess.run(
        [sys.executable, compare, "--baseline", baseline,
         "--candidate", candidate, "--mode", "ratio",
         "--threshold", "0.25", "--min-seconds", "2e-3"],
        capture_output=True, text=True)
    print(proc.stdout, end="")

    if proc.returncode != 1:
        print(f"FAIL: expected exit 1 (regression), got {proc.returncode}")
        return 1
    if "REGRESSION" not in proc.stdout or "afforest" not in proc.stdout:
        print("FAIL: regression report does not mention afforest")
        return 1
    print("PASS: injected 2x afforest slowdown detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
