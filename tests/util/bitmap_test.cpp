#include "util/bitmap.hpp"

#include <gtest/gtest.h>

namespace afforest {
namespace {

TEST(Bitmap, StartsAllClear) {
  Bitmap bm(200);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_FALSE(bm.get_bit(i));
  EXPECT_EQ(bm.count(), 0);
}

TEST(Bitmap, SetBitIsVisible) {
  Bitmap bm(100);
  bm.set_bit(0);
  bm.set_bit(63);
  bm.set_bit(64);
  bm.set_bit(99);
  EXPECT_TRUE(bm.get_bit(0));
  EXPECT_TRUE(bm.get_bit(63));
  EXPECT_TRUE(bm.get_bit(64));
  EXPECT_TRUE(bm.get_bit(99));
  EXPECT_FALSE(bm.get_bit(1));
  EXPECT_EQ(bm.count(), 4);
}

TEST(Bitmap, CountHandlesNonWordAlignedTail) {
  Bitmap bm(65);  // one full word + 1 bit
  bm.set_all();
  EXPECT_EQ(bm.count(), 65);
}

TEST(Bitmap, CountExactWordMultiple) {
  Bitmap bm(128);
  bm.set_all();
  EXPECT_EQ(bm.count(), 128);
}

TEST(Bitmap, ResetClearsEverything) {
  Bitmap bm(300);
  bm.set_all();
  bm.reset();
  EXPECT_EQ(bm.count(), 0);
}

TEST(Bitmap, AtomicSetUnderContention) {
  const std::size_t n = 1 << 16;
  Bitmap bm(n);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i)
    bm.set_bit_atomic(static_cast<std::size_t>(i));
  EXPECT_EQ(bm.count(), static_cast<std::int64_t>(n));
}

TEST(Bitmap, AtomicSetSameWordFromManyIterations) {
  Bitmap bm(64);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < 64; ++i) bm.set_bit_atomic(i);
  EXPECT_EQ(bm.count(), 64);
}

TEST(Bitmap, SwapExchangesState) {
  Bitmap a(10);
  Bitmap b(20);
  a.set_bit(3);
  a.swap(b);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_TRUE(b.get_bit(3));
  EXPECT_EQ(a.count(), 0);
}

}  // namespace
}  // namespace afforest
