#include "util/sliding_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace afforest {
namespace {

TEST(SlidingQueue, StartsEmpty) {
  SlidingQueue<int> q(16);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(SlidingQueue, PushThenSlideExposesWindow) {
  SlidingQueue<int> q(16);
  q.push_back(1);
  q.push_back(2);
  EXPECT_TRUE(q.empty());  // not visible until slide
  q.slide_window();
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(*(q.begin()), 1);
  EXPECT_EQ(*(q.begin() + 1), 2);
}

TEST(SlidingQueue, SecondSlidePromotesNewAppends) {
  SlidingQueue<int> q(16);
  q.push_back(1);
  q.slide_window();
  q.push_back(2);
  q.push_back(3);
  q.slide_window();
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(*(q.begin()), 2);
}

TEST(SlidingQueue, SlideWithNoAppendsGivesEmptyWindow) {
  SlidingQueue<int> q(16);
  q.push_back(1);
  q.slide_window();
  q.slide_window();
  EXPECT_TRUE(q.empty());
}

TEST(SlidingQueue, ResetAllowsReuse) {
  SlidingQueue<int> q(8);
  q.push_back(1);
  q.slide_window();
  q.reset();
  EXPECT_TRUE(q.empty());
  q.push_back(9);
  q.slide_window();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(*q.begin(), 9);
}

TEST(QueueBuffer, FlushMovesElementsToShared) {
  SlidingQueue<int> q(100);
  {
    QueueBuffer<int> buf(q, 4);
    buf.push_back(10);
    buf.push_back(11);
    buf.flush();
  }
  q.slide_window();
  ASSERT_EQ(q.size(), 2u);
}

TEST(QueueBuffer, AutoFlushesWhenFull) {
  SlidingQueue<int> q(100);
  QueueBuffer<int> buf(q, 2);
  buf.push_back(1);
  buf.push_back(2);
  buf.push_back(3);  // triggers flush of {1,2}
  buf.flush();
  q.slide_window();
  EXPECT_EQ(q.size(), 3u);
}

TEST(QueueBuffer, ParallelProducersDeliverEveryElement) {
  const int n = 100000;
  SlidingQueue<int> q(n);
#pragma omp parallel
  {
    QueueBuffer<int> buf(q, 64);
#pragma omp for schedule(static) nowait
    for (int i = 0; i < n; ++i) buf.push_back(i);
    buf.flush();
  }
  q.slide_window();
  ASSERT_EQ(q.size(), static_cast<std::size_t>(n));
  std::vector<int> got(q.begin(), q.end());
  std::sort(got.begin(), got.end());
  for (int i = 0; i < n; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace afforest
