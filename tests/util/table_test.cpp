#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace afforest {
namespace {

TEST(TextTable, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, PrintsHeaderSeparatorAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // 4 lines: header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAlignToWidestCell) {
  TextTable t({"h"});
  t.add_row({"wide-cell-content"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string header_line, sep_line;
  std::getline(is, header_line);
  std::getline(is, sep_line);
  EXPECT_GE(sep_line.size(), std::string("wide-cell-content").size());
}

TEST(TextTable, FmtRespectsPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(1.0, 0), "1");
}

TEST(TextTable, FmtIntHandlesNegatives) {
  EXPECT_EQ(TextTable::fmt_int(-42), "-42");
  EXPECT_EQ(TextTable::fmt_int(0), "0");
}

TEST(TextTable, RowsAccessorExposesCells) {
  TextTable t({"a"});
  t.add_row({"v1"});
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0], "v1");
}

TEST(TextTable, CsvOutputBasic) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable t({"name"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(TextTable, EmptyTablePrintsHeaderOnly) {
  TextTable t({"col"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

}  // namespace
}  // namespace afforest
