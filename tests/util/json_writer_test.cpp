// JSON writer tests: RFC 8259 escaping, double round-tripping, comma and
// nesting discipline.  The writer backs the bench harness's --json output,
// so malformed text here would silently poison the perf-smoke pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "util/json_writer.hpp"

namespace afforest::json {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(escape("kron-16"), "kron-16");
  EXPECT_EQ(escape(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslash) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("c:\\tmp"), "c:\\\\tmp");
}

TEST(JsonEscape, EscapesNamedControlCharacters) {
  EXPECT_EQ(escape("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
}

TEST(JsonEscape, EscapesOtherControlCharactersAsUnicode) {
  EXPECT_EQ(escape(std::string("x\x01y", 3)), "x\\u0001y");
  EXPECT_EQ(escape(std::string("\x1f", 1)), "\\u001f");
}

TEST(JsonEscape, LeavesUtf8BytesAlone) {
  // Multi-byte UTF-8 (here: e-acute) is valid in JSON strings unescaped.
  EXPECT_EQ(escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonFormatDouble, IntegersStayShort) {
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(42.0), "42");
  EXPECT_EQ(format_double(-3.0), "-3");
}

TEST(JsonFormatDouble, RoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 2.2250738585072014e-308,
                         123456.789012345, -0.000123456789}) {
    const std::string text = format_double(v);
    EXPECT_EQ(std::stod(text), v) << "text: " << text;
  }
}

TEST(JsonFormatDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, EmptyContainers) {
  Writer w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
  Writer a;
  a.begin_array().end_array();
  EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriter, CommasBetweenObjectMembers) {
  Writer w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").value("x");
  w.key("c").value(true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":true})");
}

TEST(JsonWriter, CommasBetweenArrayElements) {
  Writer w;
  w.begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, NestedContainersKeepCommaDiscipline) {
  Writer w;
  w.begin_object();
  w.key("records").begin_array();
  w.begin_object().key("g").value("kron").end_object();
  w.begin_object().key("g").value("road").end_object();
  w.end_array();
  w.key("n").value(2);
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"records":[{"g":"kron"},{"g":"road"}],"n":2})");
}

TEST(JsonWriter, ValueTypesRenderCorrectly) {
  Writer w;
  w.begin_object();
  w.key("u").value(std::uint64_t{18446744073709551615ULL});
  w.key("i").value(std::int64_t{-42});
  w.key("d").value(1.5);
  w.key("b").value(false);
  w.key("z").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"u":18446744073709551615,"i":-42,"d":1.5,"b":false,"z":null})");
}

TEST(JsonWriter, KeysAreEscaped) {
  Writer w;
  w.begin_object();
  w.key("we\"ird").value(1);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"we\"ird":1})");
}

}  // namespace
}  // namespace afforest::json
