// Typed instantiation coverage: pvector and the atomic helpers must work
// for every element width the library uses (labels are int32/int64,
// flags are uint8, offsets are int64, measures are double).
#include <gtest/gtest.h>

#include <cstdint>

#include "util/parallel.hpp"
#include "util/pvector.hpp"

namespace afforest {
namespace {

template <typename T>
class PVectorTyped : public ::testing::Test {};

using ElementTypes = ::testing::Types<std::int8_t, std::uint8_t,
                                      std::int32_t, std::uint32_t,
                                      std::int64_t, float, double>;
TYPED_TEST_SUITE(PVectorTyped, ElementTypes);

TYPED_TEST(PVectorTyped, FillAndReadBack) {
  pvector<TypeParam> v(1000);
  v.fill(TypeParam{7});
  for (auto x : v) ASSERT_EQ(x, TypeParam{7});
}

TYPED_TEST(PVectorTyped, PushBackGrowth) {
  pvector<TypeParam> v;
  for (int i = 0; i < 300; ++i)
    v.push_back(static_cast<TypeParam>(i % 100));
  ASSERT_EQ(v.size(), 300u);
  for (int i = 0; i < 300; ++i)
    ASSERT_EQ(v[static_cast<std::size_t>(i)],
              static_cast<TypeParam>(i % 100));
}

TYPED_TEST(PVectorTyped, CloneIndependence) {
  pvector<TypeParam> v(64, TypeParam{1});
  auto c = v.clone();
  c[0] = TypeParam{0};
  EXPECT_EQ(v[0], TypeParam{1});
}

TYPED_TEST(PVectorTyped, ResizePreservesPrefix) {
  pvector<TypeParam> v(8, TypeParam{3});
  v.resize(128);
  for (int i = 0; i < 8; ++i) ASSERT_EQ(v[i], TypeParam{3});
}

struct PodPair {
  std::int32_t a;
  std::int32_t b;
};

TEST(PVectorPod, StructElementsWork) {
  pvector<PodPair> v(10, PodPair{1, 2});
  EXPECT_EQ(v[9].a, 1);
  EXPECT_EQ(v[9].b, 2);
  v.push_back(PodPair{3, 4});
  EXPECT_EQ(v.back().b, 4);
}

template <typename T>
class AtomicHelpersTyped : public ::testing::Test {};

using AtomicTypes =
    ::testing::Types<std::int32_t, std::uint32_t, std::int64_t,
                     std::uint64_t>;
TYPED_TEST_SUITE(AtomicHelpersTyped, AtomicTypes);

TYPED_TEST(AtomicHelpersTyped, CasRoundTrip) {
  TypeParam x{5};
  EXPECT_TRUE(compare_and_swap(x, TypeParam{5}, TypeParam{9}));
  EXPECT_FALSE(compare_and_swap(x, TypeParam{5}, TypeParam{1}));
  EXPECT_EQ(x, TypeParam{9});
}

TYPED_TEST(AtomicHelpersTyped, FetchMinAndAdd) {
  TypeParam x{100};
  EXPECT_TRUE(atomic_fetch_min(x, TypeParam{40}));
  EXPECT_EQ(x, TypeParam{40});
  EXPECT_EQ(fetch_and_add(x, TypeParam{2}), TypeParam{40});
  EXPECT_EQ(atomic_load(x), TypeParam{42});
}

TYPED_TEST(AtomicHelpersTyped, ParallelIncrementExact) {
  TypeParam counter{0};
  const int n = 50000;
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) fetch_and_add(counter, TypeParam{1});
  EXPECT_EQ(counter, static_cast<TypeParam>(n));
}

}  // namespace
}  // namespace afforest
