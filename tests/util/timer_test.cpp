#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace afforest {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();
  EXPECT_GE(t.seconds(), 0.009);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(Timer, UnitConversionsAreConsistent) {
  Timer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.stop();
  EXPECT_NEAR(t.millisecs(), t.seconds() * 1e3, 1e-9);
  EXPECT_NEAR(t.microsecs(), t.seconds() * 1e6, 1e-6);
}

TEST(Timer, RestartOverwritesPreviousMeasurement) {
  Timer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.stop();
  const double first = t.seconds();
  t.start();
  t.stop();
  EXPECT_LT(t.seconds(), first);
}

TEST(ScopedTimer, AccumulatesIntoSink) {
  double total = 0;
  {
    ScopedTimer st(total);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(total, 0.004);
  const double after_first = total;
  {
    ScopedTimer st(total);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(total, after_first);
}

}  // namespace
}  // namespace afforest
