#include "util/platform.hpp"

#include <gtest/gtest.h>

#include <omp.h>

namespace afforest {
namespace {

TEST(Platform, HardwareThreadsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(Platform, SetNumThreadsIsObserved) {
  const int original = num_threads();
  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2);
  int seen = 0;
#pragma omp parallel
  {
#pragma omp single
    seen = omp_get_num_threads();
  }
  EXPECT_LE(seen, 2);
  set_num_threads(original);
}

TEST(Platform, SetNumThreadsClampsBelowOne) {
  const int original = num_threads();
  set_num_threads(0);
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(-5);
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(original);
}

TEST(Platform, ThreadIdZeroOutsideParallelRegion) {
  EXPECT_EQ(thread_id(), 0);
}

TEST(Platform, SummaryMentionsThreadCounts) {
  const auto s = platform_summary();
  EXPECT_NE(s.find("hardware_threads="), std::string::npos);
  EXPECT_NE(s.find("omp_max_threads="), std::string::npos);
}

}  // namespace
}  // namespace afforest
