#include "util/pvector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <utility>

namespace afforest {
namespace {

TEST(PVector, DefaultConstructedIsEmpty) {
  pvector<int> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.begin(), v.end());
}

TEST(PVector, SizedConstructionAllocates) {
  pvector<int> v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_FALSE(v.empty());
}

TEST(PVector, FillConstructorSetsEveryElement) {
  pvector<std::int64_t> v(1000, 42);
  for (auto x : v) EXPECT_EQ(x, 42);
}

TEST(PVector, InitializerList) {
  pvector<int> v{1, 2, 3};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
}

TEST(PVector, FillOverwritesAllElements) {
  pvector<int> v(257, 1);
  v.fill(-7);
  for (auto x : v) EXPECT_EQ(x, -7);
}

TEST(PVector, PushBackGrowsAcrossCapacityBoundaries) {
  pvector<int> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i);
}

TEST(PVector, ResizeSmallerKeepsPrefix) {
  pvector<int> v(10);
  std::iota(v.begin(), v.end(), 0);
  v.resize(4);
  ASSERT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(PVector, ResizeLargerPreservesOldElements) {
  pvector<int> v(4);
  std::iota(v.begin(), v.end(), 10);
  v.resize(100);
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], 10 + i);
}

TEST(PVector, ReserveDoesNotChangeSize) {
  pvector<int> v;
  v.push_back(5);
  v.reserve(1000);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_GE(v.capacity(), 1000u);
  EXPECT_EQ(v[0], 5);
}

TEST(PVector, CloneIsDeep) {
  pvector<int> v(8, 3);
  pvector<int> c = v.clone();
  c[0] = 99;
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(c[0], 99);
  EXPECT_EQ(c.size(), v.size());
}

TEST(PVector, MoveConstructionTransfersOwnership) {
  pvector<int> v(5, 1);
  const int* data = v.data();
  pvector<int> w(std::move(v));
  EXPECT_EQ(w.data(), data);
  EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  EXPECT_EQ(w.size(), 5u);
}

TEST(PVector, MoveAssignmentReleasesOldStorage) {
  pvector<int> v(5, 1);
  pvector<int> w(3, 2);
  w = std::move(v);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_EQ(w[0], 1);
}

TEST(PVector, SwapExchangesContents) {
  pvector<int> a(2, 1);
  pvector<int> b(3, 9);
  a.swap(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a[0], 9);
  EXPECT_EQ(b[0], 1);
}

TEST(PVector, FrontBackAccessors) {
  pvector<int> v{7, 8, 9};
  EXPECT_EQ(v.front(), 7);
  EXPECT_EQ(v.back(), 9);
  v.back() = 10;
  EXPECT_EQ(v[2], 10);
}

TEST(PVector, ClearResetsSizeButKeepsCapacity) {
  pvector<int> v(100, 0);
  const auto cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

TEST(PVector, LargeParallelFill) {
  pvector<std::int32_t> v(1 << 20);
  v.fill(123);
  std::int64_t sum = 0;
  for (auto x : v) sum += x;
  EXPECT_EQ(sum, 123LL * (1 << 20));
}

}  // namespace
}  // namespace afforest
