#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace afforest {
namespace {

CommandLine parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CommandLine(static_cast<int>(argv.size()), argv.data());
}

TEST(CommandLine, SpaceSeparatedValue) {
  auto cl = parse({"--scale", "16"});
  EXPECT_EQ(cl.get_int("scale", 0), 16);
}

TEST(CommandLine, EqualsSeparatedValue) {
  auto cl = parse({"--scale=18"});
  EXPECT_EQ(cl.get_int("scale", 0), 18);
}

TEST(CommandLine, MissingFlagReturnsDefault) {
  auto cl = parse({});
  EXPECT_EQ(cl.get_int("scale", 12), 12);
  EXPECT_EQ(cl.get_string("graph", "urand"), "urand");
  EXPECT_DOUBLE_EQ(cl.get_double("frac", 0.5), 0.5);
}

TEST(CommandLine, BareFlagIsTrueBoolean) {
  auto cl = parse({"--verbose"});
  EXPECT_TRUE(cl.get_bool("verbose", false));
}

TEST(CommandLine, ExplicitBooleanValues) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
}

TEST(CommandLine, DoubleParsing) {
  auto cl = parse({"--frac", "0.125"});
  EXPECT_DOUBLE_EQ(cl.get_double("frac", 0), 0.125);
}

TEST(CommandLine, NonFlagArgumentThrows) {
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
}

TEST(CommandLine, HelpFlagDetected) {
  EXPECT_TRUE(parse({"--help"}).help_requested());
  EXPECT_TRUE(parse({"-h"}).help_requested());
  EXPECT_FALSE(parse({}).help_requested());
}

TEST(CommandLine, MultipleFlagsParseIndependently) {
  auto cl = parse({"--graph", "web", "--scale=14", "--trials", "3"});
  EXPECT_EQ(cl.get_string("graph", ""), "web");
  EXPECT_EQ(cl.get_int("scale", 0), 14);
  EXPECT_EQ(cl.get_int("trials", 0), 3);
}

TEST(CommandLine, UnknownFlagsReportsUnqueried) {
  auto cl = parse({"--known", "1", "--typo", "2"});
  (void)cl.get_int("known", 0);
  const auto unknown = cl.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(CommandLine, DescribedFlagsAreNotUnknown) {
  auto cl = parse({"--documented", "1"});
  cl.describe("documented", "a documented flag");
  EXPECT_TRUE(cl.unknown_flags().empty());
}

}  // namespace
}  // namespace afforest
