#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace afforest {
namespace {

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
}

TEST(Stats, MedianEvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 4}), 2.5);
}

TEST(Stats, MedianSingleElement) { EXPECT_DOUBLE_EQ(median({7}), 7.0); }

TEST(Stats, MedianEmptyIsZero) { EXPECT_DOUBLE_EQ(median({}), 0.0); }

TEST(Stats, PercentileEndpoints) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
}

TEST(Stats, PercentileInterpolatesLinearly) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Stats, PercentileUnsortedInput) {
  std::vector<double> v{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Stats, GeometricMeanOfPowers) {
  EXPECT_NEAR(geometric_mean({1, 100}), 10.0, 1e-9);
  EXPECT_NEAR(geometric_mean({2, 8}), 4.0, 1e-9);
}

TEST(Stats, GeometricMeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
}

TEST(Stats, MeanAndStddev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138089935, 1e-6);
}

TEST(Stats, StddevFewerThanTwoSamplesIsZero) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(Stats, TrialSummaryFields) {
  const auto s = summarize_trials({3, 1, 2, 4, 5});
  EXPECT_DOUBLE_EQ(s.median_s, 3.0);
  EXPECT_DOUBLE_EQ(s.min_s, 1.0);
  EXPECT_DOUBLE_EQ(s.max_s, 5.0);
  EXPECT_EQ(s.trials, 5u);
  EXPECT_LE(s.p25_s, s.median_s);
  EXPECT_GE(s.p75_s, s.median_s);
}

TEST(Stats, TrialSummaryEmpty) {
  const auto s = summarize_trials({});
  EXPECT_EQ(s.trials, 0u);
  EXPECT_DOUBLE_EQ(s.median_s, 0.0);
}

}  // namespace
}  // namespace afforest
