#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace afforest {
namespace {

TEST(PrefixSum, EmptyInputYieldsSingleZero) {
  pvector<std::int64_t> empty;
  auto prefix = parallel_prefix_sum(empty);
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix[0], 0);
}

TEST(PrefixSum, SingleElement) {
  pvector<std::int64_t> v{7};
  auto prefix = parallel_prefix_sum(v);
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(prefix[0], 0);
  EXPECT_EQ(prefix[1], 7);
}

TEST(PrefixSum, MatchesSerialReferenceOnRandomInput) {
  Xoshiro256 rng(11);
  pvector<std::int32_t> v(10007);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next_bounded(100));
  auto prefix = parallel_prefix_sum<std::int32_t, std::int64_t>(v);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(prefix[i], acc) << "at index " << i;
    acc += v[i];
  }
  EXPECT_EQ(prefix[v.size()], acc);
}

TEST(PrefixSum, ExactlyBlockBoundarySizes) {
  // Sizes that stress the block partitioning (128 blocks internally).
  for (std::size_t n : {127u, 128u, 129u, 255u, 256u, 4096u}) {
    pvector<std::int64_t> v(n, 1);
    auto prefix = parallel_prefix_sum(v);
    for (std::size_t i = 0; i <= n; ++i)
      ASSERT_EQ(prefix[i], static_cast<std::int64_t>(i)) << "n=" << n;
  }
}

TEST(CompareAndSwap, SucceedsOnExpectedValue) {
  std::int32_t x = 5;
  EXPECT_TRUE(compare_and_swap(x, 5, 9));
  EXPECT_EQ(x, 9);
}

TEST(CompareAndSwap, FailsOnMismatchWithoutModifying) {
  std::int32_t x = 5;
  EXPECT_FALSE(compare_and_swap(x, 4, 9));
  EXPECT_EQ(x, 5);
}

TEST(AtomicFetchMin, ShrinksValue) {
  std::int64_t x = 10;
  EXPECT_TRUE(atomic_fetch_min(x, std::int64_t{3}));
  EXPECT_EQ(x, 3);
}

TEST(AtomicFetchMin, IgnoresLargerValue) {
  std::int64_t x = 10;
  EXPECT_FALSE(atomic_fetch_min(x, std::int64_t{11}));
  EXPECT_EQ(x, 10);
  EXPECT_FALSE(atomic_fetch_min(x, std::int64_t{10}));
  EXPECT_EQ(x, 10);
}

TEST(AtomicFetchMin, ParallelMinIsGlobalMin) {
  std::int64_t x = 1 << 30;
  const std::int64_t n = 100000;
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 1; i <= n; ++i) atomic_fetch_min(x, i);
  EXPECT_EQ(x, 1);
}

TEST(FetchAndAdd, ReturnsPreviousValue) {
  std::int64_t x = 10;
  EXPECT_EQ(fetch_and_add(x, std::int64_t{5}), 10);
  EXPECT_EQ(x, 15);
}

TEST(FetchAndAdd, ParallelCountsAreExact) {
  std::int64_t counter = 0;
  const std::int64_t n = 200000;
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) fetch_and_add(counter, std::int64_t{1});
  EXPECT_EQ(counter, n);
}

TEST(ParallelSum, MatchesSerial) {
  pvector<std::int32_t> v(12345);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int32_t>(i % 7);
  std::int64_t expect = 0;
  for (auto x : v) expect += x;
  EXPECT_EQ(parallel_sum(v), expect);
}

TEST(ParallelMax, FindsMaximum) {
  pvector<std::int32_t> v(1000, 0);
  v[317] = 42;
  EXPECT_EQ(parallel_max(v), 42);
}

TEST(ParallelMax, EmptyReturnsLowest) {
  pvector<std::int32_t> v;
  EXPECT_EQ(parallel_max(v), std::numeric_limits<std::int32_t>::lowest());
}

TEST(ParallelCountIf, CountsMatchingElements) {
  pvector<std::int32_t> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int32_t>(i);
  EXPECT_EQ(parallel_count_if(v, [](std::int32_t x) { return x % 2 == 0; }),
            500);
}

TEST(AtomicLoadStore, RoundTrip) {
  std::int32_t x = 0;
  atomic_store(x, 77);
  EXPECT_EQ(atomic_load(x), 77);
}

}  // namespace
}  // namespace afforest
