// CRC32C helper (src/util/crc32c.hpp): the checksum the durability layer
// stamps on every WAL record and checkpoint payload.
#include "util/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace afforest {
namespace {

TEST(Crc32cTest, StandardCheckValue) {
  // The canonical CRC32C check value (RFC 3720 appendix, iSCSI): any
  // implementation must produce 0xE3069283 for "123456789".
  const std::string msg = "123456789";
  EXPECT_EQ(crc32c(msg.data(), msg.size()), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t oneshot = crc32c(msg.data(), msg.size());
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    std::uint32_t state = crc32c_init();
    state = crc32c_update(state, msg.data(), split);
    state = crc32c_update(state, msg.data() + split, msg.size() - split);
    EXPECT_EQ(crc32c_finish(state), oneshot) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  std::string msg = "durability";
  const std::uint32_t original = crc32c(msg.data(), msg.size());
  for (std::size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = msg;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      EXPECT_NE(crc32c(mutated.data(), mutated.size()), original)
          << "flip byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, AllZeroBuffersOfDifferentLengthDiffer) {
  const std::string a(8, '\0');
  const std::string b(9, '\0');
  EXPECT_NE(crc32c(a.data(), a.size()), crc32c(b.data(), b.size()));
}

}  // namespace
}  // namespace afforest
