#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace afforest {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.next_bounded(17);
    ASSERT_LT(x, 17u);
  }
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.next_bounded(0), 0u);
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_bounded(1), 0u);
}

TEST(Xoshiro256, BoundedCoversFullRange) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, DoubleMeanIsRoughlyHalf) {
  Xoshiro256 rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(13);
  const int buckets = 10, n = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < n; ++i)
    ++counts[rng.next_bounded(static_cast<std::uint64_t>(buckets))];
  for (int c : counts) {
    EXPECT_GT(c, n / buckets - n / 50);
    EXPECT_LT(c, n / buckets + n / 50);
  }
}

TEST(Xoshiro256, SplitStreamsAreIndependentAndDeterministic) {
  Xoshiro256 root(42);
  Xoshiro256 s1 = root.split(1);
  Xoshiro256 s2 = root.split(2);
  Xoshiro256 s1_again = root.split(1);
  EXPECT_NE(s1.next(), s2.next());
  Xoshiro256 s1_copy = Xoshiro256(42).split(1);
  EXPECT_EQ(s1_again.next(), s1_copy.next());
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() ==
                std::numeric_limits<std::uint64_t>::max());
  Xoshiro256 rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace afforest
