#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace afforest {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.next_bounded(17);
    ASSERT_LT(x, 17u);
  }
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.next_bounded(0), 0u);
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_bounded(1), 0u);
}

TEST(Xoshiro256, BoundedCoversFullRange) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, DoubleMeanIsRoughlyHalf) {
  Xoshiro256 rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(13);
  const int buckets = 10, n = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < n; ++i)
    ++counts[rng.next_bounded(static_cast<std::uint64_t>(buckets))];
  for (int c : counts) {
    EXPECT_GT(c, n / buckets - n / 50);
    EXPECT_LT(c, n / buckets + n / 50);
  }
}

TEST(Xoshiro256, SplitStreamsAreIndependentAndDeterministic) {
  Xoshiro256 root(42);
  Xoshiro256 s1 = root.split(1);
  Xoshiro256 s2 = root.split(2);
  Xoshiro256 s1_again = root.split(1);
  EXPECT_NE(s1.next(), s2.next());
  Xoshiro256 s1_copy = Xoshiro256(42).split(1);
  EXPECT_EQ(s1_again.next(), s1_copy.next());
}

TEST(Xoshiro256, StateRoundTripsThroughConstructor) {
  Xoshiro256 a(99);
  a.next();
  a.next();
  Xoshiro256 b(a.state());
  for (int i = 0; i < 64; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, SplitMixesAllFourStateWords) {
  // Regression: split() used to seed the child from state_[0] alone, so
  // two parents that differed only in state_[1..3] handed every worker
  // identical "independent" streams.  Each state word must now perturb
  // the child.
  const Xoshiro256 base(7);
  const auto words = base.state();
  for (int w = 1; w < 4; ++w) {
    auto tweaked = words;
    tweaked[w] ^= 0xDEADBEEFULL;
    Xoshiro256 parent_a(words), parent_b(tweaked);
    Xoshiro256 child_a = parent_a.split(3);
    Xoshiro256 child_b = parent_b.split(3);
    EXPECT_NE(child_a.next(), child_b.next())
        << "child stream ignores parent state word " << w;
  }
}

TEST(Xoshiro256, SplitStreamValuesArePinned) {
  // Golden values for the post-fix derivation: the generator suite's
  // block-parallel generators (kronecker, uniform) consume these streams,
  // so a silent change here would silently change every generated graph.
  // Refresh procedure: docs/BENCHMARKING.md ("Baseline refresh").
  Xoshiro256 root(42);
  EXPECT_EQ(root.split(0).next(), 1678253153170778783ULL);
  EXPECT_EQ(root.split(1).next(), 13476142359399101553ULL);
  EXPECT_EQ(root.split(2).next(), 4722625694318003040ULL);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() ==
                std::numeric_limits<std::uint64_t>::max());
  Xoshiro256 rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace afforest
