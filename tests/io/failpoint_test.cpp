// Failpoint plumbing (src/util/failpoint.hpp): env parsing, deterministic
// probability draws, and the armed sites threaded through io, the builder,
// and pvector allocation.
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include "../support/scoped_env.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "util/pvector.hpp"

namespace afforest {
namespace {

using ::afforest::testing::ScopedEnv;

/// Sets AFFOREST_FAILPOINTS for one scope and re-arms the registry; the
/// previous configuration is restored (and re-parsed) on destruction.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const char* spec, const char* seed = nullptr)
      : env_("AFFOREST_FAILPOINTS", spec),
        seed_env_("AFFOREST_FAILPOINT_SEED", seed) {
    failpoints_reload();
  }
  ~ScopedFailpoints() {
    // env_ members restore the variables after this runs, so reload once
    // more from the *restored* environment in reverse order.
  }
  ScopedFailpoints(const ScopedFailpoints&) = delete;

 private:
  struct Reloader {
    ~Reloader() { failpoints_reload(); }
  };
  Reloader reloader_;  // destroyed LAST → reload sees the restored env
  ScopedEnv env_;
  ScopedEnv seed_env_;
};

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_failpoint_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(FailpointTest, DisarmedByDefault) {
  ScopedFailpoints fp(nullptr);
  EXPECT_FALSE(failpoint_triggered("io.read.open"));
  EXPECT_NO_THROW(failpoint_maybe_fail("anything"));
}

TEST_F(FailpointTest, UnknownSiteNeverFires) {
  ScopedFailpoints fp("io.read.open=1");
  EXPECT_FALSE(failpoint_triggered("some.other.site"));
}

TEST_F(FailpointTest, ProbabilityOneAlwaysFires) {
  ScopedFailpoints fp("x=1");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(failpoint_triggered("x"));
}

TEST_F(FailpointTest, BareNameMeansAlways) {
  ScopedFailpoints fp("x");
  EXPECT_TRUE(failpoint_triggered("x"));
}

TEST_F(FailpointTest, ZeroProbabilityNeverFires) {
  ScopedFailpoints fp("x=0");
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(failpoint_triggered("x"));
}

TEST_F(FailpointTest, MultipleSitesParse) {
  ScopedFailpoints fp("a=1,b=0,c=1");
  EXPECT_TRUE(failpoint_triggered("a"));
  EXPECT_FALSE(failpoint_triggered("b"));
  EXPECT_TRUE(failpoint_triggered("c"));
}

TEST_F(FailpointTest, SubUnitProbabilityIsDeterministicPerSeed) {
  std::vector<bool> first, second;
  {
    ScopedFailpoints fp("x=0.5", "42");
    for (int i = 0; i < 256; ++i) first.push_back(failpoint_triggered("x"));
  }
  {
    ScopedFailpoints fp("x=0.5", "42");
    for (int i = 0; i < 256; ++i) second.push_back(failpoint_triggered("x"));
  }
  EXPECT_EQ(first, second);
  // ~half fire; being a fixed pseudorandom sequence this is exact, the
  // wide bounds just document the intent.
  const auto fired = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired, 64);
  EXPECT_LT(fired, 192);
}

TEST_F(FailpointTest, DifferentSeedsGiveDifferentSequences) {
  std::vector<bool> a, b;
  {
    ScopedFailpoints fp("x=0.5", "1");
    for (int i = 0; i < 256; ++i) a.push_back(failpoint_triggered("x"));
  }
  {
    ScopedFailpoints fp("x=0.5", "2");
    for (int i = 0; i < 256; ++i) b.push_back(failpoint_triggered("x"));
  }
  EXPECT_NE(a, b);
}

TEST_F(FailpointTest, MaybeFailThrowsFailpointErrorWithSite) {
  ScopedFailpoints fp("my.site=1");
  try {
    failpoint_maybe_fail("my.site");
    FAIL() << "expected FailpointError";
  } catch (const FailpointError& e) {
    EXPECT_EQ(e.site(), "my.site");
  }
}

// ------------------------------------------------- threaded-through ----

TEST_F(FailpointTest, IoReadOpenFailpointSurfacesAsIoError) {
  const auto p = path("g.el");
  write_edge_list(p, EdgeList<std::int32_t>{{0, 1}});
  ScopedFailpoints fp("io.read.open=1");
  try {
    read_edge_list(p);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kOpenFailed);
  }
}

TEST_F(FailpointTest, IoReadTruncateFailpointOnSerializedGraph) {
  const auto p = path("g.sg");
  write_serialized_graph(
      p, build_undirected(EdgeList<std::int32_t>{{0, 1}, {1, 2}}, 3));
  ScopedFailpoints fp("io.read.truncate=1");
  try {
    read_serialized_graph(p);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kTruncated);
  }
}

TEST_F(FailpointTest, IoReadTruncateFailpointOnLabels) {
  const auto p = path("c.cl");
  write_labels(p, pvector<std::int32_t>(16, 3));
  ScopedFailpoints fp("io.read.truncate=1");
  EXPECT_THROW(read_labels(p), IoError);
}

TEST_F(FailpointTest, IoWriteFailpointSurfacesAsIoError) {
  ScopedFailpoints fp("io.write=1");
  try {
    write_edge_list(path("w.el"), EdgeList<std::int32_t>{{0, 1}});
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kWriteFailed);
  }
}

TEST_F(FailpointTest, PvectorAllocationFailpointThrowsBadAlloc) {
  ScopedFailpoints fp("alloc.pvector=1");
  EXPECT_THROW(pvector<int> v(16), std::bad_alloc);
}

TEST_F(FailpointTest, BuilderFailpointThrowsFailpointError) {
  ScopedFailpoints fp("builder.build=1");
  EXPECT_THROW(build_undirected(EdgeList<std::int32_t>{{0, 1}}, 2),
               FailpointError);
}

// ------------------------------------------------- counters / one-shots ----

TEST_F(FailpointTest, HitAndFireCountersTally) {
  ScopedFailpoints fp("x=1,y=0");
  for (int i = 0; i < 5; ++i) (void)failpoint_triggered("x");
  for (int i = 0; i < 3; ++i) (void)failpoint_triggered("y");
  EXPECT_EQ(failpoint_hit_count("x"), 5u);
  EXPECT_EQ(failpoint_fire_count("x"), 5u);
  EXPECT_EQ(failpoint_hit_count("y"), 3u);
  EXPECT_EQ(failpoint_fire_count("y"), 0u);
  EXPECT_EQ(failpoints_total_fires(), 5u);
}

TEST_F(FailpointTest, CountersZeroForUnarmedSites) {
  ScopedFailpoints fp(nullptr);
  (void)failpoint_triggered("x");
  EXPECT_EQ(failpoint_hit_count("x"), 0u);
  EXPECT_EQ(failpoint_fire_count("x"), 0u);
  EXPECT_EQ(failpoints_total_fires(), 0u);
}

TEST_F(FailpointTest, SubUnitFireCountMatchesTriggeredSum) {
  ScopedFailpoints fp("x=0.5", "42");
  std::uint64_t fired = 0;
  for (int i = 0; i < 128; ++i)
    if (failpoint_triggered("x")) ++fired;
  EXPECT_EQ(failpoint_fire_count("x"), fired);
  EXPECT_EQ(failpoint_hit_count("x"), 128u);
}

TEST_F(FailpointTest, OneShotFiresExactlyOnNthHit) {
  ScopedFailpoints fp("x=@3");
  EXPECT_FALSE(failpoint_triggered("x"));
  EXPECT_FALSE(failpoint_triggered("x"));
  EXPECT_TRUE(failpoint_triggered("x"));  // 3rd evaluation
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(failpoint_triggered("x"));
  EXPECT_EQ(failpoint_fire_count("x"), 1u);
  EXPECT_EQ(failpoint_hit_count("x"), 8u);
}

TEST_F(FailpointTest, OneShotAtOneFiresImmediately) {
  ScopedFailpoints fp("x=@1");
  EXPECT_TRUE(failpoint_triggered("x"));
  EXPECT_FALSE(failpoint_triggered("x"));
}

TEST_F(FailpointTest, MalformedOneShotStaysDisarmed) {
  ScopedFailpoints fp("x=@0,y=@junk");
  EXPECT_FALSE(failpoint_triggered("x"));
  EXPECT_FALSE(failpoint_triggered("y"));
}

TEST_F(FailpointTest, ResetCountsRearmsOneShots) {
  ScopedFailpoints fp("x=@2");
  (void)failpoint_triggered("x");
  EXPECT_TRUE(failpoint_triggered("x"));
  failpoints_reset_counts();
  EXPECT_EQ(failpoint_hit_count("x"), 0u);
  EXPECT_EQ(failpoint_fire_count("x"), 0u);
  (void)failpoint_triggered("x");
  EXPECT_TRUE(failpoint_triggered("x"));  // hit index restarted
}

TEST_F(FailpointTest, LethalFlagParsesFromEnvironment) {
  // Lethal firing std::_Exit()s the process, so only the flag parse is
  // testable in-process; the behaviour itself is pinned by the subprocess
  // suite in tests/integration/durable_crash_test.cpp.
  ScopedEnv lethal("AFFOREST_FAILPOINT_LETHAL", "1");
  ScopedFailpoints fp("x=0");
  EXPECT_TRUE(failpoints_lethal());
}

TEST_F(FailpointTest, LethalFlagDefaultsOff) {
  ScopedFailpoints fp("x=0");
  EXPECT_FALSE(failpoints_lethal());
}

TEST_F(FailpointTest, ReloadRearmsAndDisarms) {
  {
    ScopedFailpoints fp("x=1");
    EXPECT_TRUE(failpoint_triggered("x"));
  }
  // ScopedFailpoints restored + reloaded: disarmed again.
  EXPECT_FALSE(failpoint_triggered("x"));
}

}  // namespace
}  // namespace afforest
