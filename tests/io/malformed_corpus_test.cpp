// Malformed-input corpus: every corrupt variant of the four on-disk
// formats (.el, .mtx, .sg, .cl) must surface a *typed* IoError — never a
// crash, an OOM (the headline case: a tiny file whose header claims 2^60
// elements), or a silent success.  Each case asserts the specific
// IoErrorKind so a refactor cannot quietly collapse the taxonomy.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/io.hpp"

namespace afforest {
namespace {

/// Runs `fn`; returns the IoError kind it threw, or nullopt if it did not
/// throw.  A non-IoError exception fails the test.
template <typename Fn>
std::optional<IoErrorKind> io_error_kind(Fn&& fn) {
  try {
    fn();
    return std::nullopt;
  } catch (const IoError& e) {
    return e.kind();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected IoError, got: " << e.what();
    return std::nullopt;
  }
}

class MalformedCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_corpus_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::string write_text(const std::string& name, const std::string& text) {
    const auto p = path(name);
    std::ofstream out(p);
    out << text;
    return p;
  }

  std::string write_bytes(const std::string& name,
                          const std::vector<unsigned char>& bytes) {
    const auto p = path(name);
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return p;
  }

  static std::vector<unsigned char> read_bytes(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>());
  }

  /// A valid 4-vertex .sg file (path 0-1-2-3) to corrupt from.
  std::string valid_sg(const std::string& name) {
    const Graph g =
        build_undirected(EdgeList<std::int32_t>{{0, 1}, {1, 2}, {2, 3}}, 4);
    const auto p = path(name);
    write_serialized_graph(p, g);
    return p;
  }

  std::string valid_cl(const std::string& name) {
    pvector<std::int32_t> labels(64, 7);
    const auto p = path(name);
    write_labels(p, labels);
    return p;
  }

  /// Overwrites 8 bytes at `offset` with an int64 value.
  static void patch_i64(std::vector<unsigned char>& bytes, std::size_t offset,
                        std::int64_t value) {
    std::memcpy(bytes.data() + offset, &value, sizeof(value));
  }

  static void patch_i32(std::vector<unsigned char>& bytes, std::size_t offset,
                        std::int32_t value) {
    std::memcpy(bytes.data() + offset, &value, sizeof(value));
  }

  std::filesystem::path dir_;
};

// 32 = magic(8) + n(8) + m(8) + directed(8); offsets follow, then neighbors.
constexpr std::size_t kSgHeader = 32;
constexpr std::size_t kClHeader = 16;

// ---------------------------------------------------------------- .el ----

TEST_F(MalformedCorpusTest, ElOverflowIdIsRejectedNotWrapped) {
  const auto p = write_text("overflow.el", "3000000000 4\n");
  const auto kind = io_error_kind([&] { read_edge_list(p); });
  EXPECT_EQ(kind, IoErrorKind::kIdOverflow);
}

TEST_F(MalformedCorpusTest, ElOverflowSecondEndpoint) {
  const auto p = write_text("overflow2.el", "0 1\n1 9999999999\n");
  try {
    read_edge_list(p);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kIdOverflow);
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.path(), p);
  }
}

TEST_F(MalformedCorpusTest, ElNegativeId) {
  const auto p = write_text("neg.el", "-7 2\n");
  EXPECT_EQ(io_error_kind([&] { read_edge_list(p); }),
            IoErrorKind::kNegativeId);
}

TEST_F(MalformedCorpusTest, ElParseErrorCarriesLineNumber) {
  const auto p = write_text("bad.el", "# comment\n0 1\n2 two\n");
  try {
    read_edge_list(p);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kParseError);
    EXPECT_EQ(e.line(), 3);
  }
}

TEST_F(MalformedCorpusTest, ElEmptyFileIsAValidEmptyEdgeList) {
  // An empty .el is the round-trip image of an empty edge list, so it
  // loads (to zero edges) rather than erroring.
  const auto p = write_text("empty.el", "");
  EXPECT_TRUE(read_edge_list(p).empty());
}

TEST_F(MalformedCorpusTest, ElMissingFile) {
  EXPECT_EQ(io_error_kind([&] { read_edge_list(path("nope.el")); }),
            IoErrorKind::kOpenFailed);
}

// --------------------------------------------------------------- .mtx ----

TEST_F(MalformedCorpusTest, MtxEmptyFile) {
  const auto p = write_text("empty.mtx", "");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, MtxMissingBanner) {
  const auto p = write_text("nobanner.mtx", "hello world\n2 2 1\n1 2\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kBadMagic);
}

TEST_F(MalformedCorpusTest, MtxUnsupportedVariant) {
  const auto p = write_text(
      "array.mtx", "%%MatrixMarket matrix array real general\n2 2\n1\n2\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kUnsupportedFormat);
}

TEST_F(MalformedCorpusTest, MtxMissingSizeLine) {
  const auto p = write_text("nosize.mtx",
                            "%%MatrixMarket matrix coordinate pattern "
                            "general\n% only comments follow\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, MtxGarbageSizeLine) {
  const auto p = write_text(
      "badsize.mtx",
      "%%MatrixMarket matrix coordinate pattern general\nx y z\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kParseError);
}

TEST_F(MalformedCorpusTest, MtxNonPositiveDimensions) {
  const auto p = write_text(
      "zero.mtx", "%%MatrixMarket matrix coordinate pattern general\n0 0 0\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kCorruptHeader);
}

TEST_F(MalformedCorpusTest, MtxNegativeEntryCount) {
  const auto p = write_text(
      "negent.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n2 2 -1\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kCorruptHeader);
}

TEST_F(MalformedCorpusTest, MtxDimensionOverflow) {
  const auto p = write_text(
      "huge.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n3000000000 1 0\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kIdOverflow);
}

TEST_F(MalformedCorpusTest, MtxEntryOutOfDeclaredRange) {
  const auto p = write_text(
      "oob.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kOutOfRangeNeighbor);
}

TEST_F(MalformedCorpusTest, MtxTruncatedEntries) {
  const auto p = write_text(
      "short.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n3 3 3\n1 2\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, MtxTrailingEntries) {
  const auto p = write_text("long.mtx",
                            "%%MatrixMarket matrix coordinate pattern "
                            "general\n3 3 1\n1 2\n2 3\n3 1\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kTrailingGarbage);
}

TEST_F(MalformedCorpusTest, MtxMalformedEntry) {
  const auto p = write_text(
      "garb.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\nfoo bar\n");
  EXPECT_EQ(io_error_kind([&] { read_matrix_market(p); }),
            IoErrorKind::kParseError);
}

// ---------------------------------------------------------------- .sg ----

TEST_F(MalformedCorpusTest, SgEmptyFile) {
  const auto p = write_bytes("empty.sg", {});
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, SgShorterThanMagic) {
  const auto p = write_bytes("tiny.sg", {'A', 'F', 'F'});
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, SgBadMagic) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  bytes[0] = 'X';
  const auto p = write_bytes("badmagic.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kBadMagic);
}

TEST_F(MalformedCorpusTest, SgFileEndsInsideHeader) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  bytes.resize(kSgHeader - 10);
  const auto p = write_bytes("midheader.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, SgHugeNodeCountMustNotAllocate) {
  // The headline satellite case: a 32-byte file claiming n = 2^60.  The
  // n > INT32_MAX check fires before any allocation is attempted.
  std::vector<unsigned char> bytes(kSgHeader, 0);
  std::memcpy(bytes.data(), "AFFSG001", 8);
  patch_i64(bytes, 8, std::int64_t{1} << 60);   // n
  patch_i64(bytes, 16, 0);                      // m
  patch_i64(bytes, 24, 0);                      // directed
  const auto p = write_bytes("huge_n.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kIdOverflow);
}

TEST_F(MalformedCorpusTest, SgNodeCountBeyondFileSize) {
  // n fits NodeID but the file cannot possibly hold n+1 offsets: the
  // file-size reconciliation must reject it before allocating.
  std::vector<unsigned char> bytes(kSgHeader, 0);
  std::memcpy(bytes.data(), "AFFSG001", 8);
  patch_i64(bytes, 8, 1'000'000);               // n, needs ~8 MB of offsets
  patch_i64(bytes, 16, 0);                      // m
  patch_i64(bytes, 24, 0);                      // directed
  const auto p = write_bytes("lying_n.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, SgHugeEdgeCountMustNotAllocate) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  patch_i64(bytes, 16, std::int64_t{1} << 40);  // m
  const auto p = write_bytes("huge_m.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, SgNegativeCounts) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  patch_i64(bytes, 8, -4);  // n
  const auto p = write_bytes("neg_n.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kCorruptHeader);
}

TEST_F(MalformedCorpusTest, SgBadDirectedFlag) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  patch_i64(bytes, 24, 7);  // directed must be 0 or 1
  const auto p = write_bytes("flag.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kCorruptHeader);
}

TEST_F(MalformedCorpusTest, SgTruncatedNeighborArray) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  bytes.resize(bytes.size() - 4);
  const auto p = write_bytes("trunc.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, SgTrailingGarbage) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  bytes.push_back(0xAB);
  bytes.push_back(0xCD);
  const auto p = write_bytes("trailing.sg", bytes);
  try {
    read_serialized_graph(p);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kTrailingGarbage);
    // The reported byte offset is where the expected payload ended.
    EXPECT_EQ(e.byte_offset(),
              static_cast<std::int64_t>(read_bytes(p).size()) - 2);
  }
}

TEST_F(MalformedCorpusTest, SgOutOfRangeNeighbor) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  // 4 vertices → 5 offsets; first neighbor lives right after them.
  patch_i32(bytes, kSgHeader + 5 * 8, 1000);
  const auto p = write_bytes("oob.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kOutOfRangeNeighbor);
}

TEST_F(MalformedCorpusTest, SgNegativeNeighbor) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  patch_i32(bytes, kSgHeader + 5 * 8, -3);
  const auto p = write_bytes("negnbr.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kOutOfRangeNeighbor);
}

TEST_F(MalformedCorpusTest, SgNonMonotoneOffsets) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  patch_i64(bytes, kSgHeader + 1 * 8, 6);  // offsets[1] > offsets[2]
  const auto p = write_bytes("nonmono.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kMalformedOffsets);
}

TEST_F(MalformedCorpusTest, SgOffsetsDoNotSpanPayload) {
  auto bytes = read_bytes(valid_sg("g.sg"));
  patch_i64(bytes, kSgHeader, 2);  // offsets[0] must be 0
  const auto p = write_bytes("badspan.sg", bytes);
  EXPECT_EQ(io_error_kind([&] { read_serialized_graph(p); }),
            IoErrorKind::kMalformedOffsets);
}

// ---------------------------------------------------------------- .cl ----

TEST_F(MalformedCorpusTest, ClEmptyFile) {
  const auto p = write_bytes("empty.cl", {});
  EXPECT_EQ(io_error_kind([&] { read_labels(p); }), IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, ClBadMagic) {
  auto bytes = read_bytes(valid_cl("c.cl"));
  bytes[3] = 'x';
  const auto p = write_bytes("badmagic.cl", bytes);
  EXPECT_EQ(io_error_kind([&] { read_labels(p); }), IoErrorKind::kBadMagic);
}

TEST_F(MalformedCorpusTest, ClFileEndsInsideHeader) {
  auto bytes = read_bytes(valid_cl("c.cl"));
  bytes.resize(kClHeader - 4);
  const auto p = write_bytes("midheader.cl", bytes);
  EXPECT_EQ(io_error_kind([&] { read_labels(p); }), IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, ClHugeCountMustNotAllocate) {
  // 16-byte file claiming 2^60 labels: rejected against the file size.
  std::vector<unsigned char> bytes(kClHeader, 0);
  std::memcpy(bytes.data(), "AFFCL001", 8);
  patch_i64(bytes, 8, std::int64_t{1} << 60);
  const auto p = write_bytes("huge.cl", bytes);
  EXPECT_EQ(io_error_kind([&] { read_labels(p); }), IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, ClNegativeCount) {
  auto bytes = read_bytes(valid_cl("c.cl"));
  patch_i64(bytes, 8, -1);
  const auto p = write_bytes("neg.cl", bytes);
  EXPECT_EQ(io_error_kind([&] { read_labels(p); }),
            IoErrorKind::kCorruptHeader);
}

TEST_F(MalformedCorpusTest, ClTruncatedPayload) {
  auto bytes = read_bytes(valid_cl("c.cl"));
  bytes.resize(bytes.size() - 8);
  const auto p = write_bytes("trunc.cl", bytes);
  EXPECT_EQ(io_error_kind([&] { read_labels(p); }), IoErrorKind::kTruncated);
}

TEST_F(MalformedCorpusTest, ClTrailingGarbage) {
  auto bytes = read_bytes(valid_cl("c.cl"));
  bytes.push_back(0x00);
  const auto p = write_bytes("trailing.cl", bytes);
  EXPECT_EQ(io_error_kind([&] { read_labels(p); }),
            IoErrorKind::kTrailingGarbage);
}

// --------------------------------------------------------- dispatcher ----

TEST_F(MalformedCorpusTest, LoadGraphUnknownExtension) {
  const auto p = write_text("g.graphml", "<xml/>");
  EXPECT_EQ(io_error_kind([&] { load_graph(p); }),
            IoErrorKind::kUnsupportedFormat);
}

TEST_F(MalformedCorpusTest, LoadGraphPropagatesTypedErrors) {
  const auto p = write_text("bad.el", "5000000000 1\n");
  EXPECT_EQ(io_error_kind([&] { load_graph(p); }), IoErrorKind::kIdOverflow);
}

}  // namespace
}  // namespace afforest
