// RAII environment-variable override for tests that exercise the
// env-configured robustness knobs (AFFOREST_FAILPOINTS, AFFOREST_MAX_ITER,
// AFFOREST_WATCHDOG_S).  Restores the previous value on destruction so
// tests cannot leak configuration into each other.
#pragma once

#include <cstdlib>
#include <string>

#include "util/env.hpp"

namespace afforest::testing {

class ScopedEnv {
 public:
  /// Sets `name` to `value`; nullptr unsets it.
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = env::raw(name);
    had_old_ = old != nullptr;
    if (had_old_) old_value_ = old;
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }

  ~ScopedEnv() {
    if (had_old_)
      ::setenv(name_.c_str(), old_value_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }

  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_value_;
  bool had_old_ = false;
};

}  // namespace afforest::testing
