#include "cc/multistep.hpp"

#include <gtest/gtest.h>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/component_mix.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(Multistep, MatchesReferenceOnSuite) {
  for (const auto* name : {"road", "osm-eur", "twitter", "web", "urand",
                           "kron"}) {
    const Graph g = make_suite_graph(name, 10);
    EXPECT_TRUE(labels_equivalent(multistep_cc(g), union_find_cc(g))) << name;
  }
}

TEST(Multistep, EmptyGraph) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 0);
  EXPECT_EQ(multistep_cc(g).size(), 0u);
}

TEST(Multistep, AllIsolatedVertices) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 20);
  const auto comp = multistep_cc(g);
  EXPECT_EQ(count_components(comp), 20);
  EXPECT_TRUE(verify_cc(g, comp));
}

TEST(Multistep, NoGiantComponentStillCorrect) {
  // Many equal small components: the pivot heuristic "misses"; step 2
  // must finish everything.
  const Graph g = build_undirected(
      generate_component_mix_edges<NodeID>(1 << 11, 4.0, 1.0 / 128.0, 3),
      1 << 11);
  EXPECT_TRUE(labels_equivalent(multistep_cc(g), union_find_cc(g)));
}

TEST(Multistep, GiantPlusSingletons) {
  // A star (giant) plus isolated vertices — the favorable case.
  EdgeList<NodeID> edges;
  for (NodeID i = 0; i < 50; ++i) edges.push_back({i, 50});
  const Graph g = build_undirected(edges, 60);
  const auto comp = multistep_cc(g);
  EXPECT_EQ(count_components(comp), 10);  // star + 9 isolated (51..59)
  EXPECT_TRUE(verify_cc(g, comp));
}

TEST(Multistep, PathGraphWorstCaseForLP) {
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i < 300; ++i)
    edges.push_back({static_cast<NodeID>(i - 1), i});
  const Graph g = build_undirected(edges, 300);
  // Whole graph is one component: BFS from the max-degree vertex labels
  // everything; LP has nothing to do.
  EXPECT_EQ(count_components(multistep_cc(g)), 1);
}

}  // namespace
}  // namespace afforest
