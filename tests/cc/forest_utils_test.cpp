#include "cc/forest_utils.hpp"

#include <gtest/gtest.h>

#include "cc/afforest.hpp"
#include "graph/generators/adversarial.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(ForestUtils, InvariantHoldsOnIdentity) {
  const auto pi = identity_labels<NodeID>(10);
  EXPECT_TRUE(satisfies_parent_invariant(pi));
}

TEST(ForestUtils, InvariantRejectsUpwardPointer) {
  pvector<NodeID> pi{0, 2, 2};  // pi[1] = 2 > 1
  EXPECT_FALSE(satisfies_parent_invariant(pi));
}

TEST(ForestUtils, InvariantRejectsNegative) {
  pvector<NodeID> pi{0, -1};
  EXPECT_FALSE(satisfies_parent_invariant(pi));
}

TEST(ForestUtils, DepthOfChainVertices) {
  const auto pi = linear_depth_forest<NodeID>(5);
  EXPECT_EQ(depth_of(pi, NodeID{0}), 0);
  EXPECT_EQ(depth_of(pi, NodeID{4}), 4);
}

TEST(ForestUtils, DepthHistogramOfChain) {
  const auto pi = linear_depth_forest<NodeID>(4);
  const auto hist = depth_histogram(pi);
  ASSERT_EQ(hist.size(), 4u);
  for (auto c : hist) EXPECT_EQ(c, 1);
}

TEST(ForestUtils, CountTrees) {
  pvector<NodeID> pi{0, 0, 2, 2, 4};
  EXPECT_EQ(count_trees(pi), 3);
}

TEST(ForestUtils, TreeSizesByRoot) {
  pvector<NodeID> pi{0, 0, 1, 3};  // chain 2->1->0 plus root 3
  const auto sizes = tree_sizes(pi);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes.at(0), 3);
  EXPECT_EQ(sizes.at(3), 1);
}

TEST(ForestUtils, IsDepthOneDetection) {
  pvector<NodeID> shallow{0, 0, 0};
  EXPECT_TRUE(is_depth_one(shallow));
  pvector<NodeID> deep{0, 0, 1};
  EXPECT_FALSE(is_depth_one(deep));
}

TEST(ForestUtils, CompressAllEstablishesDepthOne) {
  auto pi = linear_depth_forest<NodeID>(1 << 10);
  EXPECT_FALSE(is_depth_one(pi));
  compress_all(pi);
  EXPECT_TRUE(is_depth_one(pi));
  EXPECT_TRUE(satisfies_parent_invariant(pi));
  EXPECT_EQ(count_trees(pi), 1);
}

TEST(ForestUtils, AfforestIntermediateForestsSatisfyInvariant) {
  // Run link over random edges and check the invariant at every step —
  // the library-level guarantee all proofs rest on.
  auto pi = identity_labels<NodeID>(128);
  Xoshiro256 rng(2);
  for (int i = 0; i < 400; ++i) {
    link(static_cast<NodeID>(rng.next_bounded(128)),
         static_cast<NodeID>(rng.next_bounded(128)), pi);
    ASSERT_TRUE(satisfies_parent_invariant(pi)) << "step " << i;
  }
}

}  // namespace
}  // namespace afforest
