#include "cc/verifier.hpp"

#include <gtest/gtest.h>

#include "cc/afforest.hpp"
#include "graph/builder.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(LabelsEquivalent, IdenticalArrays) {
  pvector<NodeID> a{0, 0, 2};
  pvector<NodeID> b{0, 0, 2};
  EXPECT_TRUE(labels_equivalent(a, b));
}

TEST(LabelsEquivalent, DifferentRepresentativesSamePartition) {
  pvector<NodeID> a{0, 0, 2, 2};
  pvector<NodeID> b{9, 9, 5, 5};
  EXPECT_TRUE(labels_equivalent(a, b));
}

TEST(LabelsEquivalent, FinerPartitionRejected) {
  pvector<NodeID> a{0, 0, 0};
  pvector<NodeID> b{0, 0, 2};
  EXPECT_FALSE(labels_equivalent(a, b));
  EXPECT_FALSE(labels_equivalent(b, a));  // and coarser, symmetrically
}

TEST(LabelsEquivalent, CrossedPartitionsRejected) {
  pvector<NodeID> a{0, 0, 1, 1};
  pvector<NodeID> b{0, 1, 0, 1};
  EXPECT_FALSE(labels_equivalent(a, b));
}

TEST(LabelsEquivalent, SizeMismatchRejected) {
  pvector<NodeID> a{0, 0};
  pvector<NodeID> b{0};
  EXPECT_FALSE(labels_equivalent(a, b));
}

TEST(LabelsEquivalent, EmptyArraysAreEquivalent) {
  pvector<NodeID> a, b;
  EXPECT_TRUE(labels_equivalent(a, b));
}

TEST(VerifyCC, AcceptsCorrectLabeling) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}, {2, 3}}, 4);
  pvector<NodeID> comp{0, 0, 2, 2};
  EXPECT_TRUE(verify_cc(g, comp));
}

TEST(VerifyCC, AcceptsAlternativeRepresentatives) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}, {2, 3}}, 4);
  pvector<NodeID> comp{1, 1, 3, 3};
  EXPECT_TRUE(verify_cc(g, comp));
}

TEST(VerifyCC, RejectsTooFineLabeling) {
  // Edge endpoints differ → labels too fine.
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}}, 2);
  pvector<NodeID> comp{0, 1};
  EXPECT_FALSE(verify_cc(g, comp));
}

TEST(VerifyCC, RejectsTooCoarseLabeling) {
  // Two disconnected vertices given the same label.
  const Graph g = build_undirected(EdgeList<NodeID>{}, 2);
  pvector<NodeID> comp{0, 0};
  EXPECT_FALSE(verify_cc(g, comp));
}

TEST(VerifyCC, RejectsWrongSizeArray) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}}, 2);
  pvector<NodeID> comp{0};
  EXPECT_FALSE(verify_cc(g, comp));
}

TEST(VerifyCC, AcceptsAfforestOutput) {
  const Graph g = build_undirected(
      EdgeList<NodeID>{{0, 1}, {1, 2}, {3, 4}, {5, 6}, {6, 7}, {7, 5}}, 8);
  EXPECT_TRUE(verify_cc(g, afforest_cc(g)));
}

}  // namespace
}  // namespace afforest
