#include "cc/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

TEST(Registry, ContainsExpectedAlgorithms) {
  for (const auto& name : {"afforest", "afforest-noskip", "sv", "sv-edgelist",
                           "lp", "lp-frontier", "bfs", "dobfs", "serial-uf"})
    EXPECT_TRUE(is_cc_algorithm(name)) << name;
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& a : cc_algorithms()) names.insert(a.name);
  EXPECT_EQ(names.size(), cc_algorithms().size());
}

TEST(Registry, DescriptionsNonEmpty) {
  for (const auto& a : cc_algorithms()) EXPECT_FALSE(a.description.empty());
}

TEST(Registry, LookupReturnsMatchingEntry) {
  EXPECT_EQ(cc_algorithm("sv").name, "sv");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(cc_algorithm("quantum-cc"), std::invalid_argument);
  EXPECT_FALSE(is_cc_algorithm("quantum-cc"));
}

TEST(Registry, EveryAlgorithmRunsCorrectly) {
  const Graph g = make_suite_graph("twitter", 10);
  const auto truth = union_find_cc(g);
  for (const auto& a : cc_algorithms())
    EXPECT_TRUE(labels_equivalent(a.run(g), truth)) << a.name;
}

TEST(Registry, AfforestListedFirst) {
  // The paper's headline algorithm leads every report.
  EXPECT_EQ(cc_algorithms().front().name, "afforest");
}

}  // namespace
}  // namespace afforest
