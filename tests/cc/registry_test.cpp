#include "cc/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

TEST(Registry, ContainsExpectedAlgorithms) {
  for (const auto& name : {"afforest", "afforest-noskip", "sv", "sv-edgelist",
                           "lp", "lp-frontier", "bfs", "dobfs", "serial-uf"})
    EXPECT_TRUE(is_cc_algorithm(name)) << name;
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& a : cc_algorithms()) names.insert(a.name);
  EXPECT_EQ(names.size(), cc_algorithms().size());
}

TEST(Registry, DescriptionsNonEmpty) {
  for (const auto& a : cc_algorithms()) EXPECT_FALSE(a.description.empty());
}

TEST(Registry, LookupReturnsMatchingEntry) {
  EXPECT_EQ(cc_algorithm("sv").name, "sv");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(cc_algorithm("quantum-cc"), std::invalid_argument);
  EXPECT_FALSE(is_cc_algorithm("quantum-cc"));
}

TEST(Registry, UnknownNameMessageNamesTheAlgorithm) {
  // The CLI surfaces this message verbatim; it must identify the input.
  try {
    cc_algorithm("quantum-cc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("quantum-cc"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(cc_algorithm(""), std::invalid_argument);
  EXPECT_THROW(cc_algorithm("AFFOREST"), std::invalid_argument)
      << "lookup must be case-sensitive";
}

TEST(Registry, PaperFigureOrder) {
  // cc_algorithms() documents its order as the one the paper's figures use;
  // bench tables and report scripts index into it, so it is an API.
  const std::vector<std::string> expected = {
      "afforest", "afforest-noskip", "sv",        "sv-original",
      "sv-edgelist", "lp",           "lp-frontier", "bfs",
      "dobfs",    "multistep",       "contraction", "rem",
      "rem-parallel", "serial-uf"};
  ASSERT_EQ(cc_algorithms().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(cc_algorithms()[i].name, expected[i]) << "position " << i;
}

TEST(Registry, RunCallablesAreBound) {
  for (const auto& a : cc_algorithms())
    EXPECT_TRUE(static_cast<bool>(a.run)) << a.name;
}

TEST(Registry, NamesAreCliSafe) {
  // Names are used directly as CLI flag values and in reproducer file
  // names: lowercase alphanumerics and dashes only.
  for (const auto& a : cc_algorithms()) {
    EXPECT_FALSE(a.name.empty());
    for (const char c : a.name)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '-')
          << a.name << " contains '" << c << "'";
  }
}

TEST(Registry, EveryAlgorithmRunsCorrectly) {
  const Graph g = make_suite_graph("twitter", 10);
  const auto truth = union_find_cc(g);
  for (const auto& a : cc_algorithms())
    EXPECT_TRUE(labels_equivalent(a.run(g), truth)) << a.name;
}

TEST(Registry, AfforestListedFirst) {
  // The paper's headline algorithm leads every report.
  EXPECT_EQ(cc_algorithms().front().name, "afforest");
}

}  // namespace
}  // namespace afforest
