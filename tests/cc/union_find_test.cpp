#include "cc/union_find.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(UnionFind, SingletonsInitially) {
  UnionFind<NodeID> uf(5);
  for (NodeID v = 0; v < 5; ++v) EXPECT_EQ(uf.find(v), v);
}

TEST(UnionFind, UniteMergesAndReportsChange) {
  UnionFind<NodeID> uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already together
  EXPECT_EQ(uf.find(0), uf.find(1));
}

TEST(UnionFind, LowerIdBecomesRoot) {
  UnionFind<NodeID> uf(10);
  uf.unite(7, 3);
  EXPECT_EQ(uf.find(7), 3);
  uf.unite(3, 1);
  EXPECT_EQ(uf.find(7), 1);
}

TEST(UnionFind, TransitiveMerges) {
  UnionFind<NodeID> uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_EQ(uf.find(0), uf.find(3));
  EXPECT_NE(uf.find(0), uf.find(4));
}

TEST(UnionFind, PathCompressionFlattens) {
  UnionFind<NodeID> uf(5);
  uf.unite(4, 3);
  uf.unite(3, 2);
  uf.unite(2, 1);
  uf.unite(1, 0);
  // After find, 4 should point (near-)directly to 0; all roots equal 0.
  EXPECT_EQ(uf.find(4), 0);
}

TEST(UnionFind, LabelsAreMinimumIds) {
  UnionFind<NodeID> uf(6);
  uf.unite(5, 4);
  uf.unite(4, 2);
  const auto labels = uf.labels();
  EXPECT_EQ(labels[5], 2);
  EXPECT_EQ(labels[4], 2);
  EXPECT_EQ(labels[2], 2);
  EXPECT_EQ(labels[0], 0);
}

TEST(UnionFindCC, OverCSRGraph) {
  const Graph g =
      build_undirected(EdgeList<NodeID>{{0, 1}, {1, 2}, {4, 5}}, 6);
  const auto comp = union_find_cc(g);
  EXPECT_EQ(comp[0], 0);
  EXPECT_EQ(comp[2], 0);
  EXPECT_EQ(comp[3], 3);
  EXPECT_EQ(comp[4], 4);
  EXPECT_EQ(comp[5], 4);
}

TEST(UnionFindCC, OverEdgeList) {
  EdgeList<NodeID> edges{{0, 2}, {2, 4}};
  const auto comp = union_find_cc(edges, 5);
  EXPECT_EQ(comp[0], 0);
  EXPECT_EQ(comp[4], 0);
  EXPECT_EQ(comp[1], 1);
  EXPECT_EQ(comp[3], 3);
}

TEST(UnionFindCC, ZeroNodes) {
  EdgeList<NodeID> edges;
  EXPECT_EQ(union_find_cc(edges, 0).size(), 0u);
}

}  // namespace
}  // namespace afforest
