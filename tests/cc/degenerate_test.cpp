// Degenerate-input matrix: every registered algorithm × every pathological
// graph shape.  Guards the full registry against edge cases that
// individual suites only spot-check.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "cc/registry.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

struct Shape {
  const char* name;
  Graph (*make)();
};

Graph empty_graph() { return build_undirected(EdgeList<NodeID>{}, 0); }
Graph single_vertex() { return build_undirected(EdgeList<NodeID>{}, 1); }
Graph singleton_cloud() { return build_undirected(EdgeList<NodeID>{}, 64); }
Graph self_loops_only() {
  return build_undirected(EdgeList<NodeID>{{0, 0}, {1, 1}, {2, 2}}, 3);
}
Graph parallel_edges() {
  return build_undirected(
      EdgeList<NodeID>{{0, 1}, {0, 1}, {1, 0}, {0, 1}}, 2);
}
Graph star_high_hub() {
  EdgeList<NodeID> edges;
  for (NodeID i = 0; i < 31; ++i) edges.push_back({i, 31});
  return build_undirected(edges, 32);
}
Graph long_path() {
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i < 128; ++i)
    edges.push_back({static_cast<NodeID>(i - 1), i});
  return build_undirected(edges, 128);
}
Graph clique() {
  EdgeList<NodeID> edges;
  for (NodeID i = 0; i < 16; ++i)
    for (NodeID j = static_cast<NodeID>(i + 1); j < 16; ++j)
      edges.push_back({i, j});
  return build_undirected(edges, 16);
}
Graph two_cliques_plus_isolated() {
  EdgeList<NodeID> edges;
  for (NodeID i = 0; i < 8; ++i)
    for (NodeID j = static_cast<NodeID>(i + 1); j < 8; ++j) {
      edges.push_back({i, j});
      edges.push_back({static_cast<NodeID>(i + 8),
                       static_cast<NodeID>(j + 8)});
    }
  return build_undirected(edges, 20);  // vertices 16..19 isolated
}

const Shape kShapes[] = {
    {"empty", empty_graph},
    {"single_vertex", single_vertex},
    {"singleton_cloud", singleton_cloud},
    {"self_loops_only", self_loops_only},
    {"parallel_edges", parallel_edges},
    {"star_high_hub", star_high_hub},
    {"long_path", long_path},
    {"clique", clique},
    {"two_cliques_plus_isolated", two_cliques_plus_isolated},
};

class DegenerateMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(DegenerateMatrix, AlgorithmHandlesShape) {
  const auto& [algo_name, shape_idx] = GetParam();
  const Shape& shape = kShapes[shape_idx];
  const Graph g = shape.make();
  const auto labels = cc_algorithm(algo_name).run(g);
  ASSERT_EQ(static_cast<std::int64_t>(labels.size()), g.num_nodes());
  EXPECT_TRUE(labels_equivalent(labels, union_find_cc(g)))
      << algo_name << " on " << shape.name;
}

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  for (const auto& a : cc_algorithms()) names.push_back(a.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllShapes, DegenerateMatrix,
    ::testing::Combine(::testing::ValuesIn(algorithm_names()),
                       ::testing::Range(0, static_cast<int>(std::size(kShapes)))),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         kShapes[std::get<1>(info.param)].name;
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace afforest
