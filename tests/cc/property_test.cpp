// Property-based sweeps: every registered algorithm must agree with the
// serial union-find reference on randomized graphs across families, sizes,
// densities, and seeds.  These are the repository's fuzz layer.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "cc/component_stats.hpp"
#include "cc/registry.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/component_mix.hpp"
#include "graph/generators/suite.hpp"
#include "graph/generators/uniform.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

// ---------------------------------------------- all algorithms × families

class AlgoFamilyTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(AlgoFamilyTest, MatchesReference) {
  const auto& [algo, family] = GetParam();
  const Graph g = make_suite_graph(family, 10);
  const auto labels = cc_algorithm(algo).run(g);
  EXPECT_TRUE(labels_equivalent(labels, union_find_cc(g)));
}

std::vector<std::string> all_algorithm_names() {
  std::vector<std::string> names;
  for (const auto& a : cc_algorithms()) names.push_back(a.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgoFamilyTest,
    ::testing::Combine(::testing::ValuesIn(all_algorithm_names()),
                       ::testing::Values("road", "osm-eur", "twitter", "web",
                                         "urand", "kron")),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

// ------------------------------------------------ random density × seeds

class RandomGraphFuzz
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomGraphFuzz, AllAlgorithmsAgree) {
  const auto [edge_factor, seed] = GetParam();
  const std::int64_t n = 512;
  const Graph g = build_undirected(
      generate_uniform_edges<NodeID>(n, n * edge_factor,
                                     static_cast<std::uint64_t>(seed)),
      n);
  const auto truth = union_find_cc(g);
  for (const auto& a : cc_algorithms())
    ASSERT_TRUE(labels_equivalent(a.run(g), truth))
        << a.name << " ef=" << edge_factor << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(DensitySeedGrid, RandomGraphFuzz,
                         ::testing::Combine(::testing::Values(0, 1, 2, 4, 16),
                                            ::testing::Range(0, 8)));

// --------------------------------------------- component-count stress

class ComponentFractionFuzz : public ::testing::TestWithParam<double> {};

TEST_P(ComponentFractionFuzz, AllAlgorithmsAgree) {
  const double f = GetParam();
  const Graph g = build_undirected(
      generate_component_mix_edges<NodeID>(1 << 11, 6.0, f, 3), 1 << 11);
  const auto truth = union_find_cc(g);
  for (const auto& a : cc_algorithms())
    ASSERT_TRUE(labels_equivalent(a.run(g), truth)) << a.name << " f=" << f;
}

INSTANTIATE_TEST_SUITE_P(Fractions, ComponentFractionFuzz,
                         ::testing::Values(0.001, 0.01, 0.1, 0.5, 1.0));

// --------------------------------------------------- structural properties

TEST(Properties, AfforestLabelsAreCanonicalMinIds) {
  // For any graph, afforest label(v) <= v and label(label(v)) == label(v).
  for (int seed = 0; seed < 5; ++seed) {
    const Graph g = build_undirected(
        generate_uniform_edges<NodeID>(256, 512,
                                       static_cast<std::uint64_t>(seed)),
        256);
    const auto comp = cc_algorithm("afforest").run(g);
    for (std::size_t v = 0; v < comp.size(); ++v) {
      ASSERT_LE(comp[v], static_cast<NodeID>(v));
      ASSERT_EQ(comp[comp[v]], comp[v]);
    }
  }
}

TEST(Properties, ComponentCountInvariantAcrossAlgorithms) {
  const Graph g = make_suite_graph("kron", 10);
  const auto expected = count_components(union_find_cc(g));
  for (const auto& a : cc_algorithms())
    EXPECT_EQ(count_components(a.run(g)), expected) << a.name;
}

TEST(Properties, AddingEdgeNeverIncreasesComponentCount) {
  Xoshiro256 rng(123);
  EdgeList<NodeID> edges;
  std::int64_t prev_components = 128;
  for (int i = 0; i < 200; ++i) {
    edges.push_back(
        {static_cast<NodeID>(rng.next_bounded(128)),
         static_cast<NodeID>(rng.next_bounded(128))});
    EdgeList<NodeID> copy;
    for (const auto& e : edges) copy.push_back(e);
    const Graph g = build_undirected(copy, 128);
    const auto c = count_components(cc_algorithm("afforest").run(g));
    ASSERT_LE(c, prev_components);
    prev_components = c;
  }
}

TEST(Properties, PermutedVertexIdsPreservePartitionSizes) {
  // Relabeling vertices must not change the component size multiset.
  const std::int64_t n = 256;
  const auto edges = generate_uniform_edges<NodeID>(n, 300, 9);
  EdgeList<NodeID> permuted;
  // A fixed affine permutation of Z_n (257 is coprime to 256... use 255?
  // gcd(255,256)=1), v -> (255*v + 13) mod 256.
  auto perm = [n](NodeID v) {
    return static_cast<NodeID>((255 * static_cast<std::int64_t>(v) + 13) % n);
  };
  for (const auto& [u, v] : edges) permuted.push_back({perm(u), perm(v)});
  const Graph g1 = build_undirected(edges, n);
  const Graph g2 = build_undirected(permuted, n);
  auto sizes1 = component_sizes(cc_algorithm("afforest").run(g1));
  auto sizes2 = component_sizes(cc_algorithm("afforest").run(g2));
  EXPECT_EQ(sizes1, sizes2);
}

}  // namespace
}  // namespace afforest
