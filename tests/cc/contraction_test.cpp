#include "cc/contraction.hpp"

#include <gtest/gtest.h>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/generators/adversarial.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(Contraction, MatchesReferenceOnSuite) {
  for (const auto* name : {"road", "osm-eur", "twitter", "web", "urand",
                           "kron"}) {
    const Graph g = make_suite_graph(name, 10);
    EXPECT_TRUE(labels_equivalent(contraction_cc(g), union_find_cc(g)))
        << name;
  }
}

TEST(Contraction, PathCollapsesInOneRound) {
  // Min-hooking + full compression flattens a path immediately.
  const Graph g =
      build_undirected(adversarial_path_edges<NodeID>(256), 256);
  std::int64_t rounds = 0;
  const auto comp = contraction_cc(g, &rounds);
  EXPECT_EQ(count_components(comp), 1);
  EXPECT_EQ(rounds, 1);
}

TEST(Contraction, RoundCountIsLogarithmicOnSuite) {
  const Graph g = make_suite_graph("kron", 12);
  std::int64_t rounds = 0;
  contraction_cc(g, &rounds);
  EXPECT_LE(rounds, 12);  // << log2-ish, never linear
  EXPECT_GE(rounds, 1);
}

TEST(Contraction, EmptyAndEdgeless) {
  const Graph empty = build_undirected(EdgeList<NodeID>{}, 0);
  std::int64_t rounds = -1;
  EXPECT_EQ(contraction_cc(empty, &rounds).size(), 0u);
  EXPECT_EQ(rounds, 0);
  const Graph isolated = build_undirected(EdgeList<NodeID>{}, 9);
  EXPECT_EQ(count_components(contraction_cc(isolated)), 9);
}

TEST(Contraction, LabelsAreComponentMinima) {
  const Graph g = build_undirected(EdgeList<NodeID>{{5, 9}, {9, 7}}, 10);
  const auto comp = contraction_cc(g);
  EXPECT_EQ(comp[9], 5);
  EXPECT_EQ(comp[7], 5);
}

}  // namespace
}  // namespace afforest
