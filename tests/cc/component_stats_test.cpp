#include "cc/component_stats.hpp"

#include <gtest/gtest.h>

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(ComponentSizes, SortedDescending) {
  pvector<NodeID> comp{0, 0, 0, 3, 3, 5};
  const auto sizes = component_sizes(comp);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 3);
  EXPECT_EQ(sizes[1], 2);
  EXPECT_EQ(sizes[2], 1);
}

TEST(ComponentSizes, EmptyLabels) {
  pvector<NodeID> comp;
  EXPECT_TRUE(component_sizes(comp).empty());
}

TEST(SummarizeComponents, AllFields) {
  pvector<NodeID> comp{0, 0, 0, 0, 4, 5};
  const auto s = summarize_components(comp);
  EXPECT_EQ(s.num_components, 3);
  EXPECT_EQ(s.largest_size, 4);
  EXPECT_NEAR(s.largest_fraction, 4.0 / 6.0, 1e-12);
  EXPECT_EQ(s.num_singletons, 2);
}

TEST(SummarizeComponents, EmptyInput) {
  pvector<NodeID> comp;
  const auto s = summarize_components(comp);
  EXPECT_EQ(s.num_components, 0);
  EXPECT_EQ(s.largest_size, 0);
  EXPECT_DOUBLE_EQ(s.largest_fraction, 0.0);
}

TEST(SummarizeComponents, SingleGiantComponent) {
  pvector<NodeID> comp(1000, 7);
  const auto s = summarize_components(comp);
  EXPECT_EQ(s.num_components, 1);
  EXPECT_DOUBLE_EQ(s.largest_fraction, 1.0);
  EXPECT_EQ(s.num_singletons, 0);
}

TEST(LargestComponentLabel, FindsMode) {
  pvector<NodeID> comp{5, 5, 5, 2, 2, 9};
  EXPECT_EQ(largest_component_label(comp), 5);
}

TEST(LargestComponentLabel, TieBreaksToLowerLabel) {
  pvector<NodeID> comp{4, 4, 1, 1};
  EXPECT_EQ(largest_component_label(comp), 1);
}

}  // namespace
}  // namespace afforest
