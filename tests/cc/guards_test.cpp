// Convergence guards (src/cc/guards.hpp): the iteration ceilings threaded
// through Shiloach–Vishkin, label propagation, and Multistep.  A forced
// tiny ceiling (AFFOREST_MAX_ITER=1) must surface ConvergenceError with
// diagnostic context; the default structural ceiling must never fire on a
// terminating run.
#include "cc/guards.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "../support/scoped_env.hpp"
#include "cc/label_propagation.hpp"
#include "cc/multistep.hpp"
#include "cc/shiloach_vishkin.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"

namespace afforest {
namespace {

using ::afforest::testing::ScopedEnv;

EdgeList<std::int32_t> path_edges(std::int32_t n, std::int32_t base = 0) {
  EdgeList<std::int32_t> edges;
  for (std::int32_t v = 0; v + 1 < n; ++v)
    edges.push_back({static_cast<std::int32_t>(base + v),
                     static_cast<std::int32_t>(base + v + 1)});
  return edges;
}

TEST(IterationCeiling, DefaultIsStructural) {
  ScopedEnv env("AFFOREST_MAX_ITER", nullptr);
  EXPECT_EQ(iteration_ceiling(100), 264);
  EXPECT_EQ(iteration_ceiling(0), 64);
}

TEST(IterationCeiling, EnvOverrides) {
  ScopedEnv env("AFFOREST_MAX_ITER", "5");
  EXPECT_EQ(iteration_ceiling(1 << 20), 5);
}

TEST(IterationCeiling, ZeroDisables) {
  ScopedEnv env("AFFOREST_MAX_ITER", "0");
  EXPECT_EQ(iteration_ceiling(1 << 20),
            std::numeric_limits<std::int64_t>::max());
}

TEST(IterationCeiling, GarbageEnvFallsBackToStructural) {
  ScopedEnv env("AFFOREST_MAX_ITER", "banana");
  EXPECT_EQ(iteration_ceiling(100), 264);
}

TEST(ConvergenceGuard, ErrorCarriesDiagnostics) {
  try {
    check_convergence_guard("some_algo", 10, 9);
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    EXPECT_EQ(e.algorithm(), "some_algo");
    EXPECT_EQ(e.iterations(), 10);
    EXPECT_EQ(e.ceiling(), 9);
  }
  EXPECT_NO_THROW(check_convergence_guard("some_algo", 9, 9));
}

class ForcedCeilingTest : public ::testing::Test {
 protected:
  ForcedCeilingTest() : env_("AFFOREST_MAX_ITER", "1") {}
  // A path needs label information to travel multiple hops, so every
  // fixpoint loop requires > 1 iteration on it.
  const Graph g_ = build_undirected(path_edges(64), 64);
  ScopedEnv env_;
};

TEST_F(ForcedCeilingTest, ShiloachVishkinThrows) {
  try {
    shiloach_vishkin(g_);
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    EXPECT_EQ(e.algorithm(), "shiloach_vishkin");
    EXPECT_EQ(e.iterations(), 2);
    EXPECT_EQ(e.ceiling(), 1);
  }
}

TEST_F(ForcedCeilingTest, ShiloachVishkinOriginalThrows) {
  EXPECT_THROW(shiloach_vishkin_original(g_), ConvergenceError);
}

TEST_F(ForcedCeilingTest, ShiloachVishkinEdgelistThrows) {
  EXPECT_THROW(shiloach_vishkin_edgelist(path_edges(64), 64),
               ConvergenceError);
}

TEST_F(ForcedCeilingTest, LabelPropagationThrows) {
  EXPECT_THROW(label_propagation(g_), ConvergenceError);
}

TEST_F(ForcedCeilingTest, LabelPropagationFrontierThrows) {
  EXPECT_THROW(label_propagation_frontier(g_), ConvergenceError);
}

TEST_F(ForcedCeilingTest, MultistepThrows) {
  // Two path components: BFS closes the pivot's component in step 1, then
  // the min-label cleanup loop needs many rounds for the second path.
  auto edges = path_edges(32);
  for (const auto& e : path_edges(32, 32)) edges.push_back(e);
  const Graph two = build_undirected(edges, 64);
  EXPECT_THROW(multistep_cc(two), ConvergenceError);
}

TEST(ConvergenceGuardDefaults, AllGuardedAlgorithmsTerminateUnderDefault) {
  ScopedEnv env("AFFOREST_MAX_ITER", nullptr);
  const Graph g = build_undirected(path_edges(256), 256);
  const auto oracle = union_find_cc(g);
  EXPECT_TRUE(labels_equivalent(shiloach_vishkin(g), oracle));
  EXPECT_TRUE(labels_equivalent(shiloach_vishkin_original(g), oracle));
  EXPECT_TRUE(labels_equivalent(label_propagation(g), oracle));
  EXPECT_TRUE(labels_equivalent(label_propagation_frontier(g), oracle));
  EXPECT_TRUE(labels_equivalent(multistep_cc(g), oracle));
}

TEST(ConvergenceGuardDefaults, DisabledGuardStillTerminates) {
  ScopedEnv env("AFFOREST_MAX_ITER", "0");
  const Graph g = build_undirected(path_edges(64), 64);
  EXPECT_TRUE(labels_equivalent(shiloach_vishkin(g), union_find_cc(g)));
}

}  // namespace
}  // namespace afforest
