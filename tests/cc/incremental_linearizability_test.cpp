// Linearizability-style consistency checks for IncrementalCC: concurrent
// add_edge and connected() threads.
//
// connected() uses validated retry (see incremental.hpp): unequal roots
// only count as "disconnected" after re-validating that u's root is still
// a root.  Without that validation the naive two-walk compare can observe
// a pair connected and LATER report it disconnected when a link lands
// between the walks — the exact regression these tests pin down.
//
// std::thread (not OpenMP) so the TSan preset observes the interleavings
// (libgomp is not TSan-instrumented; see docs/TESTING.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cc/incremental.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/uniform.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(IncrementalLinearizability, MonotoneUnderConcurrentAddEdge) {
  const std::int64_t n = 1 << 9;
  const auto edges = generate_uniform_edges<NodeID>(n, 4 * n, /*seed=*/29);
  const int kWriters = 2;
  const int kReaders = 2;

  IncrementalCC<NodeID> cc(n);
  std::atomic<int> writers_done{0};
  std::atomic<int> violations{0};

  // Probe pairs drawn from the edge list — all eventually connected, so
  // every pair exercises the connected->stays-connected property.
  std::vector<std::pair<NodeID, NodeID>> probes;
  {
    Xoshiro256 rng(77);
    for (int i = 0; i < 24; ++i) {
      const auto& e = edges[rng.next_bounded(edges.size())];
      probes.emplace_back(e.u, e.v);
    }
  }

  std::vector<std::thread> threads;
  const std::size_t per =
      (edges.size() + static_cast<std::size_t>(kWriters) - 1) /
      static_cast<std::size_t>(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    const std::size_t begin = static_cast<std::size_t>(w) * per;
    const std::size_t end = std::min(edges.size(), begin + per);
    threads.emplace_back([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i)
        cc.add_edge(edges[i].u, edges[i].v);
      writers_done.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      std::vector<bool> seen(probes.size(), false);
      bool done = false;
      while (!done) {
        done = writers_done.load(std::memory_order_acquire) == kWriters;
        for (std::size_t i = 0; i < probes.size(); ++i) {
          const bool conn = cc.connected(probes[i].first, probes[i].second);
          if (seen[i] && !conn) violations.fetch_add(1);
          if (conn) seen[i] = true;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(violations.load(), 0)
      << "connected() reported a previously-connected pair disconnected";

  // Final-state agreement with the serial union-find oracle.
  const auto truth = union_find_cc(edges, n);
  const auto labels = cc.labels();
  ASSERT_EQ(labels.size(), truth.size());
  for (std::int64_t v = 0; v < n; ++v)
    ASSERT_EQ(labels[v], truth[v]) << "vertex " << v;

  // Every probe was an edge, so all must be connected at the end.
  for (const auto& [u, v] : probes) EXPECT_TRUE(cc.connected(u, v));
}

TEST(IncrementalLinearizability, SerialSemanticsUnchanged) {
  // The validated-retry rewrite must not change single-threaded behavior.
  IncrementalCC<NodeID> cc(5);
  EXPECT_FALSE(cc.connected(0, 4));
  EXPECT_TRUE(cc.connected(2, 2));
  cc.add_edge(0, 1);
  cc.add_edge(1, 4);
  EXPECT_TRUE(cc.connected(0, 4));
  EXPECT_FALSE(cc.connected(0, 3));
  cc.compact();
  EXPECT_TRUE(cc.connected(4, 0));
  EXPECT_EQ(cc.component_count(), 3);
}

}  // namespace
}  // namespace afforest
