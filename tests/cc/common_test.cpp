// Unit tests for the shared cc/ helpers: count_components over degenerate
// label vectors (the unordered_map-where-a-set-was-meant regression) and
// the typed label-width guard.
#include "cc/common.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(CountComponents, EmptyLabelVector) {
  const ComponentLabels<NodeID> comp;
  EXPECT_EQ(count_components(comp), 0);
}

TEST(CountComponents, Singleton) {
  ComponentLabels<NodeID> comp(1);
  comp[0] = 0;
  EXPECT_EQ(count_components(comp), 1);
}

TEST(CountComponents, AllIsolated) {
  const std::int64_t n = 1000;
  ComponentLabels<NodeID> comp(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) comp[v] = static_cast<NodeID>(v);
  EXPECT_EQ(count_components(comp), n);
}

TEST(CountComponents, OneGiantComponent) {
  ComponentLabels<NodeID> comp(64);
  for (std::size_t v = 0; v < comp.size(); ++v) comp[v] = 0;
  EXPECT_EQ(count_components(comp), 1);
}

TEST(CountComponents, MixedLabels) {
  ComponentLabels<NodeID> comp{0, 0, 2, 2, 4, 0};
  EXPECT_EQ(count_components(comp), 3);
}

TEST(CheckLabelWidth, AcceptsWidestRepresentableShape) {
  // n - 1 == max id is the boundary: int16 labels hold exactly 32768 ids.
  EXPECT_NO_THROW(check_label_width<std::int16_t>("test", 32768));
  EXPECT_NO_THROW(check_label_width<std::int16_t>("test", 0));
  EXPECT_NO_THROW(check_label_width<std::int32_t>("test", std::int64_t{1}
                                                              << 31));
}

TEST(CheckLabelWidth, RejectsOneOverWithStructuredFields) {
  try {
    check_label_width<std::int16_t>("unit", 32769);
    FAIL() << "expected LabelWidthError";
  } catch (const LabelWidthError& e) {
    EXPECT_EQ(e.num_nodes(), 32769);
    EXPECT_EQ(e.max_label(), 32767);
    EXPECT_NE(std::string(e.what()).find("unit"), std::string::npos);
  }
  EXPECT_THROW(
      check_label_width<std::int32_t>("unit", (std::int64_t{1} << 31) + 1),
      LabelWidthError);
}

TEST(CheckLabelWidth, DerivesFromOverflowError) {
  // Pre-existing catch sites on std::overflow_error keep working.
  EXPECT_THROW(check_label_width<std::int16_t>("unit", 1 << 20),
               std::overflow_error);
}

}  // namespace
}  // namespace afforest
