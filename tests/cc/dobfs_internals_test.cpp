// White-box tests of the direction-optimizing BFS machinery: top-down and
// bottom-up steps, and the frontier representation conversions.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cc/dobfs_cc.hpp"
#include "graph/builder.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;
constexpr NodeID kUnvisited = -1;

Graph path5() {
  return build_undirected(EdgeList<NodeID>{{0, 1}, {1, 2}, {2, 3}, {3, 4}},
                          5);
}

TEST(DOBFSInternals, TopDownStepExpandsFrontierOneHop) {
  const Graph g = path5();
  pvector<NodeID> comp(5, kUnvisited);
  SlidingQueue<NodeID> queue(5);
  comp[0] = 0;
  queue.push_back(0);
  queue.slide_window();
  const auto scout = detail::td_step(g, NodeID{0}, kUnvisited, comp, queue);
  ASSERT_EQ(queue.size(), 1u);       // vertex 1 discovered
  EXPECT_EQ(*queue.begin(), 1);
  EXPECT_EQ(comp[1], 0);
  EXPECT_EQ(comp[2], kUnvisited);
  EXPECT_EQ(scout, g.out_degree(1));  // scout counts new vertices' degrees
}

TEST(DOBFSInternals, BottomUpStepWakesNeighborsOfFrontier) {
  const Graph g = path5();
  pvector<NodeID> comp(5, kUnvisited);
  comp[2] = 2;  // frontier = {2}
  Bitmap front(5), next(5);
  front.set_bit(2);
  const auto awake = detail::bu_step(g, NodeID{2}, kUnvisited, comp, front,
                                     next);
  EXPECT_EQ(awake, 2);  // vertices 1 and 3
  EXPECT_EQ(comp[1], 2);
  EXPECT_EQ(comp[3], 2);
  EXPECT_TRUE(next.get_bit(1));
  EXPECT_TRUE(next.get_bit(3));
  EXPECT_FALSE(next.get_bit(0));
}

TEST(DOBFSInternals, BottomUpStopsAtFirstParent) {
  // A vertex adjacent to two frontier members is woken exactly once.
  const Graph g =
      build_undirected(EdgeList<NodeID>{{0, 2}, {1, 2}}, 3);
  pvector<NodeID> comp(3, kUnvisited);
  comp[0] = 0;
  comp[1] = 0;
  Bitmap front(3), next(3);
  front.set_bit(0);
  front.set_bit(1);
  EXPECT_EQ(detail::bu_step(g, NodeID{0}, kUnvisited, comp, front, next), 1);
  EXPECT_EQ(comp[2], 0);
}

TEST(DOBFSInternals, QueueBitmapRoundTrip) {
  const Graph g = path5();
  SlidingQueue<NodeID> queue(5);
  queue.push_back(1);
  queue.push_back(4);
  queue.slide_window();
  Bitmap bm(5);
  detail::queue_to_bitmap(queue, bm);
  EXPECT_TRUE(bm.get_bit(1));
  EXPECT_TRUE(bm.get_bit(4));
  EXPECT_EQ(bm.count(), 2);

  SlidingQueue<NodeID> back(5);
  detail::bitmap_to_queue(g, bm, back);
  std::vector<NodeID> got(back.begin(), back.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<NodeID>{1, 4}));
}

TEST(DOBFSInternals, EmptyBitmapYieldsEmptyQueue) {
  const Graph g = path5();
  Bitmap bm(5);
  SlidingQueue<NodeID> queue(5);
  detail::bitmap_to_queue(g, bm, queue);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace afforest
