// Online connectivity on top of the Afforest primitives.
#include <gtest/gtest.h>

#include "cc/incremental.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/uniform.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(IncrementalCC, StartsFullyDisconnected) {
  IncrementalCC<NodeID> cc(5);
  EXPECT_EQ(cc.component_count(), 5);
  EXPECT_FALSE(cc.connected(0, 1));
  EXPECT_TRUE(cc.connected(2, 2));
}

TEST(IncrementalCC, EdgeInsertionConnects) {
  IncrementalCC<NodeID> cc(4);
  cc.add_edge(0, 2);
  EXPECT_TRUE(cc.connected(0, 2));
  EXPECT_FALSE(cc.connected(0, 1));
  EXPECT_EQ(cc.component_count(), 3);
}

TEST(IncrementalCC, TransitiveConnectivity) {
  IncrementalCC<NodeID> cc(6);
  cc.add_edge(0, 1);
  cc.add_edge(2, 3);
  EXPECT_FALSE(cc.connected(1, 2));
  cc.add_edge(1, 2);
  EXPECT_TRUE(cc.connected(0, 3));
  EXPECT_EQ(cc.component_count(), 3);  // {0,1,2,3}, {4}, {5}
}

TEST(IncrementalCC, QueriesInterleaveWithInsertions) {
  IncrementalCC<NodeID> cc(100);
  for (NodeID v = 1; v < 100; ++v) {
    cc.add_edge(static_cast<NodeID>(v - 1), v);
    ASSERT_TRUE(cc.connected(0, v));
    if (v + 1 < 100) {
      ASSERT_FALSE(cc.connected(0, static_cast<NodeID>(v + 1)));
    }
  }
  EXPECT_EQ(cc.component_count(), 1);
}

TEST(IncrementalCC, CompactPreservesPartition) {
  IncrementalCC<NodeID> cc(10);
  cc.add_edge(0, 5);
  cc.add_edge(5, 9);
  cc.compact();
  EXPECT_TRUE(cc.connected(0, 9));
  EXPECT_EQ(cc.find(9), 0);  // min-id root after compaction
}

TEST(IncrementalCC, LabelsSnapshotMatchesBatchReference) {
  const std::int64_t n = 1000;
  const auto edges = generate_uniform_edges<NodeID>(n, 2500, 21);
  IncrementalCC<NodeID> cc(n);
  for (const auto& [u, v] : edges) cc.add_edge(u, v);
  const auto snapshot = cc.labels();
  const auto reference = union_find_cc(edges, n);
  EXPECT_TRUE(labels_equivalent(snapshot, reference));
}

TEST(IncrementalCC, ParallelInsertionsAreSafe) {
  const std::int64_t n = 1 << 12;
  const auto edges = generate_uniform_edges<NodeID>(n, 4 * n, 33);
  IncrementalCC<NodeID> cc(n);
  const std::int64_t m = static_cast<std::int64_t>(edges.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < m; ++i) cc.add_edge(edges[i].u, edges[i].v);
  EXPECT_TRUE(labels_equivalent(cc.labels(), union_find_cc(edges, n)));
}

TEST(IncrementalCC, SelfLoopIsNoOp) {
  IncrementalCC<NodeID> cc(3);
  cc.add_edge(1, 1);
  EXPECT_EQ(cc.component_count(), 3);
}

TEST(IncrementalCC, RejectsOutOfRangeVertices) {
  // Regression: add_edge/connected/find used to silently accept endpoints
  // >= n (or negative) and index out of bounds.  They must throw the typed
  // VertexRangeError — still catchable as std::out_of_range — and leave
  // the partition untouched.
  IncrementalCC<NodeID> cc(4);
  cc.add_edge(0, 1);
  EXPECT_THROW(cc.add_edge(0, 4), VertexRangeError);
  EXPECT_THROW(cc.add_edge(4, 0), VertexRangeError);
  EXPECT_THROW(cc.add_edge(-1, 2), VertexRangeError);
  EXPECT_THROW((void)cc.connected(0, 4), VertexRangeError);
  EXPECT_THROW((void)cc.connected(-3, 1), VertexRangeError);
  EXPECT_THROW((void)cc.find(4), VertexRangeError);
  EXPECT_THROW(cc.add_edge(0, 4), std::out_of_range);  // back-compat

  EXPECT_EQ(cc.component_count(), 3);  // the rejected edges changed nothing

  try {
    cc.add_edge(0, 17);
    FAIL() << "expected VertexRangeError";
  } catch (const VertexRangeError& e) {
    EXPECT_EQ(e.vertex(), 17);
    EXPECT_EQ(e.num_nodes(), 4);
    EXPECT_NE(std::string(e.what()).find("IncrementalCC"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace afforest
