// Correctness tests for all baseline algorithms (SV CSR/edge-list, LP both
// variants, BFS-CC, DOBFS-CC) against the union-find reference.
#include <gtest/gtest.h>

#include "cc/bfs_cc.hpp"
#include "cc/dobfs_cc.hpp"
#include "cc/label_propagation.hpp"
#include "cc/shiloach_vishkin.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

Graph two_triangles() {
  return build_undirected(
      EdgeList<NodeID>{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}, 6);
}

// ----------------------------------------------------------------- SV CSR

TEST(ShiloachVishkin, TwoTriangles) {
  const Graph g = two_triangles();
  const auto comp = shiloach_vishkin(g);
  EXPECT_TRUE(verify_cc(g, comp));
  EXPECT_EQ(count_components(comp), 2);
}

TEST(ShiloachVishkin, ReportsIterationCount) {
  const Graph g = make_suite_graph("road", 10);
  std::int64_t iters = 0;
  const auto comp = shiloach_vishkin(g, &iters);
  EXPECT_GE(iters, 1);
  EXPECT_TRUE(labels_equivalent(comp, union_find_cc(g)));
}

TEST(ShiloachVishkin, EmptyAndSingleton) {
  const Graph empty = build_undirected(EdgeList<NodeID>{}, 0);
  EXPECT_EQ(shiloach_vishkin(empty).size(), 0u);
  const Graph one = build_undirected(EdgeList<NodeID>{}, 1);
  EXPECT_EQ(shiloach_vishkin(one)[0], 0);
}

TEST(ShiloachVishkin, PathGraphNeedsMultipleIterations) {
  // A long path forces label information to travel; SV must still finish.
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i < 512; ++i)
    edges.push_back({static_cast<NodeID>(i - 1), i});
  const Graph g = build_undirected(edges, 512);
  std::int64_t iters = 0;
  const auto comp = shiloach_vishkin(g, &iters);
  EXPECT_EQ(count_components(comp), 1);
  EXPECT_GE(iters, 2);
}

// ------------------------------------------------------------ original SV

TEST(ShiloachVishkinOriginal, MatchesModernFormulation) {
  for (const auto* name : {"road", "twitter", "web", "urand", "kron"}) {
    const Graph g = make_suite_graph(name, 10);
    ASSERT_TRUE(
        labels_equivalent(shiloach_vishkin_original(g), shiloach_vishkin(g)))
        << name;
  }
}

TEST(ShiloachVishkinOriginal, StagnationStepBoundsAdversarialIterations) {
  // The adversarial star stalls the conditional hook; the stagnant-root
  // hook must keep the iteration count modest.
  EdgeList<NodeID> edges;
  for (NodeID i = 0; i < 255; ++i) edges.push_back({i, 255});
  const Graph g = build_undirected(edges, 256);
  std::int64_t iters = 0;
  const auto comp = shiloach_vishkin_original(g, &iters);
  EXPECT_EQ(count_components(comp), 1);
  EXPECT_LE(iters, 10);
}

TEST(ShiloachVishkinOriginal, EmptyGraph) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 0);
  EXPECT_EQ(shiloach_vishkin_original(g).size(), 0u);
}

// ----------------------------------------------------------- SV edge list

TEST(ShiloachVishkinEdgeList, MatchesCSRVariant) {
  const Graph g = make_suite_graph("kron", 10);
  EdgeList<NodeID> edges;
  for (std::int64_t u = 0; u < g.num_nodes(); ++u)
    for (NodeID v : g.out_neigh(static_cast<NodeID>(u)))
      if (static_cast<NodeID>(u) < v)
        edges.push_back({static_cast<NodeID>(u), v});
  const auto from_list = shiloach_vishkin_edgelist(edges, g.num_nodes());
  EXPECT_TRUE(labels_equivalent(from_list, shiloach_vishkin(g)));
}

TEST(ShiloachVishkinEdgeList, EmptyEdgeList) {
  EdgeList<NodeID> edges;
  const auto comp = shiloach_vishkin_edgelist(edges, 10);
  EXPECT_EQ(count_components(comp), 10);
}

// -------------------------------------------------------------------- LP

TEST(LabelPropagation, TwoTriangles) {
  const Graph g = two_triangles();
  EXPECT_TRUE(verify_cc(g, label_propagation(g)));
}

TEST(LabelPropagation, IterationCountTracksDiameter) {
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i < 256; ++i)
    edges.push_back({static_cast<NodeID>(i - 1), i});
  const Graph g = build_undirected(edges, 256);
  std::int64_t iters = 0;
  const auto comp = label_propagation(g, &iters);
  EXPECT_EQ(count_components(comp), 1);
  // Min label must flow along the path; needs many rounds.
  EXPECT_GE(iters, 8);
}

TEST(LabelPropagationFrontier, MatchesTopologyDriven) {
  const Graph g = make_suite_graph("web", 10);
  EXPECT_TRUE(labels_equivalent(label_propagation_frontier(g),
                                label_propagation(g)));
}

TEST(LabelPropagationFrontier, EmptyGraph) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 0);
  EXPECT_EQ(label_propagation_frontier(g).size(), 0u);
}

TEST(LabelPropagationFrontier, LongPathCorrect) {
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i < 1000; ++i)
    edges.push_back({static_cast<NodeID>(i - 1), i});
  const Graph g = build_undirected(edges, 1000);
  const auto comp = label_propagation_frontier(g);
  EXPECT_EQ(count_components(comp), 1);
  EXPECT_TRUE(verify_cc(g, comp));
}

// ------------------------------------------------------------------- BFS

TEST(BFSCC, TwoTriangles) {
  const Graph g = two_triangles();
  std::int64_t num_components = 0;
  const auto comp = bfs_cc(g, &num_components);
  EXPECT_TRUE(verify_cc(g, comp));
  EXPECT_EQ(num_components, 2);
}

TEST(BFSCC, LabelsAreDiscoveryRoots) {
  EdgeList<NodeID> edges{{1, 2}, {4, 5}};
  const Graph g = build_undirected(edges, 6);
  const auto comp = bfs_cc(g);
  EXPECT_EQ(comp[0], 0);
  EXPECT_EQ(comp[1], 1);
  EXPECT_EQ(comp[2], 1);
  EXPECT_EQ(comp[4], 4);
  EXPECT_EQ(comp[5], 4);
}

TEST(BFSCC, ManySingletonComponents) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 1000);
  std::int64_t num_components = 0;
  bfs_cc(g, &num_components);
  EXPECT_EQ(num_components, 1000);
}

// ----------------------------------------------------------------- DOBFS

TEST(DOBFSCC, TwoTriangles) {
  const Graph g = two_triangles();
  std::int64_t num_components = 0;
  const auto comp = dobfs_cc(g, {}, &num_components);
  EXPECT_TRUE(verify_cc(g, comp));
  EXPECT_EQ(num_components, 2);
}

TEST(DOBFSCC, BottomUpTriggersOnDenseGraph) {
  // A dense single-component graph forces the bottom-up path (alpha
  // heuristic); results must stay correct.
  const Graph g = make_suite_graph("urand", 11);
  DOBFSOptions opts;
  opts.alpha = 1;  // switch to bottom-up almost immediately
  EXPECT_TRUE(labels_equivalent(dobfs_cc(g, opts), union_find_cc(g)));
}

TEST(DOBFSCC, TopDownOnlyPath) {
  const Graph g = make_suite_graph("road", 10);
  DOBFSOptions opts;
  opts.alpha = 1 << 30;  // never switch
  EXPECT_TRUE(labels_equivalent(dobfs_cc(g, opts), union_find_cc(g)));
}

TEST(DOBFSCC, ExtremeBetaValues) {
  const Graph g = make_suite_graph("web", 10);
  for (std::int64_t beta : {1LL, 2LL, 1000000LL}) {
    DOBFSOptions opts;
    opts.beta = beta;
    ASSERT_TRUE(labels_equivalent(dobfs_cc(g, opts), union_find_cc(g)))
        << "beta=" << beta;
  }
}

TEST(DOBFSCC, EmptyGraph) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 0);
  EXPECT_EQ(dobfs_cc(g).size(), 0u);
}

}  // namespace
}  // namespace afforest
