// 64-bit NodeID instantiation tests: the whole pipeline (builder, CSR,
// kernels) is templated on NodeID as in GAPBS; this suite proves the
// int64_t instantiation works, which graphs beyond 2^31 vertices require.
#include <gtest/gtest.h>

#include "cc/afforest.hpp"
#include "cc/bfs_cc.hpp"
#include "cc/dobfs_cc.hpp"
#include "cc/label_propagation.hpp"
#include "cc/shiloach_vishkin.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/uniform.hpp"

namespace afforest {
namespace {

using NodeID64 = std::int64_t;
using Graph64 = CSRGraph<NodeID64>;

Graph64 random_graph64(std::int64_t n, std::int64_t m, std::uint64_t seed) {
  return build_undirected(generate_uniform_edges<NodeID64>(n, m, seed), n);
}

TEST(NodeID64, BuilderProducesValidCSR) {
  const Graph64 g = random_graph64(1000, 4000, 1);
  EXPECT_EQ(g.num_nodes(), 1000);
  EXPECT_GT(g.num_edges(), 0);
}

TEST(NodeID64, AfforestMatchesReference) {
  const Graph64 g = random_graph64(2000, 6000, 2);
  EXPECT_TRUE(labels_equivalent(afforest_cc(g), union_find_cc(g)));
}

TEST(NodeID64, AfforestNoSkipMatches) {
  const Graph64 g = random_graph64(2000, 6000, 3);
  EXPECT_TRUE(labels_equivalent(afforest_no_skip(g), union_find_cc(g)));
}

TEST(NodeID64, ShiloachVishkinMatches) {
  const Graph64 g = random_graph64(1000, 3000, 4);
  EXPECT_TRUE(labels_equivalent(shiloach_vishkin(g), union_find_cc(g)));
}

TEST(NodeID64, LabelPropagationMatches) {
  const Graph64 g = random_graph64(1000, 3000, 5);
  EXPECT_TRUE(labels_equivalent(label_propagation(g), union_find_cc(g)));
  EXPECT_TRUE(
      labels_equivalent(label_propagation_frontier(g), union_find_cc(g)));
}

TEST(NodeID64, BFSVariantsMatch) {
  const Graph64 g = random_graph64(1000, 2000, 6);
  EXPECT_TRUE(labels_equivalent(bfs_cc(g), union_find_cc(g)));
  EXPECT_TRUE(labels_equivalent(dobfs_cc(g), union_find_cc(g)));
}

TEST(NodeID64, LinkCompressPrimitives) {
  auto comp = identity_labels<NodeID64>(10);
  link<NodeID64>(3, 8, comp);
  link<NodeID64>(8, 5, comp);
  compress_all(comp);
  EXPECT_EQ(comp[8], 3);
  EXPECT_EQ(comp[5], 3);
}

TEST(NodeID64, LabelsUseFullWidth) {
  // Dense-array CSR cannot host ids beyond memory, but the arithmetic must
  // go through int64 paths: check labels on a graph of a few million ids.
  const NodeID64 n = 3'000'000;
  EdgeList<NodeID64> edges{{n - 1, n - 2}, {n - 2, n - 3}};
  const auto g = build_undirected(edges, n);
  const auto comp = afforest_cc(g);
  EXPECT_EQ(comp[n - 1], n - 3);
  EXPECT_EQ(comp[n - 2], n - 3);
  EXPECT_EQ(comp[0], 0);
}

}  // namespace
}  // namespace afforest
