// Parallel spanning forest via link witnesses (§IV-A dual).
#include <gtest/gtest.h>

#include "cc/afforest_forest.hpp"
#include "cc/spanning_forest.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(LinkWitness, ReportsMergeExactlyOnce) {
  auto comp = identity_labels<NodeID>(4);
  EXPECT_TRUE(link_witness<NodeID>(0, 1, comp));
  EXPECT_FALSE(link_witness<NodeID>(0, 1, comp));
  EXPECT_FALSE(link_witness<NodeID>(1, 0, comp));
}

TEST(LinkWitness, ChainOfMergesCountsVMinusC) {
  auto comp = identity_labels<NodeID>(8);
  int merges = 0;
  for (NodeID v = 1; v < 8; ++v)
    if (link_witness<NodeID>(static_cast<NodeID>(v - 1), v, comp)) ++merges;
  EXPECT_EQ(merges, 7);
}

TEST(AfforestForest, SizeIsVMinusCOnSuite) {
  for (const auto* name : {"road", "osm-eur", "twitter", "web", "urand",
                           "kron"}) {
    const Graph g = make_suite_graph(name, 10);
    const auto result = afforest_spanning_forest(g);
    const auto c = count_components(result.labels);
    EXPECT_EQ(static_cast<std::int64_t>(result.forest.size()),
              g.num_nodes() - c)
        << name;
  }
}

TEST(AfforestForest, ForestIsValidSpanningForest) {
  const Graph g = make_suite_graph("web", 10);
  const auto result = afforest_spanning_forest(g);
  EXPECT_TRUE(is_spanning_forest(g, result.forest));
}

TEST(AfforestForest, LabelsMatchReference) {
  const Graph g = make_suite_graph("kron", 10);
  const auto result = afforest_spanning_forest(g);
  EXPECT_TRUE(labels_equivalent(result.labels, union_find_cc(g)));
}

TEST(AfforestForest, MatchesSerialForestSize) {
  const Graph g = make_suite_graph("twitter", 10);
  const auto parallel_forest = afforest_spanning_forest(g).forest;
  const auto serial_forest = spanning_forest(g);
  EXPECT_EQ(parallel_forest.size(), serial_forest.size());
}

TEST(AfforestForest, EmptyAndEdgelessGraphs) {
  const Graph empty = build_undirected(EdgeList<NodeID>{}, 0);
  EXPECT_TRUE(afforest_spanning_forest(empty).forest.empty());
  const Graph isolated = build_undirected(EdgeList<NodeID>{}, 10);
  EXPECT_TRUE(afforest_spanning_forest(isolated).forest.empty());
}

TEST(AfforestForest, ZeroNeighborRounds) {
  const Graph g = make_suite_graph("urand", 9);
  const auto result = afforest_spanning_forest(g, 0);
  EXPECT_TRUE(is_spanning_forest(g, result.forest));
}

}  // namespace
}  // namespace afforest
