#include "cc/afforest_timed.hpp"

#include <gtest/gtest.h>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

TEST(AfforestTimed, LabelsMatchReference) {
  const Graph g = make_suite_graph("web", 10);
  AfforestPhaseTimes times;
  const auto labels = afforest_timed(g, times);
  EXPECT_TRUE(labels_equivalent(labels, union_find_cc(g)));
}

TEST(AfforestTimed, AllPhasesNonNegativeAndTotalConsistent) {
  const Graph g = make_suite_graph("kron", 10);
  AfforestPhaseTimes times;
  afforest_timed(g, times);
  EXPECT_GE(times.init_s, 0.0);
  EXPECT_GE(times.sampling_s, 0.0);
  EXPECT_GE(times.compress_s, 0.0);
  EXPECT_GE(times.find_component_s, 0.0);
  EXPECT_GE(times.final_link_s, 0.0);
  EXPECT_NEAR(times.total_s(),
              times.init_s + times.sampling_s + times.compress_s +
                  times.find_component_s + times.final_link_s,
              1e-12);
  EXPECT_GT(times.total_s(), 0.0);
}

TEST(AfforestTimed, NoSkipHasNoFindPhase) {
  const Graph g = make_suite_graph("urand", 9);
  AfforestOptions opts;
  opts.skip_largest = false;
  AfforestPhaseTimes times;
  const auto labels = afforest_timed(g, times, opts);
  EXPECT_DOUBLE_EQ(times.find_component_s, 0.0);
  EXPECT_TRUE(labels_equivalent(labels, union_find_cc(g)));
}

TEST(AfforestTimed, ZeroRoundsSkipsSamplingPhase) {
  const Graph g = make_suite_graph("road", 9);
  AfforestOptions opts;
  opts.neighbor_rounds = 0;
  AfforestPhaseTimes times;
  const auto labels = afforest_timed(g, times, opts);
  EXPECT_DOUBLE_EQ(times.sampling_s, 0.0);
  EXPECT_TRUE(labels_equivalent(labels, union_find_cc(g)));
}

TEST(AfforestTimed, DirectedGraphSupported) {
  const auto g =
      build_directed(EdgeList<std::int32_t>{{0, 1}, {2, 1}, {3, 4}}, 5);
  AfforestPhaseTimes times;
  const auto labels = afforest_timed(g, times);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

}  // namespace
}  // namespace afforest
