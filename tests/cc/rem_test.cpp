#include "cc/rem.hpp"

#include <gtest/gtest.h>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"
#include "graph/generators/uniform.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(RemUnite, MergesAndReportsChange) {
  auto parent = identity_labels<NodeID>(4);
  EXPECT_TRUE(rem_unite<NodeID>(0, 3, parent));
  EXPECT_FALSE(rem_unite<NodeID>(3, 0, parent));
}

TEST(RemUnite, MaintainsParentInvariant) {
  auto parent = identity_labels<NodeID>(64);
  Xoshiro256 rng(3);
  for (int e = 0; e < 300; ++e) {
    const auto u = static_cast<NodeID>(rng.next_bounded(64));
    const auto v = static_cast<NodeID>(rng.next_bounded(64));
    if (u != v) rem_unite(u, v, parent);
    for (std::size_t x = 0; x < parent.size(); ++x)
      ASSERT_LE(parent[x], static_cast<NodeID>(x));
  }
}

TEST(RemCC, MatchesReferenceOnSuite) {
  for (const auto* name : {"road", "osm-eur", "twitter", "web", "urand",
                           "kron"}) {
    const Graph g = make_suite_graph(name, 10);
    const auto truth = union_find_cc(g);
    EXPECT_TRUE(labels_equivalent(rem_cc(g), truth)) << "serial " << name;
    EXPECT_TRUE(labels_equivalent(rem_cc_parallel(g), truth))
        << "parallel " << name;
  }
}

TEST(RemCC, LabelsAreComponentMinima) {
  const Graph g = build_undirected(EdgeList<NodeID>{{5, 9}, {9, 7}}, 10);
  const auto comp = rem_cc(g);
  EXPECT_EQ(comp[9], 5);
  EXPECT_EQ(comp[7], 5);
}

TEST(RemCC, EmptyAndSingleton) {
  const Graph empty = build_undirected(EdgeList<NodeID>{}, 0);
  EXPECT_EQ(rem_cc(empty).size(), 0u);
  const Graph one = build_undirected(EdgeList<NodeID>{}, 1);
  EXPECT_EQ(rem_cc_parallel(one)[0], 0);
}

TEST(RemCCParallel, StressManySeeds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::int64_t n = 1 << 11;
    const Graph g = build_undirected(
        generate_uniform_edges<NodeID>(n, 3 * n, seed), n);
    ASSERT_TRUE(labels_equivalent(rem_cc_parallel(g), union_find_cc(g)))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace afforest
