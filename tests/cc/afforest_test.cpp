// Correctness tests for the full Afforest driver across configurations and
// topologies, plus its documented label convention and edge cases.
#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "cc/afforest.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(Afforest, EmptyGraph) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 0);
  const auto comp = afforest_cc(g);
  EXPECT_EQ(comp.size(), 0u);
}

TEST(Afforest, SingleVertex) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 1);
  const auto comp = afforest_cc(g);
  ASSERT_EQ(comp.size(), 1u);
  EXPECT_EQ(comp[0], 0);
}

TEST(Afforest, AllIsolatedVertices) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 50);
  const auto comp = afforest_cc(g);
  for (std::size_t v = 0; v < comp.size(); ++v)
    EXPECT_EQ(comp[v], static_cast<NodeID>(v));
  EXPECT_EQ(count_components(comp), 50);
}

TEST(Afforest, SingleEdge) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}}, 2);
  const auto comp = afforest_cc(g);
  EXPECT_EQ(comp[0], comp[1]);
}

TEST(Afforest, PathGraph) {
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i < 100; ++i)
    edges.push_back({static_cast<NodeID>(i - 1), i});
  const Graph g = build_undirected(edges, 100);
  const auto comp = afforest_cc(g);
  EXPECT_TRUE(verify_cc(g, comp));
  EXPECT_EQ(count_components(comp), 1);
}

TEST(Afforest, TwoComponents) {
  EdgeList<NodeID> edges{{0, 1}, {1, 2}, {3, 4}};
  const Graph g = build_undirected(edges, 5);
  const auto comp = afforest_cc(g);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Afforest, LabelsAreMinimumVertexIdOfComponent) {
  EdgeList<NodeID> edges{{5, 9}, {9, 7}, {2, 4}};
  const Graph g = build_undirected(edges, 10);
  const auto comp = afforest_cc(g);
  EXPECT_EQ(comp[5], 5);
  EXPECT_EQ(comp[9], 5);
  EXPECT_EQ(comp[7], 5);
  EXPECT_EQ(comp[2], 2);
  EXPECT_EQ(comp[4], 2);
  EXPECT_EQ(comp[0], 0);
}

TEST(Afforest, StarGraphWhereRootHasHighestId) {
  // The adversarial-ish shape from §V-A: hub has the highest index.
  EdgeList<NodeID> edges;
  for (NodeID i = 0; i < 63; ++i) edges.push_back({i, 63});
  const Graph g = build_undirected(edges, 64);
  const auto comp = afforest_cc(g);
  EXPECT_TRUE(verify_cc(g, comp));
  EXPECT_EQ(count_components(comp), 1);
}

// Sweep neighbor_rounds x skip_largest over every suite family.
class AfforestConfigTest
    : public ::testing::TestWithParam<std::tuple<int, bool, std::string>> {};

TEST_P(AfforestConfigTest, MatchesReferenceOnSuiteGraph) {
  const auto [rounds, skip, family] = GetParam();
  const Graph g = make_suite_graph(family, 10);
  AfforestOptions opts;
  opts.neighbor_rounds = rounds;
  opts.skip_largest = skip;
  const auto comp = afforest_cc(g, opts);
  EXPECT_TRUE(labels_equivalent(comp, union_find_cc(g)))
      << "rounds=" << rounds << " skip=" << skip << " family=" << family;
}

INSTANTIATE_TEST_SUITE_P(
    RoundsSkipFamily, AfforestConfigTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 8),
                       ::testing::Bool(),
                       ::testing::Values("road", "osm-eur", "twitter", "web",
                                         "urand", "kron")),
    [](const auto& info) {
      std::string name = "r" + std::to_string(std::get<0>(info.param)) +
                         (std::get<1>(info.param) ? "_skip_" : "_noskip_") +
                         std::get<2>(info.param);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(Afforest, NegativeNeighborRoundsClampedToZero) {
  const Graph g = make_suite_graph("urand", 8);
  AfforestOptions opts;
  opts.neighbor_rounds = -3;
  EXPECT_TRUE(verify_cc(g, afforest_cc(g, opts)));
}

TEST(Afforest, TinySampleCountStillCorrect) {
  // Even a bad skip guess must not break correctness (Theorem 3 holds for
  // ANY intermediate component).
  const Graph g = make_suite_graph("kron", 10);
  AfforestOptions opts;
  opts.sample_count = 1;
  EXPECT_TRUE(labels_equivalent(afforest_cc(g, opts), union_find_cc(g)));
}

TEST(Afforest, NeighborRoundsBeyondMaxDegree) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}, {1, 2}}, 3);
  AfforestOptions opts;
  opts.neighbor_rounds = 100;  // exceeds every degree
  EXPECT_TRUE(verify_cc(g, afforest_cc(g, opts)));
}

TEST(Afforest, DeterministicLabelsAcrossRuns) {
  // Labels are min-ids, so repeated runs agree exactly even with threads.
  const Graph g = make_suite_graph("twitter", 11);
  const auto a = afforest_cc(g);
  const auto b = afforest_cc(g);
  for (std::size_t v = 0; v < a.size(); ++v) ASSERT_EQ(a[v], b[v]);
}

TEST(AfforestNoSkip, MatchesSkippingVariant) {
  const Graph g = make_suite_graph("web", 11);
  EXPECT_TRUE(labels_equivalent(afforest_cc(g), afforest_no_skip(g)));
}

class UniformSamplingTest : public ::testing::TestWithParam<double> {};

TEST_P(UniformSamplingTest, MatchesReferenceAcrossSamplingRates) {
  // §IV-B ablation variant: correctness must hold for any sampling
  // probability, including p=0 (no sampling) and p=1 (sample everything).
  const double p = GetParam();
  for (const auto* family : {"web", "urand", "kron"}) {
    const Graph g = make_suite_graph(family, 10);
    EXPECT_TRUE(labels_equivalent(afforest_uniform_sampling(g, p),
                                  union_find_cc(g)))
        << family << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, UniformSamplingTest,
                         ::testing::Values(0.0, 0.05, 0.25, 0.5, 1.0));

TEST(AfforestUniformSampling, ThresholdSaturatesAtFullSampling) {
  // Regression: sample_p >= 1.0 used to cast sample_p * 2^64 to uint64,
  // which is UB ([conv.fpint]) — under -O3 the result could collapse to 0
  // and silently sample NOTHING in phase 1.  The saturated threshold must
  // accept every possible edge hash, i.e. p=1.0 links every edge.
  EXPECT_EQ(uniform_sample_threshold(1.0),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(uniform_sample_threshold(1.5),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(uniform_sample_threshold(100.0),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(uniform_sample_threshold(0.0), 0u);
  EXPECT_EQ(uniform_sample_threshold(-0.25), 0u);
  // Monotone in between, and ~p·2^64 at the midpoint.
  EXPECT_LT(uniform_sample_threshold(0.25), uniform_sample_threshold(0.75));
  EXPECT_NEAR(static_cast<double>(uniform_sample_threshold(0.5)),
              0.5 * static_cast<double>(std::numeric_limits<std::uint64_t>::max()),
              1e13);
  // Every edge-hash value passes the p=1.0 acceptance predicate — the
  // "links every edge" guarantee phase 1 relies on.
  SplitMix64 hash(0xFEEDFACE);
  for (int i = 0; i < 4096; ++i)
    ASSERT_LE(hash.next(), uniform_sample_threshold(1.0));
}

TEST(AfforestUniformSampling, OversamplingProbabilityStaysCorrect) {
  // p > 1.0 (saturated) must behave exactly like p = 1.0: the previous
  // cast was UB for any p >= 1.0, so this doubles as the UBSan regression.
  for (const double p : {1.0, 2.0, 64.0}) {
    const Graph g = make_suite_graph("urand", 10);
    EXPECT_TRUE(labels_equivalent(afforest_uniform_sampling(g, p),
                                  union_find_cc(g)))
        << "p=" << p;
  }
}

TEST(AfforestUniformSampling, DeterministicForSeed) {
  const Graph g = make_suite_graph("kron", 10);
  const auto a = afforest_uniform_sampling(g, 0.1);
  const auto b = afforest_uniform_sampling(g, 0.1);
  for (std::size_t v = 0; v < a.size(); ++v) ASSERT_EQ(a[v], b[v]);
}

TEST(Afforest, DenseCliqueCorrect) {
  EdgeList<NodeID> edges;
  const NodeID k = 40;
  for (NodeID i = 0; i < k; ++i)
    for (NodeID j = static_cast<NodeID>(i + 1); j < k; ++j)
      edges.push_back({i, j});
  const Graph g = build_undirected(edges, k);
  const auto comp = afforest_cc(g);
  EXPECT_EQ(count_components(comp), 1);
  EXPECT_TRUE(verify_cc(g, comp));
}

}  // namespace
}  // namespace afforest
