// Unit tests for Afforest's primitives: link, compress, and
// sample_frequent_element — including the paper's invariants (Invariant 1,
// Lemmas 1–5, Theorem 2).
#include <gtest/gtest.h>

#include <set>

#include "cc/afforest.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

bool invariant_holds(const pvector<NodeID>& comp) {
  for (std::size_t v = 0; v < comp.size(); ++v)
    if (comp[v] > static_cast<NodeID>(v)) return false;
  return true;
}

bool acyclic(const pvector<NodeID>& comp) {
  // Invariant 1 implies acyclicity (Lemma 1); verify directly by walking.
  for (std::size_t v = 0; v < comp.size(); ++v) {
    NodeID x = static_cast<NodeID>(v);
    std::size_t steps = 0;
    while (comp[x] != x) {
      x = comp[x];
      if (++steps > comp.size()) return false;
    }
  }
  return true;
}

NodeID root_of(const pvector<NodeID>& comp, NodeID v) {
  while (comp[v] != v) v = comp[v];
  return v;
}

TEST(Link, MergesTwoSingletons) {
  auto comp = identity_labels<NodeID>(4);
  link<NodeID>(1, 3, comp);
  EXPECT_EQ(root_of(comp, 1), root_of(comp, 3));
  EXPECT_TRUE(invariant_holds(comp));
}

TEST(Link, HooksHigherRootOntoLower) {
  auto comp = identity_labels<NodeID>(4);
  link<NodeID>(1, 3, comp);
  EXPECT_EQ(comp[3], 1);  // 3 (higher) points to 1 (lower)
  EXPECT_EQ(comp[1], 1);
}

TEST(Link, IdempotentOnSameEdge) {
  auto comp = identity_labels<NodeID>(4);
  link<NodeID>(1, 3, comp);
  const auto before = comp.clone();
  link<NodeID>(1, 3, comp);
  link<NodeID>(3, 1, comp);
  for (std::size_t i = 0; i < comp.size(); ++i)
    EXPECT_EQ(comp[i], before[i]);
}

TEST(Link, ChainsAcrossExistingTrees) {
  auto comp = identity_labels<NodeID>(6);
  link<NodeID>(4, 5, comp);  // tree {4,5}
  link<NodeID>(2, 3, comp);  // tree {2,3}
  link<NodeID>(5, 3, comp);  // merge them
  EXPECT_EQ(root_of(comp, 4), root_of(comp, 2));
  EXPECT_TRUE(invariant_holds(comp));
  EXPECT_TRUE(acyclic(comp));
}

TEST(Link, PreservesInvariantOnRandomSequences) {
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    auto comp = identity_labels<NodeID>(64);
    for (int e = 0; e < 200; ++e) {
      const auto u = static_cast<NodeID>(rng.next_bounded(64));
      const auto v = static_cast<NodeID>(rng.next_bounded(64));
      if (u != v) link(u, v, comp);
      ASSERT_TRUE(invariant_holds(comp)) << "trial " << trial;
    }
    ASSERT_TRUE(acyclic(comp));
  }
}

TEST(Link, ParallelStressConvergesToSingleTree) {
  // Hammer one big clique-ish edge set concurrently; afterwards all
  // vertices must share a root (Lemma 5 under contention).
  const std::int64_t n = 1 << 12;
  auto comp = identity_labels<NodeID>(n);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n * 8; ++i) {
    Xoshiro256 rng(static_cast<std::uint64_t>(i));
    const auto u = static_cast<NodeID>(rng.next_bounded(n));
    const auto v = static_cast<NodeID>((u + 1) % n);
    link(u, v, comp);
  }
  const NodeID r = root_of(comp, 0);
  for (std::int64_t v = 0; v < n; ++v)
    ASSERT_EQ(root_of(comp, static_cast<NodeID>(v)), r);
  EXPECT_TRUE(invariant_holds(comp));
}

TEST(Compress, SingleVertexPathBecomesDepthOne) {
  // Build chain 3 -> 2 -> 1 -> 0 by hand.
  pvector<NodeID> comp{0, 0, 1, 2};
  compress<NodeID>(3, comp);
  EXPECT_EQ(comp[3], 0);
}

TEST(CompressAll, AllTreesReachDepthOne) {
  pvector<NodeID> comp{0, 0, 1, 2, 4, 4, 5, 6};
  compress_all(comp);
  for (std::size_t v = 0; v < comp.size(); ++v)
    EXPECT_EQ(comp[comp[v]], comp[v]) << "v=" << v;
  // Connectivity preserved (Theorem 2).
  EXPECT_EQ(comp[3], 0);
  EXPECT_EQ(comp[7], 4);
}

TEST(CompressAll, IdempotentOnCompressedForest) {
  pvector<NodeID> comp{0, 0, 0, 3, 3};
  const auto before = comp.clone();
  compress_all(comp);
  for (std::size_t i = 0; i < comp.size(); ++i)
    EXPECT_EQ(comp[i], before[i]);
}

TEST(CompressAll, EmptyArrayIsFine) {
  pvector<NodeID> comp;
  compress_all(comp);
  EXPECT_TRUE(comp.empty());
}

TEST(SampleFrequentElement, FindsGiantComponentLabel) {
  // 90% of entries labeled 7, rest unique.
  const std::int64_t n = 10000;
  pvector<NodeID> comp(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    comp[i] = (i % 10 == 0) ? static_cast<NodeID>(i) : 7;
  EXPECT_EQ(sample_frequent_element(comp, 512), 7);
}

TEST(SampleFrequentElement, DeterministicForSeed) {
  pvector<NodeID> comp(1000, 3);
  EXPECT_EQ(sample_frequent_element(comp, 64, 99),
            sample_frequent_element(comp, 64, 99));
}

TEST(SampleFrequentElement, UniformLabelsReturnSomeLabel) {
  // No giant component: any returned label must at least be present.
  pvector<NodeID> comp(100);
  for (std::size_t i = 0; i < 100; ++i) comp[i] = static_cast<NodeID>(i);
  const NodeID s = sample_frequent_element(comp, 32);
  EXPECT_GE(s, 0);
  EXPECT_LT(s, 100);
}

TEST(IdentityLabels, EveryVertexSelfPointing) {
  const auto comp = identity_labels<NodeID>(100);
  for (std::size_t v = 0; v < comp.size(); ++v)
    EXPECT_EQ(comp[v], static_cast<NodeID>(v));
}

TEST(CountComponents, DistinctLabelCount) {
  pvector<NodeID> comp{0, 0, 2, 2, 4};
  EXPECT_EQ(count_components(comp), 3);
}

}  // namespace
}  // namespace afforest
