#include "cc/spanning_forest.hpp"

#include <gtest/gtest.h>

#include "cc/component_stats.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(SpanningForest, SizeIsVMinusC) {
  // Two triangles + isolated vertex: V=7, C=3 → 4 forest edges.
  const Graph g = build_undirected(
      EdgeList<NodeID>{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}, 7);
  const auto forest = spanning_forest(g);
  EXPECT_EQ(forest.size(), 4u);
}

TEST(SpanningForest, EmptyGraphHasEmptyForest) {
  const Graph g = build_undirected(EdgeList<NodeID>{}, 5);
  EXPECT_TRUE(spanning_forest(g).empty());
}

TEST(SpanningForest, TreeInputReturnsAllEdges) {
  EdgeList<NodeID> edges{{0, 1}, {1, 2}, {2, 3}};
  const Graph g = build_undirected(edges, 4);
  EXPECT_EQ(spanning_forest(g).size(), 3u);
}

TEST(SpanningForest, ValidatesWithChecker) {
  const Graph g = make_suite_graph("web", 10);
  const auto forest = spanning_forest(g);
  EXPECT_TRUE(is_spanning_forest(g, forest));
  const auto truth = union_find_cc(g);
  const auto c = count_components(truth);
  EXPECT_EQ(static_cast<std::int64_t>(forest.size()), g.num_nodes() - c);
}

TEST(SpanningForest, SuiteFamiliesAllValid) {
  for (const auto& name : {"road", "osm-eur", "twitter", "urand", "kron"}) {
    const Graph g = make_suite_graph(name, 9);
    EXPECT_TRUE(is_spanning_forest(g, spanning_forest(g))) << name;
  }
}

TEST(IsSpanningForest, RejectsCycleEdge) {
  const Graph g =
      build_undirected(EdgeList<NodeID>{{0, 1}, {1, 2}, {2, 0}}, 3);
  EdgeList<NodeID> with_cycle{{0, 1}, {1, 2}, {2, 0}};
  EXPECT_FALSE(is_spanning_forest(g, with_cycle));
}

TEST(IsSpanningForest, RejectsIncompleteForest) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}, {1, 2}}, 3);
  EdgeList<NodeID> partial{{0, 1}};  // misses vertex 2's connection
  EXPECT_FALSE(is_spanning_forest(g, partial));
}

TEST(SpanningForest, CCFromForestMatchesCCFromGraph) {
  // The §IV-A duality: processing only SF edges yields correct CC labels.
  const Graph g = make_suite_graph("kron", 10);
  const auto forest = spanning_forest(g);
  const auto from_forest = union_find_cc(forest, g.num_nodes());
  EXPECT_TRUE(labels_equivalent(from_forest, union_find_cc(g)));
}

}  // namespace
}  // namespace afforest
