#include "dist/partitioned_cc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(PartitionOf, BlocksAreContiguousAndCoverAll) {
  const std::int64_t n = 100;
  const int parts = 7;
  int prev = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    const int p = partition_of(v, n, parts);
    ASSERT_GE(p, prev);  // non-decreasing => contiguous blocks
    ASSERT_LT(p, parts);
    prev = p;
  }
  EXPECT_EQ(partition_of(0, n, parts), 0);
  EXPECT_EQ(partition_of(n - 1, n, parts), parts - 1);
}

TEST(PartitionOf, SinglePartOwnsEverything) {
  for (std::int64_t v : {0, 5, 99})
    EXPECT_EQ(partition_of(v, 100, 1), 0);
}

TEST(PartitionedCC, InvalidPartCountThrows) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}}, 2);
  EXPECT_THROW(partitioned_cc(g, 0), std::invalid_argument);
}

class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, MatchesReferenceOnSuite) {
  const int parts = GetParam();
  for (const auto* name : {"road", "osm-eur", "twitter", "urand", "kron"}) {
    const Graph g = make_suite_graph(name, 10);
    PartitionedCCStats stats;
    const auto comp = partitioned_cc(g, parts, &stats);
    ASSERT_TRUE(labels_equivalent(comp, union_find_cc(g)))
        << name << " parts=" << parts;
    EXPECT_EQ(stats.internal_edges + stats.boundary_edges, g.num_edges())
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartitionSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 64));

TEST(PartitionedCC, OnePartHasNoBoundary) {
  const Graph g = make_suite_graph("web", 9);
  PartitionedCCStats stats;
  partitioned_cc(g, 1, &stats);
  EXPECT_EQ(stats.boundary_edges, 0);
  EXPECT_EQ(stats.quotient_edges, 0);
  EXPECT_DOUBLE_EQ(stats.communication_fraction(), 0.0);
}

TEST(PartitionedCC, BoundaryGrowsWithPartCount) {
  const Graph g = make_suite_graph("urand", 11);
  std::int64_t prev_boundary = -1;
  for (int parts : {2, 4, 16}) {
    PartitionedCCStats stats;
    partitioned_cc(g, parts, &stats);
    EXPECT_GT(stats.boundary_edges, prev_boundary) << parts;
    prev_boundary = stats.boundary_edges;
  }
}

TEST(PartitionedCC, QuotientIsSmallAfterLocalWork) {
  // The distributed-feasibility claim: local CC collapses each block, so
  // the merged (communicated) problem is far smaller than the edge cut.
  const Graph g = make_suite_graph("urand", 12);
  PartitionedCCStats stats;
  partitioned_cc(g, 8, &stats);
  EXPECT_GT(stats.boundary_edges, 0);
  EXPECT_LT(stats.quotient_edges, stats.boundary_edges);
  EXPECT_LE(stats.quotient_vertices, 2 * stats.quotient_edges);
}

TEST(PartitionedCC, MorePartsThanVertices) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}, {1, 2}}, 3);
  const auto comp = partitioned_cc(g, 50);
  EXPECT_TRUE(verify_cc(g, comp));
}

TEST(PartitionedCC, RoadGraphHasLowCommunication) {
  // Lattices under contiguous 1D blocks cut few edges — the topology a
  // distributed road-network deployment exploits.
  const Graph g = make_suite_graph("road", 12);
  PartitionedCCStats stats;
  partitioned_cc(g, 8, &stats);
  EXPECT_LT(stats.communication_fraction(), 0.1);
}

}  // namespace
}  // namespace afforest
