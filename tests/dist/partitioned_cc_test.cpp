#include "dist/partitioned_cc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(PartitionOf, BlocksAreContiguousAndCoverAll) {
  const std::int64_t n = 100;
  const int parts = 7;
  int prev = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    const int p = partition_of(v, n, parts);
    ASSERT_GE(p, prev);  // non-decreasing => contiguous blocks
    ASSERT_LT(p, parts);
    prev = p;
  }
  EXPECT_EQ(partition_of(0, n, parts), 0);
  EXPECT_EQ(partition_of(n - 1, n, parts), parts - 1);
}

TEST(PartitionOf, SinglePartOwnsEverything) {
  for (std::int64_t v : {0, 5, 99})
    EXPECT_EQ(partition_of(v, 100, 1), 0);
}

TEST(PartitionOf, NonDivisibleBlockEdgesMatchPartitionFirst) {
  // 23 vertices over 7 parts does not divide evenly; partition_first must
  // be the exact inverse boundary map of partition_of on every block edge.
  const std::int64_t n = 23;
  const int parts = 7;
  EXPECT_EQ(partition_first(0, n, parts), 0);
  EXPECT_EQ(partition_first(parts, n, parts), n);
  for (int p = 0; p < parts; ++p) {
    const std::int64_t first = partition_first(p, n, parts);
    const std::int64_t next = partition_first(p + 1, n, parts);
    ASSERT_LT(first, next) << "empty block " << p;  // n > parts: all nonempty
    EXPECT_EQ(partition_of(first, n, parts), p);
    EXPECT_EQ(partition_of(next - 1, n, parts), p);
    if (p > 0) {
      EXPECT_EQ(partition_of(first - 1, n, parts), p - 1);
    }
  }
}

TEST(PartitionOf, ClampAtLastVertex) {
  // The p >= num_parts clamp is defensive: floor((n-1)·P/n) <= P-1 always,
  // so whenever n >= parts the last vertex lands exactly in the last part,
  // never beyond.  (With parts > n the tail blocks are empty; see
  // MorePartsThanVerticesYieldsEmptyTailBlocks.)
  for (const auto& [n, parts] :
       {std::pair<std::int64_t, int>{1, 1}, {7, 7}, {100, 7}, {100, 64},
        {(std::int64_t{1} << 40), 1024}}) {
    EXPECT_EQ(partition_of(n - 1, n, parts), parts - 1)
        << "n=" << n << " parts=" << parts;
    EXPECT_EQ(partition_of(0, n, parts), 0);
  }
}

TEST(PartitionOf, MorePartsThanVerticesYieldsEmptyTailBlocks) {
  const std::int64_t n = 3;
  const int parts = 50;
  for (std::int64_t v = 0; v < n; ++v) {
    const int p = partition_of(v, n, parts);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, parts);
    // Consistency with the block map even when most blocks are empty.
    EXPECT_GE(v, partition_first(p, n, parts));
    EXPECT_LT(v, partition_first(p + 1, n, parts));
  }
}

TEST(PartitionOf, HugeNodeCountsDoNotOverflow) {
  // v * parts would overflow int64 near n = 2^62 without the 128-bit
  // intermediate; the map must stay monotone and in range.
  const std::int64_t n = std::int64_t{1} << 62;
  const int parts = 1024;
  EXPECT_EQ(partition_of(0, n, parts), 0);
  EXPECT_EQ(partition_of(n - 1, n, parts), parts - 1);
  EXPECT_EQ(partition_of(n / 2, n, parts), parts / 2);
}

TEST(PartitionedCC, InvalidPartCountThrows) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}}, 2);
  EXPECT_THROW(partitioned_cc(g, 0), std::invalid_argument);
}

class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, MatchesReferenceOnSuite) {
  const int parts = GetParam();
  for (const auto* name : {"road", "osm-eur", "twitter", "urand", "kron"}) {
    const Graph g = make_suite_graph(name, 10);
    PartitionedCCStats stats;
    const auto comp = partitioned_cc(g, parts, &stats);
    ASSERT_TRUE(labels_equivalent(comp, union_find_cc(g)))
        << name << " parts=" << parts;
    EXPECT_EQ(stats.internal_edges + stats.boundary_edges, g.num_edges())
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartitionSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 64));

TEST(PartitionedCC, OnePartHasNoBoundary) {
  const Graph g = make_suite_graph("web", 9);
  PartitionedCCStats stats;
  partitioned_cc(g, 1, &stats);
  EXPECT_EQ(stats.boundary_edges, 0);
  EXPECT_EQ(stats.quotient_edges, 0);
  EXPECT_DOUBLE_EQ(stats.communication_fraction(), 0.0);
}

TEST(PartitionedCC, BoundaryGrowsWithPartCount) {
  const Graph g = make_suite_graph("urand", 11);
  std::int64_t prev_boundary = -1;
  for (int parts : {2, 4, 16}) {
    PartitionedCCStats stats;
    partitioned_cc(g, parts, &stats);
    EXPECT_GT(stats.boundary_edges, prev_boundary) << parts;
    prev_boundary = stats.boundary_edges;
  }
}

TEST(PartitionedCC, QuotientIsSmallAfterLocalWork) {
  // The distributed-feasibility claim: local CC collapses each block, so
  // the merged (communicated) problem is far smaller than the edge cut.
  const Graph g = make_suite_graph("urand", 12);
  PartitionedCCStats stats;
  partitioned_cc(g, 8, &stats);
  EXPECT_GT(stats.boundary_edges, 0);
  EXPECT_LT(stats.quotient_edges, stats.boundary_edges);
  EXPECT_LE(stats.quotient_vertices, 2 * stats.quotient_edges);
}

TEST(PartitionedCC, MorePartsThanVertices) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}, {1, 2}}, 3);
  const auto comp = partitioned_cc(g, 50);
  EXPECT_TRUE(verify_cc(g, comp));
}

TEST(PartitionedCC, Int64LabelsMatchInt32OnSameGraph) {
  // The label-width fix: the templatized kernel must produce identical
  // partitions (and identical min-id labels) at both widths.
  const auto g32 = make_suite_graph("urand", 9);
  EdgeList<std::int64_t> edges64;
  for (std::int64_t u = 0; u < g32.num_nodes(); ++u)
    for (const NodeID v : g32.out_neigh(static_cast<NodeID>(u)))
      if (u < v) edges64.push_back({u, v});
  const CSRGraph<std::int64_t> g64 =
      build_undirected(edges64, g32.num_nodes());
  const auto comp32 = partitioned_cc(g32, 5);
  const auto comp64 = partitioned_cc(g64, 5);
  ASSERT_EQ(comp32.size(), comp64.size());
  for (std::size_t v = 0; v < comp32.size(); ++v)
    EXPECT_EQ(static_cast<std::int64_t>(comp32[v]), comp64[v]) << v;
}

TEST(PartitionedCC, ExactLabelsAtWidestRepresentableBoundary) {
  // Regression for the int32 ceiling: at the widest representable shape
  // (ids touching the label type's max), labels must be EXACT min ids —
  // a silent truncation would wrap them.  int16 keeps the test cheap; the
  // guard logic is width-generic.
  using Narrow = std::int16_t;
  const std::int64_t n = 32768;  // ids 0..32767 == int16 max
  EdgeList<Narrow> edges;
  edges.push_back({0, 32767});       // min id with max id
  edges.push_back({32766, 32767});   // chain at the top boundary
  edges.push_back({16384, 16385});
  const CSRGraph<Narrow> g = build_undirected(edges, n);
  const auto comp = partitioned_cc(g, 7);
  EXPECT_EQ(comp[32767], 0);
  EXPECT_EQ(comp[32766], 0);
  EXPECT_EQ(comp[0], 0);
  EXPECT_EQ(comp[16385], 16384);
  EXPECT_EQ(comp[16383], 16383);
}

TEST(PartitionedCC, OverflowingNodeCountThrowsTypedError) {
  // One vertex past the widest representable shape must throw the typed
  // guard, not truncate.
  using Narrow = std::int16_t;
  EdgeList<Narrow> edges;
  const CSRGraph<Narrow> g = build_undirected(edges, std::int64_t{32769});
  try {
    (void)partitioned_cc(g, 2);
    FAIL() << "expected LabelWidthError";
  } catch (const LabelWidthError& e) {
    EXPECT_EQ(e.num_nodes(), 32769);
    EXPECT_EQ(e.max_label(), 32767);
  }
}

TEST(PartitionedCC, StatsIdenticalAcrossLabelWidths) {
  const auto g32 = make_suite_graph("road", 10);
  EdgeList<std::int64_t> edges64;
  for (std::int64_t u = 0; u < g32.num_nodes(); ++u)
    for (const NodeID v : g32.out_neigh(static_cast<NodeID>(u)))
      if (u < v) edges64.push_back({u, v});
  const CSRGraph<std::int64_t> g64 = build_undirected(edges64, g32.num_nodes());
  PartitionedCCStats s32, s64;
  partitioned_cc(g32, 6, &s32);
  partitioned_cc(g64, 6, &s64);
  EXPECT_EQ(s32.internal_edges, s64.internal_edges);
  EXPECT_EQ(s32.boundary_edges, s64.boundary_edges);
  EXPECT_EQ(s32.quotient_vertices, s64.quotient_vertices);
  EXPECT_EQ(s32.quotient_edges, s64.quotient_edges);
}

TEST(PartitionedCC, RoadGraphHasLowCommunication) {
  // Lattices under contiguous 1D blocks cut few edges — the topology a
  // distributed road-network deployment exploits.
  const Graph g = make_suite_graph("road", 12);
  PartitionedCCStats stats;
  partitioned_cc(g, 8, &stats);
  EXPECT_LT(stats.communication_fraction(), 0.1);
}

}  // namespace
}  // namespace afforest
