// Checkpoint + manifest (src/serve/checkpoint.hpp): round-trips, typed
// rejection of every corruption class, bounds-checked counts (a forged
// count can never drive a huge allocation), and the ckpt.write /
// ckpt.rename failpoints' atomicity guarantees.
#include "serve/checkpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "../support/scoped_env.hpp"
#include "serve/wire.hpp"
#include "util/crc32c.hpp"

namespace afforest::serve {
namespace {

using ::afforest::testing::ScopedEnv;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_ckpt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// A small but fully populated checkpoint: labels, forest, adjacency
  /// with a duplicate copy, and a two-batch window ring.
  static CheckpointData sample() {
    CheckpointData data;
    data.seq = 12;
    data.epoch = 40;
    data.num_nodes = 5;
    data.window = 2;
    data.labels = {0, 0, 2, 2, 4};
    data.forest_edges = {{0, 1}, {2, 3}};
    data.adjacency = {{0, 1, 2}, {2, 3, 1}};
    data.ring = {{{0, 1}}, {{0, 1}, {2, 3}}};
    return data;
  }

  static std::vector<char> slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  static void dump(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Frames an arbitrary payload with valid magic/version/length/CRC so
  /// tests can reach the semantic validators behind the checksum.
  void write_framed(const std::string& p,
                    const std::vector<unsigned char>& payload) {
    std::vector<unsigned char> bytes;
    bytes.insert(bytes.end(), {'A', 'F', 'C', 'K'});
    wire::put_u32(bytes, 1);
    wire::put_u64(bytes, static_cast<std::uint64_t>(payload.size()));
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    wire::put_u32(bytes, crc32c(payload.data(), payload.size()));
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  static IoErrorKind kind_of(const std::string& p) {
    try {
      read_checkpoint(p);
    } catch (const IoError& e) {
      return e.kind();
    }
    ADD_FAILURE() << "read_checkpoint did not throw for " << p;
    return IoErrorKind::kOpenFailed;
  }

  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, RoundTripPreservesEveryField) {
  const auto p = path("c.afck");
  const CheckpointData in = sample();
  write_checkpoint(p, in);
  const CheckpointData out = read_checkpoint(p);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.num_nodes, in.num_nodes);
  EXPECT_EQ(out.window, in.window);
  EXPECT_EQ(out.labels, in.labels);
  EXPECT_EQ(out.forest_edges, in.forest_edges);
  ASSERT_EQ(out.adjacency.size(), in.adjacency.size());
  for (std::size_t i = 0; i < in.adjacency.size(); ++i) {
    EXPECT_EQ(out.adjacency[i].u, in.adjacency[i].u);
    EXPECT_EQ(out.adjacency[i].v, in.adjacency[i].v);
    EXPECT_EQ(out.adjacency[i].multiplicity, in.adjacency[i].multiplicity);
  }
  EXPECT_EQ(out.ring, in.ring);
}

TEST_F(CheckpointTest, EmptyRingAndForestRoundTrip) {
  const auto p = path("c.afck");
  CheckpointData in;
  in.seq = 0;
  in.epoch = 1;
  in.num_nodes = 3;
  in.labels = {0, 1, 2};
  write_checkpoint(p, in);
  const CheckpointData out = read_checkpoint(p);
  EXPECT_TRUE(out.forest_edges.empty());
  EXPECT_TRUE(out.adjacency.empty());
  EXPECT_TRUE(out.ring.empty());
}

TEST_F(CheckpointTest, BadMagicIsTyped) {
  const auto p = path("c.afck");
  write_checkpoint(p, sample());
  auto bytes = slurp(p);
  bytes[2] = 'X';
  dump(p, bytes);
  EXPECT_EQ(kind_of(p), IoErrorKind::kBadMagic);
}

TEST_F(CheckpointTest, UnsupportedVersionIsTyped) {
  const auto p = path("c.afck");
  write_checkpoint(p, sample());
  auto bytes = slurp(p);
  bytes[4] = 9;
  dump(p, bytes);
  EXPECT_EQ(kind_of(p), IoErrorKind::kCorruptHeader);
}

TEST_F(CheckpointTest, TruncationIsTypedAtEveryLength) {
  const auto p = path("c.afck");
  write_checkpoint(p, sample());
  const auto bytes = slurp(p);
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{15},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::vector<char> torn(bytes.begin(),
                           bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    dump(p, torn);
    EXPECT_THROW(read_checkpoint(p), IoError) << "cut at " << cut;
  }
}

TEST_F(CheckpointTest, PayloadBitFlipIsChecksumMismatch) {
  const auto p = path("c.afck");
  write_checkpoint(p, sample());
  auto bytes = slurp(p);
  bytes[ckpt_detail::kPreambleBytes + 5] ^= 0x10;
  dump(p, bytes);
  EXPECT_EQ(kind_of(p), IoErrorKind::kChecksumMismatch);
}

TEST_F(CheckpointTest, TrailingGarbageIsTyped) {
  const auto p = path("c.afck");
  write_checkpoint(p, sample());
  auto bytes = slurp(p);
  bytes.push_back(0);
  dump(p, bytes);
  EXPECT_EQ(kind_of(p), IoErrorKind::kTrailingGarbage);
}

TEST_F(CheckpointTest, HugeNodeCountNeverOverAllocates) {
  // CRC-valid payload claiming 2^60 vertices with 8 bytes behind it: the
  // reader must reject on the bounds check, not attempt the allocation.
  const auto p = path("c.afck");
  std::vector<unsigned char> payload;
  wire::put_u64(payload, 1);                        // seq
  wire::put_u64(payload, 1);                        // epoch
  wire::put_u64(payload, std::uint64_t{1} << 60);   // num_nodes
  wire::put_u64(payload, 0);                        // window
  wire::put_u64(payload, 0);                        // 8 stray bytes
  write_framed(p, payload);
  EXPECT_EQ(kind_of(p), IoErrorKind::kCorruptHeader);
}

TEST_F(CheckpointTest, HugeForestCountNeverOverAllocates) {
  const auto p = path("c.afck");
  std::vector<unsigned char> payload;
  wire::put_u64(payload, 1);
  wire::put_u64(payload, 1);
  wire::put_u64(payload, 1);  // num_nodes = 1
  wire::put_u64(payload, 0);
  wire::put_i64(payload, 0);                        // the single label
  wire::put_u64(payload, std::uint64_t{1} << 58);   // forged forest count
  write_framed(p, payload);
  EXPECT_EQ(kind_of(p), IoErrorKind::kCorruptHeader);
}

TEST_F(CheckpointTest, LabelOutOfRangeIsTyped) {
  const auto p = path("c.afck");
  std::vector<unsigned char> payload;
  wire::put_u64(payload, 1);
  wire::put_u64(payload, 1);
  wire::put_u64(payload, 2);  // num_nodes = 2
  wire::put_u64(payload, 0);
  wire::put_i64(payload, 0);
  wire::put_i64(payload, 7);  // label 7 outside [0, 2)
  wire::put_u64(payload, 0);  // forest
  wire::put_u64(payload, 0);  // adjacency
  wire::put_u64(payload, 0);  // ring
  write_framed(p, payload);
  EXPECT_EQ(kind_of(p), IoErrorKind::kOutOfRangeNeighbor);
}

TEST_F(CheckpointTest, ZeroMultiplicityIsTyped) {
  const auto p = path("c.afck");
  std::vector<unsigned char> payload;
  wire::put_u64(payload, 1);
  wire::put_u64(payload, 1);
  wire::put_u64(payload, 2);
  wire::put_u64(payload, 0);
  wire::put_i64(payload, 0);
  wire::put_i64(payload, 0);
  wire::put_u64(payload, 0);  // forest
  wire::put_u64(payload, 1);  // adjacency: one entry
  wire::put_i64(payload, 0);
  wire::put_i64(payload, 1);
  wire::put_u32(payload, 0);  // multiplicity 0: nonsense
  wire::put_u64(payload, 0);  // ring
  write_framed(p, payload);
  EXPECT_EQ(kind_of(p), IoErrorKind::kCorruptHeader);
}

TEST_F(CheckpointTest, PayloadTrailingBytesInsideFrameAreTyped) {
  // Valid frame, valid CRC, but bytes left over after the last ring batch.
  const auto p = path("c.afck");
  std::vector<unsigned char> payload;
  wire::put_u64(payload, 1);
  wire::put_u64(payload, 1);
  wire::put_u64(payload, 1);
  wire::put_u64(payload, 0);
  wire::put_i64(payload, 0);
  wire::put_u64(payload, 0);
  wire::put_u64(payload, 0);
  wire::put_u64(payload, 0);
  wire::put_u8(payload, 0xAB);  // one stray byte
  write_framed(p, payload);
  EXPECT_EQ(kind_of(p), IoErrorKind::kTrailingGarbage);
}

TEST_F(CheckpointTest, WriteFailpointLeavesFinalNameUntouched) {
  const auto p = path("c.afck");
  write_checkpoint(p, sample());  // previous valid checkpoint
  const auto before = slurp(p);
  {
    ScopedEnv fp("AFFOREST_FAILPOINTS", "ckpt.write=1");
    failpoints_reload();
    CheckpointData next = sample();
    next.seq = 99;
    EXPECT_THROW(write_checkpoint(p, next), FailpointError);
  }
  failpoints_reload();
  // The torn bytes landed only in the .tmp; the final name still holds the
  // previous checkpoint, byte for byte.
  EXPECT_EQ(slurp(p), before);
  EXPECT_EQ(read_checkpoint(p).seq, sample().seq);
}

TEST_F(CheckpointTest, RenameFailpointLeavesFinalNameUntouched) {
  const auto p = path("c.afck");
  write_checkpoint(p, sample());
  const auto before = slurp(p);
  {
    ScopedEnv fp("AFFOREST_FAILPOINTS", "ckpt.rename=1");
    failpoints_reload();
    CheckpointData next = sample();
    next.seq = 99;
    EXPECT_THROW(write_checkpoint(p, next), FailpointError);
  }
  failpoints_reload();
  EXPECT_EQ(slurp(p), before);
  // The orphan .tmp is durable but unreferenced — recovery ignores it.
  EXPECT_TRUE(std::filesystem::exists(p + ".tmp"));
}

// ---- manifest -------------------------------------------------------------

TEST_F(CheckpointTest, ManifestRoundTrips) {
  Manifest in;
  in.num_nodes = 64;
  in.window = 3;
  in.checkpoint_file = "ckpt-7.afck";
  in.wal_file = "wal-8.log";
  in.seq = 7;
  write_manifest(dir_.string(), in);
  const Manifest out = read_manifest(dir_.string());
  EXPECT_EQ(out.num_nodes, 64u);
  EXPECT_EQ(out.window, 3u);
  EXPECT_EQ(out.checkpoint_file, "ckpt-7.afck");
  EXPECT_EQ(out.wal_file, "wal-8.log");
  EXPECT_EQ(out.seq, 7u);
}

TEST_F(CheckpointTest, ManifestWithoutCheckpointRoundTrips) {
  Manifest in;
  in.num_nodes = 8;
  in.wal_file = "wal-1.log";
  write_manifest(dir_.string(), in);
  const Manifest out = read_manifest(dir_.string());
  EXPECT_TRUE(out.checkpoint_file.empty());
  EXPECT_EQ(out.seq, 0u);
}

TEST_F(CheckpointTest, ManifestBitFlipIsChecksumMismatch) {
  Manifest in;
  in.num_nodes = 8;
  in.wal_file = "wal-1.log";
  write_manifest(dir_.string(), in);
  const auto p = manifest_path(dir_.string());
  auto bytes = slurp(p);
  // Flip a digit of num_nodes (stays a parseable digit, so only the CRC
  // can catch it).
  const std::string text(bytes.begin(), bytes.end());
  const std::size_t pos = text.find("num_nodes 8") + 10;
  bytes[pos] = '9';
  dump(p, bytes);
  try {
    read_manifest(dir_.string());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kChecksumMismatch);
  }
}

TEST_F(CheckpointTest, ManifestBadMagicIsTyped) {
  Manifest in;
  in.num_nodes = 8;
  in.wal_file = "wal-1.log";
  write_manifest(dir_.string(), in);
  const auto p = manifest_path(dir_.string());
  auto bytes = slurp(p);
  bytes[0] = 'x';
  dump(p, bytes);
  try {
    read_manifest(dir_.string());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kBadMagic);
  }
}

TEST_F(CheckpointTest, ManifestMissingNewlineIsTyped) {
  Manifest in;
  in.num_nodes = 8;
  in.wal_file = "wal-1.log";
  write_manifest(dir_.string(), in);
  const auto p = manifest_path(dir_.string());
  auto bytes = slurp(p);
  bytes.pop_back();  // drop the final newline
  dump(p, bytes);
  EXPECT_THROW(read_manifest(dir_.string()), IoError);
}

TEST_F(CheckpointTest, ManifestMissingFileIsOpenFailed) {
  try {
    read_manifest(dir_.string());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kOpenFailed);
  }
}

}  // namespace
}  // namespace afforest::serve
