// WindowedStream (src/serve/windowed_stream.hpp): window accounting at the
// boundaries — steady-state expiry, drain-to-empty followed by a fresh
// push, push after full expiry via ticks, and ring restoration from a
// checkpoint.  The drain/full-expiry cases are regressions for the window
// accounting restarting cleanly once the ring has emptied.
#include "serve/windowed_stream.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <utility>

#include "serve/dynamic_cc.hpp"

namespace afforest::serve {
namespace {

using NodeID = std::int32_t;

EdgeList<NodeID> batch(std::initializer_list<std::pair<NodeID, NodeID>> es) {
  EdgeList<NodeID> out;
  out.reserve(es.size());
  for (const auto& [u, v] : es) out.push_back({u, v});
  return out;
}

TEST(WindowedStreamTest, ZeroWindowIsRejected) {
  DynamicCC<NodeID> engine(4);
  EXPECT_THROW(WindowedStream<NodeID>(engine, 0), std::invalid_argument);
}

TEST(WindowedStreamTest, SteadyStateExpiresExactlyOneBatch) {
  DynamicCC<NodeID> engine(6);
  WindowedStream<NodeID> stream(engine, 2);
  stream.push(batch({{0, 1}}));
  stream.push(batch({{2, 3}}));
  EXPECT_EQ(stream.resident_batches(), 2u);
  EXPECT_TRUE(engine.connected(0, 1));

  // Third push overflows by exactly one: {0,1} expires.
  const DeleteStats expired = stream.push(batch({{4, 5}}));
  EXPECT_EQ(expired.requested, 1u);
  EXPECT_EQ(stream.resident_batches(), 2u);
  EXPECT_FALSE(engine.connected(0, 1));
  EXPECT_TRUE(engine.connected(2, 3));
  EXPECT_TRUE(engine.connected(4, 5));
}

TEST(WindowedStreamTest, DrainThenFreshPushRestartsAccounting) {
  DynamicCC<NodeID> engine(6);
  WindowedStream<NodeID> stream(engine, 2);
  stream.push(batch({{0, 1}}));
  stream.push(batch({{2, 3}}));
  stream.drain();
  EXPECT_EQ(stream.resident_batches(), 0u);
  EXPECT_EQ(engine.component_count(), 6);  // every edge expired

  // A fresh push after drain must not trigger any expiry and must count
  // residents from zero again.
  const DeleteStats first = stream.push(batch({{4, 5}}));
  EXPECT_EQ(first.requested, 0u);
  EXPECT_EQ(stream.resident_batches(), 1u);
  EXPECT_TRUE(engine.connected(4, 5));
  EXPECT_FALSE(engine.connected(0, 1));

  const DeleteStats second = stream.push(batch({{0, 1}}));
  EXPECT_EQ(second.requested, 0u);  // window holds 2; still no expiry
  EXPECT_EQ(stream.resident_batches(), 2u);

  // Only now does the window overflow, and by exactly one batch.
  const DeleteStats third = stream.push(batch({{2, 3}}));
  EXPECT_EQ(third.requested, 1u);
  EXPECT_FALSE(engine.connected(4, 5));  // the post-drain oldest expired
  EXPECT_TRUE(engine.connected(0, 1));
}

TEST(WindowedStreamTest, PushAfterFullExpiryViaTicks) {
  DynamicCC<NodeID> engine(6);
  WindowedStream<NodeID> stream(engine, 3);
  stream.push(batch({{0, 1}}));
  stream.push(batch({{2, 3}}));
  // Expire everything one tick at a time (not via drain()).
  stream.expire_oldest();
  stream.expire_oldest();
  EXPECT_EQ(stream.resident_batches(), 0u);
  // Extra ticks on an empty ring are graceful no-ops.
  const DeleteStats idle = stream.expire_oldest();
  EXPECT_EQ(idle.requested, 0u);

  const DeleteStats fresh = stream.push(batch({{4, 5}}));
  EXPECT_EQ(fresh.requested, 0u);
  EXPECT_EQ(stream.resident_batches(), 1u);
  EXPECT_TRUE(engine.connected(4, 5));
  EXPECT_EQ(engine.component_count(), 5);
}

TEST(WindowedStreamTest, RestoredRingAtCapacityExpiresOnNextPush) {
  DynamicCC<NodeID> engine(8);
  WindowedStream<NodeID> stream(engine, 2);
  // Simulate recovery: the engine already holds the multiset, the ring is
  // reinstated separately (the checkpoint path's contract).
  engine.apply_inserts(batch({{0, 1}}));
  engine.apply_inserts(batch({{2, 3}}));
  engine.publish();
  std::deque<EdgeList<NodeID>> ring;
  ring.push_back(batch({{0, 1}}));
  ring.push_back(batch({{2, 3}}));
  stream.restore_ring(std::move(ring));
  EXPECT_EQ(stream.resident_batches(), 2u);

  const DeleteStats expired = stream.push(batch({{4, 5}}));
  EXPECT_EQ(expired.requested, 1u);  // restored-oldest {0,1} fell off
  EXPECT_FALSE(engine.connected(0, 1));
  EXPECT_TRUE(engine.connected(2, 3));
  EXPECT_TRUE(engine.connected(4, 5));
}

TEST(WindowedStreamTest, RestoreRingOverCapacityThrows) {
  DynamicCC<NodeID> engine(8);
  WindowedStream<NodeID> stream(engine, 1);
  std::deque<EdgeList<NodeID>> ring;
  ring.push_back(batch({{0, 1}}));
  ring.push_back(batch({{2, 3}}));
  EXPECT_THROW(stream.restore_ring(std::move(ring)), std::invalid_argument);
}

TEST(WindowedStreamTest, ResidentExposesBatchesOldestFirst) {
  DynamicCC<NodeID> engine(6);
  WindowedStream<NodeID> stream(engine, 2);
  stream.push(batch({{0, 1}}));
  stream.push(batch({{2, 3}, {3, 4}}));
  const auto& resident = stream.resident();
  ASSERT_EQ(resident.size(), 2u);
  EXPECT_EQ(resident[0].size(), 1u);
  EXPECT_EQ(resident[1].size(), 2u);
  EXPECT_EQ(resident[0][0].u, 0);
  EXPECT_EQ(resident[1][1].v, 4);
}

}  // namespace
}  // namespace afforest::serve
