// Shared fixtures for the durability suites (crash sweep, fuzz, unit):
// a seeded workload generator and a serial oracle that simulates the exact
// multiset + window semantics of DurableEngine, so recovered state can be
// differentially checked against from-scratch union-find at any seq prefix.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cc/common.hpp"
#include "cc/union_find.hpp"
#include "graph/edge_list.hpp"
#include "serve/wal.hpp"
#include "util/rng.hpp"

namespace afforest::serve::testing {

using NodeID = std::int32_t;

/// One journaled operation, in plain copyable form (EdgeList is move-only).
struct DurableOp {
  WalRecordType type = WalRecordType::kInsert;
  std::vector<std::pair<NodeID, NodeID>> edges;
};

inline EdgeList<NodeID> to_edge_list(
    const std::vector<std::pair<NodeID, NodeID>>& edges) {
  EdgeList<NodeID> out;
  out.reserve(edges.size());
  for (const auto& [u, v] : edges) out.push_back({u, v});
  return out;
}

/// Deterministic mixed workload: mostly inserts, some deletes of
/// previously inserted edges (plus the occasional absent edge, a legal
/// no-op), and — when `windowed` — ticks.  Batches are small so a few
/// dozen ops exercise merges, cuts, and window expiry on one component
/// landscape.
inline std::vector<DurableOp> make_workload(std::int64_t num_nodes,
                                            std::size_t num_ops,
                                            std::uint64_t seed,
                                            bool windowed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<NodeID, NodeID>> inserted;
  std::vector<DurableOp> ops;
  ops.reserve(num_ops);
  const auto vertex = [&] {
    return static_cast<NodeID>(
        rng.next_bounded(static_cast<std::uint64_t>(num_nodes)));
  };
  for (std::size_t i = 0; i < num_ops; ++i) {
    DurableOp op;
    const std::uint64_t roll = rng.next_bounded(10);
    if (windowed && roll < 2) {
      op.type = WalRecordType::kTick;
    } else if (!windowed && roll < 3 && !inserted.empty()) {
      op.type = WalRecordType::kDelete;
      const std::size_t count = 1 + rng.next_bounded(3);
      for (std::size_t k = 0; k < count; ++k) {
        if (rng.next_bounded(8) == 0) {
          op.edges.emplace_back(vertex(), vertex());  // likely absent: no-op
        } else {
          op.edges.push_back(
              inserted[rng.next_bounded(inserted.size())]);
        }
      }
    } else {
      op.type = WalRecordType::kInsert;
      const std::size_t count = 1 + rng.next_bounded(4);
      for (std::size_t k = 0; k < count; ++k) {
        const std::pair<NodeID, NodeID> e{vertex(), vertex()};
        op.edges.push_back(e);
        inserted.push_back(e);
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Serial simulation of the engine's durable semantics: an edge multiset
/// plus (optionally) the window ring.  Connectivity at any point is
/// union-find over the surviving multiset — the from-scratch oracle the
/// recovered engine must match exactly.
class OracleSim {
 public:
  OracleSim(std::int64_t num_nodes, std::uint64_t window)
      : num_nodes_(num_nodes), window_(window) {}

  void apply(const DurableOp& op) {
    switch (op.type) {
      case WalRecordType::kInsert:
        if (window_ > 0) {
          for (const auto& e : op.edges) bump(e, +1);
          ring_.push_back(op.edges);
          // lint: bounded(each iteration pops one resident batch)
          while (ring_.size() > window_) expire_oldest();
        } else {
          for (const auto& e : op.edges) bump(e, +1);
        }
        return;
      case WalRecordType::kDelete:
        for (const auto& e : op.edges) bump(e, -1);
        return;
      case WalRecordType::kTick:
        if (!ring_.empty()) expire_oldest();
        return;
    }
  }

  /// Fully-compressed min-id labels over the surviving multiset.
  [[nodiscard]] ComponentLabels<NodeID> labels() const {
    EdgeList<NodeID> edges;
    for (const auto& [key, count] : multiset_)
      if (count > 0) edges.push_back({key.first, key.second});
    return union_find_cc(edges, num_nodes_);
  }

 private:
  void bump(const std::pair<NodeID, NodeID>& e, std::int64_t delta) {
    const auto key = e.first <= e.second
                         ? e
                         : std::pair<NodeID, NodeID>{e.second, e.first};
    auto& count = multiset_[key];
    if (delta < 0 && count == 0) return;  // absent delete: graceful no-op
    count += delta;
  }

  void expire_oldest() {
    for (const auto& e : ring_.front()) bump(e, -1);
    ring_.pop_front();
  }

  std::int64_t num_nodes_;
  std::uint64_t window_;
  std::map<std::pair<NodeID, NodeID>, std::int64_t> multiset_;
  std::deque<std::vector<std::pair<NodeID, NodeID>>> ring_;
};

/// Labels the oracle produces after the first `prefix` ops of `ops`.
inline ComponentLabels<NodeID> oracle_labels(
    const std::vector<DurableOp>& ops, std::size_t prefix,
    std::int64_t num_nodes, std::uint64_t window) {
  OracleSim sim(num_nodes, window);
  for (std::size_t i = 0; i < prefix && i < ops.size(); ++i)
    sim.apply(ops[i]);
  return sim.labels();
}

}  // namespace afforest::serve::testing
