// Linearizability-style consistency checks for DynamicCC under a real
// concurrent writer that BOTH inserts and deletes: one std::thread streams
// alternating insert/delete batches (apply + publish) while reader threads
// issue query batches and point queries.
//
// Unlike the add-only QueryEngine, connectivity is NOT monotone here — a
// probe can flip connected -> disconnected when a bridge is cut.  The
// property that replaces monotonicity is per-epoch snapshot exactness: a
// batch stamped with epoch e must answer EVERY probe exactly as a
// from-scratch union-find over the edge multiset that was live at publish
// e - 1 (epoch 1 is the empty pre-publish snapshot).  The expected answer
// matrix is precomputed serially per epoch, so any torn read, half-applied
// delete batch, or stale-label splice shows up as a violation.  Epoch
// monotonicity per reader is asserted alongside.
//
// std::thread (not OpenMP) so the TSan preset observes these threads (same
// reasoning as tests/serve/linearizability_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "cc/union_find.hpp"
#include "graph/generators/uniform.hpp"
#include "serve/dynamic_cc.hpp"
#include "serve/query_batch.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;
using Engine = serve::DynamicCC<NodeID>;

struct Round {
  bool is_delete = false;
  EdgeList<NodeID> edges;
};

/// Alternating insert/insert/delete rounds over a seeded uniform stream,
/// ending with delete-only rounds that tear most of the graph back down.
std::vector<Round> make_rounds(const EdgeList<NodeID>& edges,
                               std::size_t batch_size, std::uint64_t seed) {
  std::vector<Round> rounds;
  std::vector<EdgePair<NodeID>> inserted;
  Xoshiro256 rng(seed);
  for (std::size_t start = 0; start < edges.size(); start += batch_size) {
    Round ins;
    for (std::size_t i = start; i < std::min(edges.size(), start + batch_size);
         ++i) {
      ins.edges.push_back(edges[i]);
      inserted.push_back(edges[i]);
    }
    rounds.push_back(std::move(ins));
    if (rounds.size() % 3 == 2 && !inserted.empty()) {
      Round del;
      del.is_delete = true;
      for (std::size_t k = 0; k < batch_size / 2; ++k)
        del.edges.push_back(inserted[rng.next_bounded(inserted.size())]);
      rounds.push_back(std::move(del));
    }
  }
  for (int tail = 0; tail < 4; ++tail) {
    Round del;
    del.is_delete = true;
    for (std::size_t k = 0; k < batch_size && !inserted.empty(); ++k)
      del.edges.push_back(inserted[rng.next_bounded(inserted.size())]);
    rounds.push_back(std::move(del));
  }
  return rounds;
}

TEST(DynamicLinearizability, SnapshotExactnessUnderConcurrentDeletes) {
  const std::int64_t n = 1 << 8;
  const auto edges = generate_uniform_edges<NodeID>(n, 3 * n, /*seed=*/19);
  const std::size_t batch_size = 48;
  const auto rounds = make_rounds(edges, batch_size, /*seed=*/29);
  const int kReaders = 2;

  // Probes: edge endpoints (flip when bridges cut) + random pairs.
  std::vector<std::pair<NodeID, NodeID>> probes;
  {
    Xoshiro256 rng(7);
    for (int i = 0; i < 24; ++i) {
      if (i % 2 == 0 && !edges.empty()) {
        const auto& e = edges[rng.next_bounded(edges.size())];
        probes.emplace_back(e.u, e.v);
      } else {
        probes.emplace_back(
            static_cast<NodeID>(rng.next_bounded(static_cast<std::uint64_t>(n))),
            static_cast<NodeID>(rng.next_bounded(static_cast<std::uint64_t>(n))));
      }
    }
  }

  // Ground truth: expected probe answers per epoch, from a serial replay of
  // the exact publish cadence.  Publish after round k stamps epoch k + 2;
  // epoch 1 is the initial empty snapshot.
  std::vector<std::vector<std::uint8_t>> expected;
  {
    std::map<std::pair<NodeID, NodeID>, std::uint32_t> surviving;
    const auto record = [&] {
      EdgeList<NodeID> live;
      for (const auto& [key, copies] : surviving)
        live.push_back({key.first, key.second});
      const auto labels = union_find_cc(live, n);
      std::vector<std::uint8_t> answers;
      answers.reserve(probes.size());
      for (const auto& [u, v] : probes)
        answers.push_back(static_cast<std::uint8_t>(
            labels[static_cast<std::size_t>(u)] ==
            labels[static_cast<std::size_t>(v)]));
      expected.push_back(std::move(answers));
    };
    record();  // epoch 1
    for (const Round& r : rounds) {
      for (const auto& e : r.edges) {
        const std::pair<NodeID, NodeID> key(std::minmax(e.u, e.v));
        if (r.is_delete) {
          const auto it = surviving.find(key);
          if (it != surviving.end() && --(it->second) == 0)
            surviving.erase(it);
        } else {
          ++surviving[key];
        }
      }
      record();
    }
  }

  Engine engine(n);
  std::atomic<bool> writer_done{false};
  std::atomic<std::uint64_t> reader_batches{0};
  std::atomic<int> violations{0};
  std::atomic<int> epoch_regressions{0};

  std::thread writer([&] {
    std::uint64_t k = 0;
    for (const Round& r : rounds) {
      // Pace against the reader pool so every epoch overlaps live reads.
      while (reader_batches.load(std::memory_order_acquire) < k)
        std::this_thread::yield();
      if (r.is_delete)
        engine.apply_deletes(r.edges);
      else
        engine.apply_inserts(r.edges);
      std::this_thread::yield();  // widen the applied-but-unpublished window
      engine.publish();
      ++k;
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      serve::QueryBatch<NodeID> batch;
      bool saw_final_epoch = false;
      while (!saw_final_epoch) {
        const bool done_before = writer_done.load(std::memory_order_acquire);
        batch.clear();
        for (const auto& [u, v] : probes) batch.add(u, v);
        engine.answer(batch);
        reader_batches.fetch_add(1, std::memory_order_release);
        if (batch.epoch < last_epoch) epoch_regressions.fetch_add(1);
        last_epoch = batch.epoch;
        const auto& want = expected[static_cast<std::size_t>(batch.epoch - 1)];
        for (std::size_t i = 0; i < probes.size(); ++i)
          if (batch.connected[i] != want[i]) violations.fetch_add(1);
        if (done_before) saw_final_epoch = true;
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0)
      << "a batch's answers disagreed with the from-scratch oracle for the "
         "edge multiset its stamped epoch promises";
  EXPECT_EQ(epoch_regressions.load(), 0);
  EXPECT_EQ(engine.epoch(), static_cast<std::uint64_t>(rounds.size()) + 1);

  // Final-state agreement: published labels equal the serial oracle over
  // the surviving multiset.
  const auto& final_expected = expected.back();
  serve::QueryBatch<NodeID> final_batch;
  for (const auto& [u, v] : probes) final_batch.add(u, v);
  engine.answer(final_batch);
  EXPECT_EQ(final_batch.epoch, engine.epoch());
  for (std::size_t i = 0; i < probes.size(); ++i)
    EXPECT_EQ(final_batch.connected[i], final_expected[i]) << "probe " << i;
}

TEST(DynamicLinearizability, PointQueriesSeeOnlyPublishedEpochs) {
  // Point queries under a deleting writer: every (connected, epoch) sample
  // a reader observes must match the expected answer for SOME published
  // epoch — here checked via the strongest single-probe form: sample the
  // epoch right before and after the query; if both equal e, the answer
  // must be exactly expected[e].
  const std::int64_t n = 1 << 7;
  const auto edges = generate_uniform_edges<NodeID>(n, 2 * n, /*seed=*/31);
  const std::size_t batch_size = 32;
  const auto rounds = make_rounds(edges, batch_size, /*seed=*/37);

  const NodeID pu = edges[0].u;
  const NodeID pv = edges[0].v;
  std::vector<std::uint8_t> expected;
  {
    std::map<std::pair<NodeID, NodeID>, std::uint32_t> surviving;
    const auto record = [&] {
      EdgeList<NodeID> live;
      for (const auto& [key, copies] : surviving)
        live.push_back({key.first, key.second});
      const auto labels = union_find_cc(live, n);
      expected.push_back(static_cast<std::uint8_t>(
          labels[static_cast<std::size_t>(pu)] ==
          labels[static_cast<std::size_t>(pv)]));
    };
    record();
    for (const Round& r : rounds) {
      for (const auto& e : r.edges) {
        const std::pair<NodeID, NodeID> key(std::minmax(e.u, e.v));
        if (r.is_delete) {
          const auto it = surviving.find(key);
          if (it != surviving.end() && --(it->second) == 0)
            surviving.erase(it);
        } else {
          ++surviving[key];
        }
      }
      record();
    }
  }

  Engine engine(n);
  std::atomic<bool> writer_done{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    for (const Round& r : rounds) {
      if (r.is_delete)
        engine.apply_deletes(r.edges);
      else
        engine.apply_inserts(r.edges);
      engine.publish();
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::thread reader([&] {
    bool done = false;
    while (!done) {
      done = writer_done.load(std::memory_order_acquire);
      const std::uint64_t before = engine.epoch();
      const bool conn = engine.connected(pu, pv);
      const std::uint64_t after = engine.epoch();
      if (before == after) {
        const bool want =
            expected[static_cast<std::size_t>(before - 1)] != 0;
        if (conn != want) violations.fetch_add(1);
      }
    }
  });

  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace afforest
