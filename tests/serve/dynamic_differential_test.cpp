// Differential deletion oracle for DynamicCC (the decremental serving
// engine): every scenario interleaves insert and delete batches, and after
// EVERY batch the engine's live labels are compared against a from-scratch
// union-find recompute over the surviving edge set.  Labels must match
// exactly (both sides use the min-vertex-id convention), so this checks
// label exactness, not just partition equivalence.
//
// The corpus spans the generator families of tests/fuzz/fuzz_common.hpp —
// including the bridge-heavy shapes (road / lattice-sparse grids,
// path-reversed and star-reversed trees) where almost every deletion cuts a
// tree edge and forces a rebuild, the regime the spanning-forest
// certification is easiest to get wrong.
//
// Teeth: the last test flips DynamicCC's deliberate mis-certification knob
// (every last-copy deletion treated as free, tree edges included) and
// asserts the oracle CATCHES it on a bridge-heavy input — proving the suite
// fails when the certification is broken, not just passing by vacuity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cc/union_find.hpp"
#include "graph/edge_list.hpp"
#include "serve/dynamic_cc.hpp"
#include "util/rng.hpp"

#include "fuzz/fuzz_common.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;
using Engine = serve::DynamicCC<NodeID>;

/// Replays `in.edges` as insert batches, then deletes the whole list again
/// in seeded shuffled order (every edge deleted → bridge cuts guaranteed),
/// comparing live labels against the from-scratch oracle after every batch.
/// Returns the total DeleteStats so callers can assert on classification.
serve::DeleteStats run_insert_then_delete(const fuzz::FuzzInput& in,
                                          std::size_t batch_size,
                                          Engine& engine) {
  std::map<std::pair<NodeID, NodeID>, std::uint32_t> surviving;
  const auto check = [&](const char* when, std::size_t batch_index) {
    EdgeList<NodeID> edges;
    for (const auto& [key, copies] : surviving)
      edges.push_back({key.first, key.second});
    const auto oracle = union_find_cc(edges, in.num_nodes);
    const auto live = engine.live_labels();
    for (std::int64_t v = 0; v < in.num_nodes; ++v)
      ASSERT_EQ(live[static_cast<std::size_t>(v)],
                oracle[static_cast<std::size_t>(v)])
          << in.family << " seed=" << in.seed << ": label of vertex " << v
          << " diverged after " << when << " batch " << batch_index;
  };

  for (std::size_t start = 0; start < in.edges.size(); start += batch_size) {
    const std::size_t stop = std::min(in.edges.size(), start + batch_size);
    EdgeList<NodeID> batch;
    for (std::size_t i = start; i < stop; ++i) {
      batch.push_back(in.edges[i]);
      ++surviving[std::pair<NodeID, NodeID>(
          std::minmax(in.edges[i].u, in.edges[i].v))];
    }
    engine.apply_inserts(batch);
    check("insert", start / batch_size);
  }

  // Seeded shuffle; every inserted edge gets deleted exactly once.
  EdgeList<NodeID> doomed = in.edges.clone();
  Xoshiro256 rng(in.seed * 2654435761u + 17);
  for (std::size_t i = doomed.size(); i > 1; --i)
    std::swap(doomed[i - 1], doomed[rng.next_bounded(i)]);

  serve::DeleteStats total;
  for (std::size_t start = 0; start < doomed.size(); start += batch_size) {
    const std::size_t stop = std::min(doomed.size(), start + batch_size);
    EdgeList<NodeID> batch;
    for (std::size_t i = start; i < stop; ++i) {
      batch.push_back(doomed[i]);
      const std::pair<NodeID, NodeID> key(std::minmax(doomed[i].u, doomed[i].v));
      const auto it = surviving.find(key);
      EXPECT_NE(it, surviving.end());
      if (it != surviving.end() && --(it->second) == 0) surviving.erase(it);
    }
    total += engine.apply_deletes(batch);
    check("delete", start / batch_size);
  }
  EXPECT_TRUE(surviving.empty());
  return total;
}

class DynamicDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(DynamicDifferential, InsertThenDeleteAllMatchesOracle) {
  const std::string family = GetParam();
  const int scale = 6;
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const auto in = fuzz::make_fuzz_input(family, scale, seed);
    Engine engine(in.num_nodes);
    const auto stats = run_insert_then_delete(in, /*batch_size=*/24, engine);
    EXPECT_EQ(stats.absent, 0u) << family << " seed=" << seed;
    // Everything was deleted: the graph must be fully torn down.
    EXPECT_EQ(engine.num_edges(), 0);
    EXPECT_EQ(engine.num_tree_edges(), 0);
  }
}

// >= 8 families, including the bridge-heavy shapes (grids and trees).
INSTANTIATE_TEST_SUITE_P(
    Families, DynamicDifferential,
    ::testing::Values("road", "lattice-sparse", "kron", "urand", "smallworld",
                      "component-mix", "path-reversed", "star-reversed",
                      "self-loops", "multi-edges"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(DynamicDifferential, MixedScriptsMatchOracle) {
  // The fuzz-style interleaved scripts (inserts and deletes mixed within
  // the stream, absent deletions included) across several families/seeds.
  for (const std::string family :
       {"road", "urand", "path-reversed", "multi-edges"}) {
    for (const std::uint64_t seed : {3u, 11u}) {
      const auto in = fuzz::make_dynamic_input(family, /*scale=*/6, seed);
      EXPECT_FALSE(
          fuzz::dynamic_disagrees(in.ops, in.num_nodes, in.batch_size))
          << family << " seed=" << seed;
    }
  }
}

TEST(DynamicDifferential, BridgeHeavyTeethCheck) {
  // Break the non-tree-edge certification on purpose (every last-copy
  // deletion certified free, tree edges included).  On a bridge-heavy
  // input — a path, where EVERY edge is a tree edge — the oracle must
  // catch the resulting stale labels.  This is the suite's teeth: if this
  // test fails, the differential comparison could not detect a broken
  // certification and proves nothing.
  const auto in = fuzz::make_dynamic_input("path-reversed", /*scale=*/6,
                                           /*seed=*/5);
  EXPECT_TRUE(fuzz::dynamic_disagrees(in.ops, in.num_nodes, in.batch_size,
                                      /*break_certification=*/true));

  // Same knob, grid family (bridges + cycles mixed): still caught.
  const auto grid = fuzz::make_dynamic_input("lattice-sparse", /*scale=*/6,
                                             /*seed=*/9);
  EXPECT_TRUE(fuzz::dynamic_disagrees(grid.ops, grid.num_nodes,
                                      grid.batch_size,
                                      /*break_certification=*/true));
}

TEST(DynamicDifferential, PublishedSnapshotsTrackLiveLabels) {
  // The read plane serves what the writer computed: after each
  // apply+publish round, published labels == live labels and agree with
  // the oracle.
  const auto in = fuzz::make_fuzz_input("urand", /*scale=*/6, /*seed=*/41);
  Engine engine(in.num_nodes);
  const std::size_t batch_size = 64;
  for (std::size_t start = 0; start < in.edges.size(); start += batch_size) {
    const std::size_t stop = std::min(in.edges.size(), start + batch_size);
    EdgeList<NodeID> batch;
    for (std::size_t i = start; i < stop; ++i) batch.push_back(in.edges[i]);
    engine.apply_inserts(batch);
    engine.publish();
    engine.apply_deletes(batch);  // tear the same batch straight back down
    engine.publish();
    const auto live = engine.live_labels();
    const auto published = engine.published_labels();
    ASSERT_EQ(live.size(), published.size());
    for (std::size_t v = 0; v < live.size(); ++v)
      ASSERT_EQ(live[v], published[v]);
  }
  // Net effect of insert-then-delete per batch: empty graph.
  EXPECT_EQ(engine.num_edges(), 0);
  EXPECT_EQ(engine.component_count(), in.num_nodes);
}

}  // namespace
}  // namespace afforest
