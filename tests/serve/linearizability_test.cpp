// Linearizability-style consistency checks for the QueryEngine under a
// real concurrent writer: one std::thread streams edge batches
// (apply_batch + publish) while reader threads issue point queries and
// query batches.  The properties asserted are the ones docs/SERVING.md
// promises:
//
//   * snapshot exactness — a batch stamped with epoch e answers every
//     probe exactly as a serial replay of the first e-1 published edge
//     batches would (precomputed per-probe first-connected epochs).  This
//     subsumes connectivity monotonicity (components only merge — Lemma
//     4's grow-only forest) and catches BOTH failure modes of an
//     unsynchronized in-place live read: seeing applied-but-unpublished
//     edges (answers ahead of the stamped epoch) and torn reads during
//     compaction (connected pairs transiently answered disconnected);
//   * epoch monotonicity — the epochs stamped onto a reader's successive
//     batches never decrease;
//   * final-state agreement — after the writer drains, the engine's labels
//     equal a serial union-find oracle over the full edge list.
//
// The writer paces itself against the reader pool (at least one answered
// reader batch per published epoch) and yields between apply_batch and
// publish, so reads genuinely overlap the applied-but-unpublished window
// even on a single-core host.
//
// std::thread (not OpenMP) on purpose: gcc's libgomp is not
// TSan-instrumented, so these threads are the ones the TSan preset can
// actually observe (same reasoning as tests/fuzz/schedule_stress_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cc/incremental.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/uniform.hpp"
#include "serve/query_batch.hpp"
#include "serve/query_engine.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;
using Engine = serve::QueryEngine<NodeID>;

struct Probe {
  NodeID u;
  NodeID v;
};

/// Probe pairs drawn from the edge list (guaranteed to connect eventually)
/// plus random pairs (may or may not connect).
std::vector<Probe> make_probes(const EdgeList<NodeID>& edges, std::int64_t n,
                               std::size_t count, std::uint64_t seed) {
  std::vector<Probe> probes;
  probes.reserve(count);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 2 == 0 && !edges.empty()) {
      const auto& e = edges[rng.next_bounded(edges.size())];
      probes.push_back({e.u, e.v});
    } else {
      probes.push_back(
          {static_cast<NodeID>(rng.next_bounded(
               static_cast<std::uint64_t>(n))),
           static_cast<NodeID>(rng.next_bounded(
               static_cast<std::uint64_t>(n)))});
    }
  }
  return probes;
}

TEST(ServeLinearizability, MonotoneUnderConcurrentWriter) {
  const std::int64_t n = 1 << 9;
  const auto edges = generate_uniform_edges<NodeID>(n, 4 * n, /*seed=*/11);
  const std::size_t batch_size = 64;
  const int kReaders = 3;
  const auto probes = make_probes(edges, n, 32, /*seed=*/5);

  // Ground truth: the epoch at which each probe first becomes connected
  // (0 = never), from a serial replay of the exact publish cadence.  The
  // engine starts published at epoch 1 (empty graph); the publish after
  // batch k advances it to k + 2.
  std::vector<std::uint64_t> first_epoch(probes.size(), 0);
  {
    IncrementalCC<NodeID> replay(n);
    std::uint64_t epoch = 1;
    const auto record = [&] {
      for (std::size_t i = 0; i < probes.size(); ++i)
        if (first_epoch[i] == 0 && replay.connected(probes[i].u, probes[i].v))
          first_epoch[i] = epoch;
    };
    record();
    for (std::size_t start = 0; start < edges.size(); start += batch_size) {
      const std::size_t stop = std::min(start + batch_size, edges.size());
      for (std::size_t e = start; e < stop; ++e)
        replay.add_edge(edges[e].u, edges[e].v);
      ++epoch;
      record();
    }
  }

  Engine engine(n);
  std::atomic<bool> writer_done{false};
  std::atomic<std::uint64_t> reader_batches{0};
  std::atomic<int> violations{0};
  std::atomic<int> epoch_regressions{0};

  std::thread writer([&] {
    std::uint64_t k = 0;
    for (std::size_t start = 0; start < edges.size(); start += batch_size) {
      // Pace against the reader pool so every epoch overlaps live reads.
      while (reader_batches.load(std::memory_order_acquire) < k)
        std::this_thread::yield();
      engine.apply_batch(edges.data() + start,
                         std::min(batch_size, edges.size() - start));
      std::this_thread::yield();  // widen the applied-but-unpublished window
      engine.publish();
      ++k;
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      // Readers keep polling until they have seen the writer finish AND
      // observed one post-completion epoch.
      std::uint64_t last_epoch = 0;
      serve::QueryBatch<NodeID> batch;
      bool saw_final_epoch = false;
      while (!saw_final_epoch) {
        const bool done_before =
            writer_done.load(std::memory_order_acquire);
        batch.clear();
        for (const Probe& p : probes) batch.add(p.u, p.v);
        engine.answer(batch);
        reader_batches.fetch_add(1, std::memory_order_release);
        if (batch.epoch < last_epoch) epoch_regressions.fetch_add(1);
        last_epoch = batch.epoch;
        for (std::size_t i = 0; i < probes.size(); ++i) {
          const bool expect =
              first_epoch[i] != 0 && first_epoch[i] <= batch.epoch;
          if (static_cast<bool>(batch.connected[i]) != expect)
            violations.fetch_add(1);
        }
        if (done_before) saw_final_epoch = true;
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0)
      << "a batch's answers disagreed with the serial replay of the "
         "edge-batch prefix its stamped epoch promises";
  EXPECT_EQ(epoch_regressions.load(), 0);

  // Final-state agreement with the serial oracle.
  const auto truth = union_find_cc(edges, n);
  const auto labels = engine.labels();
  ASSERT_EQ(labels.size(), truth.size());
  for (std::int64_t v = 0; v < n; ++v)
    ASSERT_EQ(labels[v], truth[v]) << "vertex " << v;
}

TEST(ServeLinearizability, PointQueriesMonotoneUnderWriter) {
  // Same shape but through the single-query path (connected()), which pins
  // a fresh snapshot per call — the interleaving the double-buffer
  // re-check protocol has to survive.
  const std::int64_t n = 1 << 8;
  const auto edges = generate_uniform_edges<NodeID>(n, 3 * n, /*seed=*/23);
  Engine engine(n);
  std::atomic<bool> writer_done{false};
  std::atomic<int> violations{0};

  // Probe pairs from the edge list: they all connect eventually.
  const auto probes = make_probes(edges, n, 16, /*seed=*/3);

  std::thread writer([&] {
    const std::size_t batch_size = 32;
    for (std::size_t start = 0; start < edges.size(); start += batch_size) {
      engine.apply_batch(edges.data() + start,
                         std::min(batch_size, edges.size() - start));
      engine.publish();
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::vector<bool> seen_connected(probes.size(), false);
      bool done = false;
      while (!done) {
        done = writer_done.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < probes.size(); ++i) {
          const bool conn = engine.connected(probes[i].u, probes[i].v);
          if (seen_connected[i] && !conn) violations.fetch_add(1);
          if (conn) seen_connected[i] = true;
        }
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);

  // Final answers agree with the serial oracle for every probe.
  const auto truth = union_find_cc(edges, n);
  for (const auto& p : probes)
    EXPECT_EQ(engine.connected(p.u, p.v), truth[p.u] == truth[p.v]);
}

}  // namespace
}  // namespace afforest
