// DurableEngine unit tests (src/serve/durable_engine.hpp): bootstrap,
// journal-then-apply, checkpoint rotation + GC, WAL-only and
// checkpoint+suffix recovery, torn-tail handling, epoch monotonicity
// across a crash, windowed ring recovery, and the poisoning discipline.
#include "serve/durable_engine.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "../support/scoped_env.hpp"
#include "cc/common.hpp"
#include "serve/durable_test_util.hpp"

namespace afforest::serve {
namespace {

using ::afforest::serve::testing::DurableOp;
using ::afforest::serve::testing::make_workload;
using ::afforest::serve::testing::oracle_labels;
using ::afforest::serve::testing::to_edge_list;
using ::afforest::testing::ScopedEnv;
using NodeID = std::int32_t;

class DurableEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_durable_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DurableOptions opts(std::uint64_t window = 0,
                      std::uint64_t checkpoint_every = 0) const {
    DurableOptions o;
    o.dir = dir_.string();
    o.window = window;
    o.checkpoint_every = checkpoint_every;
    o.sync = WalSync::kNone;  // unit tests survive process death, not power loss
    return o;
  }

  std::vector<std::string> files() const {
    std::vector<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dir_))
      names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    return names;
  }

  static void expect_same_partition(const ComponentLabels<NodeID>& a,
                                    const ComponentLabels<NodeID>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t v = 0; v < a.size(); ++v)
      EXPECT_EQ(a[v], b[v]) << "labels disagree at vertex " << v;
  }

  std::filesystem::path dir_;
};

TEST_F(DurableEngineTest, BootstrapCreatesManifestAndWal) {
  DurableEngine<NodeID> engine(16, opts());
  EXPECT_FALSE(engine.recovery_stats().recovered);
  EXPECT_EQ(engine.last_seq(), 0u);
  EXPECT_EQ(files(), (std::vector<std::string>{"MANIFEST", "wal-1.log"}));
}

TEST_F(DurableEngineTest, WalOnlyRecoveryReplaysEveryRecord) {
  const auto ops = make_workload(32, 12, /*seed=*/7, /*windowed=*/false);
  {
    DurableEngine<NodeID> engine(32, opts());
    for (const auto& op : ops) {
      if (op.type == WalRecordType::kInsert)
        engine.insert(to_edge_list(op.edges));
      else
        engine.erase(to_edge_list(op.edges));
    }
    EXPECT_EQ(engine.last_seq(), ops.size());
  }
  DurableEngine<NodeID> reopened(32, opts());
  EXPECT_TRUE(reopened.recovery_stats().recovered);
  EXPECT_EQ(reopened.recovery_stats().checkpoint_seq, 0u);
  EXPECT_EQ(reopened.recovery_stats().wal_records_replayed, ops.size());
  EXPECT_EQ(reopened.last_seq(), ops.size());
  expect_same_partition(reopened.live_labels(),
                        oracle_labels(ops, ops.size(), 32, 0));
}

TEST_F(DurableEngineTest, CheckpointRotatesTheWalAndCollectsGarbage) {
  DurableEngine<NodeID> engine(16, opts());
  engine.insert(EdgeList<NodeID>{{0, 1}});
  engine.insert(EdgeList<NodeID>{{1, 2}});
  engine.checkpoint();
  EXPECT_EQ(files(),
            (std::vector<std::string>{"MANIFEST", "ckpt-2.afck", "wal-3.log"}));
  engine.insert(EdgeList<NodeID>{{3, 4}});
  engine.checkpoint();
  EXPECT_EQ(files(),
            (std::vector<std::string>{"MANIFEST", "ckpt-3.afck", "wal-4.log"}));
}

TEST_F(DurableEngineTest, CheckpointPlusSuffixRecovery) {
  const auto ops = make_workload(32, 16, /*seed=*/21, /*windowed=*/false);
  {
    DurableEngine<NodeID> engine(32, opts());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].type == WalRecordType::kInsert)
        engine.insert(to_edge_list(ops[i].edges));
      else
        engine.erase(to_edge_list(ops[i].edges));
      if (i == 9) engine.checkpoint();
    }
  }
  DurableEngine<NodeID> reopened(32, opts());
  EXPECT_EQ(reopened.recovery_stats().checkpoint_seq, 10u);
  EXPECT_EQ(reopened.recovery_stats().wal_records_replayed, ops.size() - 10);
  expect_same_partition(reopened.live_labels(),
                        oracle_labels(ops, ops.size(), 32, 0));
}

TEST_F(DurableEngineTest, AutoCheckpointEveryNRecords) {
  DurableEngine<NodeID> engine(16, opts(/*window=*/0, /*checkpoint_every=*/3));
  for (int i = 0; i < 7; ++i)
    engine.insert(EdgeList<NodeID>{{static_cast<NodeID>(i),
                                    static_cast<NodeID>(i + 1)}});
  // Checkpoints landed at seq 3 and 6; the live WAL is wal-7.log with one
  // record after the latest checkpoint.
  const auto names = files();
  EXPECT_EQ(names,
            (std::vector<std::string>{"MANIFEST", "ckpt-6.afck", "wal-7.log"}));
  DurableEngine<NodeID> reopened(16, opts(0, 3));
  EXPECT_EQ(reopened.recovery_stats().checkpoint_seq, 6u);
  EXPECT_EQ(reopened.recovery_stats().wal_records_replayed, 1u);
}

TEST_F(DurableEngineTest, TornWalTailIsTruncatedOnRecovery) {
  const auto ops = make_workload(32, 8, /*seed=*/3, /*windowed=*/false);
  {
    DurableEngine<NodeID> engine(32, opts());
    for (const auto& op : ops) {
      if (op.type == WalRecordType::kInsert)
        engine.insert(to_edge_list(op.edges));
      else
        engine.erase(to_edge_list(op.edges));
    }
  }
  // Tear 5 bytes off the live segment: the final record is torn, recovery
  // must land on the 7-op prefix.
  const auto wal = dir_ / "wal-1.log";
  const auto size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 5);

  DurableEngine<NodeID> reopened(32, opts());
  EXPECT_GT(reopened.recovery_stats().wal_torn_bytes, 0u);
  EXPECT_EQ(reopened.recovery_stats().wal_records_replayed, ops.size() - 1);
  EXPECT_EQ(reopened.last_seq(), ops.size() - 1);
  expect_same_partition(reopened.live_labels(),
                        oracle_labels(ops, ops.size() - 1, 32, 0));
  // The engine keeps serving and journaling after the truncation.
  reopened.insert(EdgeList<NodeID>{{0, 1}});
  EXPECT_EQ(reopened.last_seq(), ops.size());
}

TEST_F(DurableEngineTest, EpochsStayMonotoneAcrossRecovery) {
  std::uint64_t epoch_before = 0;
  {
    DurableEngine<NodeID> engine(16, opts());
    for (int i = 0; i < 5; ++i)
      engine.insert(EdgeList<NodeID>{{static_cast<NodeID>(i),
                                      static_cast<NodeID>(i + 1)}});
    epoch_before = engine.epoch();
  }
  DurableEngine<NodeID> reopened(16, opts());
  EXPECT_GE(reopened.epoch(), epoch_before);
  reopened.insert(EdgeList<NodeID>{{6, 7}});
  EXPECT_GT(reopened.epoch(), epoch_before);
}

TEST_F(DurableEngineTest, WindowedEngineRecoversTheRing) {
  const auto ops = make_workload(32, 20, /*seed=*/11, /*windowed=*/true);
  {
    DurableEngine<NodeID> engine(32, opts(/*window=*/3));
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].type == WalRecordType::kInsert)
        engine.insert(to_edge_list(ops[i].edges));
      else
        engine.tick();
      if (i == 11) engine.checkpoint();
    }
  }
  DurableEngine<NodeID> reopened(32, opts(3));
  EXPECT_TRUE(reopened.windowed());
  expect_same_partition(reopened.live_labels(),
                        oracle_labels(ops, ops.size(), 32, 3));
  // The restored ring drives further expiry exactly like the oracle's.
  auto extended = ops;
  for (int i = 0; i < 4; ++i) {
    DurableOp op;
    op.type = WalRecordType::kInsert;
    op.edges = {{static_cast<NodeID>(i), static_cast<NodeID>(30 - i)}};
    reopened.insert(to_edge_list(op.edges));
    extended.push_back(op);
  }
  expect_same_partition(
      reopened.live_labels(),
      oracle_labels(extended, extended.size(), 32, 3));
}

TEST_F(DurableEngineTest, FailedAppendPoisonsUntilReopen) {
  DurableEngine<NodeID> engine(16, opts());
  engine.insert(EdgeList<NodeID>{{0, 1}});
  {
    ScopedEnv fp("AFFOREST_FAILPOINTS", "wal.append=1");
    failpoints_reload();
    EXPECT_THROW(engine.insert(EdgeList<NodeID>{{2, 3}}), FailpointError);
  }
  failpoints_reload();
  // Memory and log may disagree: every further mutation is refused.
  EXPECT_THROW(engine.insert(EdgeList<NodeID>{{4, 5}}), std::logic_error);
  EXPECT_THROW(engine.checkpoint(), std::logic_error);
  // Reads still serve the last published snapshot.
  EXPECT_TRUE(engine.connected(0, 1));
  // A fresh open IS the recovery path: the torn record is discarded.
  DurableEngine<NodeID> reopened(16, opts());
  EXPECT_EQ(reopened.last_seq(), 1u);
  EXPECT_TRUE(reopened.connected(0, 1));
  EXPECT_FALSE(reopened.connected(2, 3));
  reopened.insert(EdgeList<NodeID>{{2, 3}});
  EXPECT_EQ(reopened.last_seq(), 2u);
}

TEST_F(DurableEngineTest, MismatchedIdentityOnRecoveryIsTyped) {
  { DurableEngine<NodeID> engine(16, opts()); }
  try {
    DurableEngine<NodeID> wrong_nodes(17, opts());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kCorruptHeader);
  }
  try {
    DurableEngine<NodeID> wrong_window(16, opts(/*window=*/2));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kCorruptHeader);
  }
}

TEST_F(DurableEngineTest, TickOnUnwindowedEngineIsALogicError) {
  DurableEngine<NodeID> engine(16, opts());
  EXPECT_THROW(engine.tick(), std::logic_error);
}

TEST_F(DurableEngineTest, OutOfRangeVertexIsRejectedBeforeJournaling) {
  DurableEngine<NodeID> engine(4, opts());
  EXPECT_THROW(engine.insert(EdgeList<NodeID>{{0, 9}}), VertexRangeError);
  // The rejected batch never reached the WAL and the engine stays healthy.
  EXPECT_EQ(engine.last_seq(), 0u);
  engine.insert(EdgeList<NodeID>{{0, 1}});
  EXPECT_EQ(engine.last_seq(), 1u);
}

TEST_F(DurableEngineTest, EmptyDirOptionIsRejected) {
  EXPECT_THROW(DurableEngine<NodeID>(4, DurableOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace afforest::serve
