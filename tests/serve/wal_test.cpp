// WAL unit tests (src/serve/wal.hpp): framing round-trips, torn-tail
// truncation, duplicate-tail rejection via the seq chain, typed header
// errors, and the writer's torn-append poisoning.
#include "serve/wal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "../support/scoped_env.hpp"

namespace afforest::serve {
namespace {

using ::afforest::testing::ScopedEnv;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_wal_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static WalHeader header(std::uint64_t start_seq = 1) {
    WalHeader h;
    h.num_nodes = 64;
    h.window = 0;
    h.start_seq = start_seq;
    return h;
  }

  static WalRecord record(std::uint64_t seq, WalRecordType type,
                          std::vector<std::pair<std::int64_t, std::int64_t>>
                              edges = {{1, 2}, {3, 4}}) {
    WalRecord r;
    r.type = type;
    r.seq = seq;
    r.epoch = seq + 10;
    r.edges = std::move(edges);
    return r;
  }

  static std::vector<char> slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  static void dump(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

TEST_F(WalTest, EmptySegmentScansClean) {
  const auto p = path("w.log");
  WalWriter::create(p, header(), WalSync::kFsync);
  const WalScan scan = wal_scan(p);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.last_seq, 0u);
  EXPECT_EQ(scan.header.num_nodes, 64u);
}

TEST_F(WalTest, RecordsRoundTrip) {
  const auto p = path("w.log");
  {
    WalWriter w = WalWriter::create(p, header(), WalSync::kFsync);
    w.append(record(1, WalRecordType::kInsert));
    w.append(record(2, WalRecordType::kDelete, {{5, 6}}));
    w.append(record(3, WalRecordType::kTick, {}));
  }
  const WalScan scan = wal_scan(p);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].type, WalRecordType::kInsert);
  EXPECT_EQ(scan.records[0].seq, 1u);
  EXPECT_EQ(scan.records[0].epoch, 11u);
  EXPECT_EQ(scan.records[0].edges,
            (std::vector<std::pair<std::int64_t, std::int64_t>>{{1, 2},
                                                                {3, 4}}));
  EXPECT_EQ(scan.records[1].type, WalRecordType::kDelete);
  EXPECT_EQ(scan.records[2].type, WalRecordType::kTick);
  EXPECT_TRUE(scan.records[2].edges.empty());
  EXPECT_EQ(scan.last_seq, 3u);
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST_F(WalTest, NonContiguousSeqIsALogicError) {
  const auto p = path("w.log");
  WalWriter w = WalWriter::create(p, header(), WalSync::kNone);
  w.append(record(1, WalRecordType::kInsert));
  EXPECT_THROW(w.append(record(3, WalRecordType::kInsert)),
               std::logic_error);
}

TEST_F(WalTest, TornTailIsReportedAndTruncatedOnReopen) {
  const auto p = path("w.log");
  {
    WalWriter w = WalWriter::create(p, header(), WalSync::kNone);
    w.append(record(1, WalRecordType::kInsert));
    w.append(record(2, WalRecordType::kInsert));
  }
  auto bytes = slurp(p);
  const std::size_t full = bytes.size();
  bytes.resize(full - 7);  // tear mid-record
  dump(p, bytes);

  const WalScan before = wal_scan(p);
  EXPECT_EQ(before.records.size(), 1u);
  EXPECT_GT(before.torn_bytes, 0u);

  {
    WalScan reopened;
    WalWriter w = WalWriter::open_for_append(p, WalSync::kNone, &reopened);
    EXPECT_EQ(reopened.records.size(), 1u);
    EXPECT_EQ(w.last_seq(), 1u);
    w.append(record(2, WalRecordType::kDelete));  // resumes at seq 2
  }
  const WalScan after = wal_scan(p);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[1].type, WalRecordType::kDelete);
  EXPECT_EQ(after.torn_bytes, 0u);
}

TEST_F(WalTest, DuplicatedTailIsRejectedBySeqChain) {
  const auto p = path("w.log");
  {
    WalWriter w = WalWriter::create(p, header(), WalSync::kNone);
    w.append(record(1, WalRecordType::kInsert));
    w.append(record(2, WalRecordType::kInsert));
  }
  const auto bytes = slurp(p);
  // Record 2 occupies [rec1_end, EOF).  Duplicating those bytes yields a
  // tail whose CRC passes but whose seq repeats 2 — only the seq chain can
  // reject it.  rec1_end is found by scanning truncated copies.
  std::size_t rec1_end = 0;
  for (std::size_t cut = bytes.size(); cut-- > 0;) {
    std::vector<char> probe(bytes.begin(),
                            bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    dump(path("probe.log"), probe);
    if (wal_scan(path("probe.log")).records.size() == 1u &&
        wal_scan(path("probe.log")).torn_bytes == 0u) {
      rec1_end = cut;
      break;
    }
  }
  ASSERT_GT(rec1_end, 0u);
  std::vector<char> dup = bytes;
  dup.insert(dup.end(), bytes.begin() + static_cast<std::ptrdiff_t>(rec1_end),
             bytes.end());
  dump(p, dup);

  const WalScan scan = wal_scan(p);
  EXPECT_EQ(scan.records.size(), 2u);  // the duplicate suffix is rejected
  EXPECT_GT(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.last_seq, 2u);
}

TEST_F(WalTest, CorruptPayloadByteStopsTheScan) {
  const auto p = path("w.log");
  {
    WalWriter w = WalWriter::create(p, header(), WalSync::kNone);
    w.append(record(1, WalRecordType::kInsert));
    w.append(record(2, WalRecordType::kInsert));
  }
  auto bytes = slurp(p);
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit inside record 2's payload
  dump(p, bytes);
  const WalScan scan = wal_scan(p);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_GT(scan.torn_bytes, 0u);
}

TEST_F(WalTest, HugeLengthFieldNeverOverAllocates) {
  const auto p = path("w.log");
  WalWriter::create(p, header(), WalSync::kNone);
  auto bytes = slurp(p);
  // Forge a frame claiming a ~4 GiB payload with only 4 bytes behind it.
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>(0xFF));
  for (int i = 0; i < 8; ++i) bytes.push_back(0);
  dump(p, bytes);
  const WalScan scan = wal_scan(p);  // must not allocate 4 GiB or throw
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.torn_bytes, 12u);
}

TEST_F(WalTest, BadMagicIsTyped) {
  const auto p = path("w.log");
  WalWriter::create(p, header(), WalSync::kNone);
  auto bytes = slurp(p);
  bytes[0] = 'X';
  dump(p, bytes);
  try {
    wal_scan(p);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kBadMagic);
  }
}

TEST_F(WalTest, HeaderBitFlipIsChecksumMismatch) {
  const auto p = path("w.log");
  WalWriter::create(p, header(), WalSync::kNone);
  auto bytes = slurp(p);
  bytes[10] ^= 1;  // inside num_nodes
  dump(p, bytes);
  try {
    wal_scan(p);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kChecksumMismatch);
  }
}

TEST_F(WalTest, TruncatedHeaderIsTyped) {
  const auto p = path("w.log");
  WalWriter::create(p, header(), WalSync::kNone);
  auto bytes = slurp(p);
  bytes.resize(10);
  dump(p, bytes);
  try {
    wal_scan(p);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kTruncated);
  }
}

TEST_F(WalTest, MissingFileIsOpenFailed) {
  try {
    wal_scan(path("nope.log"));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kOpenFailed);
  }
}

TEST_F(WalTest, AppendFailpointTearsTheRecordAndPoisonsTheWriter) {
  const auto p = path("w.log");
  WalWriter w = WalWriter::create(p, header(), WalSync::kNone);
  w.append(record(1, WalRecordType::kInsert));
  {
    ScopedEnv fp("AFFOREST_FAILPOINTS", "wal.append=1");
    failpoints_reload();
    EXPECT_THROW(w.append(record(2, WalRecordType::kInsert)),
                 FailpointError);
  }
  failpoints_reload();
  // The tear left the file position untrustworthy: the writer refuses
  // further appends instead of silently writing after garbage.
  EXPECT_THROW(w.append(record(2, WalRecordType::kInsert)),
               std::logic_error);
  // Reopening truncates the torn prefix and resumes cleanly.
  WalScan scan;
  WalWriter reopened = WalWriter::open_for_append(p, WalSync::kNone, &scan);
  EXPECT_EQ(scan.records.size(), 1u);
  reopened.append(record(2, WalRecordType::kInsert));
  EXPECT_EQ(wal_scan(p).records.size(), 2u);
}

TEST_F(WalTest, FsyncFailpointLeavesTheRecordIntact) {
  const auto p = path("w.log");
  WalWriter w = WalWriter::create(p, header(), WalSync::kFsync);
  {
    ScopedEnv fp("AFFOREST_FAILPOINTS", "wal.fsync=1");
    failpoints_reload();
    EXPECT_THROW(w.append(record(1, WalRecordType::kInsert)),
                 FailpointError);
  }
  failpoints_reload();
  // The record was fully written before the injected fsync failure:
  // recovery sees it (crash-after-write, before-durable semantics).
  const WalScan scan = wal_scan(p);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST_F(WalTest, StartSeqChainsAcrossSegments) {
  const auto p = path("w.log");
  WalWriter w = WalWriter::create(p, header(/*start_seq=*/7), WalSync::kNone);
  EXPECT_EQ(w.last_seq(), 6u);
  w.append(record(7, WalRecordType::kInsert));
  const WalScan scan = wal_scan(p);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.header.start_seq, 7u);
  EXPECT_EQ(scan.last_seq, 7u);
}

}  // namespace
}  // namespace afforest::serve
