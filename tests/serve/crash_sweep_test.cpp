// Crash-sweep harness (the durability subsystem's primary proof).
//
// For every durability failpoint site × several seeds × both engine modes,
// a seeded workload is driven into a DurableEngine until the armed site
// fires (an injected crash mid-append, mid-fsync, mid-checkpoint, or
// mid-recovery).  The run asserts — via the failpoint hit/fire counters —
// that the site actually fired, then recovers by reopening the directory
// and differentially checks the recovered labels against the from-scratch
// union-find oracle at the recovered seq.  The durability contract under
// test: every op that RETURNED survives; the op in flight at the crash
// either fully survives or fully disappears; nothing else changes.
//
// Real process kills (AFFOREST_FAILPOINT_LETHAL) are exercised by
// tests/integration/durable_crash_test.cpp; this sweep uses the throwing
// flavor so every site × seed cell stays cheap enough to run in tier 1.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "../support/scoped_env.hpp"
#include "analysis/telemetry.hpp"
#include "cc/common.hpp"
#include "serve/durable_engine.hpp"
#include "serve/durable_test_util.hpp"

namespace afforest::serve {
namespace {

using ::afforest::serve::testing::DurableOp;
using ::afforest::serve::testing::make_workload;
using ::afforest::serve::testing::oracle_labels;
using ::afforest::serve::testing::to_edge_list;
using ::afforest::testing::ScopedEnv;
using NodeID = std::int32_t;

constexpr std::int64_t kNodes = 48;
constexpr std::size_t kOps = 16;

struct SweepCell {
  const char* site;
  std::uint64_t hit;        ///< fire on the hit-th evaluation (@N arming)
  std::uint64_t seed;       ///< workload seed
  bool windowed;
  std::uint64_t checkpoint_every;
  WalSync sync;
};

class CrashSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_sweep_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DurableOptions opts(const SweepCell& cell) const {
    DurableOptions o;
    o.dir = dir_.string();
    o.window = cell.windowed ? 3 : 0;
    o.checkpoint_every = cell.checkpoint_every;
    o.sync = cell.sync;
    return o;
  }

  static void drive(DurableEngine<NodeID>& engine, const DurableOp& op) {
    switch (op.type) {
      case WalRecordType::kInsert:
        engine.insert(to_edge_list(op.edges));
        return;
      case WalRecordType::kDelete:
        engine.erase(to_edge_list(op.edges));
        return;
      case WalRecordType::kTick:
        engine.tick();
        return;
    }
  }

  static void expect_oracle_match(const DurableEngine<NodeID>& engine,
                                  const std::vector<DurableOp>& ops,
                                  std::size_t prefix, std::uint64_t window,
                                  const std::string& context) {
    const ComponentLabels<NodeID> got = engine.live_labels();
    const ComponentLabels<NodeID> want =
        oracle_labels(ops, prefix, kNodes, window);
    ASSERT_EQ(got.size(), want.size()) << context;
    for (std::size_t v = 0; v < got.size(); ++v)
      ASSERT_EQ(got[v], want[v])
          << context << ": recovered labels diverge from the union-find "
          << "oracle at vertex " << v << " (durable prefix " << prefix << ")";
  }

  /// One sweep cell for a site that fires during the WORKLOAD (append,
  /// fsync, checkpoint sites): run until the injected crash, assert the
  /// site fired, recover, differentially check the durable prefix.
  void run_workload_cell(const SweepCell& cell) {
    const std::string context = std::string(cell.site) + " @" +
                                std::to_string(cell.hit) + " seed " +
                                std::to_string(cell.seed) +
                                (cell.windowed ? " windowed" : "");
    SCOPED_TRACE(context);
    const auto ops =
        make_workload(kNodes, kOps, cell.seed, cell.windowed);
    const std::uint64_t window = cell.windowed ? 3 : 0;

    std::size_t completed = 0;
    bool crashed = false;
    {
      const std::string spec =
          std::string(cell.site) + "=@" + std::to_string(cell.hit);
      ScopedEnv fp("AFFOREST_FAILPOINTS", spec.c_str());
      failpoints_reload();
      try {
        DurableEngine<NodeID> engine(kNodes, opts(cell));
        for (const auto& op : ops) {
          drive(engine, op);
          ++completed;
        }
      } catch (const FailpointError& e) {
        EXPECT_EQ(e.site(), cell.site);
        crashed = true;
      }
      // The hit-counter assertion: the sweep is meaningless if the site
      // never actually fired (e.g. a renamed site or an unreachable path).
      ASSERT_EQ(failpoint_fire_count(cell.site), 1u)
          << "site did not fire; hits=" << failpoint_hit_count(cell.site);
      EXPECT_GE(failpoint_hit_count(cell.site), cell.hit);
      // The fire is also visible through the telemetry read side.
      EXPECT_GE(telemetry::snapshot().failpoints_fired, 1u);
    }
    failpoints_reload();  // disarm for recovery
    ASSERT_TRUE(crashed) << "workload finished without the injected crash";

    DurableEngine<NodeID> recovered(kNodes, opts(cell));
    EXPECT_TRUE(recovered.recovery_stats().recovered);
    const std::uint64_t durable_seq = recovered.last_seq();
    // Every op that returned is durable; the in-flight op is all-or-nothing.
    EXPECT_GE(durable_seq, completed);
    EXPECT_LE(durable_seq, completed + 1);
    expect_oracle_match(recovered, ops,
                        static_cast<std::size_t>(durable_seq), window,
                        context);
    // The directory is fully GC'd: no orphan tmp files survive recovery.
    for (const auto& entry : std::filesystem::directory_iterator(dir_))
      EXPECT_NE(entry.path().extension(), ".tmp")
          << "orphan tmp file survived recovery: " << entry.path();
    // Recovery is a full return to service: the engine keeps journaling.
    recovered.insert(EdgeList<NodeID>{{0, 1}});
    EXPECT_EQ(recovered.last_seq(), durable_seq + 1);
  }

  /// One sweep cell for the RECOVERY site: run the workload cleanly, crash
  /// the first recovery attempt mid-replay, then recover for real and
  /// check equivalence — recovery itself must be crash-safe (idempotent).
  void run_recovery_cell(const SweepCell& cell) {
    const std::string context = std::string("recover.replay @") +
                                std::to_string(cell.hit) + " seed " +
                                std::to_string(cell.seed) +
                                (cell.windowed ? " windowed" : "");
    SCOPED_TRACE(context);
    const auto ops =
        make_workload(kNodes, kOps, cell.seed, cell.windowed);
    const std::uint64_t window = cell.windowed ? 3 : 0;
    {
      DurableEngine<NodeID> engine(kNodes, opts(cell));
      for (const auto& op : ops) drive(engine, op);
    }
    {
      const std::string spec =
          "recover.replay=@" + std::to_string(cell.hit);
      ScopedEnv fp("AFFOREST_FAILPOINTS", spec.c_str());
      failpoints_reload();
      try {
        DurableEngine<NodeID> engine(kNodes, opts(cell));
        FAIL() << context << ": recovery did not hit the armed replay site";
      } catch (const FailpointError& e) {
        EXPECT_EQ(e.site(), std::string("recover.replay"));
      }
      ASSERT_EQ(failpoint_fire_count("recover.replay"), 1u);
    }
    failpoints_reload();
    DurableEngine<NodeID> recovered(kNodes, opts(cell));
    EXPECT_EQ(recovered.last_seq(), ops.size());
    EXPECT_EQ(recovered.recovery_stats().wal_records_replayed +
                  recovered.recovery_stats().checkpoint_seq,
              ops.size());
    expect_oracle_match(recovered, ops, ops.size(), window, context);
  }

  std::filesystem::path dir_;
};

TEST_F(CrashSweepTest, WalAppendSweep) {
  for (const SweepCell& cell : std::vector<SweepCell>{
           {"wal.append", 3, 101, false, 0, WalSync::kNone},
           {"wal.append", 9, 102, false, 0, WalSync::kNone},
           {"wal.append", 14, 103, false, 5, WalSync::kNone},
           {"wal.append", 6, 104, true, 0, WalSync::kNone},
           {"wal.append", 11, 105, true, 6, WalSync::kNone},
       }) {
    SetUp();  // fresh directory per cell
    run_workload_cell(cell);
  }
}

TEST_F(CrashSweepTest, WalFsyncSweep) {
  // kFsync mode so the fsync site is actually on the append path.  A fired
  // fsync means crash-after-write: the record may legitimately survive.
  for (const SweepCell& cell : std::vector<SweepCell>{
           {"wal.fsync", 2, 201, false, 0, WalSync::kFsync},
           {"wal.fsync", 8, 202, false, 0, WalSync::kFsync},
           {"wal.fsync", 13, 203, false, 5, WalSync::kFsync},
           {"wal.fsync", 5, 204, true, 0, WalSync::kFsync},
       }) {
    SetUp();
    run_workload_cell(cell);
  }
}

TEST_F(CrashSweepTest, CheckpointWriteSweep) {
  // checkpoint_every=3 over 16 ops yields 5 auto-checkpoints; the hit
  // index selects which one tears mid-tmp-write.
  for (const SweepCell& cell : std::vector<SweepCell>{
           {"ckpt.write", 1, 301, false, 3, WalSync::kNone},
           {"ckpt.write", 2, 302, false, 3, WalSync::kNone},
           {"ckpt.write", 3, 303, false, 3, WalSync::kNone},
           {"ckpt.write", 2, 304, true, 3, WalSync::kNone},
       }) {
    SetUp();
    run_workload_cell(cell);
  }
}

TEST_F(CrashSweepTest, CheckpointRenameSweep) {
  // Crash with the tmp durable but never renamed: the manifest still names
  // the previous pair and the orphan tmp is swept at recovery.
  for (const SweepCell& cell : std::vector<SweepCell>{
           {"ckpt.rename", 1, 401, false, 3, WalSync::kNone},
           {"ckpt.rename", 2, 402, false, 3, WalSync::kNone},
           {"ckpt.rename", 3, 403, false, 3, WalSync::kNone},
           {"ckpt.rename", 2, 404, true, 3, WalSync::kNone},
       }) {
    SetUp();
    run_workload_cell(cell);
  }
}

TEST_F(CrashSweepTest, ManifestReplaceSweep) {
  // Crash between the new checkpoint becoming durable and the manifest
  // swinging over to it: the old manifest must still name the old
  // checkpoint/WAL pair, the new pair is an unreferenced orphan that
  // recovery GCs, and no .tmp survives (the site fires before the
  // manifest's atomic_write_file even creates one).  Hit 1 is bootstrap's
  // write_manifest on the fresh directory, so the sweep starts at hit 2 —
  // the first auto-checkpoint's manifest swing.
  for (const SweepCell& cell : std::vector<SweepCell>{
           {"manifest.replace", 2, 701, false, 3, WalSync::kNone},
           {"manifest.replace", 3, 702, false, 3, WalSync::kNone},
           {"manifest.replace", 4, 703, false, 3, WalSync::kNone},
           {"manifest.replace", 2, 704, true, 3, WalSync::kNone},
       }) {
    SetUp();
    run_workload_cell(cell);
  }
}

TEST_F(CrashSweepTest, RecoveryReplaySweep) {
  // checkpoint_every=0 keeps every record in the replay suffix, so the hit
  // index picks how deep into replay the second crash lands.
  for (const SweepCell& cell : std::vector<SweepCell>{
           {"recover.replay", 1, 501, false, 0, WalSync::kNone},
           {"recover.replay", 7, 502, false, 0, WalSync::kNone},
           {"recover.replay", 14, 503, false, 0, WalSync::kNone},
           {"recover.replay", 5, 504, true, 0, WalSync::kNone},
       }) {
    SetUp();
    run_recovery_cell(cell);
  }
}

TEST_F(CrashSweepTest, BackToBackCrashesStayRecoverable) {
  // Crash → recover → crash at a different site → recover: the directory
  // must stay consistent through repeated failures, not just one.
  const auto ops = make_workload(kNodes, kOps, 601, false);
  std::size_t completed = 0;
  {
    ScopedEnv fp("AFFOREST_FAILPOINTS", "wal.append=@5");
    failpoints_reload();
    try {
      DurableOptions o;
      o.dir = dir_.string();
      o.sync = WalSync::kNone;
      DurableEngine<NodeID> engine(kNodes, o);
      for (const auto& op : ops) {
        drive(engine, op);
        ++completed;
      }
    } catch (const FailpointError&) {
    }
    EXPECT_EQ(failpoint_fire_count("wal.append"), 1u);
  }
  failpoints_reload();
  std::uint64_t durable_seq = 0;
  {
    ScopedEnv fp("AFFOREST_FAILPOINTS", "ckpt.write=@1");
    failpoints_reload();
    DurableOptions o;
    o.dir = dir_.string();
    o.sync = WalSync::kNone;
    DurableEngine<NodeID> engine(kNodes, o);
    EXPECT_EQ(engine.last_seq(), completed);
    // Resume the rest of the workload, then crash the explicit checkpoint.
    for (std::size_t i = completed; i < ops.size(); ++i) drive(engine, ops[i]);
    EXPECT_THROW(engine.checkpoint(), FailpointError);
    durable_seq = ops.size();
    EXPECT_EQ(failpoint_fire_count("ckpt.write"), 1u);
  }
  failpoints_reload();
  DurableOptions o;
  o.dir = dir_.string();
  o.sync = WalSync::kNone;
  DurableEngine<NodeID> recovered(kNodes, o);
  EXPECT_EQ(recovered.last_seq(), durable_seq);
  expect_oracle_match(recovered, ops, ops.size(), 0, "back-to-back");
}

}  // namespace
}  // namespace afforest::serve
