// SnapshotStore + WriterLock unit tests (src/serve/snapshot_store.hpp,
// src/serve/writer_lock.hpp): epoch monotonicity and the recovery epoch
// floor, refcount-pinned buffers (a leaked View surfaces as a typed
// ConvergenceError, not a hung writer), writer-lock contention, and
// torn-snapshot detection under a concurrent reader.
#include "serve/snapshot_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <thread>

#include "../support/scoped_env.hpp"
#include "cc/guards.hpp"
#include "serve/writer_lock.hpp"

namespace afforest::serve {
namespace {

using ::afforest::testing::ScopedEnv;
using NodeID = std::int32_t;

/// All-in-one-component labels (min id 0 everywhere).
ComponentLabels<NodeID> merged_labels(std::int64_t n) {
  return ComponentLabels<NodeID>(static_cast<std::size_t>(n), 0);
}

TEST(SnapshotStoreTest, EpochStartsAtOneAndIncrementsPerPublish) {
  SnapshotStore<NodeID> store(4);
  EXPECT_EQ(store.epoch(), 1u);
  store.publish(merged_labels(4));
  EXPECT_EQ(store.epoch(), 2u);
  store.publish(identity_labels<NodeID>(4));
  EXPECT_EQ(store.epoch(), 3u);
}

TEST(SnapshotStoreTest, EpochFloorLiftsTheNextPublish) {
  SnapshotStore<NodeID> store(4);
  store.set_epoch_floor(100);
  EXPECT_EQ(store.epoch(), 1u);  // the floor alone publishes nothing
  store.publish(merged_labels(4));
  EXPECT_EQ(store.epoch(), 101u);  // strictly above the floor
  store.publish(identity_labels<NodeID>(4));
  EXPECT_EQ(store.epoch(), 102u);
}

TEST(SnapshotStoreTest, StaleEpochFloorIsANoOp) {
  SnapshotStore<NodeID> store(4);
  store.publish(merged_labels(4));
  store.publish(identity_labels<NodeID>(4));
  store.set_epoch_floor(2);  // below the counter: must not rewind
  store.publish(merged_labels(4));
  EXPECT_EQ(store.epoch(), 4u);
}

TEST(SnapshotStoreTest, ViewPinsItsEpochAcrossOnePublish) {
  SnapshotStore<NodeID> store(4);
  const auto view = store.acquire();
  EXPECT_EQ(view.epoch(), 1u);
  store.publish(merged_labels(4));  // overwrites the OTHER buffer
  EXPECT_EQ(view.epoch(), 1u);     // pinned snapshot is untouched
  EXPECT_EQ(view.component_of(3), 3);
  EXPECT_EQ(store.acquire().epoch(), 2u);
}

TEST(SnapshotStoreTest, LeakedViewSurfacesAsConvergenceError) {
  ScopedEnv ceiling("AFFOREST_SERVE_SPIN_CEILING", "512");
  SnapshotStore<NodeID> store(4);
  std::optional<SnapshotStore<NodeID>::View> leaked(store.acquire());
  store.publish(merged_labels(4));  // other buffer: fine
  // The second publish must reclaim the buffer `leaked` still pins; with a
  // tiny spin ceiling the grace-period wait reports the leak as a typed
  // error instead of spinning forever.
  EXPECT_THROW(store.publish(identity_labels<NodeID>(4)), ConvergenceError);
  // Releasing the View drains the refcount and the writer recovers.
  leaked.reset();
  store.publish(identity_labels<NodeID>(4));
  EXPECT_EQ(store.acquire().component_of(3), 3);
}

TEST(SnapshotStoreTest, AnswerStampsTheSnapshotEpoch) {
  SnapshotStore<NodeID> store(4);
  store.publish(merged_labels(4));
  QueryBatch<NodeID> batch;
  batch.add(0, 3);
  batch.add(1, 1);
  store.answer(batch);
  EXPECT_EQ(batch.epoch, 2u);
  ASSERT_EQ(batch.count(), 2u);
  EXPECT_EQ(batch.connected[0], 1u);
  EXPECT_EQ(batch.component[0], 0);
  EXPECT_EQ(batch.component_size[0], 4);
}

TEST(SnapshotStoreTest, ConcurrentReaderNeverSeesATornSnapshot) {
  // The writer alternates between "one component of n" and "n singletons";
  // every pinned view must be internally consistent — component_size at a
  // fixed vertex is either n or 1, anything else is a torn snapshot.
  constexpr std::int64_t n = 64;
  SnapshotStore<NodeID> store(n);
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto view = store.acquire();
      const std::int64_t size = view.component_size(0);
      if (size != n && size != 1) torn.store(true);
    }
  });
  const auto merged = merged_labels(n);
  const auto split = identity_labels<NodeID>(n);
  for (int i = 0; i < 200; ++i) store.publish(i % 2 == 0 ? merged : split);
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(torn.load());
}

TEST(WriterLockTest, ContentionIsALogicErrorNotCorruption) {
  std::atomic<bool> flag{false};
  WriterLock held(flag, "test-engine");
  EXPECT_THROW(WriterLock(flag, "test-engine"), std::logic_error);
  // The failed acquisition must not have clobbered the holder's flag.
  EXPECT_TRUE(flag.load());
}

TEST(WriterLockTest, ReleaseAllowsReacquisition) {
  std::atomic<bool> flag{false};
  { WriterLock first(flag, "test-engine"); }
  EXPECT_FALSE(flag.load());
  WriterLock second(flag, "test-engine");
  EXPECT_TRUE(flag.load());
}

}  // namespace
}  // namespace afforest::serve
