// Property and edge-case tests for the serving layer: degenerate graph
// sizes, degenerate edges (self-loops, duplicates), queries racing an
// empty batch, and the component_size bookkeeping invariants that must
// survive compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cc/union_find.hpp"
#include "graph/generators/uniform.hpp"
#include "serve/query_batch.hpp"
#include "serve/query_engine.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;
using Engine = serve::QueryEngine<NodeID>;

TEST(ServeProperty, EmptyGraph) {
  Engine engine(0);
  EXPECT_EQ(engine.num_nodes(), 0);
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(engine.component_count(), 0);

  serve::QueryBatch<NodeID> batch;  // no queries to ask, but must not crash
  engine.answer(batch);
  EXPECT_EQ(batch.epoch, 1u);

  EdgeList<NodeID> none;
  engine.apply_batch(none);
  engine.publish();
  EXPECT_EQ(engine.epoch(), 2u);
  // Any vertex id at all is out of range.
  EXPECT_THROW((void)engine.component_of(0), std::out_of_range);
}

TEST(ServeProperty, SingleVertexGraph) {
  Engine engine(1);
  EXPECT_TRUE(engine.connected(0, 0));
  EXPECT_EQ(engine.component_of(0), 0);
  EXPECT_EQ(engine.component_size(0), 1);
  EXPECT_EQ(engine.component_count(), 1);

  // A self-loop is the only legal edge; it must be a no-op.
  EdgeList<NodeID> loop;
  loop.push_back({0, 0});
  engine.apply_and_publish(loop);
  EXPECT_EQ(engine.component_count(), 1);
  EXPECT_EQ(engine.component_size(0), 1);
}

TEST(ServeProperty, SelfLoopsAreNoOps) {
  Engine engine(4);
  EdgeList<NodeID> batch;
  for (NodeID v = 0; v < 4; ++v) batch.push_back({v, v});
  engine.apply_and_publish(batch);
  EXPECT_EQ(engine.component_count(), 4);
  for (NodeID v = 0; v < 4; ++v) EXPECT_EQ(engine.component_size(v), 1);
}

TEST(ServeProperty, DuplicateEdgesInOneBatch) {
  // link() applies each edge independently and idempotently (§III-B), so a
  // batch that repeats the same edge — including both orientations — must
  // produce the same partition as the deduplicated batch.
  Engine engine(4);
  EdgeList<NodeID> batch;
  for (int i = 0; i < 8; ++i) batch.push_back({1, 2});
  for (int i = 0; i < 8; ++i) batch.push_back({2, 1});
  engine.apply_and_publish(batch);
  EXPECT_EQ(engine.component_count(), 3);
  EXPECT_TRUE(engine.connected(1, 2));
  EXPECT_EQ(engine.component_of(2), 1);
  EXPECT_EQ(engine.component_size(1), 2);
  EXPECT_EQ(engine.component_size(0), 1);
}

TEST(ServeProperty, QueriesRacingEmptyBatches) {
  // An empty batch still turns the epoch over; concurrent readers must see
  // identical answers across those no-op publishes.
  const std::int64_t n = 64;
  const auto edges = generate_uniform_edges<NodeID>(n, 2 * n, /*seed=*/3);
  Engine engine(n);
  engine.apply_and_publish(edges);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  const auto expected = engine.labels();

  std::thread writer([&] {
    EdgeList<NodeID> empty;
    for (int i = 0; i < 200; ++i) {
      engine.apply_batch(empty);
      engine.publish();
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    serve::QueryBatch<NodeID> batch;
    while (!stop.load(std::memory_order_acquire)) {
      batch.clear();
      for (NodeID v = 0; v < n; ++v)
        batch.add(v, static_cast<NodeID>((v + 1) % n));
      engine.answer(batch);
      for (NodeID v = 0; v < n; ++v) {
        const bool want =
            expected[v] == expected[(v + 1) % n];
        if (static_cast<bool>(batch.connected[v]) != want)
          mismatches.fetch_add(1);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "no-op publishes changed query answers";
}

TEST(ServeProperty, ComponentSizesConsistentAfterCompaction) {
  const std::int64_t n = 1 << 10;
  const auto edges = generate_uniform_edges<NodeID>(n, 2 * n, /*seed=*/17);
  Engine engine(n);
  const std::size_t batch = 100;
  for (std::size_t start = 0; start < edges.size(); start += batch) {
    engine.apply_batch(edges.data() + start,
                       std::min(batch, edges.size() - start));
    engine.publish();

    // Invariants at EVERY epoch, not just the final one:
    //   * sizes partition the vertex set (sum over components == n);
    //   * each vertex's component_size matches the label histogram.
    const auto view = engine.acquire();
    const auto labels = engine.labels();
    std::vector<std::int64_t> histogram(static_cast<std::size_t>(n), 0);
    for (std::int64_t v = 0; v < n; ++v)
      ++histogram[static_cast<std::size_t>(labels[v])];
    std::int64_t total = 0;
    for (std::int64_t v = 0; v < n; ++v) {
      const auto size = view.component_size(static_cast<NodeID>(v));
      ASSERT_EQ(size, histogram[static_cast<std::size_t>(labels[v])])
          << "vertex " << v;
      if (labels[v] == static_cast<NodeID>(v)) total += size;
    }
    ASSERT_EQ(total, n) << "component sizes do not partition the graph";
  }

  // And the final partition matches the oracle.
  const auto truth = union_find_cc(edges, n);
  const auto labels = engine.labels();
  for (std::int64_t v = 0; v < n; ++v) ASSERT_EQ(labels[v], truth[v]);
}

TEST(ServeProperty, RepublishIsStable) {
  // publish() with no intervening writes must be idempotent on the
  // partition: same labels, same sizes, epoch strictly advancing.
  const std::int64_t n = 128;
  const auto edges = generate_uniform_edges<NodeID>(n, 2 * n, /*seed=*/9);
  Engine engine(n);
  engine.apply_and_publish(edges);
  const auto before = engine.labels();
  const auto epoch_before = engine.epoch();

  engine.publish();
  engine.publish();

  const auto after = engine.labels();
  EXPECT_EQ(engine.epoch(), epoch_before + 2);
  for (std::int64_t v = 0; v < n; ++v) ASSERT_EQ(after[v], before[v]);
  for (std::int64_t v = 0; v < n; ++v)
    ASSERT_EQ(engine.component_size(static_cast<NodeID>(v)),
              engine.component_size(before[v]));
}

}  // namespace
}  // namespace afforest
