// Property and edge-case tests for the decremental path (DynamicCC +
// WindowedStream): the delete-of-absent-edge / delete-then-reinsert /
// full-window-expiry / self-loop / duplicate-deletion behaviors
// docs/STREAMING.md promises, the deletion classification counters, and
// the typed bounds validation (VertexRangeError) shared with the rest of
// the serving tier.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "cc/common.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/uniform.hpp"
#include "serve/dynamic_cc.hpp"
#include "serve/query_batch.hpp"
#include "serve/windowed_stream.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;
using Engine = serve::DynamicCC<NodeID>;

EdgeList<NodeID> path_edges(NodeID n) {
  EdgeList<NodeID> edges;
  for (NodeID v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<NodeID>(v + 1)});
  return edges;
}

TEST(DynamicProperty, DeleteOfAbsentEdgeIsCountedNoOp) {
  Engine engine(4);
  EdgeList<NodeID> batch;
  batch.push_back({0, 1});
  engine.apply_inserts(batch);
  const auto before = engine.live_labels();

  EdgeList<NodeID> ghosts;
  ghosts.push_back({2, 3});  // never inserted
  ghosts.push_back({0, 1});  // present — deleted below...
  ghosts.push_back({0, 1});  // ...so the second copy is absent
  const auto stats = engine.apply_deletes(ghosts);
  EXPECT_EQ(stats.requested, 3u);
  EXPECT_EQ(stats.absent, 2u);
  EXPECT_EQ(stats.cut_tree_edges, 1u);

  // Absent deletions left every untouched label alone.
  const auto after = engine.live_labels();
  EXPECT_EQ(after[2], before[2]);
  EXPECT_EQ(after[3], before[3]);
  EXPECT_EQ(engine.num_edges(), 0);
}

TEST(DynamicProperty, DeleteThenReinsertRestoresConnectivity) {
  Engine engine(3);
  EdgeList<NodeID> e01;
  e01.push_back({0, 1});
  engine.apply_inserts(e01);
  engine.publish();
  const std::uint64_t epoch_connected = engine.epoch();
  EXPECT_TRUE(engine.connected(0, 1));

  engine.apply_deletes(e01);
  engine.publish();
  EXPECT_GT(engine.epoch(), epoch_connected);  // epochs advance, never reuse
  EXPECT_FALSE(engine.connected(0, 1));
  EXPECT_EQ(engine.component_count(), 3);

  engine.apply_inserts(e01);
  engine.publish();
  EXPECT_TRUE(engine.connected(0, 1));
  EXPECT_EQ(engine.component_of(1), 0);  // min-id label convention holds
  EXPECT_EQ(engine.component_size(0), 2);
}

TEST(DynamicProperty, SelfLoopDeletionIsFree) {
  Engine engine(2);
  EdgeList<NodeID> loop;
  loop.push_back({1, 1});
  auto ins = engine.apply_inserts(loop);
  EXPECT_EQ(ins.self_loops, 1u);
  EXPECT_EQ(ins.tree_edges, 0u);
  EXPECT_EQ(engine.num_edges(), 1);

  const auto stats = engine.apply_deletes(loop);
  EXPECT_EQ(stats.freed, 1u);
  EXPECT_EQ(stats.cut_tree_edges, 0u);
  EXPECT_EQ(stats.rebuild_components, 0u);
  EXPECT_EQ(engine.num_edges(), 0);
  // Deleting it again: absent.
  EXPECT_EQ(engine.apply_deletes(loop).absent, 1u);
}

TEST(DynamicProperty, DuplicateCopiesDeleteFreeUntilTheLast) {
  Engine engine(2);
  EdgeList<NodeID> batch;
  batch.push_back({0, 1});
  batch.push_back({0, 1});
  batch.push_back({1, 0});  // reverse orientation is the same edge
  const auto ins = engine.apply_inserts(batch);
  EXPECT_EQ(ins.tree_edges, 1u);
  EXPECT_EQ(ins.duplicates, 2u);
  EXPECT_EQ(engine.multiplicity(0, 1), 3u);
  EXPECT_EQ(engine.num_edges(), 1);

  EdgeList<NodeID> one;
  one.push_back({1, 0});
  auto stats = engine.apply_deletes(one);
  EXPECT_EQ(stats.freed, 1u);  // a copy survives: certified free
  EXPECT_EQ(engine.multiplicity(0, 1), 2u);
  stats = engine.apply_deletes(one);
  EXPECT_EQ(stats.freed, 1u);
  // Last copy: it is the tree edge, so now the cut happens.
  stats = engine.apply_deletes(one);
  EXPECT_EQ(stats.cut_tree_edges, 1u);
  EXPECT_EQ(stats.rebuild_components, 1u);  // the one old component {0, 1}
  EXPECT_EQ(engine.multiplicity(0, 1), 0u);
  EXPECT_FALSE(engine.live_labels()[0] == engine.live_labels()[1]);
}

TEST(DynamicProperty, NonTreeDeletionsNeverRebuild) {
  // A triangle: one edge is non-tree.  Deleting it must be free and must
  // not move any label.
  Engine engine(3);
  EdgeList<NodeID> tri;
  tri.push_back({0, 1});
  tri.push_back({1, 2});
  tri.push_back({2, 0});
  engine.apply_inserts(tri);
  EXPECT_EQ(engine.num_tree_edges(), 2);

  const auto non_tree = engine.non_tree_edges();
  ASSERT_EQ(non_tree.size(), 1u);
  const auto stats = engine.apply_deletes(non_tree);
  EXPECT_EQ(stats.freed, 1u);
  EXPECT_EQ(stats.cut_tree_edges, 0u);
  EXPECT_EQ(stats.rebuild_components, 0u);
  EXPECT_EQ(stats.rebuild_vertices, 0u);
  for (NodeID v = 0; v < 3; ++v) EXPECT_EQ(engine.live_labels()[v], 0);
}

TEST(DynamicProperty, BridgeCutSplitsExactly) {
  // Two triangles joined by a bridge; cutting the bridge splits 6 vertices
  // into the two triangles, with min-id labels 0 and 3.
  Engine engine(6);
  EdgeList<NodeID> edges;
  for (const auto [u, v] : {std::pair<NodeID, NodeID>{0, 1}, {1, 2}, {2, 0},
                            {3, 4}, {4, 5}, {5, 3}, {2, 3}}) {
    edges.push_back({u, v});
  }
  engine.apply_inserts(edges);
  EXPECT_EQ(engine.live_labels()[5], 0);

  EdgeList<NodeID> bridge;
  bridge.push_back({2, 3});
  const auto stats = engine.apply_deletes(bridge);
  EXPECT_EQ(stats.cut_tree_edges, 1u);
  EXPECT_EQ(stats.rebuild_components, 1u);  // one old component touched
  EXPECT_EQ(stats.rebuild_vertices, 6u);
  const auto labels = engine.live_labels();
  for (NodeID v = 0; v < 3; ++v) EXPECT_EQ(labels[v], 0) << v;
  for (NodeID v = 3; v < 6; ++v) EXPECT_EQ(labels[v], 3) << v;
}

TEST(DynamicProperty, FullWindowExpiryDrainsToEmptyGraph) {
  const std::int64_t n = 64;
  Engine engine(n);
  serve::WindowedStream<NodeID> stream(engine, /*window_batches=*/3);
  const auto edges = generate_uniform_edges<NodeID>(n, 4 * n, /*seed=*/77);
  const std::size_t batch_size = 32;
  for (std::size_t start = 0; start < edges.size(); start += batch_size) {
    EdgeList<NodeID> batch;
    for (std::size_t i = start; i < std::min(edges.size(), start + batch_size);
         ++i)
      batch.push_back(edges[i]);
    stream.push(std::move(batch));
    EXPECT_LE(stream.resident_batches(), 3u);
  }

  const auto drained = stream.drain();
  EXPECT_EQ(stream.resident_batches(), 0u);
  EXPECT_EQ(drained.absent, 0u);  // the ring deletes exactly what it holds
  // Nothing survives: every vertex is its own singleton component again.
  EXPECT_EQ(engine.num_edges(), 0);
  EXPECT_EQ(engine.num_tree_edges(), 0);
  EXPECT_EQ(engine.component_count(), n);
  const auto labels = engine.published_labels();
  for (std::int64_t v = 0; v < n; ++v)
    EXPECT_EQ(labels[static_cast<std::size_t>(v)], static_cast<NodeID>(v));
}

TEST(DynamicProperty, WindowMatchesOracleOverResidentBatches) {
  // Window semantics are exact: at every tick the published snapshot
  // equals a from-scratch union-find over the union of resident batches.
  const std::int64_t n = 128;
  Engine engine(n);
  const std::size_t window = 2;
  serve::WindowedStream<NodeID> stream(engine, window);
  const auto edges = generate_uniform_edges<NodeID>(n, 6 * n, /*seed=*/13);
  const std::size_t batch_size = 48;
  std::vector<EdgeList<NodeID>> resident;
  for (std::size_t start = 0; start < edges.size(); start += batch_size) {
    EdgeList<NodeID> batch;
    for (std::size_t i = start; i < std::min(edges.size(), start + batch_size);
         ++i)
      batch.push_back(edges[i]);
    resident.push_back(batch.clone());
    if (resident.size() > window) resident.erase(resident.begin());
    stream.push(std::move(batch));

    EdgeList<NodeID> window_edges;
    for (const auto& b : resident)
      for (const auto& e : b) window_edges.push_back(e);
    const auto oracle = union_find_cc(window_edges, n);
    const auto published = engine.published_labels();
    for (std::int64_t v = 0; v < n; ++v)
      ASSERT_EQ(published[static_cast<std::size_t>(v)],
                oracle[static_cast<std::size_t>(v)])
          << "tick " << start / batch_size << " vertex " << v;
  }
}

TEST(DynamicProperty, WindowOfZeroBatchesIsRejected) {
  Engine engine(4);
  EXPECT_THROW(serve::WindowedStream<NodeID>(engine, 0),
               std::invalid_argument);
}

TEST(DynamicProperty, BoundsValidationThrowsTypedError) {
  Engine engine(4);
  EdgeList<NodeID> bad;
  bad.push_back({0, 4});
  EXPECT_THROW(engine.apply_inserts(bad), VertexRangeError);
  EXPECT_THROW(engine.apply_deletes(bad), VertexRangeError);
  bad[0] = {-1, 2};
  EXPECT_THROW(engine.apply_inserts(bad), VertexRangeError);
  EXPECT_THROW((void)engine.connected(0, 4), VertexRangeError);
  EXPECT_THROW((void)engine.component_of(-1), VertexRangeError);
  EXPECT_THROW((void)engine.component_size(4), VertexRangeError);
  EXPECT_THROW((void)engine.multiplicity(4, 0), VertexRangeError);
  EXPECT_THROW((void)engine.is_tree_edge(0, 4), VertexRangeError);

  serve::QueryBatch<NodeID> batch;
  batch.add(1, 4);
  EXPECT_THROW(engine.answer(batch), VertexRangeError);

  // A rejected batch applied nothing: the graph is still empty.
  EXPECT_EQ(engine.num_edges(), 0);
  EXPECT_EQ(engine.epoch(), 1u);

  // The typed error carries the offending id and the bound, and stays
  // catchable as std::out_of_range for pre-existing callers.
  try {
    engine.apply_inserts(bad);
    FAIL() << "expected VertexRangeError";
  } catch (const VertexRangeError& e) {
    EXPECT_EQ(e.vertex(), -1);
    EXPECT_EQ(e.num_nodes(), 4);
    EXPECT_NE(std::string(e.what()).find("DynamicCC"), std::string::npos);
  }
  EXPECT_THROW(engine.apply_inserts(bad), std::out_of_range);
}

TEST(DynamicProperty, EmptyAndDegenerateBatches) {
  Engine engine(2);
  EdgeList<NodeID> none;
  const auto ins = engine.apply_inserts(none);
  EXPECT_EQ(ins.requested, 0u);
  const auto del = engine.apply_deletes(none);
  EXPECT_EQ(del.requested, 0u);
  engine.publish();
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_EQ(engine.component_count(), 2);
}

TEST(DynamicProperty, DeleteStatsSummaryMentionsEveryField) {
  serve::DeleteStats stats;
  stats.requested = 7;
  stats.absent = 1;
  stats.freed = 4;
  stats.cut_tree_edges = 2;
  stats.rebuild_components = 1;
  stats.rebuild_vertices = 5;
  const std::string s = serve::delete_stats_summary(stats);
  EXPECT_NE(s.find("requested=7"), std::string::npos);
  EXPECT_NE(s.find("absent=1"), std::string::npos);
  EXPECT_NE(s.find("freed=4"), std::string::npos);
  EXPECT_NE(s.find("cut_tree=2"), std::string::npos);
  EXPECT_NE(s.find("rebuild_components=1"), std::string::npos);
  EXPECT_NE(s.find("rebuild_vertices=5"), std::string::npos);
}

TEST(DynamicProperty, PathTeardownCutsEveryEdge) {
  // On a path every edge is a bridge: deleting them one by one must cut a
  // tree edge every time and leave prefix/suffix fragments with min-id
  // labels.
  const NodeID n = 16;
  Engine engine(n);
  engine.apply_inserts(path_edges(n));
  serve::DeleteStats total;
  for (NodeID v = 0; v + 1 < n; ++v) {
    EdgeList<NodeID> one;
    one.push_back({v, static_cast<NodeID>(v + 1)});
    total += engine.apply_deletes(one);
    // After cutting (v, v+1): [0..v] fragments are singletons already cut
    // off; the surviving suffix [v+1..n) keeps label v+1.
    const auto labels = engine.live_labels();
    for (NodeID w = static_cast<NodeID>(v + 1); w < n; ++w)
      ASSERT_EQ(labels[static_cast<std::size_t>(w)], v + 1);
  }
  EXPECT_EQ(total.cut_tree_edges, static_cast<std::uint64_t>(n - 1));
  EXPECT_EQ(total.freed, 0u);
  EXPECT_EQ(engine.component_count(), engine.num_nodes());
}

}  // namespace
}  // namespace afforest
