// Unit tests for the serving layer's QueryEngine: epoch/versioning
// semantics, snapshot staleness, batch answers, failpoint recovery, guard
// behavior, and telemetry wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "analysis/telemetry.hpp"
#include "cc/guards.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/uniform.hpp"
#include "serve/query_batch.hpp"
#include "serve/query_engine.hpp"
#include "support/scoped_env.hpp"
#include "util/failpoint.hpp"

namespace afforest {
namespace {

using ::afforest::testing::ScopedEnv;
using NodeID = std::int32_t;
using Engine = serve::QueryEngine<NodeID>;

EdgeList<NodeID> path_edges(NodeID n) {
  EdgeList<NodeID> edges;
  for (NodeID v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return edges;
}

TEST(QueryEngine, StartsAsSingletonsAtEpochOne) {
  const Engine engine(5);
  EXPECT_EQ(engine.num_nodes(), 5);
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(engine.component_count(), 5);
  for (NodeID v = 0; v < 5; ++v) {
    EXPECT_EQ(engine.component_of(v), v);
    EXPECT_EQ(engine.component_size(v), 1);
  }
  EXPECT_FALSE(engine.connected(0, 4));
  EXPECT_TRUE(engine.connected(3, 3));
}

TEST(QueryEngine, UpdatesInvisibleUntilPublish) {
  Engine engine(4);
  EdgeList<NodeID> batch;
  batch.push_back({0, 1});
  batch.push_back({2, 3});
  engine.apply_batch(batch);

  // Snapshot staleness: the published epoch still answers pre-batch state.
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_FALSE(engine.connected(0, 1));
  EXPECT_EQ(engine.component_count(), 4);

  engine.publish();
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_TRUE(engine.connected(0, 1));
  EXPECT_TRUE(engine.connected(2, 3));
  EXPECT_FALSE(engine.connected(1, 2));
  EXPECT_EQ(engine.component_count(), 2);
  EXPECT_EQ(engine.component_of(1), 0);  // min-id label convention
  EXPECT_EQ(engine.component_size(3), 2);
}

TEST(QueryEngine, EpochAdvancesOncePerPublish) {
  Engine engine(3);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.epoch(), 1 + i);
    engine.publish();
  }
  EXPECT_EQ(engine.epoch(), 5u);
}

TEST(QueryEngine, MatchesUnionFindOracleAfterStreaming) {
  const std::int64_t n = 1 << 10;
  const auto edges = generate_uniform_edges<NodeID>(n, 4 * n, /*seed=*/7);
  Engine engine(n);
  const std::size_t batch = 257;  // deliberately not a divisor of m
  for (std::size_t start = 0; start < edges.size(); start += batch)
    engine.apply_batch(edges.data() + start,
                       std::min(batch, edges.size() - start));
  engine.publish();

  const auto truth = union_find_cc(edges, n);
  const auto labels = engine.labels();
  ASSERT_EQ(labels.size(), truth.size());
  for (std::int64_t v = 0; v < n; ++v)
    EXPECT_EQ(labels[v], truth[v]) << "vertex " << v;
}

TEST(QueryEngine, BatchAnswerIsConsistentAndStamped) {
  Engine engine(6);
  engine.apply_and_publish(path_edges(3));  // {0,1,2} + singletons 3,4,5

  serve::QueryBatch<NodeID> batch;
  batch.add(0, 2);
  batch.add(1, 5);
  batch.add(4, 4);
  engine.answer(batch);

  EXPECT_EQ(batch.epoch, engine.epoch());
  ASSERT_EQ(batch.count(), 3u);
  EXPECT_TRUE(batch.connected[0]);
  EXPECT_FALSE(batch.connected[1]);
  EXPECT_TRUE(batch.connected[2]);
  EXPECT_EQ(batch.component[0], 0);
  EXPECT_EQ(batch.component[1], 0);  // component of u=1
  EXPECT_EQ(batch.component[2], 4);
  EXPECT_EQ(batch.component_size[0], 3);
  EXPECT_EQ(batch.component_size[1], 3);
  EXPECT_EQ(batch.component_size[2], 1);

  // Re-answering the same batch after more publishes observes progress.
  EdgeList<NodeID> more;
  more.push_back({2, 5});
  engine.apply_and_publish(more);
  engine.answer(batch);
  EXPECT_EQ(batch.epoch, 3u);
  EXPECT_TRUE(batch.connected[1]);
  EXPECT_EQ(batch.component_size[1], 4);
}

TEST(QueryEngine, ValidatesVertexIds) {
  Engine engine(4);
  EXPECT_THROW((void)engine.connected(0, 4), std::out_of_range);
  EXPECT_THROW((void)engine.component_of(-1), std::out_of_range);
  EXPECT_THROW((void)engine.component_size(99), std::out_of_range);

  EdgeList<NodeID> bad;
  bad.push_back({0, 17});
  EXPECT_THROW(engine.apply_batch(bad), std::out_of_range);
  // The failed batch must not have applied anything.
  engine.publish();
  EXPECT_EQ(engine.component_count(), 4);

  serve::QueryBatch<NodeID> qbad;
  qbad.add(1, 42);
  EXPECT_THROW(engine.answer(qbad), std::out_of_range);
}

TEST(QueryEngine, BoundsErrorsAreTyped) {
  // Regression for the silent-acceptance bug: all entry points now throw
  // the typed VertexRangeError (derived from std::out_of_range, so the
  // assertions above keep passing) carrying the offending id and bound.
  Engine engine(4);
  EXPECT_THROW((void)engine.connected(0, 4), VertexRangeError);
  EXPECT_THROW((void)engine.component_of(-1), VertexRangeError);
  EdgeList<NodeID> bad;
  bad.push_back({2, -5});
  try {
    engine.apply_batch(bad);
    FAIL() << "expected VertexRangeError";
  } catch (const VertexRangeError& e) {
    EXPECT_EQ(e.vertex(), -5);
    EXPECT_EQ(e.num_nodes(), 4);
    EXPECT_NE(std::string(e.what()).find("QueryEngine"), std::string::npos);
  }
}

TEST(QueryEngine, ViewPinsAnImmutableSnapshot) {
  Engine engine(4);
  const auto view = engine.acquire();  // pins epoch 1
  EXPECT_EQ(view.epoch(), 1u);

  engine.apply_and_publish(path_edges(4));
  // The pinned view still answers the old world; fresh queries the new.
  EXPECT_FALSE(view.connected(0, 3));
  EXPECT_EQ(view.component_size(0), 1);
  EXPECT_TRUE(engine.connected(0, 3));
}

TEST(QueryEngine, LeakedViewSurfacesAsConvergenceError) {
  // A View held across TWO publishes blocks the writer's grace period on
  // the buffer it pinned; the drain guard must turn that into a typed
  // error instead of a livelock.  The ceiling is lowered via env so the
  // test completes in milliseconds.
  const ScopedEnv ceiling("AFFOREST_SERVE_SPIN_CEILING", "100");
  Engine engine(4);
  const auto view = engine.acquire();  // pins buffer A (epoch 1)
  engine.publish();                    // writes buffer B -> epoch 2
  EXPECT_THROW(engine.publish(), ConvergenceError);  // needs buffer A back
}

TEST(QueryEngine, FailpointsLeaveEngineServiceable) {
  Engine engine(4);
  engine.apply_batch(path_edges(4));

  for (const char* spec : {"serve.compact=1", "serve.swap=1"}) {
    const ScopedEnv env("AFFOREST_FAILPOINTS", spec);
    failpoints_reload();
    EXPECT_THROW(engine.publish(), FailpointError) << spec;
    // Still serving the pre-failure epoch, and not wedged: queries work
    // and the writer lock was released by the unwinding publish.
    EXPECT_EQ(engine.epoch(), 1u) << spec;
    EXPECT_FALSE(engine.connected(0, 3)) << spec;
  }
  const ScopedEnv env("AFFOREST_FAILPOINTS", nullptr);
  failpoints_reload();

  engine.publish();  // recovers: the applied batch finally becomes visible
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_TRUE(engine.connected(0, 3));
}

TEST(QueryEngine, TelemetryCountsServingEvents) {
  const telemetry::ScopedEnable scoped(/*fresh=*/true);
  Engine engine(8);
  engine.apply_and_publish(path_edges(8));  // 7 edges, 1 swap
  (void)engine.connected(0, 7);             // 1 query
  serve::QueryBatch<NodeID> batch;
  batch.add(1, 2);
  batch.add(3, 4);
  engine.answer(batch);  // 2 queries
  engine.publish();      // second swap

  const auto report = telemetry::capture();
  EXPECT_EQ(report.counters.serve_edges_ingested, 7u);
  EXPECT_EQ(report.counters.serve_snapshot_swaps, 2u);
  EXPECT_EQ(report.counters.serve_queries_served, 3u);
  bool saw_compact_phase = false;
  for (const auto& phase : report.phases)
    if (phase.name == "serve.compact") {
      saw_compact_phase = true;
      EXPECT_EQ(phase.count, 2u);
    }
  EXPECT_TRUE(saw_compact_phase);
}

TEST(QueryEngine, DegenerateBatchSizes) {
  Engine engine(4);
  serve::QueryBatch<NodeID> empty;
  engine.answer(empty);  // must not throw, stamps the epoch
  EXPECT_EQ(empty.epoch, 1u);
  EXPECT_EQ(empty.count(), 0u);

  EdgeList<NodeID> none;
  engine.apply_batch(none);
  engine.publish();
  EXPECT_EQ(engine.epoch(), 2u);
}

}  // namespace
}  // namespace afforest
