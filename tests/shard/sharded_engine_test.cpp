// Unit tests for the sharded serving tier: routing, epoch/staleness
// semantics, quotient composition, label-width and vertex-id guards,
// failpoint recovery, router/partition agreement, and telemetry wiring.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "analysis/telemetry.hpp"
#include "cc/common.hpp"
#include "dist/partitioned_cc.hpp"
#include "serve/query_batch.hpp"
#include "shard/sharded_engine.hpp"
#include "support/scoped_env.hpp"
#include "util/failpoint.hpp"

namespace afforest {
namespace {

using ::afforest::testing::ScopedEnv;
using NodeID = std::int32_t;
using Engine = shard::ShardedEngine<NodeID>;

EdgeList<NodeID> path_edges(NodeID n) {
  EdgeList<NodeID> edges;
  for (NodeID v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return edges;
}

TEST(ShardedEngine, StartsAsSingletonsAtEpochOne) {
  const Engine engine(10, 4);
  EXPECT_EQ(engine.num_nodes(), 10);
  EXPECT_EQ(engine.num_shards(), 4);
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(engine.component_count(), 10);
  for (NodeID v = 0; v < 10; ++v) {
    EXPECT_EQ(engine.component_of(v), v);
    EXPECT_EQ(engine.component_size(v), 1);
  }
  EXPECT_FALSE(engine.connected(0, 9));
}

TEST(ShardedEngine, InvalidShardCountThrows) {
  EXPECT_THROW(Engine(4, 0), std::invalid_argument);
  EXPECT_THROW(Engine(4, -3), std::invalid_argument);
}

TEST(ShardedEngine, NarrowLabelTypeThrowsTypedOverflow) {
  // int16 labels cap at 32767 ids; 40000 vertices must be rejected with
  // the same typed guard partitioned_cc uses, not truncated.
  using Narrow = shard::ShardedEngine<std::int16_t>;
  try {
    const Narrow engine(40000, 2);
    FAIL() << "expected LabelWidthError";
  } catch (const LabelWidthError& e) {
    EXPECT_EQ(e.num_nodes(), 40000);
    EXPECT_EQ(e.max_label(), 32767);
  }
  // The widest representable shape is fine.
  const Narrow ok(32768, 2);
  EXPECT_EQ(ok.component_count(), 32768);
}

TEST(ShardedEngine, RouterAgreesWithPartitionOfEverywhere) {
  // The shard router IS partition_of — pin the agreement across a
  // non-divisible n/P split, including both edges of every block.
  const std::int64_t n = 23;
  const int parts = 7;
  const Engine engine(n, parts);
  for (NodeID v = 0; v < n; ++v)
    EXPECT_EQ(engine.shard_of(v), partition_of(v, n, parts)) << "v=" << v;
  for (int p = 0; p < parts; ++p) {
    const std::int64_t first = engine.shard_start(p);
    const std::int64_t last = engine.shard_start(p + 1) - 1;
    EXPECT_EQ(engine.shard_of(static_cast<NodeID>(first)), p);
    EXPECT_EQ(engine.shard_of(static_cast<NodeID>(last)), p);
  }
  EXPECT_EQ(engine.shard_start(0), 0);
  EXPECT_EQ(engine.shard_start(parts), n);
}

TEST(ShardedEngine, AppliedEdgesInvisibleUntilPublish) {
  Engine engine(8, 2);
  engine.apply_batch(path_edges(8));
  // Stale, never torn: still epoch 1, all singletons.
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_FALSE(engine.connected(0, 7));
  EXPECT_EQ(engine.component_count(), 8);
  engine.publish();
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_TRUE(engine.connected(0, 7));
  EXPECT_EQ(engine.component_count(), 1);
  EXPECT_EQ(engine.component_size(5), 8);
  EXPECT_EQ(engine.component_of(7), 0);  // min-id label convention
}

TEST(ShardedEngine, CrossShardComponentComposesThroughQuotient) {
  // 3 shards over 9 vertices; boundary edges bridge the blocks and an
  // internal shard-1 edge chains them into one component {2, 3, 5, 6}.
  Engine engine(9, 3);
  EdgeList<NodeID> edges;
  edges.push_back({2, 3});  // shard 0 -> 1
  edges.push_back({3, 5});  // internal to shard 1
  edges.push_back({5, 6});  // shard 1 -> 2
  engine.apply_and_publish(edges);
  EXPECT_TRUE(engine.connected(2, 6));
  EXPECT_EQ(engine.component_of(6), 2);
  EXPECT_EQ(engine.component_size(3), 4);  // {2, 3, 5, 6}
  EXPECT_FALSE(engine.connected(0, 2));
  EXPECT_EQ(engine.component_count(), 6);
}

TEST(ShardedEngine, MoreShardsThanVertices) {
  Engine engine(3, 50);  // most shards own zero vertices
  engine.apply_and_publish(path_edges(3));
  EXPECT_TRUE(engine.connected(0, 2));
  EXPECT_EQ(engine.component_count(), 1);
}

TEST(ShardedEngine, SelfLoopsAndDuplicateEdgesAreHarmless) {
  Engine engine(6, 2);
  EdgeList<NodeID> edges;
  edges.push_back({1, 1});
  edges.push_back({2, 4});  // cross-shard, duplicated both ways
  edges.push_back({4, 2});
  edges.push_back({2, 4});
  engine.apply_and_publish(edges);
  EXPECT_TRUE(engine.connected(2, 4));
  EXPECT_EQ(engine.component_size(1), 1);
  EXPECT_EQ(engine.component_count(), 5);
}

TEST(ShardedEngine, VertexRangeValidation) {
  Engine engine(8, 3);
  EXPECT_THROW((void)engine.connected(0, 8), VertexRangeError);
  EXPECT_THROW((void)engine.component_of(-1), VertexRangeError);
  EXPECT_THROW((void)engine.component_size(99), VertexRangeError);
  EdgeList<NodeID> bad;
  bad.push_back({0, 8});
  EXPECT_THROW(engine.apply_batch(bad), VertexRangeError);
  serve::QueryBatch<NodeID> batch;
  batch.add(0, 8);
  EXPECT_THROW(engine.answer(batch), VertexRangeError);
}

TEST(ShardedEngine, BatchAnswersStampOneEpoch) {
  Engine engine(10, 4);
  engine.apply_and_publish(path_edges(5));
  serve::QueryBatch<NodeID> batch;
  batch.add(0, 4);
  batch.add(9, 4);
  batch.add(7, 7);
  engine.answer(batch);
  EXPECT_EQ(batch.epoch, 2u);
  EXPECT_TRUE(batch.connected[0]);
  EXPECT_FALSE(batch.connected[1]);
  EXPECT_TRUE(batch.connected[2]);
  EXPECT_EQ(batch.component[0], 0);
  EXPECT_EQ(batch.component[1], 9);
  EXPECT_EQ(batch.component_size[0], 5);
  EXPECT_EQ(batch.component_size[1], 1);
}

TEST(ShardedEngine, ShardEpochsNeverMixedInOneAtom) {
  Engine engine(16, 4);
  for (int round = 0; round < 3; ++round) {
    engine.apply_and_publish(path_edges(16));
    const auto ref = engine.acquire();
    const auto epochs = Engine::shard_epochs(ref);
    ASSERT_EQ(epochs.size(), 4u);
    for (const std::uint64_t e : epochs) EXPECT_EQ(e, epochs.front());
    EXPECT_EQ(ref.epoch(), static_cast<std::uint64_t>(round) + 2);
  }
}

TEST(ShardedEngine, FailpointLeavesEngineServiceable) {
  Engine engine(8, 2);
  engine.apply_batch(path_edges(8));
  {
    const ScopedEnv env("AFFOREST_FAILPOINTS", "shard.swap=1");
    failpoints_reload();
    EXPECT_THROW(engine.publish(), FailpointError);
    // Still serving the pre-failure epoch, not wedged.
    EXPECT_EQ(engine.epoch(), 1u);
    EXPECT_FALSE(engine.connected(0, 7));
  }
  const ScopedEnv env("AFFOREST_FAILPOINTS", nullptr);
  failpoints_reload();
  engine.publish();  // recovers; the batch finally becomes visible
  EXPECT_TRUE(engine.connected(0, 7));
}

TEST(ShardedEngine, LabelsMatchMinIdConvention) {
  Engine engine(12, 4);
  EdgeList<NodeID> edges;
  edges.push_back({11, 7});
  edges.push_back({7, 3});
  engine.apply_and_publish(edges);
  const auto labels = engine.labels();
  EXPECT_EQ(labels[11], 3);
  EXPECT_EQ(labels[7], 3);
  EXPECT_EQ(labels[3], 3);
  EXPECT_EQ(labels[0], 0);
}

TEST(ShardedEngine, TelemetryCountsShardEvents) {
  const telemetry::ScopedEnable scoped(/*fresh=*/true);
  Engine engine(10, 2);  // ctor publish: 1 epoch publish, no messages
  EdgeList<NodeID> edges;
  edges.push_back({0, 1});  // internal to shard 0
  edges.push_back({4, 5});  // boundary (blocks are [0,5) and [5,10))
  edges.push_back({3, 7});  // boundary
  engine.apply_and_publish(edges);
  const auto counters = telemetry::snapshot();
  EXPECT_EQ(counters.shard_boundary_msgs, 2u);
  // {4,5} and {3,7} merge distinct root pairs: 0-component {0,1} is not
  // involved, roots are (4,5) and (3,7) -> 2 deduped quotient edges.
  EXPECT_EQ(counters.shard_quotient_edges, 2u);
  EXPECT_EQ(counters.shard_epoch_publishes, 2u);  // ctor + publish
  EXPECT_EQ(counters.serve_edges_ingested, 3u);
}

TEST(ShardedEngine, BoundaryLogCompactsAcrossPublishes) {
  // After a publish, re-publishing without new edges must keep answers
  // stable (the compacted root-pair log re-derives the same quotient).
  Engine engine(10, 5);
  EdgeList<NodeID> edges;
  for (NodeID v = 0; v + 2 < 10; v += 2)
    edges.push_back({v, static_cast<NodeID>(v + 2)});  // all cross-shard
  engine.apply_and_publish(edges);
  EXPECT_TRUE(engine.connected(0, 8));
  const auto before = engine.labels();
  engine.publish();
  engine.publish();
  const auto after = engine.labels();
  for (std::size_t v = 0; v < before.size(); ++v)
    EXPECT_EQ(before[v], after[v]) << v;
  EXPECT_TRUE(engine.connected(0, 8));
  // New edges keep composing with the compacted log.
  EdgeList<NodeID> more;
  more.push_back({1, 3});
  engine.apply_and_publish(more);
  EXPECT_TRUE(engine.connected(1, 3));
  EXPECT_TRUE(engine.connected(0, 8));
}

TEST(ShardedEngine, ZeroNodesDegenerate) {
  Engine engine(0, 3);
  EXPECT_EQ(engine.component_count(), 0);
  EXPECT_EQ(engine.epoch(), 1u);
  engine.publish();
  EXPECT_EQ(engine.epoch(), 2u);
}

}  // namespace
}  // namespace afforest
