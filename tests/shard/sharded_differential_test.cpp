// Differential suite for the sharded tier: after EVERY published batch,
// a ShardedEngine must answer EXACTLY like a single-shard QueryEngine
// oracle fed the same edge stream — identical labels (both sides use the
// min-vertex-id convention), identical component counts/sizes, identical
// batch answers — across the fuzz generator families, multiple seeds, and
// shard counts {1, 2, 4, 7}.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_common.hpp"
#include "serve/query_batch.hpp"
#include "serve/query_engine.hpp"
#include "shard/sharded_engine.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

constexpr int kShardCounts[] = {1, 2, 4, 7};
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

/// Streams `in`'s edges through both engines in `batches` slices,
/// publishing and cross-checking after every slice.
void run_differential(const fuzz::FuzzInput& in, int num_shards,
                      int batches) {
  SCOPED_TRACE("family=" + in.family + " seed=" + std::to_string(in.seed) +
               " shards=" + std::to_string(num_shards));
  shard::ShardedEngine<NodeID> sharded(in.num_nodes, num_shards);
  serve::QueryEngine<NodeID> oracle(in.num_nodes);
  Xoshiro256 rng(in.seed ^ 0xD1FFE6E471A1ULL);

  const std::size_t total = in.edges.size();
  const std::size_t chunk = total / static_cast<std::size_t>(batches) + 1;
  for (std::size_t start = 0; start < total || start == 0; start += chunk) {
    const std::size_t count = std::min(chunk, total - start);
    sharded.apply_batch(in.edges.data() + start, count);
    oracle.apply_batch(in.edges.data() + start, count);
    sharded.publish();
    oracle.publish();

    // Exact global labels, not just partition equivalence.
    const auto got = sharded.labels();
    const auto want = oracle.labels();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t v = 0; v < got.size(); ++v)
      ASSERT_EQ(got[v], want[v]) << "vertex " << v;

    ASSERT_EQ(sharded.component_count(), oracle.component_count());

    // A random query batch answered by both engines.
    if (in.num_nodes > 0) {
      serve::QueryBatch<NodeID> qs, qo;
      const auto nn = static_cast<std::uint64_t>(in.num_nodes);
      for (int q = 0; q < 64; ++q) {
        const auto u = static_cast<NodeID>(rng.next_bounded(nn));
        const auto v = static_cast<NodeID>(rng.next_bounded(nn));
        qs.add(u, v);
        qo.add(u, v);
      }
      sharded.answer(qs);
      oracle.answer(qo);
      for (std::size_t q = 0; q < qs.count(); ++q) {
        ASSERT_EQ(qs.connected[q], qo.connected[q]) << "query " << q;
        ASSERT_EQ(qs.component[q], qo.component[q]) << "query " << q;
        ASSERT_EQ(qs.component_size[q], qo.component_size[q])
            << "query " << q;
      }
    }
    if (total == 0) break;
  }
}

class ShardDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ShardDifferential, MatchesSingleShardOracleOnFuzzCorpus) {
  const int num_shards = GetParam();
  const int scale = 7;
  for (const std::string& family : fuzz::fuzz_families())
    for (const std::uint64_t seed : kSeeds)
      run_differential(fuzz::make_fuzz_input(family, scale, seed),
                       num_shards, /*batches=*/4);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardDifferential,
                         ::testing::ValuesIn(kShardCounts));

TEST(ShardDifferential, DeeperSingleFamilySmoke) {
  // One larger input per shard count so block boundaries land mid-component.
  for (const int num_shards : kShardCounts)
    run_differential(fuzz::make_fuzz_input("urand", 10, 42), num_shards,
                     /*batches=*/6);
}

TEST(ShardDifferential, Int64InstantiationMatchesOracle) {
  // The label-width fix's payoff: the same differential harness through
  // 64-bit labels.
  const auto in = fuzz::make_fuzz_input("kron", 8, 7);
  shard::ShardedEngine<std::int64_t> sharded(in.num_nodes, 4);
  serve::QueryEngine<std::int64_t> oracle(in.num_nodes);
  EdgeList<std::int64_t> wide;
  wide.reserve(in.edges.size());
  for (const auto& [u, v] : in.edges) wide.push_back({u, v});
  sharded.apply_and_publish(wide);
  oracle.apply_and_publish(wide);
  const auto got = sharded.labels();
  const auto want = oracle.labels();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v)
    ASSERT_EQ(got[v], want[v]) << "vertex " << v;
  EXPECT_EQ(sharded.component_count(), oracle.component_count());
}

}  // namespace
}  // namespace afforest
