// Cross-shard consistency under a concurrent writer (std::thread drivers
// so the TSan preset observes real histories):
//
//   * readers can NEVER observe mixed epochs — every shard snapshot inside
//     one acquired atom carries the same epoch;
//   * epochs are monotone per reader;
//   * every answered batch matches the ground-truth labels of exactly the
//     epoch it was stamped with (published-prefix snapshot semantics);
//   * connectivity is monotone across epochs (edges are only added).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cc/union_find.hpp"
#include "graph/generators/uniform.hpp"
#include "serve/query_batch.hpp"
#include "shard/sharded_engine.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;
using Engine = shard::ShardedEngine<NodeID>;

class ShardLinearizability : public ::testing::TestWithParam<int> {};

TEST_P(ShardLinearizability, ReadersNeverObserveMixedEpochs) {
  const int num_shards = GetParam();
  const std::int64_t n = 1 << 10;
  const int kBatches = 24;
  const std::size_t kBatchEdges = 256;

  const auto all_edges =
      generate_uniform_edges<NodeID>(n, kBatches * kBatchEdges, 1234);
  Engine engine(n, num_shards);

  // ground_truth[e] = expected labels at epoch e.  Slot e is written by the
  // writer BEFORE the publish that stamps epoch e; the atom's release-store
  // publishes the slot to any reader that observes epoch e.
  std::vector<ComponentLabels<NodeID>> ground_truth(
      static_cast<std::size_t>(kBatches) + 2);
  ground_truth[1] = union_find_cc(EdgeList<NodeID>{}, n);

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    EdgeList<NodeID> prefix;
    for (int b = 0; b < kBatches; ++b) {
      EdgeList<NodeID> batch;
      for (std::size_t i = 0; i < kBatchEdges; ++i) {
        const auto& e = all_edges[b * kBatchEdges + i];
        batch.push_back(e);
        prefix.push_back(e);
      }
      ground_truth[static_cast<std::size_t>(b) + 2] =
          union_find_cc(prefix, n);
      engine.apply_batch(batch);
      engine.publish();  // stamps epoch b + 2
    }
    done.store(true, std::memory_order_release);
  });

  const auto reader = [&](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::uint64_t last_epoch = 0;
    std::vector<std::pair<NodeID, NodeID>> seen_connected;
    while (!done.load(std::memory_order_acquire)) {
      // Probe 1: the mixed-epoch criterion, straight off the atom.
      {
        const auto ref = engine.acquire();
        const auto epochs = Engine::shard_epochs(ref);
        for (const std::uint64_t e : epochs)
          if (e != epochs.front()) violations.fetch_add(1);
        if (ref.epoch() < last_epoch) violations.fetch_add(1);
        last_epoch = ref.epoch();
      }
      // Probe 2: batch answers match the stamped epoch's ground truth.
      serve::QueryBatch<NodeID> batch;
      for (int q = 0; q < 32; ++q)
        batch.add(static_cast<NodeID>(
                      rng.next_bounded(static_cast<std::uint64_t>(n))),
                  static_cast<NodeID>(
                      rng.next_bounded(static_cast<std::uint64_t>(n))));
      engine.answer(batch);
      if (batch.epoch < last_epoch) violations.fetch_add(1);
      last_epoch = batch.epoch;
      const auto& truth = ground_truth[batch.epoch];
      for (std::size_t q = 0; q < batch.count(); ++q) {
        const bool want = truth[batch.u[q]] == truth[batch.v[q]];
        if (static_cast<bool>(batch.connected[q]) != want)
          violations.fetch_add(1);
        if (batch.component[q] != truth[batch.u[q]]) violations.fetch_add(1);
        if (batch.connected[q])
          seen_connected.push_back({batch.u[q], batch.v[q]});
      }
      // Probe 3: monotone connectivity — anything once connected stays so.
      if (!seen_connected.empty()) {
        const auto& uv =
            seen_connected[rng.next_bounded(seen_connected.size())];
        if (!engine.connected(uv.first, uv.second)) violations.fetch_add(1);
      }
    }
  };

  std::thread r1(reader, 7);
  std::thread r2(reader, 99);
  writer.join();
  r1.join();
  r2.join();

  EXPECT_EQ(violations.load(), 0);

  // Final state agrees with the serial oracle exactly.
  const auto labels = engine.labels();
  const auto& truth = ground_truth[static_cast<std::size_t>(kBatches) + 1];
  for (std::int64_t v = 0; v < n; ++v)
    ASSERT_EQ(labels[static_cast<std::size_t>(v)],
              truth[static_cast<std::size_t>(v)])
        << v;
  EXPECT_EQ(engine.epoch(), static_cast<std::uint64_t>(kBatches) + 1);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardLinearizability,
                         ::testing::Values(1, 2, 4, 7));

}  // namespace
}  // namespace afforest
