// Watts–Strogatz small-world and random geometric generators.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "cc/component_stats.hpp"
#include "cc/union_find.hpp"
#include "graph/builder.hpp"
#include "graph/generators/geometric.hpp"
#include "graph/generators/smallworld.hpp"
#include "graph/generators/suite.hpp"
#include "graph/stats.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

// ------------------------------------------------------------ small world

TEST(SmallWorld, InvalidParametersThrow) {
  EXPECT_THROW(generate_small_world_edges<NodeID>(10, 0, 0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(generate_small_world_edges<NodeID>(10, 10, 0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(generate_small_world_edges<NodeID>(10, 2, -0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(generate_small_world_edges<NodeID>(10, 2, 1.1, 1),
               std::invalid_argument);
}

TEST(SmallWorld, BetaZeroIsRingLattice) {
  const auto edges = generate_small_world_edges<NodeID>(12, 2, 0.0, 1);
  EXPECT_EQ(edges.size(), 24u);
  const Graph g = build_undirected(edges, 12);
  for (NodeID v = 0; v < 12; ++v) EXPECT_EQ(g.out_degree(v), 4);
  // Ring is connected with diameter ~ n/(2k).
  EXPECT_EQ(count_components(union_find_cc(g)), 1);
  EXPECT_EQ(approximate_diameter(g), 3);
}

TEST(SmallWorld, RewiringShrinksDiameter) {
  const std::int64_t n = 2048;
  const Graph ring = build_undirected(
      generate_small_world_edges<NodeID>(n, 3, 0.0, 2), n);
  const Graph rewired = build_undirected(
      generate_small_world_edges<NodeID>(n, 3, 0.2, 2), n);
  EXPECT_LT(approximate_diameter(rewired), approximate_diameter(ring) / 4);
}

TEST(SmallWorld, Deterministic) {
  const auto a = generate_small_world_edges<NodeID>(100, 3, 0.3, 7);
  const auto b = generate_small_world_edges<NodeID>(100, 3, 0.3, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_TRUE(a[i] == b[i]);
}

TEST(SmallWorld, NoSelfLoopsEmitted) {
  for (const auto& [u, v] :
       generate_small_world_edges<NodeID>(64, 2, 1.0, 9))
    ASSERT_NE(u, v);
}

// -------------------------------------------------------------- geometric

TEST(Geometric, InvalidRadiusThrows) {
  EXPECT_THROW(generate_geometric_edges<NodeID>(10, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW(generate_geometric_edges<NodeID>(10, 1.5, 1),
               std::invalid_argument);
}

TEST(Geometric, Deterministic) {
  const auto a = generate_geometric_edges<NodeID>(500, 0.05, 3);
  const auto b = generate_geometric_edges<NodeID>(500, 0.05, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_TRUE(a[i] == b[i]);
}

TEST(Geometric, ExpectedDegreeTracksRadius) {
  // E[deg] ≈ n·pi·r^2 in the unit square (minus boundary effects).
  const std::int64_t n = 4000;
  const double r = 0.03;
  const Graph g =
      build_undirected(generate_geometric_edges<NodeID>(n, r, 5), n);
  const double expected = static_cast<double>(n) * 3.14159265 * r * r;
  EXPECT_NEAR(compute_degree_stats(g).average_degree, expected,
              expected * 0.3);
}

TEST(Geometric, MatchesBruteForceOnSmallInput) {
  // The grid-bucket construction must find exactly the pairs within r.
  const std::int64_t n = 120;
  const double r = 0.2;
  const auto edges = generate_geometric_edges<NodeID>(n, r, 8);
  // Count via O(n^2) reference using the same point stream.
  Xoshiro256 rng(8);
  std::vector<double> xs(n), ys(n);
  for (std::int64_t v = 0; v < n; ++v) {
    xs[v] = rng.next_double();
    ys[v] = rng.next_double();
  }
  std::int64_t expected = 0;
  for (std::int64_t a = 0; a < n; ++a)
    for (std::int64_t b = a + 1; b < n; ++b) {
      const double dx = xs[a] - xs[b], dy = ys[a] - ys[b];
      if (dx * dx + dy * dy <= r * r) ++expected;
    }
  EXPECT_EQ(static_cast<std::int64_t>(edges.size()), expected);
}

TEST(Geometric, SupercriticalRadiusConnects) {
  // r well above the connectivity threshold sqrt(ln n / (pi n)).
  const std::int64_t n = 2000;
  const double r = 3.0 * std::sqrt(std::log(static_cast<double>(n)) /
                                   (3.14159265 * static_cast<double>(n)));
  const Graph g =
      build_undirected(generate_geometric_edges<NodeID>(n, r, 4), n);
  EXPECT_GT(summarize_components(union_find_cc(g)).largest_fraction, 0.99);
}

TEST(Geometric, SubcriticalRadiusFragments) {
  const std::int64_t n = 2000;
  const Graph g =
      build_undirected(generate_geometric_edges<NodeID>(n, 0.005, 4), n);
  EXPECT_GT(summarize_components(union_find_cc(g)).num_components, 100);
}

// ------------------------------------------------- extended suite names

TEST(ExtendedSuite, NamedFamiliesBuildAndAreConnectedEnough) {
  for (const auto* name : {"smallworld", "rgg", "regular"}) {
    const Graph g = make_suite_graph(name, 10);
    EXPECT_GT(g.num_edges(), 0) << name;
    EXPECT_GT(summarize_components(union_find_cc(g)).largest_fraction, 0.5)
        << name;
  }
}

TEST(ExtendedSuite, NotListedInTableIII) {
  EXPECT_FALSE(is_suite_graph("smallworld"));
  EXPECT_FALSE(is_suite_graph("rgg"));
  EXPECT_FALSE(is_suite_graph("regular"));
}

}  // namespace
}  // namespace afforest
