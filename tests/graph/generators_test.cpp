#include <gtest/gtest.h>

#include <stdexcept>

#include "cc/component_stats.hpp"
#include "cc/union_find.hpp"
#include "graph/builder.hpp"
#include "graph/generators/component_mix.hpp"
#include "graph/generators/kronecker.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/suite.hpp"
#include "graph/generators/uniform.hpp"
#include "graph/generators/webgraph.hpp"
#include "graph/stats.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

// ---------------------------------------------------------------- uniform

TEST(UniformGenerator, ProducesRequestedEdgeCount) {
  const auto edges = generate_uniform_edges<NodeID>(1000, 5000, 1);
  EXPECT_EQ(edges.size(), 5000u);
}

TEST(UniformGenerator, VerticesInRange) {
  const auto edges = generate_uniform_edges<NodeID>(100, 2000, 2);
  for (const auto& [u, v] : edges) {
    ASSERT_GE(u, 0);
    ASSERT_LT(u, 100);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
  }
}

TEST(UniformGenerator, DeterministicForSeed) {
  const auto a = generate_uniform_edges<NodeID>(100, 500, 7);
  const auto b = generate_uniform_edges<NodeID>(100, 500, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(UniformGenerator, DifferentSeedsDiffer) {
  const auto a = generate_uniform_edges<NodeID>(1000, 500, 1);
  const auto b = generate_uniform_edges<NodeID>(1000, 500, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(UniformGenerator, DenseGraphIsOneGiantComponent) {
  // avg degree 16 >> ln(n): connected w.h.p.
  const Graph g =
      build_undirected(generate_uniform_edges<NodeID>(1 << 10, 8 << 10, 3),
                       1 << 10);
  const auto s = summarize_components(union_find_cc(g));
  EXPECT_GT(s.largest_fraction, 0.99);
}

// --------------------------------------------------------------- kronecker

TEST(KroneckerGenerator, EdgeAndVertexCounts) {
  const auto edges = generate_kronecker_edges<NodeID>(10, 16, 1);
  EXPECT_EQ(edges.size(), static_cast<std::size_t>(16 << 10));
  for (const auto& [u, v] : edges) {
    ASSERT_GE(u, 0);
    ASSERT_LT(u, 1 << 10);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1 << 10);
  }
}

TEST(KroneckerGenerator, Deterministic) {
  const auto a = generate_kronecker_edges<NodeID>(8, 8, 5);
  const auto b = generate_kronecker_edges<NodeID>(8, 8, 5);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_TRUE(a[i] == b[i]);
}

TEST(KroneckerGenerator, DegreeDistributionIsSkewed) {
  const Graph g = build_undirected(
      generate_kronecker_edges<NodeID>(12, 16, 1), 1 << 12);
  const auto s = compute_degree_stats(g);
  // Power-law-like: max degree far above average, and isolated vertices
  // exist (both are signature Kronecker properties).
  EXPECT_GT(static_cast<double>(s.max_degree), 10 * s.average_degree);
  EXPECT_GT(s.num_isolated, 0);
}

// -------------------------------------------------------------------- road

TEST(RoadGenerator, FullLatticeEdgeCount) {
  // width*height lattice with keep_prob=1: (w-1)*h + w*(h-1) edges.
  const auto edges = generate_road_edges<NodeID>(10, 10, 1, {1.0, 0.0});
  EXPECT_EQ(edges.size(), 180u);
}

TEST(RoadGenerator, LowAverageDegree) {
  const Graph g =
      build_undirected(generate_road_edges<NodeID>(50, 50, 2), 2500);
  EXPECT_LT(compute_degree_stats(g).average_degree, 5.0);
}

TEST(RoadGenerator, Deterministic) {
  const auto a = generate_road_edges<NodeID>(20, 20, 9);
  const auto b = generate_road_edges<NodeID>(20, 20, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_TRUE(a[i] == b[i]);
}

TEST(RoadGenerator, SubcriticalLatticeFragments) {
  // keep_prob well below the 2D bond-percolation threshold (0.5) must
  // produce many components.
  const Graph g = build_undirected(
      generate_road_edges<NodeID>(64, 64, 3, {0.4, 0.0}), 64 * 64);
  EXPECT_GT(summarize_components(union_find_cc(g)).num_components, 100);
}

// --------------------------------------------------------------------- web

TEST(WebGenerator, Deterministic) {
  const auto a = generate_web_edges<NodeID>(2000, 11);
  const auto b = generate_web_edges<NodeID>(2000, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_TRUE(a[i] == b[i]);
}

TEST(WebGenerator, TargetsPrecedeSources) {
  // The copying model only links to earlier pages.
  const auto edges = generate_web_edges<NodeID>(500, 1);
  for (const auto& [u, v] : edges) ASSERT_LT(v, u);
}

TEST(WebGenerator, SkewAndGiantComponent) {
  const Graph g =
      build_undirected(generate_web_edges<NodeID>(1 << 12, 1), 1 << 12);
  const auto deg = compute_degree_stats(g);
  EXPECT_GT(static_cast<double>(deg.max_degree), 5 * deg.average_degree);
  const auto s = summarize_components(union_find_cc(g));
  EXPECT_GT(s.largest_fraction, 0.9);
}

// ----------------------------------------------------------- component mix

TEST(ComponentMix, FractionOneIsSingleComponent) {
  const Graph g = build_undirected(
      generate_component_mix_edges<NodeID>(1 << 10, 8.0, 1.0, 1), 1 << 10);
  EXPECT_EQ(summarize_components(union_find_cc(g)).num_components, 1);
}

TEST(ComponentMix, SmallFractionYieldsManyEqualComponents) {
  const double f = 1.0 / 64.0;
  const Graph g = build_undirected(
      generate_component_mix_edges<NodeID>(1 << 12, 8.0, f, 1), 1 << 12);
  const auto s = summarize_components(union_find_cc(g));
  EXPECT_EQ(s.num_components, 64);
  EXPECT_EQ(s.largest_size, (1 << 12) / 64);
}

TEST(ComponentMix, AverageDegreeApproximatelyRequested) {
  const Graph g = build_undirected(
      generate_component_mix_edges<NodeID>(1 << 12, 8.0, 0.25, 1), 1 << 12);
  // Duplicates removed by builder shave a little off.
  EXPECT_NEAR(compute_degree_stats(g).average_degree, 8.0, 1.0);
}

TEST(ComponentMix, InvalidFractionThrows) {
  EXPECT_THROW(generate_component_mix_edges<NodeID>(100, 4.0, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW(generate_component_mix_edges<NodeID>(100, 4.0, 1.5, 1),
               std::invalid_argument);
  EXPECT_THROW(generate_component_mix_edges<NodeID>(100, 4.0, 0.001, 1),
               std::invalid_argument);
}

TEST(ComponentMix, RemainderFormsExtraComponent) {
  // 100 vertices, f=0.3: components of 30/30/30 plus a 10-vertex remainder.
  const Graph g = build_undirected(
      generate_component_mix_edges<NodeID>(100, 4.0, 0.3, 2), 100);
  const auto sizes = component_sizes(union_find_cc(g));
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 30);
  EXPECT_EQ(sizes[3], 10);
}

// ------------------------------------------------------------------- suite

TEST(Suite, AllFamiliesBuildAndAreNonTrivial) {
  for (const auto& e : graph_suite_entries()) {
    const Graph g = make_suite_graph(e.name, 10);
    EXPECT_GT(g.num_nodes(), 0) << e.name;
    EXPECT_GT(g.num_edges(), 0) << e.name;
    EXPECT_FALSE(g.directed()) << e.name;
  }
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(make_suite_graph("not-a-graph", 10), std::invalid_argument);
}

TEST(Suite, IsSuiteGraphMatchesEntries) {
  EXPECT_TRUE(is_suite_graph("web"));
  EXPECT_TRUE(is_suite_graph("kron"));
  EXPECT_FALSE(is_suite_graph("webb"));
}

TEST(Suite, DeterministicAcrossCalls) {
  const Graph a = make_suite_graph("twitter", 10, 5);
  const Graph b = make_suite_graph("twitter", 10, 5);
  ASSERT_EQ(a.num_stored_edges(), b.num_stored_edges());
  for (std::int64_t v = 0; v < a.num_nodes(); ++v)
    ASSERT_EQ(a.out_degree(static_cast<NodeID>(v)),
              b.out_degree(static_cast<NodeID>(v)));
}

TEST(Suite, TopologyClassesMatchPaper) {
  // road/osm-eur: sparse; urand: single giant component; osm-eur: many
  // components (paper Table III).
  const Graph road = make_suite_graph("road", 12);
  EXPECT_LT(compute_degree_stats(road).average_degree, 5.0);

  const Graph urand = make_suite_graph("urand", 12);
  EXPECT_GT(summarize_components(union_find_cc(urand)).largest_fraction,
            0.99);

  const Graph osm = make_suite_graph("osm-eur", 12);
  EXPECT_GT(summarize_components(union_find_cc(osm)).num_components, 50);
}

}  // namespace
}  // namespace afforest
