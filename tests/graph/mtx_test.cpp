// MatrixMarket reader tests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "cc/union_find.hpp"
#include "graph/io.hpp"

namespace afforest {
namespace {

class MtxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_mtx_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& name,
                         const std::string& contents) {
    const auto p = (dir_ / name).string();
    std::ofstream out(p);
    out << contents;
    return p;
  }

  std::filesystem::path dir_;
};

TEST_F(MtxTest, PatternSymmetricParses) {
  const auto p = write_file("a.mtx",
                            "%%MatrixMarket matrix coordinate pattern symmetric\n"
                            "% a comment\n"
                            "4 4 3\n"
                            "2 1\n"
                            "3 2\n"
                            "4 4\n");
  const auto data = read_matrix_market(p);
  EXPECT_EQ(data.num_nodes, 4);
  ASSERT_EQ(data.edges.size(), 3u);
  EXPECT_EQ(data.edges[0].u, 1);  // converted to 0-indexed
  EXPECT_EQ(data.edges[0].v, 0);
}

TEST_F(MtxTest, RealGeneralValuesIgnored) {
  const auto p = write_file("b.mtx",
                            "%%MatrixMarket matrix coordinate real general\n"
                            "3 3 2\n"
                            "1 2 0.5\n"
                            "3 1 -2.25\n");
  const auto data = read_matrix_market(p);
  EXPECT_EQ(data.edges.size(), 2u);
  EXPECT_EQ(data.edges[1].u, 2);
  EXPECT_EQ(data.edges[1].v, 0);
}

TEST_F(MtxTest, RectangularUsesMaxDimension) {
  const auto p = write_file("r.mtx",
                            "%%MatrixMarket matrix coordinate pattern general\n"
                            "2 5 1\n"
                            "1 5\n");
  EXPECT_EQ(read_matrix_market(p).num_nodes, 5);
}

TEST_F(MtxTest, MissingBannerThrows) {
  const auto p = write_file("bad.mtx", "not a banner\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(p), std::runtime_error);
}

TEST_F(MtxTest, UnsupportedVariantsThrow) {
  const auto arr = write_file(
      "arr.mtx", "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market(arr), std::runtime_error);
  const auto cx = write_file(
      "cx.mtx",
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 0 0\n");
  EXPECT_THROW(read_matrix_market(cx), std::runtime_error);
  const auto skew = write_file(
      "skew.mtx",
      "%%MatrixMarket matrix coordinate pattern skew-symmetric\n2 2 1\n2 1\n");
  EXPECT_THROW(read_matrix_market(skew), std::runtime_error);
}

TEST_F(MtxTest, IndexOutOfRangeThrows) {
  const auto p = write_file("oob.mtx",
                            "%%MatrixMarket matrix coordinate pattern general\n"
                            "2 2 1\n"
                            "3 1\n");
  EXPECT_THROW(read_matrix_market(p), std::runtime_error);
}

TEST_F(MtxTest, EntryCountMismatchThrows) {
  const auto p = write_file("short.mtx",
                            "%%MatrixMarket matrix coordinate pattern general\n"
                            "3 3 5\n"
                            "1 2\n");
  EXPECT_THROW(read_matrix_market(p), std::runtime_error);
}

TEST_F(MtxTest, LoadGraphBuildsUndirectedComponents) {
  const auto p = write_file("g.mtx",
                            "%%MatrixMarket matrix coordinate pattern symmetric\n"
                            "5 5 2\n"
                            "2 1\n"
                            "4 3\n");
  const Graph g = load_graph(p);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(count_components(union_find_cc(g)), 3);
}

}  // namespace
}  // namespace afforest
