#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

Graph star_graph(NodeID leaves) {
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i <= leaves; ++i) edges.push_back({0, i});
  return build_undirected(edges);
}

TEST(CSRGraph, DegreesOfStar) {
  const Graph g = star_graph(5);
  EXPECT_EQ(g.out_degree(0), 5);
  for (NodeID v = 1; v <= 5; ++v) EXPECT_EQ(g.out_degree(v), 1);
}

TEST(CSRGraph, NeighborhoodIterationVisitsAll) {
  const Graph g = star_graph(4);
  std::vector<NodeID> seen;
  for (NodeID v : g.out_neigh(0)) seen.push_back(v);
  EXPECT_EQ(seen, (std::vector<NodeID>{1, 2, 3, 4}));
}

TEST(CSRGraph, NeighborhoodStartOffsetSkipsPrefix) {
  const Graph g = star_graph(4);
  std::vector<NodeID> seen;
  for (NodeID v : g.out_neigh(0, 2)) seen.push_back(v);
  EXPECT_EQ(seen, (std::vector<NodeID>{3, 4}));
}

TEST(CSRGraph, NeighborhoodFullOffsetIsEmpty) {
  const Graph g = star_graph(3);
  EXPECT_TRUE(g.out_neigh(0, 3).empty());
  EXPECT_EQ(g.out_neigh(0, 3).size(), 0);
}

TEST(CSRGraph, KthNeighborAccessor) {
  const Graph g = star_graph(4);
  EXPECT_EQ(g.neighbor(0, 0), 1);
  EXPECT_EQ(g.neighbor(0, 3), 4);
  EXPECT_EQ(g.neighbor(2, 0), 0);
}

TEST(CSRGraph, NeighborhoodIndexOperator) {
  const Graph g = star_graph(4);
  const auto nbrs = g.out_neigh(0);
  EXPECT_EQ(nbrs[1], 2);
}

TEST(CSRGraph, EdgeCountsUndirected) {
  const Graph g = star_graph(5);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.num_stored_edges(), 10);
}

TEST(CSRGraph, AverageDegree) {
  const Graph g = star_graph(5);
  // 10 stored edges over 6 nodes.
  EXPECT_NEAR(g.average_degree(), 10.0 / 6.0, 1e-12);
}

TEST(CSRGraph, AverageDegreeEmptyGraphIsZero) {
  pvector<std::int64_t> off{0};
  pvector<NodeID> nbr;
  const Graph g(0, std::move(off), std::move(nbr));
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(CSRGraph, MoveConstructionPreservesContent) {
  Graph g = star_graph(3);
  const auto edges = g.num_stored_edges();
  Graph h(std::move(g));
  EXPECT_EQ(h.num_stored_edges(), edges);
  EXPECT_EQ(h.out_degree(0), 3);
}

TEST(CSRGraph, ManualConstructionFromArrays) {
  // Path 0-1-2 built by hand.
  pvector<std::int64_t> off{0, 1, 3, 4};
  pvector<NodeID> nbr{1, 0, 2, 1};
  const Graph g(3, std::move(off), std::move(nbr));
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.out_degree(1), 2);
  EXPECT_EQ(g.neighbor(1, 0), 0);
  EXPECT_EQ(g.neighbor(1, 1), 2);
}

}  // namespace
}  // namespace afforest
