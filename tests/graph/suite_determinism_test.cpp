// Seed-determinism sweep over the whole generator suite: same (name,
// scale, seed) → bitwise-identical graph, for every family reachable
// through graph/generators/suite.hpp and for every raw generator function.
// The fuzz harness's reproducibility guarantee (docs/TESTING.md) rests on
// this property, so it is asserted systematically rather than per-family.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators/component_mix.hpp"
#include "graph/generators/geometric.hpp"
#include "graph/generators/kronecker.hpp"
#include "graph/generators/regular.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/smallworld.hpp"
#include "graph/generators/suite.hpp"
#include "graph/generators/uniform.hpp"
#include "graph/generators/webgraph.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

std::vector<std::string> all_suite_names() {
  std::vector<std::string> names;
  for (const auto& e : graph_suite_entries()) names.push_back(e.name);
  // Extended families accepted by make_suite_graph beyond Table III.
  names.insert(names.end(), {"smallworld", "rgg", "regular"});
  return names;
}

bool graphs_identical(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  if (a.offsets().size() != b.offsets().size()) return false;
  for (std::size_t i = 0; i < a.offsets().size(); ++i)
    if (a.offsets()[i] != b.offsets()[i]) return false;
  if (a.neighbors().size() != b.neighbors().size()) return false;
  for (std::size_t i = 0; i < a.neighbors().size(); ++i)
    if (a.neighbors()[i] != b.neighbors()[i]) return false;
  return true;
}

class SuiteDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteDeterminism, SameSeedSameGraph) {
  const Graph a = make_suite_graph(GetParam(), 9, 123);
  const Graph b = make_suite_graph(GetParam(), 9, 123);
  EXPECT_TRUE(graphs_identical(a, b)) << GetParam();
}

TEST_P(SuiteDeterminism, DifferentSeedsDiverge) {
  // Every suite family is randomized, so distinct seeds must not collide
  // into the same graph (scale 9 is far above coincidence size).
  const Graph a = make_suite_graph(GetParam(), 9, 123);
  const Graph b = make_suite_graph(GetParam(), 9, 321);
  EXPECT_FALSE(graphs_identical(a, b)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SuiteDeterminism,
                         ::testing::ValuesIn(all_suite_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

template <typename MakeFn>
void expect_deterministic(const char* what, MakeFn make) {
  const EdgeList<NodeID> a = make();
  const EdgeList<NodeID> b = make();
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_TRUE(a[i] == b[i]) << what << " edge " << i;
}

std::uint64_t fingerprint(const Graph& g) {
  // FNV-1a over the CSR arrays: any change to edge content or order moves
  // the fingerprint.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(g.num_nodes()));
  for (const auto off : g.offsets()) mix(static_cast<std::uint64_t>(off));
  for (const auto v : g.neighbors()) mix(static_cast<std::uint64_t>(v));
  return h;
}

TEST(GeneratorDeterminism, SplitConsumingFamiliesArePinned) {
  // The block-parallel generators (kronecker, uniform) derive per-block
  // streams via Xoshiro256::split.  These fingerprints pin the stream
  // values produced by the fixed split derivation (all four state words
  // folded into the child seed); an accidental change to split() or to
  // the generators' stream layout shows up here as a hard failure, not as
  // silently different benchmark graphs.
  EXPECT_EQ(fingerprint(make_suite_graph("kron", 9, 123)),
            3254071736951879868ULL);
  EXPECT_EQ(fingerprint(make_suite_graph("urand", 9, 123)),
            1130695029091435044ULL);
}

TEST(GeneratorDeterminism, EveryRawGeneratorIsSeedDeterministic) {
  // The raw generate_* functions, including the ones the suite does not
  // route through (component-mix) — the same edge LIST, not merely the
  // same graph, so downstream edge-order-sensitive code is reproducible.
  const std::int64_t n = 1 << 9;
  expect_deterministic("uniform", [&] {
    return generate_uniform_edges<NodeID>(n, 4 * n, 7);
  });
  expect_deterministic("kronecker", [&] {
    return generate_kronecker_edges<NodeID>(9, 8, 7);
  });
  expect_deterministic("road", [&] {
    return generate_road_edges<NodeID>(22, 22, 7,
                                       {.keep_prob = 0.9,
                                        .shortcut_per_node = 0.01});
  });
  expect_deterministic("web", [&] { return generate_web_edges<NodeID>(n, 7); });
  expect_deterministic("smallworld", [&] {
    return generate_small_world_edges<NodeID>(n, 4, 0.1, 7);
  });
  expect_deterministic("geometric", [&] {
    return generate_geometric_edges<NodeID>(n, 0.08, 7);
  });
  expect_deterministic("regular", [&] {
    return generate_regular_edges<NodeID>(n, 6, 7);
  });
  expect_deterministic("component-mix", [&] {
    return generate_component_mix_edges<NodeID>(n, 4.0, 0.1, 7);
  });
}

}  // namespace
}  // namespace afforest
