#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators/uniform.hpp"

namespace afforest {
namespace {

class IOTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IOTest, EdgeListRoundTrip) {
  EdgeList<std::int32_t> edges{{0, 1}, {2, 3}, {1, 2}};
  write_edge_list(path("g.el"), edges);
  const auto back = read_edge_list(path("g.el"));
  ASSERT_EQ(back.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i)
    EXPECT_TRUE(back[i] == edges[i]);
}

TEST_F(IOTest, EdgeListSkipsCommentsAndBlankLines) {
  std::ofstream out(path("c.el"));
  out << "# header comment\n\n% another comment\n3 4\n";
  out.close();
  const auto edges = read_edge_list(path("c.el"));
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].u, 3);
  EXPECT_EQ(edges[0].v, 4);
}

TEST_F(IOTest, EdgeListParseErrorThrows) {
  std::ofstream out(path("bad.el"));
  out << "1 two\n";
  out.close();
  EXPECT_THROW(read_edge_list(path("bad.el")), std::runtime_error);
}

TEST_F(IOTest, EdgeListNegativeIdThrows) {
  std::ofstream out(path("neg.el"));
  out << "-1 2\n";
  out.close();
  EXPECT_THROW(read_edge_list(path("neg.el")), std::runtime_error);
}

TEST_F(IOTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list(path("nonexistent.el")), std::runtime_error);
  EXPECT_THROW(read_serialized_graph(path("nonexistent.sg")),
               std::runtime_error);
}

TEST_F(IOTest, SerializedGraphRoundTrip) {
  const auto edges = generate_uniform_edges<std::int32_t>(500, 2000, 3);
  const Graph g = build_undirected(edges, 500);
  write_serialized_graph(path("g.sg"), g);
  const Graph h = read_serialized_graph(path("g.sg"));
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_stored_edges(), g.num_stored_edges());
  EXPECT_EQ(h.directed(), g.directed());
  for (std::int64_t v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(h.out_degree(static_cast<std::int32_t>(v)),
              g.out_degree(static_cast<std::int32_t>(v)));
    for (std::int64_t k = 0; k < g.out_degree(static_cast<std::int32_t>(v));
         ++k)
      ASSERT_EQ(h.neighbor(static_cast<std::int32_t>(v), k),
                g.neighbor(static_cast<std::int32_t>(v), k));
  }
}

TEST_F(IOTest, BadMagicThrows) {
  std::ofstream out(path("junk.sg"), std::ios::binary);
  out << "NOTAGRAPHFILE_____________";
  out.close();
  EXPECT_THROW(read_serialized_graph(path("junk.sg")), std::runtime_error);
}

TEST_F(IOTest, TruncatedSerializedGraphThrows) {
  EdgeList<std::int32_t> edges{{0, 1}, {1, 2}};
  const Graph g = build_undirected(edges);
  write_serialized_graph(path("t.sg"), g);
  // Truncate the file to cut off the neighbor array.
  const auto full = std::filesystem::file_size(path("t.sg"));
  std::filesystem::resize_file(path("t.sg"), full - 4);
  EXPECT_THROW(read_serialized_graph(path("t.sg")), std::runtime_error);
}

TEST_F(IOTest, LoadGraphDispatchesOnExtension) {
  EdgeList<std::int32_t> edges{{0, 1}, {1, 2}};
  write_edge_list(path("g.el"), edges);
  const Graph from_el = load_graph(path("g.el"));
  EXPECT_EQ(from_el.num_nodes(), 3);
  EXPECT_EQ(from_el.num_edges(), 2);

  write_serialized_graph(path("g.sg"), from_el);
  const Graph from_sg = load_graph(path("g.sg"));
  EXPECT_EQ(from_sg.num_nodes(), 3);
  EXPECT_EQ(from_sg.num_edges(), 2);
}

TEST_F(IOTest, LoadGraphUnknownExtensionThrows) {
  EXPECT_THROW(load_graph(path("g.mtx")), std::runtime_error);
}

TEST_F(IOTest, LabelsRoundTrip) {
  pvector<std::int32_t> labels{0, 0, 2, 2, 4};
  write_labels(path("c.cl"), labels);
  const auto back = read_labels(path("c.cl"));
  ASSERT_EQ(back.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i)
    EXPECT_EQ(back[i], labels[i]);
}

TEST_F(IOTest, LabelsBadMagicThrows) {
  std::ofstream out(path("junk.cl"), std::ios::binary);
  out << "NOTLABELS________________";
  out.close();
  EXPECT_THROW(read_labels(path("junk.cl")), std::runtime_error);
}

TEST_F(IOTest, LabelsTruncationThrows) {
  pvector<std::int32_t> labels(100, 7);
  write_labels(path("t.cl"), labels);
  const auto full = std::filesystem::file_size(path("t.cl"));
  std::filesystem::resize_file(path("t.cl"), full - 8);
  EXPECT_THROW(read_labels(path("t.cl")), std::runtime_error);
}

TEST_F(IOTest, EmptyLabelsSerialize) {
  pvector<std::int32_t> labels;
  write_labels(path("e.cl"), labels);
  EXPECT_TRUE(read_labels(path("e.cl")).empty());
}

TEST_F(IOTest, EmptyGraphSerializes) {
  EdgeList<std::int32_t> edges;
  const Graph g = build_undirected(edges, 0);
  write_serialized_graph(path("empty.sg"), g);
  const Graph h = read_serialized_graph(path("empty.sg"));
  EXPECT_EQ(h.num_nodes(), 0);
  EXPECT_EQ(h.num_stored_edges(), 0);
}

}  // namespace
}  // namespace afforest
