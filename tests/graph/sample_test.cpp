// Subgraph sampling utilities and the d-regular generator (§IV-B).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cc/component_stats.hpp"
#include "cc/union_find.hpp"
#include "graph/builder.hpp"
#include "graph/generators/regular.hpp"
#include "graph/sample.hpp"
#include "graph/stats.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(RegularGenerator, OddStubCountThrows) {
  EXPECT_THROW(generate_regular_edges<NodeID>(3, 3, 1),
               std::invalid_argument);
}

TEST(RegularGenerator, ProducesHalfNDEdges) {
  const auto edges = generate_regular_edges<NodeID>(100, 4, 1);
  EXPECT_EQ(edges.size(), 200u);
}

TEST(RegularGenerator, DegreesAreNearlyRegular) {
  // Configuration model: every vertex has exactly d stubs, so the stored
  // degree never exceeds d, and self-loop/duplicate cleanup shaves only a
  // vanishing fraction off the average.
  const std::int64_t n = 1 << 12, d = 6;
  const Graph g =
      build_undirected(generate_regular_edges<NodeID>(n, d, 7), n);
  const auto s = compute_degree_stats(g);
  EXPECT_LE(s.max_degree, d);
  EXPECT_GT(s.average_degree, static_cast<double>(d) - 0.5);
}

TEST(RegularGenerator, Deterministic) {
  const auto a = generate_regular_edges<NodeID>(64, 4, 9);
  const auto b = generate_regular_edges<NodeID>(64, 4, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_TRUE(a[i] == b[i]);
}

TEST(RegularGenerator, SupercriticalGraphIsConnected) {
  // d >= 3 random regular graphs are connected w.h.p.
  const std::int64_t n = 1 << 11;
  const Graph g =
      build_undirected(generate_regular_edges<NodeID>(n, 4, 3), n);
  EXPECT_GT(summarize_components(union_find_cc(g)).largest_fraction, 0.99);
}

TEST(UniformEdgeSample, ProbabilityZeroAndOne) {
  const Graph g =
      build_undirected(generate_regular_edges<NodeID>(256, 4, 1), 256);
  EXPECT_TRUE(uniform_edge_sample(g, 0.0, 1).empty());
  EXPECT_EQ(static_cast<std::int64_t>(uniform_edge_sample(g, 1.0, 1).size()),
            g.num_edges());
}

TEST(UniformEdgeSample, ExpectationMatchesP) {
  const Graph g =
      build_undirected(generate_regular_edges<NodeID>(1 << 12, 8, 2),
                       1 << 12);
  const double p = 0.25;
  const auto sample = uniform_edge_sample(g, p, 11);
  const double expected = p * static_cast<double>(g.num_edges());
  EXPECT_NEAR(static_cast<double>(sample.size()), expected,
              4 * std::sqrt(expected));  // ~4 sigma
}

TEST(UniformEdgeSample, SampledEdgesExistInGraph) {
  const Graph g =
      build_undirected(generate_regular_edges<NodeID>(128, 4, 5), 128);
  for (const auto& [u, v] : uniform_edge_sample(g, 0.5, 3)) {
    const auto nbrs = g.out_neigh(u);
    EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), v));
    EXPECT_LT(u, v);
  }
}

TEST(Claim1, SamplingAboveThresholdKeepsGiantComponent) {
  // §IV-B / Frieze et al.: p = (1+eps)/d on a d-regular graph leaves a
  // Theta(n) component; expected sampled edges are O(n).
  const std::int64_t n = 1 << 13, d = 16;
  const Graph g =
      build_undirected(generate_regular_edges<NodeID>(n, d, 4), n);
  const double p = 2.0 / static_cast<double>(d);  // eps = 1
  const auto sampled = uniform_edge_sample(g, p, 9);
  EXPECT_LT(static_cast<double>(sampled.size()), 1.5 * static_cast<double>(n));
  const Graph gs = build_undirected(sampled, n);
  const auto s = summarize_components(union_find_cc(gs));
  EXPECT_GT(s.largest_fraction, 0.5);  // Theta(n) giant component
}

TEST(NeighborSample, CountsMatchDegreeTruncation) {
  const Graph g =
      build_undirected(generate_regular_edges<NodeID>(512, 6, 8), 512);
  const auto sample = neighbor_sample(g, 2);
  std::int64_t expected = 0;
  for (std::int64_t v = 0; v < g.num_nodes(); ++v)
    expected += std::min<std::int64_t>(2, g.out_degree(static_cast<NodeID>(v)));
  EXPECT_EQ(static_cast<std::int64_t>(sample.size()), expected);
}

TEST(NeighborSample, ZeroRoundsIsEmpty) {
  const Graph g =
      build_undirected(generate_regular_edges<NodeID>(64, 4, 8), 64);
  EXPECT_TRUE(neighbor_sample(g, 0).empty());
}

TEST(NeighborSample, CoversFirstNeighbors) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}, {0, 2}, {0, 3}}, 4);
  const auto sample = neighbor_sample(g, 1);
  // Each vertex contributes its first (lowest) neighbor.
  ASSERT_EQ(sample.size(), 4u);
  EXPECT_EQ(sample[0].v, 1);  // vertex 0's first neighbor
  EXPECT_EQ(sample[1].v, 0);  // vertex 1's
}

}  // namespace
}  // namespace afforest
