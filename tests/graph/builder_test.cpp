#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace afforest {
namespace {

using NodeID = std::int32_t;

EdgeList<NodeID> triangle_plus_pendant() {
  // 0-1, 1-2, 2-0 triangle with pendant 3 attached to 0.
  return EdgeList<NodeID>{{0, 1}, {1, 2}, {2, 0}, {0, 3}};
}

TEST(Builder, SymmetrizesUndirectedGraph) {
  const Graph g = build_undirected(triangle_plus_pendant());
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);          // unordered
  EXPECT_EQ(g.num_stored_edges(), 8);   // both directions
  EXPECT_FALSE(g.directed());
  EXPECT_EQ(g.out_degree(0), 3);
  EXPECT_EQ(g.out_degree(3), 1);
}

TEST(Builder, NeighborListsAreSorted) {
  const Graph g = build_undirected(triangle_plus_pendant());
  for (NodeID v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.out_neigh(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end())) << "row " << v;
  }
}

TEST(Builder, RemovesSelfLoopsByDefault) {
  EdgeList<NodeID> edges{{0, 0}, {0, 1}, {1, 1}};
  const Graph g = build_undirected(edges);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.out_degree(1), 1);
}

TEST(Builder, KeepsSelfLoopsWhenRequested) {
  BuilderOptions opts;
  opts.remove_self_loops = false;
  opts.remove_duplicates = false;
  EdgeList<NodeID> edges{{0, 0}, {0, 1}};
  const Graph g = Builder<NodeID>(opts).build(edges);
  // Self loop stored twice by symmetrization (0->0 emitted for u and v).
  EXPECT_EQ(g.out_degree(0), 3);
}

TEST(Builder, RemovesDuplicateEdges) {
  EdgeList<NodeID> edges{{0, 1}, {0, 1}, {1, 0}, {2, 1}};
  const Graph g = build_undirected(edges);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.out_degree(1), 2);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Builder, KeepsDuplicatesWhenRequested) {
  BuilderOptions opts;
  opts.remove_duplicates = false;
  EdgeList<NodeID> edges{{0, 1}, {0, 1}};
  const Graph g = Builder<NodeID>(opts).build(edges);
  EXPECT_EQ(g.out_degree(0), 2);
}

TEST(Builder, DuplicateRemovalRequiresSortedRows) {
  BuilderOptions opts;
  opts.sort_neighbors = false;
  opts.remove_duplicates = true;
  EXPECT_THROW((void)Builder<NodeID>{opts}, std::invalid_argument);
}

TEST(Builder, InfersNumNodesFromMaxId) {
  EdgeList<NodeID> edges{{5, 9}};
  const Graph g = build_undirected(edges);
  EXPECT_EQ(g.num_nodes(), 10);
  EXPECT_EQ(g.out_degree(0), 0);
  EXPECT_EQ(g.out_degree(9), 1);
}

TEST(Builder, ExplicitNumNodesAddsIsolatedVertices) {
  EdgeList<NodeID> edges{{0, 1}};
  const Graph g = build_undirected(edges, 100);
  EXPECT_EQ(g.num_nodes(), 100);
  EXPECT_EQ(g.out_degree(99), 0);
}

TEST(Builder, OutOfRangeEdgeThrows) {
  EdgeList<NodeID> edges{{0, 5}};
  EXPECT_THROW(build_undirected(edges, 3), std::out_of_range);
}

TEST(Builder, NegativeVertexIdThrows) {
  EdgeList<NodeID> edges{{-1, 2}};
  EXPECT_THROW(build_undirected(edges, 3), std::out_of_range);
}

TEST(Builder, EmptyEdgeListYieldsEdgelessGraph) {
  EdgeList<NodeID> edges;
  const Graph g = build_undirected(edges, 5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  for (NodeID v = 0; v < 5; ++v) EXPECT_EQ(g.out_degree(v), 0);
}

TEST(Builder, ZeroNodesGraph) {
  EdgeList<NodeID> edges;
  const Graph g = build_undirected(edges, 0);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Builder, DirectedBuildDoesNotSymmetrize) {
  BuilderOptions opts;
  opts.symmetrize = false;
  EdgeList<NodeID> edges{{0, 1}, {2, 1}};
  const Graph g = Builder<NodeID>(opts).build(edges);
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.out_degree(1), 0);
  EXPECT_EQ(g.out_degree(2), 1);
}

TEST(Builder, SymmetryHoldsForEveryEdge) {
  // Each stored edge (u,v) must have a matching (v,u).
  EdgeList<NodeID> edges{{0, 3}, {1, 3}, {2, 3}, {0, 1}};
  const Graph g = build_undirected(edges);
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    for (NodeID v : g.out_neigh(u)) {
      const auto back = g.out_neigh(v);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), u))
          << "missing reverse edge " << v << "->" << u;
    }
  }
}

TEST(Builder, OffsetsAreMonotoneAndComplete) {
  const Graph g = build_undirected(triangle_plus_pendant());
  const auto& off = g.offsets();
  EXPECT_EQ(off[0], 0);
  for (std::int64_t v = 0; v < g.num_nodes(); ++v)
    EXPECT_LE(off[v], off[v + 1]);
  EXPECT_EQ(off[g.num_nodes()], g.num_stored_edges());
}

}  // namespace
}  // namespace afforest
