#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators/road.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

Graph path_graph(NodeID n) {
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i < n; ++i) edges.push_back({static_cast<NodeID>(i - 1), i});
  return build_undirected(edges, n);
}

TEST(DegreeStats, PathGraph) {
  const Graph g = path_graph(10);
  const auto s = compute_degree_stats(g);
  EXPECT_EQ(s.num_nodes, 10);
  EXPECT_EQ(s.num_edges, 9);
  EXPECT_EQ(s.max_degree, 2);
  EXPECT_EQ(s.num_isolated, 0);
  EXPECT_EQ(s.num_degree_one, 2);  // the two endpoints
  EXPECT_NEAR(s.average_degree, 18.0 / 10.0, 1e-12);
}

TEST(DegreeStats, IsolatedVerticesCounted) {
  EdgeList<NodeID> edges{{0, 1}};
  const Graph g = build_undirected(edges, 5);
  const auto s = compute_degree_stats(g);
  EXPECT_EQ(s.num_isolated, 3);
  EXPECT_EQ(s.num_degree_one, 2);
}

TEST(DegreeHistogram, BucketsAreLog2) {
  // Star with 8 leaves: center degree 8 (bucket 3), leaves degree 1
  // (bucket 0).
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i <= 8; ++i) edges.push_back({0, i});
  const Graph g = build_undirected(edges);
  const auto hist = degree_histogram_log2(g);
  ASSERT_GE(hist.size(), 4u);
  EXPECT_EQ(hist[0], 8);  // leaves
  EXPECT_EQ(hist[3], 1);  // center
}

TEST(DegreeHistogram, TrailingZerosTrimmed) {
  const Graph g = path_graph(4);
  const auto hist = degree_histogram_log2(g);
  EXPECT_GE(hist.size(), 1u);
  EXPECT_NE(hist.back(), 0);
}

TEST(ApproximateDiameter, PathGraphIsExact) {
  const Graph g = path_graph(50);
  // Double-sweep from any vertex finds the exact diameter on a path.
  EXPECT_EQ(approximate_diameter(g, 25), 49);
}

TEST(ApproximateDiameter, StarIsTwo) {
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i <= 6; ++i) edges.push_back({0, i});
  const Graph g = build_undirected(edges);
  EXPECT_EQ(approximate_diameter(g, 0), 2);
}

TEST(ApproximateDiameter, EmptyGraphIsZero) {
  EdgeList<NodeID> edges;
  const Graph g = build_undirected(edges, 0);
  EXPECT_EQ(approximate_diameter(g), 0);
}

TEST(ApproximateDiameter, RoadModelHasHighDiameter) {
  // A 64x64 lattice should have diameter ~ at least its side length.
  const Graph g =
      build_undirected(generate_road_edges<NodeID>(64, 64, 1, {1.0, 0.0}));
  EXPECT_GE(approximate_diameter(g, 0), 64);
}

TEST(FormatDegreeStats, ContainsKeyFields) {
  const Graph g = path_graph(3);
  const auto str = format_degree_stats(compute_degree_stats(g));
  EXPECT_NE(str.find("V=3"), std::string::npos);
  EXPECT_NE(str.find("E=2"), std::string::npos);
}

}  // namespace
}  // namespace afforest
