// §V-A worst-case constructions: correctness must hold on adversarial
// inputs, and the helpers must build the documented shapes.
#include <gtest/gtest.h>

#include "analysis/instrumented.hpp"
#include "cc/afforest.hpp"
#include "cc/registry.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/adversarial.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(AdversarialStar, ShapeIsHighHubDescendingLeaves) {
  const auto edges = adversarial_star_edges<NodeID>(6);
  ASSERT_EQ(edges.size(), 5u);
  EXPECT_EQ(edges[0].u, 5);
  EXPECT_EQ(edges[0].v, 4);  // highest leaf first
  EXPECT_EQ(edges[4].v, 0);  // lowest leaf last
}

TEST(AdversarialStar, AllAlgorithmsCorrect) {
  const Graph g = build_undirected(adversarial_star_edges<NodeID>(512), 512);
  const auto truth = union_find_cc(g);
  for (const auto& a : cc_algorithms())
    EXPECT_TRUE(labels_equivalent(a.run(g), truth)) << a.name;
}

TEST(AdversarialPath, HighToLowOrderStillCorrect) {
  const Graph g = build_undirected(adversarial_path_edges<NodeID>(1024), 1024);
  const auto comp = afforest_cc(g);
  EXPECT_EQ(count_components(comp), 1);
  EXPECT_TRUE(verify_cc(g, comp));
}

TEST(AdversarialStar, SequentialLinkOrderInducesWalks) {
  // Replay the §V-A scenario: process the adversarial star edge order
  // serially through the counted link; total iterations must exceed the
  // edge count (some calls walk chains), yet convergence holds.
  const std::int64_t n = 256;
  const auto edges = adversarial_star_edges<NodeID>(n);
  auto comp = identity_labels<NodeID>(n);
  std::int64_t iters = 0;
  for (const auto& [u, v] : edges) link_counted(u, v, comp, iters);
  EXPECT_GT(iters, static_cast<std::int64_t>(edges.size()));
  compress_all(comp);
  for (std::int64_t v = 0; v < n; ++v) ASSERT_EQ(comp[v], 0);
}

TEST(LinearDepthForest, ShapeIsChain) {
  const auto pi = linear_depth_forest<NodeID>(5);
  EXPECT_EQ(pi[0], 0);
  EXPECT_EQ(pi[4], 3);
  EXPECT_EQ(max_tree_depth(pi), 4);
}

TEST(LinearDepthForest, CompressFlattensWorstCase) {
  auto pi = linear_depth_forest<NodeID>(1 << 12);
  compress_all(pi);
  EXPECT_EQ(max_tree_depth(pi), 1);
  for (std::size_t v = 1; v < pi.size(); ++v) ASSERT_EQ(pi[v], 0);
}

TEST(LinearDepthForest, SingleVertex) {
  const auto pi = linear_depth_forest<NodeID>(1);
  EXPECT_EQ(pi[0], 0);
}

}  // namespace
}  // namespace afforest
