#include "graph/permute.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cc/component_stats.hpp"
#include "cc/registry.hpp"
#include "cc/verifier.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(Permutation, RandomIsBijection) {
  const auto perm = random_permutation<NodeID>(1000, 3);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(Permutation, RandomIsDeterministicPerSeed) {
  const auto a = random_permutation<NodeID>(100, 5);
  const auto b = random_permutation<NodeID>(100, 5);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Permutation, DegreeDescendingPutsHubsFirst) {
  const Graph g = make_suite_graph("kron", 9);
  const auto perm = degree_descending_permutation(g);
  ASSERT_TRUE(is_permutation(perm));
  // The vertex mapped to new id 0 must have the maximum degree.
  NodeID hub = 0;
  for (std::int64_t v = 0; v < g.num_nodes(); ++v)
    if (perm[v] == 0) hub = static_cast<NodeID>(v);
  for (std::int64_t v = 0; v < g.num_nodes(); ++v)
    ASSERT_LE(g.out_degree(static_cast<NodeID>(v)), g.out_degree(hub));
}

TEST(Permutation, AscendingIsReverseOfDescending) {
  const Graph g = make_suite_graph("web", 8);
  const auto desc = degree_descending_permutation(g);
  const auto asc = degree_ascending_permutation(g);
  ASSERT_TRUE(is_permutation(asc));
  const auto n = static_cast<NodeID>(g.num_nodes());
  for (std::size_t v = 0; v < desc.size(); ++v)
    ASSERT_EQ(asc[v], static_cast<NodeID>(n - 1 - desc[v]));
}

TEST(Permutation, IsPermutationRejectsDuplicatesAndOutOfRange) {
  Permutation<NodeID> dup{0, 0, 2};
  EXPECT_FALSE(is_permutation(dup));
  Permutation<NodeID> oob{0, 3, 1};
  EXPECT_FALSE(is_permutation(oob));
  Permutation<NodeID> neg{0, -1, 1};
  EXPECT_FALSE(is_permutation(neg));
}

TEST(Relabel, PreservesComponentSizeMultiset) {
  const Graph g = make_suite_graph("osm-eur", 10);
  const auto perm = random_permutation<NodeID>(g.num_nodes(), 9);
  const Graph h = relabel(g, perm);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(component_sizes(union_find_cc(g)),
            component_sizes(union_find_cc(h)));
}

TEST(Relabel, EdgesMapThroughPermutation) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}, {1, 2}}, 3);
  Permutation<NodeID> perm{2, 0, 1};  // 0->2, 1->0, 2->1
  const Graph h = relabel(g, perm);
  // Edge {0,1} -> {2,0}; edge {1,2} -> {0,1}.
  const auto n0 = h.out_neigh(0);
  EXPECT_EQ(n0.size(), 2);  // 0 connects to 1 and 2
  EXPECT_EQ(h.out_degree(1), 1);
  EXPECT_EQ(h.out_degree(2), 1);
}

TEST(Relabel, WrongSizePermutationThrows) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}}, 2);
  Permutation<NodeID> perm{0};
  EXPECT_THROW(relabel(g, perm), std::invalid_argument);
}

TEST(Relabel, DirectedGraphKeepsArcDirections) {
  const auto g = build_directed(EdgeList<NodeID>{{0, 1}}, 2);
  Permutation<NodeID> perm{1, 0};
  const auto h = relabel(g, perm);
  EXPECT_TRUE(h.directed());
  EXPECT_EQ(h.out_degree(1), 1);  // arc now 1->0
  EXPECT_EQ(h.out_degree(0), 0);
  EXPECT_EQ(h.in_degree(0), 1);
}

TEST(Relabel, AllAlgorithmsAgreeOnRelabeledGraph) {
  const Graph g = make_suite_graph("twitter", 9);
  const Graph h = relabel(g, random_permutation<NodeID>(g.num_nodes(), 13));
  const auto truth = union_find_cc(h);
  for (const auto& a : cc_algorithms())
    ASSERT_TRUE(labels_equivalent(a.run(h), truth)) << a.name;
}

}  // namespace
}  // namespace afforest
