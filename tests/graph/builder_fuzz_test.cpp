// Randomized builder validation: for arbitrary messy edge lists (self
// loops, duplicates, skewed degrees, isolated ranges) the CSR builder must
// agree with a naive set-based reference and satisfy structural
// invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

/// Naive reference: adjacency as sorted sets, symmetrized, no self loops.
std::map<NodeID, std::set<NodeID>> reference_adjacency(
    const EdgeList<NodeID>& edges) {
  std::map<NodeID, std::set<NodeID>> adj;
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    adj[u].insert(v);
    adj[v].insert(u);
  }
  return adj;
}

EdgeList<NodeID> random_messy_edges(std::int64_t n, std::int64_t m,
                                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  EdgeList<NodeID> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    const auto u = static_cast<NodeID>(rng.next_bounded(n));
    // Skew: 30% of edges touch vertex 0, 10% are self loops, 20% repeat
    // the previous edge.
    const double r = rng.next_double();
    if (r < 0.2 && !edges.empty()) {
      edges.push_back(edges.back());
    } else if (r < 0.3) {
      edges.push_back({u, u});
    } else if (r < 0.6) {
      edges.push_back({0, u});
    } else {
      edges.push_back({u, static_cast<NodeID>(rng.next_bounded(n))});
    }
  }
  return edges;
}

class BuilderFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BuilderFuzz, MatchesNaiveReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const std::int64_t n = 200;
  const auto edges = random_messy_edges(n, 600, seed);
  const Graph g = build_undirected(edges, n);
  const auto ref = reference_adjacency(edges);

  std::int64_t ref_stored = 0;
  for (const auto& [_, nbrs] : ref)
    ref_stored += static_cast<std::int64_t>(nbrs.size());
  ASSERT_EQ(g.num_stored_edges(), ref_stored);

  for (std::int64_t v = 0; v < n; ++v) {
    const auto it = ref.find(static_cast<NodeID>(v));
    const std::int64_t ref_deg =
        it == ref.end() ? 0 : static_cast<std::int64_t>(it->second.size());
    ASSERT_EQ(g.out_degree(static_cast<NodeID>(v)), ref_deg) << "v=" << v;
    if (it == ref.end()) continue;
    std::vector<NodeID> got(g.out_neigh(static_cast<NodeID>(v)).begin(),
                            g.out_neigh(static_cast<NodeID>(v)).end());
    std::vector<NodeID> want(it->second.begin(), it->second.end());
    ASSERT_EQ(got, want) << "row " << v;
  }
}

TEST_P(BuilderFuzz, StructuralInvariantsHold) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) + 1000;
  const std::int64_t n = 300;
  const Graph g = build_undirected(random_messy_edges(n, 900, seed), n);

  const auto& off = g.offsets();
  ASSERT_EQ(off[0], 0);
  ASSERT_EQ(off[n], g.num_stored_edges());
  for (std::int64_t v = 0; v < n; ++v) {
    ASSERT_LE(off[v], off[v + 1]);
    NodeID prev = -1;
    for (NodeID w : g.out_neigh(static_cast<NodeID>(v))) {
      ASSERT_GT(w, prev) << "row not strictly sorted (dup?) at " << v;
      ASSERT_NE(w, static_cast<NodeID>(v)) << "self loop survived at " << v;
      prev = w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace afforest
