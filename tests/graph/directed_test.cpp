// Directed-graph support: inverse adjacency construction and
// weakly-connected components via the directed-aware Afforest driver.
#include <gtest/gtest.h>

#include <algorithm>

#include "cc/afforest.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/uniform.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(DirectedBuilder, InDegreesMatchReversedEdges) {
  // 0->1, 2->1, 1->3
  const auto g = build_directed(EdgeList<NodeID>{{0, 1}, {2, 1}, {1, 3}}, 4);
  EXPECT_TRUE(g.directed());
  EXPECT_TRUE(g.has_in_edges());
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.in_degree(1), 2);
  EXPECT_EQ(g.out_degree(1), 1);
  EXPECT_EQ(g.in_degree(3), 1);
}

TEST(DirectedBuilder, InNeighborsAreSortedAndCorrect) {
  const auto g = build_directed(EdgeList<NodeID>{{2, 1}, {0, 1}}, 3);
  const auto in = g.in_neigh(1);
  ASSERT_EQ(in.size(), 2);
  EXPECT_EQ(in[0], 0);
  EXPECT_EQ(in[1], 2);
  EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
}

TEST(DirectedBuilder, UndirectedInNeighFallsBackToOut) {
  const Graph g = build_undirected(EdgeList<NodeID>{{0, 1}}, 2);
  EXPECT_EQ(g.in_degree(0), g.out_degree(0));
  EXPECT_EQ(*g.in_neigh(0).begin(), 1);
}

TEST(DirectedBuilder, InverseConsistentAfterDedup) {
  // Duplicate arcs removed from out must also be absent from in.
  const auto g =
      build_directed(EdgeList<NodeID>{{0, 1}, {0, 1}, {0, 1}}, 2);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(1), 1);
}

TEST(DirectedBuilder, OptOutOfInEdges) {
  BuilderOptions opts;
  opts.symmetrize = false;
  opts.build_in_edges = false;
  const auto g = Builder<NodeID>(opts).build(EdgeList<NodeID>{{0, 1}}, 2);
  EXPECT_TRUE(g.directed());
  EXPECT_FALSE(g.has_in_edges());
}

TEST(WeaklyCC, AfforestOnDirectedChain) {
  // Arcs 0->1<-2: weakly one component even though not strongly connected.
  const auto g = build_directed(EdgeList<NodeID>{{0, 1}, {2, 1}}, 3);
  const auto comp = afforest_cc(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
}

TEST(WeaklyCC, MatchesSymmetrizedUndirectedBuild) {
  const auto edges = generate_uniform_edges<NodeID>(2000, 5000, 77);
  EdgeList<NodeID> copy;
  for (const auto& e : edges) copy.push_back(e);
  const auto directed = build_directed(copy, 2000);
  const Graph undirected = build_undirected(edges, 2000);
  EXPECT_TRUE(labels_equivalent(afforest_cc(directed),
                                union_find_cc(undirected)));
}

TEST(WeaklyCC, SkippingStaysCorrectOnDirectedGraphs) {
  // Theorem 3's directed analogue: a skipped tail's arc is recovered via
  // the head's in-neighborhood.
  const auto edges = generate_uniform_edges<NodeID>(4000, 20000, 5);
  EdgeList<NodeID> copy;
  for (const auto& e : edges) copy.push_back(e);
  const auto g = build_directed(copy, 4000);
  const Graph sym = build_undirected(edges, 4000);
  for (bool skip : {true, false}) {
    AfforestOptions opts;
    opts.skip_largest = skip;
    ASSERT_TRUE(labels_equivalent(afforest_cc(g, opts), union_find_cc(sym)))
        << "skip=" << skip;
  }
}

TEST(WeaklyCC, IsolatedAndSourceSinkVertices) {
  // 0->1, 2 isolated, 3->0 (3 is a pure source, 1 a pure sink).
  const auto g = build_directed(EdgeList<NodeID>{{0, 1}, {3, 0}}, 4);
  const auto comp = afforest_cc(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[0], comp[3]);
  EXPECT_NE(comp[2], comp[0]);
}

}  // namespace
}  // namespace afforest
