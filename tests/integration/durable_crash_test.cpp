// Real-process crash sweep: kills apps/durable with lethal failpoints
// (AFFOREST_FAILPOINT_LETHAL=1 → std::_Exit(86) at the armed site), then
// reruns it to recover + resume, and finally asks it to --verify its
// recovered state against the serial oracle.  This is the subprocess
// complement of tests/serve/crash_sweep_test.cpp: the in-process sweep
// covers every site × seed cheaply with thrown "crashes"; this suite
// proves the same contract when the process genuinely dies mid-syscall
// with no destructors, no unwinding, and no in-memory state surviving.
//
// The app binary path is injected at configure time (AFFOREST_DURABLE_APP);
// the suite skips if the binary has not been built.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/failpoint.hpp"

namespace afforest {
namespace {

#ifndef AFFOREST_DURABLE_APP
#define AFFOREST_DURABLE_APP ""
#endif

class DurableCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = AFFOREST_DURABLE_APP;
    if (app_.empty() || !std::filesystem::exists(app_))
      GTEST_SKIP() << "apps/durable binary not built (looked at '" << app_
                   << "')";
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_crash_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    out_ = (dir_.string() + ".out");
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove(out_);
  }

  /// Runs the app with the given flags (and optional lethal failpoint
  /// spec), returning the child's exit code.  Output goes to out_.
  int run(const std::string& flags, const std::string& failpoints = "") {
    std::string cmd;
    if (!failpoints.empty())
      cmd += "AFFOREST_FAILPOINTS='" + failpoints +
             "' AFFOREST_FAILPOINT_LETHAL=1 ";
    cmd += "'" + app_ + "' --dir '" + dir_.string() + "' " + flags + " > '" +
           out_ + "' 2>&1";
    const int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status)) return -1;
    return WEXITSTATUS(status);
  }

  std::string output() const {
    std::ifstream in(out_);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  /// The kill → recover/resume → verify cycle for one armed site.  The
  /// resume run and the verify run must both succeed, and verification
  /// must report the oracle match on the full workload.
  void sweep_site(const std::string& failpoints, const std::string& flags) {
    SCOPED_TRACE(failpoints);
    ASSERT_EQ(run(flags, failpoints), kFailpointLethalExit)
        << "the armed site did not kill the process; output:\n"
        << output();
    ASSERT_EQ(run(flags), 0) << "resume after the kill failed; output:\n"
                             << output();
    EXPECT_NE(output().find("recovered=1"), std::string::npos) << output();
    ASSERT_EQ(run(flags + " --recover-only --verify"), 0)
        << "verification failed; output:\n"
        << output();
    EXPECT_NE(output().find("verify: OK"), std::string::npos) << output();
  }

  std::string app_;
  std::filesystem::path dir_;
  std::string out_;
};

constexpr const char* kFlags =
    "--scale 7 --ops 24 --batch 6 --seed 9 --checkpoint-every 5 --no-fsync";
constexpr const char* kFsyncFlags =
    "--scale 7 --ops 24 --batch 6 --seed 9 --checkpoint-every 5";
constexpr const char* kWindowFlags =
    "--scale 7 --ops 24 --batch 6 --seed 9 --checkpoint-every 5 "
    "--window 3 --no-fsync";

TEST_F(DurableCrashTest, UninterruptedRunVerifies) {
  ASSERT_EQ(run(kFlags), 0) << output();
  ASSERT_EQ(run(std::string(kFlags) + " --recover-only --verify"), 0)
      << output();
  EXPECT_NE(output().find("verify: OK seq=24"), std::string::npos)
      << output();
}

TEST_F(DurableCrashTest, KilledMidAppendRecovers) {
  sweep_site("wal.append=@7", kFlags);
}

TEST_F(DurableCrashTest, KilledMidFsyncRecovers) {
  // fsync mode so the wal.fsync site sits on the append path.
  sweep_site("wal.fsync=@4", kFsyncFlags);
}

TEST_F(DurableCrashTest, KilledMidCheckpointWriteRecovers) {
  sweep_site("ckpt.write=@2", kFlags);
}

TEST_F(DurableCrashTest, KilledMidCheckpointRenameRecovers) {
  sweep_site("ckpt.rename=@1", kFlags);
}

TEST_F(DurableCrashTest, KilledMidManifestReplaceRecovers) {
  // Killed between the new checkpoint becoming durable and the manifest
  // swinging over: the old manifest must still name the old pair.  Hit 1
  // is bootstrap's manifest on the fresh directory, so arm hit 2 — the
  // first auto-checkpoint's swing.
  sweep_site("manifest.replace=@2", kFlags);
}

TEST_F(DurableCrashTest, KilledDuringReplayRecovers) {
  // Build a directory with a WAL suffix first, then kill the NEXT run
  // mid-replay: recovery itself must be killable and re-runnable.
  ASSERT_EQ(run(kFlags), 0) << output();
  ASSERT_EQ(run(std::string(kFlags) + " --recover-only",
                "recover.replay=@2"),
            kFailpointLethalExit)
      << output();
  ASSERT_EQ(run(std::string(kFlags) + " --recover-only --verify"), 0)
      << output();
  EXPECT_NE(output().find("verify: OK seq=24"), std::string::npos)
      << output();
}

TEST_F(DurableCrashTest, WindowedEngineSurvivesKills) {
  sweep_site("wal.append=@9", kWindowFlags);
}

TEST_F(DurableCrashTest, RepeatedKillsConvergeToTheFullWorkload) {
  // Kill three runs at different depths; each rerun resumes from the
  // durable seq.  The final state must be the complete 24-op workload.
  EXPECT_EQ(run(kFlags, "wal.append=@3"), kFailpointLethalExit) << output();
  EXPECT_EQ(run(kFlags, "wal.append=@5"), kFailpointLethalExit) << output();
  EXPECT_EQ(run(kFlags, "ckpt.write=@2"), kFailpointLethalExit) << output();
  ASSERT_EQ(run(std::string(kFlags) + " --verify"), 0) << output();
  EXPECT_NE(output().find("verify: OK seq=24"), std::string::npos)
      << output();
}

}  // namespace
}  // namespace afforest
