// Cross-module integration tests: generate → persist → reload → compute →
// verify pipelines, exercising the same paths the benchmark binaries and
// examples use.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "analysis/convergence.hpp"
#include "analysis/instrumented.hpp"
#include "cc/component_stats.hpp"
#include "cc/registry.hpp"
#include "cc/spanning_forest.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/generators/suite.hpp"
#include "util/platform.hpp"

namespace afforest {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_e2e_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(EndToEndTest, GenerateSaveLoadComputeVerify) {
  const Graph g = make_suite_graph("twitter", 10);
  write_serialized_graph(path("g.sg"), g);
  const Graph loaded = load_graph(path("g.sg"));
  const auto truth = union_find_cc(loaded);
  for (const auto& a : cc_algorithms())
    ASSERT_TRUE(labels_equivalent(a.run(loaded), truth)) << a.name;
}

TEST_F(EndToEndTest, EdgeListFileFeedsEveryAlgorithm) {
  const Graph g = make_suite_graph("kron", 9);
  EdgeList<std::int32_t> edges;
  for (std::int64_t u = 0; u < g.num_nodes(); ++u)
    for (std::int32_t v : g.out_neigh(static_cast<std::int32_t>(u)))
      if (static_cast<std::int32_t>(u) < v)
        edges.push_back({static_cast<std::int32_t>(u), v});
  write_edge_list(path("g.el"), edges);
  const Graph loaded = load_graph(path("g.el"));
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  // Compare within `loaded`: the .el format infers num_nodes from the
  // largest endpoint, so trailing isolated vertices of `g` (possible in
  // any random family) are not representable and the label arrays for
  // `g` and `loaded` can legitimately differ in length.
  EXPECT_TRUE(labels_equivalent(cc_algorithm("afforest").run(loaded),
                                union_find_cc(loaded)));
}

TEST_F(EndToEndTest, RoundTripPreservesComponentStructure) {
  const Graph g = make_suite_graph("osm-eur", 10);
  const auto before = summarize_components(union_find_cc(g));
  write_serialized_graph(path("o.sg"), g);
  const Graph loaded = load_graph(path("o.sg"));
  const auto after = summarize_components(union_find_cc(loaded));
  EXPECT_EQ(before.num_components, after.num_components);
  EXPECT_EQ(before.largest_size, after.largest_size);
}

TEST(Integration, SpanningForestDrivesConvergenceOptimum) {
  // The convergence module's optimal strategy must match a directly
  // extracted spanning forest in edge count.
  const Graph g = make_suite_graph("web", 9);
  const auto forest = spanning_forest(g);
  const auto truth = union_find_cc(g);
  EXPECT_EQ(static_cast<std::int64_t>(forest.size()),
            g.num_nodes() - count_components(truth));
}

TEST(Integration, ThreadCountDoesNotAffectResults) {
  const Graph g = make_suite_graph("kron", 10);
  const auto truth = union_find_cc(g);
  const int original = num_threads();
  for (int t : {1, 2, 4}) {
    set_num_threads(t);
    for (const auto& a : cc_algorithms())
      ASSERT_TRUE(labels_equivalent(a.run(g), truth))
          << a.name << " threads=" << t;
  }
  set_num_threads(original);
}

TEST(Integration, InstrumentedAndPlainAfforestAgree) {
  const Graph g = make_suite_graph("urand", 10);
  ComponentLabels<std::int32_t> instrumented_labels;
  afforest_instrumented(g, &instrumented_labels);
  EXPECT_TRUE(labels_equivalent(instrumented_labels,
                                cc_algorithm("afforest").run(g)));
}

TEST(Integration, ConvergenceFinalStateMatchesDirectCC) {
  const Graph g = make_suite_graph("twitter", 9);
  ConvergenceOptions opts;
  opts.strategy = PartitionStrategy::kRandomEdges;
  const auto pts = measure_convergence(g, opts);
  ASSERT_FALSE(pts.empty());
  EXPECT_DOUBLE_EQ(pts.back().linkage, 1.0);
  const auto truth_components = count_components(union_find_cc(g));
  EXPECT_EQ(count_components(cc_algorithm("afforest").run(g)),
            truth_components);
}

TEST(Integration, SuiteStatisticsAreReproducible) {
  // Regenerating a family twice must give identical stats (Table III
  // depends on this).
  for (const auto& e : graph_suite_entries()) {
    const Graph a = make_suite_graph(e.name, 9);
    const Graph b = make_suite_graph(e.name, 9);
    EXPECT_EQ(a.num_edges(), b.num_edges()) << e.name;
    EXPECT_EQ(count_components(union_find_cc(a)),
              count_components(union_find_cc(b)))
        << e.name;
  }
}

}  // namespace
}  // namespace afforest
