// In-process tests of the standalone-app driver protocol (apps/driver.hpp).
#include "apps/driver.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "tests/support/scoped_env.hpp"
#include "util/failpoint.hpp"

namespace afforest {
namespace {

using ::afforest::testing::ScopedEnv;

int run(const std::string& algo, std::initializer_list<const char*> args) {
  std::vector<char*> argv;
  static char prog[] = "app";
  argv.push_back(prog);
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return apps::run_cc_app(static_cast<int>(argv.size()), argv.data(), algo);
}

TEST(AppsDriver, GeneratedGraphRunsAndVerifies) {
  EXPECT_EQ(run("afforest", {"--generate", "kron", "--scale", "10",
                             "--trials", "2", "--verify"}),
            0);
}

TEST(AppsDriver, EveryRegisteredAlgorithmRuns) {
  for (const auto& a : cc_algorithms())
    EXPECT_EQ(run(a.name, {"--generate", "urand", "--scale", "9", "--trials",
                           "1", "--verify"}),
              0)
        << a.name;
}

TEST(AppsDriver, HelpReturnsZeroWithoutRunning) {
  EXPECT_EQ(run("sv", {"--help"}), 0);
}

TEST(AppsDriver, MissingFileIsReportedAsError) {
  EXPECT_EQ(run("afforest", {"--graph", "/nonexistent/g.el"}), 2);
}

TEST(AppsDriver, UnknownFamilyIsReportedAsError) {
  EXPECT_EQ(run("afforest", {"--generate", "not-a-family"}), 2);
}

// --fallback / exit-code taxonomy (0 ok, 1 failed, 2 usage-or-io,
// 3 degraded).  AFFOREST_MAX_ITER=1 forces a ConvergenceError from any
// fixpoint algorithm on a graph with at least one edge.

TEST(AppsDriverFallback, ForcedFailureWithoutFallbackExits1) {
  ScopedEnv env("AFFOREST_MAX_ITER", "1");
  EXPECT_EQ(run("sv", {"--generate", "urand", "--scale", "9", "--trials",
                       "1"}),
            apps::kExitFailed);
}

TEST(AppsDriverFallback, ForcedFailureWithFallbackDegradesAndExits3) {
  ScopedEnv env("AFFOREST_MAX_ITER", "1");
  EXPECT_EQ(run("sv", {"--generate", "urand", "--scale", "9", "--trials",
                       "1", "--fallback", "--verify"}),
            apps::kExitDegraded);
}

TEST(AppsDriverFallback, FallbackIsANoopOnHealthyRuns) {
  EXPECT_EQ(run("sv", {"--generate", "urand", "--scale", "9", "--trials",
                       "1", "--fallback", "--verify"}),
            0);
}

TEST(AppsDriverFallback, IoFailpointIsAUsageOrIoError) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("afforest_fallback_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto path = (dir / "g.el").string();
  write_edge_list(path, EdgeList<std::int32_t>{{0, 1}, {1, 2}});
  {
    ScopedEnv env("AFFOREST_FAILPOINTS", "io.read.open=1");
    failpoints_reload();
    EXPECT_EQ(run("sv", {"--graph", path.c_str(), "--trials", "1"}),
              apps::kExitUsageOrIo);
  }
  failpoints_reload();
  std::filesystem::remove_all(dir);
}

TEST(AppsDriverFallback, CorruptGraphFileExits2EvenWithFallback) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("afforest_corrupt_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto path = (dir / "bad.el").string();
  {
    std::ofstream out(path);
    out << "9999999999 1\n";  // id overflows 32-bit NodeID
  }
  EXPECT_EQ(run("sv", {"--graph", path.c_str(), "--fallback"}),
            apps::kExitUsageOrIo);
  std::filesystem::remove_all(dir);
}

TEST(AppsDriver, LoadsGraphFromFile) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("afforest_apps_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto path = (dir / "g.el").string();
  write_edge_list(path, EdgeList<std::int32_t>{{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(run("afforest",
                {"--graph", path.c_str(), "--trials", "1", "--verify"}),
            0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace afforest
