// The paper's qualitative claims, asserted on counted work (not wall
// time, so the suite is robust on loaded/serialized hosts).  Each test
// names the paper section it pins down.
#include <gtest/gtest.h>

#include "analysis/convergence.hpp"
#include "analysis/instrumented.hpp"
#include "analysis/locality.hpp"
#include "analysis/memtrace.hpp"
#include "analysis/work_counter.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/kronecker.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

// §I / §V-A: Afforest processes each edge once; SV reprocesses all edges
// every iteration.  Counted edge-work must favor Afforest on every family.
TEST(PaperClaims, AfforestEdgeWorkBelowSV) {
  for (const auto& e : graph_suite_entries()) {
    const Graph g = make_suite_graph(e.name, 11);
    const auto sv = shiloach_vishkin_instrumented(g);
    const auto aff = afforest_instrumented(g);
    const double sv_work = static_cast<double>(sv.iterations) *
                           static_cast<double>(g.num_stored_edges());
    EXPECT_LT(static_cast<double>(aff.local_iterations), sv_work) << e.name;
  }
}

// §V-A Table II: the average local iteration count of link stays ~1.
TEST(PaperClaims, AverageLinkIterationsNearOne) {
  for (const auto& e : graph_suite_entries()) {
    const Graph g = make_suite_graph(e.name, 11);
    const auto aff = afforest_instrumented(g);
    EXPECT_LT(aff.avg_local_iterations(), 1.5) << e.name;
  }
}

// §V-B Fig 6: after two neighbor rounds, linkage beats every other
// strategy at the same processed-edge budget on the web graph.
TEST(PaperClaims, NeighborSamplingDominatesAtTwoRounds) {
  const Graph g = make_suite_graph("web", 11);
  const auto nbr = measure_convergence(
      g, {.strategy = PartitionStrategy::kNeighborRounds});
  ASSERT_GE(nbr.size(), 2u);
  const auto& two_rounds = nbr[1];
  for (auto strat : {PartitionStrategy::kRowPartition,
                     PartitionStrategy::kRandomEdges}) {
    const auto pts = measure_convergence(g, {.strategy = strat});
    double best = 0;
    for (const auto& p : pts)
      if (p.pct_edges_processed <= two_rounds.pct_edges_processed + 1e-9)
        best = std::max(best, p.linkage);
    EXPECT_GT(two_rounds.linkage, best) << to_string(strat);
  }
}

// §IV-D: on graphs dominated by one giant component, skipping avoids the
// majority of stored edges.
TEST(PaperClaims, SkipAvoidsMajorityOfEdgesOnGiantComponentGraphs) {
  for (const auto* name : {"urand", "web", "twitter", "kron"}) {
    const Graph g = make_suite_graph(name, 12);
    const auto stats = afforest_with_work_stats(g);
    EXPECT_GT(stats.skip_fraction(g.num_stored_edges()), 0.5) << name;
  }
}

// §V-C Fig 7: SV touches π strictly more than Afforest, and Afforest's
// accesses are more sequential.
TEST(PaperClaims, MemoryAccessAdvantage) {
  const Graph g = make_suite_graph("urand", 11);
  const auto sv = run_traced_sv(g);
  const auto aff = run_traced_afforest(g);
  EXPECT_GT(sv.trace.total_accesses(), 2 * aff.trace.total_accesses());
  const auto sv_loc = compute_locality(sv.trace, -1, g.num_nodes());
  const auto aff_loc = compute_locality(aff.trace, -1, g.num_nodes());
  EXPECT_GT(aff_loc.sequential_fraction, sv_loc.sequential_fraction);
}

// §V-B Fig 6c: work (not time) of Afforest stays flat as average degree
// grows, while SV's grows linearly with it.
TEST(PaperClaims, DegreeSweepWorkShape) {
  std::vector<std::int64_t> aff_work, sv_work;
  for (int k : {2, 5}) {  // avg degree 4 vs 32
    const Graph g = build_undirected(
        generate_kronecker_edges<NodeID>(12, std::int64_t{1} << k, 42),
        std::int64_t{1} << 12);
    const auto aff = afforest_with_work_stats(g);
    aff_work.push_back(aff.total_linked());
    const auto sv = shiloach_vishkin_instrumented(g);
    sv_work.push_back(sv.iterations * g.num_stored_edges());
  }
  const double aff_growth = static_cast<double>(aff_work[1]) /
                            static_cast<double>(std::max<std::int64_t>(1, aff_work[0]));
  const double sv_growth = static_cast<double>(sv_work[1]) /
                           static_cast<double>(std::max<std::int64_t>(1, sv_work[0]));
  // 8x more edges: SV work scales with |E|; Afforest's linked-edge count
  // grows far slower (the extra edges land in the skipped giant).
  EXPECT_GT(sv_growth, 4.0);
  EXPECT_LT(aff_growth, sv_growth / 2.0);
}

// §VI headline: every algorithm, exact same partition, all families.
TEST(PaperClaims, ExactnessEverywhere) {
  for (const auto& e : graph_suite_entries()) {
    const Graph g = make_suite_graph(e.name, 10);
    const auto truth = union_find_cc(g);
    EXPECT_TRUE(labels_equivalent(afforest_cc(g), truth)) << e.name;
  }
}

}  // namespace
}  // namespace afforest
