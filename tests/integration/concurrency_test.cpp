// Concurrency determinism and stress: lock-free kernels must give the same
// partition on every run regardless of the OpenMP schedule, and Afforest's
// min-id label convention must make outputs bitwise identical.
#include <gtest/gtest.h>

#include "cc/afforest.hpp"
#include "cc/rem.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"
#include "graph/generators/uniform.hpp"
#include "util/platform.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(Concurrency, RepeatedAfforestRunsAreBitwiseIdentical) {
  const Graph g = make_suite_graph("kron", 11);
  const auto first = afforest_cc(g);
  for (int run = 0; run < 20; ++run) {
    const auto again = afforest_cc(g);
    for (std::size_t v = 0; v < first.size(); ++v)
      ASSERT_EQ(again[v], first[v]) << "run " << run << " v " << v;
  }
}

TEST(Concurrency, RemParallelRepeatedRunsStableUnderStress) {
  const Graph g = make_suite_graph("twitter", 10);
  const auto truth = union_find_cc(g);
  for (int run = 0; run < 20; ++run)
    ASSERT_TRUE(labels_equivalent(rem_cc_parallel(g), truth)) << run;
}

TEST(Concurrency, ThreadCountSweepIdenticalLabels) {
  const Graph g = make_suite_graph("web", 10);
  const auto reference = afforest_cc(g);
  const int original = num_threads();
  for (int t : {1, 2, 3, 4, 8}) {
    set_num_threads(t);
    const auto labels = afforest_cc(g);
    for (std::size_t v = 0; v < labels.size(); ++v)
      ASSERT_EQ(labels[v], reference[v]) << "threads " << t;
  }
  set_num_threads(original);
}

TEST(Concurrency, HighContentionSingleHub) {
  // Every edge touches the hub: maximal CAS contention on one root.
  const std::int64_t n = 1 << 14;
  EdgeList<NodeID> edges;
  for (NodeID i = 1; i < n; ++i) edges.push_back({0, i});
  const Graph g = build_undirected(edges, n);
  for (int run = 0; run < 5; ++run) {
    const auto comp = afforest_cc(g);
    ASSERT_EQ(count_components(comp), 1) << run;
    for (std::int64_t v = 0; v < n; ++v) ASSERT_EQ(comp[v], 0);
  }
}

TEST(Concurrency, InterleavedLinkAndCompressConverges) {
  // §III-B: compress may interleave with link phases in any pattern.
  const std::int64_t n = 1 << 12;
  const auto edges = generate_uniform_edges<NodeID>(n, 4 * n, 55);
  const auto truth = union_find_cc(edges, n);
  auto comp = identity_labels<NodeID>(n);
  const std::int64_t m = static_cast<std::int64_t>(edges.size());
  const std::int64_t stride = m / 7 + 1;
  for (std::int64_t start = 0; start < m; start += stride) {
    const std::int64_t end = std::min(m, start + stride);
#pragma omp parallel for schedule(static)
    for (std::int64_t i = start; i < end; ++i)
      link(edges[i].u, edges[i].v, comp);
    compress_all(comp);  // interleaved between subgraph phases
  }
  compress_all(comp);
  EXPECT_TRUE(labels_equivalent(comp, truth));
}

TEST(Concurrency, MixedAlgorithmsShareGraphConcurrently) {
  // Read-only graph shared by kernels launched back to back; results must
  // not depend on residual state (each kernel owns its labels).
  const Graph g = make_suite_graph("urand", 10);
  const auto truth = union_find_cc(g);
  const auto a = afforest_cc(g);
  const auto b = rem_cc_parallel(g);
  const auto c = afforest_no_skip(g);
  EXPECT_TRUE(labels_equivalent(a, truth));
  EXPECT_TRUE(labels_equivalent(b, truth));
  EXPECT_TRUE(labels_equivalent(c, truth));
}

}  // namespace
}  // namespace afforest
