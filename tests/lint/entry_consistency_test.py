#!/usr/bin/env python3
"""Drift guard for the afforest-lint entry points (lint_entry_consistency).

`tools/afforest-lint` (the executable shim) and `tools/afforest_lint/`
(the package) look like a near-duplicate pair but are an intentional
pairing: the shim is what scripts/CI invoke, the package is what tests
import.  This test pins the invariants that keep them one tool:

  * the shim sits next to the package, is executable, and resolves the
    adjacent package (not a stale copy elsewhere on sys.path)
  * `--version` output equals the package's `__version__`
  * `--list-codes` output equals `diagnostics.ALL_CODES`, in order, and
    every code has a non-empty description

Usage: entry_consistency_test.py <repo-root>
"""

from __future__ import annotations

import os
import subprocess
import sys
import unittest

if len(sys.argv) > 1 and not sys.argv[1].startswith("-"):
    _REPO = sys.argv.pop(1)
else:
    _REPO = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "..", "..")
_REPO = os.path.abspath(_REPO)
_SHIM = os.path.join(_REPO, "tools", "afforest-lint")
_PACKAGE = os.path.join(_REPO, "tools", "afforest_lint")

sys.path.insert(0, os.path.join(_REPO, "tools"))

import afforest_lint  # noqa: E402
from afforest_lint import diagnostics as diag  # noqa: E402


def shim(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, _SHIM, *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


class EntryConsistency(unittest.TestCase):
    def test_shim_and_package_are_adjacent(self):
        self.assertTrue(os.path.isfile(_SHIM), _SHIM)
        self.assertTrue(os.path.isdir(_PACKAGE), _PACKAGE)
        self.assertTrue(os.access(_SHIM, os.X_OK),
                        "shim must stay executable")
        # The import above must have resolved the adjacent package, not
        # some other afforest_lint on sys.path.
        self.assertEqual(
            os.path.dirname(os.path.abspath(afforest_lint.__file__)),
            _PACKAGE,
        )

    def test_shim_imports_the_package_by_name(self):
        with open(_SHIM, encoding="utf-8") as f:
            text = f.read()
        self.assertIn("from afforest_lint.cli import main", text)

    def test_version_matches_package(self):
        proc = shim("--version")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(proc.stdout.strip(), afforest_lint.__version__)

    def test_list_codes_matches_diagnostics_in_order(self):
        proc = shim("--list-codes")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        listed = [line.split(":", 1)[0]
                  for line in proc.stdout.splitlines() if ":" in line]
        self.assertEqual(listed, list(diag.ALL_CODES))

    def test_every_code_has_a_description(self):
        self.assertEqual(set(diag.ALL_CODES), set(diag.DESCRIPTIONS))
        for code, text in diag.DESCRIPTIONS.items():
            self.assertTrue(text.strip(), f"{code} has an empty description")

    def test_serve_rules_are_listed(self):
        expected = {
            "afforest-serve-writer-discipline",
            "afforest-serve-rcu-publication",
            "afforest-serve-durability-order",
            "afforest-serve-raw-posix",
            "afforest-serve-failpoint-coverage",
            "afforest-include-layering",
        }
        self.assertLessEqual(expected, set(diag.ALL_CODES))


if __name__ == "__main__":
    unittest.main(verbosity=2)
