#!/usr/bin/env python3
"""Unit tests for afforest-lint internals (the lint_engine_units ctest).

The corpus selftest pins end-to-end behavior per fixture file; these
tests pin the models underneath on synthetic inputs: the S3
call-sequence/ordering dataflow on token streams, the class/method model
(access sections, const/static, constructors), waiver parsing edge cases
(multi-line reasons, nested parens, empty reasons, NOLINT interplay),
and the layer map.  Stdlib unittest only — run directly or via ctest.

Usage: engine_unit_test.py <repo-root>
"""

from __future__ import annotations

import os
import sys
import unittest

if len(sys.argv) > 1 and not sys.argv[1].startswith("-"):
    _REPO = sys.argv.pop(1)
else:
    _REPO = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "..", "..")
sys.path.insert(0, os.path.join(_REPO, "tools"))

from afforest_lint import diagnostics as diag  # noqa: E402
from afforest_lint import engine, serve_rules  # noqa: E402

_SERVE_PATH = "src/serve/fixture.hpp"


def lint(text: str, path: str = _SERVE_PATH) -> list:
    return engine.analyze_text(text, path)


def codes(diags: list) -> list[str]:
    return [d.code for d in diags]


class CallSequenceModel(unittest.TestCase):
    """serve_rules.call_sequence on synthetic token streams."""

    def test_categories_in_source_order(self):
        stream = (
            "fd_write_all(f, p, d, n); fd_sync(f, p); "
            "rename_into_place(t, p); fsync_parent_dir(p); "
            "wal_->append(r); apply_batch(b); "
            "write_checkpoint(p, d); write_manifest(dir, m);"
        )
        cats = [c for _, c in serve_rules.call_sequence(stream)]
        self.assertEqual(
            cats,
            ["write", "sync", "rename", "dirsync", "append", "apply",
             "ckpt", "manifest"],
        )

    def test_base_offset_is_applied(self):
        events = serve_rules.call_sequence("fd_sync(f, p);", base=100)
        self.assertEqual(events, [(100, "sync")])

    def test_wal_receiver_spellings(self):
        for spelling in ("wal_->append(r)", "wal.append(r)",
                         "next_wal.append(r)"):
            events = serve_rules.call_sequence(spelling)
            self.assertEqual([c for _, c in events], ["append"], spelling)

    def test_append_definition_is_not_an_event(self):
        # The definition `void append(...)` has no wal receiver.
        events = serve_rules.call_sequence("void append(const Rec& r) {")
        self.assertEqual(events, [])

    def test_fd_truncate_counts_as_write(self):
        events = serve_rules.call_sequence("fd_truncate(f, p, n);")
        self.assertEqual([c for _, c in events], ["write"])

    def test_push_back_is_not_apply(self):
        events = serve_rules.call_sequence("out.push_back(apply_fn);")
        self.assertEqual(events, [])


class OrderingModel(unittest.TestCase):
    """serve_rules.ordering_violations over event sequences."""

    @staticmethod
    def violations(stream: str) -> list[str]:
        events = serve_rules.call_sequence(stream)
        return [m for _, m in serve_rules.ordering_violations(events)]

    def test_well_ordered_chain_is_clean(self):
        self.assertEqual(
            self.violations(
                "fd_write_all(a); fd_sync(a); rename_into_place(t, p); "
                "fsync_parent_dir(p);"
            ),
            [],
        )

    def test_rename_before_fsync_flags(self):
        out = self.violations(
            "fd_write_all(a); rename_into_place(t, p); fd_sync(a); "
            "fsync_parent_dir(p);"
        )
        self.assertEqual(len(out), 1)
        self.assertIn("write -> fsync -> rename", out[0])

    def test_rename_without_dirsync_flags(self):
        out = self.violations(
            "fd_write_all(a); fd_sync(a); rename_into_place(t, p);"
        )
        self.assertEqual(len(out), 1)
        self.assertIn("fsync_parent_dir", out[0])

    def test_rename_with_no_prior_write_needs_only_dirsync(self):
        self.assertEqual(
            self.violations("rename_into_place(t, p); fsync_parent_dir(p);"),
            [],
        )

    def test_manifest_before_checkpoint_flags(self):
        out = self.violations("write_manifest(d, m); write_checkpoint(p, c);")
        self.assertEqual(len(out), 1)
        self.assertIn("manifest", out[0])

    def test_checkpoint_then_manifest_is_clean(self):
        self.assertEqual(
            self.violations("write_checkpoint(p, c); write_manifest(d, m);"),
            [],
        )

    def test_apply_before_append_flags(self):
        out = self.violations("apply_batch(b); wal_->append(r);")
        self.assertEqual(len(out), 1)
        self.assertIn("journal-then-apply", out[0])

    def test_apply_only_function_is_clean(self):
        # Recovery replay applies without appending: no append, no rule.
        self.assertEqual(self.violations("apply_batch(b); apply(t, b);"), [])

    def test_violations_sorted_by_offset(self):
        events = serve_rules.call_sequence(
            "apply_batch(b); wal_->append(r); write_manifest(d, m); "
            "write_checkpoint(p, c);"
        )
        out = serve_rules.ordering_violations(events)
        self.assertEqual(len(out), 2)
        self.assertEqual(out, sorted(out))


class WriterDiscipline(unittest.TestCase):
    """S1 on synthetic classes via the full analyze_text pipeline."""

    def test_unlocked_public_mutator_flags(self):
        src = (
            "class DurableEngine {\n"
            " public:\n"
            "  void poke(int v) { staged_ = v; }\n"
            " private:\n"
            "  int staged_ = 0;\n"
            "};\n"
        )
        diags = lint(src)
        self.assertEqual(codes(diags), [diag.SERVE_WRITER_DISCIPLINE])
        self.assertEqual(diags[0].line, 3)

    def test_writer_lock_and_delegation_are_compliant(self):
        src = (
            "class DurableEngine {\n"
            " public:\n"
            "  DurableEngine(int n) { staged_ = n; }\n"
            "  void insert(int v) {\n"
            "    WriterLock guard(writer_active_, \"insert\");\n"
            "    staged_ = v;\n"
            "  }\n"
            "  void add_twice(int v) { insert(v); insert(v); }\n"
            " private:\n"
            "  std::atomic<bool> writer_active_{false};\n"
            "  int staged_ = 0;\n"
            "};\n"
        )
        self.assertEqual(codes(lint(src)), [])

    def test_static_and_private_methods_are_not_checked(self):
        src = (
            "class QueryEngine {\n"
            " public:\n"
            "  static int make(int n) { return n; }\n"
            " private:\n"
            "  void helper(int v) { staged_ = v; }\n"
            "  int staged_ = 0;\n"
            "};\n"
        )
        self.assertEqual(codes(lint(src)), [])

    def test_writer_flag_member_opts_a_class_in(self):
        src = (
            "class NotInTheNameList {\n"
            " public:\n"
            "  void poke(int v) { staged_ = v; }\n"
            " private:\n"
            "  std::atomic<bool> writer_active_{false};\n"
            "  int staged_ = 0;\n"
            "};\n"
        )
        self.assertEqual(codes(lint(src)), [diag.SERVE_WRITER_DISCIPLINE])

    def test_const_method_reading_writer_only_member_flags(self):
        src = (
            "class WindowedStream {\n"
            " public:\n"
            "  int peek() const { return cursor_; }\n"
            " private:\n"
            "  int cursor_ = 0;  ///< writer-only\n"
            "};\n"
        )
        diags = lint(src)
        self.assertEqual(codes(diags), [diag.SERVE_WRITER_DISCIPLINE])
        self.assertEqual(diags[0].line, 3)

    def test_const_method_reading_plain_member_is_clean(self):
        src = (
            "class WindowedStream {\n"
            " public:\n"
            "  int peek() const { return size_; }\n"
            " private:\n"
            "  int size_ = 0;\n"
            "  int cursor_ = 0;  ///< writer-only\n"
            "};\n"
        )
        self.assertEqual(codes(lint(src)), [])

    def test_non_engine_class_is_not_checked(self):
        src = (
            "class PlainHelper {\n"
            " public:\n"
            "  void poke(int v) { staged_ = v; }\n"
            " private:\n"
            "  int staged_ = 0;\n"
            "};\n"
        )
        self.assertEqual(codes(lint(src)), [])

    def test_outside_serve_scope_nothing_runs(self):
        src = (
            "class DurableEngine {\n"
            " public:\n"
            "  void poke(int v) { staged_ = v; }\n"
            " private:\n"
            "  int staged_ = 0;\n"
            "};\n"
        )
        self.assertEqual(codes(lint(src, path="src/cc/fixture.hpp")), [])


class WaiverParsing(unittest.TestCase):
    """Edge cases of the function-level waiver grammar."""

    @staticmethod
    def _engine_class(marker: str) -> str:
        return (
            "class DynamicCC {\n"
            " public:\n"
            + marker +
            "  void poke(int v) { staged_ = v; }\n"
            " private:\n"
            "  int staged_ = 0;\n"
            "};\n"
        )

    def test_reasoned_single_writer_waiver_suppresses(self):
        src = self._engine_class(
            "  // lint: single-writer(recovery-only seam)\n"
        )
        self.assertEqual(codes(lint(src)), [])

    def test_empty_reason_earns_w1_at_the_marker_line(self):
        src = self._engine_class("  // lint: single-writer()\n")
        diags = lint(src)
        self.assertEqual(codes(diags), [diag.WAIVER_MISSING_REASON])
        self.assertEqual(diags[0].line, 3)

    def test_multiline_reason_with_nested_parens(self):
        src = self._engine_class(
            "  // lint: single-writer(nested (parens) in a reason\n"
            "  // spanning two comment lines still parse)\n"
        )
        self.assertEqual(codes(lint(src)), [])

    def test_unterminated_reason_still_waives_with_text(self):
        # A reason whose close paren is forgotten: everything to the end
        # of the comment block is the reason (non-empty, so no W1).
        src = self._engine_class(
            "  // lint: single-writer(close paren forgotten\n"
        )
        self.assertEqual(codes(lint(src)), [])

    def test_waiver_attaches_to_the_next_function_only(self):
        src = (
            "class DynamicCC {\n"
            " public:\n"
            "  // lint: single-writer(covers only waived_one)\n"
            "  void waived_one(int v) { staged_ = v; }\n"
            "  void not_waived(int v) { staged_ = v; }\n"
            " private:\n"
            "  int staged_ = 0;\n"
            "};\n"
        )
        diags = lint(src)
        self.assertEqual(codes(diags), [diag.SERVE_WRITER_DISCIPLINE])
        self.assertEqual(diags[0].line, 5)

    def test_nolint_with_reason_suppresses_serve_codes(self):
        src = (
            "class DynamicCC {\n"
            " public:\n"
            "  void poke(int v) { staged_ = v; }"
            "  // NOLINT(afforest-serve-writer-discipline): test seam\n"
            " private:\n"
            "  int staged_ = 0;\n"
            "};\n"
        )
        self.assertEqual(codes(lint(src)), [])

    def test_nolint_without_reason_earns_w1(self):
        src = (
            "class DynamicCC {\n"
            " public:\n"
            "  void poke(int v) { staged_ = v; }"
            "  // NOLINT(afforest-serve-writer-discipline)\n"
            " private:\n"
            "  int staged_ = 0;\n"
            "};\n"
        )
        self.assertEqual(codes(lint(src)), [diag.WAIVER_MISSING_REASON])

    def test_failpoint_waiver_covers_all_sites_in_one_function(self):
        src = (
            "// lint: failpoint(bootstrap header write; orphan GC covers)\n"
            "inline void write_header(F& f) {\n"
            "  fd_write_all(f, p, d, n);\n"
            "  fd_sync(f, p);\n"
            "}\n"
        )
        self.assertEqual(codes(lint(src)), [])

    def test_durability_waiver_scopes_to_its_function(self):
        src = (
            "// lint: durability-order(slot swap; caller fsyncs the dir)\n"
            "inline void swap_slot(F& f) {\n"
            "  failpoint_maybe_fail(\"x\");\n"
            "  fd_write_all(f, p, d, n);\n"
            "  rename_into_place(t, p);\n"
            "}\n"
            "inline void second(F& f) {\n"
            "  failpoint_maybe_fail(\"y\");\n"
            "  fd_write_all(f, p, d, n);\n"
            "  rename_into_place(t, p);\n"
            "  fsync_parent_dir(p);\n"
            "}\n"
        )
        diags = lint(src)
        self.assertEqual(codes(diags), [diag.SERVE_DURABILITY_ORDER])
        self.assertEqual(diags[0].line, 10)


class RawPosixAndFailpoints(unittest.TestCase):
    def test_raw_call_flags_and_qualified_call_does_not(self):
        src = (
            "inline int raw(const char* p) { return ::open(p, 0); }\n"
            "template <typename R> auto ok(const char* p) {\n"
            "  return R::open(p);\n"
            "}\n"
        )
        diags = lint(src)
        self.assertEqual(codes(diags), [diag.SERVE_RAW_POSIX])
        self.assertEqual(diags[0].line, 1)

    def test_posix_file_itself_is_exempt(self):
        src = "inline int raw(const char* p) { return ::open(p, 0); }\n"
        self.assertEqual(
            codes(lint(src, path="src/serve/posix_file.hpp")), []
        )

    def test_uncovered_site_flags_per_line(self):
        src = (
            "inline void f(F& fd) {\n"
            "  fd_write_all(fd, p, d, n);\n"
            "  fd_sync(fd, p);\n"
            "}\n"
        )
        diags = lint(src)
        self.assertEqual(
            codes(diags),
            [diag.SERVE_FAILPOINT_COVERAGE, diag.SERVE_FAILPOINT_COVERAGE],
        )
        self.assertEqual([d.line for d in diags], [2, 3])

    def test_failpoint_triggered_also_counts_as_coverage(self):
        src = (
            "inline void f(F& fd) {\n"
            "  if (failpoint_triggered(\"x\")) return;\n"
            "  fd_sync(fd, p);\n"
            "}\n"
        )
        self.assertEqual(codes(lint(src)), [])


class RcuPublication(unittest.TestCase):
    def test_atomic_pointer_member_flags(self):
        src = "struct S { std::atomic<Snapshot*> slot{nullptr}; };\n"
        self.assertEqual(codes(lint(src)), [diag.SERVE_RCU_PUBLICATION])

    def test_snapshot_store_is_exempt(self):
        src = "struct S { std::atomic<Snapshot*> slot{nullptr}; };\n"
        self.assertEqual(
            codes(lint(src, path="src/serve/snapshot_store.hpp")), []
        )

    def test_atomic_scalar_member_is_clean(self):
        src = "struct S { std::atomic<std::uint64_t> epoch{0}; };\n"
        self.assertEqual(codes(lint(src)), [])

    def test_label_store_flags_but_read_does_not(self):
        src = (
            "template <typename V> void w(V& view) "
            "{ view.labels()[0] = 1; }\n"
            "template <typename V> bool r(const V& view) "
            "{ return view.labels()[0] == view.labels()[1]; }\n"
        )
        diags = lint(src)
        self.assertEqual(codes(diags), [diag.SERVE_RCU_PUBLICATION])
        self.assertEqual(diags[0].line, 1)


class LayerMap(unittest.TestCase):
    def test_file_layer_resolution(self):
        self.assertEqual(serve_rules.file_layer("src/cc/x.hpp", None), "cc")
        self.assertEqual(
            serve_rules.file_layer("src/serve/x.hpp", None), "serve"
        )
        self.assertEqual(
            serve_rules.file_layer("src/shard/x.hpp", None), "shard"
        )
        self.assertEqual(serve_rules.file_layer("apps/x.cpp", None), "apps")
        self.assertEqual(serve_rules.file_layer("bench/x.cpp", None), "bench")
        self.assertEqual(
            serve_rules.file_layer("tests/lint/corpus/x.hpp", "serve"),
            "serve",
        )
        self.assertIsNone(
            serve_rules.file_layer("tests/lint/corpus/x.hpp", None)
        )

    def test_cc_including_serve_flags(self):
        src = '#include "serve/query_engine.hpp"\n'
        diags = lint(src, path="src/cc/x.hpp")
        self.assertEqual(codes(diags), [diag.INCLUDE_LAYERING])
        self.assertEqual(diags[0].line, 1)

    def test_serve_including_bench_flags(self):
        src = '#include "bench/harness.hpp"\n'
        self.assertEqual(
            codes(lint(src, path="src/serve/x.hpp")),
            [diag.INCLUDE_LAYERING],
        )

    def test_downward_and_unmapped_includes_are_clean(self):
        src = (
            '#include <vector>\n'
            '#include "cc/afforest.hpp"\n'
            '#include "util/env.hpp"\n'
            '#include "third_party/unmapped.h"\n'
        )
        self.assertEqual(codes(lint(src, path="src/serve/x.hpp")), [])

    def test_shard_composes_serve_and_dist_but_not_vice_versa(self):
        # The coordinator may reach down into both planes it composes...
        src = (
            '#include "serve/query_engine.hpp"\n'
            '#include "dist/partitioned_cc.hpp"\n'
            '#include "shard/sharded_engine.hpp"\n'
        )
        self.assertEqual(codes(lint(src, path="src/shard/x.hpp")), [])
        # ...but neither plane may reach up into the coordinator.
        up = '#include "shard/sharded_engine.hpp"\n'
        self.assertEqual(
            codes(lint(up, path="src/serve/x.hpp")),
            [diag.INCLUDE_LAYERING],
        )
        self.assertEqual(
            codes(lint(up, path="src/dist/x.hpp")),
            [diag.INCLUDE_LAYERING],
        )

    def test_shard_scope_enforces_writer_discipline(self):
        # src/shard is serve-scope: S1 runs on the coordinator class too.
        src = (
            "class ShardedEngine {\n"
            " public:\n"
            "  void poke(int v) { staged_ = v; }\n"
            " private:\n"
            "  int staged_ = 0;\n"
            "};\n"
        )
        self.assertEqual(
            codes(lint(src, path="src/shard/fixture.hpp")),
            [diag.SERVE_WRITER_DISCIPLINE],
        )

    def test_every_layer_map_edge_is_reflexive_and_downward(self):
        for layer, allowed in serve_rules.LAYER_ALLOWED.items():
            self.assertIn(layer, allowed, f"{layer} cannot include itself")
        self.assertNotIn("serve", serve_rules.LAYER_ALLOWED["cc"])
        self.assertNotIn("serve", serve_rules.LAYER_ALLOWED["graph"])
        self.assertNotIn("bench", serve_rules.LAYER_ALLOWED["serve"])
        self.assertNotIn("apps", serve_rules.LAYER_ALLOWED["serve"])
        self.assertNotIn("shard", serve_rules.LAYER_ALLOWED["serve"])
        self.assertNotIn("shard", serve_rules.LAYER_ALLOWED["dist"])
        self.assertIn("ShardedEngine", serve_rules.SERVE_ENGINE_CLASSES)


class ClassModel(unittest.TestCase):
    def test_access_sections_and_nesting(self):
        src = (
            "class Outer {\n"
            " public:\n"
            "  class Inner {\n"
            "    void inner_private() {}\n"
            "  };\n"
            "  void outer_public() {}\n"
            " private:\n"
            "  void outer_private() {}\n"
            "};\n"
            "struct DefaultPublic { void m() {} };\n"
        )
        fa = engine.FileAnalysis("x.hpp", src)
        by_name = {f.name: f for f in fa.functions}
        outer = next(c for c in fa.classes if c.name == "Outer")
        inner = next(c for c in fa.classes if c.name == "Inner")
        pub = next(c for c in fa.classes if c.name == "DefaultPublic")
        self.assertIs(
            fa.class_of(by_name["inner_private"].sig_start), inner
        )
        self.assertEqual(
            inner.access_at(by_name["inner_private"].sig_start), "private"
        )
        self.assertEqual(
            outer.access_at(by_name["outer_public"].sig_start), "public"
        )
        self.assertEqual(
            outer.access_at(by_name["outer_private"].sig_start), "private"
        )
        self.assertEqual(pub.access_at(by_name["m"].sig_start), "public")

    def test_enum_class_is_not_a_class(self):
        fa = engine.FileAnalysis(
            "x.hpp", "enum class WalSync { kNone, kFsync };\n"
        )
        self.assertEqual(fa.classes, [])

    def test_const_and_static_detection(self):
        src = (
            "struct S {\n"
            "  int get() const noexcept { return v_; }\n"
            "  static int make(int x) { return x; }\n"
            "  void set(int x) { v_ = x; }\n"
            "  int v_ = 0;\n"
            "};\n"
        )
        fa = engine.FileAnalysis("x.hpp", src)
        by_name = {f.name: f for f in fa.functions}
        self.assertTrue(by_name["get"].is_const)
        self.assertFalse(by_name["get"].is_static)
        self.assertTrue(by_name["make"].is_static)
        self.assertFalse(by_name["set"].is_const)


if __name__ == "__main__":
    unittest.main(verbosity=2)
