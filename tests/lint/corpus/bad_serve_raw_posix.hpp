// Fixture: rule S4 (afforest-serve-raw-posix), bad half.
// Raw global-scope POSIX calls in serve scope outside posix_file.hpp
// flag; the checked wrappers centralize error taxonomy and failpoints.
// lint-scope: serve
#pragma once

#include <string>

namespace afforest::serve {

inline int open_raw(const std::string& path) {
  return ::open(path.c_str(), 0);  // BAD(afforest-serve-raw-posix)
}

inline void sync_raw(int fd) {
  ::fsync(fd);  // BAD(afforest-serve-raw-posix)
}

inline void seek_raw(int fd, long offset) {
  ::lseek(fd, offset, 0);  // BAD(afforest-serve-raw-posix)
}

}  // namespace afforest::serve
