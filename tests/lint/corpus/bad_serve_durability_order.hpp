// Fixture: rule S3 (afforest-serve-durability-order), bad half.
// Three deliberate ordering inversions: rename before the written bytes
// are fsynced (the classic torn-install bug), state applied before the
// WAL record is journaled, and the manifest replaced before the
// checkpoint it names is durable.
// lint-scope: serve
#pragma once

#include <string>

namespace afforest::serve {

inline void install_fsync_after_rename(const std::string& path,
                                       const void* data, std::size_t size) {
  const std::string tmp_path = path + ".tmp";
  FdFile tmp = fd_open(tmp_path, 0);
  failpoint_maybe_fail("fixture.install");
  fd_write_all(tmp, tmp_path, data, size);
  rename_into_place(tmp_path, path);  // BAD(afforest-serve-durability-order)
  fd_sync(tmp, path);
  fsync_parent_dir(path);
}

template <typename Wal, typename Batch>
void apply_before_journal(Wal& wal, const Batch& batch) {
  apply_batch(batch);  // BAD(afforest-serve-durability-order)
  wal.append(batch);
}

template <typename Manifest, typename Data>
void manifest_before_checkpoint(const std::string& dir, const Manifest& m,
                                const Data& data) {
  write_manifest(dir, m);  // BAD(afforest-serve-durability-order)
  write_checkpoint(dir + "/ckpt-1.afck", data);
}

}  // namespace afforest::serve
