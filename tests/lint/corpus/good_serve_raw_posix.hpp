// Fixture: rule S4 (afforest-serve-raw-posix), good half.
// Everything goes through the posix_file.hpp wrappers; a qualified
// static-member call like WalReader::open is not a raw syscall.  Must
// lint clean.
// lint-scope: serve
#pragma once

#include <string>

namespace afforest::serve {

inline void through_wrappers(const std::string& path) {
  FdFile fd = fd_open(path, 0);
  fd_seek(fd, path, 0);
}

template <typename WalReader>
auto qualified_member_call(const std::string& path) {
  return WalReader::open(path);
}

}  // namespace afforest::serve
