// Fixture: rule S2 (afforest-serve-rcu-publication), good half.
// Reader-visible state changes only by mutating the writer-side copy and
// republishing through SnapshotStore; readers acquire immutable views.
// Must lint clean.
// lint-scope: serve
#pragma once

#include <cstdint>
#include <utility>

namespace afforest::serve {

template <typename Store, typename Labels>
class PublishThroughStore {
 public:
  void republish(Labels next) {
    WriterLock guard(writer_active_, "PublishThroughStore::republish");
    live_ = std::move(next);
    store_.publish(live_);
  }

  [[nodiscard]] bool connected(std::int64_t u, std::int64_t v) const {
    const auto view = store_.acquire();
    return view.labels()[u] == view.labels()[v];
  }

 private:
  std::atomic<bool> writer_active_{false};
  Store store_;
  Labels live_;
};

}  // namespace afforest::serve
