// Fixture: the L3 hygiene rules.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <random>

namespace afforest {

// pvector by value copies the whole label array per call.
template <typename NodeID_>
std::int64_t copies_the_array(pvector<NodeID_> comp) {  // BAD(afforest-pvector-by-value)
  return static_cast<std::int64_t>(comp.size());
}

// ...but a sink parameter that is moved into place is fine.
template <typename NodeID_>
struct LabelsHolder {
  explicit LabelsHolder(pvector<NodeID_> labels) : labels_(std::move(labels)) {}
  pvector<NodeID_> labels_;
};

inline void raw_atomic_ref(std::uint64_t& word) {
  std::atomic_ref<std::uint64_t>(word).fetch_or(1u);  // BAD(afforest-atomic-ref-local)
}

inline std::uint64_t nondeterministic_seed() {
  std::random_device rd;  // BAD(afforest-rng-seed)
  return rd();
}

inline const char* raw_env_read() {
  return std::getenv("AFFOREST_THREADS");  // BAD(afforest-raw-getenv)
}

}  // namespace afforest
