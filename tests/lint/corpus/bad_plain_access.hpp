// Fixture: rule L1 (afforest-plain-shared-access).
// Plain subscripts of tracked shared arrays inside OpenMP parallel regions
// must be flagged; blessed accesses through the atomic helpers must not.
#pragma once

#include <cstdint>

namespace afforest {

template <typename NodeID_>
void plain_read_and_write(std::int64_t n, pvector<NodeID_>& comp) {
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < n; ++v) {
    if (comp[v] == static_cast<NodeID_>(0)) continue;  // BAD(afforest-plain-shared-access)
    comp[v] = static_cast<NodeID_>(v);  // BAD(afforest-plain-shared-access)
  }
}

template <typename NodeID_>
void blessed_accesses(std::int64_t n, pvector<NodeID_>& comp) {
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < n; ++v) {
    const NodeID_ p = atomic_load(comp[v]);
    if (p != static_cast<NodeID_>(v))
      compare_and_swap(comp[v], p, static_cast<NodeID_>(v));
    atomic_store(comp[v], atomic_fetch_min(comp[v], p));
  }
}

template <typename NodeID_>
void serial_access_is_fine(std::int64_t n, pvector<NodeID_>& comp) {
  for (std::int64_t v = 0; v < n; ++v) comp[v] = static_cast<NodeID_>(v);
}

// lint: parallel-context
template <typename NodeID_>
void helper_called_from_region(NodeID_ v, pvector<NodeID_>& comp) {
  comp[v] = v;  // BAD(afforest-plain-shared-access)
}

template <typename NodeID_>
void tracked_declaration(std::int64_t n) {
  ComponentLabels<NodeID_> labels(static_cast<std::size_t>(n));
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < n; ++v) {
    labels[v] = static_cast<NodeID_>(v);  // BAD(afforest-plain-shared-access)
#pragma omp critical
    { labels[v] = static_cast<NodeID_>(v); }  // relaxed inside omp critical
  }
}

}  // namespace afforest
