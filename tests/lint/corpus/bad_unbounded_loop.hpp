// Fixture: rule L2 (afforest-unbounded-fixpoint).
// lint-scope: cc    -- opt this fixture into the src/cc fixpoint rule.
#pragma once

#include <cstdint>

namespace afforest {

template <typename NodeID_>
void unguarded_fixpoint(pvector<NodeID_>& comp) {
  bool change = true;
  while (change) {  // BAD(afforest-unbounded-fixpoint)
    change = do_pass(comp);
  }
}

template <typename NodeID_>
void unguarded_do_while(pvector<NodeID_>& comp) {
  std::int64_t awake = 1;
  do {  // BAD(afforest-unbounded-fixpoint)
    awake = do_pass(comp);
  } while (awake > 0);
}

template <typename NodeID_>
void guarded_fixpoint(std::int64_t n, pvector<NodeID_>& comp) {
  const std::int64_t ceiling = iteration_ceiling(n);
  std::int64_t iter = 0;
  bool change = true;
  while (change) {
    ++iter;
    check_convergence_guard("guarded_fixpoint", iter, ceiling);
    change = do_pass(comp);
  }
}

template <typename NodeID_>
NodeID_ waived_fixpoint(NodeID_ v, const pvector<NodeID_>& pi) {
  // lint: bounded(walks a finite acyclic parent chain to its root)
  while (pi[v] != v) v = pi[v];
  return v;
}

}  // namespace afforest
