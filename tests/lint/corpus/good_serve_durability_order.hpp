// Fixture: rule S3 (afforest-serve-durability-order), good half.
// The full well-ordered chain — write -> fsync -> rename -> parent-dir
// fsync, journal before apply, checkpoint durable before the manifest
// names it — plus a reasoned durability-order waiver for a deliberate
// deviation.  Must lint clean.
// lint-scope: serve
#pragma once

#include <string>

namespace afforest::serve {

inline void install_well_ordered(const std::string& path,
                                 const void* data, std::size_t size) {
  const std::string tmp_path = path + ".tmp";
  FdFile tmp = fd_open(tmp_path, 0);
  failpoint_maybe_fail("fixture.install");
  fd_write_all(tmp, tmp_path, data, size);
  fd_sync(tmp, tmp_path);
  rename_into_place(tmp_path, path);
  fsync_parent_dir(path);
}

template <typename Wal, typename Batch>
void journal_then_apply(Wal& wal, const Batch& batch) {
  wal.append(batch);
  apply_batch(batch);
}

template <typename Manifest, typename Data>
void checkpoint_then_manifest(const std::string& dir, const Manifest& m,
                              const Data& data) {
  write_checkpoint(dir + "/ckpt-1.afck", data);
  write_manifest(dir, m);
}

// lint: durability-order(double-buffered slot: the superseded generation
// stays valid until the directory fsync in the caller publishes the new
// name, so the per-slot rename needs no preceding data fsync)
inline void waived_slot_swap(const std::string& slot,
                             const std::string& tmp_path,
                             const void* data, std::size_t size) {
  FdFile tmp = fd_open(tmp_path, 0);
  failpoint_maybe_fail("fixture.slot");
  fd_write_all(tmp, tmp_path, data, size);
  rename_into_place(tmp_path, slot);
}

}  // namespace afforest::serve
