// Fixture: rule L1 (afforest-plain-shared-access) — the incremental-CC
// audit pattern (PR 5 satellite).  A root() walk over a label array that a
// concurrent add_edge mutates must read through atomic_load: a plain load
// can tear or be hoisted, and the resulting stale root breaks the
// connectivity-monotonicity guarantee the serving layer documents.  The
// fixture pins both directions: the plain walk is flagged, the atomic
// validated-retry walk (what src/cc/incremental.hpp actually ships) is
// clean.
#pragma once

#include <cstdint>

namespace afforest {

// The buggy shape: plain subscripts of the shared label array inside a
// function called from query threads.
// lint: parallel-context
template <typename NodeID_>
NodeID_ plain_root_walk(NodeID_ v, pvector<NodeID_>& comp) {
  NodeID_ x = comp[v];  // BAD(afforest-plain-shared-access)
  while (x != comp[x])  // BAD(afforest-plain-shared-access)
    x = comp[x];  // BAD(afforest-plain-shared-access)
  return x;
}

// The buggy shape, query flavor: two plain-walk roots compared without
// re-validation.
// lint: parallel-context
template <typename NodeID_>
bool plain_connected(NodeID_ u, NodeID_ v, pvector<NodeID_>& comp) {
  return comp[u] == comp[v];  // BAD(afforest-plain-shared-access)
}

// The shipped shape: every shared read through atomic_load.  (Bounded
// retry/validation logic is orthogonal to the access rule and lives in
// cc/incremental.hpp.)
// lint: parallel-context
template <typename NodeID_>
NodeID_ atomic_root_walk(NodeID_ v, pvector<NodeID_>& comp) {
  NodeID_ x = atomic_load(comp[v]);
  while (atomic_load(comp[x]) != x) x = atomic_load(comp[x]);
  return x;
}

// lint: parallel-context
template <typename NodeID_>
bool atomic_validated_connected(NodeID_ u, NodeID_ v,
                                pvector<NodeID_>& comp) {
  for (;;) {
    const NodeID_ ru = atomic_root_walk(u, comp);
    const NodeID_ rv = atomic_root_walk(v, comp);
    if (ru == rv) return true;
    if (atomic_load(comp[ru]) == ru) return false;
  }
}

}  // namespace afforest
