// Fixture: include-layering rule (afforest-include-layering), bad half.
// A cc-layer file reaching up into the serving tier (or sideways into
// bench) inverts the dependency stack; the declared layer map forbids
// both edges.
// lint-layer: cc
#pragma once

#include "cc/afforest.hpp"
#include "graph/graph.hpp"
#include "serve/query_engine.hpp"  // BAD(afforest-include-layering)
#include "bench/harness.hpp"  // BAD(afforest-include-layering)
#include "util/env.hpp"

namespace afforest {

inline int layered_helper(int x) { return x; }

}  // namespace afforest
