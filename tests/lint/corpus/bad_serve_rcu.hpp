// Fixture: rule S2 (afforest-serve-rcu-publication), bad half.
// Roll-your-own RCU: an atomic published pointer outside SnapshotStore,
// direct access to a published-snapshot field, and an in-place store into
// published snapshot labels all flag.
// lint-scope: serve
#pragma once

#include <atomic>

namespace afforest::serve {

struct Snapshot {
  int epoch = 0;
};

class HandRolledStore {
 public:
  void swap_in(Snapshot* next) {
    std::atomic<Snapshot*> slot{next};  // BAD(afforest-serve-rcu-publication)
    slot.store(next);
  }

  Snapshot* read_side() {
    return published_;  // BAD(afforest-serve-rcu-publication)
  }

  template <typename View>
  void patch_published(View& view, int v, int root) {
    view.labels()[v] = root;  // BAD(afforest-serve-rcu-publication)
  }
};

}  // namespace afforest::serve
