// Fixture: rule S1 (afforest-serve-writer-discipline), good half.
// Public mutators either construct WriterLock themselves, delegate to a
// locked entry point, or carry a reasoned single-writer waiver; const
// readers only touch reader-safe members.  Must lint clean.
// lint-scope: serve
#pragma once

#include <atomic>

namespace afforest::serve {

class DynamicCC {
 public:
  void apply_inserts(int n) {
    WriterLock guard(writer_active_, "DynamicCC::apply_inserts");
    staged_ += n;
  }

  void apply_and_publish(int n) {
    apply_inserts(n);
    publish();
  }

  void publish() {
    WriterLock guard(writer_active_, "DynamicCC::publish");
    ++generation_;
  }

  // lint: single-writer(recovery-only: runs before the engine is shared
  // with any reader; the paired restore_state takes the writer lock and
  // the recovery path is single-threaded by construction)
  void set_epoch_floor(int floor) { floor_ = floor; }

  [[nodiscard]] int generation() const { return generation_; }

 private:
  std::atomic<bool> writer_active_{false};
  int staged_ = 0;
  int generation_ = 0;
  int floor_ = 0;  ///< writer-only
};

}  // namespace afforest::serve
