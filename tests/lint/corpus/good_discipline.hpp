// Fixture: a file following every discipline must produce ZERO
// diagnostics.  Exercises blessed atomic access, guarded and waived
// fixpoint loops, sink pvector parameters, and reasoned NOLINTs together.
// lint-scope: cc
#pragma once

#include <cstdint>
#include <utility>

namespace afforest {

// lint: parallel-context
template <typename NodeID_>
void link_like(NodeID_ u, NodeID_ v, pvector<NodeID_>& comp) {
  NodeID_ p1 = atomic_load(comp[u]);
  NodeID_ p2 = atomic_load(comp[v]);
  // lint: bounded(each retry strictly descends a finite acyclic parent chain)
  while (p1 != p2) {
    const NodeID_ high = p1 > p2 ? p1 : p2;
    const NodeID_ low = p1 > p2 ? p2 : p1;
    if (compare_and_swap(comp[high], high, low)) break;
    p1 = atomic_load(comp[high]);
    p2 = atomic_load(comp[low]);
  }
}

template <typename NodeID_>
void guarded_driver(std::int64_t n, pvector<NodeID_>& comp) {
  const std::int64_t ceiling = iteration_ceiling(n);
  std::int64_t iter = 0;
  bool change = true;
  while (change) {
    ++iter;
    check_convergence_guard("guarded_driver", iter, ceiling);
    change = false;
#pragma omp parallel for reduction(|| : change) schedule(static)
    for (std::int64_t v = 0; v + 1 < n; ++v) {
      if (atomic_fetch_min(comp[v + 1], atomic_load(comp[v]))) change = true;
    }
  }
}

template <typename NodeID_>
void init_labels(std::int64_t n, pvector<NodeID_>& comp) {
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < n; ++v)
    comp[v] = static_cast<NodeID_>(v);  // NOLINT(afforest-plain-shared-access): owner-exclusive init write, no other thread touches slot v
}

template <typename NodeID_>
struct SinkHolder {
  explicit SinkHolder(pvector<NodeID_> labels) : labels_(std::move(labels)) {}
  pvector<NodeID_> labels_;
};

}  // namespace afforest
