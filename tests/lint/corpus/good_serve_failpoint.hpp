// Fixture: rule S5 (afforest-serve-failpoint-coverage), good half.
// A durability site is covered when its function evaluates a registered
// failpoint (throwing or lethal — the sweep arms both), or when a
// reasoned failpoint waiver explains why no coverage is needed.  Must
// lint clean.
// lint-scope: serve
#pragma once

#include <string>

namespace afforest::serve {

inline void append_header_covered(const std::string& path,
                                  const void* data, std::size_t size) {
  FdFile fd = fd_open(path, 0);
  failpoint_maybe_fail("fixture.header.write");
  fd_write_all(fd, path, data, size);
  fd_sync(fd, path);
}

// lint: failpoint(idempotent tail truncation: dying here re-enters the
// same recovery scan with the same result, which the recover.replay
// sweep cells already exercise end to end)
inline void truncate_torn_tail(const std::string& path, std::uint64_t valid) {
  FdFile fd = fd_open(path, 0);
  fd_truncate(fd, path, valid);
  fd_sync(fd, path);
}

inline int no_sites_here(int x) { return x + 1; }

}  // namespace afforest::serve
