// Fixture: rule S5 (afforest-serve-failpoint-coverage), bad half.
// Durability sites (write/fsync wrapper calls) in a function that never
// evaluates a failpoint flag per site line: a crash the sweep cannot
// place is a recovery path that is never tested.
// lint-scope: serve
#pragma once

#include <string>

namespace afforest::serve {

inline void append_header_uncovered(const std::string& path,
                                    const void* data, std::size_t size) {
  FdFile fd = fd_open(path, 0);
  fd_write_all(fd, path, data, size);  // BAD(afforest-serve-failpoint-coverage)
  fd_sync(fd, path);  // BAD(afforest-serve-failpoint-coverage)
}

}  // namespace afforest::serve
