// Fixture: rule S1 (afforest-serve-writer-discipline), bad half.
// A public mutating method of a serving engine that neither constructs
// WriterLock nor delegates to a locked entry point flags; so does a const
// (reader-path) method that touches a writer-only member.  An empty
// single-writer() waiver still waives but earns W1.
// lint-scope: serve
#pragma once

#include <atomic>

namespace afforest::serve {

class QueryEngine {
 public:
  void clobber_staged(int v) {  // BAD(afforest-serve-writer-discipline)
    staged_ = v;
  }

  [[nodiscard]] int reader_peek() const {
    return staging_cursor_;  // BAD(afforest-serve-writer-discipline)
  }

  // lint: single-writer() BAD(afforest-waiver-missing-reason)
  void waived_without_reason(int v) { staged_ = v; }

 private:
  std::atomic<bool> writer_active_{false};
  int staged_ = 0;
  int staging_cursor_ = 0;  ///< writer-only
};

}  // namespace afforest::serve
