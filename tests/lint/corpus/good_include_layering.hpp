// Fixture: include-layering rule (afforest-include-layering), good half.
// A serve-layer file may reach down (cc, analysis, graph, util) and into
// itself; system headers and segments outside the layer map are ignored.
// Must lint clean.
// lint-layer: serve
#pragma once

#include <string>

#include "analysis/components.hpp"
#include "cc/afforest.hpp"
#include "graph/graph.hpp"
#include "serve/snapshot_store.hpp"
#include "third_party/unmapped.h"
#include "util/env.hpp"

namespace afforest::serve {

inline int layered_helper(int x) { return x; }

}  // namespace afforest::serve
