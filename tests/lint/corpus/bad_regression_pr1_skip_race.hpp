// Fixture: regression test for the PR 1 bug class.
//
// This snippet reverts the race fix applied to the skip-largest predicate
// (src/analysis/work_counter.hpp): the plain `comp[v] == c` read races with
// concurrent link() CASes on comp[v] — a mixed plain/atomic access that is
// UB even though any observed value would be acceptable.  The fixed code
// routes the read through should_skip(), which uses atomic_load.
// afforest-lint must flag the reverted form so the bug class cannot
// silently reappear.
#pragma once

#include <cstdint>

namespace afforest {

template <typename NodeID_>
void count_work_reverted(std::int64_t n, pvector<NodeID_>& comp, NodeID_ c) {
#pragma omp parallel for schedule(dynamic, 1024)
  for (std::int64_t v = 0; v < n; ++v) {
    if (comp[v] == c) continue;  // BAD(afforest-plain-shared-access)
    link(static_cast<NodeID_>(v), static_cast<NodeID_>(v + 1), comp);
  }
}

// The fixed formulation: the predicate reads through atomic_load (here
// inlined; in src/ it lives in should_skip()).  Must lint clean.
template <typename NodeID_>
void count_work_fixed(std::int64_t n, pvector<NodeID_>& comp, NodeID_ c) {
#pragma omp parallel for schedule(dynamic, 1024)
  for (std::int64_t v = 0; v < n; ++v) {
    if (atomic_load(comp[v]) == c) continue;
    link(static_cast<NodeID_>(v), static_cast<NodeID_>(v + 1), comp);
  }
}

}  // namespace afforest
