// Fixture: rule W1 (afforest-waiver-missing-reason).
// A waiver must always say WHY.  A NOLINT or bounded() without a reason
// still suppresses/waives the underlying diagnostic, but earns W1 instead.
// lint-scope: cc
#pragma once

#include <cstdint>

namespace afforest {

template <typename NodeID_>
void nolint_without_reason(std::int64_t n, pvector<NodeID_>& comp) {
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < n; ++v)
    comp[v] = static_cast<NodeID_>(v);  // NOLINT(afforest-plain-shared-access) BAD(afforest-waiver-missing-reason)
}

template <typename NodeID_>
NodeID_ bounded_without_reason(NodeID_ v, const pvector<NodeID_>& pi) {
  // lint: bounded()
  while (pi[v] != v) v = pi[v];  // BAD(afforest-waiver-missing-reason)
  return v;
}

template <typename NodeID_>
void nolint_with_reason(std::int64_t n, pvector<NodeID_>& comp) {
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < n; ++v)
    comp[v] = static_cast<NodeID_>(v);  // NOLINT(afforest-plain-shared-access): owner-exclusive init write
}

}  // namespace afforest
