// Mixed insert/delete differential fuzzing for the decremental engine
// (serve/dynamic_cc.hpp), built on the dynamic mutation mode in
// fuzz_common.hpp: seeded corpus inputs are mutated into interleaved
// insert/delete scripts, replayed through DynamicCC in batches, and the
// live labels are checked against a from-scratch union-find oracle after
// every batch.  Disagreeing scripts shrink with ddmin and dump as
// replayable "+/- u v" text files (AFFOREST_FUZZ_REPLAY_DYN), mirroring the
// static oracle's dump/replay loop.
//
// Budget control is shared with the static harness: AFFOREST_FUZZ_BUDGET
// scales seeds per (family, scale) cell for the sanitizer CI jobs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_common.hpp"

namespace afforest::fuzz {
namespace {

TEST(DynamicFuzz, MixedScriptsAgreeWithOracleAcrossCorpus) {
  // Families chosen for decremental stress: the bridge-heavy shapes (grid,
  // path, star) where deletions cut tree edges constantly, plus dense and
  // degenerate shapes (duplicates, self loops) for the certified-free
  // paths.
  const std::vector<std::string> families = {
      "road",          "lattice-sparse", "urand",      "smallworld",
      "path-reversed", "star-reversed",  "self-loops", "multi-edges",
  };
  std::vector<std::string> reports;
  for (const std::string& family : families) {
    for (const int scale : {4, 6}) {
      for (int s = 0; s < seeds_per_cell(); ++s) {
        const auto seed = static_cast<std::uint64_t>(1000 * scale + s);
        const DynInput in = make_dynamic_input(family, scale, seed);
        if (auto m = check_dynamic(in)) reports.push_back(m->report());
      }
    }
  }
  for (const auto& r : reports) ADD_FAILURE() << r;
}

TEST(DynamicFuzz, HarnessSelfTestBrokenCertificationIsCaught) {
  // Teeth for the fuzz oracle itself: with the engine's deliberate
  // mis-certification knob on (tree-edge deletions treated as free), the
  // oracle must flag a bridge-heavy script.  If this fails, a silently
  // broken classifier would sail through the corpus test above.
  const DynInput in = make_dynamic_input("path-reversed", /*scale=*/5,
                                         /*seed=*/3);
  EXPECT_TRUE(dynamic_disagrees(in.ops, in.num_nodes, in.batch_size,
                                /*break_certification=*/true));
  // And the healthy engine passes the identical script.
  EXPECT_FALSE(dynamic_disagrees(in.ops, in.num_nodes, in.batch_size));
}

TEST(DynamicFuzz, ScriptDumpRoundTrips) {
  const DynInput in = make_dynamic_input("urand", /*scale=*/4, /*seed=*/11);
  const std::string path = dump_dir() + "/dynamic-fuzz-roundtrip.ops";
  ASSERT_TRUE(write_dyn_script(path, in, in.ops));
  const auto back = read_dyn_script(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_nodes, in.num_nodes);
  EXPECT_EQ(back->batch_size, in.batch_size);
  ASSERT_EQ(back->ops.size(), in.ops.size());
  for (std::size_t i = 0; i < in.ops.size(); ++i) {
    EXPECT_EQ(back->ops[i].is_delete, in.ops[i].is_delete);
    EXPECT_EQ(back->ops[i].e, in.ops[i].e);
  }
  std::remove(path.c_str());
}

TEST(DynamicFuzz, MinimizerShrinksAndPreservesDisagreement) {
  // ddmin must keep the "disagrees" property while shrinking.  We build a
  // synthetic failing scenario by replaying a healthy script against a
  // WRAPPED disagreement predicate (the broken-certification engine), so
  // the minimizer has a real signal without needing a bug in the engine:
  // the minimized script must still disagree under the broken engine.
  DynInput in = make_dynamic_input("path-reversed", /*scale=*/5, /*seed=*/7);
  ASSERT_TRUE(dynamic_disagrees(in.ops, in.num_nodes, in.batch_size,
                                /*break_certification=*/true));
  // Reuse the generic loop by temporarily viewing the broken engine as the
  // system under test: minimize manually with the same chunk-removal rule.
  DynScript current = in.ops;
  std::size_t granularity = 2;
  int checks = 0;
  while (current.size() >= 2 && checks < 256) {
    const std::size_t chunk =
        std::max<std::size_t>(1, current.size() / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < current.size() && checks < 256;
         start += chunk) {
      const std::size_t end = std::min(current.size(), start + chunk);
      DynScript candidate;
      for (std::size_t i = 0; i < current.size(); ++i)
        if (i < start || i >= end) candidate.push_back(current[i]);
      ++checks;
      if (dynamic_disagrees(candidate, in.num_nodes, in.batch_size, true)) {
        current = std::move(candidate);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) break;
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  EXPECT_LT(current.size(), in.ops.size());
  EXPECT_TRUE(dynamic_disagrees(current, in.num_nodes, in.batch_size, true));
  // A broken-certification failure needs at least an insert and a delete.
  EXPECT_GE(current.size(), 2u);
}

TEST(DynamicFuzzReplay, ReplaysDumpedScript) {
  // When AFFOREST_FUZZ_REPLAY_DYN names a dumped script, replay ONLY that
  // scenario (the debugging loop for a minimized reproducer).  Without the
  // variable this is a cheap self-check on a fresh dump.
  const char* replay = std::getenv("AFFOREST_FUZZ_REPLAY_DYN");
  DynInput in;
  if (replay != nullptr) {
    const auto parsed = read_dyn_script(replay);
    ASSERT_TRUE(parsed.has_value()) << "unreadable script: " << replay;
    in = *parsed;
  } else {
    in = make_dynamic_input("lattice-sparse", /*scale=*/5, /*seed=*/13);
  }
  EXPECT_FALSE(dynamic_disagrees(in.ops, in.num_nodes, in.batch_size))
      << "dynamic replay disagrees with the from-scratch oracle";
}

}  // namespace
}  // namespace afforest::fuzz
