// The fuzz harness is itself load-bearing test infrastructure, so its
// oracle plumbing, minimizer, and reproducer dump/replay loop get direct
// tests — driven with a deliberately broken "algorithm" so the failure
// path runs even while every real algorithm is correct.
#include <gtest/gtest.h>

#include <cstdlib>

#include "fuzz/fuzz_common.hpp"
#include "graph/io.hpp"

namespace afforest {
namespace {

using fuzz::FuzzInput;
using fuzz::NodeID;

/// An algorithm that never merges anything: wrong on any input with ≥ 1
/// non-self-loop edge, so the minimal reproducer is exactly one edge.
AlgorithmEntry broken_identity() {
  return {"broken-identity", "returns identity labels (test double)",
          [](const Graph& g) { return identity_labels<NodeID>(g.num_nodes()); }};
}

/// Correct except it ignores the lexicographically largest stored edge —
/// a "lost update" shaped bug, as a race would produce.
AlgorithmEntry broken_drops_edge() {
  return {"broken-drops-edge", "drops one edge (test double)",
          [](const Graph& g) {
            EdgeList<NodeID> edges;
            for (std::int64_t u = 0; u < g.num_nodes(); ++u)
              for (NodeID v : g.out_neigh(static_cast<NodeID>(u)))
                if (static_cast<NodeID>(u) < v)
                  edges.push_back({static_cast<NodeID>(u), v});
            std::size_t drop = 0;
            for (std::size_t i = 1; i < edges.size(); ++i)
              if (edges[drop] < edges[i]) drop = i;
            UnionFind<NodeID> uf(g.num_nodes());
            for (std::size_t i = 0; i < edges.size(); ++i)
              if (i != drop || edges.size() < 2)
                uf.unite(edges[i].u, edges[i].v);
            return uf.labels();
          }};
}

TEST(FuzzHarness, OracleAcceptsEveryRealAlgorithmOnASmokeInput) {
  const FuzzInput in = fuzz::make_fuzz_input("urand", 8, 1);
  EXPECT_TRUE(fuzz::run_differential(in).empty());
}

TEST(FuzzHarness, DetectsBrokenAlgorithm) {
  const FuzzInput in = fuzz::make_fuzz_input("urand", 8, 2);
  EXPECT_TRUE(fuzz::algorithm_disagrees(broken_identity(), in.edges,
                                        in.num_nodes));
}

TEST(FuzzHarness, TreatsThrowingAlgorithmAsDisagreement) {
  const AlgorithmEntry thrower = {
      "broken-throws", "always throws (test double)",
      [](const Graph&) -> ComponentLabels<NodeID> {
        throw std::runtime_error("boom");
      }};
  const FuzzInput in = fuzz::make_fuzz_input("urand", 6, 3);
  EXPECT_TRUE(fuzz::algorithm_disagrees(thrower, in.edges, in.num_nodes));
}

TEST(FuzzHarness, MinimizerShrinksToSingleEdge) {
  FuzzInput in = fuzz::make_fuzz_input("urand", 9, 4);
  const auto minimized = fuzz::minimize_reproducer(broken_identity(), in);
  ASSERT_EQ(minimized.size(), 1u);
  // The shrunken input must still exhibit the failure.
  EXPECT_TRUE(fuzz::algorithm_disagrees(broken_identity(), minimized,
                                        in.num_nodes));
}

TEST(FuzzHarness, MinimizerKeepsLostUpdateWitness) {
  // A path: every edge is a bridge, so the dropped unite always changes
  // the partition (on dense inputs the largest edge is usually redundant
  // and the double would agree with the oracle).
  FuzzInput in = fuzz::make_fuzz_input("path-reversed", 9, 5);
  const auto minimized = fuzz::minimize_reproducer(broken_drops_edge(), in);
  EXPECT_LT(minimized.size(), in.edges.size());
  EXPECT_GE(minimized.size(), 2u);  // one edge alone is never dropped
  EXPECT_TRUE(fuzz::algorithm_disagrees(broken_drops_edge(), minimized,
                                        in.num_nodes));
}

TEST(FuzzHarness, MismatchDumpIsReplayable) {
  // End-to-end failure path: detect → minimize → dump → read back → the
  // reproducer still fails.  Dumps are routed into the gtest temp dir.
  const std::string dir = ::testing::TempDir();
  setenv("AFFOREST_FUZZ_DUMP_DIR", dir.c_str(), 1);
  const FuzzInput in = fuzz::make_fuzz_input("urand", 8, 6);
  const auto mismatch = fuzz::check_algorithm(broken_identity(), in);
  unsetenv("AFFOREST_FUZZ_DUMP_DIR");
  ASSERT_TRUE(mismatch.has_value());
  ASSERT_FALSE(mismatch->dump_path.empty());
  EXPECT_NE(mismatch->report().find("replay with"), std::string::npos);
  const auto replayed = read_edge_list(mismatch->dump_path);
  ASSERT_EQ(replayed.size(), mismatch->minimized_edges);
  EXPECT_TRUE(fuzz::algorithm_disagrees(
      broken_identity(), replayed, fuzz::reproducer_num_nodes(replayed)));
}

TEST(FuzzHarness, CleanAlgorithmProducesNoMismatch) {
  const FuzzInput in = fuzz::make_fuzz_input("kron", 8, 7);
  EXPECT_FALSE(fuzz::check_algorithm(cc_algorithm("afforest"), in).has_value());
}

TEST(FuzzHarness, BudgetParsesAndClamps) {
  setenv("AFFOREST_FUZZ_BUDGET", "25", 1);
  EXPECT_EQ(fuzz::fuzz_budget(), 25);
  setenv("AFFOREST_FUZZ_BUDGET", "0", 1);
  EXPECT_EQ(fuzz::fuzz_budget(), 1);
  setenv("AFFOREST_FUZZ_BUDGET", "9000", 1);
  EXPECT_EQ(fuzz::fuzz_budget(), 100);
  unsetenv("AFFOREST_FUZZ_BUDGET");
  EXPECT_EQ(fuzz::fuzz_budget(), 100);
  EXPECT_GE(fuzz::seeds_per_cell(), 1);
}

TEST(FuzzHarness, EveryFamilyDrawsDeterministically) {
  for (const auto& family : fuzz::fuzz_families()) {
    const FuzzInput a = fuzz::make_fuzz_input(family, 8, 42);
    const FuzzInput b = fuzz::make_fuzz_input(family, 8, 42);
    ASSERT_EQ(a.num_nodes, b.num_nodes) << family;
    ASSERT_EQ(a.edges.size(), b.edges.size()) << family;
    for (std::size_t i = 0; i < a.edges.size(); ++i)
      ASSERT_TRUE(a.edges[i] == b.edges[i]) << family << " edge " << i;
  }
}

TEST(FuzzHarness, UnknownFamilyThrows) {
  EXPECT_THROW(fuzz::make_fuzz_input("no-such-family", 8, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace afforest
