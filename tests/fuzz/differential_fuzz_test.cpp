// Differential fuzzing: every registry algorithm vs the serial union-find
// oracle, over the full generator corpus (family × scale × seed grid).
//
// A failure message contains the minimized reproducer's dump path and the
// exact replay command; see docs/TESTING.md ("Fuzz harness").
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "fuzz/fuzz_common.hpp"
#include "graph/io.hpp"
#include "util/env.hpp"

namespace afforest {
namespace {

using fuzz::FuzzInput;
using fuzz::Mismatch;

class DifferentialFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(DifferentialFuzz, AllAlgorithmsMatchOracle) {
  const auto& [family, scale] = GetParam();
  for (int s = 0; s < fuzz::seeds_per_cell(); ++s) {
    // Distinct fixed seeds per cell; nothing time- or host-dependent.
    const std::uint64_t seed = 0xFA57 + 1000003ULL * static_cast<std::uint64_t>(s);
    const FuzzInput in = fuzz::make_fuzz_input(family, scale, seed);
    for (const Mismatch& m : fuzz::run_differential(in))
      ADD_FAILURE() << m.report();
  }
}

std::string cell_name(
    const ::testing::TestParamInfo<DifferentialFuzz::ParamType>& info) {
  std::string family = std::get<0>(info.param);
  for (char& c : family)
    if (c == '-') c = '_';
  return family + "_s" + std::to_string(std::get<1>(info.param));
}

// 14 families × 3 sizes (acceptance floor: ≥ 6 families × ≥ 3 sizes).
INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialFuzz,
    ::testing::Combine(::testing::ValuesIn(fuzz::fuzz_families()),
                       ::testing::Values(7, 9, 11)),
    cell_name);

// Tiny scales get their own sweep: off-by-one bugs live at n ∈ {1, 2, 4}.
INSTANTIATE_TEST_SUITE_P(
    CorpusTiny, DifferentialFuzz,
    ::testing::Combine(::testing::ValuesIn(fuzz::fuzz_families()),
                       ::testing::Values(0, 1, 2)),
    cell_name);

// Replay mode: AFFOREST_FUZZ_REPLAY=<dump.el> re-runs the full differential
// check on a dumped reproducer.  Skipped when the variable is unset.
TEST(DifferentialFuzzReplay, ReplaysDumpedReproducer) {
  const std::string path = env::as_string("AFFOREST_FUZZ_REPLAY");
  if (path.empty())
    GTEST_SKIP() << "set AFFOREST_FUZZ_REPLAY=<file.el> to replay a dump";
  FuzzInput in;
  in.family = "replay";
  in.seed = 0;
  in.edges = read_edge_list(path);
  in.num_nodes = fuzz::reproducer_num_nodes(in.edges);
  for (const Mismatch& m : fuzz::run_differential(in))
    ADD_FAILURE() << m.report();
}

}  // namespace
}  // namespace afforest
