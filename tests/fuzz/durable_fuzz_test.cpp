// Durability byte-corruption fuzzer: builds a pristine durable directory
// (checkpoint + WAL suffix + manifest), then per round corrupts ONE file —
// bit flips, byte overwrites, truncation, appended junk, zeroed ranges,
// and (WAL-specific) a duplicated tail — and attempts recovery.  The
// contract under test is "typed error or a correct prefix, never a silent
// wrong answer": recovery must either throw IoError or come up on some
// prefix of the journaled ops whose labels exactly match the from-scratch
// union-find oracle at the recovered seq.
//
// Deterministic (seeded Xoshiro256).  AFFOREST_FUZZ_BUDGET scales rounds;
// failing rounds dump the corrupted directory under AFFOREST_FUZZ_DUMP_DIR
// (default ".") for offline inspection with apps/durable --recover-only.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_common.hpp"
#include "serve/durable_engine.hpp"
#include "serve/durable_test_util.hpp"
#include "util/rng.hpp"

namespace afforest::serve {
namespace {

using ::afforest::serve::testing::DurableOp;
using ::afforest::serve::testing::make_workload;
using ::afforest::serve::testing::oracle_labels;
using ::afforest::serve::testing::to_edge_list;
using NodeID = std::int32_t;

constexpr std::int64_t kNodes = 40;
constexpr std::size_t kOps = 14;

std::vector<unsigned char> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void spit(const std::filesystem::path& path,
          const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// One seeded corruption.  Ops 0-4 mirror the io_fuzz mutator; op 5 is the
/// WAL-shaped attack the seq chain exists for — duplicating a tail slice
/// so CRC-valid records repeat.
void corrupt(std::vector<unsigned char>& bytes, Xoshiro256& rng) {
  const auto op = rng.next() % 6;
  switch (op) {
    case 0:  // flip one bit
      if (!bytes.empty()) {
        const auto i = rng.next() % bytes.size();
        bytes[i] ^= static_cast<unsigned char>(1u << (rng.next() % 8));
      }
      break;
    case 1:  // overwrite one byte
      if (!bytes.empty())
        bytes[rng.next() % bytes.size()] =
            static_cast<unsigned char>(rng.next() & 0xFF);
      break;
    case 2:  // truncate
      if (!bytes.empty()) bytes.resize(rng.next() % bytes.size());
      break;
    case 3: {  // append junk
      const auto extra = 1 + rng.next() % 24;
      for (std::uint64_t i = 0; i < extra; ++i)
        bytes.push_back(static_cast<unsigned char>(rng.next() & 0xFF));
      break;
    }
    case 4:  // zero a short range
      if (!bytes.empty()) {
        const auto start = rng.next() % bytes.size();
        const auto len = std::min<std::size_t>(bytes.size() - start,
                                               1 + rng.next() % 8);
        std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(start),
                  bytes.begin() + static_cast<std::ptrdiff_t>(start + len),
                  0);
      }
      break;
    default:  // duplicate a tail slice
      if (bytes.size() > 1) {
        const auto from = rng.next() % bytes.size();
        bytes.insert(bytes.end(),
                     bytes.begin() + static_cast<std::ptrdiff_t>(from),
                     bytes.end());
      }
      break;
  }
}

class DurableFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("afforest_durable_fuzz_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
    pristine_ = root_ / "pristine";
    victim_ = root_ / "victim";
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  static int rounds() { return std::max(30, 300 * fuzz::fuzz_budget() / 100); }

  DurableOptions victim_opts(std::uint64_t window) const {
    DurableOptions o;
    o.dir = victim_.string();
    o.window = window;
    o.sync = WalSync::kNone;
    return o;
  }

  /// Builds the pristine directory: the seeded workload with a mid-run
  /// checkpoint, so the manifest names a real checkpoint AND a WAL suffix
  /// with records — every durability file class is present to corrupt.
  std::vector<DurableOp> build_pristine(std::uint64_t window,
                                        std::uint64_t seed) {
    std::filesystem::remove_all(pristine_);
    std::filesystem::create_directories(pristine_);
    const auto ops = make_workload(kNodes, kOps, seed, window > 0);
    DurableOptions o;
    o.dir = pristine_.string();
    o.window = window;
    o.sync = WalSync::kNone;
    DurableEngine<NodeID> engine(kNodes, o);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      switch (ops[i].type) {
        case WalRecordType::kInsert:
          engine.insert(to_edge_list(ops[i].edges));
          break;
        case WalRecordType::kDelete:
          engine.erase(to_edge_list(ops[i].edges));
          break;
        case WalRecordType::kTick:
          engine.tick();
          break;
      }
      if (i == kOps / 2) engine.checkpoint();
    }
    return ops;
  }

  void reset_victim() const {
    std::filesystem::remove_all(victim_);
    std::filesystem::copy(pristine_, victim_);
  }

  /// Preserves the corrupted directory for offline replay and returns the
  /// dump location (mentioned in the failure message).
  std::string dump_reproducer(const std::string& tag, int round) const {
    const std::string dump = fuzz::dump_dir() + "/durable-fuzz-repro-" +
                             tag + "-r" + std::to_string(round);
    std::filesystem::remove_all(dump);
    std::filesystem::copy(victim_, dump);
    return dump;
  }

  /// One fuzz campaign over a single file class of the pristine directory.
  void fuzz_file(const std::string& name, const std::string& tag,
                 std::uint64_t window, const std::vector<DurableOp>& ops) {
    const std::vector<unsigned char> baseline = slurp(pristine_ / name);
    ASSERT_FALSE(baseline.empty()) << tag << ": missing baseline file";
    Xoshiro256 rng(0xD07AB1E5ull ^ std::hash<std::string>{}(tag));
    int recovered_count = 0;
    int rejected_count = 0;
    for (int round = 0; round < rounds(); ++round) {
      reset_victim();
      std::vector<unsigned char> mutated = baseline;
      const auto mutations = 1 + rng.next() % 3;
      for (std::uint64_t k = 0; k < mutations; ++k) corrupt(mutated, rng);
      spit(victim_ / name, mutated);
      try {
        DurableEngine<NodeID> engine(kNodes, victim_opts(window));
        // Recovery accepted the directory: the state it came up on must be
        // EXACTLY the oracle at the seq it claims — a wrong answer here is
        // the one unforgivable outcome.
        const std::uint64_t seq = engine.last_seq();
        ASSERT_LE(seq, ops.size())
            << tag << " round " << round << ": recovered seq " << seq
            << " beyond the journaled workload; repro: "
            << dump_reproducer(tag, round);
        const ComponentLabels<NodeID> got = engine.live_labels();
        const ComponentLabels<NodeID> want =
            oracle_labels(ops, static_cast<std::size_t>(seq), kNodes, window);
        for (std::size_t v = 0; v < got.size(); ++v)
          ASSERT_EQ(got[v], want[v])
              << tag << " round " << round << ": silent wrong answer at "
              << "vertex " << v << " (recovered seq " << seq
              << "); repro: " << dump_reproducer(tag, round);
        // Return to service: a recovered engine still journals.
        engine.insert(EdgeList<NodeID>{{0, 1}});
        ++recovered_count;
      } catch (const IoError&) {
        ++rejected_count;  // typed rejection: the other acceptable outcome
      } catch (const std::exception& e) {
        FAIL() << tag << " round " << round
               << ": non-IoError escaped recovery: " << e.what()
               << "; repro: " << dump_reproducer(tag, round);
      }
    }
    // Both branches must be exercised, otherwise the campaign is vacuous
    // (e.g. a renamed file would make every round throw kOpenFailed).
    EXPECT_GT(rejected_count, 0) << tag;
    // WAL corruption usually survives via torn-tail truncation; manifest
    // and checkpoint corruption is usually fatal (full validation), so a
    // recovery count of zero is only suspicious for the WAL campaign.
    if (tag.rfind("wal", 0) == 0) EXPECT_GT(recovered_count, 0) << tag;
  }

  std::filesystem::path root_;
  std::filesystem::path pristine_;
  std::filesystem::path victim_;
};

TEST_F(DurableFuzzTest, WalCorruptionIsTypedOrCleanTruncation) {
  const auto ops = build_pristine(/*window=*/0, /*seed=*/71);
  // The live segment after the mid-run checkpoint is wal-(kOps/2 + 2).log.
  const std::string wal =
      "wal-" + std::to_string(kOps / 2 + 2) + ".log";
  ASSERT_TRUE(std::filesystem::exists(pristine_ / wal));
  fuzz_file(wal, "wal", 0, ops);
}

TEST_F(DurableFuzzTest, CheckpointCorruptionIsTypedOrExact) {
  const auto ops = build_pristine(/*window=*/0, /*seed=*/72);
  const std::string ckpt =
      "ckpt-" + std::to_string(kOps / 2 + 1) + ".afck";
  ASSERT_TRUE(std::filesystem::exists(pristine_ / ckpt));
  fuzz_file(ckpt, "ckpt", 0, ops);
}

TEST_F(DurableFuzzTest, ManifestCorruptionIsTypedOrExact) {
  const auto ops = build_pristine(/*window=*/0, /*seed=*/73);
  fuzz_file("MANIFEST", "manifest", 0, ops);
}

TEST_F(DurableFuzzTest, WindowedWalCorruptionIsTypedOrCleanTruncation) {
  const auto ops = build_pristine(/*window=*/3, /*seed=*/74);
  const std::string wal =
      "wal-" + std::to_string(kOps / 2 + 2) + ".log";
  ASSERT_TRUE(std::filesystem::exists(pristine_ / wal));
  fuzz_file(wal, "wal-windowed", 3, ops);
}

}  // namespace
}  // namespace afforest::serve
