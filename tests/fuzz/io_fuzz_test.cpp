// I/O byte-mutation fuzzer: round-trips write → corrupt → read for every
// on-disk format and asserts the hardened loaders never crash, never
// over-allocate, and never fail with anything but a typed IoError.  This
// extends the PR-1 concurrency harness to the ingestion layer; run it
// under the asan preset to give the "no UB" claim teeth.
//
// Deterministic: mutations are drawn from a seeded Xoshiro256.
// AFFOREST_FUZZ_BUDGET (1..100, see fuzz_common.hpp) scales the number of
// mutations per format.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/fuzz_common.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Applies one seeded mutation: bit flip, byte overwrite, truncation,
/// extension with junk, or zeroing a short range.
void mutate(std::vector<unsigned char>& bytes, Xoshiro256& rng) {
  const auto op = rng.next() % 5;
  switch (op) {
    case 0:  // flip one bit
      if (!bytes.empty()) {
        const auto i = rng.next() % bytes.size();
        bytes[i] ^= static_cast<unsigned char>(1u << (rng.next() % 8));
      }
      break;
    case 1:  // overwrite one byte
      if (!bytes.empty())
        bytes[rng.next() % bytes.size()] =
            static_cast<unsigned char>(rng.next() & 0xFF);
      break;
    case 2:  // truncate
      if (!bytes.empty()) bytes.resize(rng.next() % bytes.size());
      break;
    case 3: {  // append junk
      const auto extra = 1 + rng.next() % 16;
      for (std::uint64_t i = 0; i < extra; ++i)
        bytes.push_back(static_cast<unsigned char>(rng.next() & 0xFF));
      break;
    }
    default:  // zero a short range
      if (!bytes.empty()) {
        const auto start = rng.next() % bytes.size();
        const auto len = std::min<std::size_t>(
            bytes.size() - start, 1 + rng.next() % 8);
        std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(start),
                  bytes.begin() + static_cast<std::ptrdiff_t>(start + len),
                  0);
      }
      break;
  }
}

class IoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("afforest_io_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static int rounds() { return std::max(40, 400 * fuzz::fuzz_budget() / 100); }

  /// Fuzzes `reader` over mutations of `baseline`; `reader` must either
  /// succeed or throw IoError.  `tag` labels failures.
  template <typename Reader>
  void fuzz_format(const std::string& file, const std::string& tag,
                   Reader&& reader) {
    const std::vector<unsigned char> baseline = slurp(file);
    ASSERT_FALSE(baseline.empty()) << tag << ": baseline write produced "
                                   << "an empty file";
    // The unmutated baseline must parse: the fuzzer's "success" branch is
    // reachable, not vacuous.
    ASSERT_NO_THROW(reader(file)) << tag;
    Xoshiro256 rng(0xF00DF00Dull ^ std::hash<std::string>{}(tag));
    for (int round = 0; round < rounds(); ++round) {
      std::vector<unsigned char> mutated = baseline;
      const auto mutations = 1 + rng.next() % 3;
      for (std::uint64_t k = 0; k < mutations; ++k) mutate(mutated, rng);
      spit(file, mutated);
      try {
        reader(file);  // a surviving mutation is a legitimate file
      } catch (const IoError&) {
        // the only acceptable failure mode
      } catch (const std::exception& e) {
        FAIL() << tag << " round " << round
               << ": non-IoError escaped the loader: " << e.what();
      }
    }
  }

  std::filesystem::path dir_;
};

TEST_F(IoFuzzTest, SerializedGraphSurvivesByteMutations) {
  const auto edges = generate_uniform_edges<std::int32_t>(200, 800, 11);
  write_serialized_graph(path("g.sg"), build_undirected(edges, 200));
  fuzz_format(path("g.sg"), "sg", [](const std::string& p) {
    const Graph g = read_serialized_graph(p);
    // Walk the whole adjacency: ASan turns any OOB the validators missed
    // into a hard failure here.
    std::int64_t sum = 0;
    for (std::int64_t v = 0; v < g.num_nodes(); ++v)
      for (std::int32_t w : g.out_neigh(static_cast<std::int32_t>(v)))
        sum += w;
    (void)sum;
  });
}

TEST_F(IoFuzzTest, LabelsSurviveByteMutations) {
  pvector<std::int32_t> labels(300);
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<std::int32_t>(i % 17);
  write_labels(path("c.cl"), labels);
  fuzz_format(path("c.cl"), "cl", [](const std::string& p) {
    const auto back = read_labels(p);
    std::int64_t sum = 0;
    for (const auto l : back) sum += l;
    (void)sum;
  });
}

TEST_F(IoFuzzTest, EdgeListSurvivesByteMutations) {
  const auto edges = generate_uniform_edges<std::int32_t>(100, 400, 12);
  write_edge_list(path("g.el"), edges);
  // Read only — a mutated id can name vertex 2×10^9, so building the CSR
  // would be an (intended-behaviour) giant allocation, not a fuzz finding.
  fuzz_format(path("g.el"), "el",
              [](const std::string& p) { (void)read_edge_list(p); });
}

TEST_F(IoFuzzTest, MatrixMarketSurvivesByteMutations) {
  {
    std::ofstream out(path("g.mtx"));
    out << "%%MatrixMarket matrix coordinate pattern general\n";
    out << "50 50 49\n";
    for (int i = 1; i < 50; ++i) out << i << ' ' << i + 1 << '\n';
  }
  fuzz_format(path("g.mtx"), "mtx",
              [](const std::string& p) { (void)read_matrix_market(p); });
}

TEST_F(IoFuzzTest, LoadGraphDispatchSurvivesMutations) {
  const auto edges = generate_uniform_edges<std::int32_t>(64, 256, 13);
  write_serialized_graph(path("d.sg"), build_undirected(edges, 64));
  fuzz_format(path("d.sg"), "dispatch",
              [](const std::string& p) { (void)load_graph(p); });
}

}  // namespace
}  // namespace afforest
