// Schedule stress: shakes ordering and interleaving assumptions out of the
// lock-free kernels.
//
// Three axes (tentpole item 2):
//   - OpenMP thread counts and chunk sizes (afforest_balanced's planner);
//   - deliberate edge-order shuffles: the CSR is rebuilt UNSORTED from a
//     permuted edge list, so Afforest's neighbor-round sampling sees a
//     different edge subset every time — the partition must not care;
//   - std::thread phase drivers: unlike libgomp (which GCC does not
//     TSan-instrument), std::thread is fully intercepted, so these tests
//     are the ones that let the TSan preset actually observe the
//     concurrent link/link, compress/compress, and Rem-splice histories.
//     They are the regression tests for the data races fixed in this PR
//     (plain reads/writes in compress() and the SV hook, see afforest.hpp
//     and shiloach_vishkin.hpp).
//
// OpenMP sweeps are skipped under TSan: gcc's libgomp has no TSan
// annotations, so multi-threaded OpenMP regions produce false positives
// (documented in docs/TESTING.md; the TSan preset pins OMP_NUM_THREADS=1).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cc/afforest.hpp"
#include "cc/multistep.hpp"
#include "cc/registry.hpp"
#include "cc/rem.hpp"
#include "cc/shiloach_vishkin.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "exec/chunked.hpp"
#include "fuzz/fuzz_common.hpp"
#include "graph/builder.hpp"
#include "util/platform.hpp"
#include "util/rng.hpp"

namespace afforest {
namespace {

using fuzz::NodeID;

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTSan = true;
#else
constexpr bool kUnderTSan = false;
#endif

/// Seeded Fisher–Yates over an edge list.
EdgeList<NodeID> shuffled(const EdgeList<NodeID>& edges, std::uint64_t seed) {
  EdgeList<NodeID> out = edges.clone();
  Xoshiro256 rng(seed);
  for (std::size_t i = out.size(); i > 1; --i)
    std::swap(out[i - 1], out[rng.next_bounded(i)]);
  return out;
}

/// Runs fn(begin, end) on `nthreads` std::threads over a static partition
/// of [0, n) — an OpenMP-free "parallel for" whose synchronization TSan
/// fully understands.
template <typename Fn>
void run_on_threads(int nthreads, std::int64_t n, Fn fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  const std::int64_t per = (n + nthreads - 1) / nthreads;
  for (int t = 0; t < nthreads; ++t) {
    const std::int64_t begin = t * per;
    const std::int64_t end = std::min(n, begin + per);
    threads.emplace_back([=] {
      if (begin < end) fn(begin, end);
    });
  }
  for (auto& t : threads) t.join();
}

// ---------------------------------------------------------------------------
// OpenMP schedule sweeps (skipped under TSan, see header comment).
// ---------------------------------------------------------------------------

class ThreadSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    if (kUnderTSan && GetParam() > 1)
      GTEST_SKIP() << "libgomp is not TSan-instrumented";
    original_threads_ = num_threads();
    set_num_threads(GetParam());
  }
  void TearDown() override {
    if (original_threads_ > 0) set_num_threads(original_threads_);
  }
  int original_threads_ = 0;
};

TEST_P(ThreadSweep, EveryAlgorithmMatchesOracle) {
  const auto in = fuzz::make_fuzz_input("kron", 11, 7);
  const Graph g = build_undirected(in.edges, in.num_nodes);
  const auto truth = union_find_cc(g);
  for (const auto& algo : cc_algorithms())
    EXPECT_TRUE(labels_equivalent(algo.run(g), truth))
        << algo.name << " at " << GetParam() << " threads";
}

TEST_P(ThreadSweep, AfforestLabelsBitwiseStable) {
  // Min-id labeling makes the output independent of the schedule, not just
  // the partition — assert the stronger property across thread counts.
  const auto in = fuzz::make_fuzz_input("web", 10, 11);
  const Graph g = build_undirected(in.edges, in.num_nodes);
  const auto labels = afforest_cc(g);
  const auto oracle = union_find_cc(g);
  for (std::size_t v = 0; v < labels.size(); ++v)
    ASSERT_EQ(labels[v], oracle[v]) << "v=" << v;
}

TEST_P(ThreadSweep, MultistepMatchesOracle) {
  // Regression: multistep's step-2 read of comp[u] now uses atomic_load —
  // it races with concurrent atomic_fetch_min hooks otherwise.
  const auto in = fuzz::make_fuzz_input("component-mix", 11, 3);
  const Graph g = build_undirected(in.edges, in.num_nodes);
  EXPECT_TRUE(labels_equivalent(multistep_cc(g), union_find_cc(g)));
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(ChunkSweep, BalancedAfforestInvariantUnderChunkSize) {
  const auto in = fuzz::make_fuzz_input("kron", 11, 5);
  const Graph g = build_undirected(in.edges, in.num_nodes);
  const auto truth = union_find_cc(g);
  for (std::int64_t chunk : {std::int64_t{1}, std::int64_t{3}, std::int64_t{16},
                             std::int64_t{64}, std::int64_t{1024},
                             std::int64_t{1} << 20}) {
    EXPECT_TRUE(labels_equivalent(afforest_balanced(g, {}, chunk), truth))
        << "chunk_size=" << chunk;
  }
}

// ---------------------------------------------------------------------------
// Edge-order shuffles: the CSR is rebuilt UNSORTED from permuted edges, so
// neighbor order (and hence the sampled subgraph) changes per shuffle.
// ---------------------------------------------------------------------------

TEST(EdgeOrderShuffle, PartitionIndependentOfEdgeOrder) {
  const auto base = fuzz::make_fuzz_input("urand", 11, 21);
  const auto truth = union_find_cc(base.edges, base.num_nodes);
  BuilderOptions opts;
  opts.sort_neighbors = false;  // preserve the shuffled order in the CSR
  opts.remove_duplicates = false;
  const int shuffles = std::max(2, 6 * fuzz::fuzz_budget() / 100);
  for (int s = 0; s < shuffles; ++s) {
    const auto edges = shuffled(base.edges, 0xDEAD + s);
    const Graph g = Builder<NodeID>(opts).build(edges, base.num_nodes);
    for (std::int32_t rounds : {0, 1, 2, 5}) {
      AfforestOptions aopts;
      aopts.neighbor_rounds = rounds;
      EXPECT_TRUE(labels_equivalent(afforest_cc(g, aopts), truth))
          << "shuffle=" << s << " rounds=" << rounds;
    }
    EXPECT_TRUE(labels_equivalent(rem_cc_parallel(g), truth)) << s;
    EXPECT_TRUE(labels_equivalent(shiloach_vishkin(g), truth)) << s;
  }
}

TEST(EdgeOrderShuffle, AdversarialOrdersStayCorrect) {
  // §V-A worst-case orders, plus their reversals and shuffles.
  for (const char* family : {"star-reversed", "path-reversed"}) {
    const auto base = fuzz::make_fuzz_input(family, 11, 0);
    const auto truth = union_find_cc(base.edges, base.num_nodes);
    BuilderOptions opts;
    opts.sort_neighbors = false;
    opts.remove_duplicates = false;
    for (std::uint64_t s : {1u, 2u, 3u}) {
      const Graph g =
          Builder<NodeID>(opts).build(shuffled(base.edges, s), base.num_nodes);
      EXPECT_TRUE(labels_equivalent(afforest_cc(g), truth))
          << family << " shuffle " << s;
      EXPECT_TRUE(labels_equivalent(shiloach_vishkin_original(g), truth))
          << family << " shuffle " << s;
    }
  }
}

// ---------------------------------------------------------------------------
// std::thread phase drivers — the TSan-visible stress tests.
// ---------------------------------------------------------------------------

TEST(StdThreadStress, LinkThenCompressAnyShardingConvergesToOracle) {
  // Regression for the compress() data race: concurrent compress used plain
  // reads/writes of comp[] while sibling threads wrote the same entries.
  const std::int64_t n = 1 << 12;
  const int rounds = std::max(2, 6 * fuzz::fuzz_budget() / 100);
  for (int round = 0; round < rounds; ++round) {
    const auto edges =
        shuffled(generate_uniform_edges<NodeID>(n, 4 * n, 77 + round),
                 991 * round + 5);
    const auto truth = union_find_cc(edges, n);
    auto comp = identity_labels<NodeID>(n);
    const auto m = static_cast<std::int64_t>(edges.size());
    // Interleave link and compress phases (joins are the only barriers —
    // exactly the phase discipline afforest_cc uses).
    const std::int64_t stride = m / 3 + 1;
    for (std::int64_t start = 0; start < m; start += stride) {
      const std::int64_t end = std::min(m, start + stride);
      run_on_threads(4, end - start, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = start + lo; i < start + hi; ++i)
          link(edges[i].u, edges[i].v, comp);
      });
      run_on_threads(4, n, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t v = lo; v < hi; ++v)
          compress(static_cast<NodeID>(v), comp);
      });
    }
    run_on_threads(2, n, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t v = lo; v < hi; ++v)
        compress(static_cast<NodeID>(v), comp);
    });
    EXPECT_TRUE(labels_equivalent(comp, truth)) << "round " << round;
  }
}

TEST(StdThreadStress, InterleavedShardsOnAdversarialStar) {
  // Maximal contention: every edge fights over the hub's root.
  const auto in = fuzz::make_fuzz_input("star-reversed", 13, 0);
  const auto truth = union_find_cc(in.edges, in.num_nodes);
  auto comp = identity_labels<NodeID>(in.num_nodes);
  const auto m = static_cast<std::int64_t>(in.edges.size());
  run_on_threads(8, m, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i)
      link(in.edges[i].u, in.edges[i].v, comp);
  });
  run_on_threads(8, in.num_nodes, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t v = lo; v < hi; ++v)
      compress(static_cast<NodeID>(v), comp);
  });
  EXPECT_TRUE(labels_equivalent(comp, truth));
}

TEST(StdThreadStress, SvHookRoundsConvergeToOracle) {
  // Regression for the SV data races: the hook read comp[u]/comp[v] with
  // plain loads (racing the atomic_store hooks) and flagged `change` with a
  // plain shared write.  sv_hook_edge is the shared fixed primitive.
  const std::int64_t n = 1 << 12;
  const auto edges =
      shuffled(generate_uniform_edges<NodeID>(n, 4 * n, 123), 55);
  const auto truth = union_find_cc(edges, n);
  auto comp = identity_labels<NodeID>(n);
  const auto m = static_cast<std::int64_t>(edges.size());
  bool change = true;
  while (change) {
    std::atomic<bool> any{false};
    run_on_threads(4, m, [&](std::int64_t lo, std::int64_t hi) {
      bool local = false;
      for (std::int64_t i = lo; i < hi; ++i)
        if (sv_hook_edge(edges[i].u, edges[i].v, comp)) local = true;
      if (local) any.store(true, std::memory_order_relaxed);
    });
    run_on_threads(4, n, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t v = lo; v < hi; ++v)
        compress(static_cast<NodeID>(v), comp);
    });
    change = any.load();
  }
  EXPECT_TRUE(labels_equivalent(comp, truth));
}

TEST(StdThreadStress, RemSpliceConvergesToOracle) {
  const std::int64_t n = 1 << 12;
  const auto edges =
      shuffled(generate_uniform_edges<NodeID>(n, 4 * n, 321), 99);
  const auto truth = union_find_cc(edges, n);
  auto parent = identity_labels<NodeID>(n);
  const auto m = static_cast<std::int64_t>(edges.size());
  run_on_threads(4, m, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i)
      rem_unite_atomic(edges[i].u, edges[i].v, parent);
  });
  run_on_threads(4, n, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t v = lo; v < hi; ++v)
      compress(static_cast<NodeID>(v), parent);
  });
  EXPECT_TRUE(labels_equivalent(parent, truth));
}

}  // namespace
}  // namespace afforest
