// Differential fuzzing harness for the CC algorithm registry.
//
// The oracle is the serial union-find (union_find_cc): every registered
// algorithm must produce the SAME PARTITION on every input the generator
// corpus can draw.  The corpus spans all generator families in
// graph/generators/ plus degenerate/adversarial shapes the randomized
// families never emit (isolated vertices, self loops, duplicated edges,
// worst-case edge orders from §V-A).
//
// On a mismatch the harness shrinks the edge list with ddmin (keeping the
// "this algorithm disagrees with the oracle" property) and dumps the
// minimized reproducer as a text .el file, replayable either through
// AFFOREST_FUZZ_REPLAY (see differential_fuzz_test.cpp) or the apps/
// driver.  Everything is seeded; no run depends on wall clock or
// std::random_device.
//
// Budget control: AFFOREST_FUZZ_BUDGET is a percentage (1..100, default
// 100) that scales the number of seeds per (family, scale) cell, so the
// sanitizer CI jobs can run the same grid at reduced depth.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cc/registry.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators/adversarial.hpp"
#include "graph/generators/component_mix.hpp"
#include "graph/generators/geometric.hpp"
#include "graph/generators/kronecker.hpp"
#include "graph/generators/regular.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/smallworld.hpp"
#include "graph/generators/uniform.hpp"
#include "graph/generators/webgraph.hpp"
#include "graph/io.hpp"
#include "serve/dynamic_cc.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace afforest::fuzz {

using NodeID = std::int32_t;

/// AFFOREST_FUZZ_BUDGET as a percentage, clamped to [1, 100].
inline int fuzz_budget() {
  const auto v = env::as_int64("AFFOREST_FUZZ_BUDGET");
  if (!v) return 100;
  return static_cast<int>(std::clamp<std::int64_t>(*v, 1, 100));
}

/// Seeds fuzzed per (family, scale) cell at the current budget.
inline int seeds_per_cell() { return std::max(1, 3 * fuzz_budget() / 100); }

/// One drawn corpus entry: a seeded edge list plus its vertex-count bound.
struct FuzzInput {
  std::string family;
  int scale = 0;  ///< log2 of the vertex count
  std::uint64_t seed = 0;
  std::int64_t num_nodes = 0;
  EdgeList<NodeID> edges;
};

/// All corpus families.  The first six mirror the paper's Table III suite;
/// the rest are extended/degenerate shapes a randomized family never draws.
inline const std::vector<std::string>& fuzz_families() {
  static const std::vector<std::string> families = {
      "road",         "lattice-sparse", "kron",          "web",
      "urand",        "smallworld",     "rgg",           "regular",
      "component-mix", "star-reversed", "path-reversed", "isolated",
      "self-loops",   "multi-edges",
  };
  return families;
}

inline FuzzInput make_fuzz_input(const std::string& family, int scale,
                                 std::uint64_t seed) {
  FuzzInput in;
  in.family = family;
  in.scale = scale;
  in.seed = seed;
  const std::int64_t n = std::int64_t{1} << scale;
  in.num_nodes = n;
  if (family == "road") {
    const auto side =
        static_cast<std::int64_t>(std::max(1.0, std::sqrt(static_cast<double>(n))));
    in.num_nodes = side * side;
    in.edges = generate_road_edges<NodeID>(
        side, side, seed, {.keep_prob = 0.97, .shortcut_per_node = 0.005});
  } else if (family == "lattice-sparse") {
    const auto side =
        static_cast<std::int64_t>(std::max(1.0, std::sqrt(static_cast<double>(n))));
    in.num_nodes = side * side;
    in.edges = generate_road_edges<NodeID>(
        side, side, seed, {.keep_prob = 0.60, .shortcut_per_node = 0.0});
  } else if (family == "kron") {
    in.edges = generate_kronecker_edges<NodeID>(scale, 16, seed);
  } else if (family == "web") {
    in.edges = generate_web_edges<NodeID>(n, seed);
  } else if (family == "urand") {
    in.edges = generate_uniform_edges<NodeID>(n, 8 * n, seed);
  } else if (family == "smallworld") {
    // Ring degree must stay below n; n = 1 has no valid ring at all.
    if (n > 1)
      in.edges =
          generate_small_world_edges<NodeID>(n, std::min<std::int64_t>(4, n - 1),
                                             0.1, seed);
  } else if (family == "rgg") {
    // Threshold radius; clamped into the generator's (0, 1] domain (the
    // formula yields 0 at n = 1 and can exceed 1 at tiny n).
    const double r = 1.5 * std::sqrt(std::log(static_cast<double>(n)) /
                                     (3.14159265 * static_cast<double>(n)));
    in.edges = generate_geometric_edges<NodeID>(n, std::clamp(r, 0.05, 1.0),
                                                seed);
  } else if (family == "regular") {
    in.edges = generate_regular_edges<NodeID>(n, 8, seed);
  } else if (family == "component-mix") {
    // Clamp the fraction so tiny scales keep ≥ 1 vertex per component
    // (generate_component_mix_edges rejects empty components).
    const double fraction = std::max(0.05, 1.0 / static_cast<double>(n));
    in.edges = generate_component_mix_edges<NodeID>(n, 4.0, fraction, seed);
  } else if (family == "star-reversed") {
    // §V-A link worst case: hub is the highest index, leaves descending.
    in.edges = adversarial_star_edges<NodeID>(n);
  } else if (family == "path-reversed") {
    in.edges = adversarial_path_edges<NodeID>(n);
  } else if (family == "isolated") {
    // Pure isolated vertices: every label must stay a singleton.
    in.edges = EdgeList<NodeID>{};
  } else if (family == "self-loops") {
    // A path with a self loop on every vertex; the builder strips the
    // loops, and stripping must not change the partition.
    for (std::int64_t v = 0; v < n; ++v) {
      in.edges.push_back({static_cast<NodeID>(v), static_cast<NodeID>(v)});
      if (v + 1 < n)
        in.edges.push_back(
            {static_cast<NodeID>(v), static_cast<NodeID>(v + 1)});
    }
  } else if (family == "multi-edges") {
    // Uniform edges, each duplicated in both orientations: dedup pressure.
    const auto base = generate_uniform_edges<NodeID>(n, 2 * n, seed);
    for (const auto& [u, v] : base) {
      in.edges.push_back({u, v});
      in.edges.push_back({u, v});
      in.edges.push_back({v, u});
    }
  } else {
    throw std::invalid_argument("unknown fuzz family: " + family);
  }
  return in;
}

/// True iff `algo` disagrees with the serial oracle on (edges, num_nodes).
/// An exception thrown by the algorithm counts as a disagreement so the
/// minimizer also shrinks crashing inputs.
inline bool algorithm_disagrees(const AlgorithmEntry& algo,
                                const EdgeList<NodeID>& edges,
                                std::int64_t num_nodes) {
  try {
    const Graph g = build_undirected(edges, num_nodes);
    const auto oracle = union_find_cc(g);
    const auto got = algo.run(g);
    return !labels_equivalent(got, oracle);
  } catch (...) {
    return true;
  }
}

/// ddmin over the edge list: returns the smallest found edge subset on
/// which `algo` still disagrees with the oracle.  Bounded by `max_checks`
/// oracle evaluations so pathological cases cannot hang a test run.
inline EdgeList<NodeID> minimize_reproducer(const AlgorithmEntry& algo,
                                            const FuzzInput& in,
                                            int max_checks = 512) {
  EdgeList<NodeID> current = in.edges.clone();
  int checks = 0;
  std::size_t granularity = 2;
  while (current.size() >= 2 && checks < max_checks) {
    const std::size_t chunk =
        std::max<std::size_t>(1, current.size() / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < current.size() && checks < max_checks;
         start += chunk) {
      const std::size_t end = std::min(current.size(), start + chunk);
      EdgeList<NodeID> candidate;
      candidate.reserve(current.size() - (end - start));
      for (std::size_t i = 0; i < current.size(); ++i)
        if (i < start || i >= end) candidate.push_back(current[i]);
      ++checks;
      if (algorithm_disagrees(algo, candidate, in.num_nodes)) {
        current = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) break;
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  return current;
}

/// Number of vertices a replay needs: max referenced id + 1 (so dumped
/// reproducers stay minimal even when the original input was mostly
/// isolated vertices).
inline std::int64_t reproducer_num_nodes(const EdgeList<NodeID>& edges) {
  NodeID max_id = 0;
  for (const auto& [u, v] : edges) max_id = std::max({max_id, u, v});
  return static_cast<std::int64_t>(max_id) + 1;
}

/// A confirmed oracle disagreement, minimized and dumped for replay.
struct Mismatch {
  std::string algorithm;
  std::string family;
  int scale = 0;
  std::uint64_t seed = 0;
  std::size_t original_edges = 0;
  std::size_t minimized_edges = 0;
  std::string dump_path;  ///< empty if the dump could not be written

  [[nodiscard]] std::string report() const {
    std::ostringstream os;
    os << "algorithm '" << algorithm << "' disagrees with the union-find "
       << "oracle on family=" << family << " scale=" << scale
       << " seed=" << seed << " (" << original_edges
       << " edges, minimized to " << minimized_edges << ")";
    if (!dump_path.empty())
      os << "\nreproducer dumped to: " << dump_path
         << "\nreplay with: AFFOREST_FUZZ_REPLAY=" << dump_path
         << " ./tests/test_fuzz --gtest_filter='DifferentialFuzzReplay.*'";
    return os.str();
  }
};

/// Directory reproducers are dumped into (AFFOREST_FUZZ_DUMP_DIR, default
/// current working directory).
inline std::string dump_dir() { return env::as_string("AFFOREST_FUZZ_DUMP_DIR", "."); }

/// Runs one algorithm differentially; on disagreement minimizes + dumps.
inline std::optional<Mismatch> check_algorithm(const AlgorithmEntry& algo,
                                               const FuzzInput& in) {
  if (!algorithm_disagrees(algo, in.edges, in.num_nodes)) return std::nullopt;
  Mismatch m;
  m.algorithm = algo.name;
  m.family = in.family;
  m.scale = in.scale;
  m.seed = in.seed;
  m.original_edges = in.edges.size();
  const EdgeList<NodeID> minimized = minimize_reproducer(algo, in);
  m.minimized_edges = minimized.size();
  std::ostringstream path;
  path << dump_dir() << "/fuzz-repro-" << in.family << "-s" << in.scale
       << "-seed" << in.seed << "-" << algo.name << ".el";
  try {
    write_edge_list(path.str(), minimized);
    m.dump_path = path.str();
  } catch (...) {
    m.dump_path.clear();  // report still carries the (family, scale, seed)
  }
  return m;
}

/// Runs EVERY registered algorithm against the oracle on one input.
/// Returns all mismatches (empty = the input is clean).
inline std::vector<Mismatch> run_differential(const FuzzInput& in) {
  std::vector<Mismatch> out;
  for (const auto& algo : cc_algorithms())
    if (auto m = check_algorithm(algo, in)) out.push_back(std::move(*m));
  return out;
}

// ---- dynamic (mixed insert/delete) mutation mode --------------------------
// Same harness discipline as the static oracle above, aimed at the
// decremental engine (serve/dynamic_cc.hpp): a seeded corpus input is
// mutated into an operation SCRIPT — interleaved inserts and deletes —
// replayed through DynamicCC in batches, with the live labels compared
// against a from-scratch union-find over the surviving edge multiset after
// EVERY batch.  Deletes target previously-scripted edges (so re-deletions
// exercise the absent path) plus a sprinkle of never-inserted pairs.
// Mismatching scripts shrink with the same ddmin loop (any op subset is a
// valid script: deleting an absent edge is a defined no-op) and dump as a
// "+/- u v" text file replayable via AFFOREST_FUZZ_REPLAY_DYN.

/// One scripted operation: insert or delete of a single edge.
struct DynOp {
  bool is_delete = false;
  EdgePair<NodeID> e{0, 0};
};

using DynScript = std::vector<DynOp>;

/// A seeded dynamic scenario: the script plus its replay parameters.
struct DynInput {
  std::string family;
  int scale = 0;
  std::uint64_t seed = 0;
  std::int64_t num_nodes = 0;
  std::size_t batch_size = 32;
  DynScript ops;
};

/// Mutates a static corpus input into an interleaved insert/delete script.
inline DynInput make_dynamic_input(const std::string& family, int scale,
                                   std::uint64_t seed) {
  const FuzzInput base = make_fuzz_input(family, scale, seed);
  DynInput in;
  in.family = family;
  in.scale = scale;
  in.seed = seed;
  in.num_nodes = base.num_nodes;
  Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<EdgePair<NodeID>> pool;  // every edge the script has inserted
  for (const auto& e : base.edges) {
    in.ops.push_back({false, e});
    pool.push_back(e);
    const std::uint64_t roll = rng.next_bounded(8);
    if (roll < 3) {
      // Delete a previously scripted edge (possibly already deleted →
      // duplicate-copy and absent paths both get exercised).
      in.ops.push_back({true, pool[rng.next_bounded(pool.size())]});
    } else if (roll == 3 && in.num_nodes > 0) {
      // Delete a random pair that was most likely never inserted.
      const auto nn = static_cast<std::uint64_t>(in.num_nodes);
      in.ops.push_back({true,
                        {static_cast<NodeID>(rng.next_bounded(nn)),
                         static_cast<NodeID>(rng.next_bounded(nn))}});
    }
  }
  // Decremental tail: tear down half the pool so late batches are
  // delete-heavy (tree cuts and rebuilds, not just churn).
  for (std::size_t k = 0; k + 1 < pool.size(); k += 2)
    in.ops.push_back({true, pool[rng.next_bounded(pool.size())]});
  return in;
}

/// Replays `ops` through DynamicCC in batches and checks the live labels
/// against a from-scratch union-find over the surviving edge multiset after
/// every batch.  Labels must match EXACTLY (both sides use the min-vertex-id
/// convention), not just as partitions.  Exceptions count as disagreement so
/// the minimizer also shrinks crashing scripts.  `break_certification`
/// flips the engine's deliberate mis-certification knob — used by the
/// harness self-test to prove this oracle has teeth.
inline bool dynamic_disagrees(const DynScript& ops, std::int64_t num_nodes,
                              std::size_t batch_size,
                              bool break_certification = false) {
  if (num_nodes <= 0 || batch_size == 0) return false;
  try {
    serve::DynamicCC<NodeID> engine(num_nodes);
    engine.testing_certify_all_deletes_free(break_certification);
    std::map<std::pair<NodeID, NodeID>, std::uint32_t> surviving;
    for (std::size_t start = 0; start < ops.size(); start += batch_size) {
      const std::size_t stop = std::min(ops.size(), start + batch_size);
      EdgeList<NodeID> inserts;
      EdgeList<NodeID> deletes;
      for (std::size_t i = start; i < stop; ++i)
        (ops[i].is_delete ? deletes : inserts).push_back(ops[i].e);
      // A batch is one stream tick: ALL its inserts land first, then its
      // deletes — and the reference multiset follows the same order (an
      // in-op-order reference would disagree whenever a batch deletes an
      // edge it also inserts).
      for (const auto& [u, v] : inserts)
        ++surviving[std::pair<NodeID, NodeID>(std::minmax(u, v))];
      for (const auto& [u, v] : deletes) {
        const auto it =
            surviving.find(std::pair<NodeID, NodeID>(std::minmax(u, v)));
        if (it != surviving.end() && --(it->second) == 0) surviving.erase(it);
      }
      engine.apply_inserts(inserts);
      engine.apply_deletes(deletes);
      EdgeList<NodeID> edges;
      for (const auto& [key, copies] : surviving)
        edges.push_back({key.first, key.second});
      const auto oracle = union_find_cc(edges, num_nodes);
      const auto live = engine.live_labels();
      for (std::int64_t v = 0; v < num_nodes; ++v)
        if (live[static_cast<std::size_t>(v)] !=
            oracle[static_cast<std::size_t>(v)])
          return true;
    }
  } catch (...) {
    return true;
  }
  return false;
}

/// ddmin over the op script (same loop as minimize_reproducer; any subset
/// of a script is itself a valid script).
inline DynScript minimize_dyn_reproducer(const DynInput& in,
                                         int max_checks = 512) {
  DynScript current = in.ops;
  int checks = 0;
  std::size_t granularity = 2;
  while (current.size() >= 2 && checks < max_checks) {
    const std::size_t chunk =
        std::max<std::size_t>(1, current.size() / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < current.size() && checks < max_checks;
         start += chunk) {
      const std::size_t end = std::min(current.size(), start + chunk);
      DynScript candidate;
      candidate.reserve(current.size() - (end - start));
      for (std::size_t i = 0; i < current.size(); ++i)
        if (i < start || i >= end) candidate.push_back(current[i]);
      ++checks;
      if (dynamic_disagrees(candidate, in.num_nodes, in.batch_size)) {
        current = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) break;
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  return current;
}

/// Vertices a dynamic replay needs: max referenced id + 1.
inline std::int64_t reproducer_num_nodes_dyn(const DynScript& ops) {
  NodeID max_id = 0;
  for (const auto& op : ops) max_id = std::max({max_id, op.e.u, op.e.v});
  return static_cast<std::int64_t>(max_id) + 1;
}

/// Dumps a script as text: one op per line, "+ u v" (insert) or "- u v"
/// (delete), with a header comment carrying num_nodes and batch_size.
inline bool write_dyn_script(const std::string& path, const DynInput& in,
                             const DynScript& ops) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# afforest dynamic fuzz script\n"
      << "# nodes " << in.num_nodes << " batch " << in.batch_size << "\n";
  for (const auto& op : ops)
    out << (op.is_delete ? '-' : '+') << ' ' << op.e.u << ' ' << op.e.v
        << '\n';
  return static_cast<bool>(out);
}

/// Parses a dumped script.  Returns std::nullopt on any malformed line.
inline std::optional<DynInput> read_dyn_script(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) return std::nullopt;
  DynInput in;
  in.family = "replay";
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string word;
      if (header >> word && word == "nodes") {
        if (!(header >> in.num_nodes >> word >> in.batch_size))
          return std::nullopt;
      }
      continue;
    }
    std::istringstream fields(line);
    char sign = 0;
    DynOp op;
    if (!(fields >> sign >> op.e.u >> op.e.v)) return std::nullopt;
    if (sign != '+' && sign != '-') return std::nullopt;
    op.is_delete = sign == '-';
    in.ops.push_back(op);
  }
  if (in.num_nodes <= 0) in.num_nodes = reproducer_num_nodes_dyn(in.ops);
  if (in.batch_size == 0) in.batch_size = 32;
  return in;
}

/// A confirmed dynamic-oracle disagreement, minimized and dumped.
struct DynMismatch {
  std::string family;
  int scale = 0;
  std::uint64_t seed = 0;
  std::size_t original_ops = 0;
  std::size_t minimized_ops = 0;
  std::string dump_path;

  [[nodiscard]] std::string report() const {
    std::ostringstream os;
    os << "DynamicCC disagrees with the from-scratch union-find oracle on "
       << "family=" << family << " scale=" << scale << " seed=" << seed
       << " (" << original_ops << " ops, minimized to " << minimized_ops
       << ")";
    if (!dump_path.empty())
      os << "\nreproducer dumped to: " << dump_path
         << "\nreplay with: AFFOREST_FUZZ_REPLAY_DYN=" << dump_path
         << " ./tests/test_fuzz --gtest_filter='DynamicFuzzReplay.*'";
    return os.str();
  }
};

/// Runs the dynamic oracle on one scenario; on disagreement minimizes and
/// dumps the script.
inline std::optional<DynMismatch> check_dynamic(const DynInput& in) {
  if (!dynamic_disagrees(in.ops, in.num_nodes, in.batch_size))
    return std::nullopt;
  DynMismatch m;
  m.family = in.family;
  m.scale = in.scale;
  m.seed = in.seed;
  m.original_ops = in.ops.size();
  const DynScript minimized = minimize_dyn_reproducer(in);
  m.minimized_ops = minimized.size();
  std::ostringstream path;
  path << dump_dir() << "/fuzz-repro-dyn-" << in.family << "-s" << in.scale
       << "-seed" << in.seed << ".ops";
  if (write_dyn_script(path.str(), in, minimized)) m.dump_path = path.str();
  return m;
}

}  // namespace afforest::fuzz
