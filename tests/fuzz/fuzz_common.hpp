// Differential fuzzing harness for the CC algorithm registry.
//
// The oracle is the serial union-find (union_find_cc): every registered
// algorithm must produce the SAME PARTITION on every input the generator
// corpus can draw.  The corpus spans all generator families in
// graph/generators/ plus degenerate/adversarial shapes the randomized
// families never emit (isolated vertices, self loops, duplicated edges,
// worst-case edge orders from §V-A).
//
// On a mismatch the harness shrinks the edge list with ddmin (keeping the
// "this algorithm disagrees with the oracle" property) and dumps the
// minimized reproducer as a text .el file, replayable either through
// AFFOREST_FUZZ_REPLAY (see differential_fuzz_test.cpp) or the apps/
// driver.  Everything is seeded; no run depends on wall clock or
// std::random_device.
//
// Budget control: AFFOREST_FUZZ_BUDGET is a percentage (1..100, default
// 100) that scales the number of seeds per (family, scale) cell, so the
// sanitizer CI jobs can run the same grid at reduced depth.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <sstream>
#include <string>
#include <vector>

#include "cc/registry.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators/adversarial.hpp"
#include "graph/generators/component_mix.hpp"
#include "graph/generators/geometric.hpp"
#include "graph/generators/kronecker.hpp"
#include "graph/generators/regular.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/smallworld.hpp"
#include "graph/generators/uniform.hpp"
#include "graph/generators/webgraph.hpp"
#include "graph/io.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace afforest::fuzz {

using NodeID = std::int32_t;

/// AFFOREST_FUZZ_BUDGET as a percentage, clamped to [1, 100].
inline int fuzz_budget() {
  const auto v = env::as_int64("AFFOREST_FUZZ_BUDGET");
  if (!v) return 100;
  return static_cast<int>(std::clamp<std::int64_t>(*v, 1, 100));
}

/// Seeds fuzzed per (family, scale) cell at the current budget.
inline int seeds_per_cell() { return std::max(1, 3 * fuzz_budget() / 100); }

/// One drawn corpus entry: a seeded edge list plus its vertex-count bound.
struct FuzzInput {
  std::string family;
  int scale = 0;  ///< log2 of the vertex count
  std::uint64_t seed = 0;
  std::int64_t num_nodes = 0;
  EdgeList<NodeID> edges;
};

/// All corpus families.  The first six mirror the paper's Table III suite;
/// the rest are extended/degenerate shapes a randomized family never draws.
inline const std::vector<std::string>& fuzz_families() {
  static const std::vector<std::string> families = {
      "road",         "lattice-sparse", "kron",          "web",
      "urand",        "smallworld",     "rgg",           "regular",
      "component-mix", "star-reversed", "path-reversed", "isolated",
      "self-loops",   "multi-edges",
  };
  return families;
}

inline FuzzInput make_fuzz_input(const std::string& family, int scale,
                                 std::uint64_t seed) {
  FuzzInput in;
  in.family = family;
  in.scale = scale;
  in.seed = seed;
  const std::int64_t n = std::int64_t{1} << scale;
  in.num_nodes = n;
  if (family == "road") {
    const auto side =
        static_cast<std::int64_t>(std::max(1.0, std::sqrt(static_cast<double>(n))));
    in.num_nodes = side * side;
    in.edges = generate_road_edges<NodeID>(
        side, side, seed, {.keep_prob = 0.97, .shortcut_per_node = 0.005});
  } else if (family == "lattice-sparse") {
    const auto side =
        static_cast<std::int64_t>(std::max(1.0, std::sqrt(static_cast<double>(n))));
    in.num_nodes = side * side;
    in.edges = generate_road_edges<NodeID>(
        side, side, seed, {.keep_prob = 0.60, .shortcut_per_node = 0.0});
  } else if (family == "kron") {
    in.edges = generate_kronecker_edges<NodeID>(scale, 16, seed);
  } else if (family == "web") {
    in.edges = generate_web_edges<NodeID>(n, seed);
  } else if (family == "urand") {
    in.edges = generate_uniform_edges<NodeID>(n, 8 * n, seed);
  } else if (family == "smallworld") {
    // Ring degree must stay below n; n = 1 has no valid ring at all.
    if (n > 1)
      in.edges =
          generate_small_world_edges<NodeID>(n, std::min<std::int64_t>(4, n - 1),
                                             0.1, seed);
  } else if (family == "rgg") {
    // Threshold radius; clamped into the generator's (0, 1] domain (the
    // formula yields 0 at n = 1 and can exceed 1 at tiny n).
    const double r = 1.5 * std::sqrt(std::log(static_cast<double>(n)) /
                                     (3.14159265 * static_cast<double>(n)));
    in.edges = generate_geometric_edges<NodeID>(n, std::clamp(r, 0.05, 1.0),
                                                seed);
  } else if (family == "regular") {
    in.edges = generate_regular_edges<NodeID>(n, 8, seed);
  } else if (family == "component-mix") {
    // Clamp the fraction so tiny scales keep ≥ 1 vertex per component
    // (generate_component_mix_edges rejects empty components).
    const double fraction = std::max(0.05, 1.0 / static_cast<double>(n));
    in.edges = generate_component_mix_edges<NodeID>(n, 4.0, fraction, seed);
  } else if (family == "star-reversed") {
    // §V-A link worst case: hub is the highest index, leaves descending.
    in.edges = adversarial_star_edges<NodeID>(n);
  } else if (family == "path-reversed") {
    in.edges = adversarial_path_edges<NodeID>(n);
  } else if (family == "isolated") {
    // Pure isolated vertices: every label must stay a singleton.
    in.edges = EdgeList<NodeID>{};
  } else if (family == "self-loops") {
    // A path with a self loop on every vertex; the builder strips the
    // loops, and stripping must not change the partition.
    for (std::int64_t v = 0; v < n; ++v) {
      in.edges.push_back({static_cast<NodeID>(v), static_cast<NodeID>(v)});
      if (v + 1 < n)
        in.edges.push_back(
            {static_cast<NodeID>(v), static_cast<NodeID>(v + 1)});
    }
  } else if (family == "multi-edges") {
    // Uniform edges, each duplicated in both orientations: dedup pressure.
    const auto base = generate_uniform_edges<NodeID>(n, 2 * n, seed);
    for (const auto& [u, v] : base) {
      in.edges.push_back({u, v});
      in.edges.push_back({u, v});
      in.edges.push_back({v, u});
    }
  } else {
    throw std::invalid_argument("unknown fuzz family: " + family);
  }
  return in;
}

/// True iff `algo` disagrees with the serial oracle on (edges, num_nodes).
/// An exception thrown by the algorithm counts as a disagreement so the
/// minimizer also shrinks crashing inputs.
inline bool algorithm_disagrees(const AlgorithmEntry& algo,
                                const EdgeList<NodeID>& edges,
                                std::int64_t num_nodes) {
  try {
    const Graph g = build_undirected(edges, num_nodes);
    const auto oracle = union_find_cc(g);
    const auto got = algo.run(g);
    return !labels_equivalent(got, oracle);
  } catch (...) {
    return true;
  }
}

/// ddmin over the edge list: returns the smallest found edge subset on
/// which `algo` still disagrees with the oracle.  Bounded by `max_checks`
/// oracle evaluations so pathological cases cannot hang a test run.
inline EdgeList<NodeID> minimize_reproducer(const AlgorithmEntry& algo,
                                            const FuzzInput& in,
                                            int max_checks = 512) {
  EdgeList<NodeID> current = in.edges.clone();
  int checks = 0;
  std::size_t granularity = 2;
  while (current.size() >= 2 && checks < max_checks) {
    const std::size_t chunk =
        std::max<std::size_t>(1, current.size() / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < current.size() && checks < max_checks;
         start += chunk) {
      const std::size_t end = std::min(current.size(), start + chunk);
      EdgeList<NodeID> candidate;
      candidate.reserve(current.size() - (end - start));
      for (std::size_t i = 0; i < current.size(); ++i)
        if (i < start || i >= end) candidate.push_back(current[i]);
      ++checks;
      if (algorithm_disagrees(algo, candidate, in.num_nodes)) {
        current = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) break;
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  return current;
}

/// Number of vertices a replay needs: max referenced id + 1 (so dumped
/// reproducers stay minimal even when the original input was mostly
/// isolated vertices).
inline std::int64_t reproducer_num_nodes(const EdgeList<NodeID>& edges) {
  NodeID max_id = 0;
  for (const auto& [u, v] : edges) max_id = std::max({max_id, u, v});
  return static_cast<std::int64_t>(max_id) + 1;
}

/// A confirmed oracle disagreement, minimized and dumped for replay.
struct Mismatch {
  std::string algorithm;
  std::string family;
  int scale = 0;
  std::uint64_t seed = 0;
  std::size_t original_edges = 0;
  std::size_t minimized_edges = 0;
  std::string dump_path;  ///< empty if the dump could not be written

  [[nodiscard]] std::string report() const {
    std::ostringstream os;
    os << "algorithm '" << algorithm << "' disagrees with the union-find "
       << "oracle on family=" << family << " scale=" << scale
       << " seed=" << seed << " (" << original_edges
       << " edges, minimized to " << minimized_edges << ")";
    if (!dump_path.empty())
      os << "\nreproducer dumped to: " << dump_path
         << "\nreplay with: AFFOREST_FUZZ_REPLAY=" << dump_path
         << " ./tests/test_fuzz --gtest_filter='DifferentialFuzzReplay.*'";
    return os.str();
  }
};

/// Directory reproducers are dumped into (AFFOREST_FUZZ_DUMP_DIR, default
/// current working directory).
inline std::string dump_dir() { return env::as_string("AFFOREST_FUZZ_DUMP_DIR", "."); }

/// Runs one algorithm differentially; on disagreement minimizes + dumps.
inline std::optional<Mismatch> check_algorithm(const AlgorithmEntry& algo,
                                               const FuzzInput& in) {
  if (!algorithm_disagrees(algo, in.edges, in.num_nodes)) return std::nullopt;
  Mismatch m;
  m.algorithm = algo.name;
  m.family = in.family;
  m.scale = in.scale;
  m.seed = in.seed;
  m.original_edges = in.edges.size();
  const EdgeList<NodeID> minimized = minimize_reproducer(algo, in);
  m.minimized_edges = minimized.size();
  std::ostringstream path;
  path << dump_dir() << "/fuzz-repro-" << in.family << "-s" << in.scale
       << "-seed" << in.seed << "-" << algo.name << ".el";
  try {
    write_edge_list(path.str(), minimized);
    m.dump_path = path.str();
  } catch (...) {
    m.dump_path.clear();  // report still carries the (family, scale, seed)
  }
  return m;
}

/// Runs EVERY registered algorithm against the oracle on one input.
/// Returns all mismatches (empty = the input is clean).
inline std::vector<Mismatch> run_differential(const FuzzInput& in) {
  std::vector<Mismatch> out;
  for (const auto& algo : cc_algorithms())
    if (auto m = check_algorithm(algo, in)) out.push_back(std::move(*m));
  return out;
}

}  // namespace afforest::fuzz
