// Bench-harness tests: the trials clamp (a non-positive --trials must
// still execute the workload once), measure_counters isolation, and
// render_json's schema shape.  The harness is shared by every bench
// binary, so these are the regression net for the --json pipeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/telemetry.hpp"
#include "bench/harness.hpp"
#include "cc/afforest.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

TEST(TimeTrials, NonPositiveTrialCountStillRunsOnce) {
  // Regression test: trials <= 0 used to skip the loop entirely and
  // summarize an empty sample vector.
  for (const int trials : {0, -3}) {
    int runs = 0;
    const TrialSummary t = bench::time_trials([&] { ++runs; }, trials);
    EXPECT_EQ(runs, 1) << "trials=" << trials;
    EXPECT_EQ(t.trials, 1) << "trials=" << trials;
    EXPECT_GE(t.median_s, 0.0);
  }
}

TEST(TimeTrials, RunsRequestedTrials) {
  int runs = 0;
  const TrialSummary t = bench::time_trials([&] { ++runs; }, 4);
  EXPECT_EQ(runs, 4);
  EXPECT_EQ(t.trials, 4);
  EXPECT_LE(t.min_s, t.median_s);
  EXPECT_LE(t.median_s, t.max_s);
}

TEST(MeasureCounters, CapturesWithoutLeavingTelemetryArmed) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telemetry::set_enabled(false);
  const Graph g = make_suite_graph("kron", 10);
  const telemetry::Report report =
      bench::measure_counters([&] { afforest_cc(g); });
  EXPECT_GT(report.counters.link_calls, 0u);
  EXPECT_FALSE(report.phases.empty());
  EXPECT_FALSE(telemetry::enabled()) << "measure_counters must restore state";
}

TEST(RenderJson, EmptyRecordListIsStillAValidDocument) {
  const std::string text = bench::render_json("unit", {});
  EXPECT_NE(text.find("\"schema\":\"afforest-bench-1\""), std::string::npos);
  EXPECT_NE(text.find("\"experiment\":\"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"records\":[]"), std::string::npos);
  EXPECT_NE(text.find("\"host\":"), std::string::npos);
  EXPECT_NE(text.find("\"build\":"), std::string::npos);
}

TEST(RenderJson, RecordCarriesGraphAlgorithmParamsAndTrials) {
  bench::JsonRecord rec;
  rec.graph = "kron";
  rec.algorithm = "afforest";
  rec.params = {{"scale", 16}, {"family", "kron"}, {"p", 0.5}, {"skip", true}};
  rec.trials.median_s = 0.25;
  rec.trials.p25_s = 0.2;
  rec.trials.p75_s = 0.3;
  rec.trials.min_s = 0.1;
  rec.trials.max_s = 0.4;
  rec.trials.trials = 5;
  const std::string text = bench::render_json("unit", {rec});

  EXPECT_NE(text.find("\"graph\":\"kron\""), std::string::npos);
  EXPECT_NE(text.find("\"algorithm\":\"afforest\""), std::string::npos);
  EXPECT_NE(text.find("\"scale\":16"), std::string::npos);
  EXPECT_NE(text.find("\"family\":\"kron\""), std::string::npos);
  EXPECT_NE(text.find("\"p\":0.5"), std::string::npos);
  EXPECT_NE(text.find("\"skip\":true"), std::string::npos);
  EXPECT_NE(text.find("\"median_s\":0.25"), std::string::npos);
  EXPECT_NE(text.find("\"count\":5"), std::string::npos);
  // No telemetry attached: the optional keys must be absent.
  EXPECT_EQ(text.find("\"counters\""), std::string::npos);
  EXPECT_EQ(text.find("\"phases\""), std::string::npos);
}

TEST(RenderJson, TelemetryReportAddsCountersPhasesAndRss) {
  bench::JsonRecord rec;
  rec.graph = "g";
  rec.algorithm = "a";
  rec.has_telemetry = true;
  rec.report.counters.link_calls = 7;
  rec.report.counters.cas_failures = 2;
  rec.report.counters.serve_queries_served = 11;
  rec.report.counters.serve_snapshot_swaps = 4;
  rec.report.counters.serve_edges_ingested = 9;
  rec.report.counters.wal_records_appended = 5;
  rec.report.counters.wal_records_replayed = 3;
  rec.report.phases.push_back({"afforest.sampling", 0.125, 3});
  rec.report.peak_rss_bytes = 4096;
  const std::string text = bench::render_json("unit", {rec});

  EXPECT_NE(text.find("\"counters\":"), std::string::npos);
  EXPECT_NE(text.find("\"link_calls\":7"), std::string::npos);
  EXPECT_NE(text.find("\"cas_failures\":2"), std::string::npos);
  EXPECT_NE(text.find("\"serve_queries_served\":11"), std::string::npos);
  EXPECT_NE(text.find("\"serve_snapshot_swaps\":4"), std::string::npos);
  EXPECT_NE(text.find("\"serve_edges_ingested\":9"), std::string::npos);
  EXPECT_NE(text.find("\"wal_records_appended\":5"), std::string::npos);
  EXPECT_NE(text.find("\"wal_records_replayed\":3"), std::string::npos);
  EXPECT_NE(text.find("\"phases\":"), std::string::npos);
  EXPECT_NE(text.find("\"afforest.sampling\""), std::string::npos);
  EXPECT_NE(text.find("\"peak_rss_bytes\":4096"), std::string::npos);
}

TEST(RenderJson, BalancedBracesAndQuotes) {
  // Cheap structural sanity without a parser: every brace/bracket closes
  // and quotes pair up (escaping is covered by json_writer_test).
  bench::JsonRecord rec;
  rec.graph = "kron";
  rec.algorithm = "afforest";
  rec.params = {{"note", "quote\"inside"}};
  const std::string text = bench::render_json("unit", {rec});
  int braces = 0, brackets = 0, quotes = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const bool escaped = i > 0 && text[i - 1] == '\\';
    if (c == '"' && !escaped) ++quotes;
    if (quotes % 2 == 1) continue;  // inside a string literal
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
}

}  // namespace
}  // namespace afforest
