// Strategy × family convergence matrix: the Fig 6 invariants must hold on
// every suite topology, not just the web graph the figure plots.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/convergence.hpp"
#include "cc/union_find.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

class ConvergenceMatrix
    : public ::testing::TestWithParam<
          std::tuple<PartitionStrategy, std::string>> {};

TEST_P(ConvergenceMatrix, InvariantsHoldOnEveryTopology) {
  const auto& [strategy, family] = GetParam();
  const Graph g = make_suite_graph(family, 9);
  const auto pts = measure_convergence(g, {.strategy = strategy});
  ASSERT_FALSE(pts.empty());
  double prev_linkage = -1;
  double prev_pct = -1;
  for (const auto& p : pts) {
    ASSERT_GE(p.linkage, prev_linkage - 1e-12);  // monotone
    ASSERT_GT(p.pct_edges_processed, prev_pct);  // strictly advancing
    ASSERT_GE(p.coverage, 0.0);
    ASSERT_LE(p.coverage, 1.0 + 1e-12);
    prev_linkage = p.linkage;
    prev_pct = p.pct_edges_processed;
  }
  ASSERT_DOUBLE_EQ(pts.back().linkage, 1.0);
  ASSERT_DOUBLE_EQ(pts.back().coverage, 1.0);
}

TEST_P(ConvergenceMatrix, CoverageNeverExceedsLinkagePlusSlack) {
  // Coverage counts only c_max's best tree; with a single giant component
  // both measures track closely, and coverage can never be positive while
  // linkage is zero once any c_max edge links.
  const auto& [strategy, family] = GetParam();
  const Graph g = make_suite_graph(family, 9);
  const auto pts = measure_convergence(g, {.strategy = strategy});
  for (const auto& p : pts) {
    if (p.linkage == 0.0) {
      ASSERT_LE(p.coverage, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyByFamily, ConvergenceMatrix,
    ::testing::Combine(
        ::testing::Values(PartitionStrategy::kRowPartition,
                          PartitionStrategy::kRandomEdges,
                          PartitionStrategy::kNeighborRounds,
                          PartitionStrategy::kOptimalSF),
        ::testing::Values("road", "osm-eur", "twitter", "web", "urand",
                          "kron")),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_" +
                         std::get<1>(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace afforest
