// Work accounting: the §IV-D edge-saving quantification.
#include <gtest/gtest.h>

#include "analysis/work_counter.hpp"
#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(WorkCounter, LabelsMatchReference) {
  const Graph g = make_suite_graph("web", 10);
  ComponentLabels<NodeID> labels;
  afforest_with_work_stats(g, {}, &labels);
  EXPECT_TRUE(labels_equivalent(labels, union_find_cc(g)));
}

TEST(WorkCounter, AccountingIdentityCoversEveryStoredEdge) {
  // sampled + final + skipped must equal the stored (directed) edge count.
  for (const auto* name : {"road", "twitter", "urand", "kron"}) {
    const Graph g = make_suite_graph(name, 10);
    const auto stats = afforest_with_work_stats(g);
    EXPECT_EQ(stats.sampled_edges + stats.final_edges + stats.skipped_edges,
              g.num_stored_edges())
        << name;
  }
}

TEST(WorkCounter, NoSkipMeansNoSkippedEdges) {
  const Graph g = make_suite_graph("urand", 10);
  AfforestOptions opts;
  opts.skip_largest = false;
  const auto stats = afforest_with_work_stats(g, opts);
  EXPECT_EQ(stats.skipped_edges, 0);
  EXPECT_EQ(stats.skipped_vertices, 0);
  EXPECT_EQ(stats.total_linked(), g.num_stored_edges());
}

TEST(WorkCounter, GiantComponentGraphSkipsMostEdges) {
  // urand is one giant component: after two neighbor rounds nearly every
  // vertex sits in it, so the skip avoids the bulk of the final phase —
  // the paper's §IV-D claim.
  const Graph g = make_suite_graph("urand", 12);
  const auto stats = afforest_with_work_stats(g);
  EXPECT_GT(stats.skip_fraction(g.num_stored_edges()), 0.5);
}

TEST(WorkCounter, FragmentedGraphSkipsLittle) {
  // osm-eur's many medium components leave less to skip (still correct).
  const Graph g = make_suite_graph("osm-eur", 12);
  ComponentLabels<NodeID> labels;
  const auto stats = afforest_with_work_stats(g, {}, &labels);
  EXPECT_TRUE(labels_equivalent(labels, union_find_cc(g)));
  EXPECT_LT(stats.skip_fraction(g.num_stored_edges()), 0.99);
}

TEST(WorkCounter, SampledEdgesMatchNeighborRoundFormula) {
  const Graph g = make_suite_graph("kron", 10);
  AfforestOptions opts;
  opts.neighbor_rounds = 3;
  const auto stats = afforest_with_work_stats(g, opts);
  std::int64_t expected = 0;
  for (std::int64_t v = 0; v < g.num_nodes(); ++v)
    expected +=
        std::min<std::int64_t>(3, g.out_degree(static_cast<NodeID>(v)));
  EXPECT_EQ(stats.sampled_edges, expected);
}

TEST(WorkCounter, SkipFractionZeroDenominatorSafe) {
  AfforestWorkStats stats;
  stats.skipped_edges = 0;
  EXPECT_DOUBLE_EQ(stats.skip_fraction(0), 0.0);
}

}  // namespace
}  // namespace afforest
