#include "analysis/convergence.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

class StrategyTest : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(StrategyTest, MeasuresAreBoundedAndConverge) {
  const Graph g = make_suite_graph("web", 10);
  ConvergenceOptions opts;
  opts.strategy = GetParam();
  const auto pts = measure_convergence(g, opts);
  ASSERT_FALSE(pts.empty());
  for (const auto& p : pts) {
    EXPECT_GE(p.linkage, 0.0);
    EXPECT_LE(p.linkage, 1.0 + 1e-12);
    EXPECT_GE(p.coverage, 0.0);
    EXPECT_LE(p.coverage, 1.0 + 1e-12);
    EXPECT_GE(p.pct_edges_processed, 0.0);
    EXPECT_LE(p.pct_edges_processed, 100.0 + 1e-9);
  }
  // Theorem 1: after all edges, converged.
  EXPECT_DOUBLE_EQ(pts.back().linkage, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().coverage, 1.0);
  EXPECT_NEAR(pts.back().pct_edges_processed, 100.0, 1e-9);
}

TEST_P(StrategyTest, LinkageIsMonotonicallyNonDecreasing) {
  const Graph g = make_suite_graph("kron", 9);
  ConvergenceOptions opts;
  opts.strategy = GetParam();
  const auto pts = measure_convergence(g, opts);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GE(pts[i].linkage, pts[i - 1].linkage - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(PartitionStrategy::kRowPartition,
                                           PartitionStrategy::kRandomEdges,
                                           PartitionStrategy::kNeighborRounds,
                                           PartitionStrategy::kOptimalSF),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Convergence, EmptyGraphYieldsNoPoints) {
  const Graph g = build_undirected(EdgeList<std::int32_t>{}, 0);
  EXPECT_TRUE(measure_convergence(g, {}).empty());
}

TEST(Convergence, NeighborSamplingBeatsRowSamplingEarly) {
  // The paper's central Fig 6 claim: at comparable processed-edge budgets,
  // neighbor sampling achieves (much) higher linkage than row partitioning.
  const Graph g = make_suite_graph("web", 11);
  ConvergenceOptions row{.strategy = PartitionStrategy::kRowPartition};
  ConvergenceOptions nbr{.strategy = PartitionStrategy::kNeighborRounds};
  const auto row_pts = measure_convergence(g, row);
  const auto nbr_pts = measure_convergence(g, nbr);
  // Compare at ~the end of two neighbor rounds.
  const auto& after_two = nbr_pts[std::min<std::size_t>(1, nbr_pts.size() - 1)];
  double row_at_same_budget = 0;
  for (const auto& p : row_pts)
    if (p.pct_edges_processed <= after_two.pct_edges_processed + 1e-9)
      row_at_same_budget = std::max(row_at_same_budget, p.linkage);
  EXPECT_GT(after_two.linkage, row_at_same_budget);
  EXPECT_GT(after_two.linkage, 0.8);  // "~83% linkage after two rounds"
}

TEST(Convergence, OptimalSFConvergesInFirstBatch) {
  const Graph g = make_suite_graph("twitter", 9);
  ConvergenceOptions opts{.strategy = PartitionStrategy::kOptimalSF};
  const auto pts = measure_convergence(g, opts);
  ASSERT_FALSE(pts.empty());
  EXPECT_DOUBLE_EQ(pts.front().linkage, 1.0);
  EXPECT_DOUBLE_EQ(pts.front().coverage, 1.0);
}

TEST(Convergence, StrategyNamesRoundTrip) {
  EXPECT_EQ(to_string(PartitionStrategy::kRowPartition), "row");
  EXPECT_EQ(to_string(PartitionStrategy::kRandomEdges), "random");
  EXPECT_EQ(to_string(PartitionStrategy::kNeighborRounds), "neighbor");
  EXPECT_EQ(to_string(PartitionStrategy::kOptimalSF), "optimal-sf");
}

TEST(Convergence, BatchCountControlsResolution) {
  const Graph g = make_suite_graph("urand", 9);
  ConvergenceOptions coarse{.strategy = PartitionStrategy::kRandomEdges,
                            .num_batches = 4};
  ConvergenceOptions fine{.strategy = PartitionStrategy::kRandomEdges,
                          .num_batches = 32};
  EXPECT_EQ(measure_convergence(g, coarse).size(), 4u);
  EXPECT_EQ(measure_convergence(g, fine).size(), 32u);
}

TEST(Convergence, DeterministicForSeed) {
  const Graph g = make_suite_graph("kron", 9);
  ConvergenceOptions opts{.strategy = PartitionStrategy::kRandomEdges,
                          .shuffle_seed = 5};
  const auto a = measure_convergence(g, opts);
  const auto b = measure_convergence(g, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].linkage, b[i].linkage);
    EXPECT_DOUBLE_EQ(a[i].coverage, b[i].coverage);
  }
}

}  // namespace
}  // namespace afforest
