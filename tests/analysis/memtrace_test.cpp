#include "analysis/memtrace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

TEST(MemTrace, RecordBeforePhaseThrows) {
  MemTrace trace;
  EXPECT_THROW(trace.record(0, false), std::logic_error);
}

TEST(MemTrace, PhasesAccumulateInOrder) {
  MemTrace trace;
  EXPECT_EQ(trace.begin_phase("A"), 0);
  EXPECT_EQ(trace.begin_phase("B"), 1);
  ASSERT_EQ(trace.phase_names().size(), 2u);
  EXPECT_EQ(trace.phase_names()[0], "A");
  EXPECT_EQ(trace.phase_names()[1], "B");
}

TEST(MemTrace, EventsAttributedToCurrentPhase) {
  MemTrace trace;
  trace.begin_phase("A");
  trace.record(1, false);
  trace.record(2, true);
  trace.begin_phase("B");
  trace.record(3, false);
  EXPECT_EQ(trace.accesses_in_phase(0), 2);
  EXPECT_EQ(trace.accesses_in_phase(1), 1);
  EXPECT_EQ(trace.total_accesses(), 3);
}

TEST(MemTrace, EventsCarryWriteFlagAndIndex) {
  MemTrace trace;
  trace.begin_phase("A");
  trace.record(42, true);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].index, 42);
  EXPECT_TRUE(events[0].is_write);
}

TEST(MemTrace, HistogramBucketsCoverDomain) {
  MemTrace trace;
  trace.begin_phase("A");
  for (int i = 0; i < 100; ++i) trace.record(i, false);
  const auto hist = trace.access_histogram(0, 10, 100);
  ASSERT_EQ(hist.size(), 10u);
  for (auto c : hist) EXPECT_EQ(c, 10);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), std::int64_t{0}), 100);
}

TEST(MemTrace, HistogramClampsOutOfRangeIndices) {
  MemTrace trace;
  trace.begin_phase("A");
  trace.record(99999, false);
  const auto hist = trace.access_histogram(0, 4, 100);
  EXPECT_EQ(hist.back(), 1);
}

TEST(MemTrace, RenderHeatmapProducesRowPerPhase) {
  MemTrace trace;
  trace.begin_phase("X");
  trace.record(0, false);
  trace.begin_phase("Y");
  trace.record(1, true);
  std::ostringstream os;
  trace.render_heatmap(os, 8, 2);
  const std::string out = os.str();
  EXPECT_NE(out.find('X'), std::string::npos);
  EXPECT_NE(out.find('Y'), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(TracedPi, LoadsAndStoresAreRecorded) {
  MemTrace trace;
  trace.begin_phase("A");
  TracedPi pi(4, trace);
  pi.store(2, 7);
  EXPECT_EQ(pi.load(2), 7);
  EXPECT_EQ(trace.total_accesses(), 2);
}

TEST(TracedSV, ComputesCorrectComponents) {
  const Graph g = make_suite_graph("kron", 9);
  const auto result = run_traced_sv(g);
  EXPECT_TRUE(labels_equivalent(result.labels, union_find_cc(g)));
  EXPECT_GT(result.trace.total_accesses(), g.num_nodes());
}

TEST(TracedSV, PhasesFollowInitHookShortcutPattern) {
  const Graph g = make_suite_graph("urand", 8);
  const auto result = run_traced_sv(g);
  const auto& names = result.trace.phase_names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "I");
  EXPECT_EQ(names[1], "H1");
  EXPECT_EQ(names[2], "S1");
}

TEST(TracedAfforest, ComputesCorrectComponents) {
  const Graph g = make_suite_graph("web", 9);
  const auto result = run_traced_afforest(g);
  EXPECT_TRUE(labels_equivalent(result.labels, union_find_cc(g)));
}

TEST(TracedAfforest, SkippingVariantHasFPhase) {
  const Graph g = make_suite_graph("urand", 8);
  const auto with_skip = run_traced_afforest(g);
  const auto& names = with_skip.trace.phase_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "F"), names.end());

  AfforestOptions opts;
  opts.skip_largest = false;
  const auto no_skip = run_traced_afforest(g, opts);
  const auto& names2 = no_skip.trace.phase_names();
  EXPECT_EQ(std::find(names2.begin(), names2.end(), "F"), names2.end());
}

TEST(TracedAfforest, SkippingReducesFinalLinkAccesses) {
  // The Fig 7b vs 7c contrast: component skipping shrinks the L* phase.
  const Graph g = make_suite_graph("urand", 10);
  AfforestOptions no_skip;
  no_skip.skip_largest = false;
  const auto skip_run = run_traced_afforest(g);
  const auto noskip_run = run_traced_afforest(g, no_skip);
  auto lstar_accesses = [](const TraceResult& r) {
    const auto& names = r.trace.phase_names();
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == "L*") return r.trace.accesses_in_phase(static_cast<int>(i));
    return std::int64_t{-1};
  };
  EXPECT_LT(lstar_accesses(skip_run), lstar_accesses(noskip_run) / 10);
}

TEST(TracedComparison, SVTouchesPiMoreThanAfforest) {
  // Fig 7's headline: SV's repeated full-edge hooks dwarf Afforest's
  // accesses.
  const Graph g = make_suite_graph("urand", 9);
  const auto sv = run_traced_sv(g);
  const auto aff = run_traced_afforest(g);
  EXPECT_GT(sv.trace.total_accesses(), aff.trace.total_accesses());
}

}  // namespace
}  // namespace afforest
