#include "analysis/locality.hpp"

#include <gtest/gtest.h>

#include "cc/union_find.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

TEST(Locality, EmptyTraceYieldsZeros) {
  MemTrace trace;
  trace.begin_phase("A");
  const auto m = compute_locality(trace, 0, 100);
  EXPECT_EQ(m.total_accesses, 0);
  EXPECT_EQ(m.footprint, 0);
  EXPECT_DOUBLE_EQ(m.sequential_fraction, 0.0);
}

TEST(Locality, PureSequentialScanIsFullySequential) {
  MemTrace trace;
  trace.begin_phase("A");
  for (int i = 0; i < 100; ++i) trace.record(i, false);
  const auto m = compute_locality(trace, 0, 100);
  EXPECT_DOUBLE_EQ(m.sequential_fraction, 1.0);
  EXPECT_EQ(m.footprint, 100);
  EXPECT_EQ(m.total_accesses, 100);
}

TEST(Locality, StridedScanIsNonSequential) {
  MemTrace trace;
  trace.begin_phase("A");
  for (int i = 0; i < 100; ++i) trace.record(i * 17 % 100, false);
  const auto m = compute_locality(trace, 0, 100);
  EXPECT_LT(m.sequential_fraction, 0.1);
}

TEST(Locality, RepeatedSameIndexCountsAsSequential) {
  MemTrace trace;
  trace.begin_phase("A");
  for (int i = 0; i < 10; ++i) trace.record(7, false);
  const auto m = compute_locality(trace, 0, 100);
  EXPECT_DOUBLE_EQ(m.sequential_fraction, 1.0);
  EXPECT_EQ(m.footprint, 1);
}

TEST(Locality, GiniZeroForUniformCounts) {
  MemTrace trace;
  trace.begin_phase("A");
  for (int rep = 0; rep < 3; ++rep)
    for (int i = 0; i < 10; ++i) trace.record(i, false);
  const auto m = compute_locality(trace, 0, 10);
  EXPECT_NEAR(m.gini_concentration, 0.0, 1e-12);
}

TEST(Locality, GiniHighForConcentratedCounts) {
  MemTrace trace;
  trace.begin_phase("A");
  for (int i = 0; i < 1000; ++i) trace.record(0, false);  // one hot index
  for (int i = 1; i <= 10; ++i) trace.record(i, false);   // cold tail
  const auto m = compute_locality(trace, 0, 11);
  EXPECT_GT(m.gini_concentration, 0.8);
}

TEST(Locality, PhaseFilterSeparatesPhases) {
  MemTrace trace;
  trace.begin_phase("A");
  trace.record(1, false);
  trace.begin_phase("B");
  trace.record(2, false);
  trace.record(3, false);
  EXPECT_EQ(compute_locality(trace, 0, 10).total_accesses, 1);
  EXPECT_EQ(compute_locality(trace, 1, 10).total_accesses, 2);
  EXPECT_EQ(compute_locality(trace, -1, 10).total_accesses, 3);
}

TEST(Locality, AfforestLinkRoundsMoreSequentialThanSVHooks) {
  // Quantitative §V-C: Afforest's neighbor rounds scan vertices in order,
  // SV's hooks chase labels.  Compare phase L1 vs H1 on the same graph.
  const Graph g = make_suite_graph("urand", 10);
  const auto aff = run_traced_afforest(g);
  const auto sv = run_traced_sv(g);
  auto phase_id = [](const MemTrace& t, const std::string& name) {
    const auto& names = t.phase_names();
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == name) return static_cast<int>(i);
    return -1;
  };
  const auto aff_l1 =
      compute_locality(aff.trace, phase_id(aff.trace, "L1"), g.num_nodes());
  const auto sv_h1 =
      compute_locality(sv.trace, phase_id(sv.trace, "H1"), g.num_nodes());
  EXPECT_GT(aff_l1.sequential_fraction, sv_h1.sequential_fraction);
}

}  // namespace
}  // namespace afforest
