#include "analysis/instrumented.hpp"

#include <gtest/gtest.h>

#include "cc/union_find.hpp"
#include "cc/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/generators/suite.hpp"

namespace afforest {
namespace {

using NodeID = std::int32_t;

TEST(MaxTreeDepth, SelfPointingForestIsZero) {
  const auto comp = identity_labels<NodeID>(10);
  EXPECT_EQ(max_tree_depth(comp), 0);
}

TEST(MaxTreeDepth, ChainDepth) {
  pvector<NodeID> comp{0, 0, 1, 2};  // 3 -> 2 -> 1 -> 0
  EXPECT_EQ(max_tree_depth(comp), 3);
}

TEST(MaxTreeDepth, EmptyForest) {
  pvector<NodeID> comp;
  EXPECT_EQ(max_tree_depth(comp), 0);
}

TEST(LinkCounted, TrivialEdgeCostsOneIteration) {
  auto comp = identity_labels<NodeID>(4);
  link<NodeID>(0, 1, comp);
  std::int64_t iters = 0;
  link_counted<NodeID>(0, 1, comp, iters);  // already linked
  EXPECT_EQ(iters, 1);
}

TEST(LinkCounted, MergeCountsWork) {
  auto comp = identity_labels<NodeID>(4);
  std::int64_t iters = 0;
  link_counted<NodeID>(0, 3, comp, iters);
  EXPECT_GE(iters, 1);
  EXPECT_EQ(comp[3], 0);
}

TEST(AfforestInstrumented, ProducesCorrectLabels) {
  const Graph g = make_suite_graph("web", 10);
  ComponentLabels<NodeID> labels;
  afforest_instrumented(g, &labels);
  EXPECT_TRUE(labels_equivalent(labels, union_find_cc(g)));
}

TEST(AfforestInstrumented, AverageLocalIterationsNearOne) {
  // The paper's Table II headline: most link calls run a single
  // validation iteration.
  for (const auto* name : {"road", "twitter", "web", "urand", "kron"}) {
    const Graph g = make_suite_graph(name, 10);
    const auto stats = afforest_instrumented(g);
    EXPECT_GE(stats.avg_local_iterations(), 1.0) << name;
    EXPECT_LT(stats.avg_local_iterations(), 2.0) << name;
  }
}

TEST(AfforestInstrumented, CountsEveryStoredEdgeWithoutSkip) {
  const Graph g = make_suite_graph("urand", 9);
  const auto stats = afforest_instrumented(g);
  // Without component skipping every stored (directed) edge is linked once.
  EXPECT_EQ(stats.link_calls, g.num_stored_edges());
}

TEST(AfforestInstrumented, TreeDepthIsModest) {
  const Graph g = make_suite_graph("web", 10);
  const auto stats = afforest_instrumented(g);
  EXPECT_GE(stats.max_tree_depth, 1);
  // §V-A: in practice tree depth stays near SV's, far below |V|.
  EXPECT_LT(stats.max_tree_depth, 64);
}

TEST(SVInstrumented, ProducesCorrectLabels) {
  const Graph g = make_suite_graph("kron", 10);
  ComponentLabels<NodeID> labels;
  const auto stats = shiloach_vishkin_instrumented(g, &labels);
  EXPECT_TRUE(labels_equivalent(labels, union_find_cc(g)));
  EXPECT_GE(stats.iterations, 1);
}

TEST(SVInstrumented, IterationCountMatchesPlainSV) {
  const Graph g = make_suite_graph("road", 10);
  std::int64_t plain_iters = 0;
  shiloach_vishkin(g, &plain_iters);
  const auto stats = shiloach_vishkin_instrumented(g);
  EXPECT_EQ(stats.iterations, plain_iters);
}

TEST(InstrumentedComparison, AfforestDoesLessPerEdgeWorkThanSVReprocessing) {
  // SV revisits all edges every iteration; Afforest touches each once.
  const Graph g = make_suite_graph("web", 10);
  const auto sv = shiloach_vishkin_instrumented(g);
  const auto aff = afforest_instrumented(g);
  const double sv_edge_work =
      static_cast<double>(sv.iterations) *
      static_cast<double>(g.num_stored_edges());
  EXPECT_LT(static_cast<double>(aff.local_iterations), sv_edge_work);
}

}  // namespace
}  // namespace afforest
